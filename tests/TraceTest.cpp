//===- tests/TraceTest.cpp - §3 semantics and Def 3.4 equivalence -------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "trace/Semantics.h"

#include "core/SignalPlacement.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace expresso;
using namespace expresso::frontend;
using namespace expresso::trace;
using namespace expresso::runtime;
using logic::Assignment;
using logic::Value;

namespace {

struct TraceFixture {
  explicit TraceFixture(const char *Source) {
    DiagnosticEngine Diags;
    M = parseMonitor(Source, Diags);
    EXPECT_NE(M, nullptr) << Diags.str();
    Sema = analyze(*M, C, Diags);
    EXPECT_NE(Sema, nullptr) << Diags.str();
    Solver = solver::createSolver(solver::SolverKind::Default, C);
    Placement = core::placeSignals(C, *Sema, *Solver);
    Plan = SignalPlan::fromPlacement(Placement);
    Initial.Shared = initialState(*M);
  }

  const WaitUntil *ccr(const char *Method, unsigned Idx = 0) {
    return &M->findMethod(Method)->Body[Idx];
  }
  ThreadTask task(unsigned T, const char *Method, Assignment Locals = {}) {
    return {T, M->findMethod(Method), std::move(Locals)};
  }

  logic::TermContext C;
  std::unique_ptr<Monitor> M;
  std::unique_ptr<SemaInfo> Sema;
  std::unique_ptr<solver::SmtSolver> Solver;
  core::PlacementResult Placement;
  SignalPlan Plan;
  MonitorState Initial;
};

const char *RWSource = R"(
monitor RWLock {
  int readers = 0;
  bool writerIn = false;
  void enterReader() { waituntil (!writerIn) { readers++; } }
  void exitReader()  { if (readers > 0) readers--; }
  void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
  void exitWriter()  { writerIn = false; }
}
)";

/// Example 3.2's two-method monitor, used for well-formedness tests.
const char *Example32Source = R"(
monitor M {
  int x = 0;
  int y = 0;
  int z = 0;
  int w = 0;
  void m1() {
    waituntil (x > 0) { y = y + 1; }
    waituntil (y > 0) { x = x + 1; }
  }
  void m2() {
    waituntil (z >= 0) { x = x + 1; }
    waituntil (w >= 0) { z = z + 1; }
  }
}
)";

//===----------------------------------------------------------------------===//
// Well-formedness (Appendix A / Example 3.2)
//===----------------------------------------------------------------------===//

TEST(WellFormedTest, RespectsStatementOrder) {
  TraceFixture F(Example32Source);
  auto Tasks = std::vector<ThreadTask>{F.task(1, "m1")};
  const WaitUntil *W11 = F.ccr("m1", 0), *W12 = F.ccr("m1", 1);
  // Executing w12 before w11 violates requirement (a).
  EXPECT_FALSE(isWellFormed(Tasks, {{1, W12, true}, {1, W11, true}}));
  EXPECT_TRUE(isWellFormed(Tasks, {{1, W11, true}, {1, W12, true}}));
}

TEST(WellFormedTest, NoMonitorEscapeMidMethod) {
  TraceFixture F(Example32Source);
  auto Tasks =
      std::vector<ThreadTask>{F.task(1, "m1"), F.task(2, "m2")};
  const WaitUntil *W11 = F.ccr("m1", 0), *W12 = F.ccr("m1", 1);
  const WaitUntil *W21 = F.ccr("m2", 0), *W22 = F.ccr("m2", 1);
  // Example 3.2's ill-formed trace: thread 2 exits the monitor after w21
  // without blocking or finishing (requirement (c)).
  Trace Bad = {{1, W11, false}, {2, W21, true}, {1, W11, true},
               {1, W12, true}};
  EXPECT_FALSE(isWellFormed(Tasks, Bad));
  // The paper's well-formed variant: thread 2 blocks on w22 in between.
  Trace Good = {{1, W11, false}, {2, W21, true}, {2, W22, false},
                {1, W11, true},  {1, W12, true}, {2, W22, true}};
  EXPECT_TRUE(isWellFormed(Tasks, Good));
}

//===----------------------------------------------------------------------===//
// Implicit-signal transitions (Figure 4)
//===----------------------------------------------------------------------===//

TEST(ImplicitSemanticsTest, BlockThenNotifyThenRun) {
  TraceFixture F(RWSource);
  auto Tasks = std::vector<ThreadTask>{F.task(1, "enterWriter"),
                                       F.task(2, "exitWriter")};
  // Writer 1 blocks (writerIn starts false but readers==0: guard is true!).
  // Start with writerIn = true so the guard is false.
  F.Initial.Shared["writerIn"] = Value::ofBool(true);
  const WaitUntil *EW = F.ccr("enterWriter"), *XW = F.ccr("exitWriter");
  // t1 blocks; t2 exits the writer role making Pw true; t1 fires via (2b).
  Trace T = {{1, EW, false}, {2, XW, true}, {1, EW, true}};
  auto Final = replay(*F.Sema, nullptr, Tasks, F.Initial, T);
  ASSERT_TRUE(Final.has_value());
  EXPECT_TRUE(Final->State.Shared.at("writerIn").asBool());
  EXPECT_FALSE(Final->UsedRule1b);
}

TEST(ImplicitSemanticsTest, BlockedEventInfeasibleWhenGuardTrue) {
  TraceFixture F(RWSource);
  auto Tasks = std::vector<ThreadTask>{F.task(1, "enterReader")};
  // Guard !writerIn is true initially: a 'false' event cannot fire.
  Trace T = {{1, F.ccr("enterReader"), false}};
  EXPECT_FALSE(replay(*F.Sema, nullptr, Tasks, F.Initial, T).has_value());
}

TEST(ImplicitSemanticsTest, FiredEventNeedsNotificationWhenBlocked) {
  TraceFixture F(RWSource);
  F.Initial.Shared["writerIn"] = Value::ofBool(true);
  auto Tasks = std::vector<ThreadTask>{F.task(1, "enterReader")};
  const WaitUntil *ER = F.ccr("enterReader");
  // Blocked thread cannot fire without being notified (N is empty and the
  // guard stays false anyway).
  Trace T = {{1, ER, false}, {1, ER, true}};
  EXPECT_FALSE(replay(*F.Sema, nullptr, Tasks, F.Initial, T).has_value());
}

//===----------------------------------------------------------------------===//
// Explicit-signal transitions (Figures 5-6)
//===----------------------------------------------------------------------===//

TEST(ExplicitSemanticsTest, SignalsFollowThePlan) {
  TraceFixture F(RWSource);
  F.Initial.Shared["writerIn"] = Value::ofBool(true);
  auto Tasks = std::vector<ThreadTask>{F.task(1, "enterReader"),
                                       F.task(2, "exitWriter")};
  const WaitUntil *ER = F.ccr("enterReader"), *XW = F.ccr("exitWriter");
  // exitWriter broadcasts to the readers class, so the blocked reader can
  // fire afterwards.
  Trace T = {{1, ER, false}, {2, XW, true}, {1, ER, true}};
  auto Final = replay(*F.Sema, &F.Plan, Tasks, F.Initial, T);
  ASSERT_TRUE(Final.has_value());
  EXPECT_EQ(Final->State.Shared.at("readers").asInt(), 1);
}

TEST(ExplicitSemanticsTest, NoSignalNoWake) {
  TraceFixture F(RWSource);
  F.Initial.Shared["writerIn"] = Value::ofBool(true);
  auto Tasks = std::vector<ThreadTask>{F.task(1, "enterReader"),
                                       F.task(2, "enterReader")};
  const WaitUntil *ER = F.ccr("enterReader");
  // Thread 2 cannot have executed enterReader while writerIn holds, and a
  // blocked thread 1 cannot fire without a signal: infeasible.
  Trace T = {{1, ER, false}, {2, ER, true}, {1, ER, true}};
  EXPECT_FALSE(replay(*F.Sema, &F.Plan, Tasks, F.Initial, T).has_value());
}

//===----------------------------------------------------------------------===//
// Definition 3.4 equivalence, bounded
//===----------------------------------------------------------------------===//

TEST(EquivalenceTest, ReadersWritersPlacementIsEquivalent) {
  TraceFixture F(RWSource);
  auto Tasks = std::vector<ThreadTask>{
      F.task(1, "enterReader"), F.task(2, "enterWriter"),
      F.task(3, "exitWriter")};
  F.Initial.Shared["writerIn"] = Value::ofBool(true);
  EquivalenceResult R =
      checkEquivalenceBounded(*F.Sema, F.Plan, Tasks, F.Initial, 8);
  EXPECT_TRUE(R.Equivalent) << R.CounterExample;
  EXPECT_GT(R.TracesChecked, 10u);
}

TEST(EquivalenceTest, DroppedBroadcastIsDetected) {
  TraceFixture F(RWSource);
  // Sabotage: remove every notification from exitWriter.
  SignalPlan Broken = F.Plan;
  Broken.Entries.erase(F.ccr("exitWriter"));
  auto Tasks = std::vector<ThreadTask>{F.task(1, "enterReader"),
                                       F.task(2, "exitWriter")};
  F.Initial.Shared["writerIn"] = Value::ofBool(true);
  EquivalenceResult R =
      checkEquivalenceBounded(*F.Sema, Broken, Tasks, F.Initial, 6);
  EXPECT_FALSE(R.Equivalent);
  EXPECT_NE(R.CounterExample.find("Def 3.4(2)"), std::string::npos)
      << R.CounterExample;
}

TEST(EquivalenceTest, BoundedBufferPlacementIsEquivalent) {
  TraceFixture F(R"(
    monitor BB {
      const int capacity;
      int count = 0;
      requires capacity > 0;
      void put()  { waituntil (count < capacity) { count++; } }
      void take() { waituntil (count > 0) { count--; } }
    }
  )");
  F.Initial.Shared["capacity"] = Value::ofInt(1);
  auto Tasks = std::vector<ThreadTask>{F.task(1, "put"), F.task(2, "put"),
                                       F.task(3, "take")};
  EquivalenceResult R =
      checkEquivalenceBounded(*F.Sema, F.Plan, Tasks, F.Initial, 8);
  EXPECT_TRUE(R.Equivalent) << R.CounterExample;
}

TEST(EquivalenceTest, LocalPredicateMonitorIsEquivalent) {
  // Example 4.2's shape: waiting on thread-local thresholds.
  TraceFixture F(R"(
    monitor M {
      int y = 0;
      void waitFor(int x) { waituntil (x < y) { y = y + 0; } }
      void bump() { y = y + 2; }
    }
  )");
  Assignment L1{{"x", Value::ofInt(0)}};
  Assignment L2{{"x", Value::ofInt(1)}};
  auto Tasks = std::vector<ThreadTask>{F.task(1, "waitFor", L1),
                                       F.task(2, "waitFor", L2),
                                       F.task(3, "bump")};
  EquivalenceResult R =
      checkEquivalenceBounded(*F.Sema, F.Plan, Tasks, F.Initial, 8);
  EXPECT_TRUE(R.Equivalent) << R.CounterExample;
}

TEST(EquivalenceTest, SingleSignalInsteadOfBroadcastIsDetected) {
  // In the Example 4.2 monitor, downgrading bump's broadcast to a single
  // conditional signal strands one waiter: Def 3.4(2) must fail.
  TraceFixture F(R"(
    monitor M {
      int y = 0;
      void waitFor(int x) { waituntil (x < y) { y = y + 0; } }
      void bump() { y = y + 2; }
    }
  )");
  SignalPlan Broken = F.Plan;
  const WaitUntil *Bump = F.ccr("bump");
  auto It = Broken.Entries.find(Bump);
  ASSERT_NE(It, Broken.Entries.end());
  for (PlanEntry &E : It->second)
    E.Broadcast = false;
  Assignment L1{{"x", Value::ofInt(0)}};
  Assignment L2{{"x", Value::ofInt(1)}};
  auto Tasks = std::vector<ThreadTask>{F.task(1, "waitFor", L1),
                                       F.task(2, "waitFor", L2),
                                       F.task(3, "bump")};
  EquivalenceResult R =
      checkEquivalenceBounded(*F.Sema, Broken, Tasks, F.Initial, 8);
  EXPECT_FALSE(R.Equivalent);
}

/// Property sweep: placements for several small monitors are equivalent on
/// all bounded traces with assorted initial states.
class PlacementEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlacementEquivalenceSweep, BoundedDef34Holds) {
  static const char *Monitors[] = {
      R"(monitor A {
           int c = 0;
           void inc() { waituntil (c < 2) { c++; } }
           void dec() { waituntil (c > 0) { c--; } }
         })",
      R"(monitor B {
           bool flag = false;
           void set()   { flag = true; }
           void clear() { waituntil (flag) { flag = false; } }
         })",
      R"(monitor C2 {
           int a = 0;
           int b = 0;
           void step1() { waituntil (a >= 0) { b = b + 1; } }
           void step2() { waituntil (b > 0) { a = a + 1; b = b - 1; } }
         })",
      R"(monitor D {
           int tickets = 0;
           void issue(int k) { tickets = tickets + k; }
           void redeem(int k) { waituntil (tickets >= k) { tickets = tickets - k; } }
         })",
  };
  int Case = GetParam() % 4;
  int Variant = GetParam() / 4;
  TraceFixture F(Monitors[Case]);

  std::vector<ThreadTask> Tasks;
  const Monitor &M = *F.M;
  // Two permutations of three single-method threads.
  Assignment KOne{{"k", Value::ofInt(1)}};
  Assignment KTwo{{"k", Value::ofInt(2)}};
  for (unsigned T = 0; T < 3; ++T) {
    const Method &Me =
        M.Methods[(T + static_cast<unsigned>(Variant)) % M.Methods.size()];
    Assignment Locals;
    if (!Me.Params.empty())
      Locals = (T % 2 == 0) ? KOne : KTwo;
    Tasks.push_back({T + 1, &Me, Locals});
  }
  EquivalenceResult R =
      checkEquivalenceBounded(*F.Sema, F.Plan, Tasks, F.Initial, 7);
  EXPECT_TRUE(R.Equivalent) << Monitors[Case] << "\n"
                            << R.CounterExample;
}

INSTANTIATE_TEST_SUITE_P(SmallMonitors, PlacementEquivalenceSweep,
                         ::testing::Range(0, 12));

} // namespace
