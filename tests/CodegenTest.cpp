//===- tests/CodegenTest.cpp - IR, C++, and Java emitters ---------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "bench/Workloads.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace expresso;
using namespace expresso::frontend;
using namespace expresso::core;

namespace {

struct CodegenFixture {
  explicit CodegenFixture(const std::string &Source,
                          PlacementOptions Opts = PlacementOptions()) {
    DiagnosticEngine Diags;
    M = parseMonitor(Source, Diags);
    EXPECT_NE(M, nullptr) << Diags.str();
    Sema = analyze(*M, C, Diags);
    EXPECT_NE(Sema, nullptr) << Diags.str();
    Solver = solver::createSolver(solver::SolverKind::Default, C);
    Result = placeSignals(C, *Sema, *Solver, Opts);
  }

  logic::TermContext C;
  std::unique_ptr<Monitor> M;
  std::unique_ptr<SemaInfo> Sema;
  std::unique_ptr<solver::SmtSolver> Solver;
  PlacementResult Result;
};

const char *RWSource = R"(
monitor RWLock {
  int readers = 0;
  bool writerIn = false;
  void enterReader() { waituntil (!writerIn) { readers++; } }
  void exitReader()  { if (readers > 0) readers--; }
  void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
  void exitWriter()  { writerIn = false; }
}
)";

TEST(IrPrinterTest, ReadersWritersIr) {
  CodegenFixture F(RWSource);
  std::string Ir = codegen::printTargetIr(F.Result);
  // enterReader/enterWriter carry no signal sets.
  EXPECT_NE(Ir.find("monitor RWLock"), std::string::npos);
  EXPECT_NE(Ir.find("invariant"), std::string::npos);
  // exitReader signals the writer predicate conditionally.
  EXPECT_NE(Ir.find("signal({(!writerIn && 0 == readers, ?)})"),
            std::string::npos)
      << Ir;
  // exitWriter broadcasts to readers unconditionally.
  EXPECT_NE(Ir.find("broadcast({(!writerIn, \xE2\x9C\x93)})"),
            std::string::npos)
      << Ir;
}

TEST(CppCodegenTest, ReadersWritersShape) {
  PlacementOptions Opts;
  Opts.LazyBroadcast = false; // eager: expect notify_all
  CodegenFixture F(RWSource, Opts);
  std::string Code = codegen::emitCpp(F.Result);
  EXPECT_NE(Code.find("class RWLock"), std::string::npos);
  EXPECT_NE(Code.find("std::mutex m_;"), std::string::npos);
  // Wait loop mirrors Figure 2's while(!p) await().
  EXPECT_NE(Code.find("while (!(!writerIn))"), std::string::npos) << Code;
  // Conditional signal to the writers class (long-suffixed literals).
  EXPECT_NE(Code.find("if ((!writerIn && (0L == readers)))"),
            std::string::npos)
      << Code;
  // Unconditional broadcast to readers (eager mode).
  EXPECT_NE(Code.find(".notify_all();"), std::string::npos) << Code;
}

TEST(CppCodegenTest, LazyBroadcastEmitsChain) {
  CodegenFixture F(RWSource); // lazy by default
  std::string Code = codegen::emitCpp(F.Result);
  EXPECT_NE(Code.find("lazy broadcast chain"), std::string::npos) << Code;
  EXPECT_EQ(Code.find(".notify_all();"), std::string::npos) << Code;
}

TEST(JavaCodegenTest, ReadersWritersShape) {
  PlacementOptions Opts;
  Opts.LazyBroadcast = false;
  CodegenFixture F(RWSource, Opts);
  std::string Code = codegen::emitJava(F.Result);
  EXPECT_NE(Code.find("public class RWLock"), std::string::npos);
  EXPECT_NE(Code.find("new ReentrantLock()"), std::string::npos);
  EXPECT_NE(Code.find("lock.newCondition()"), std::string::npos);
  // Figure 2: conditional signal + unconditional signalAll.
  EXPECT_NE(Code.find("if ((!writerIn && (0 == readers)))"), std::string::npos)
      << Code;
  EXPECT_NE(Code.find(".signalAll();"), std::string::npos) << Code;
  EXPECT_NE(Code.find("lock.unlock();"), std::string::npos);
}

TEST(CppCodegenTest, LocalPredicateWaiterRegistry) {
  CodegenFixture F(R"(
    monitor Sem {
      int count = 0;
      void acquire(int k) { waituntil (count >= k) { count = count - k; } }
      void release(int k) { count = count + k; }
    }
  )");
  std::string Code = codegen::emitCpp(F.Result);
  // §6 instrumentation: waiter struct with a local-value snapshot.
  EXPECT_NE(Code.find("struct WaiterC"), std::string::npos) << Code;
  EXPECT_NE(Code.find("w_.p0 = k;"), std::string::npos) << Code;
  EXPECT_NE(Code.find("->p0"), std::string::npos) << Code;
}

/// The strongest codegen test: every benchmark's generated C++ must be
/// accepted by the host compiler.
class GeneratedCodeCompiles : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedCodeCompiles, CppIsValid) {
  const auto &All = bench::allBenchmarks();
  const bench::BenchmarkDef &Def =
      All[static_cast<size_t>(GetParam()) % All.size()];
  CodegenFixture F(Def.Source);
  std::string Code = codegen::emitCpp(F.Result);

  std::string Path = ::testing::TempDir() + "/expresso_gen_" + Def.Name +
                     ".cpp";
  {
    std::ofstream Out(Path);
    Out << Code << "\nint main() { return 0; }\n";
  }
  std::string Cmd = "g++ -std=c++17 -fsyntax-only -Wall " + Path + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  ASSERT_NE(Pipe, nullptr);
  std::string Output;
  char Buf[512];
  while (fgets(Buf, sizeof(Buf), Pipe))
    Output += Buf;
  int Status = pclose(Pipe);
  EXPECT_EQ(Status, 0) << "generated code for " << Def.Name
                       << " failed to compile:\n"
                       << Output << "\n---- code ----\n"
                       << Code;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, GeneratedCodeCompiles,
                         ::testing::Range(0, 14),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return bench::allBenchmarks()
                               [static_cast<size_t>(Info.param)]
                                   .Name;
                         });

} // namespace
