//===- tests/SmtTest.cpp - SAT core, LIA solver, MiniSmt --------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "smt/LiaSolver.h"
#include "smt/MiniSmt.h"
#include "smt/Rational.h"
#include "smt/Sat.h"

#include "TestUtil.h"
#include "logic/Printer.h"
#include "solver/SmtSolver.h"

#include <gtest/gtest.h>

using namespace expresso;
using namespace expresso::logic;
using namespace expresso::smt;

namespace {

//===----------------------------------------------------------------------===//
// Rational
//===----------------------------------------------------------------------===//

TEST(RationalTest, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ((Half + Third), Rational(5, 6));
  EXPECT_EQ((Half * Third), Rational(1, 6));
  EXPECT_EQ((Half - Third), Rational(1, 6));
  EXPECT_EQ((Half / Third), Rational(3, 2));
  EXPECT_TRUE(Third < Half);
  EXPECT_EQ(Rational(2, 4), Half);
  EXPECT_EQ(Rational(-3, -6), Half);
  EXPECT_EQ(Rational(3, -6), -Half);
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
}

//===----------------------------------------------------------------------===//
// SAT core
//===----------------------------------------------------------------------===//

TEST(SatTest, TrivialSat) {
  SatSolver S;
  int A = S.newVar(), B = S.newVar();
  S.addClause({Lit(A, false), Lit(B, false)});
  S.addClause({Lit(A, true)});
  ASSERT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
}

TEST(SatTest, TrivialUnsat) {
  SatSolver S;
  int A = S.newVar();
  S.addClause({Lit(A, false)});
  EXPECT_FALSE(S.addClause({Lit(A, true)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatTest, RequiresPropagationChain) {
  SatSolver S;
  // a, a->b, b->c, c->d, check d forced true.
  int A = S.newVar(), B = S.newVar(), Cc = S.newVar(), D = S.newVar();
  S.addClause({Lit(A, false)});
  S.addClause({Lit(A, true), Lit(B, false)});
  S.addClause({Lit(B, true), Lit(Cc, false)});
  S.addClause({Lit(Cc, true), Lit(D, false)});
  ASSERT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(D));
}

TEST(SatTest, PigeonHole32) {
  // 3 pigeons, 2 holes: unsat. Var P[i][j] = pigeon i in hole j.
  SatSolver S;
  int P[3][2];
  for (auto &Row : P)
    for (int &V : Row)
      V = S.newVar();
  for (auto &Row : P)
    S.addClause({Lit(Row[0], false), Lit(Row[1], false)});
  for (int J = 0; J < 2; ++J)
    for (int I1 = 0; I1 < 3; ++I1)
      for (int I2 = I1 + 1; I2 < 3; ++I2)
        S.addClause({Lit(P[I1][J], true), Lit(P[I2][J], true)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatTest, IncrementalBlockingClauses) {
  // Enumerate all 4 models of (a | b) by blocking.
  SatSolver S;
  int A = S.newVar(), B = S.newVar();
  S.addClause({Lit(A, false), Lit(B, false)});
  int Models = 0;
  while (S.solve() == SatSolver::Result::Sat && Models < 10) {
    ++Models;
    S.addClause({Lit(A, S.modelValue(A)), Lit(B, S.modelValue(B))});
  }
  EXPECT_EQ(Models, 3);
}

/// Random 3-SAT instances cross-checked against brute force.
class SatRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomTest, MatchesBruteForce) {
  Rng R(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const int NumVars = 6;
  const int NumClauses = 18;
  std::vector<std::vector<int>> Clauses; // signed DIMACS-ish
  for (int I = 0; I < NumClauses; ++I) {
    std::vector<int> Cl;
    for (int K = 0; K < 3; ++K) {
      int V = static_cast<int>(R.below(NumVars)) + 1;
      Cl.push_back(R.chance(1, 2) ? V : -V);
    }
    Clauses.push_back(Cl);
  }
  // Brute force.
  bool BruteSat = false;
  for (int M = 0; M < (1 << NumVars) && !BruteSat; ++M) {
    bool AllSat = true;
    for (const auto &Cl : Clauses) {
      bool ClauseSat = false;
      for (int L : Cl) {
        int V = std::abs(L) - 1;
        bool Val = (M >> V) & 1;
        if ((L > 0) == Val) {
          ClauseSat = true;
          break;
        }
      }
      if (!ClauseSat) {
        AllSat = false;
        break;
      }
    }
    BruteSat = AllSat;
  }
  // CDCL.
  SatSolver S;
  for (int V = 0; V < NumVars; ++V)
    S.newVar();
  for (const auto &Cl : Clauses) {
    std::vector<Lit> Lits;
    for (int L : Cl)
      Lits.push_back(Lit(std::abs(L) - 1, L < 0));
    S.addClause(std::move(Lits));
  }
  SatSolver::Result Got = S.solve();
  EXPECT_EQ(Got == SatSolver::Result::Sat, BruteSat);
  if (Got == SatSolver::Result::Sat) {
    // Verify the model satisfies every clause.
    for (const auto &Cl : Clauses) {
      bool ClauseSat = false;
      for (int L : Cl)
        if ((L > 0) == S.modelValue(std::abs(L) - 1))
          ClauseSat = true;
      EXPECT_TRUE(ClauseSat);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SatRandomTest, ::testing::Range(0, 40));

//===----------------------------------------------------------------------===//
// LIA solver
//===----------------------------------------------------------------------===//

class LiaTest : public ::testing::Test {
protected:
  TermContext C;
  const Term *X = C.var("x", Sort::Int);
  const Term *Y = C.var("y", Sort::Int);

  LinAtom le(const Term *T, int64_t Bound) {
    auto A = normalizeLinAtom(C.le(T, C.intConst(Bound)));
    return *A;
  }
  LinAtom ge(const Term *T, int64_t Bound) {
    auto A = normalizeLinAtom(C.ge(T, C.intConst(Bound)));
    return *A;
  }
  LinAtom eq(const Term *T, int64_t V) {
    auto A = normalizeLinAtom(C.eq(T, C.intConst(V)));
    return *A;
  }
};

TEST_F(LiaTest, SimpleBox) {
  LiaSolver S;
  LiaResult R = S.solve({ge(X, 2), le(X, 5)});
  ASSERT_EQ(R.Status, LiaStatus::Feasible);
  int64_t V = R.Model.at(X);
  EXPECT_GE(V, 2);
  EXPECT_LE(V, 5);
}

TEST_F(LiaTest, EmptyBox) {
  LiaSolver S;
  LiaResult R = S.solve({ge(X, 6), le(X, 5)});
  ASSERT_EQ(R.Status, LiaStatus::Infeasible);
  EXPECT_EQ(R.Core.size(), 2u);
}

TEST_F(LiaTest, CoreIsSubset) {
  // x >= 10 contradicts x <= 5; y-constraint is irrelevant.
  LiaSolver S;
  LiaResult R = S.solve({ge(Y, 0), ge(X, 10), le(X, 5)});
  ASSERT_EQ(R.Status, LiaStatus::Infeasible);
  // Core must not include the y constraint (index 0).
  for (int I : R.Core)
    EXPECT_NE(I, 0);
}

TEST_F(LiaTest, GcdInfeasibleEquality) {
  // 2x - 2y == 1 has no integer solutions.
  auto A = normalizeLinAtom(
      C.eq(C.sub(C.mulConst(2, X), C.mulConst(2, Y)), C.getOne()));
  ASSERT_TRUE(A.has_value());
  LiaSolver S;
  // normalizeLinAtom already catches this via gcd tightening; make sure the
  // solver agrees regardless.
  LiaResult R = S.solve({*A});
  EXPECT_EQ(R.Status, LiaStatus::Infeasible);
}

TEST_F(LiaTest, IntegerGapInfeasible) {
  // 2 <= 2x <= 3 has no integer solution (x between 1 and 1.5).
  auto Lo = normalizeLinAtom(C.ge(C.mulConst(2, X), C.intConst(3)));
  auto Hi = normalizeLinAtom(C.le(C.mulConst(2, X), C.intConst(3)));
  LiaSolver S;
  LiaResult R = S.solve({*Lo, *Hi});
  EXPECT_EQ(R.Status, LiaStatus::Infeasible);
}

TEST_F(LiaTest, BranchAndBoundFindsLatticePoint) {
  // 3x + 3y == 6 and x >= 0 and y >= 0: (0,2),(1,1),(2,0).
  auto E = normalizeLinAtom(
      C.eq(C.add(C.mulConst(3, X), C.mulConst(3, Y)), C.intConst(6)));
  LiaSolver S;
  LiaResult R = S.solve({*E, ge(X, 0), ge(Y, 0)});
  ASSERT_EQ(R.Status, LiaStatus::Feasible);
  EXPECT_EQ(R.Model.at(X) + R.Model.at(Y), 2);
  EXPECT_GE(R.Model.at(X), 0);
}

TEST_F(LiaTest, DivisibilityAtom) {
  // 3 | x and 4 <= x <= 6 forces x == 6.
  auto D = normalizeLinAtom(C.divides(3, X));
  LiaSolver S;
  LiaResult R = S.solve({*D, ge(X, 4), le(X, 6)});
  ASSERT_EQ(R.Status, LiaStatus::Feasible);
  EXPECT_EQ(R.Model.at(X), 6);
}

TEST_F(LiaTest, NegatedDivisibilityAtom) {
  // !(2 | x) and 4 <= x <= 5 forces x == 5.
  auto D = normalizeLinAtom(C.not_(C.divides(2, X)));
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Kind, LinAtomKind::NDvd);
  LiaSolver S;
  LiaResult R = S.solve({*D, ge(X, 4), le(X, 5)});
  ASSERT_EQ(R.Status, LiaStatus::Feasible);
  EXPECT_EQ(R.Model.at(X), 5);
}

TEST_F(LiaTest, TwoVarCone) {
  // x + y <= -1, x >= 0 => y <= -1 feasible.
  auto A = normalizeLinAtom(C.le(C.add(X, Y), C.intConst(-1)));
  LiaSolver S;
  LiaResult R = S.solve({*A, ge(X, 0)});
  ASSERT_EQ(R.Status, LiaStatus::Feasible);
  EXPECT_GE(R.Model.at(X), 0);
  EXPECT_LE(R.Model.at(X) + R.Model.at(Y), -1);
}

//===----------------------------------------------------------------------===//
// MiniSmt end-to-end
//===----------------------------------------------------------------------===//

class MiniSmtTest : public ::testing::Test {
protected:
  TermContext C;
  MiniSmt S{C};
  const Term *X = C.var("x", Sort::Int);
  const Term *Y = C.var("y", Sort::Int);
  const Term *P = C.var("p", Sort::Bool);
};

TEST_F(MiniSmtTest, PropositionalOnly) {
  EXPECT_EQ(S.checkSat(C.and_(P, C.not_(P))).Answer, SatAnswer::Unsat);
  SmtResult R = S.checkSat(C.or_(P, C.not_(P)));
  EXPECT_EQ(R.Answer, SatAnswer::Sat);
}

TEST_F(MiniSmtTest, MixedBoolArith) {
  // (p -> x > 3) and (!p -> x < -3) and x == 0 : unsat.
  const Term *F = C.and_({C.implies(P, C.gt(X, C.intConst(3))),
                          C.implies(C.not_(P), C.lt(X, C.intConst(-3))),
                          C.eq(X, C.getZero())});
  EXPECT_EQ(S.checkSat(F).Answer, SatAnswer::Unsat);
}

TEST_F(MiniSmtTest, ModelSatisfiesFormula) {
  const Term *F = C.and_({C.gt(X, C.intConst(2)), C.lt(X, C.intConst(7)),
                          C.divides(3, X), C.iff(P, C.eq(Y, X))});
  SmtResult R = S.checkSat(F);
  ASSERT_EQ(R.Answer, SatAnswer::Sat);
  ASSERT_TRUE(R.ModelComplete);
  EXPECT_TRUE(evaluateBool(F, R.Model)) << printTerm(F);
}

TEST_F(MiniSmtTest, DisequalityChainNeedsSplitting) {
  // 0 <= x <= 2, x != 0, x != 1, x != 2 : unsat.
  const Term *F = C.and_({C.ge(X, C.getZero()), C.le(X, C.intConst(2)),
                          C.ne(X, C.getZero()), C.ne(X, C.getOne()),
                          C.ne(X, C.intConst(2))});
  EXPECT_EQ(S.checkSat(F).Answer, SatAnswer::Unsat);
}

TEST_F(MiniSmtTest, IteLifting) {
  // ite(p, 1, 2) == 2 and p : unsat.
  const Term *F =
      C.and_(C.eq(C.ite(P, C.getOne(), C.intConst(2)), C.intConst(2)), P);
  EXPECT_EQ(S.checkSat(F).Answer, SatAnswer::Unsat);
  // ite(p, 1, 2) == 2 and !p : sat.
  const Term *G = C.and_(
      C.eq(C.ite(P, C.getOne(), C.intConst(2)), C.intConst(2)), C.not_(P));
  EXPECT_EQ(S.checkSat(G).Answer, SatAnswer::Sat);
}

TEST_F(MiniSmtTest, ArraysViaAckermann) {
  const Term *A = C.var("a", Sort::IntArray);
  const Term *I = C.var("i", Sort::Int);
  const Term *J = C.var("j", Sort::Int);
  // i == j and a[i] != a[j] : unsat.
  const Term *F =
      C.and_(C.eq(I, J), C.ne(C.select(A, I), C.select(A, J)));
  EXPECT_EQ(S.checkSat(F).Answer, SatAnswer::Unsat);
  // i != j and a[i] != a[j] : sat.
  const Term *G =
      C.and_(C.ne(I, J), C.ne(C.select(A, I), C.select(A, J)));
  SmtResult R = S.checkSat(G);
  ASSERT_EQ(R.Answer, SatAnswer::Sat);
  EXPECT_TRUE(evaluateBool(G, R.Model));
}

TEST_F(MiniSmtTest, StorePushedThroughSelect) {
  const Term *A = C.var("a", Sort::BoolArray);
  const Term *I = C.var("i", Sort::Int);
  const Term *J = C.var("j", Sort::Int);
  // store(a, i, true)[j] is false and i == j : unsat.
  const Term *F =
      C.and_(C.not_(C.select(C.store(A, I, C.getTrue()), J)), C.eq(I, J));
  EXPECT_EQ(S.checkSat(F).Answer, SatAnswer::Unsat);
}

TEST_F(MiniSmtTest, ReadersWritersVC) {
  // The Section 2 enterReader check:
  //   readers>=0 and !writerIn and !(readers==0 and !writerIn)
  //     => !(readers+1==0 and !writerIn)
  // is valid, so its negation must be unsat.
  const Term *Readers = C.var("readers", Sort::Int);
  const Term *WriterIn = C.var("writerIn", Sort::Bool);
  const Term *Pw = C.and_(C.eq(Readers, C.getZero()), C.not_(WriterIn));
  const Term *PwAfter =
      C.and_(C.eq(C.add(Readers, C.getOne()), C.getZero()), C.not_(WriterIn));
  const Term *Pre =
      C.and_({C.ge(Readers, C.getZero()), C.not_(WriterIn), C.not_(Pw)});
  const Term *VC = C.implies(Pre, C.not_(PwAfter));
  EXPECT_EQ(S.checkSat(C.not_(VC)).Answer, SatAnswer::Unsat);

  // Dropping the invariant readers>=0 makes the triple fail (paper, §2).
  const Term *WeakPre = C.and_(C.not_(WriterIn), C.not_(Pw));
  const Term *BadVC = C.implies(WeakPre, C.not_(PwAfter));
  SmtResult R = S.checkSat(C.not_(BadVC));
  ASSERT_EQ(R.Answer, SatAnswer::Sat);
  EXPECT_EQ(R.Model.at("readers").asInt(), -1); // the counterexample
}

//===----------------------------------------------------------------------===//
// Differential tests: MiniSmt vs brute force and vs Z3
//===----------------------------------------------------------------------===//

class SmtDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SmtDifferentialTest, AgreesWithBruteForce) {
  TermContext C;
  Rng R(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  testutil::FormulaGen Gen(C, R);
  const Term *F = Gen.randomFormula(3);

  MiniSmt S(C);
  SmtResult Got = S.checkSat(F);
  ASSERT_NE(Got.Answer, SatAnswer::Unknown) << printTerm(F);

  auto Brute =
      testutil::bruteForceModel(F, Gen.intVars(), Gen.boolVars(), 12);
  if (Got.Answer == SatAnswer::Sat) {
    if (Got.ModelComplete)
      EXPECT_TRUE(evaluateBool(F, Got.Model)) << printTerm(F);
  } else {
    EXPECT_FALSE(Brute.has_value())
        << "MiniSmt says unsat but brute force found a model of "
        << printTerm(F);
  }
  if (Brute.has_value())
    EXPECT_EQ(Got.Answer, SatAnswer::Sat) << printTerm(F);
}

INSTANTIATE_TEST_SUITE_P(Random, SmtDifferentialTest, ::testing::Range(0, 120));

class SolverBackendTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverBackendTest, MiniAgreesWithZ3) {
  if (!solver::hasZ3())
    GTEST_SKIP() << "Z3 backend not built";
  TermContext C;
  Rng R(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  testutil::FormulaGen Gen(C, R);
  const Term *F = Gen.randomFormula(4);
  // The cross-check backend aborts on disagreement.
  auto S = solver::createSolver(solver::SolverKind::CrossCheck, C);
  solver::CheckResult Res = S->checkSat(F);
  EXPECT_NE(Res.TheAnswer, solver::Answer::Unknown) << printTerm(F);
}

INSTANTIATE_TEST_SUITE_P(Random, SolverBackendTest, ::testing::Range(0, 150));

} // namespace
