//===- tests/BytecodeTest.cpp - Compiled guards vs tree-walking interpreter ----===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "runtime/Bytecode.h"

#include "bench/Workloads.h"
#include "frontend/Interp.h"
#include "frontend/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace expresso;
using namespace expresso::frontend;
using namespace expresso::runtime;
using logic::Assignment;
using logic::Value;

namespace {

std::unique_ptr<Monitor> parse(const char *Source) {
  DiagnosticEngine Diags;
  auto M = parseMonitor(Source, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  return M;
}

TEST(BytecodeTest, ArithmeticAndComparisons) {
  auto M = parse(R"(
    monitor T {
      int a = 0;
      int b = 0;
      bool ok = false;
      void f(int x) {
        ok = a + 2 * b - x >= 3 && (a != b || x % 3 == 1);
      }
    }
  )");
  SlotLayout L(*M);
  const Method *F = M->findMethod("f");
  Program P = compileStmt(L, F->Body[0].Body, F);

  for (int64_t A = -2; A <= 2; ++A) {
    for (int64_t B = -2; B <= 2; ++B) {
      for (int64_t X = -2; X <= 2; ++X) {
        Assignment Shared{{"a", Value::ofInt(A)},
                          {"b", Value::ofInt(B)},
                          {"ok", Value::ofBool(false)}};
        Assignment Locals{{"x", Value::ofInt(X)}};
        // Interpreter.
        Assignment IShared = Shared, ILocals = Locals;
        Env E{&IShared, &ILocals};
        execStmt(F->Body[0].Body, E);
        // VM.
        Frame Fr;
        L.packShared(Shared, Fr);
        L.packLocals(*F, Locals, Fr);
        execute(P, Fr);
        Assignment VShared;
        L.unpackShared(Fr, VShared);
        EXPECT_EQ(VShared.at("ok").asBool(), IShared.at("ok").asBool())
            << "a=" << A << " b=" << B << " x=" << X << "\n"
            << P.str();
      }
    }
  }
}

TEST(BytecodeTest, ShortCircuitSkipsRhs) {
  // (a != 0 && 10 % a == 0) must not evaluate 10 % a when a == 0; mathMod
  // would assert. Short-circuit makes this safe.
  auto M = parse(R"(
    monitor T {
      int a = 0;
      bool ok = false;
      void f() { ok = a != 0 && 10 % 2 == 0; }
    }
  )");
  SlotLayout L(*M);
  const Method *F = M->findMethod("f");
  Program P = compileStmt(L, F->Body[0].Body, F);
  Frame Fr;
  L.packShared({{"a", Value::ofInt(0)}, {"ok", Value::ofBool(true)}}, Fr);
  execute(P, Fr);
  Assignment Out;
  L.unpackShared(Fr, Out);
  EXPECT_FALSE(Out.at("ok").asBool());
}

TEST(BytecodeTest, LoopsAndArrays) {
  auto M = parse(R"(
    monitor T {
      bool[] forks;
      int n = 0;
      void setAll(int k) {
        int i = 0;
        while (i < k) { forks[i] = true; i++; }
        n = k;
      }
    }
  )");
  SlotLayout L(*M);
  const Method *F = M->findMethod("setAll");
  Frame Fr;
  L.packShared(initialState(*M), Fr);
  L.packLocals(*F, {{"k", Value::ofInt(4)}}, Fr);
  for (const WaitUntil &W : F->Body)
    execute(compileStmt(L, W.Body, F), Fr);
  Assignment Out;
  L.unpackShared(Fr, Out);
  EXPECT_EQ(Out.at("n").asInt(), 4);
  EXPECT_EQ(Out.at("forks").arrayAt(3), 1);
  EXPECT_EQ(Out.at("forks").arrayAt(4), 0);
}

/// Differential sweep: for every benchmark monitor, compiled guards and
/// bodies agree with the tree-walking interpreter on randomized states.
class BytecodeDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(BytecodeDifferentialTest, AgreesWithInterpreterOnBenchmarks) {
  const auto &All = bench::allBenchmarks();
  const bench::BenchmarkDef &Def =
      All[static_cast<size_t>(GetParam()) % All.size()];
  auto M = parse(Def.Source.c_str());
  SlotLayout L(*M);
  Rng R(static_cast<uint64_t>(GetParam()) * 40503 + 11);

  for (const Method &Me : M->Methods) {
    for (const WaitUntil &W : Me.Body) {
      Program GuardP = compileExpr(L, W.Guard, &Me);
      Program BodyP = compileStmt(L, W.Body, &Me);
      for (int Trial = 0; Trial < 20; ++Trial) {
        // Random shared state (respecting field types) and locals.
        Assignment Shared = initialState(*M);
        for (auto &[Name, V] : Shared) {
          if (V.S == logic::Sort::Int) {
            V = Value::ofInt(R.range(0, 6));
          } else if (V.S == logic::Sort::Bool) {
            V = Value::ofBool(R.chance(1, 2));
          } else {
            for (int64_t I = 0; I < 4; ++I)
              if (R.chance(1, 2))
                V.A[I] = R.range(0, 1);
          }
        }
        Assignment Locals;
        for (const Param &P2 : Me.Params)
          Locals[P2.Name] = P2.Type == TypeKind::Bool
                                ? Value::ofBool(R.chance(1, 2))
                                : Value::ofInt(R.range(0, 4));
        // Pre-bind locals declared in earlier CCR bodies (e.g. TicketedRW's
        // ticket variable) so guard evaluation sees them; VM slots default
        // to 0, so mirror that.
        std::vector<const Stmt *> Work;
        for (const WaitUntil &W2 : Me.Body)
          Work.push_back(W2.Body);
        while (!Work.empty()) {
          const Stmt *S = Work.back();
          Work.pop_back();
          if (const auto *D = dyn_cast<LocalDeclStmt>(S)) {
            if (!Locals.count(D->name()))
              Locals[D->name()] = D->type() == TypeKind::Bool
                                      ? Value::ofBool(false)
                                      : Value::ofInt(0);
          } else if (const auto *Seq = dyn_cast<SeqStmt>(S)) {
            for (const Stmt *Sub : Seq->stmts())
              Work.push_back(Sub);
          } else if (const auto *If = dyn_cast<IfStmt>(S)) {
            Work.push_back(If->thenStmt());
            Work.push_back(If->elseStmt());
          } else if (const auto *Wh = dyn_cast<WhileStmt>(S)) {
            Work.push_back(Wh->body());
          }
        }

        // Guard comparison.
        Assignment IShared = Shared, ILocals = Locals;
        Env E{&IShared, &ILocals};
        bool IGuard = evalExpr(W.Guard, E).asBool();
        Frame Fr;
        L.packShared(Shared, Fr);
        L.packLocals(Me, Locals, Fr);
        bool VGuard = execute(GuardP, Fr) != 0;
        ASSERT_EQ(VGuard, IGuard)
            << Def.Name << " " << Me.Name << " guard\n"
            << GuardP.str();

        // Body comparison (only when the guard holds, as at run time).
        if (!IGuard)
          continue;
        execStmt(W.Body, E);
        execute(BodyP, Fr);
        Assignment VShared;
        L.unpackShared(Fr, VShared);
        for (const auto &[Name, V] : IShared) {
          if (V.S == logic::Sort::Int || V.S == logic::Sort::Bool) {
            ASSERT_EQ(VShared.at(Name).I, V.I)
                << Def.Name << " " << Me.Name << " body: field " << Name;
          } else {
            for (const auto &[Idx, Elem] : V.A)
              ASSERT_EQ(VShared.at(Name).arrayAt(Idx), Elem)
                  << Def.Name << " " << Me.Name << " body: array " << Name;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BytecodeDifferentialTest,
                         ::testing::Range(0, 14),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return bench::allBenchmarks()
                               [static_cast<size_t>(Info.param)]
                                   .Name;
                         });

} // namespace
