//===- tests/FrontendTest.cpp - Lexer, parser, sema, interpreter -------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "frontend/Interp.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

#include "logic/Printer.h"

#include <gtest/gtest.h>

using namespace expresso;
using namespace expresso::frontend;

namespace {

const char *RWSource = R"(
// Figure 1 of the paper: implicit-signal readers-writers lock.
monitor RWLock {
  int readers = 0;
  bool writerIn = false;

  void enterReader() {
    waituntil (!writerIn) { readers++; }
  }
  void exitReader() {
    if (readers > 0) readers--;
  }
  void enterWriter() {
    waituntil (readers == 0 && !writerIn) { writerIn = true; }
  }
  void exitWriter() {
    writerIn = false;
  }
}
)";

TEST(LexerTest, TokenizesRW) {
  DiagnosticEngine Diags;
  auto Tokens = lex(RWSource, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  ASSERT_GT(Tokens.size(), 10u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwMonitor);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Text, "RWLock");
  EXPECT_EQ(Tokens.back().Kind, TokenKind::EndOfFile);
}

TEST(LexerTest, CommentsAndOperators) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a /* block */ <= b // line\n != ++", Diags);
  EXPECT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Tokens.size(), 6u); // a <= b != ++ EOF
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Le);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::BangEq);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::PlusPlus);
}

TEST(LexerTest, ReportsBadCharacter) {
  DiagnosticEngine Diags;
  lex("a $ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, ParsesRW) {
  DiagnosticEngine Diags;
  auto M = parseMonitor(RWSource, Diags);
  ASSERT_NE(M, nullptr) << Diags.str();
  EXPECT_EQ(M->Name, "RWLock");
  ASSERT_EQ(M->Fields.size(), 2u);
  EXPECT_EQ(M->Fields[0].Name, "readers");
  EXPECT_FALSE(M->Fields[0].IsConst);
  ASSERT_EQ(M->Methods.size(), 4u);
  // Bare statements become waituntil(true){s}.
  const Method *ExitReader = M->findMethod("exitReader");
  ASSERT_NE(ExitReader, nullptr);
  ASSERT_EQ(ExitReader->Body.size(), 1u);
  EXPECT_TRUE(isa<BoolLit>(ExitReader->Body[0].Guard));
  // CCR ids are assigned in program order.
  auto Ccrs = M->ccrs();
  ASSERT_EQ(Ccrs.size(), 4u);
  for (size_t I = 0; I < Ccrs.size(); ++I)
    EXPECT_EQ(Ccrs[I]->Id, I);
}

TEST(ParserTest, IncrementSugar) {
  DiagnosticEngine Diags;
  auto M = parseMonitor("monitor T { int x; void f() { x++; } }", Diags);
  ASSERT_NE(M, nullptr) << Diags.str();
  const auto *Body = M->Methods[0].Body[0].Body;
  const auto *Assign = dyn_cast<AssignStmt>(Body);
  ASSERT_NE(Assign, nullptr);
  EXPECT_EQ(printExpr(Assign->value()), "x + 1");
}

TEST(ParserTest, RejectsNestedWaituntil) {
  DiagnosticEngine Diags;
  auto M = parseMonitor(
      "monitor T { int x; void f() { waituntil (x > 0) { waituntil (x > 1) "
      "{ x = 1; } } } }",
      Diags);
  EXPECT_EQ(M, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, ParsesRequiresAndInit) {
  DiagnosticEngine Diags;
  auto M = parseMonitor(R"(
    monitor BB {
      const int capacity;
      int count = 0;
      requires capacity > 0;
      init { count = 0; }
      void put() { waituntil (count < capacity) { count++; } }
    }
  )",
                        Diags);
  ASSERT_NE(M, nullptr) << Diags.str();
  EXPECT_EQ(M->Requires.size(), 1u);
  EXPECT_NE(M->InitBody, nullptr);
}

TEST(SemaTest, LowersGuardsAndClassifiesPredicates) {
  DiagnosticEngine Diags;
  auto M = parseMonitor(RWSource, Diags);
  ASSERT_NE(M, nullptr);
  logic::TermContext C;
  auto Sema = analyze(*M, C, Diags);
  ASSERT_NE(Sema, nullptr) << Diags.str();
  ASSERT_EQ(Sema->Ccrs.size(), 4u);
  // Three classes: !writerIn, true, readers==0 && !writerIn.
  EXPECT_EQ(Sema->Classes.size(), 3u);
  // exitReader and exitWriter share the ground `true` class.
  EXPECT_EQ(Sema->Ccrs[1].Class, Sema->Ccrs[3].Class);
  EXPECT_TRUE(Sema->Ccrs[1].Class->isGround());
  EXPECT_EQ(logic::printTerm(Sema->Ccrs[0].Guard), "!writerIn");
}

TEST(SemaTest, LocalVariablePredicateClasses) {
  // Two methods with alpha-equivalent guards over their own locals must
  // share one predicate class (Example 4.2's premise).
  DiagnosticEngine Diags;
  auto M = parseMonitor(R"(
    monitor T {
      int y = 0;
      void m1(int x) { waituntil (x < y) { x = y + 1; } }
      void m2(int z) { waituntil (z < y) { z = y + 1; } }
      void bump() { y = y + 2; }
    }
  )",
                        Diags);
  ASSERT_NE(M, nullptr) << Diags.str();
  logic::TermContext C;
  auto Sema = analyze(*M, C, Diags);
  ASSERT_NE(Sema, nullptr) << Diags.str();
  EXPECT_EQ(Sema->Ccrs[0].Class, Sema->Ccrs[1].Class);
  ASSERT_EQ(Sema->Ccrs[0].ClassArgs.size(), 1u);
  EXPECT_EQ(Sema->Ccrs[0].ClassArgs[0]->varName(), "m1::x");
  EXPECT_EQ(Sema->Ccrs[1].ClassArgs[0]->varName(), "m2::z");
}

TEST(SemaTest, RejectsTypeErrors) {
  struct Case {
    const char *Source;
    const char *What;
  };
  const Case Cases[] = {
      {"monitor T { int x; void f() { x = true; } }", "assign bool to int"},
      {"monitor T { bool b; void f() { waituntil (b + 1) {;} } }",
       "arith on bool"},
      {"monitor T { int x; void f() { y = 1; } }", "unknown variable"},
      {"monitor T { const int c; void f() { c = 1; } }",
       "const assigned outside init"},
      {"monitor T { int x; int y; void f() { x = x * y; } }",
       "nonlinear multiplication"},
      {"monitor T { int x; void f(int x) { x = 1; } }", "param shadows"},
      {"monitor T { int x; requires x > 0; void f() { x = 1; } }",
       "requires over non-const"},
  };
  for (const Case &TestCase : Cases) {
    DiagnosticEngine Diags;
    auto M = parseMonitor(TestCase.Source, Diags);
    if (!M)
      continue; // parse error also acceptable for shadowing case
    logic::TermContext C;
    auto Sema = analyze(*M, C, Diags);
    EXPECT_EQ(Sema, nullptr) << TestCase.What;
    EXPECT_TRUE(Diags.hasErrors()) << TestCase.What;
  }
}

TEST(SemaTest, ModPatternLowersToDivisibility) {
  DiagnosticEngine Diags;
  auto M = parseMonitor(
      "monitor T { int x; void f() { waituntil (x % 2 == 0) { x++; } } }",
      Diags);
  ASSERT_NE(M, nullptr) << Diags.str();
  logic::TermContext C;
  auto Sema = analyze(*M, C, Diags);
  ASSERT_NE(Sema, nullptr) << Diags.str();
  EXPECT_EQ(Sema->Ccrs[0].Guard->kind(), logic::TermKind::Divides);
}

TEST(InterpTest, ExecutesRWScenario) {
  DiagnosticEngine Diags;
  auto M = parseMonitor(RWSource, Diags);
  ASSERT_NE(M, nullptr);
  logic::Assignment State = initialState(*M);
  EXPECT_EQ(State.at("readers").asInt(), 0);
  EXPECT_FALSE(State.at("writerIn").asBool());

  logic::Assignment Locals;
  Env E{&State, &Locals};
  const Method *EnterReader = M->findMethod("enterReader");
  execStmt(EnterReader->Body[0].Body, E);
  execStmt(EnterReader->Body[0].Body, E);
  EXPECT_EQ(State.at("readers").asInt(), 2);
  const Method *ExitReader = M->findMethod("exitReader");
  execStmt(ExitReader->Body[0].Body, E);
  EXPECT_EQ(State.at("readers").asInt(), 1);
}

TEST(InterpTest, GuardEvaluationWithLocals) {
  DiagnosticEngine Diags;
  auto M = parseMonitor(
      "monitor T { int y = 5; void m(int x) { waituntil (x < y) { y = y - x; "
      "} } }",
      Diags);
  ASSERT_NE(M, nullptr) << Diags.str();
  logic::Assignment State = initialState(*M);
  logic::Assignment Locals{{"x", logic::Value::ofInt(3)}};
  Env E{&State, &Locals};
  EXPECT_TRUE(evalExpr(M->Methods[0].Body[0].Guard, E).asBool());
  execStmt(M->Methods[0].Body[0].Body, E);
  EXPECT_EQ(State.at("y").asInt(), 2);
  EXPECT_FALSE(evalExpr(M->Methods[0].Body[0].Guard, E).asBool());
}

TEST(InterpTest, ArraysAndLoops) {
  DiagnosticEngine Diags;
  auto M = parseMonitor(R"(
    monitor T {
      bool[] forks;
      int n = 0;
      void setAll(int k) {
        int i = 0;
        while (i < k) { forks[i] = true; i++; }
        n = k;
      }
    }
  )",
                        Diags);
  ASSERT_NE(M, nullptr) << Diags.str();
  logic::Assignment State = initialState(*M);
  logic::Assignment Locals{{"k", logic::Value::ofInt(3)}};
  Env E{&State, &Locals};
  // Each bare top-level statement is its own CCR: run the whole method.
  for (const WaitUntil &W : M->Methods[0].Body)
    execStmt(W.Body, E);
  EXPECT_EQ(State.at("n").asInt(), 3);
  EXPECT_EQ(State.at("forks").arrayAt(0), 1);
  EXPECT_EQ(State.at("forks").arrayAt(2), 1);
  EXPECT_EQ(State.at("forks").arrayAt(3), 0);
}

} // namespace
