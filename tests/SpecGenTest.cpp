//===- tests/SpecGenTest.cpp - Spec generator contracts -----------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contracts of the specgen library that everything downstream leans on:
///
///   * determinism  — same GenConfig, byte-identical source (what makes
///     *.repro files and the corpus reproducible);
///   * validity     — every generated spec parses and passes Sema, across a
///     wide sample of configs (the differential rig never wants to burn a
///     matrix run on an invalid spec);
///   * monotonicity — the knobs actually steer the measured shape (a CCR
///     knob that quietly saturates would silently shrink fuzz coverage);
///   * round-trip   — configToString/configFromString invert each other
///     (the repro-file wire format);
///   * legacy       — legacyRandomMonitorSource consumes the Rng exactly
///     as the historical in-test generator did.
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "specgen/SpecGen.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace expresso;
using namespace expresso::specgen;

namespace {

/// Parses and analyzes \p Source; returns the measured shape. Fails the
/// current test on parse/sema rejection.
bool parseAndMeasure(const std::string &Source, SpecShape &Shape,
                     std::string *Why = nullptr) {
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Source, Diags);
  if (!M) {
    if (Why)
      *Why = "parse: " + Diags.str();
    return false;
  }
  logic::TermContext C;
  auto Sema = frontend::analyze(*M, C, Diags);
  if (!Sema) {
    if (Why)
      *Why = "sema: " + Diags.str();
    return false;
  }
  Shape = measureShape(*M);
  return true;
}

TEST(SpecGenTest, SameConfigByteIdentical) {
  for (uint64_t Seed : {1u, 7u, 42u, 1000u}) {
    GenConfig Config;
    Config.Seed = Seed;
    Config.Ccrs = 6;
    Config.PredicateDepth = 3;
    Config.normalize();
    std::string A = generateMonitorSource(Config);
    std::string B = generateMonitorSource(Config);
    EXPECT_EQ(A, B) << "seed " << Seed;
    EXPECT_FALSE(A.empty());
  }
}

TEST(SpecGenTest, DistinctSeedsDistinctSpecs) {
  GenConfig Config;
  Config.Seed = 1;
  std::string A = generateMonitorSource(Config);
  Config.Seed = 2;
  std::string B = generateMonitorSource(Config);
  EXPECT_NE(A, B);
}

// N = 500 sampled configs: every generated spec parses and passes Sema.
// This is the validity-by-construction claim the differential rig builds
// on — zero rejects, not "mostly valid".
TEST(SpecGenTest, FiveHundredSampledConfigsAllValid) {
  GenConfig Max;
  Max.Ccrs = 8;
  Max.MaxCcrsPerMethod = 3;
  Max.IntFields = 5;
  Max.BoolFields = 2;
  Max.PredicateDepth = 4;
  Max.FanIn = 4;
  Max.BodyStmts = 4;
  Max.AllowLoops = true;

  unsigned Rejects = 0;
  for (uint64_t Seed = 0; Seed < 500; ++Seed) {
    GenConfig Config = sampleConfig(Seed, Max);
    std::string Source = generateMonitorSource(Config);
    SpecShape Shape;
    std::string Why;
    if (!parseAndMeasure(Source, Shape, &Why)) {
      ++Rejects;
      ADD_FAILURE() << "seed " << Seed << " (" << configToString(Config)
                    << "): " << Why << "\n"
                    << Source;
    }
  }
  EXPECT_EQ(Rejects, 0u);
}

// The CCR knob is exact: the generator emits precisely Config.Ccrs
// waituntil regions, and the measured guard shape respects the depth and
// fan-in ceilings.
TEST(SpecGenTest, KnobsSteerMeasuredShape) {
  for (unsigned Ccrs : {1u, 4u, 12u, 40u}) {
    GenConfig Config;
    Config.Seed = 5;
    Config.Ccrs = Ccrs;
    Config.normalize();
    SpecShape Shape;
    std::string Why;
    ASSERT_TRUE(parseAndMeasure(generateMonitorSource(Config), Shape, &Why))
        << Why;
    EXPECT_EQ(Shape.Ccrs, Ccrs);
  }

  // Depth and fan-in are ceilings the measured shape must respect, and
  // raising them must eventually be exercised (monotone coverage): at the
  // high setting some seed reaches a depth/fan-in the low setting cannot.
  unsigned MaxDepthLow = 0, MaxDepthHigh = 0;
  unsigned MaxFanLow = 0, MaxFanHigh = 0;
  for (uint64_t Seed = 0; Seed < 30; ++Seed) {
    GenConfig Low;
    Low.Seed = Seed;
    Low.Ccrs = 6;
    Low.PredicateDepth = 1;
    Low.FanIn = 1;
    Low.normalize();
    SpecShape ShapeLow;
    ASSERT_TRUE(parseAndMeasure(generateMonitorSource(Low), ShapeLow));
    EXPECT_LE(ShapeLow.MaxGuardDepth, 1u);
    EXPECT_LE(ShapeLow.MaxGuardFanIn, 1u);
    MaxDepthLow = std::max(MaxDepthLow, ShapeLow.MaxGuardDepth);
    MaxFanLow = std::max(MaxFanLow, ShapeLow.MaxGuardFanIn);

    GenConfig High = Low;
    High.IntFields = 5;
    High.PredicateDepth = 4;
    High.FanIn = 4;
    High.normalize();
    SpecShape ShapeHigh;
    ASSERT_TRUE(parseAndMeasure(generateMonitorSource(High), ShapeHigh));
    EXPECT_LE(ShapeHigh.MaxGuardDepth, 4u);
    EXPECT_LE(ShapeHigh.MaxGuardFanIn, 4u);
    MaxDepthHigh = std::max(MaxDepthHigh, ShapeHigh.MaxGuardDepth);
    MaxFanHigh = std::max(MaxFanHigh, ShapeHigh.MaxGuardFanIn);
  }
  EXPECT_GT(MaxDepthHigh, MaxDepthLow);
  EXPECT_GT(MaxFanHigh, MaxFanLow);
}

TEST(SpecGenTest, ConfigStringRoundTrips) {
  GenConfig Config;
  Config.Seed = 99;
  Config.Ccrs = 7;
  Config.MaxCcrsPerMethod = 3;
  Config.IntFields = 4;
  Config.BoolFields = 2;
  Config.PredicateDepth = 3;
  Config.FanIn = 3;
  Config.Shape = GuardShape::Arithmetic;
  Config.BodyStmts = 3;
  Config.ConstConfig = false;
  Config.AllowLoops = true;
  Config.AllowParams = false;
  Config.Name = "RoundTrip";
  Config.normalize();

  GenConfig Parsed;
  std::string Error;
  ASSERT_TRUE(configFromString(configToString(Config), Parsed, &Error))
      << Error;
  EXPECT_TRUE(Parsed == Config) << configToString(Parsed);

  GenConfig Bad;
  EXPECT_FALSE(configFromString("seed=1,bogus=2", Bad, &Error));
  EXPECT_FALSE(Error.empty());
}

// The legacy generator must consume the Rng exactly as the historical
// tests/PropertyTest.cpp code did: same seed derivation, same stream of
// draws, so the 25 historical property-test seeds keep their machines.
// The structural pin: two Rngs with the same seed — one consumed by the
// generator, the other by a hand replay of the historical draw sequence —
// end in the same state.
TEST(SpecGenTest, LegacyGeneratorPreservesRngStream) {
  for (uint64_t Seed = 0; Seed < 25; ++Seed) {
    Rng R(Seed * 48271 + 101);
    std::string Source = legacyRandomMonitorSource(R);

    // The historical generator always produced a parseable monitor named
    // Gen over fields a, b, flag with 2-3 methods.
    DiagnosticEngine Diags;
    auto M = frontend::parseMonitor(Source, Diags);
    ASSERT_NE(M, nullptr) << Source << "\n" << Diags.str();
    EXPECT_EQ(M->Name, "Gen");
    EXPECT_EQ(M->Fields.size(), 3u);
    EXPECT_GE(M->Methods.size(), 2u);
    EXPECT_LE(M->Methods.size(), 3u);

    // Determinism of the wrapper itself.
    Rng R2(Seed * 48271 + 101);
    EXPECT_EQ(legacyRandomMonitorSource(R2), Source);

    // Both Rngs must be in identical states afterward: the generator made
    // exactly the same number of draws both times, and a subsequent draw
    // (the property test draws task assignments next) agrees.
    EXPECT_EQ(R.below(1000), R2.below(1000)) << "seed " << Seed;
  }
}

} // namespace
