//===- tests/LogicTest.cpp - Term DAG, substitution, evaluation ------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "logic/Linear.h"
#include "logic/Printer.h"
#include "logic/Simplify.h"
#include "logic/Term.h"
#include "logic/TermOps.h"

#include <gtest/gtest.h>

using namespace expresso;
using namespace expresso::logic;

namespace {

class LogicTest : public ::testing::Test {
protected:
  TermContext C;
  const Term *X = C.var("x", Sort::Int);
  const Term *Y = C.var("y", Sort::Int);
  const Term *Z = C.var("z", Sort::Int);
  const Term *P = C.var("p", Sort::Bool);
  const Term *Q = C.var("q", Sort::Bool);
};

//===----------------------------------------------------------------------===//
// Hash-consing and smart constructors
//===----------------------------------------------------------------------===//

TEST_F(LogicTest, HashConsingIdentity) {
  EXPECT_EQ(C.add(X, Y), C.add(Y, X)); // commutative sort order
  EXPECT_EQ(C.intConst(5), C.intConst(5));
  EXPECT_EQ(C.and_(P, Q), C.and_(Q, P));
  EXPECT_NE(C.add(X, Y), C.add(X, Z));
}

TEST_F(LogicTest, ConstantFolding) {
  EXPECT_EQ(C.add(C.intConst(2), C.intConst(3)), C.intConst(5));
  EXPECT_EQ(C.mulConst(4, C.intConst(5)), C.intConst(20));
  EXPECT_EQ(C.le(C.intConst(1), C.intConst(2)), C.getTrue());
  EXPECT_EQ(C.lt(C.intConst(2), C.intConst(2)), C.getFalse());
  EXPECT_EQ(C.eq(C.intConst(7), C.intConst(7)), C.getTrue());
}

TEST_F(LogicTest, AddFlattensAndFoldsConstants) {
  const Term *T = C.add({X, C.add(Y, C.intConst(2)), C.intConst(3)});
  ASSERT_EQ(T->kind(), TermKind::Add);
  EXPECT_EQ(T, C.add({X, Y, C.intConst(5)}));
}

TEST_F(LogicTest, MulDistributesAndCollapses) {
  EXPECT_EQ(C.mulConst(2, C.add(X, Y)), C.add(C.mulConst(2, X), C.mulConst(2, Y)));
  EXPECT_EQ(C.mulConst(2, C.mulConst(3, X)), C.mulConst(6, X));
  EXPECT_EQ(C.mulConst(1, X), X);
  EXPECT_EQ(C.mulConst(0, X), C.getZero());
}

TEST_F(LogicTest, BoolIdentities) {
  EXPECT_EQ(C.not_(C.not_(P)), P);
  EXPECT_EQ(C.and_(P, C.getTrue()), P);
  EXPECT_EQ(C.and_(P, C.getFalse()), C.getFalse());
  EXPECT_EQ(C.or_(P, C.getFalse()), P);
  EXPECT_EQ(C.or_(P, C.getTrue()), C.getTrue());
  EXPECT_EQ(C.and_(P, C.not_(P)), C.getFalse());
  EXPECT_EQ(C.or_(P, C.not_(P)), C.getTrue());
  EXPECT_EQ(C.and_(P, P), P);
}

TEST_F(LogicTest, IteSimplifications) {
  EXPECT_EQ(C.ite(C.getTrue(), X, Y), X);
  EXPECT_EQ(C.ite(C.getFalse(), X, Y), Y);
  EXPECT_EQ(C.ite(P, X, X), X);
}

TEST_F(LogicTest, BoolEqualityWithConstant) {
  EXPECT_EQ(C.eq(P, C.getTrue()), P);
  EXPECT_EQ(C.eq(P, C.getFalse()), C.not_(P));
}

TEST_F(LogicTest, SelectOverStore) {
  const Term *A = C.var("a", Sort::IntArray);
  const Term *I = C.var("i", Sort::Int);
  const Term *J = C.var("j", Sort::Int);
  // Same index: read the stored value.
  EXPECT_EQ(C.select(C.store(A, I, X), I), X);
  // Distinct constant indices: skip the store.
  EXPECT_EQ(C.select(C.store(A, C.intConst(1), X), C.intConst(2)),
            C.select(A, C.intConst(2)));
  // Symbolic indices: ite.
  const Term *R = C.select(C.store(A, I, X), J);
  ASSERT_EQ(R->kind(), TermKind::Ite);
}

TEST_F(LogicTest, StoreOverStoreSameIndex) {
  const Term *A = C.var("a", Sort::IntArray);
  const Term *I = C.var("i", Sort::Int);
  EXPECT_EQ(C.store(C.store(A, I, X), I, Y), C.store(A, I, Y));
}

TEST_F(LogicTest, DividesFolding) {
  EXPECT_EQ(C.divides(1, X), C.getTrue());
  EXPECT_EQ(C.divides(3, C.intConst(9)), C.getTrue());
  EXPECT_EQ(C.divides(3, C.intConst(10)), C.getFalse());
}

//===----------------------------------------------------------------------===//
// Free variables and substitution
//===----------------------------------------------------------------------===//

TEST_F(LogicTest, FreeVarsDeterministic) {
  const Term *T = C.and_(C.le(X, Y), C.or_(P, C.eq(Z, C.intConst(0))));
  auto Vars = freeVars(T);
  ASSERT_EQ(Vars.size(), 4u);
  EXPECT_EQ(Vars[0], X);
  EXPECT_EQ(Vars[1], Y);
  EXPECT_EQ(Vars[2], Z);
  EXPECT_EQ(Vars[3], P);
}

TEST_F(LogicTest, SubstituteParallel) {
  // Parallel substitution x:=y, y:=x swaps, it does not chain.
  const Term *T = C.le(X, Y);
  Substitution S{{X, Y}, {Y, X}};
  EXPECT_EQ(substitute(C, T, S), C.le(Y, X));
}

TEST_F(LogicTest, SubstituteIntoArray) {
  const Term *A = C.var("a", Sort::BoolArray);
  const Term *I = C.var("i", Sort::Int);
  const Term *T = C.select(A, I);
  EXPECT_EQ(substitute(C, T, I, C.intConst(3)), C.select(A, C.intConst(3)));
}

TEST_F(LogicTest, OccursCheck) {
  const Term *T = C.add(X, C.mulConst(2, Y));
  EXPECT_TRUE(occurs(T, X));
  EXPECT_TRUE(occurs(T, Y));
  EXPECT_FALSE(occurs(T, Z));
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

TEST_F(LogicTest, EvaluateArithmetic) {
  Assignment Asg{{"x", Value::ofInt(3)}, {"y", Value::ofInt(4)}};
  EXPECT_EQ(evaluate(C.add(X, C.mulConst(2, Y)), Asg).asInt(), 11);
  EXPECT_TRUE(evaluateBool(C.lt(X, Y), Asg));
  EXPECT_FALSE(evaluateBool(C.eq(X, Y), Asg));
}

TEST_F(LogicTest, EvaluateDividesOnNegatives) {
  Assignment Asg{{"x", Value::ofInt(-4)}};
  EXPECT_TRUE(evaluateBool(C.divides(2, X), Asg));
  EXPECT_FALSE(evaluateBool(C.divides(3, X), Asg));
}

TEST_F(LogicTest, EvaluateArray) {
  Assignment Asg{
      {"a", Value::ofArray(Sort::IntArray, {{0, 10}, {1, 20}})},
      {"i", Value::ofInt(1)},
  };
  const Term *A = C.var("a", Sort::IntArray);
  const Term *I = C.var("i", Sort::Int);
  EXPECT_EQ(evaluate(C.select(A, I), Asg).asInt(), 20);
  EXPECT_EQ(evaluate(C.select(C.store(A, I, C.intConst(99)), I), Asg).asInt(),
            99);
}

//===----------------------------------------------------------------------===//
// NNF
//===----------------------------------------------------------------------===//

TEST_F(LogicTest, NNFEliminatesArithmeticNegation) {
  // not (x <= y)  =>  y + 1 <= x
  EXPECT_EQ(toNNF(C, C.not_(C.le(X, Y))), C.le(C.add(Y, C.getOne()), X));
  // not (x < y)  =>  y <= x
  EXPECT_EQ(toNNF(C, C.not_(C.lt(X, Y))), C.le(Y, X));
}

TEST_F(LogicTest, NNFSplitsIntDisequality) {
  const Term *N = toNNF(C, C.not_(C.eq(X, Y)));
  ASSERT_EQ(N->kind(), TermKind::Or);
  EXPECT_EQ(N->numOperands(), 2u);
}

TEST_F(LogicTest, NNFDeMorgan) {
  const Term *N = toNNF(C, C.not_(C.and_(P, Q)));
  EXPECT_EQ(N, C.or_(C.not_(P), C.not_(Q)));
}

//===----------------------------------------------------------------------===//
// Linearization
//===----------------------------------------------------------------------===//

TEST_F(LogicTest, LinearizeCollectsCoefficients) {
  auto L = linearize(C.add({X, X, C.mulConst(3, Y), C.intConst(7)}));
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->coeff(X), 2);
  EXPECT_EQ(L->coeff(Y), 3);
  EXPECT_EQ(L->Constant, 7);
}

TEST_F(LogicTest, LinearizeCancellation) {
  auto L = linearize(C.sub(C.add(X, Y), C.add(X, Y)));
  ASSERT_TRUE(L.has_value());
  EXPECT_TRUE(L->isConstant());
  EXPECT_EQ(L->Constant, 0);
}

TEST_F(LogicTest, NormalizeAtomTightens) {
  // 2x <= 5  =>  x <= 2 (integer tightening).
  auto A = normalizeLinAtom(C.le(C.mulConst(2, X), C.intConst(5)));
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->Kind, LinAtomKind::Le);
  EXPECT_EQ(A->L.coeff(X), 1);
  EXPECT_EQ(A->L.Constant, -2);
}

TEST_F(LogicTest, NormalizeEqInfeasibleGcd) {
  // 2x == 5 has no integer solutions: canonicalizes to false (1 <= 0).
  auto A = normalizeLinAtom(C.eq(C.mulConst(2, X), C.intConst(5)));
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->Kind, LinAtomKind::Le);
  EXPECT_TRUE(A->L.isConstant());
  EXPECT_GT(A->L.Constant, 0);
}

//===----------------------------------------------------------------------===//
// Simplifier
//===----------------------------------------------------------------------===//

TEST_F(LogicTest, SimplifyTrivialComparison) {
  // x + 1 <= x + 3 is always true.
  EXPECT_EQ(simplify(C, C.le(C.add(X, C.getOne()), C.add(X, C.intConst(3)))),
            C.getTrue());
  // x + 3 <= x is always false.
  EXPECT_EQ(simplify(C, C.le(C.add(X, C.intConst(3)), X)), C.getFalse());
}

TEST_F(LogicTest, SimplifyConjunctionKeepsTightestBound) {
  // x <= 3 and x <= 5  =>  x <= 3
  const Term *T =
      simplify(C, C.and_(C.le(X, C.intConst(3)), C.le(X, C.intConst(5))));
  EXPECT_EQ(T, simplify(C, C.le(X, C.intConst(3))));
}

TEST_F(LogicTest, SimplifyConjunctionContradiction) {
  // x <= 1 and x >= 3  =>  false
  const Term *T =
      simplify(C, C.and_(C.le(X, C.getOne()), C.ge(X, C.intConst(3))));
  EXPECT_EQ(T, C.getFalse());
}

TEST_F(LogicTest, SimplifyBoundPairToEquality) {
  // x <= 3 and x >= 3  =>  x == 3
  const Term *T =
      simplify(C, C.and_(C.le(X, C.intConst(3)), C.ge(X, C.intConst(3))));
  EXPECT_EQ(T, simplify(C, C.eq(X, C.intConst(3))));
}

TEST_F(LogicTest, SimplifyDisjunctionTautology) {
  // x <= 4 or x >= 2  =>  true
  const Term *T =
      simplify(C, C.or_(C.le(X, C.intConst(4)), C.ge(X, C.intConst(2))));
  EXPECT_EQ(T, C.getTrue());
}

TEST_F(LogicTest, SimplifyDisjunctionKeepsWeakestBound) {
  // x <= 3 or x <= 5  =>  x <= 5
  const Term *T =
      simplify(C, C.or_(C.le(X, C.intConst(3)), C.le(X, C.intConst(5))));
  EXPECT_EQ(T, simplify(C, C.le(X, C.intConst(5))));
}

TEST_F(LogicTest, SimplifyAbsorption) {
  // p and (p or q)  =>  p
  EXPECT_EQ(simplify(C, C.and_(P, C.or_(P, Q))), P);
  // p or (p and q)  =>  p
  EXPECT_EQ(simplify(C, C.or_(P, C.and_(P, Q))), P);
}

TEST_F(LogicTest, SimplifyEqConflict) {
  const Term *T = simplify(
      C, C.and_(C.eq(X, C.intConst(1)), C.eq(X, C.intConst(2))));
  EXPECT_EQ(T, C.getFalse());
}

TEST_F(LogicTest, SimplifyEqLeInteraction) {
  // x == 3 and x <= 1 => false; x == 3 and x <= 5 => x == 3.
  EXPECT_EQ(simplify(C, C.and_(C.eq(X, C.intConst(3)), C.le(X, C.getOne()))),
            C.getFalse());
  EXPECT_EQ(simplify(C, C.and_(C.eq(X, C.intConst(3)), C.le(X, C.intConst(5)))),
            simplify(C, C.eq(X, C.intConst(3))));
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

TEST_F(LogicTest, PrettyPrinting) {
  // Commutative operands order by creation id: P was interned before the
  // x <= y atom.
  EXPECT_EQ(printTerm(C.and_(C.le(X, Y), P)), "p && x <= y");
  EXPECT_EQ(printTerm(C.not_(P)), "!p");
  EXPECT_EQ(printTerm(C.add(X, C.mulConst(2, Y))), "x + 2 * y");
}

TEST_F(LogicTest, SmtLibPrinting) {
  EXPECT_EQ(printSmtLib(C.le(X, C.intConst(-1))), "(<= x (- 1))");
  EXPECT_EQ(printSmtLib(C.and_(P, Q)), "(and p q)");
}

//===----------------------------------------------------------------------===//
// Property sweep: simplify preserves semantics on random assignments
//===----------------------------------------------------------------------===//

class SimplifySemanticsTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplifySemanticsTest, SimplifyPreservesTruth) {
  TermContext C;
  const Term *X = C.var("x", Sort::Int);
  const Term *Y = C.var("y", Sort::Int);
  const Term *P = C.var("p", Sort::Bool);
  int Seed = GetParam();

  // A small pool of formulas exercising all simplifier paths.
  std::vector<const Term *> Pool = {
      C.and_(C.le(X, C.intConst(3)), C.le(C.intConst(0), X)),
      C.or_(C.lt(X, Y), C.eq(X, Y)),
      C.and_({C.ge(X, C.getZero()), C.not_(C.eq(X, C.intConst(5))), P}),
      C.implies(C.divides(2, X), C.divides(2, C.mulConst(3, X))),
      C.iff(P, C.le(C.add(X, Y), C.intConst(10))),
      C.or_(C.and_(P, C.le(X, Y)), C.and_(C.not_(P), C.lt(Y, X))),
  };
  const Term *F = Pool[static_cast<size_t>(Seed) % Pool.size()];
  const Term *S = simplify(C, F);

  for (int64_t XV = -3; XV <= 3; ++XV) {
    for (int64_t YV = -3; YV <= 3; ++YV) {
      for (int PV = 0; PV <= 1; ++PV) {
        Assignment Asg{{"x", Value::ofInt(XV)},
                       {"y", Value::ofInt(YV)},
                       {"p", Value::ofBool(PV != 0)}};
        EXPECT_EQ(evaluateBool(F, Asg), evaluateBool(S, Asg))
            << "formula: " << F->str() << "\nsimplified: " << S->str()
            << "\nx=" << XV << " y=" << YV << " p=" << PV;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormulas, SimplifySemanticsTest,
                         ::testing::Range(0, 6));

} // namespace
