//===- tests/AnalysisTest.cpp - WP, Hoare, commutativity, abduction ----------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "analysis/Abduction.h"
#include "analysis/Commute.h"
#include "analysis/Hoare.h"
#include "analysis/Invariants.h"

#include "frontend/Interp.h"
#include "frontend/Parser.h"
#include "logic/Printer.h"
#include "logic/Simplify.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace expresso;
using namespace expresso::frontend;
using namespace expresso::analysis;
using logic::Term;

namespace {

/// Shared fixture: parses a monitor and wires sema + solver + checker.
class AnalysisFixture {
public:
  explicit AnalysisFixture(const char *Source) {
    DiagnosticEngine Diags;
    M = parseMonitor(Source, Diags);
    if (!M) {
      ADD_FAILURE() << "parse failed: " << Diags.str();
      return;
    }
    Sema = analyze(*M, C, Diags);
    if (!Sema) {
      ADD_FAILURE() << "sema failed: " << Diags.str();
      return;
    }
    Solver = solver::createSolver(solver::SolverKind::Default, C);
    Checker = std::make_unique<HoareChecker>(C, *Sema, *Solver);
  }

  logic::TermContext C;
  std::unique_ptr<Monitor> M;
  std::unique_ptr<SemaInfo> Sema;
  std::unique_ptr<solver::SmtSolver> Solver;
  std::unique_ptr<HoareChecker> Checker;
};

const char *RWSource = R"(
monitor RWLock {
  int readers = 0;
  bool writerIn = false;
  void enterReader() { waituntil (!writerIn) { readers++; } }
  void exitReader()  { if (readers > 0) readers--; }
  void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
  void exitWriter()  { writerIn = false; }
}
)";

//===----------------------------------------------------------------------===//
// Weakest preconditions
//===----------------------------------------------------------------------===//

TEST(WpTest, AssignmentSubstitutes) {
  AnalysisFixture F(RWSource);
  const Term *Readers = F.C.var("readers", logic::Sort::Int);
  const CcrInfo &EnterReader = F.Sema->Ccrs[0];
  // wp(readers++, readers >= 1) == readers + 1 >= 1 == readers >= 0.
  const Term *Q = F.C.ge(Readers, F.C.getOne());
  const Term *W = F.Checker->wpEngine().wp(EnterReader.W->Body,
                                           EnterReader.Parent, Q);
  EXPECT_EQ(logic::simplify(F.C, W),
            logic::simplify(F.C, F.C.ge(Readers, F.C.getZero())));
}

TEST(WpTest, IfSplitsOnCondition) {
  AnalysisFixture F(RWSource);
  const Term *Readers = F.C.var("readers", logic::Sort::Int);
  const CcrInfo &ExitReader = F.Sema->Ccrs[1];
  // wp(if(readers>0) readers--, readers >= 0) is valid under readers >= 0.
  const Term *Q = F.C.ge(Readers, F.C.getZero());
  const Term *W =
      F.Checker->wpEngine().wp(ExitReader.W->Body, ExitReader.Parent, Q);
  EXPECT_TRUE(F.Solver->isValid(F.C.implies(Q, W)));
  // But not under true: readers could be negative... actually if guard
  // readers>0 fails, readers stays; wp should NOT be valid from true.
  EXPECT_FALSE(F.Solver->isValid(W));
}

TEST(WpTest, StoreThroughArray) {
  AnalysisFixture F(R"(
    monitor T {
      bool[] forks;
      void grab(int i) { waituntil (!forks[i]) { forks[i] = true; } }
    }
  )");
  const CcrInfo &Grab = F.Sema->Ccrs[0];
  // wp(forks[i] = true, forks[i]) == true.
  const Term *ForkI = Grab.Guard; // !forks[i]
  const Term *Q = F.C.not_(ForkI); // forks[i]
  const Term *W = F.Checker->wpEngine().wp(Grab.W->Body, Grab.Parent, Q);
  EXPECT_EQ(logic::simplify(F.C, W), F.C.getTrue());
}

TEST(WpTest, WhileOverApproximates) {
  AnalysisFixture F(R"(
    monitor T {
      int x = 0;
      int y = 0;
      void drain() {
        while (x > 0) { x--; }
        y = 1;
      }
    }
  )");
  const CcrInfo &Drain = F.Sema->Ccrs[0];
  const Term *X = F.C.var("x", logic::Sort::Int);
  // After the loop x <= 0 is guaranteed (havoc+assume captures the exit
  // condition), so {true} drain {x <= 0} must be provable...
  HoareTriple T1;
  T1.Pre = F.C.getTrue();
  T1.Body = Drain.W->Body;
  T1.InMethod = Drain.Parent;
  T1.Post = F.C.le(X, F.C.getZero());
  EXPECT_TRUE(F.Checker->proves(T1));
  // ...but {x == 5} drain {x == 0}, though true concretely, is lost by the
  // over-approximation (havoc forgets the exact count) — the conservative
  // direction the paper's §9 accepts.
  HoareTriple T2 = T1;
  T2.Pre = F.C.eq(X, F.C.intConst(5));
  T2.Post = F.C.eq(X, F.C.getZero());
  EXPECT_FALSE(F.Checker->proves(T2));
}

/// Differential: wp agrees with concrete execution on loop-free bodies.
class WpConcreteTest : public ::testing::TestWithParam<int> {};

TEST_P(WpConcreteTest, WpMatchesExecution) {
  AnalysisFixture F(RWSource);
  Rng R(static_cast<uint64_t>(GetParam()) * 2654435761u + 17);
  // Post-condition pool over shared vars.
  const Term *Readers = F.C.var("readers", logic::Sort::Int);
  const Term *WriterIn = F.C.var("writerIn", logic::Sort::Bool);
  std::vector<const Term *> Posts = {
      F.C.ge(Readers, F.C.getZero()),
      F.C.eq(Readers, F.C.intConst(1)),
      F.C.and_(F.C.not_(WriterIn), F.C.le(Readers, F.C.intConst(2))),
      F.C.or_(WriterIn, F.C.ne(Readers, F.C.getZero())),
  };
  for (const CcrInfo &Ccr : F.Sema->Ccrs) {
    const Term *Q = Posts[R.below(Posts.size())];
    const Term *W = F.Checker->wpEngine().wp(Ccr.W->Body, Ccr.Parent, Q);
    // Concrete check on a grid of states: wp true => post true after exec.
    for (int64_t RV = -2; RV <= 3; ++RV) {
      for (int WV = 0; WV <= 1; ++WV) {
        logic::Assignment Shared{{"readers", logic::Value::ofInt(RV)},
                                 {"writerIn", logic::Value::ofBool(WV != 0)}};
        bool WpHolds = logic::evaluateBool(W, Shared);
        logic::Assignment Locals;
        Env E{&Shared, &Locals};
        execStmt(Ccr.W->Body, E);
        bool PostHolds = logic::evaluateBool(Q, Shared);
        if (WpHolds)
          EXPECT_TRUE(PostHolds)
              << "wp unsound for ccr#" << Ccr.W->Id << " post "
              << logic::printTerm(Q) << " at readers=" << RV << " w=" << WV;
        // For loop-free deterministic bodies wp is exact:
        if (PostHolds)
          EXPECT_TRUE(WpHolds)
              << "wp imprecise for ccr#" << Ccr.W->Id << " post "
              << logic::printTerm(Q) << " at readers=" << RV << " w=" << WV;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, WpConcreteTest, ::testing::Range(0, 20));

//===----------------------------------------------------------------------===//
// Hoare triples from the Section 2 walkthrough
//===----------------------------------------------------------------------===//

TEST(HoareTest, Section2Triples) {
  AnalysisFixture F(RWSource);
  logic::TermContext &C = F.C;
  const Term *Readers = C.var("readers", logic::Sort::Int);
  const Term *WriterIn = C.var("writerIn", logic::Sort::Bool);
  const Term *I = C.ge(Readers, C.getZero());
  const Term *Pw = C.and_(C.eq(Readers, C.getZero()), C.not_(WriterIn));

  const CcrInfo &EnterReader = F.Sema->Ccrs[0];
  const CcrInfo &ExitReader = F.Sema->Ccrs[1];
  const CcrInfo &EnterWriter = F.Sema->Ccrs[2];
  const CcrInfo &ExitWriter = F.Sema->Ccrs[3];

  // {readers>=0 ∧ ¬writerIn ∧ ¬Pw} readers++ {¬Pw} : valid.
  HoareTriple T1{C.and_({I, C.not_(WriterIn), C.not_(Pw)}),
                 EnterReader.W->Body, EnterReader.Parent, C.not_(Pw),
                 nullptr};
  EXPECT_TRUE(F.Checker->proves(T1));

  // Dropping readers>=0 invalidates it (the paper's key observation).
  HoareTriple T1Weak = T1;
  T1Weak.Pre = C.and_(C.not_(WriterIn), C.not_(Pw));
  EXPECT_EQ(F.Checker->check(T1Weak), solver::Validity::Invalid);

  // {readers>=0 ∧ ¬Pw} if(readers>0) readers-- {¬Pw} : NOT valid.
  HoareTriple T2{C.and_(I, C.not_(Pw)), ExitReader.W->Body,
                 ExitReader.Parent, C.not_(Pw), nullptr};
  EXPECT_EQ(F.Checker->check(T2), solver::Validity::Invalid);

  // {readers>=0 ∧ Pw} writerIn = true {¬Pw} : valid (single signal).
  HoareTriple T3{C.and_(I, Pw), EnterWriter.W->Body, EnterWriter.Parent,
                 C.not_(Pw), nullptr};
  EXPECT_TRUE(F.Checker->proves(T3));

  // {readers>=0 ∧ ¬Pw} if(readers>0) readers-- {Pw} : NOT valid
  // (conditional signal).
  HoareTriple T4 = T2;
  T4.Post = Pw;
  EXPECT_EQ(F.Checker->check(T4), solver::Validity::Invalid);

  // {readers>=0 ∧ writerIn} writerIn = false {¬writerIn} : valid
  // (unconditional broadcast to readers in exitWriter).
  HoareTriple T5{C.and_(I, WriterIn), ExitWriter.W->Body, ExitWriter.Parent,
                 C.not_(WriterIn), nullptr};
  EXPECT_TRUE(F.Checker->proves(T5));
}

//===----------------------------------------------------------------------===//
// Commutativity (§4.3)
//===----------------------------------------------------------------------===//

TEST(CommuteTest, IncrementsCommute) {
  AnalysisFixture F(R"(
    monitor T {
      int a = 0;
      void inc1() { a = a + 1; }
      void inc2() { a = a + 2; }
    }
  )");
  EXPECT_TRUE(bodiesCommute(F.C, *F.Sema, *F.Solver, F.Sema->Ccrs[0],
                            F.Sema->Ccrs[1]));
}

TEST(CommuteTest, GuardedDecrementDoesNotCommute) {
  AnalysisFixture F(RWSource);
  // enterReader (readers++) vs exitReader (if(readers>0) readers--):
  // from readers==0 the two orders end at 0 vs 1.
  EXPECT_FALSE(bodiesCommute(F.C, *F.Sema, *F.Solver, F.Sema->Ccrs[0],
                             F.Sema->Ccrs[1]));
}

TEST(CommuteTest, AssignmentsToDistinctVarsCommute) {
  AnalysisFixture F(R"(
    monitor T {
      int a = 0;
      int b = 0;
      void setA() { a = b + 1; }
      void incB() { b = b + 1; }
    }
  )");
  // a = b+1 reads b which incB writes: NOT commuting.
  EXPECT_FALSE(bodiesCommute(F.C, *F.Sema, *F.Solver, F.Sema->Ccrs[0],
                             F.Sema->Ccrs[1]));
  // But setA commutes with itself executed by another thread.
  EXPECT_TRUE(bodiesCommute(F.C, *F.Sema, *F.Solver, F.Sema->Ccrs[0],
                            F.Sema->Ccrs[0]));
}

TEST(CommuteTest, SameMethodDifferentThreadsLocals) {
  // put(n) bodies commute (count += n1 then += n2, either order).
  AnalysisFixture F(R"(
    monitor T {
      int count = 0;
      void put(int n) { count = count + n; }
    }
  )");
  EXPECT_TRUE(bodiesCommute(F.C, *F.Sema, *F.Solver, F.Sema->Ccrs[0],
                            F.Sema->Ccrs[0]));
}

TEST(CommuteTest, ArrayStoresAtSymbolicIndices) {
  AnalysisFixture F(R"(
    monitor T {
      int[] slot;
      void w1(int i) { slot[i] = 1; }
      void w2(int j) { slot[j] = 2; }
    }
  )");
  // Same cell, different values: order matters.
  EXPECT_FALSE(bodiesCommute(F.C, *F.Sema, *F.Solver, F.Sema->Ccrs[0],
                             F.Sema->Ccrs[1]));
}

TEST(CommuteTest, LoopsAreConservative) {
  AnalysisFixture F(R"(
    monitor T {
      int a = 0;
      void spin() { while (a > 0) { a--; } }
      void other() { a = 0; }
    }
  )");
  EXPECT_FALSE(bodiesCommute(F.C, *F.Sema, *F.Solver, F.Sema->Ccrs[0],
                             F.Sema->Ccrs[1]));
}

//===----------------------------------------------------------------------===//
// Abduction
//===----------------------------------------------------------------------===//

TEST(AbductionTest, FindsReadersNonNegative) {
  AnalysisFixture F(RWSource);
  logic::TermContext &C = F.C;
  const Term *Readers = C.var("readers", logic::Sort::Int);
  const Term *WriterIn = C.var("writerIn", logic::Sort::Bool);
  const Term *Pw = C.and_(C.eq(Readers, C.getZero()), C.not_(WriterIn));
  const Term *PwAfter = C.and_(C.eq(C.add(Readers, C.getOne()), C.getZero()),
                               C.not_(WriterIn));
  const Term *P = C.and_(C.not_(WriterIn), C.not_(Pw));
  const Term *Goal = C.not_(PwAfter);

  auto Candidates = abduce(C, *F.Solver, P, Goal, {Readers, WriterIn});
  ASSERT_FALSE(Candidates.empty());
  // Some candidate must be readers >= 0 (after canonicalization, the atom
  // 0 <= readers).
  const Term *Expected = logic::simplify(C, C.ge(Readers, C.getZero()));
  bool Found = false;
  for (const Term *Cand : Candidates)
    Found |= Cand == Expected;
  EXPECT_TRUE(Found) << "candidates missing readers >= 0";
  // Every candidate must satisfy the abduction contract when conjoined
  // sufficiently: at minimum, consistency with P.
  for (const Term *Cand : Candidates)
    EXPECT_TRUE(F.Solver->isSat(C.and_(P, Cand)))
        << logic::printTerm(Cand);
}

TEST(AbductionTest, ReturnsNothingWhenAlreadyValid) {
  AnalysisFixture F(RWSource);
  logic::TermContext &C = F.C;
  const Term *X = C.var("readers", logic::Sort::Int);
  auto Candidates = abduce(C, *F.Solver, C.ge(X, C.getOne()),
                           C.ge(X, C.getZero()), {X});
  EXPECT_TRUE(Candidates.empty());
}

//===----------------------------------------------------------------------===//
// Invariant inference (Algorithm 2)
//===----------------------------------------------------------------------===//

TEST(InvariantTest, ReadersWritersInvariant) {
  AnalysisFixture F(RWSource);
  InvariantResult IR = inferMonitorInvariant(F.C, *F.Sema, *F.Solver);
  ASSERT_NE(IR.Invariant, nullptr);
  // The inferred invariant must be a true monitor invariant...
  EXPECT_TRUE(isMonitorInvariant(F.C, *F.Sema, *F.Solver, IR.Invariant));
  // ...and strong enough to imply readers >= 0.
  const Term *Readers = F.C.var("readers", logic::Sort::Int);
  EXPECT_TRUE(F.Solver->isValid(
      F.C.implies(IR.Invariant, F.C.ge(Readers, F.C.getZero()))))
      << "inferred: " << logic::printTerm(IR.Invariant);
}

TEST(InvariantTest, BoundedBufferInvariant) {
  AnalysisFixture F(R"(
    monitor BoundedBuffer {
      const int capacity;
      int count = 0;
      requires capacity > 0;
      void put()  { waituntil (count < capacity) { count++; } }
      void take() { waituntil (count > 0) { count--; } }
    }
  )");
  InvariantResult IR = inferMonitorInvariant(F.C, *F.Sema, *F.Solver);
  EXPECT_TRUE(isMonitorInvariant(F.C, *F.Sema, *F.Solver, IR.Invariant));
  const Term *Count = F.C.var("count", logic::Sort::Int);
  const Term *Capacity = F.C.var("capacity", logic::Sort::Int);
  // Paper's BoundedBuffer invariant (Appendix D): 0 <= count <= capacity.
  EXPECT_TRUE(F.Solver->isValid(F.C.implies(
      IR.Invariant, F.C.and_(F.C.ge(Count, F.C.getZero()),
                             F.C.le(Count, Capacity)))))
      << "inferred: " << logic::printTerm(IR.Invariant);
}

TEST(InvariantTest, TrueIsAlwaysAnInvariant) {
  AnalysisFixture F(RWSource);
  EXPECT_TRUE(isMonitorInvariant(F.C, *F.Sema, *F.Solver, F.C.getTrue()));
  // And a false one is rejected.
  const Term *Readers = F.C.var("readers", logic::Sort::Int);
  EXPECT_FALSE(isMonitorInvariant(F.C, *F.Sema, *F.Solver,
                                  F.C.le(Readers, F.C.intConst(-1))));
  // readers == 0 holds initially but is not preserved.
  EXPECT_FALSE(isMonitorInvariant(F.C, *F.Sema, *F.Solver,
                                  F.C.eq(Readers, F.C.getZero())));
}

} // namespace
