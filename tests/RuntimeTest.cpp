//===- tests/RuntimeTest.cpp - Engines under real threads ---------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "bench/Workloads.h"
#include "frontend/Parser.h"
#include "runtime/Engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace expresso;
using namespace expresso::bench;
using namespace expresso::runtime;
using logic::Assignment;
using logic::Value;

namespace {

//===----------------------------------------------------------------------===//
// Unit tests on a hand-built engine
//===----------------------------------------------------------------------===//

struct RWFixture {
  RWFixture() {
    DiagnosticEngine Diags;
    M = frontend::parseMonitor(R"(
monitor RWLock {
  int readers = 0;
  bool writerIn = false;
  void enterReader() { waituntil (!writerIn) { readers++; } }
  void exitReader()  { if (readers > 0) readers--; }
  void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
  void exitWriter()  { writerIn = false; }
}
)",
                               Diags);
    Sema = frontend::analyze(*M, C, Diags);
    Solver = solver::createSolver(solver::SolverKind::Default, C);
    Placement = core::placeSignals(C, *Sema, *Solver);
  }

  logic::TermContext C;
  std::unique_ptr<frontend::Monitor> M;
  std::unique_ptr<frontend::SemaInfo> Sema;
  std::unique_ptr<solver::SmtSolver> Solver;
  core::PlacementResult Placement;
};

TEST(RuntimeTest, SingleThreadedSequenceExplicit) {
  RWFixture F;
  auto E = createExplicitEngine(*F.Sema, SignalPlan::fromPlacement(F.Placement));
  E->call("enterReader");
  E->call("enterReader");
  EXPECT_EQ(E->snapshot().at("readers").asInt(), 2);
  E->call("exitReader");
  E->call("exitReader");
  E->call("enterWriter");
  EXPECT_TRUE(E->snapshot().at("writerIn").asBool());
  E->call("exitWriter");
  EXPECT_FALSE(E->snapshot().at("writerIn").asBool());
}

TEST(RuntimeTest, WriterBlocksUntilReadersLeave) {
  RWFixture F;
  auto E = createExplicitEngine(*F.Sema, SignalPlan::fromPlacement(F.Placement));
  E->call("enterReader");
  std::atomic<bool> WriterIn{false};
  std::thread Writer([&] {
    E->call("enterWriter");
    WriterIn.store(true);
  });
  // The writer must not enter while a reader holds the lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(WriterIn.load());
  E->call("exitReader");
  Writer.join();
  EXPECT_TRUE(WriterIn.load());
  EXPECT_TRUE(E->snapshot().at("writerIn").asBool());
}

TEST(RuntimeTest, BroadcastWakesAllReaders) {
  RWFixture F;
  auto E = createExplicitEngine(*F.Sema, SignalPlan::fromPlacement(F.Placement));
  E->call("enterWriter");
  constexpr int NumReaders = 6;
  std::atomic<int> ReadersIn{0};
  std::vector<std::thread> Readers;
  Readers.reserve(NumReaders);
  for (int I = 0; I < NumReaders; ++I) {
    Readers.emplace_back([&] {
      E->call("enterReader");
      ReadersIn.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(ReadersIn.load(), 0); // all blocked behind the writer
  E->call("exitWriter");
  for (std::thread &T : Readers)
    T.join();
  EXPECT_EQ(ReadersIn.load(), NumReaders);
  EXPECT_EQ(E->snapshot().at("readers").asInt(), NumReaders);
}

TEST(RuntimeTest, StatsCountBlocksAndWakeups) {
  RWFixture F;
  auto E = createExplicitEngine(*F.Sema, SignalPlan::fromPlacement(F.Placement));
  E->call("enterWriter");
  std::thread T([&] { E->call("enterWriter"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  E->call("exitWriter");
  T.join();
  EngineStats S = E->stats();
  EXPECT_GE(S.Blocks, 1u);
  EXPECT_GE(S.Wakeups, 1u);
  EXPECT_EQ(S.Calls, 3u);
  E->call("exitWriter");
}

//===----------------------------------------------------------------------===//
// Integration sweep: every benchmark x every engine terminates with the
// expected final state under real contention.
//===----------------------------------------------------------------------===//

struct SweepCase {
  const char *Bench;
  EngineKind Kind;
};

class EngineSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EngineSweepTest, BalancedWorkloadTerminatesCleanly) {
  const auto &All = allBenchmarks();
  int BenchIdx = std::get<0>(GetParam());
  int KindIdx = std::get<1>(GetParam());
  ASSERT_LT(static_cast<size_t>(BenchIdx), All.size());
  const BenchmarkDef &Def = All[static_cast<size_t>(BenchIdx)];
  EngineKind Kind = static_cast<EngineKind>(KindIdx);

  HarnessOptions Opts;
  Opts.TargetTotalCycles = 600;
  Opts.MinCyclesPerThread = 5;
  BenchContext Ctx(Def, Opts.Placement);

  // Smallest two thread counts of the benchmark's series.
  for (size_t I = 0; I < 2 && I < Def.ThreadCounts.size(); ++I) {
    unsigned Threads = Def.ThreadCounts[I];
    CellResult R = runCell(Def, Ctx, Kind, Threads, Opts);
    EXPECT_TRUE(R.StateOk) << Def.Name << " / " << engineKindName(Kind)
                           << " / " << Threads << " threads";
    EXPECT_GT(R.TotalOps, 0u);
    EXPECT_GT(R.MsPerOp, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllEngines, EngineSweepTest,
    ::testing::Combine(::testing::Range(0, 14), ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &Info) {
      const auto &All = allBenchmarks();
      int B = std::get<0>(Info.param);
      int K = std::get<1>(Info.param);
      return All[static_cast<size_t>(B)].Name + "_" +
             engineKindName(static_cast<EngineKind>(K));
    });

//===----------------------------------------------------------------------===//
// Gold plans must behave identically to Expresso plans on final state.
//===----------------------------------------------------------------------===//

TEST(RuntimeTest, NoLazyBroadcastAlsoTerminates) {
  const BenchmarkDef *Def = findBenchmark("ReadersWriters");
  ASSERT_NE(Def, nullptr);
  HarnessOptions Opts;
  Opts.TargetTotalCycles = 600;
  Opts.Placement.LazyBroadcast = false;
  BenchContext Ctx(*Def, Opts.Placement);
  CellResult R = runCell(*Def, Ctx, EngineKind::Expresso,
                         Def->ThreadCounts[0], Opts);
  EXPECT_TRUE(R.StateOk);
}

TEST(RuntimeTest, PlacementWithoutInvariantStillCorrect) {
  const BenchmarkDef *Def = findBenchmark("BoundedBuffer");
  ASSERT_NE(Def, nullptr);
  HarnessOptions Opts;
  Opts.TargetTotalCycles = 600;
  Opts.Placement.UseInvariant = false;
  BenchContext Ctx(*Def, Opts.Placement);
  CellResult R = runCell(*Def, Ctx, EngineKind::Expresso,
                         Def->ThreadCounts[1], Opts);
  EXPECT_TRUE(R.StateOk);
}

} // namespace
