//===- tests/ServiceTest.cpp - Placement service tests ------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Covers the expressod service layer end to end:
//  * protocol codecs: round trips, truncation/trailing-garbage rejection,
//    and version-1 compatibility (payloads and frames);
//  * CancelToken: deadline/cancel semantics and interrupt hooks;
//  * JobBudget: elastic FIFO slot leasing;
//  * RequestScheduler: priority-over-FIFO ordering, bounded-queue
//    rejection (split by cause), queued-deadline expiry, drain-vs-stop
//    semantics, and surviving throwing tasks;
//  * the daemon itself over real Unix sockets: Σ byte-parity with the
//    local pipeline across all workloads (serial and with N concurrent
//    clients), cross-request shared-cache hits, whole-response replay,
//    malformed/truncated frames failing closed without wedging the server,
//    graceful drain delivering in-flight responses, and a two-daemon fleet
//    sharing one cache directory;
//  * the deadline/cancellation failure-mode matrix: expiry while queued
//    and mid-placement (with the daemon healthy after), a generous
//    deadline being byte-invisible, cancelled runs publishing nothing
//    into the shared tiers, client receive timeouts instead of infinite
//    hangs, and the accept loop retrying through fd exhaustion.
//
// Everything runs on the MiniSmt backend so the suite is identical with
// and without Z3 (and runs under TSan in the sanitizer leg).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Protocol.h"
#include "service/Scheduler.h"
#include "service/Server.h"

#include "bench/Workloads.h"
#include "codegen/Codegen.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "persist/QueryStore.h"
#include "persist/TermCodec.h"
#include "solver/SolverRig.h"
#include "support/CancelToken.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace expresso;
using namespace expresso::service;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// A private temp directory (for sockets and cache dirs).
struct TempDir {
  std::string Path;
  TempDir() {
    std::string Tmpl =
        (std::filesystem::temp_directory_path() / "expresso-svc-XXXXXX")
            .string();
    char *D = ::mkdtemp(Tmpl.data());
    EXPECT_NE(D, nullptr);
    Path = D ? std::string(D) : std::string();
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string sock(const char *Name = "d.sock") const {
    return Path + "/" + Name;
  }
};

/// The local (in-process, CLI-equivalent) pipeline on the mini backend:
/// the byte-parity reference for every daemon response.
struct LocalRun {
  std::string Sigma;
  std::string Summary;
  std::string Ir;
};

LocalRun runLocal(const std::string &BenchName,
                  support::CancelToken *Cancel = nullptr) {
  const bench::BenchmarkDef *Def = bench::findBenchmark(BenchName);
  EXPECT_NE(Def, nullptr);
  logic::TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def->Source, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  auto Sema = frontend::analyze(*M, C, Diags);
  EXPECT_NE(Sema, nullptr) << Diags.str();
  solver::SolverRig Rig = solver::buildSolverRig(C, solver::SolverKind::Mini,
                                                 /*CacheQueries=*/true,
                                                 nullptr);
  core::PlacementOptions Opts;
  Opts.WorkerSolvers = solver::SolverFactory(solver::SolverKind::Mini);
  Opts.Cancel = Cancel;
  core::PlacementResult P = core::placeSignals(C, *Sema, Rig.solver(), Opts);
  EXPECT_FALSE(P.Cancelled);
  return {P.decisionSummary(), P.summary(), codegen::printTargetIr(P)};
}

PlaceRequest benchRequest(const std::string &BenchName,
                          const std::string &Emit = "summary") {
  const bench::BenchmarkDef *Def = bench::findBenchmark(BenchName);
  EXPECT_NE(Def, nullptr);
  PlaceRequest Req;
  Req.Source = Def ? Def->Source : "";
  Req.Emit = Emit;
  Req.Solver = "mini";
  return Req;
}

ServerOptions miniServerOptions(const std::string &SocketPath) {
  ServerOptions Opts;
  Opts.SocketPath = SocketPath;
  Opts.Workers = 2;
  Opts.SolverName = "mini";
  return Opts;
}

std::vector<std::string> allWorkloadNames() {
  std::vector<std::string> Names;
  for (const bench::BenchmarkDef &Def : bench::allBenchmarks())
    Names.push_back(Def.Name);
  return Names;
}

//===----------------------------------------------------------------------===//
// Protocol codecs
//===----------------------------------------------------------------------===//

TEST(ServiceTest, PlaceRequestRoundTripsAndRejectsDamage) {
  PlaceRequest Req;
  Req.Source = "monitor M { var x: int; }";
  Req.Emit = "ir";
  Req.Solver = "mini";
  Req.UseInvariant = false;
  Req.Incremental = false;
  Req.Jobs = 7;
  Req.Prio = Priority::High;
  Req.BypassResultCache = true;
  Req.DeadlineMs = 1500;
  Req.WantTrace = true;

  std::vector<uint8_t> Bytes;
  Req.encode(Bytes);
  PlaceRequest Out;
  ASSERT_TRUE(PlaceRequest::decode(Bytes.data(), Bytes.size(), Out));
  EXPECT_EQ(Out.Source, Req.Source);
  EXPECT_EQ(Out.Emit, Req.Emit);
  EXPECT_EQ(Out.Solver, Req.Solver);
  EXPECT_EQ(Out.UseInvariant, Req.UseInvariant);
  EXPECT_EQ(Out.Incremental, Req.Incremental);
  EXPECT_EQ(Out.Jobs, Req.Jobs);
  EXPECT_EQ(Out.Prio, Req.Prio);
  EXPECT_EQ(Out.BypassResultCache, Req.BypassResultCache);
  EXPECT_EQ(Out.DeadlineMs, Req.DeadlineMs);
  EXPECT_EQ(Out.WantTrace, Req.WantTrace);

  // The prefixes that must still decode are the version boundaries: minus
  // the v3 WantTrace byte is what a v2 client sends; minus the DeadlineMs
  // varint as well is what a v1 client sends. Both read back with the
  // absent tails at their defaults.
  PlaceRequest V1 = Req;
  V1.DeadlineMs = 0;
  V1.WantTrace = false;
  std::vector<uint8_t> V1Bytes;
  V1.encode(V1Bytes);
  // DeadlineMs = 0 and WantTrace = false are one zero byte each.
  ASSERT_EQ(V1Bytes.back(), 0u);
  ASSERT_EQ(V1Bytes[V1Bytes.size() - 2], 0u);
  const size_t V1Len = V1Bytes.size() - 2;
  ASSERT_TRUE(std::equal(V1Bytes.begin(), V1Bytes.begin() + V1Len,
                         Bytes.begin()));
  const size_t V2Len = Bytes.size() - 1;

  // Every other strict prefix is malformed (fail closed, no partial
  // decodes)…
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    PlaceRequest Trunc;
    if (Len == V1Len) {
      ASSERT_TRUE(PlaceRequest::decode(Bytes.data(), Len, Trunc));
      EXPECT_EQ(Trunc.DeadlineMs, 0u);
      EXPECT_FALSE(Trunc.WantTrace);
      EXPECT_EQ(Trunc.Source, Req.Source);
      continue;
    }
    if (Len == V2Len) {
      ASSERT_TRUE(PlaceRequest::decode(Bytes.data(), Len, Trunc));
      EXPECT_EQ(Trunc.DeadlineMs, Req.DeadlineMs);
      EXPECT_FALSE(Trunc.WantTrace);
      continue;
    }
    EXPECT_FALSE(PlaceRequest::decode(Bytes.data(), Len, Trunc))
        << "prefix of " << Len << " bytes decoded";
  }
  // …and so is trailing garbage.
  std::vector<uint8_t> Longer = Bytes;
  Longer.push_back(0);
  PlaceRequest Extra;
  EXPECT_FALSE(PlaceRequest::decode(Longer.data(), Longer.size(), Extra));
}

TEST(ServiceTest, PlaceResponseRoundTripsAndRejectsTruncation) {
  PlaceResponse R;
  R.Status = ResponseStatus::Ok;
  R.Artifact = "artifact bytes\n";
  R.DecisionSummary = "sigma\n";
  R.SolverName = "cache(mini)";
  R.HoareChecks = 42;
  R.CacheHits = 7;
  R.SharedHits = 9;
  R.PairsConsidered = 12;
  R.AnalysisSeconds = 1.25;
  R.QueueSeconds = 0.5;
  R.JobsUsed = 3;
  R.Replayed = true;
  R.TraceId = 77;
  R.TraceJson = "{\"traceEvents\":[]}";

  std::vector<uint8_t> Bytes;
  R.encode(Bytes);
  PlaceResponse Out;
  ASSERT_TRUE(PlaceResponse::decode(Bytes.data(), Bytes.size(), Out));
  EXPECT_EQ(Out.Status, R.Status);
  EXPECT_EQ(Out.Artifact, R.Artifact);
  EXPECT_EQ(Out.DecisionSummary, R.DecisionSummary);
  EXPECT_EQ(Out.SolverName, R.SolverName);
  EXPECT_EQ(Out.HoareChecks, R.HoareChecks);
  EXPECT_EQ(Out.CacheHits, R.CacheHits);
  EXPECT_EQ(Out.SharedHits, R.SharedHits);
  EXPECT_EQ(Out.PairsConsidered, R.PairsConsidered);
  EXPECT_DOUBLE_EQ(Out.AnalysisSeconds, R.AnalysisSeconds);
  EXPECT_DOUBLE_EQ(Out.QueueSeconds, R.QueueSeconds);
  EXPECT_EQ(Out.JobsUsed, R.JobsUsed);
  EXPECT_EQ(Out.Replayed, R.Replayed);
  EXPECT_EQ(Out.TraceId, R.TraceId);
  EXPECT_EQ(Out.TraceJson, R.TraceJson);

  // Truncation is checked on the untraced encoding, whose only decodable
  // strict prefix is the version-2 boundary (minus the TraceId varint and
  // the empty TraceJson length byte).
  PlaceResponse V2 = R;
  V2.TraceId = 0;
  V2.TraceJson.clear();
  std::vector<uint8_t> V2Bytes;
  V2.encode(V2Bytes);
  const size_t V2Len = V2Bytes.size() - 2;
  for (size_t Len = 0; Len < V2Bytes.size(); ++Len) {
    PlaceResponse Trunc;
    if (Len == V2Len) {
      ASSERT_TRUE(PlaceResponse::decode(V2Bytes.data(), Len, Trunc));
      EXPECT_EQ(Trunc.TraceId, 0u);
      EXPECT_TRUE(Trunc.TraceJson.empty());
      EXPECT_EQ(Trunc.Replayed, R.Replayed);
      continue;
    }
    EXPECT_FALSE(PlaceResponse::decode(V2Bytes.data(), Len, Trunc));
  }
}

TEST(ServiceTest, StatusAndShutdownRoundTrip) {
  StatusResponse S;
  S.RequestsServed = 5;
  S.StoreRecords = 99;
  S.JobsBudget = 8;
  S.Draining = true;
  S.StoreProfile = "mini";
  S.StoreDir = "/tmp/x";
  S.RequestsRejectedFull = 3;
  S.RequestsRejectedDraining = 2;
  S.RequestsExpiredQueued = 4;
  S.RequestsCancelledRunning = 1;
  S.RequestsCompleted = 6;
  S.LatencyP50Seconds = 0.25;
  S.LatencyP99Seconds = 1.75;
  std::vector<uint8_t> Bytes;
  S.encode(Bytes);
  StatusResponse SOut;
  ASSERT_TRUE(StatusResponse::decode(Bytes.data(), Bytes.size(), SOut));
  EXPECT_EQ(SOut.RequestsServed, 5u);
  EXPECT_EQ(SOut.StoreRecords, 99u);
  EXPECT_EQ(SOut.JobsBudget, 8u);
  EXPECT_TRUE(SOut.Draining);
  EXPECT_EQ(SOut.StoreProfile, "mini");
  EXPECT_EQ(SOut.StoreDir, "/tmp/x");
  EXPECT_EQ(SOut.RequestsRejectedFull, 3u);
  EXPECT_EQ(SOut.RequestsRejectedDraining, 2u);
  EXPECT_EQ(SOut.RequestsExpiredQueued, 4u);
  EXPECT_EQ(SOut.RequestsCancelledRunning, 1u);
  EXPECT_EQ(SOut.RequestsCompleted, 6u);
  EXPECT_DOUBLE_EQ(SOut.LatencyP50Seconds, 0.25);
  EXPECT_DOUBLE_EQ(SOut.LatencyP99Seconds, 1.75);

  ShutdownRequest Sh;
  Sh.Drain = false;
  Bytes.clear();
  Sh.encode(Bytes);
  ShutdownRequest ShOut;
  ASSERT_TRUE(ShutdownRequest::decode(Bytes.data(), Bytes.size(), ShOut));
  EXPECT_FALSE(ShOut.Drain);
}

TEST(ServiceTest, StatusV1PayloadDecodesWithV2Defaults) {
  // A version-1 daemon's StatusResponse ends at StoreDir. Hand-build that
  // payload — deliberately pinning the v1 field layout — and check the v2
  // decoder accepts it with every appended field at its default.
  std::vector<uint8_t> Bytes;
  persist::ByteWriter B(Bytes);
  B.writeVarint(5);  // served
  B.writeVarint(1);  // active
  B.writeVarint(2);  // queued
  B.writeVarint(3);  // rejected
  B.writeVarint(4);  // replay hits
  B.writeVarint(99); // store records
  B.writeVarint(6);  // store evicted
  B.writeVarint(8);  // jobs budget
  B.writeVarint(7);  // jobs available
  double Uptime = 1.5;
  uint64_t UptimeBits;
  std::memcpy(&UptimeBits, &Uptime, sizeof(UptimeBits));
  B.writeU64(UptimeBits);
  B.writeByte(0); // not draining
  B.writeString("mini");
  B.writeString("");

  StatusResponse Out;
  ASSERT_TRUE(StatusResponse::decode(Bytes.data(), Bytes.size(), Out));
  EXPECT_EQ(Out.RequestsServed, 5u);
  EXPECT_EQ(Out.RequestsRejected, 3u);
  EXPECT_EQ(Out.StoreRecords, 99u);
  EXPECT_EQ(Out.JobsBudget, 8u);
  EXPECT_DOUBLE_EQ(Out.UptimeSeconds, 1.5);
  EXPECT_EQ(Out.StoreProfile, "mini");
  // v2 tail absent → defaults, not garbage.
  EXPECT_EQ(Out.RequestsRejectedFull, 0u);
  EXPECT_EQ(Out.RequestsRejectedDraining, 0u);
  EXPECT_EQ(Out.RequestsExpiredQueued, 0u);
  EXPECT_EQ(Out.RequestsCancelledRunning, 0u);
  EXPECT_EQ(Out.RequestsCompleted, 0u);
  EXPECT_DOUBLE_EQ(Out.LatencyP50Seconds, 0.0);
  EXPECT_DOUBLE_EQ(Out.LatencyP99Seconds, 0.0);
}

//===----------------------------------------------------------------------===//
// CancelToken
//===----------------------------------------------------------------------===//

TEST(ServiceTest, CancelTokenExpiresAndFiresInterruptHooksOnce) {
  support::CancelToken T;
  EXPECT_FALSE(T.expired());
  EXPECT_GT(T.remainingSeconds(), 1.0); // no deadline: effectively unbounded

  int Fired = 0;
  uint64_t Handle = T.registerInterrupt([&] { ++Fired; });
  EXPECT_NE(Handle, 0u);
  EXPECT_EQ(Fired, 0);
  T.cancel();
  EXPECT_TRUE(T.expired());
  EXPECT_EQ(Fired, 1);
  T.cancel(); // idempotent: hooks fire exactly once
  EXPECT_EQ(Fired, 1);
  EXPECT_DOUBLE_EQ(T.remainingSeconds(), 0.0);
  T.unregisterInterrupt(Handle);

  // Registration against an already-cancelled token fires immediately — a
  // solve that starts after cancellation must still be interrupted.
  int Late = 0;
  T.registerInterrupt([&] { ++Late; });
  EXPECT_EQ(Late, 1);

  // Deadline path: a non-positive budget is an immediate cancel…
  support::CancelToken Past;
  Past.setDeadlineAfterSeconds(-1.0);
  EXPECT_TRUE(Past.expired());
  // …and a generous one stays live with a finite remaining budget.
  support::CancelToken Future;
  Future.setDeadlineAfterSeconds(3600.0);
  EXPECT_FALSE(Future.expired());
  EXPECT_GT(Future.remainingSeconds(), 3500.0);
  EXPECT_LT(Future.remainingSeconds(), 3601.0);

  // ScopedInterrupt tolerates the no-deadline (null token) path.
  { support::ScopedInterrupt None(nullptr, [] {}); }
}

//===----------------------------------------------------------------------===//
// JobBudget
//===----------------------------------------------------------------------===//

TEST(ServiceTest, JobBudgetGrantsElasticallyAndReleases) {
  support::JobBudget Budget(4);
  EXPECT_EQ(Budget.total(), 4u);
  support::JobBudget::Lease A = Budget.acquire(2);
  EXPECT_EQ(A.slots(), 2u);
  EXPECT_EQ(Budget.available(), 2u);
  // A wide ask degrades to what is free instead of blocking forever.
  support::JobBudget::Lease B = Budget.acquire(8);
  EXPECT_EQ(B.slots(), 2u);
  EXPECT_EQ(Budget.available(), 0u);
  B.reset();
  EXPECT_EQ(Budget.available(), 2u);
  A.reset();
  EXPECT_EQ(Budget.available(), 4u);
  // Reset is idempotent.
  A.reset();
  EXPECT_EQ(Budget.available(), 4u);
}

TEST(ServiceTest, JobBudgetBlocksUntilASlotFreesThenWakesFifo) {
  support::JobBudget Budget(1);
  support::JobBudget::Lease Held = Budget.acquire(1);
  std::atomic<int> Got{0};
  std::thread Waiter([&] {
    support::JobBudget::Lease L = Budget.acquire(3);
    Got.store(static_cast<int>(L.slots()));
  });
  // The waiter must be blocked (no slots).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(Got.load(), 0);
  Held.reset();
  Waiter.join();
  EXPECT_EQ(Got.load(), 1); // budget is 1, so the wide ask got 1
  EXPECT_EQ(Budget.available(), 1u);
}

//===----------------------------------------------------------------------===//
// RequestScheduler
//===----------------------------------------------------------------------===//

TEST(ServiceTest, SchedulerServesHighPriorityBeforeNormalFifo) {
  RequestScheduler::Options Opts;
  Opts.Workers = 1;
  Opts.MaxQueue = 16;
  RequestScheduler Sched(Opts);

  // Gate the single worker so the queue builds up deterministically.
  std::mutex GateMu;
  std::condition_variable GateCv;
  bool GateOpen = false;
  std::atomic<bool> GateRunning{false};
  ASSERT_TRUE(Sched.submit(Priority::Normal, [&] {
    GateRunning.store(true);
    std::unique_lock<std::mutex> Lock(GateMu);
    GateCv.wait(Lock, [&] { return GateOpen; });
  }));
  while (!GateRunning.load())
    std::this_thread::yield();

  std::mutex OrderMu;
  std::vector<int> Order;
  auto Record = [&](int Id) {
    return [&, Id] {
      std::lock_guard<std::mutex> Lock(OrderMu);
      Order.push_back(Id);
    };
  };
  ASSERT_TRUE(Sched.submit(Priority::Normal, Record(1)));
  ASSERT_TRUE(Sched.submit(Priority::Normal, Record(2)));
  ASSERT_TRUE(Sched.submit(Priority::High, Record(100)));
  ASSERT_TRUE(Sched.submit(Priority::Normal, Record(3)));
  ASSERT_TRUE(Sched.submit(Priority::High, Record(101)));

  {
    std::lock_guard<std::mutex> Lock(GateMu);
    GateOpen = true;
  }
  GateCv.notify_all();
  Sched.drain();

  ASSERT_EQ(Order.size(), 5u);
  // Both high-priority tasks ran first (FIFO within the level), then the
  // normals in arrival order.
  EXPECT_EQ(Order[0], 100);
  EXPECT_EQ(Order[1], 101);
  EXPECT_EQ(Order[2], 1);
  EXPECT_EQ(Order[3], 2);
  EXPECT_EQ(Order[4], 3);
  EXPECT_EQ(Sched.stats().Executed, 6u);
}

TEST(ServiceTest, SchedulerBoundsItsQueueAndRejectsOverflow) {
  RequestScheduler::Options Opts;
  Opts.Workers = 1;
  Opts.MaxQueue = 2;
  RequestScheduler Sched(Opts);

  std::mutex GateMu;
  std::condition_variable GateCv;
  bool GateOpen = false;
  std::atomic<bool> GateRunning{false};
  ASSERT_TRUE(Sched.submit(Priority::Normal, [&] {
    GateRunning.store(true);
    std::unique_lock<std::mutex> Lock(GateMu);
    GateCv.wait(Lock, [&] { return GateOpen; });
  }));
  while (!GateRunning.load())
    std::this_thread::yield();

  EXPECT_TRUE(Sched.submit(Priority::Normal, [] {}));
  EXPECT_TRUE(Sched.submit(Priority::Normal, [] {}));
  // Queue (not counting the in-flight gate) is full now.
  EXPECT_FALSE(Sched.submit(Priority::Normal, [] {}));
  EXPECT_FALSE(Sched.submit(Priority::High, [] {}));
  EXPECT_EQ(Sched.stats().Rejected, 2u);
  // Both refusals were capacity, not shutdown — the split tells a client
  // (and an operator reading status) whether to back off or give up.
  EXPECT_EQ(Sched.stats().RejectedFull, 2u);
  EXPECT_EQ(Sched.stats().RejectedDraining, 0u);

  {
    std::lock_guard<std::mutex> Lock(GateMu);
    GateOpen = true;
  }
  GateCv.notify_all();
  Sched.drain();
  EXPECT_EQ(Sched.stats().Executed, 3u);
  // Post-drain admission is refused — and counted as draining, not full.
  EXPECT_FALSE(Sched.submit(Priority::Normal, [] {}));
  EXPECT_EQ(Sched.stats().RejectedFull, 2u);
  EXPECT_EQ(Sched.stats().RejectedDraining, 1u);
  EXPECT_EQ(Sched.stats().Rejected, 3u);
}

TEST(ServiceTest, SchedulerStopDiscardsQueuedButFinishesInFlight) {
  RequestScheduler::Options Opts;
  Opts.Workers = 1;
  Opts.MaxQueue = 8;
  RequestScheduler Sched(Opts);

  std::mutex GateMu;
  std::condition_variable GateCv;
  bool GateOpen = false;
  std::atomic<bool> GateRunning{false};
  std::atomic<bool> GateFinished{false};
  ASSERT_TRUE(Sched.submit(Priority::Normal, [&] {
    GateRunning.store(true);
    std::unique_lock<std::mutex> Lock(GateMu);
    GateCv.wait(Lock, [&] { return GateOpen; });
    GateFinished.store(true);
  }));
  while (!GateRunning.load())
    std::this_thread::yield();
  std::atomic<int> Ran{0};
  ASSERT_TRUE(Sched.submit(Priority::Normal, [&] { ++Ran; }));
  ASSERT_TRUE(Sched.submit(Priority::Normal, [&] { ++Ran; }));

  std::thread Stopper([&] { Sched.stop(); });
  // stop() must wait for the in-flight gate task.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(GateFinished.load());
  {
    std::lock_guard<std::mutex> Lock(GateMu);
    GateOpen = true;
  }
  GateCv.notify_all();
  Stopper.join();
  EXPECT_TRUE(GateFinished.load());
  EXPECT_EQ(Ran.load(), 0);
  EXPECT_EQ(Sched.stats().Discarded, 2u);
}

TEST(ServiceTest, SchedulerExpiresQueuedDeadlinesWithoutRunningThem) {
  RequestScheduler::Options Opts;
  Opts.Workers = 1;
  Opts.MaxQueue = 8;
  RequestScheduler Sched(Opts);

  // Gate the single worker so the deadline entries sit in the queue.
  std::mutex GateMu;
  std::condition_variable GateCv;
  bool GateOpen = false;
  std::atomic<bool> GateRunning{false};
  ASSERT_TRUE(Sched.submit(Priority::Normal, [&] {
    GateRunning.store(true);
    std::unique_lock<std::mutex> Lock(GateMu);
    GateCv.wait(Lock, [&] { return GateOpen; });
  }));
  while (!GateRunning.load())
    std::this_thread::yield();

  // An entry whose deadline has already fired: its expiry handler must run
  // (so the client is answered), its task never (no worker burnt).
  auto Expired = std::make_shared<support::CancelToken>();
  Expired->cancel();
  std::atomic<bool> DeadTaskRan{false}, DeadAnswered{false};
  ASSERT_TRUE(Sched.submit(
      Priority::Normal, [&] { DeadTaskRan.store(true); }, Expired,
      [&] { DeadAnswered.store(true); }));

  // A live entry with a generous deadline runs exactly like a plain one.
  auto Live = std::make_shared<support::CancelToken>();
  Live->setDeadlineAfterSeconds(3600.0);
  std::atomic<bool> LiveRan{false}, LiveAnswered{false};
  ASSERT_TRUE(Sched.submit(
      Priority::Normal, [&] { LiveRan.store(true); }, Live,
      [&] { LiveAnswered.store(true); }));

  {
    std::lock_guard<std::mutex> Lock(GateMu);
    GateOpen = true;
  }
  GateCv.notify_all();
  Sched.drain();

  EXPECT_FALSE(DeadTaskRan.load());
  EXPECT_TRUE(DeadAnswered.load());
  EXPECT_TRUE(LiveRan.load());
  EXPECT_FALSE(LiveAnswered.load());
  SchedulerStats S = Sched.stats();
  EXPECT_EQ(S.ExpiredQueued, 1u);
  EXPECT_EQ(S.Executed, 2u); // the gate and the live entry; never the dead one
}

TEST(ServiceTest, SchedulerSurvivesThrowingTasks) {
  // Regression: an exception escaping a task used to unwind the worker
  // thread's top frame and std::terminate the whole daemon.
  RequestScheduler::Options Opts;
  Opts.Workers = 1;
  RequestScheduler Sched(Opts);
  ASSERT_TRUE(Sched.submit(Priority::Normal,
                           [] { throw std::runtime_error("task failed"); }));
  std::atomic<bool> Ran{false};
  ASSERT_TRUE(Sched.submit(Priority::Normal, [&] { Ran.store(true); }));
  Sched.drain();
  EXPECT_TRUE(Ran.load());
  EXPECT_EQ(Sched.stats().Executed, 2u); // the throwing task still counts
}

#ifndef _WIN32

//===----------------------------------------------------------------------===//
// The daemon over real sockets
//===----------------------------------------------------------------------===//

TEST(ServiceTest, DaemonMatchesLocalSigmaOnEveryWorkload) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;

  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;
  for (const std::string &Name : allWorkloadNames()) {
    PlaceResponse R;
    ASSERT_TRUE(Client->place(benchRequest(Name), R, &Error))
        << Name << ": " << Error;
    ASSERT_EQ(R.Status, ResponseStatus::Ok) << Name << ": " << R.Error;
    EXPECT_EQ(R.DecisionSummary, runLocal(Name).Sigma) << Name;
    EXPECT_GT(R.SolverQueries, 0u) << Name;
  }

  Srv.requestShutdown(/*Drain=*/true);
  Srv.wait();
}

TEST(ServiceTest, DaemonIrArtifactIsByteIdenticalToLocal) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;
  for (const std::string &Name :
       {std::string("BoundedBuffer"), std::string("ReadersWriters"),
        std::string("AsyncDispatch")}) {
    PlaceResponse R;
    ASSERT_TRUE(Client->place(benchRequest(Name, "ir"), R, &Error)) << Error;
    ASSERT_EQ(R.Status, ResponseStatus::Ok) << R.Error;
    EXPECT_EQ(R.Artifact, runLocal(Name).Ir) << Name;
  }
}

TEST(ServiceTest, ConcurrentClientsAllGetParityAndTheServerSurvives) {
  TempDir Dir;
  ServerOptions Opts = miniServerOptions(Dir.sock());
  Opts.Workers = 3;
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;

  const std::vector<std::string> Names = allWorkloadNames();
  // Reference Σ computed once, locally, up front.
  std::unordered_map<std::string, std::string> Reference;
  for (const std::string &Name : Names)
    Reference[Name] = runLocal(Name).Sigma;

  constexpr unsigned NumClients = 4;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Clients;
  for (unsigned T = 0; T < NumClients; ++T) {
    Clients.emplace_back([&, T] {
      std::string Err;
      auto Client = ServiceClient::connect(Dir.sock(), &Err);
      if (!Client) {
        ++Failures;
        return;
      }
      // Each client walks the workloads at a different starting offset so
      // requests overlap on different specs (and the same spec) at once.
      for (size_t I = 0; I < Names.size(); ++I) {
        const std::string &Name = Names[(I + T * 3) % Names.size()];
        PlaceRequest Req = benchRequest(Name);
        Req.BypassResultCache = (T % 2 == 0); // mix replay and execution
        PlaceResponse R;
        if (!Client->place(Req, R, &Err) ||
            R.Status != ResponseStatus::Ok ||
            R.DecisionSummary != Reference[Name]) {
          ++Failures;
          return;
        }
      }
    });
  }
  for (std::thread &C : Clients)
    C.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Srv.status().RequestsServed, NumClients * Names.size());

  Srv.requestShutdown(/*Drain=*/true);
  Srv.wait();
}

TEST(ServiceTest, SecondRequestHitsTheSharedWarmCache) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;

  PlaceRequest Req = benchRequest("SleepingBarber");
  Req.BypassResultCache = true;
  PlaceResponse Cold, Warm;
  ASSERT_TRUE(Client->place(Req, Cold, &Error)) << Error;
  ASSERT_EQ(Cold.Status, ResponseStatus::Ok) << Cold.Error;
  EXPECT_GT(Cold.SharedMisses, 0u); // first sight: real backend solves

  ASSERT_TRUE(Client->place(Req, Warm, &Error)) << Error;
  ASSERT_EQ(Warm.Status, ResponseStatus::Ok);
  // Cross-request reuse: request 2's VCs were proven for request 1. (The
  // warm hit rate is not asserted to be 100%: MiniSmt's mid-solve
  // interning keeps a tail of re-derived keys — the documented persistence
  // caveat — and summary()'s counter line differs accordingly, which is
  // why parity is on Σ, not on the summary artifact.)
  EXPECT_GT(Warm.SharedHits, Cold.SharedHits);
  EXPECT_LT(Warm.SharedMisses, Cold.SharedMisses);
  EXPECT_EQ(Warm.DecisionSummary, Cold.DecisionSummary);
  EXPECT_FALSE(Warm.Replayed);

  // And an unrelated workload still computes fresh (no false sharing).
  PlaceResponse Other;
  ASSERT_TRUE(Client->place(benchRequest("RoundRobin"), Other, &Error));
  ASSERT_EQ(Other.Status, ResponseStatus::Ok);
  EXPECT_EQ(Other.DecisionSummary, runLocal("RoundRobin").Sigma);
}

TEST(ServiceTest, ResultCacheReplaysWholeResponsesByteIdentically) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;

  PlaceRequest Req = benchRequest("TicketedRW");
  PlaceResponse First, Second;
  ASSERT_TRUE(Client->place(Req, First, &Error)) << Error;
  ASSERT_EQ(First.Status, ResponseStatus::Ok) << First.Error;
  EXPECT_FALSE(First.Replayed);
  ASSERT_TRUE(Client->place(Req, Second, &Error)) << Error;
  ASSERT_EQ(Second.Status, ResponseStatus::Ok);
  EXPECT_TRUE(Second.Replayed);
  EXPECT_EQ(Second.Artifact, First.Artifact);
  EXPECT_EQ(Second.DecisionSummary, First.DecisionSummary);
  // A changed semantic flag is a different key: no replay.
  PlaceRequest NoComm = Req;
  NoComm.UseCommutativity = false;
  PlaceResponse Third;
  ASSERT_TRUE(Client->place(NoComm, Third, &Error)) << Error;
  ASSERT_EQ(Third.Status, ResponseStatus::Ok);
  EXPECT_FALSE(Third.Replayed);
}

TEST(ServiceTest, MalformedAndTruncatedFramesFailClosedWithoutWedging) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;

  auto ExpectClosed = [&](const std::vector<uint8_t> &Bytes) {
    int Fd = connectUnix(Dir.sock(), &Error);
    ASSERT_GE(Fd, 0) << Error;
    ASSERT_EQ(::write(Fd, Bytes.data(), Bytes.size()),
              static_cast<ssize_t>(Bytes.size()));
    // The server must close the connection (EOF) without sending a
    // PlaceResponse-typed frame.
    MsgType Type;
    std::vector<uint8_t> Payload;
    EXPECT_FALSE(recvFrame(Fd, Type, Payload));
    ::close(Fd);
  };

  // Garbage that is not a frame header.
  ExpectClosed({'g', 'a', 'r', 'b', 'a', 'g', 'e', '!', 0, 1, 2, 3, 4, 5, 6,
                7, 8, 9});
  // A valid header with an oversized length.
  {
    std::vector<uint8_t> Bytes;
    persist::ByteWriter B(Bytes);
    B.writeU32(FrameMagic);
    B.writeByte(ProtocolVersion);
    B.writeByte(static_cast<uint8_t>(MsgType::PlaceRequest));
    B.writeU32(static_cast<uint32_t>(MaxFramePayload + 1));
    B.writeU64(0);
    ExpectClosed(Bytes);
  }
  // A correct frame whose checksum is wrong.
  {
    std::vector<uint8_t> Payload = {1, 2, 3, 4};
    std::vector<uint8_t> Bytes;
    persist::ByteWriter B(Bytes);
    B.writeU32(FrameMagic);
    B.writeByte(ProtocolVersion);
    B.writeByte(static_cast<uint8_t>(MsgType::PlaceRequest));
    B.writeU32(static_cast<uint32_t>(Payload.size()));
    B.writeU64(0xdeadbeef); // not fnv1a(Payload)
    Bytes.insert(Bytes.end(), Payload.begin(), Payload.end());
    ExpectClosed(Bytes);
  }
  // A truncated frame: header promising more payload than ever arrives.
  {
    std::vector<uint8_t> Bytes;
    persist::ByteWriter B(Bytes);
    B.writeU32(FrameMagic);
    B.writeByte(ProtocolVersion);
    B.writeByte(static_cast<uint8_t>(MsgType::PlaceRequest));
    B.writeU32(64);
    B.writeU64(0);
    Bytes.push_back(7); // 1 of the promised 64 bytes
    int Fd = connectUnix(Dir.sock(), &Error);
    ASSERT_GE(Fd, 0) << Error;
    ASSERT_EQ(::write(Fd, Bytes.data(), Bytes.size()),
              static_cast<ssize_t>(Bytes.size()));
    ::shutdown(Fd, SHUT_WR); // EOF mid-payload
    MsgType Type;
    std::vector<uint8_t> Payload;
    EXPECT_FALSE(recvFrame(Fd, Type, Payload));
    ::close(Fd);
  }
  // A well-framed PlaceRequest whose *payload* is malformed: the server
  // answers Malformed (framing was intact) and then closes.
  {
    std::vector<uint8_t> Payload = {0xff, 0xff, 0xff};
    int Fd = connectUnix(Dir.sock(), &Error);
    ASSERT_GE(Fd, 0) << Error;
    ASSERT_TRUE(sendFrame(Fd, MsgType::PlaceRequest, Payload));
    MsgType Type;
    std::vector<uint8_t> Reply;
    ASSERT_TRUE(recvFrame(Fd, Type, Reply));
    ASSERT_EQ(Type, MsgType::PlaceResponse);
    PlaceResponse R;
    ASSERT_TRUE(PlaceResponse::decode(Reply.data(), Reply.size(), R));
    EXPECT_EQ(R.Status, ResponseStatus::Malformed);
    ::close(Fd);
  }
  // A response-typed frame from a confused peer: ErrorResponse, then close.
  {
    std::vector<uint8_t> Payload;
    int Fd = connectUnix(Dir.sock(), &Error);
    ASSERT_GE(Fd, 0) << Error;
    ASSERT_TRUE(sendFrame(Fd, MsgType::PlaceResponse, Payload));
    MsgType Type;
    std::vector<uint8_t> Reply;
    ASSERT_TRUE(recvFrame(Fd, Type, Reply));
    EXPECT_EQ(Type, MsgType::ErrorResponse);
    ::close(Fd);
  }

  // After all of that abuse, the server still serves a clean request.
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;
  PlaceResponse R;
  ASSERT_TRUE(Client->place(benchRequest("BoundedBuffer"), R, &Error))
      << Error;
  ASSERT_EQ(R.Status, ResponseStatus::Ok) << R.Error;
  EXPECT_EQ(R.DecisionSummary, runLocal("BoundedBuffer").Sigma);
}

TEST(ServiceTest, GracefulDrainDeliversInFlightResponsesThenExits) {
  TempDir Dir;
  ServerOptions Opts = miniServerOptions(Dir.sock());
  Opts.Workers = 1; // single lane: the drain really races an in-flight run
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;

  // Client A fires a request and reads its response on its own thread.
  std::atomic<bool> AOk{false};
  std::string ASigma;
  std::thread A([&] {
    std::string Err;
    auto Client = ServiceClient::connect(Dir.sock(), &Err);
    if (!Client)
      return;
    PlaceRequest Req = benchRequest("SimpleDecoder");
    Req.BypassResultCache = true;
    PlaceResponse R;
    if (Client->place(Req, R, &Err) && R.Status == ResponseStatus::Ok) {
      ASigma = R.DecisionSummary;
      AOk.store(true);
    }
  });

  // Client B asks for a drain while A's request is (likely) in flight.
  {
    auto Client = ServiceClient::connect(Dir.sock(), &Error);
    ASSERT_NE(Client, nullptr) << Error;
    ASSERT_TRUE(Client->shutdown(/*Drain=*/true, &Error)) << Error;
  }

  A.join();
  Srv.wait(); // must terminate: drain completes, threads join

  // A's response was delivered intact despite the drain.
  EXPECT_TRUE(AOk.load());
  EXPECT_EQ(ASigma, runLocal("SimpleDecoder").Sigma);
  // The socket is gone: new connections fail fast.
  auto Late = ServiceClient::connect(Dir.sock(), &Error);
  EXPECT_EQ(Late, nullptr);
}

TEST(ServiceTest, TwoDaemonFleetSharesOneCacheDirectory) {
  TempDir Dir;
  ServerOptions OptsA = miniServerOptions(Dir.sock("a.sock"));
  OptsA.CacheDir = Dir.Path + "/store";
  ServerOptions OptsB = miniServerOptions(Dir.sock("b.sock"));
  OptsB.CacheDir = Dir.Path + "/store";

  Server A(OptsA), B(OptsB);
  std::string Error;
  ASSERT_TRUE(A.start(&Error)) << Error;
  ASSERT_TRUE(B.start(&Error)) << Error;

  PlaceRequest Req = benchRequest("H2OBarrier");
  Req.BypassResultCache = true;

  // Daemon A pays the cold analysis and persists every answer.
  auto ClientA = ServiceClient::connect(OptsA.SocketPath, &Error);
  ASSERT_NE(ClientA, nullptr) << Error;
  PlaceResponse Cold;
  ASSERT_TRUE(ClientA->place(Req, Cold, &Error)) << Error;
  ASSERT_EQ(Cold.Status, ResponseStatus::Ok) << Cold.Error;
  EXPECT_GT(Cold.SharedMisses, 0u); // A paid real solves

  // Daemon B — a different process in real fleets, a different resident
  // store handle here — picks up A's appends (per-request refresh) and
  // serves the same workload mostly from A's work. Σ must be identical;
  // the hit rate is >0 but not asserted 100% (mini interning caveat).
  auto ClientB = ServiceClient::connect(OptsB.SocketPath, &Error);
  ASSERT_NE(ClientB, nullptr) << Error;
  PlaceResponse Warm;
  ASSERT_TRUE(ClientB->place(Req, Warm, &Error)) << Error;
  ASSERT_EQ(Warm.Status, ResponseStatus::Ok) << Warm.Error;
  EXPECT_GT(Warm.SharedHits, 0u);
  EXPECT_LT(Warm.SharedMisses, Cold.SharedMisses);
  EXPECT_EQ(Warm.DecisionSummary, Cold.DecisionSummary);

  A.requestShutdown(true);
  A.wait();
  B.requestShutdown(true);
  B.wait();
}

TEST(ServiceTest, StoreProfileGuardsRequestsForOtherBackends) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock())); // store keyed to "mini"
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;

  PlaceRequest Req = benchRequest("BoundedBuffer");
  Req.Solver = "default"; // z3 in Z3 builds (mismatch), mini otherwise
  PlaceResponse R;
  ASSERT_TRUE(Client->place(Req, R, &Error)) << Error;
  ASSERT_EQ(R.Status, ResponseStatus::Ok) << R.Error;
  if (solver::hasZ3()) {
    EXPECT_TRUE(R.StoreSkipped); // ran memo-only, never mixing profiles
    EXPECT_EQ(R.SharedHits + R.SharedMisses, 0u);
  } else {
    EXPECT_FALSE(R.StoreSkipped);
  }
  EXPECT_EQ(R.DecisionSummary, runLocal("BoundedBuffer").Sigma);
}

TEST(ServiceTest, StatusReflectsServiceState) {
  TempDir Dir;
  ServerOptions Opts = miniServerOptions(Dir.sock());
  Opts.JobsBudget = 5;
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;

  PlaceResponse R;
  ASSERT_TRUE(Client->place(benchRequest("BoundedBuffer"), R, &Error));
  ASSERT_TRUE(Client->place(benchRequest("BoundedBuffer"), R, &Error));
  EXPECT_TRUE(R.Replayed);

  StatusResponse S;
  ASSERT_TRUE(Client->status(S, &Error)) << Error;
  EXPECT_EQ(S.RequestsServed, 2u);
  EXPECT_EQ(S.ResultCacheHits, 1u);
  EXPECT_GT(S.StoreRecords, 0u);
  EXPECT_EQ(S.JobsBudget, 5u);
  EXPECT_EQ(S.JobsAvailable, 5u);
  EXPECT_EQ(S.StoreProfile, "mini");
  EXPECT_TRUE(S.StoreDir.empty()); // resident in-memory tier
  EXPECT_FALSE(S.Draining);
  // Outcome breakdown: both requests completed (the replay hit counts — it
  // produced a real answer), nothing expired, was cancelled, or rejected.
  EXPECT_EQ(S.RequestsCompleted, 2u);
  EXPECT_EQ(S.RequestsExpiredQueued, 0u);
  EXPECT_EQ(S.RequestsCancelledRunning, 0u);
  EXPECT_EQ(S.RequestsRejectedFull, 0u);
  EXPECT_EQ(S.RequestsRejectedDraining, 0u);
  EXPECT_GT(S.LatencyP50Seconds, 0.0);
  EXPECT_GE(S.LatencyP99Seconds, S.LatencyP50Seconds);
}

//===----------------------------------------------------------------------===//
// Deadlines, cancellation, and daemon failure modes
//===----------------------------------------------------------------------===//

TEST(ServiceTest, Version1FramesServeAndNewerVersionsFailClosed) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;

  // A v1 client: version byte 1 and a payload ending at the v1 boundary
  // (no DeadlineMs varint). The daemon must serve it unchanged.
  PlaceRequest Req = benchRequest("BoundedBuffer");
  std::vector<uint8_t> Payload;
  Req.encode(Payload);
  ASSERT_EQ(Payload.back(), 0u); // DeadlineMs = 0 is a single zero byte
  Payload.pop_back();            // exactly the v1 encoding
  {
    std::vector<uint8_t> Frame;
    persist::ByteWriter B(Frame);
    B.writeU32(FrameMagic);
    B.writeByte(MinProtocolVersion);
    B.writeByte(static_cast<uint8_t>(MsgType::PlaceRequest));
    B.writeU32(static_cast<uint32_t>(Payload.size()));
    B.writeU64(persist::fnv1a(Payload.data(), Payload.size()));
    Frame.insert(Frame.end(), Payload.begin(), Payload.end());
    int Fd = connectUnix(Dir.sock(), &Error);
    ASSERT_GE(Fd, 0) << Error;
    ASSERT_EQ(::write(Fd, Frame.data(), Frame.size()),
              static_cast<ssize_t>(Frame.size()));
    MsgType Type;
    std::vector<uint8_t> Reply;
    ASSERT_TRUE(recvFrame(Fd, Type, Reply));
    ASSERT_EQ(Type, MsgType::PlaceResponse);
    PlaceResponse R;
    ASSERT_TRUE(PlaceResponse::decode(Reply.data(), Reply.size(), R));
    EXPECT_EQ(R.Status, ResponseStatus::Ok) << R.Error;
    EXPECT_EQ(R.DecisionSummary, runLocal("BoundedBuffer").Sigma);
    ::close(Fd);
  }
  // A frame claiming a future protocol version is rejected outright (the
  // daemon will not guess at a format it does not speak).
  {
    std::vector<uint8_t> Full;
    Req.encode(Full);
    std::vector<uint8_t> Frame;
    persist::ByteWriter B(Frame);
    B.writeU32(FrameMagic);
    B.writeByte(ProtocolVersion + 1);
    B.writeByte(static_cast<uint8_t>(MsgType::PlaceRequest));
    B.writeU32(static_cast<uint32_t>(Full.size()));
    B.writeU64(persist::fnv1a(Full.data(), Full.size()));
    Frame.insert(Frame.end(), Full.begin(), Full.end());
    int Fd = connectUnix(Dir.sock(), &Error);
    ASSERT_GE(Fd, 0) << Error;
    ASSERT_EQ(::write(Fd, Frame.data(), Frame.size()),
              static_cast<ssize_t>(Frame.size()));
    MsgType Type;
    std::vector<uint8_t> Reply;
    EXPECT_FALSE(recvFrame(Fd, Type, Reply)); // connection closed
    ::close(Fd);
  }
}

TEST(ServiceTest, QueuedDeadlineIsAnsweredWithoutBurningAWorker) {
  TempDir Dir;
  ServerOptions Opts = miniServerOptions(Dir.sock());
  Opts.Workers = 1; // single lane, so queued work really waits
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;

  // Two no-deadline requests occupy the lane and build a queue.
  auto Occupy = [&] {
    std::string Err;
    auto C = ServiceClient::connect(Dir.sock(), &Err);
    if (!C)
      return;
    PlaceRequest Req = benchRequest("H2OBarrier");
    Req.BypassResultCache = true;
    PlaceResponse R;
    C->place(Req, R, &Err);
  };
  std::thread A(Occupy), B(Occupy);
  // Only once one occupier is running and the other is queued is the 1 ms
  // deadline below guaranteed to fire while still in the queue (a full
  // placement must complete before any worker reaches it).
  for (;;) {
    StatusResponse S = Srv.status();
    if (S.RequestsActive >= 1 && S.RequestsQueued >= 1)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;
  PlaceRequest Late = benchRequest("BoundedBuffer");
  Late.BypassResultCache = true;
  Late.DeadlineMs = 1;
  PlaceResponse R;
  ASSERT_TRUE(Client->place(Late, R, &Error)) << Error;
  EXPECT_EQ(R.Status, ResponseStatus::DeadlineExceeded);
  EXPECT_NE(R.Error.find("queued"), std::string::npos) << R.Error;
  EXPECT_TRUE(R.Artifact.empty());
  EXPECT_TRUE(R.DecisionSummary.empty());
  EXPECT_GT(R.QueueSeconds, 0.0);
  A.join();
  B.join();

  StatusResponse S = Srv.status();
  EXPECT_EQ(S.RequestsExpiredQueued, 1u);
  EXPECT_EQ(S.RequestsCancelledRunning, 0u);

  // The daemon is healthy and the same spec still answers byte-identically.
  PlaceResponse Again;
  ASSERT_TRUE(Client->place(benchRequest("BoundedBuffer"), Again, &Error))
      << Error;
  ASSERT_EQ(Again.Status, ResponseStatus::Ok) << Again.Error;
  EXPECT_EQ(Again.DecisionSummary, runLocal("BoundedBuffer").Sigma);

  Srv.requestShutdown(/*Drain=*/true);
  Srv.wait();
}

TEST(ServiceTest, MidPlacementDeadlineCancelsAndTheDaemonStaysHealthy) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;

  // A 1 ms deadline on an idle daemon: the request is picked up well
  // inside the millisecond, so the deadline fires mid-placement and the
  // pipeline winds down at its next poll point. The warmed store could in
  // principle let a retry finish inside 1 ms, so allow a few attempts —
  // in practice the first, cold one cancels.
  PlaceRequest Req = benchRequest("H2OBarrier");
  Req.DeadlineMs = 1;
  PlaceResponse R;
  bool Cancelled = false, AnyCompleted = false;
  for (int Attempt = 0; Attempt < 10 && !Cancelled; ++Attempt) {
    ASSERT_TRUE(Client->place(Req, R, &Error)) << Error;
    ASSERT_TRUE(R.Status == ResponseStatus::DeadlineExceeded ||
                R.Status == ResponseStatus::Ok)
        << R.Error;
    Cancelled = R.Status == ResponseStatus::DeadlineExceeded;
    AnyCompleted |= R.Status == ResponseStatus::Ok;
  }
  ASSERT_TRUE(Cancelled);
  // The cancelled answer carries partial stats but no artifact.
  EXPECT_TRUE(R.Artifact.empty());
  EXPECT_TRUE(R.DecisionSummary.empty());
  EXPECT_FALSE(R.Error.empty());

  StatusResponse S = Srv.status();
  EXPECT_GE(S.RequestsCancelledRunning + S.RequestsExpiredQueued, 1u);

  // The cancelled run published nothing into the replay cache: the same
  // key (deadline is not part of it) computes fresh rather than replaying
  // a half-done answer, and Σ matches the local pipeline exactly.
  PlaceRequest Clean = benchRequest("H2OBarrier");
  PlaceResponse Full;
  ASSERT_TRUE(Client->place(Clean, Full, &Error)) << Error;
  ASSERT_EQ(Full.Status, ResponseStatus::Ok) << Full.Error;
  if (!AnyCompleted)
    EXPECT_FALSE(Full.Replayed);
  EXPECT_EQ(Full.DecisionSummary, runLocal("H2OBarrier").Sigma);

  // …and the replay tier still works for completed answers.
  PlaceResponse Replay;
  ASSERT_TRUE(Client->place(Clean, Replay, &Error)) << Error;
  ASSERT_EQ(Replay.Status, ResponseStatus::Ok);
  EXPECT_TRUE(Replay.Replayed);
  EXPECT_EQ(Replay.Artifact, Full.Artifact);

  StatusResponse After = Srv.status();
  EXPECT_GE(After.RequestsCompleted, 2u);
  EXPECT_GT(After.LatencyP50Seconds, 0.0);
  EXPECT_GE(After.LatencyP99Seconds, After.LatencyP50Seconds);
}

TEST(ServiceTest, GenerousDeadlineIsByteInvisible) {
  // The determinism contract: a request that completes under its deadline
  // is byte-identical to the same request with no deadline — first at the
  // pipeline level (an armed token threaded through placeSignals)…
  support::CancelToken Generous;
  Generous.setDeadlineAfterSeconds(3600.0);
  LocalRun Plain = runLocal("ReadersWriters");
  LocalRun Timed = runLocal("ReadersWriters", &Generous);
  EXPECT_EQ(Timed.Sigma, Plain.Sigma);
  EXPECT_EQ(Timed.Summary, Plain.Summary);
  EXPECT_EQ(Timed.Ir, Plain.Ir);

  // …then through the daemon, deadline run second so it sees the *warmer*
  // store (Σ and the ir artifact must not care).
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;

  PlaceRequest Control = benchRequest("ReadersWriters", "ir");
  Control.BypassResultCache = true;
  PlaceResponse C0;
  ASSERT_TRUE(Client->place(Control, C0, &Error)) << Error;
  ASSERT_EQ(C0.Status, ResponseStatus::Ok) << C0.Error;

  PlaceRequest TimedReq = Control;
  TimedReq.DeadlineMs = 10u * 60u * 1000u; // never fires
  PlaceResponse C1;
  ASSERT_TRUE(Client->place(TimedReq, C1, &Error)) << Error;
  ASSERT_EQ(C1.Status, ResponseStatus::Ok) << C1.Error;
  EXPECT_EQ(C1.Artifact, C0.Artifact);
  EXPECT_EQ(C1.DecisionSummary, C0.DecisionSummary);
  EXPECT_EQ(C1.Artifact, Plain.Ir);
}

TEST(ServiceTest, CancelledRunPublishesNothingIntoTheSharedTiers) {
  // The hardest no-publication case: a token already expired when the run
  // starts. Nothing may land in the shared store or the replay cache, so a
  // later clean run starts genuinely cold.
  ServerOptions Opts;
  Opts.SolverName = "mini";
  PlacementService Svc(Opts);
  support::CancelToken Tok;
  Tok.cancel();

  PlaceRequest Req = benchRequest("BoundedBuffer");
  PlaceResponse R = Svc.run(Req, /*QueueSeconds=*/0.0, &Tok);
  EXPECT_EQ(R.Status, ResponseStatus::DeadlineExceeded);
  EXPECT_TRUE(R.Artifact.empty());
  EXPECT_TRUE(R.DecisionSummary.empty());
  ASSERT_NE(Svc.store(), nullptr);
  EXPECT_EQ(Svc.store()->size(), 0u);
  EXPECT_EQ(Svc.requestsCancelledRunning(), 1u);
  EXPECT_EQ(Svc.requestsCompleted(), 0u);

  PlaceResponse Clean = Svc.run(Req, 0.0, nullptr);
  ASSERT_EQ(Clean.Status, ResponseStatus::Ok) << Clean.Error;
  EXPECT_FALSE(Clean.Replayed);    // the cancelled response was never cached
  EXPECT_EQ(Clean.SharedHits, 0u); // and it seeded no store records
  EXPECT_GT(Clean.SharedMisses, 0u);
  EXPECT_EQ(Clean.DecisionSummary, runLocal("BoundedBuffer").Sigma);
  EXPECT_EQ(Svc.requestsCompleted(), 1u);
}

TEST(ServiceTest, ClientRecvTimesOutWhenTheDaemonWedges) {
  // Regression: a wedged daemon (accepts, never replies) used to block
  // `expresso --connect` in recv() forever.
  TempDir Dir;
  std::string Error;
  int Listen = listenUnix(Dir.sock(), /*Backlog=*/4, &Error);
  ASSERT_GE(Listen, 0) << Error;
  std::atomic<int> Wedged{-1};
  std::thread Acceptor(
      [&] { Wedged.store(::accept(Listen, nullptr, nullptr)); });

  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;
  ASSERT_TRUE(Client->setReceiveTimeout(0.2));
  auto Start = std::chrono::steady_clock::now();
  PlaceResponse R;
  std::string Err;
  EXPECT_FALSE(Client->place(benchRequest("BoundedBuffer"), R, &Err));
  EXPECT_NE(Err.find("timed out"), std::string::npos) << Err;
  double Waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  EXPECT_LT(Waited, 30.0); // bounded, not forever

  Acceptor.join();
  if (Wedged.load() >= 0)
    ::close(Wedged.load());
  ::close(Listen);
}

TEST(ServiceTest, AcceptLoopRetriesAfterFdExhaustion) {
  // Regression: EMFILE in accept() used to end the accept loop for good —
  // the daemon kept running but went permanently deaf.
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  {
    auto C = ServiceClient::connect(Dir.sock(), &Error);
    ASSERT_NE(C, nullptr) << Error;
    PlaceResponse R;
    ASSERT_TRUE(C->place(benchRequest("BoundedBuffer"), R, &Error)) << Error;
    ASSERT_EQ(R.Status, ResponseStatus::Ok) << R.Error;
  }

  // Squeeze the process's fd table until open() fails, leaving exactly one
  // slot for the client's socket: connect() then succeeds (backlog) while
  // the server's accept() has no fd to create and hits EMFILE.
  struct rlimit Old;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &Old), 0);
  size_t Open = 0;
  for (const auto &E : std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)E;
    ++Open;
  }
  struct rlimit Tight = Old;
  Tight.rlim_cur = Open + 4;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &Tight), 0);
  std::vector<int> Hogs;
  for (;;) {
    int Fd = ::open("/dev/null", O_RDONLY);
    if (Fd < 0)
      break;
    Hogs.push_back(Fd);
  }
  ASSERT_FALSE(Hogs.empty());
  ::close(Hogs.back());
  Hogs.pop_back();

  std::atomic<bool> Served{false};
  std::thread T([&] {
    std::string Err;
    auto C = ServiceClient::connect(Dir.sock(), &Err);
    if (!C)
      return;
    C->setReceiveTimeout(60.0); // fail fast if the acceptor really died
    PlaceResponse R;
    if (C->place(benchRequest("BoundedBuffer"), R, &Err) &&
        R.Status == ResponseStatus::Ok)
      Served.store(true);
  });
  // Let the acceptor spin through a few EMFILE/backoff rounds, then ease
  // the pressure: its next retry must pick the pending connection up.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (int Fd : Hogs)
    ::close(Fd);
  Hogs.clear();
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &Old), 0);
  T.join();
  EXPECT_TRUE(Served.load());

  Srv.requestShutdown(/*Drain=*/true);
  Srv.wait();
}

#endif // !_WIN32

} // namespace
