//===- tests/ServiceTest.cpp - Placement service tests ------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Covers the expressod service layer end to end:
//  * protocol codecs: round trips, truncation/trailing-garbage rejection;
//  * JobBudget: elastic FIFO slot leasing;
//  * RequestScheduler: priority-over-FIFO ordering, bounded-queue
//    rejection, drain-vs-stop semantics;
//  * the daemon itself over real Unix sockets: Σ byte-parity with the
//    local pipeline across all workloads (serial and with N concurrent
//    clients), cross-request shared-cache hits, whole-response replay,
//    malformed/truncated frames failing closed without wedging the server,
//    graceful drain delivering in-flight responses, and a two-daemon fleet
//    sharing one cache directory.
//
// Everything runs on the MiniSmt backend so the suite is identical with
// and without Z3 (and runs under TSan in the sanitizer leg).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Protocol.h"
#include "service/Scheduler.h"
#include "service/Server.h"

#include "bench/Workloads.h"
#include "codegen/Codegen.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "persist/QueryStore.h"
#include "persist/TermCodec.h"
#include "solver/SolverRig.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <thread>

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace expresso;
using namespace expresso::service;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// A private temp directory (for sockets and cache dirs).
struct TempDir {
  std::string Path;
  TempDir() {
    std::string Tmpl =
        (std::filesystem::temp_directory_path() / "expresso-svc-XXXXXX")
            .string();
    char *D = ::mkdtemp(Tmpl.data());
    EXPECT_NE(D, nullptr);
    Path = D ? std::string(D) : std::string();
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string sock(const char *Name = "d.sock") const {
    return Path + "/" + Name;
  }
};

/// The local (in-process, CLI-equivalent) pipeline on the mini backend:
/// the byte-parity reference for every daemon response.
struct LocalRun {
  std::string Sigma;
  std::string Summary;
  std::string Ir;
};

LocalRun runLocal(const std::string &BenchName) {
  const bench::BenchmarkDef *Def = bench::findBenchmark(BenchName);
  EXPECT_NE(Def, nullptr);
  logic::TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def->Source, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  auto Sema = frontend::analyze(*M, C, Diags);
  EXPECT_NE(Sema, nullptr) << Diags.str();
  solver::SolverRig Rig = solver::buildSolverRig(C, solver::SolverKind::Mini,
                                                 /*CacheQueries=*/true,
                                                 nullptr);
  core::PlacementOptions Opts;
  Opts.WorkerSolvers = solver::SolverFactory(solver::SolverKind::Mini);
  core::PlacementResult P = core::placeSignals(C, *Sema, Rig.solver(), Opts);
  return {P.decisionSummary(), P.summary(), codegen::printTargetIr(P)};
}

PlaceRequest benchRequest(const std::string &BenchName,
                          const std::string &Emit = "summary") {
  const bench::BenchmarkDef *Def = bench::findBenchmark(BenchName);
  EXPECT_NE(Def, nullptr);
  PlaceRequest Req;
  Req.Source = Def ? Def->Source : "";
  Req.Emit = Emit;
  Req.Solver = "mini";
  return Req;
}

ServerOptions miniServerOptions(const std::string &SocketPath) {
  ServerOptions Opts;
  Opts.SocketPath = SocketPath;
  Opts.Workers = 2;
  Opts.SolverName = "mini";
  return Opts;
}

std::vector<std::string> allWorkloadNames() {
  std::vector<std::string> Names;
  for (const bench::BenchmarkDef &Def : bench::allBenchmarks())
    Names.push_back(Def.Name);
  return Names;
}

//===----------------------------------------------------------------------===//
// Protocol codecs
//===----------------------------------------------------------------------===//

TEST(ServiceTest, PlaceRequestRoundTripsAndRejectsDamage) {
  PlaceRequest Req;
  Req.Source = "monitor M { var x: int; }";
  Req.Emit = "ir";
  Req.Solver = "mini";
  Req.UseInvariant = false;
  Req.Incremental = false;
  Req.Jobs = 7;
  Req.Prio = Priority::High;
  Req.BypassResultCache = true;

  std::vector<uint8_t> Bytes;
  Req.encode(Bytes);
  PlaceRequest Out;
  ASSERT_TRUE(PlaceRequest::decode(Bytes.data(), Bytes.size(), Out));
  EXPECT_EQ(Out.Source, Req.Source);
  EXPECT_EQ(Out.Emit, Req.Emit);
  EXPECT_EQ(Out.Solver, Req.Solver);
  EXPECT_EQ(Out.UseInvariant, Req.UseInvariant);
  EXPECT_EQ(Out.Incremental, Req.Incremental);
  EXPECT_EQ(Out.Jobs, Req.Jobs);
  EXPECT_EQ(Out.Prio, Req.Prio);
  EXPECT_EQ(Out.BypassResultCache, Req.BypassResultCache);

  // Every strict prefix is malformed (fail closed, no partial decodes)…
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    PlaceRequest Trunc;
    EXPECT_FALSE(PlaceRequest::decode(Bytes.data(), Len, Trunc))
        << "prefix of " << Len << " bytes decoded";
  }
  // …and so is trailing garbage.
  std::vector<uint8_t> Longer = Bytes;
  Longer.push_back(0);
  PlaceRequest Extra;
  EXPECT_FALSE(PlaceRequest::decode(Longer.data(), Longer.size(), Extra));
}

TEST(ServiceTest, PlaceResponseRoundTripsAndRejectsTruncation) {
  PlaceResponse R;
  R.Status = ResponseStatus::Ok;
  R.Artifact = "artifact bytes\n";
  R.DecisionSummary = "sigma\n";
  R.SolverName = "cache(mini)";
  R.HoareChecks = 42;
  R.CacheHits = 7;
  R.SharedHits = 9;
  R.PairsConsidered = 12;
  R.AnalysisSeconds = 1.25;
  R.QueueSeconds = 0.5;
  R.JobsUsed = 3;
  R.Replayed = true;

  std::vector<uint8_t> Bytes;
  R.encode(Bytes);
  PlaceResponse Out;
  ASSERT_TRUE(PlaceResponse::decode(Bytes.data(), Bytes.size(), Out));
  EXPECT_EQ(Out.Status, R.Status);
  EXPECT_EQ(Out.Artifact, R.Artifact);
  EXPECT_EQ(Out.DecisionSummary, R.DecisionSummary);
  EXPECT_EQ(Out.SolverName, R.SolverName);
  EXPECT_EQ(Out.HoareChecks, R.HoareChecks);
  EXPECT_EQ(Out.CacheHits, R.CacheHits);
  EXPECT_EQ(Out.SharedHits, R.SharedHits);
  EXPECT_EQ(Out.PairsConsidered, R.PairsConsidered);
  EXPECT_DOUBLE_EQ(Out.AnalysisSeconds, R.AnalysisSeconds);
  EXPECT_DOUBLE_EQ(Out.QueueSeconds, R.QueueSeconds);
  EXPECT_EQ(Out.JobsUsed, R.JobsUsed);
  EXPECT_EQ(Out.Replayed, R.Replayed);

  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    PlaceResponse Trunc;
    EXPECT_FALSE(PlaceResponse::decode(Bytes.data(), Len, Trunc));
  }
}

TEST(ServiceTest, StatusAndShutdownRoundTrip) {
  StatusResponse S;
  S.RequestsServed = 5;
  S.StoreRecords = 99;
  S.JobsBudget = 8;
  S.Draining = true;
  S.StoreProfile = "mini";
  S.StoreDir = "/tmp/x";
  std::vector<uint8_t> Bytes;
  S.encode(Bytes);
  StatusResponse SOut;
  ASSERT_TRUE(StatusResponse::decode(Bytes.data(), Bytes.size(), SOut));
  EXPECT_EQ(SOut.RequestsServed, 5u);
  EXPECT_EQ(SOut.StoreRecords, 99u);
  EXPECT_EQ(SOut.JobsBudget, 8u);
  EXPECT_TRUE(SOut.Draining);
  EXPECT_EQ(SOut.StoreProfile, "mini");
  EXPECT_EQ(SOut.StoreDir, "/tmp/x");

  ShutdownRequest Sh;
  Sh.Drain = false;
  Bytes.clear();
  Sh.encode(Bytes);
  ShutdownRequest ShOut;
  ASSERT_TRUE(ShutdownRequest::decode(Bytes.data(), Bytes.size(), ShOut));
  EXPECT_FALSE(ShOut.Drain);
}

//===----------------------------------------------------------------------===//
// JobBudget
//===----------------------------------------------------------------------===//

TEST(ServiceTest, JobBudgetGrantsElasticallyAndReleases) {
  support::JobBudget Budget(4);
  EXPECT_EQ(Budget.total(), 4u);
  support::JobBudget::Lease A = Budget.acquire(2);
  EXPECT_EQ(A.slots(), 2u);
  EXPECT_EQ(Budget.available(), 2u);
  // A wide ask degrades to what is free instead of blocking forever.
  support::JobBudget::Lease B = Budget.acquire(8);
  EXPECT_EQ(B.slots(), 2u);
  EXPECT_EQ(Budget.available(), 0u);
  B.reset();
  EXPECT_EQ(Budget.available(), 2u);
  A.reset();
  EXPECT_EQ(Budget.available(), 4u);
  // Reset is idempotent.
  A.reset();
  EXPECT_EQ(Budget.available(), 4u);
}

TEST(ServiceTest, JobBudgetBlocksUntilASlotFreesThenWakesFifo) {
  support::JobBudget Budget(1);
  support::JobBudget::Lease Held = Budget.acquire(1);
  std::atomic<int> Got{0};
  std::thread Waiter([&] {
    support::JobBudget::Lease L = Budget.acquire(3);
    Got.store(static_cast<int>(L.slots()));
  });
  // The waiter must be blocked (no slots).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(Got.load(), 0);
  Held.reset();
  Waiter.join();
  EXPECT_EQ(Got.load(), 1); // budget is 1, so the wide ask got 1
  EXPECT_EQ(Budget.available(), 1u);
}

//===----------------------------------------------------------------------===//
// RequestScheduler
//===----------------------------------------------------------------------===//

TEST(ServiceTest, SchedulerServesHighPriorityBeforeNormalFifo) {
  RequestScheduler::Options Opts;
  Opts.Workers = 1;
  Opts.MaxQueue = 16;
  RequestScheduler Sched(Opts);

  // Gate the single worker so the queue builds up deterministically.
  std::mutex GateMu;
  std::condition_variable GateCv;
  bool GateOpen = false;
  std::atomic<bool> GateRunning{false};
  ASSERT_TRUE(Sched.submit(Priority::Normal, [&] {
    GateRunning.store(true);
    std::unique_lock<std::mutex> Lock(GateMu);
    GateCv.wait(Lock, [&] { return GateOpen; });
  }));
  while (!GateRunning.load())
    std::this_thread::yield();

  std::mutex OrderMu;
  std::vector<int> Order;
  auto Record = [&](int Id) {
    return [&, Id] {
      std::lock_guard<std::mutex> Lock(OrderMu);
      Order.push_back(Id);
    };
  };
  ASSERT_TRUE(Sched.submit(Priority::Normal, Record(1)));
  ASSERT_TRUE(Sched.submit(Priority::Normal, Record(2)));
  ASSERT_TRUE(Sched.submit(Priority::High, Record(100)));
  ASSERT_TRUE(Sched.submit(Priority::Normal, Record(3)));
  ASSERT_TRUE(Sched.submit(Priority::High, Record(101)));

  {
    std::lock_guard<std::mutex> Lock(GateMu);
    GateOpen = true;
  }
  GateCv.notify_all();
  Sched.drain();

  ASSERT_EQ(Order.size(), 5u);
  // Both high-priority tasks ran first (FIFO within the level), then the
  // normals in arrival order.
  EXPECT_EQ(Order[0], 100);
  EXPECT_EQ(Order[1], 101);
  EXPECT_EQ(Order[2], 1);
  EXPECT_EQ(Order[3], 2);
  EXPECT_EQ(Order[4], 3);
  EXPECT_EQ(Sched.stats().Executed, 6u);
}

TEST(ServiceTest, SchedulerBoundsItsQueueAndRejectsOverflow) {
  RequestScheduler::Options Opts;
  Opts.Workers = 1;
  Opts.MaxQueue = 2;
  RequestScheduler Sched(Opts);

  std::mutex GateMu;
  std::condition_variable GateCv;
  bool GateOpen = false;
  std::atomic<bool> GateRunning{false};
  ASSERT_TRUE(Sched.submit(Priority::Normal, [&] {
    GateRunning.store(true);
    std::unique_lock<std::mutex> Lock(GateMu);
    GateCv.wait(Lock, [&] { return GateOpen; });
  }));
  while (!GateRunning.load())
    std::this_thread::yield();

  EXPECT_TRUE(Sched.submit(Priority::Normal, [] {}));
  EXPECT_TRUE(Sched.submit(Priority::Normal, [] {}));
  // Queue (not counting the in-flight gate) is full now.
  EXPECT_FALSE(Sched.submit(Priority::Normal, [] {}));
  EXPECT_FALSE(Sched.submit(Priority::High, [] {}));
  EXPECT_EQ(Sched.stats().Rejected, 2u);

  {
    std::lock_guard<std::mutex> Lock(GateMu);
    GateOpen = true;
  }
  GateCv.notify_all();
  Sched.drain();
  EXPECT_EQ(Sched.stats().Executed, 3u);
  // Post-drain admission is refused.
  EXPECT_FALSE(Sched.submit(Priority::Normal, [] {}));
}

TEST(ServiceTest, SchedulerStopDiscardsQueuedButFinishesInFlight) {
  RequestScheduler::Options Opts;
  Opts.Workers = 1;
  Opts.MaxQueue = 8;
  RequestScheduler Sched(Opts);

  std::mutex GateMu;
  std::condition_variable GateCv;
  bool GateOpen = false;
  std::atomic<bool> GateRunning{false};
  std::atomic<bool> GateFinished{false};
  ASSERT_TRUE(Sched.submit(Priority::Normal, [&] {
    GateRunning.store(true);
    std::unique_lock<std::mutex> Lock(GateMu);
    GateCv.wait(Lock, [&] { return GateOpen; });
    GateFinished.store(true);
  }));
  while (!GateRunning.load())
    std::this_thread::yield();
  std::atomic<int> Ran{0};
  ASSERT_TRUE(Sched.submit(Priority::Normal, [&] { ++Ran; }));
  ASSERT_TRUE(Sched.submit(Priority::Normal, [&] { ++Ran; }));

  std::thread Stopper([&] { Sched.stop(); });
  // stop() must wait for the in-flight gate task.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(GateFinished.load());
  {
    std::lock_guard<std::mutex> Lock(GateMu);
    GateOpen = true;
  }
  GateCv.notify_all();
  Stopper.join();
  EXPECT_TRUE(GateFinished.load());
  EXPECT_EQ(Ran.load(), 0);
  EXPECT_EQ(Sched.stats().Discarded, 2u);
}

#ifndef _WIN32

//===----------------------------------------------------------------------===//
// The daemon over real sockets
//===----------------------------------------------------------------------===//

TEST(ServiceTest, DaemonMatchesLocalSigmaOnEveryWorkload) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;

  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;
  for (const std::string &Name : allWorkloadNames()) {
    PlaceResponse R;
    ASSERT_TRUE(Client->place(benchRequest(Name), R, &Error))
        << Name << ": " << Error;
    ASSERT_EQ(R.Status, ResponseStatus::Ok) << Name << ": " << R.Error;
    EXPECT_EQ(R.DecisionSummary, runLocal(Name).Sigma) << Name;
    EXPECT_GT(R.SolverQueries, 0u) << Name;
  }

  Srv.requestShutdown(/*Drain=*/true);
  Srv.wait();
}

TEST(ServiceTest, DaemonIrArtifactIsByteIdenticalToLocal) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;
  for (const std::string &Name :
       {std::string("BoundedBuffer"), std::string("ReadersWriters"),
        std::string("AsyncDispatch")}) {
    PlaceResponse R;
    ASSERT_TRUE(Client->place(benchRequest(Name, "ir"), R, &Error)) << Error;
    ASSERT_EQ(R.Status, ResponseStatus::Ok) << R.Error;
    EXPECT_EQ(R.Artifact, runLocal(Name).Ir) << Name;
  }
}

TEST(ServiceTest, ConcurrentClientsAllGetParityAndTheServerSurvives) {
  TempDir Dir;
  ServerOptions Opts = miniServerOptions(Dir.sock());
  Opts.Workers = 3;
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;

  const std::vector<std::string> Names = allWorkloadNames();
  // Reference Σ computed once, locally, up front.
  std::unordered_map<std::string, std::string> Reference;
  for (const std::string &Name : Names)
    Reference[Name] = runLocal(Name).Sigma;

  constexpr unsigned NumClients = 4;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Clients;
  for (unsigned T = 0; T < NumClients; ++T) {
    Clients.emplace_back([&, T] {
      std::string Err;
      auto Client = ServiceClient::connect(Dir.sock(), &Err);
      if (!Client) {
        ++Failures;
        return;
      }
      // Each client walks the workloads at a different starting offset so
      // requests overlap on different specs (and the same spec) at once.
      for (size_t I = 0; I < Names.size(); ++I) {
        const std::string &Name = Names[(I + T * 3) % Names.size()];
        PlaceRequest Req = benchRequest(Name);
        Req.BypassResultCache = (T % 2 == 0); // mix replay and execution
        PlaceResponse R;
        if (!Client->place(Req, R, &Err) ||
            R.Status != ResponseStatus::Ok ||
            R.DecisionSummary != Reference[Name]) {
          ++Failures;
          return;
        }
      }
    });
  }
  for (std::thread &C : Clients)
    C.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Srv.status().RequestsServed, NumClients * Names.size());

  Srv.requestShutdown(/*Drain=*/true);
  Srv.wait();
}

TEST(ServiceTest, SecondRequestHitsTheSharedWarmCache) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;

  PlaceRequest Req = benchRequest("SleepingBarber");
  Req.BypassResultCache = true;
  PlaceResponse Cold, Warm;
  ASSERT_TRUE(Client->place(Req, Cold, &Error)) << Error;
  ASSERT_EQ(Cold.Status, ResponseStatus::Ok) << Cold.Error;
  EXPECT_GT(Cold.SharedMisses, 0u); // first sight: real backend solves

  ASSERT_TRUE(Client->place(Req, Warm, &Error)) << Error;
  ASSERT_EQ(Warm.Status, ResponseStatus::Ok);
  // Cross-request reuse: request 2's VCs were proven for request 1. (The
  // warm hit rate is not asserted to be 100%: MiniSmt's mid-solve
  // interning keeps a tail of re-derived keys — the documented persistence
  // caveat — and summary()'s counter line differs accordingly, which is
  // why parity is on Σ, not on the summary artifact.)
  EXPECT_GT(Warm.SharedHits, Cold.SharedHits);
  EXPECT_LT(Warm.SharedMisses, Cold.SharedMisses);
  EXPECT_EQ(Warm.DecisionSummary, Cold.DecisionSummary);
  EXPECT_FALSE(Warm.Replayed);

  // And an unrelated workload still computes fresh (no false sharing).
  PlaceResponse Other;
  ASSERT_TRUE(Client->place(benchRequest("RoundRobin"), Other, &Error));
  ASSERT_EQ(Other.Status, ResponseStatus::Ok);
  EXPECT_EQ(Other.DecisionSummary, runLocal("RoundRobin").Sigma);
}

TEST(ServiceTest, ResultCacheReplaysWholeResponsesByteIdentically) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;

  PlaceRequest Req = benchRequest("TicketedRW");
  PlaceResponse First, Second;
  ASSERT_TRUE(Client->place(Req, First, &Error)) << Error;
  ASSERT_EQ(First.Status, ResponseStatus::Ok) << First.Error;
  EXPECT_FALSE(First.Replayed);
  ASSERT_TRUE(Client->place(Req, Second, &Error)) << Error;
  ASSERT_EQ(Second.Status, ResponseStatus::Ok);
  EXPECT_TRUE(Second.Replayed);
  EXPECT_EQ(Second.Artifact, First.Artifact);
  EXPECT_EQ(Second.DecisionSummary, First.DecisionSummary);
  // A changed semantic flag is a different key: no replay.
  PlaceRequest NoComm = Req;
  NoComm.UseCommutativity = false;
  PlaceResponse Third;
  ASSERT_TRUE(Client->place(NoComm, Third, &Error)) << Error;
  ASSERT_EQ(Third.Status, ResponseStatus::Ok);
  EXPECT_FALSE(Third.Replayed);
}

TEST(ServiceTest, MalformedAndTruncatedFramesFailClosedWithoutWedging) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock()));
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;

  auto ExpectClosed = [&](const std::vector<uint8_t> &Bytes) {
    int Fd = connectUnix(Dir.sock(), &Error);
    ASSERT_GE(Fd, 0) << Error;
    ASSERT_EQ(::write(Fd, Bytes.data(), Bytes.size()),
              static_cast<ssize_t>(Bytes.size()));
    // The server must close the connection (EOF) without sending a
    // PlaceResponse-typed frame.
    MsgType Type;
    std::vector<uint8_t> Payload;
    EXPECT_FALSE(recvFrame(Fd, Type, Payload));
    ::close(Fd);
  };

  // Garbage that is not a frame header.
  ExpectClosed({'g', 'a', 'r', 'b', 'a', 'g', 'e', '!', 0, 1, 2, 3, 4, 5, 6,
                7, 8, 9});
  // A valid header with an oversized length.
  {
    std::vector<uint8_t> Bytes;
    persist::ByteWriter B(Bytes);
    B.writeU32(FrameMagic);
    B.writeByte(ProtocolVersion);
    B.writeByte(static_cast<uint8_t>(MsgType::PlaceRequest));
    B.writeU32(static_cast<uint32_t>(MaxFramePayload + 1));
    B.writeU64(0);
    ExpectClosed(Bytes);
  }
  // A correct frame whose checksum is wrong.
  {
    std::vector<uint8_t> Payload = {1, 2, 3, 4};
    std::vector<uint8_t> Bytes;
    persist::ByteWriter B(Bytes);
    B.writeU32(FrameMagic);
    B.writeByte(ProtocolVersion);
    B.writeByte(static_cast<uint8_t>(MsgType::PlaceRequest));
    B.writeU32(static_cast<uint32_t>(Payload.size()));
    B.writeU64(0xdeadbeef); // not fnv1a(Payload)
    Bytes.insert(Bytes.end(), Payload.begin(), Payload.end());
    ExpectClosed(Bytes);
  }
  // A truncated frame: header promising more payload than ever arrives.
  {
    std::vector<uint8_t> Bytes;
    persist::ByteWriter B(Bytes);
    B.writeU32(FrameMagic);
    B.writeByte(ProtocolVersion);
    B.writeByte(static_cast<uint8_t>(MsgType::PlaceRequest));
    B.writeU32(64);
    B.writeU64(0);
    Bytes.push_back(7); // 1 of the promised 64 bytes
    int Fd = connectUnix(Dir.sock(), &Error);
    ASSERT_GE(Fd, 0) << Error;
    ASSERT_EQ(::write(Fd, Bytes.data(), Bytes.size()),
              static_cast<ssize_t>(Bytes.size()));
    ::shutdown(Fd, SHUT_WR); // EOF mid-payload
    MsgType Type;
    std::vector<uint8_t> Payload;
    EXPECT_FALSE(recvFrame(Fd, Type, Payload));
    ::close(Fd);
  }
  // A well-framed PlaceRequest whose *payload* is malformed: the server
  // answers Malformed (framing was intact) and then closes.
  {
    std::vector<uint8_t> Payload = {0xff, 0xff, 0xff};
    int Fd = connectUnix(Dir.sock(), &Error);
    ASSERT_GE(Fd, 0) << Error;
    ASSERT_TRUE(sendFrame(Fd, MsgType::PlaceRequest, Payload));
    MsgType Type;
    std::vector<uint8_t> Reply;
    ASSERT_TRUE(recvFrame(Fd, Type, Reply));
    ASSERT_EQ(Type, MsgType::PlaceResponse);
    PlaceResponse R;
    ASSERT_TRUE(PlaceResponse::decode(Reply.data(), Reply.size(), R));
    EXPECT_EQ(R.Status, ResponseStatus::Malformed);
    ::close(Fd);
  }
  // A response-typed frame from a confused peer: ErrorResponse, then close.
  {
    std::vector<uint8_t> Payload;
    int Fd = connectUnix(Dir.sock(), &Error);
    ASSERT_GE(Fd, 0) << Error;
    ASSERT_TRUE(sendFrame(Fd, MsgType::PlaceResponse, Payload));
    MsgType Type;
    std::vector<uint8_t> Reply;
    ASSERT_TRUE(recvFrame(Fd, Type, Reply));
    EXPECT_EQ(Type, MsgType::ErrorResponse);
    ::close(Fd);
  }

  // After all of that abuse, the server still serves a clean request.
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;
  PlaceResponse R;
  ASSERT_TRUE(Client->place(benchRequest("BoundedBuffer"), R, &Error))
      << Error;
  ASSERT_EQ(R.Status, ResponseStatus::Ok) << R.Error;
  EXPECT_EQ(R.DecisionSummary, runLocal("BoundedBuffer").Sigma);
}

TEST(ServiceTest, GracefulDrainDeliversInFlightResponsesThenExits) {
  TempDir Dir;
  ServerOptions Opts = miniServerOptions(Dir.sock());
  Opts.Workers = 1; // single lane: the drain really races an in-flight run
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;

  // Client A fires a request and reads its response on its own thread.
  std::atomic<bool> AOk{false};
  std::string ASigma;
  std::thread A([&] {
    std::string Err;
    auto Client = ServiceClient::connect(Dir.sock(), &Err);
    if (!Client)
      return;
    PlaceRequest Req = benchRequest("SimpleDecoder");
    Req.BypassResultCache = true;
    PlaceResponse R;
    if (Client->place(Req, R, &Err) && R.Status == ResponseStatus::Ok) {
      ASigma = R.DecisionSummary;
      AOk.store(true);
    }
  });

  // Client B asks for a drain while A's request is (likely) in flight.
  {
    auto Client = ServiceClient::connect(Dir.sock(), &Error);
    ASSERT_NE(Client, nullptr) << Error;
    ASSERT_TRUE(Client->shutdown(/*Drain=*/true, &Error)) << Error;
  }

  A.join();
  Srv.wait(); // must terminate: drain completes, threads join

  // A's response was delivered intact despite the drain.
  EXPECT_TRUE(AOk.load());
  EXPECT_EQ(ASigma, runLocal("SimpleDecoder").Sigma);
  // The socket is gone: new connections fail fast.
  auto Late = ServiceClient::connect(Dir.sock(), &Error);
  EXPECT_EQ(Late, nullptr);
}

TEST(ServiceTest, TwoDaemonFleetSharesOneCacheDirectory) {
  TempDir Dir;
  ServerOptions OptsA = miniServerOptions(Dir.sock("a.sock"));
  OptsA.CacheDir = Dir.Path + "/store";
  ServerOptions OptsB = miniServerOptions(Dir.sock("b.sock"));
  OptsB.CacheDir = Dir.Path + "/store";

  Server A(OptsA), B(OptsB);
  std::string Error;
  ASSERT_TRUE(A.start(&Error)) << Error;
  ASSERT_TRUE(B.start(&Error)) << Error;

  PlaceRequest Req = benchRequest("H2OBarrier");
  Req.BypassResultCache = true;

  // Daemon A pays the cold analysis and persists every answer.
  auto ClientA = ServiceClient::connect(OptsA.SocketPath, &Error);
  ASSERT_NE(ClientA, nullptr) << Error;
  PlaceResponse Cold;
  ASSERT_TRUE(ClientA->place(Req, Cold, &Error)) << Error;
  ASSERT_EQ(Cold.Status, ResponseStatus::Ok) << Cold.Error;
  EXPECT_GT(Cold.SharedMisses, 0u); // A paid real solves

  // Daemon B — a different process in real fleets, a different resident
  // store handle here — picks up A's appends (per-request refresh) and
  // serves the same workload mostly from A's work. Σ must be identical;
  // the hit rate is >0 but not asserted 100% (mini interning caveat).
  auto ClientB = ServiceClient::connect(OptsB.SocketPath, &Error);
  ASSERT_NE(ClientB, nullptr) << Error;
  PlaceResponse Warm;
  ASSERT_TRUE(ClientB->place(Req, Warm, &Error)) << Error;
  ASSERT_EQ(Warm.Status, ResponseStatus::Ok) << Warm.Error;
  EXPECT_GT(Warm.SharedHits, 0u);
  EXPECT_LT(Warm.SharedMisses, Cold.SharedMisses);
  EXPECT_EQ(Warm.DecisionSummary, Cold.DecisionSummary);

  A.requestShutdown(true);
  A.wait();
  B.requestShutdown(true);
  B.wait();
}

TEST(ServiceTest, StoreProfileGuardsRequestsForOtherBackends) {
  TempDir Dir;
  Server Srv(miniServerOptions(Dir.sock())); // store keyed to "mini"
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;

  PlaceRequest Req = benchRequest("BoundedBuffer");
  Req.Solver = "default"; // z3 in Z3 builds (mismatch), mini otherwise
  PlaceResponse R;
  ASSERT_TRUE(Client->place(Req, R, &Error)) << Error;
  ASSERT_EQ(R.Status, ResponseStatus::Ok) << R.Error;
  if (solver::hasZ3()) {
    EXPECT_TRUE(R.StoreSkipped); // ran memo-only, never mixing profiles
    EXPECT_EQ(R.SharedHits + R.SharedMisses, 0u);
  } else {
    EXPECT_FALSE(R.StoreSkipped);
  }
  EXPECT_EQ(R.DecisionSummary, runLocal("BoundedBuffer").Sigma);
}

TEST(ServiceTest, StatusReflectsServiceState) {
  TempDir Dir;
  ServerOptions Opts = miniServerOptions(Dir.sock());
  Opts.JobsBudget = 5;
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;

  PlaceResponse R;
  ASSERT_TRUE(Client->place(benchRequest("BoundedBuffer"), R, &Error));
  ASSERT_TRUE(Client->place(benchRequest("BoundedBuffer"), R, &Error));
  EXPECT_TRUE(R.Replayed);

  StatusResponse S;
  ASSERT_TRUE(Client->status(S, &Error)) << Error;
  EXPECT_EQ(S.RequestsServed, 2u);
  EXPECT_EQ(S.ResultCacheHits, 1u);
  EXPECT_GT(S.StoreRecords, 0u);
  EXPECT_EQ(S.JobsBudget, 5u);
  EXPECT_EQ(S.JobsAvailable, 5u);
  EXPECT_EQ(S.StoreProfile, "mini");
  EXPECT_TRUE(S.StoreDir.empty()); // resident in-memory tier
  EXPECT_FALSE(S.Draining);
}

#endif // !_WIN32

} // namespace
