//===- tests/IncrementalSolverTest.cpp - Incremental-vs-one-shot parity -------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// The differential contract of the incremental placement engine: for every
// benchmark workload, `--incremental on` and `--incremental off` produce
// byte-identical Σ (decisions, conditionality, broadcast bits), identical
// PlacementStats totals, and identical cache counters — memo *and*
// persistent tier — under serial and parallel fan-out, cold and warm cache
// directories. Any drift is a bug in session soundness (a prefix asserted
// over a non-entailing delta) or in cache-key derivation (a session query
// keyed by anything other than its equivalent one-shot formula).
//
// Also covers the batched single-flight cache lookup underlying the
// no-signal batches (lookupOrComputeBatch) directly.
//
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "persist/QueryStore.h"
#include "solver/CachingSolver.h"
#include "solver/SolverSession.h"

#include "tests/TestUtil.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

using namespace expresso;
using namespace expresso::logic;
using namespace expresso::solver;

namespace {

std::string makeTempDir() {
  std::string Tmpl = (std::filesystem::temp_directory_path() /
                      "expresso-incr-XXXXXX")
                         .string();
  char *D = ::mkdtemp(Tmpl.data());
  EXPECT_NE(D, nullptr);
  return Tmpl;
}

struct TempDir {
  std::string Path = makeTempDir();
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
};

struct PlacementRun {
  std::string Decisions;
  std::string FullSummary;
  core::PlacementStats Stats;
};

/// One placement of \p Def with the given discharge mode, fan-out, and
/// cache configuration, in a fresh TermContext (so two runs never warm each
/// other through anything but an explicitly shared store directory).
PlacementRun runPlacement(const bench::BenchmarkDef &Def, bool Incremental,
                          unsigned Jobs, bool Cache,
                          const std::string &StoreDir = "") {
  TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def.Source, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  auto Sema = frontend::analyze(*M, C, Diags);
  EXPECT_NE(Sema, nullptr) << Diags.str();
  std::unique_ptr<SmtSolver> Solver = createSolver(SolverKind::Default, C);

  core::PlacementOptions Opts;
  Opts.Incremental = Incremental;
  Opts.CacheQueries = Cache;
  Opts.Jobs = Jobs;
  Opts.WorkerSolvers = SolverFactory(SolverKind::Default);

  std::unique_ptr<CachingSolver> CacheLayer;
  SmtSolver *Top = Solver.get();
  if (Cache) {
    CacheLayer = CachingSolver::create(C, std::move(Solver));
    if (!StoreDir.empty()) {
      persist::QueryStore::Options SOpts;
      SOpts.Profile = defaultSolverName();
      CacheLayer->attachStore(persist::QueryStore::open(StoreDir, SOpts));
    }
    Top = CacheLayer.get();
  }
  core::PlacementResult P = core::placeSignals(C, *Sema, *Top, Opts);
  return {P.decisionSummary(), P.summary(), P.Stats};
}

/// Strict parity: Σ, the summary trailer, every aggregate stat, and —
/// unless \p CompareDisk is false (parallel warm runs, where fresh-variable
/// *names* are interleaving-dependent and so persistent hits on the
/// affected VCs are not run-reproducible in either mode) — the persistent
/// tier counters too.
void expectParity(const PlacementRun &Off, const PlacementRun &On,
                  bool CompareDisk = true) {
  EXPECT_EQ(Off.Decisions, On.Decisions);
  // The summary trailer embeds the persistent-tier counters, so it is only
  // byte-comparable when those are (everything else in it always is).
  if (CompareDisk)
    EXPECT_EQ(Off.FullSummary, On.FullSummary);
  EXPECT_EQ(Off.Stats.PairsConsidered, On.Stats.PairsConsidered);
  EXPECT_EQ(Off.Stats.HoareChecks, On.Stats.HoareChecks);
  EXPECT_EQ(Off.Stats.NoSignalProved, On.Stats.NoSignalProved);
  EXPECT_EQ(Off.Stats.Signals, On.Stats.Signals);
  EXPECT_EQ(Off.Stats.Broadcasts, On.Stats.Broadcasts);
  EXPECT_EQ(Off.Stats.Unconditional, On.Stats.Unconditional);
  EXPECT_EQ(Off.Stats.CommutativityWins, On.Stats.CommutativityWins);
  EXPECT_EQ(Off.Stats.SolverQueries, On.Stats.SolverQueries);
  EXPECT_EQ(Off.Stats.Cache.Hits, On.Stats.Cache.Hits);
  EXPECT_EQ(Off.Stats.Cache.Misses, On.Stats.Cache.Misses);
  if (CompareDisk) {
    EXPECT_EQ(Off.Stats.Cache.DiskHits, On.Stats.Cache.DiskHits);
    EXPECT_EQ(Off.Stats.Cache.DiskMisses, On.Stats.Cache.DiskMisses);
  }
}

class IncrementalParityTest : public ::testing::TestWithParam<std::string> {
protected:
  const bench::BenchmarkDef *def() {
    const bench::BenchmarkDef *Def = bench::findBenchmark(GetParam());
    EXPECT_NE(Def, nullptr);
    return Def;
  }
};

// Serial, memo cache only: the tightest configuration — every counter is
// fully deterministic, so everything must match to the byte. The FullSummary
// comparison doubles as the counters-drift regression test: any divergence
// in memo hit/miss totals lands in the stats trailer.
TEST_P(IncrementalParityTest, SerialMatchesOneShot) {
  const bench::BenchmarkDef *Def = def();
  PlacementRun Off = runPlacement(*Def, /*Incremental=*/false, 1, true);
  PlacementRun On = runPlacement(*Def, /*Incremental=*/true, 1, true);
  expectParity(Off, On);
}

// Serial, cache off: SolverQueries now counts raw backend discharges, so
// this catches any batching/assumption path that issues a different number
// of logical queries than the one-shot loop.
TEST_P(IncrementalParityTest, SerialCacheOffMatchesOneShot) {
  const bench::BenchmarkDef *Def = def();
  PlacementRun Off = runPlacement(*Def, /*Incremental=*/false, 1, false);
  PlacementRun On = runPlacement(*Def, /*Incremental=*/true, 1, false);
  expectParity(Off, On);
}

// --jobs 4: the session fan-out is CCR-granular while one-shot mode fans
// out per pair — the Σ and the single-flight counter totals must not care.
TEST_P(IncrementalParityTest, FourJobsMatchesOneShot) {
  const bench::BenchmarkDef *Def = def();
  PlacementRun Off = runPlacement(*Def, /*Incremental=*/false, 4, true);
  PlacementRun On = runPlacement(*Def, /*Incremental=*/true, 4, true);
  expectParity(Off, On);
  // And each parallel mode must match its own serial run (transitively:
  // all four configurations agree).
  PlacementRun SerialOn = runPlacement(*Def, /*Incremental=*/true, 1, true);
  expectParity(SerialOn, On);
}

// Persistent store, serial: cold and warm counters must match between the
// modes, and a store written by one mode must serve the other — the
// cache-key contract (a session query is keyed by its equivalent one-shot
// formula) made observable.
TEST_P(IncrementalParityTest, ColdWarmStoreMatchesAcrossModes) {
  const bench::BenchmarkDef *Def = def();
  TempDir OffDir, OnDir;
  PlacementRun ColdOff =
      runPlacement(*Def, /*Incremental=*/false, 1, true, OffDir.Path);
  PlacementRun ColdOn =
      runPlacement(*Def, /*Incremental=*/true, 1, true, OnDir.Path);
  expectParity(ColdOff, ColdOn);
  // A cold run never hits the store and computes every distinct formula.
  EXPECT_EQ(ColdOn.Stats.Cache.DiskHits, 0u);
  EXPECT_EQ(ColdOn.Stats.Cache.DiskMisses, ColdOn.Stats.Cache.Misses);

  // Warm-run disk counters are only *exactly* reproducible on backends
  // that never intern terms mid-solve (Z3). MiniSmt mints auxiliary terms
  // and fresh variables while solving, so serving a disk hit (which skips
  // the solve) shifts the creation-id/name stream and some later keys
  // drift — the documented 44–100% warm hit rate (ARCHITECTURE.md), and
  // the drift pattern follows backend solve *order*, which the two
  // discharge modes schedule differently. Σ and the memo counters are
  // exact on every backend; the disk-exactness assertions are the Z3
  // contract.
  const bool ExactDisk = hasZ3(); // runPlacement uses SolverKind::Default
  PlacementRun WarmOff =
      runPlacement(*Def, /*Incremental=*/false, 1, true, OffDir.Path);
  PlacementRun WarmOn =
      runPlacement(*Def, /*Incremental=*/true, 1, true, OnDir.Path);
  expectParity(WarmOff, WarmOn, /*CompareDisk=*/ExactDisk);
  if (ExactDisk) {
    // Drift-free serial runs answer every distinct formula from the tier.
    EXPECT_EQ(WarmOn.Stats.Cache.DiskMisses, 0u);
    EXPECT_EQ(WarmOn.Stats.Cache.DiskHits, WarmOn.Stats.Cache.Misses);
  } else {
    EXPECT_GT(WarmOn.Stats.Cache.DiskHits, 0u);
    EXPECT_GT(WarmOff.Stats.Cache.DiskHits, 0u);
  }
  EXPECT_EQ(WarmOn.Decisions, ColdOn.Decisions);

  // Cross-mode reuse: one-shot mode warm-started from the directory the
  // incremental mode filled (and vice versa) — byte-compatible keys mean
  // full persistent hit rates in both directions on drift-free backends,
  // and working reuse (hits > 0, identical Σ) everywhere.
  PlacementRun CrossOff =
      runPlacement(*Def, /*Incremental=*/false, 1, true, OnDir.Path);
  expectParity(WarmOn, CrossOff, /*CompareDisk=*/ExactDisk);
  if (!ExactDisk)
    EXPECT_GT(CrossOff.Stats.Cache.DiskHits, 0u);
  PlacementRun CrossOn =
      runPlacement(*Def, /*Incremental=*/true, 1, true, OffDir.Path);
  expectParity(WarmOff, CrossOn, /*CompareDisk=*/ExactDisk);
  if (!ExactDisk)
    EXPECT_GT(CrossOn.Stats.Cache.DiskHits, 0u);
}

// Persistent store under --jobs 4: Σ and memo counters still match; the
// cold run's disk counters are deterministic too (a cold store yields
// exactly one miss per distinct formula). Warm disk hits are only compared
// for internal consistency (see expectParity's CompareDisk note).
TEST_P(IncrementalParityTest, FourJobsColdWarmStore) {
  const bench::BenchmarkDef *Def = def();
  TempDir OffDir, OnDir;
  PlacementRun ColdOff =
      runPlacement(*Def, /*Incremental=*/false, 4, true, OffDir.Path);
  PlacementRun ColdOn =
      runPlacement(*Def, /*Incremental=*/true, 4, true, OnDir.Path);
  expectParity(ColdOff, ColdOn);
  EXPECT_EQ(ColdOn.Stats.Cache.DiskHits, 0u);

  PlacementRun WarmOff =
      runPlacement(*Def, /*Incremental=*/false, 4, true, OffDir.Path);
  PlacementRun WarmOn =
      runPlacement(*Def, /*Incremental=*/true, 4, true, OnDir.Path);
  expectParity(WarmOff, WarmOn, /*CompareDisk=*/false);
  // Internal invariant in both modes: every memo miss probed the store.
  EXPECT_EQ(WarmOff.Stats.Cache.DiskHits + WarmOff.Stats.Cache.DiskMisses,
            WarmOff.Stats.Cache.Misses);
  EXPECT_EQ(WarmOn.Stats.Cache.DiskHits + WarmOn.Stats.Cache.DiskMisses,
            WarmOn.Stats.Cache.Misses);
  EXPECT_GT(WarmOn.Stats.Cache.DiskHits, 0u);
}

std::vector<std::string> allBenchmarkNames() {
  std::vector<std::string> Names;
  for (const bench::BenchmarkDef &Def : bench::allBenchmarks())
    Names.push_back(Def.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, IncrementalParityTest,
                         ::testing::ValuesIn(allBenchmarkNames()),
                         [](const auto &Info) { return Info.param; });

//===----------------------------------------------------------------------===//
// Session engagement and fallback behavior
//===----------------------------------------------------------------------===//

TEST(IncrementalEngagementTest, SessionsEngageOnCapableBackends) {
  const bench::BenchmarkDef *Def = bench::findBenchmark("BoundedBuffer");
  ASSERT_NE(Def, nullptr);
  TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def->Source, Diags);
  auto Sema = frontend::analyze(*M, C, Diags);
  auto Solver = createSolver(SolverKind::Default, C);
  core::PlacementOptions Opts;
  Opts.Incremental = true;
  core::PlacementResult On = core::placeSignals(C, *Sema, *Solver, Opts);
  EXPECT_TRUE(On.Stats.IncrementalSessions);

  TermContext C2;
  DiagnosticEngine D2;
  auto M2 = frontend::parseMonitor(Def->Source, D2);
  auto Sema2 = frontend::analyze(*M2, C2, D2);
  auto Solver2 = createSolver(SolverKind::Default, C2);
  core::PlacementOptions OffOpts;
  OffOpts.Incremental = false;
  core::PlacementResult Off =
      core::placeSignals(C2, *Sema2, *Solver2, OffOpts);
  EXPECT_FALSE(Off.Stats.IncrementalSessions);
  EXPECT_EQ(On.decisionSummary(), Off.decisionSummary());
}

TEST(IncrementalEngagementTest, NonSessionBackendFallsBackToOneShot) {
  // A backend without session support: incremental placement must degrade
  // to one-shot discharge (and say so in the stats), never fail.
  class OneShotOnly : public SmtSolver {
  public:
    explicit OneShotOnly(TermContext &C)
        : SmtSolver(C), Inner(createSolver(SolverKind::Mini, C)) {}
    CheckResult checkSat(const Term *F) override {
      ++Queries;
      return Inner->checkSat(F);
    }
    std::string name() const override { return "oneshot-only"; }

  private:
    std::unique_ptr<SmtSolver> Inner;
  };
  const bench::BenchmarkDef *Def = bench::findBenchmark("ReadersWriters");
  ASSERT_NE(Def, nullptr);
  TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def->Source, Diags);
  auto Sema = frontend::analyze(*M, C, Diags);
  OneShotOnly Backend(C);
  core::PlacementOptions Opts;
  Opts.Incremental = true;
  core::PlacementResult P = core::placeSignals(C, *Sema, Backend, Opts);
  EXPECT_FALSE(P.Stats.IncrementalSessions);
  EXPECT_FALSE(P.Placements.empty());
}

//===----------------------------------------------------------------------===//
// Batched single-flight cache lookups
//===----------------------------------------------------------------------===//

TEST(BatchLookupTest, CountsLikeSequentialAsks) {
  TermContext C;
  const Term *X = C.var("x", Sort::Int);
  const Term *F1 = C.ge(X, C.getZero());
  const Term *F2 = C.lt(X, C.getZero());
  const Term *F3 = C.eq(X, C.intConst(7));

  CachingSolver Cache(createSolver(SolverKind::Mini, C));
  SmtSolver &Backend = Cache.backend();
  auto Compute = [&](const std::vector<const Term *> &Fs) {
    std::vector<CheckResult> Rs;
    for (const Term *F : Fs)
      Rs.push_back(Backend.checkSat(F));
    return Rs;
  };

  // Batch with an in-batch duplicate: 3 distinct formulas = 3 misses, the
  // duplicate counts as a hit — exactly the sequential totals.
  std::vector<CheckResult> Rs =
      Cache.lookupOrComputeBatch({F1, F2, F1, F3}, Compute);
  ASSERT_EQ(Rs.size(), 4u);
  EXPECT_EQ(Rs[0].TheAnswer, Answer::Sat);
  EXPECT_EQ(Rs[1].TheAnswer, Answer::Sat);
  EXPECT_EQ(Rs[2].TheAnswer, Answer::Sat);
  EXPECT_EQ(Rs[0].TheAnswer, Rs[2].TheAnswer);
  EXPECT_EQ(Cache.stats().Misses, 3u);
  EXPECT_EQ(Cache.stats().Hits, 1u);

  // A second batch over cached formulas: all hits, no compute.
  bool Computed = false;
  Cache.lookupOrComputeBatch(
      {F1, F2}, [&](const std::vector<const Term *> &Fs) {
        Computed = true;
        return Compute(Fs);
      });
  EXPECT_FALSE(Computed);
  EXPECT_EQ(Cache.stats().Hits, 3u);
  EXPECT_EQ(Cache.stats().Misses, 3u);
}

TEST(BatchLookupTest, StoreProbesOncePerDistinctFormula) {
  TempDir Dir;
  TermContext C;
  const Term *X = C.var("x", Sort::Int);
  std::vector<const Term *> Fs = {C.ge(X, C.getZero()),
                                  C.le(X, C.intConst(5)),
                                  C.eq(X, C.intConst(2))};
  persist::QueryStore::Options SOpts;
  SOpts.Profile = "mini";
  {
    CachingSolver Cache(createSolver(SolverKind::Mini, C));
    Cache.attachStore(persist::QueryStore::open(Dir.Path, SOpts));
    SmtSolver &Backend = Cache.backend();
    Cache.lookupOrComputeBatch(Fs, [&](const auto &Residual) {
      std::vector<CheckResult> Rs;
      for (const Term *F : Residual)
        Rs.push_back(Backend.checkSat(F));
      return Rs;
    });
    EXPECT_EQ(Cache.stats().DiskMisses, 3u);
    EXPECT_EQ(Cache.stats().DiskHits, 0u);
  }
  // Fresh memo, same directory: the whole batch is served from disk and the
  // compute callback never runs.
  CachingSolver Warm(createSolver(SolverKind::Mini, C));
  Warm.attachStore(persist::QueryStore::open(Dir.Path, SOpts));
  std::vector<CheckResult> Rs =
      Warm.lookupOrComputeBatch(Fs, [&](const auto &Residual) {
        ADD_FAILURE() << "warm batch reached the backend";
        return std::vector<CheckResult>(Residual.size());
      });
  ASSERT_EQ(Rs.size(), 3u);
  EXPECT_EQ(Warm.stats().DiskHits, 3u);
  EXPECT_EQ(Warm.stats().DiskMisses, 0u);
}

//===----------------------------------------------------------------------===//
// SolverSession discharge semantics
//===----------------------------------------------------------------------===//

TEST(SolverSessionTest, ScopedAnswersEqualOneShot) {
  TermContext C;
  Rng R(0x5E551017);
  testutil::FormulaGen Gen(C, R);
  std::unique_ptr<SmtSolver> Backend = createSolver(SolverKind::Default, C);
  std::unique_ptr<SmtSolver> Reference = createSolver(SolverKind::Default, C);
  CachingSolver Cache(*Backend);
  SolverSession S(&Cache, *Backend);

  // Deltas must entail the prefix for scoped discharge; conjoining the
  // prefix into the delta guarantees that by construction.
  const Term *I = C.ge(Gen.intVars()[0], C.getZero());
  const Term *G = C.le(Gen.intVars()[1], C.intConst(8));
  S.setInvariant(I);
  S.enterCcr(G);
  for (int Round = 0; Round < 40; ++Round) {
    const Term *Delta = C.and_({I, G, Gen.randomFormula(2)});
    Answer Want = Reference->checkSat(Delta).TheAnswer;
    Answer GotGuard = S.checkSatUnderGuard(Delta).TheAnswer;
    Answer GotInv = S.checkSatUnderInvariant(C.and_(I, Delta)).TheAnswer;
    if (Want != Answer::Unknown) {
      EXPECT_EQ(GotGuard, Want) << "round " << Round;
      EXPECT_EQ(GotInv, Want) << "round " << Round;
    }
  }
  S.exitCcr();

  // Absolute discharges ignore every scope.
  const Term *NotI = C.lt(Gen.intVars()[0], C.getZero());
  EXPECT_EQ(S.absoluteSolver().checkSat(NotI).TheAnswer, Answer::Sat);
}

TEST(SolverSessionTest, BatchUnderGuardEqualsOneShot) {
  TermContext C;
  std::unique_ptr<SmtSolver> Backend = createSolver(SolverKind::Default, C);
  std::unique_ptr<SmtSolver> Reference = createSolver(SolverKind::Default, C);
  CachingSolver Cache(*Backend);
  SolverSession S(&Cache, *Backend);
  const Term *X = C.var("bx", Sort::Int);
  const Term *I = C.ge(X, C.getZero());
  S.setInvariant(I);
  S.enterCcr(C.getTrue());
  std::vector<const Term *> Fs = {
      C.and_(I, C.le(X, C.intConst(3))), // sat
      C.and_(I, C.lt(X, C.getZero())),   // unsat
      C.and_(I, C.eq(X, C.intConst(1))), // sat
  };
  std::vector<CheckResult> Rs = S.checkSatBatchUnderGuard(Fs);
  ASSERT_EQ(Rs.size(), Fs.size());
  for (size_t K = 0; K < Fs.size(); ++K)
    EXPECT_EQ(Rs[K].TheAnswer, Reference->checkSat(Fs[K]).TheAnswer) << K;
  S.exitCcr();
  // The batch went through the cache: 3 distinct formulas, 3 misses.
  EXPECT_EQ(Cache.stats().Misses, 3u);
  EXPECT_EQ(S.numQueries(), 3u);
}

} // namespace
