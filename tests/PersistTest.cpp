//===- tests/PersistTest.cpp - Persistent solver cache tests ------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Covers the persistence subsystem end to end:
//  * canonical term codec: randomized round-trips across TermContexts with
//    structural-hash equality, canonical-bytes stability, and fuzzing of
//    the decoder against mutated blobs;
//  * QueryStore: on-disk round-trips, truncation / checksum / version /
//    profile damage (always degrading to an empty or shorter cache, never
//    a wrong answer), read-only mode, refresh across handles, compaction;
//  * the two-tier CachingSolver on real placements: warm reruns in fresh
//    TermContexts (the cross-process reuse path) must reproduce Σ
//    byte-for-byte with persistent-tier hits, including under --jobs 4 and
//    with a corrupted cache directory.
//
//===----------------------------------------------------------------------===//

#include "persist/QueryStore.h"
#include "persist/TermCodec.h"

#include "bench/Workloads.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "logic/Printer.h"
#include "solver/CachingSolver.h"

#include "tests/TestUtil.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace expresso;
using namespace expresso::logic;
using namespace expresso::persist;
using namespace expresso::solver;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// A fresh private directory under the system temp root.
std::string makeTempDir() {
  std::string Tmpl = (std::filesystem::temp_directory_path() /
                      "expresso-persist-XXXXXX")
                         .string();
  char *D = ::mkdtemp(Tmpl.data());
  EXPECT_NE(D, nullptr);
  return D ? std::string(D) : std::string();
}

/// RAII cleanup for a temp cache directory.
struct TempDir {
  std::string Path = makeTempDir();
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string log() const { return Path + "/queries.log"; }
};

std::shared_ptr<QueryStore> openStore(const std::string &Dir,
                                      bool ReadOnly = false,
                                      const std::string &Profile = "mini") {
  QueryStore::Options Opts;
  Opts.ReadOnly = ReadOnly;
  Opts.Profile = Profile;
  return QueryStore::open(Dir, Opts);
}

CheckResult satResult(int64_t X) {
  CheckResult R;
  R.TheAnswer = Answer::Sat;
  R.ModelComplete = true;
  R.Model["x"] = Value::ofInt(X);
  R.Model["p"] = Value::ofBool(X % 2 == 0);
  R.Model["a"] = Value::ofArray(Sort::IntArray, {{0, X}, {7, -X}}, 3);
  return R;
}

CheckResult unsatResult() {
  CheckResult R;
  R.TheAnswer = Answer::Unsat;
  return R;
}

/// A small pile of distinct canonical keys (real term encodings).
std::vector<std::string> makeKeys(TermContext &C, size_t N) {
  std::vector<std::string> Keys;
  const Term *X = C.var("x", Sort::Int);
  for (size_t I = 0; I < N; ++I)
    Keys.push_back(encodeTermKey(C.le(X, C.intConst(static_cast<int64_t>(I)))));
  return Keys;
}

/// One full placement of a built-in benchmark in a fresh TermContext with
/// the two-tier cache; the unit of the cross-process reuse tests.
struct PlacementOut {
  std::string Sigma;
  CacheStats Cache;
};

PlacementOut runBench(const std::string &BenchName,
                      std::shared_ptr<QueryStore> Store, unsigned Jobs = 1) {
  const bench::BenchmarkDef *Def = bench::findBenchmark(BenchName);
  EXPECT_NE(Def, nullptr);
  TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def->Source, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  auto Sema = frontend::analyze(*M, C, Diags);
  EXPECT_NE(Sema, nullptr) << Diags.str();
  auto Cache = CachingSolver::create(C, createSolver(SolverKind::Mini, C));
  if (Store)
    Cache->attachStore(std::move(Store));
  core::PlacementOptions Opts;
  Opts.Jobs = Jobs;
  Opts.WorkerSolvers = SolverFactory(SolverKind::Mini);
  core::PlacementResult P = core::placeSignals(C, *Sema, *Cache, Opts);
  return {P.decisionSummary(), P.Stats.Cache};
}

//===----------------------------------------------------------------------===//
// Canonical term codec
//===----------------------------------------------------------------------===//

/// The issue's core property: >= 1000 randomized terms round-trip through
/// the codec into a fresh TermContext with structural hashes (and printed
/// forms) intact — and decoding back into the *producing* context returns
/// the original pointers, because re-interning lands on the same nodes.
TEST(PersistTest, RoundTripsRandomTermsAcrossContexts) {
  TermContext C1;
  Rng R(0xD15C);
  testutil::FormulaGen Gen(C1, R);

  std::vector<const Term *> Terms;
  for (int I = 0; I < 1100; ++I)
    Terms.push_back(I % 3 == 0 ? Gen.randomIntTerm(4) : Gen.randomFormula(4));
  // The generator covers arithmetic and propositional shapes; add the
  // array/ite/divides corners by hand so every TermKind crosses the codec.
  const Term *X = C1.var("x", Sort::Int);
  const Term *Y = C1.var("y", Sort::Int);
  const Term *Arr = C1.var("arr", Sort::IntArray);
  const Term *Flags = C1.var("flags", Sort::BoolArray);
  Terms.push_back(C1.store(Arr, X, Y));
  Terms.push_back(C1.select(C1.store(Arr, X, Y), C1.add(X, Y)));
  Terms.push_back(C1.select(Flags, Y));
  Terms.push_back(C1.ite(C1.le(X, Y), C1.select(Arr, X), Y));
  Terms.push_back(C1.divides(3, C1.add(X, Y)));

  std::vector<uint8_t> Buf;
  ByteWriter BW(Buf);
  TermWriter W(BW);
  for (const Term *T : Terms)
    W.write(T);

  // Fresh context: structurally identical terms, same hashes, same text.
  {
    TermContext C2;
    ByteReader BR(Buf.data(), Buf.size());
    TermReader Rd(C2, BR);
    for (const Term *Orig : Terms) {
      const Term *Back = Rd.read();
      ASSERT_NE(Back, nullptr);
      EXPECT_EQ(Back->structuralHash(), Orig->structuralHash());
      EXPECT_EQ(printTerm(Back), printTerm(Orig));
    }
    EXPECT_TRUE(BR.atEnd());
    EXPECT_FALSE(BR.failed());
  }
  // Producing context: decoding is the identity on pointers.
  {
    ByteReader BR(Buf.data(), Buf.size());
    TermReader Rd(C1, BR);
    for (const Term *Orig : Terms)
      EXPECT_EQ(Rd.read(), Orig);
  }
}

TEST(PersistTest, CanonicalBytesAgreeAcrossContexts) {
  // The same construction sequence in two contexts yields identical bytes:
  // the encoding depends on structure only, never on ids or pointers.
  auto Build = [](TermContext &C) {
    const Term *X = C.var("x", Sort::Int);
    const Term *Y = C.var("y", Sort::Int);
    const Term *P = C.var("p", Sort::Bool);
    return C.and_({C.implies(P, C.le(C.add(X, Y), C.intConst(4))),
                   C.or_(P, C.lt(Y, X))});
  };
  TermContext C1, C2;
  EXPECT_EQ(encodeTermKey(Build(C1)), encodeTermKey(Build(C2)));

  // Interning extra terms first shifts every id in C3 — bytes must not move.
  TermContext C3;
  for (int I = 0; I < 64; ++I)
    C3.var("pad" + std::to_string(I), Sort::Int);
  EXPECT_EQ(encodeTermKey(Build(C1)), encodeTermKey(Build(C3)));
}

TEST(PersistTest, DecoderSurvivesMutatedBlobs) {
  TermContext C1;
  Rng R(0xF077);
  testutil::FormulaGen Gen(C1, R);
  std::string Blob = encodeTermKey(Gen.randomFormula(5));

  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string Mutated = Blob;
    // Flip 1-3 random bytes (or truncate): decode must either fail cleanly
    // or produce some valid term — never crash or intern a malformed node.
    if (Trial % 5 == 0) {
      Mutated.resize(R.below(Mutated.size()));
    } else {
      for (uint64_t K = 0; K <= R.below(3); ++K) {
        size_t Pos = static_cast<size_t>(R.below(Mutated.size()));
        Mutated[Pos] = static_cast<char>(R.next());
      }
    }
    TermContext C2;
    ByteReader BR(reinterpret_cast<const uint8_t *>(Mutated.data()),
                  Mutated.size());
    TermReader Rd(C2, BR);
    const Term *T = Rd.read();
    if (T != nullptr) {
      // Whatever decoded must be internally consistent: printable and
      // re-encodable.
      EXPECT_FALSE(printTerm(T).empty());
      EXPECT_FALSE(encodeTermKey(T).empty());
    }
  }
}

//===----------------------------------------------------------------------===//
// QueryStore: round-trips and damage
//===----------------------------------------------------------------------===//

TEST(PersistTest, StoreRoundTripsThroughDisk) {
  TempDir Dir;
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 8);
  {
    auto Store = openStore(Dir.Path);
    ASSERT_NE(Store, nullptr);
    for (size_t I = 0; I < Keys.size(); ++I)
      Store->append(Keys[I], I % 2 ? satResult(static_cast<int64_t>(I))
                                   : unsatResult());
    EXPECT_EQ(Store->size(), Keys.size());
    EXPECT_EQ(Store->stats().RecordsAppended, Keys.size());
  }
  // Fresh handle (a new process, as far as the store can tell).
  auto Store = openStore(Dir.Path);
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(Store->size(), Keys.size());
  EXPECT_EQ(Store->stats().RecordsLoaded, Keys.size());
  EXPECT_FALSE(Store->stats().Degraded);
  for (size_t I = 0; I < Keys.size(); ++I) {
    CheckResult R;
    ASSERT_TRUE(Store->lookup(Keys[I], R));
    if (I % 2) {
      EXPECT_EQ(R.TheAnswer, Answer::Sat);
      EXPECT_TRUE(R.ModelComplete);
      EXPECT_EQ(R.Model, satResult(static_cast<int64_t>(I)).Model);
    } else {
      EXPECT_EQ(R.TheAnswer, Answer::Unsat);
      EXPECT_TRUE(R.Model.empty());
    }
  }
  CheckResult R;
  EXPECT_FALSE(Store->lookup("no-such-key", R));
}

TEST(PersistTest, TruncatedLogKeepsIntactPrefix) {
  TempDir Dir;
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 6);
  {
    auto Store = openStore(Dir.Path);
    for (const std::string &K : Keys)
      Store->append(K, unsatResult());
  }
  // Chop into the last record.
  auto Size = std::filesystem::file_size(Dir.log());
  std::filesystem::resize_file(Dir.log(), Size - 5);

  auto Store = openStore(Dir.Path);
  ASSERT_NE(Store, nullptr);
  EXPECT_TRUE(Store->stats().Degraded);
  EXPECT_EQ(Store->size(), Keys.size() - 1);
  CheckResult R;
  EXPECT_TRUE(Store->lookup(Keys.front(), R));
  EXPECT_FALSE(Store->lookup(Keys.back(), R));
  // The writable open truncated the garbage; appending again works.
  Store->append(Keys.back(), unsatResult());
  auto Reopened = openStore(Dir.Path);
  EXPECT_EQ(Reopened->size(), Keys.size());
  EXPECT_FALSE(Reopened->stats().Degraded);
}

TEST(PersistTest, ChecksumFailureDropsDamagedSuffix) {
  TempDir Dir;
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 6);
  std::vector<uintmax_t> Offsets; // log size after each append
  {
    auto Store = openStore(Dir.Path);
    for (const std::string &K : Keys) {
      Store->append(K, satResult(7));
      Offsets.push_back(std::filesystem::file_size(Dir.log()));
    }
  }
  // Flip one payload byte inside record 4 (answers live in the payload, so
  // this is exactly the "wrong answer on disk" scenario).
  uintmax_t Target = Offsets[3] + 14;
  {
    std::fstream F(Dir.log(),
                   std::ios::in | std::ios::out | std::ios::binary);
    F.seekg(static_cast<std::streamoff>(Target));
    char Ch = 0;
    F.get(Ch);
    F.seekp(static_cast<std::streamoff>(Target));
    F.put(static_cast<char>(Ch ^ 0x40));
  }
  auto Store = openStore(Dir.Path);
  ASSERT_NE(Store, nullptr);
  EXPECT_TRUE(Store->stats().Degraded);
  // Records before the damage survive; the damaged one and everything
  // after it are gone — dropped, not mis-served.
  EXPECT_EQ(Store->size(), 4u);
  CheckResult R;
  EXPECT_TRUE(Store->lookup(Keys[3], R));
  EXPECT_EQ(R.Model, satResult(7).Model); // intact record, intact model
  EXPECT_FALSE(Store->lookup(Keys[4], R));
  EXPECT_FALSE(Store->lookup(Keys[5], R));
}

TEST(PersistTest, VersionMismatchStartsCold) {
  TempDir Dir;
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 3);
  {
    auto Store = openStore(Dir.Path);
    for (const std::string &K : Keys)
      Store->append(K, unsatResult());
  }
  // Clobber the version field (offset 8, right after the magic) with a
  // value no store format will ever use.
  {
    std::fstream F(Dir.log(),
                   std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(8);
    F.put(static_cast<char>(0x7f));
  }
  {
    auto RO = openStore(Dir.Path, /*ReadOnly=*/true);
    ASSERT_NE(RO, nullptr);
    EXPECT_TRUE(RO->stats().Degraded);
    EXPECT_EQ(RO->size(), 0u);
    CheckResult R;
    EXPECT_FALSE(RO->lookup(Keys[0], R));
  }
  // A writable open rotates the foreign log aside and starts fresh.
  auto RW = openStore(Dir.Path);
  ASSERT_NE(RW, nullptr);
  EXPECT_TRUE(RW->stats().Degraded);
  EXPECT_EQ(RW->size(), 0u);
  RW->append(Keys[0], unsatResult());
  EXPECT_EQ(RW->size(), 1u);
  EXPECT_TRUE(std::filesystem::exists(Dir.log() + ".bad"));
}

TEST(PersistTest, ProfileMismatchStartsCold) {
  TempDir Dir;
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 3);
  {
    auto Store = openStore(Dir.Path, false, "mini");
    for (const std::string &K : Keys)
      Store->append(K, unsatResult());
  }
  // Another solver's answers must never be served: "z3" sees a cold cache.
  auto Z3Store = openStore(Dir.Path, /*ReadOnly=*/true, "z3");
  ASSERT_NE(Z3Store, nullptr);
  EXPECT_TRUE(Z3Store->stats().Degraded);
  EXPECT_EQ(Z3Store->size(), 0u);
  // The matching profile still reads everything.
  auto MiniStore = openStore(Dir.Path, /*ReadOnly=*/true, "mini");
  EXPECT_EQ(MiniStore->size(), Keys.size());
  EXPECT_FALSE(MiniStore->stats().Degraded);
}

TEST(PersistTest, ReadOnlyStoreNeverWrites) {
  TempDir Dir;
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 4);
  {
    auto Store = openStore(Dir.Path);
    Store->append(Keys[0], unsatResult());
  }
  auto SizeBefore = std::filesystem::file_size(Dir.log());
  auto RO = openStore(Dir.Path, /*ReadOnly=*/true);
  ASSERT_NE(RO, nullptr);
  CheckResult R;
  EXPECT_TRUE(RO->lookup(Keys[0], R));
  RO->append(Keys[1], unsatResult());
  // Absorbed in memory (so this handle stops re-asking) but never on disk.
  EXPECT_EQ(RO->size(), 2u);
  EXPECT_EQ(RO->stats().RecordsAppended, 0u);
  EXPECT_EQ(std::filesystem::file_size(Dir.log()), SizeBefore);
  // Read-only against a missing directory: an empty store, not an error.
  auto Empty = openStore(Dir.Path + "-nonexistent", /*ReadOnly=*/true);
  ASSERT_NE(Empty, nullptr);
  EXPECT_EQ(Empty->size(), 0u);
}

TEST(PersistTest, RefreshSeesOtherHandlesRecords) {
  TempDir Dir;
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 2);
  auto A = openStore(Dir.Path);
  auto B = openStore(Dir.Path); // a second "process"
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  A->append(Keys[0], unsatResult());
  CheckResult R;
  EXPECT_FALSE(B->lookup(Keys[0], R)); // B's index predates the append
  B->refresh();
  EXPECT_TRUE(B->lookup(Keys[0], R));
  EXPECT_EQ(R.TheAnswer, Answer::Unsat);
}

TEST(PersistTest, CompactionIsCanonicalAndSurvivesConcurrentHandles) {
  TempDir Dir;
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 10);
  auto A = openStore(Dir.Path);
  auto B = openStore(Dir.Path);
  for (const std::string &K : Keys)
    A->append(K, satResult(1));
  ASSERT_TRUE(A->compact());
  // Compaction output is sorted by key: compacting again is a fixpoint.
  auto Size1 = std::filesystem::file_size(Dir.log());
  ASSERT_TRUE(A->compact());
  EXPECT_EQ(std::filesystem::file_size(Dir.log()), Size1);
  // B still holds the pre-compaction inode; its next append must follow
  // the rename and land in the new log, not the unlinked one.
  TermContext C2;
  std::string Extra =
      encodeTermKey(C2.eq(C2.var("zz", Sort::Int), C2.intConst(99)));
  B->append(Extra, unsatResult());
  // B then compacts. B never loaded A's records into its own index — it
  // must merge the live log (a new inode since A's compaction) before
  // rewriting, or it would silently delete A's work.
  ASSERT_TRUE(B->compact());
  auto Fresh = openStore(Dir.Path);
  EXPECT_EQ(Fresh->size(), Keys.size() + 1);
  CheckResult R;
  EXPECT_TRUE(Fresh->lookup(Extra, R));
  for (const std::string &K : Keys)
    EXPECT_TRUE(Fresh->lookup(K, R));
}

//===----------------------------------------------------------------------===//
// Cross-process reuse on real placements
//===----------------------------------------------------------------------===//

TEST(PersistTest, WarmRerunReproducesSigmaWithPersistentHits) {
  TempDir Dir;
  PlacementOut Cold = runBench("BoundedBuffer", openStore(Dir.Path));
  EXPECT_EQ(Cold.Cache.DiskHits, 0u);
  EXPECT_GT(Cold.Cache.DiskMisses, 0u);

  // Fresh TermContext + reopened store: everything a second process does.
  PlacementOut Warm = runBench("BoundedBuffer", openStore(Dir.Path));
  EXPECT_EQ(Warm.Sigma, Cold.Sigma); // byte-identical Σ
  EXPECT_GT(Warm.Cache.DiskHits, 0u);
  // Serial replays rebuild the same VCs, so the persistent tier answers
  // nearly everything. (Not necessarily *all*: serving a hit skips the
  // backend, and MiniSmt interns auxiliary terms mid-solve — so a warm
  // run's id stream can drift after the first hit, flipping commutative
  // operand order in a handful of later keys. Those recompute soundly.)
  EXPECT_GE(Warm.Cache.diskHitRate(), 0.5);
}

TEST(PersistTest, WarmRerunUnderFourJobsReproducesSigma) {
  TempDir Dir;
  PlacementOut Cold = runBench("ReadersWriters", openStore(Dir.Path));
  // --jobs 4: worker threads share the store through the single-flight
  // memo; Σ must still match the cold serial run byte-for-byte, with
  // persistent-tier hits observed.
  PlacementOut Warm =
      runBench("ReadersWriters", openStore(Dir.Path), /*Jobs=*/4);
  EXPECT_EQ(Warm.Sigma, Cold.Sigma);
  EXPECT_GT(Warm.Cache.DiskHits, 0u);

  // And a concurrent *writing* run against a cold store for a different
  // workload exercises parallel appends (TSan leg coverage).
  TempDir Dir2;
  PlacementOut ParCold =
      runBench("SleepingBarber", openStore(Dir2.Path), /*Jobs=*/4);
  EXPECT_GT(ParCold.Cache.DiskMisses, 0u);
  PlacementOut ParWarm =
      runBench("SleepingBarber", openStore(Dir2.Path), /*Jobs=*/4);
  EXPECT_EQ(ParWarm.Sigma, ParCold.Sigma);
  EXPECT_GT(ParWarm.Cache.DiskHits, 0u);
}

TEST(PersistTest, CorruptedCacheDegradesToColdRunBehavior) {
  TempDir Dir;
  PlacementOut Reference = runBench("H2OBarrier", nullptr);
  PlacementOut Cold = runBench("H2OBarrier", openStore(Dir.Path));
  EXPECT_EQ(Cold.Sigma, Reference.Sigma);

  // Smash the middle of the log, then run against the damaged directory:
  // the analysis must neither crash nor change Σ (the checksummed suffix is
  // simply recomputed and rewritten).
  auto Size = std::filesystem::file_size(Dir.log());
  {
    std::fstream F(Dir.log(),
                   std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(static_cast<std::streamoff>(Size / 2));
    F.put('\x5a');
    F.put('\x5a');
  }
  PlacementOut Damaged = runBench("H2OBarrier", openStore(Dir.Path));
  EXPECT_EQ(Damaged.Sigma, Reference.Sigma);

  // Total-garbage log: still a clean cold run.
  {
    std::ofstream F(Dir.log(), std::ios::trunc | std::ios::binary);
    F << "this is not a query log";
  }
  PlacementOut Garbage = runBench("H2OBarrier", openStore(Dir.Path));
  EXPECT_EQ(Garbage.Sigma, Reference.Sigma);
}

//===----------------------------------------------------------------------===//
// Size management: in-memory stores, TTL/LRU eviction, fsck
//===----------------------------------------------------------------------===//

TEST(PersistTest, InMemoryStoreAbsorbsAndServesWithoutAFile) {
  auto Store = QueryStore::createInMemory("mini");
  ASSERT_NE(Store, nullptr);
  EXPECT_TRUE(Store->inMemory());
  EXPECT_TRUE(Store->directory().empty());
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 5);
  for (size_t I = 0; I < Keys.size(); ++I)
    Store->append(Keys[I], satResult(static_cast<int64_t>(I)));
  EXPECT_EQ(Store->size(), Keys.size());
  CheckResult R;
  EXPECT_TRUE(Store->lookup(Keys[2], R));
  EXPECT_EQ(R.Model, satResult(2).Model);
  // Shared warm tier across placements, no disk anywhere: the daemon's
  // default configuration.
  PlacementOut Cold = runBench("BoundedBuffer", Store);
  EXPECT_GT(Cold.Cache.DiskMisses, 0u);
  PlacementOut Warm = runBench("BoundedBuffer", Store);
  EXPECT_EQ(Warm.Sigma, Cold.Sigma);
  EXPECT_GT(Warm.Cache.DiskHits, 0u);
  EXPECT_EQ(Warm.Cache.DiskMisses, 0u);
}

TEST(PersistTest, TtlEvictionDropsExpiredRecordsAtCompaction) {
  TempDir Dir;
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 6);
  auto Store = openStore(Dir.Path);
  for (const std::string &K : Keys)
    Store->append(K, unsatResult());
  // A generous TTL keeps everything (records were stamped just now)…
  EvictionPolicy Keep;
  Keep.TtlSeconds = 3600;
  Store->setEvictionPolicy(Keep);
  ASSERT_TRUE(Store->compact());
  EXPECT_EQ(Store->size(), Keys.size());
  EXPECT_EQ(Store->stats().EvictedTtl, 0u);
  // …while a negative-effective TTL (0 means unbounded, so use 1-second
  // granularity with a backdated stamp via a rewritten log) drops them.
  // Backdate by rewriting the log: compaction re-stamps from memory, so
  // instead reopen the store after shifting its records' stamps is not
  // possible from outside — emulate by waiting out a 1s TTL on a fresh
  // handle whose stamps are >1s old by the time it compacts.
  auto Reopened = openStore(Dir.Path);
  EvictionPolicy Expire;
  Expire.TtlSeconds = 1;
  Reopened->setEvictionPolicy(Expire);
  std::this_thread::sleep_for(std::chrono::milliseconds(2100));
  ASSERT_TRUE(Reopened->compact());
  EXPECT_EQ(Reopened->size(), 0u);
  EXPECT_EQ(Reopened->stats().EvictedTtl, Keys.size());
  // The rewritten log really is empty for the next process.
  auto Fresh = openStore(Dir.Path);
  EXPECT_EQ(Fresh->size(), 0u);
}

TEST(PersistTest, SizeEvictionKeepsMostRecentlyUsedWithinBudget) {
  TempDir Dir;
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 20);
  auto Store = openStore(Dir.Path);
  for (const std::string &K : Keys)
    Store->append(K, unsatResult());
  size_t FullSize = std::filesystem::file_size(Dir.log());

  // Touch a couple of records so LRU has a signal; sleep so their stamps
  // strictly exceed the others' (second granularity).
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  CheckResult R;
  EXPECT_TRUE(Store->lookup(Keys[3], R));
  EXPECT_TRUE(Store->lookup(Keys[17], R));

  EvictionPolicy Policy;
  Policy.MaxBytes = FullSize / 2;
  Store->setEvictionPolicy(Policy);
  ASSERT_TRUE(Store->compact());
  EXPECT_LT(Store->size(), Keys.size());
  EXPECT_GT(Store->size(), 0u);
  EXPECT_GT(Store->stats().EvictedSize, 0u);
  EXPECT_LE(std::filesystem::file_size(Dir.log()), Policy.MaxBytes);
  // The recently-used records survived the cut.
  EXPECT_TRUE(Store->lookup(Keys[3], R));
  EXPECT_TRUE(Store->lookup(Keys[17], R));
  // Eviction is a cache shrink, not data damage: a fresh handle loads the
  // survivors cleanly.
  auto Reopened = openStore(Dir.Path);
  EXPECT_FALSE(Reopened->stats().Degraded);
  EXPECT_EQ(Reopened->size(), Store->size());
}

TEST(PersistTest, InMemoryCompactionAppliesPolicy) {
  auto Store = QueryStore::createInMemory("mini");
  TermContext C;
  for (const std::string &K : makeKeys(C, 10))
    Store->append(K, unsatResult());
  EvictionPolicy Policy;
  Policy.MaxBytes = 1; // evict (almost) everything
  Store->setEvictionPolicy(Policy);
  ASSERT_TRUE(Store->compact());
  EXPECT_EQ(Store->size(), 0u);
  EXPECT_GT(Store->stats().EvictedSize, 0u);
}

TEST(PersistTest, FsckReportsCleanStoreAndProfile) {
  TempDir Dir;
  TermContext C;
  auto Store = openStore(Dir.Path);
  for (const std::string &K : makeKeys(C, 8))
    Store->append(K, satResult(1));
  FsckReport Report;
  ASSERT_TRUE(QueryStore::fsck(Dir.Path, "mini", false, Report));
  EXPECT_TRUE(Report.clean());
  EXPECT_TRUE(Report.HeaderOk);
  EXPECT_EQ(Report.Profile, "mini");
  EXPECT_EQ(Report.GoodRecords, 8u);
  EXPECT_EQ(Report.BadBytes, 0u);
  EXPECT_EQ(Report.UndecodableKeys, 0u);
  // An empty expected profile accepts (and reports) whatever is there.
  FsckReport AnyProfile;
  ASSERT_TRUE(QueryStore::fsck(Dir.Path, "", false, AnyProfile));
  EXPECT_TRUE(AnyProfile.HeaderOk);
  EXPECT_EQ(AnyProfile.Profile, "mini");
}

TEST(PersistTest, FsckFlagsCorruptionAndDropBadRepairs) {
  TempDir Dir;
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 8);
  std::vector<uintmax_t> Offsets;
  {
    auto Store = openStore(Dir.Path);
    for (const std::string &K : Keys) {
      Store->append(K, satResult(3));
      Offsets.push_back(std::filesystem::file_size(Dir.log()));
    }
  }
  // Corrupt record 6's payload.
  {
    std::fstream F(Dir.log(),
                   std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(static_cast<std::streamoff>(Offsets[4] + 16));
    F.put('\x5a');
  }
  FsckReport Report;
  ASSERT_TRUE(QueryStore::fsck(Dir.Path, "mini", false, Report));
  EXPECT_FALSE(Report.clean());
  EXPECT_EQ(Report.GoodRecords, 5u);
  EXPECT_GT(Report.BadBytes, 0u);

  // Repair: the rewritten log keeps exactly the valid prefix records.
  FsckReport Repair;
  ASSERT_TRUE(QueryStore::fsck(Dir.Path, "mini", true, Repair));
  EXPECT_TRUE(Repair.Rewritten);
  FsckReport After;
  ASSERT_TRUE(QueryStore::fsck(Dir.Path, "mini", false, After));
  EXPECT_TRUE(After.clean());
  EXPECT_EQ(After.GoodRecords, 5u);
  auto Store = openStore(Dir.Path);
  EXPECT_FALSE(Store->stats().Degraded);
  EXPECT_EQ(Store->size(), 5u);
  CheckResult R;
  EXPECT_TRUE(Store->lookup(Keys[4], R));
  EXPECT_FALSE(Store->lookup(Keys[6], R));
}

TEST(PersistTest, FsckRefusesToRepairAHealthyForeignProfileStore) {
  TempDir Dir;
  TermContext C;
  std::vector<std::string> Keys = makeKeys(C, 5);
  {
    auto Store = openStore(Dir.Path, false, "mini");
    for (const std::string &K : Keys)
      Store->append(K, unsatResult());
  }
  // Scanning with the wrong expectation flags a mismatch, not corruption…
  FsckReport Report;
  ASSERT_TRUE(QueryStore::fsck(Dir.Path, "z3", false, Report));
  EXPECT_TRUE(Report.HeaderOk);
  EXPECT_TRUE(Report.ProfileMismatch);
  EXPECT_FALSE(Report.clean());
  EXPECT_EQ(Report.GoodRecords, Keys.size());
  EXPECT_EQ(Report.BadBytes, 0u);
  // …and --drop-bad refuses to erase the healthy foreign store.
  FsckReport Repair;
  std::string Error;
  EXPECT_FALSE(QueryStore::fsck(Dir.Path, "z3", true, Repair, &Error));
  EXPECT_NE(Error.find("mismatch"), std::string::npos);
  auto Intact = openStore(Dir.Path, /*ReadOnly=*/true, "mini");
  EXPECT_EQ(Intact->size(), Keys.size());
  EXPECT_FALSE(Intact->stats().Degraded);
}

TEST(PersistTest, FsckRejectsForeignHeaderWithoutTouchingIt) {
  TempDir Dir;
  {
    std::ofstream F(Dir.log(), std::ios::binary);
    F << "garbage that is definitely not a query log";
  }
  FsckReport Report;
  ASSERT_TRUE(QueryStore::fsck(Dir.Path, "mini", false, Report));
  EXPECT_FALSE(Report.HeaderOk);
  EXPECT_FALSE(Report.clean());
  EXPECT_GT(Report.BadBytes, 0u);
}

//===----------------------------------------------------------------------===//
// Pre-refactor golden fixtures
//===----------------------------------------------------------------------===//
//
// Captured from the single-mutex interner the day before TermContext went
// sharded: canonical blobs (with their structural hashes) for a corpus of
// representative terms, plus a complete queries.log written by the old
// code. These pin the compatibility contract — canonical bytes and
// structural hashes are pure functions of term *structure*, so no interner
// implementation detail (sharding, id gaps, table generations, arena
// layout) may ever leak into them. If one of these fails, data written by
// released builds has silently become unreadable.

/// Decodes a lowercase hex string into raw bytes.
std::string fromHex(const std::string &Hex) {
  EXPECT_EQ(Hex.size() % 2, 0u);
  std::string Out;
  Out.reserve(Hex.size() / 2);
  auto Nibble = [](char C) -> unsigned {
    return C <= '9' ? C - '0' : C - 'a' + 10;
  };
  for (size_t I = 0; I + 1 < Hex.size(); I += 2)
    Out.push_back(static_cast<char>((Nibble(Hex[I]) << 4) | Nibble(Hex[I + 1])));
  return Out;
}

struct GoldenBlob {
  const char *Label;
  const char *Hex;      ///< encodeTermKey bytes from the pre-refactor build
  uint64_t StructHash;  ///< Term::structuralHash from the same build
};

const GoldenBlob GoldenBlobs[] = {
    {"var_int",
     "01020000017800",
     0xb8599b4fa12b089bULL},
    {"const_42",
     "010000540000",
     0x7c76ebe8832070d4ULL},
    {"const_neg",
     "0100000d0000",
     0xf0774c3201b45aefULL},
    {"bool_true",
     "010101020000",
     0x8af3aeacf25ab456ULL},
    {"sum",
     "0402000001780002000001790000000600000300000003000102",
     0xa7bc03485db8807bULL},
    {"scaled",
     "0300000a000002000001780004000000020001",
     0x239570101c24bf53ULL},
    {"ite",
     "0402010004666c6167000200000178000200000179000500000003000102",
     0x0833740ab4712939ULL},
    {"select_store",
     "080200000178000000020000030000000200010801000002000202000001"
     "790002020005736c6f747300060000000205020500000003030406",
     0xdc8bb9159cebbcbaULL},
    {"atom_eq",
     "0500000e0000020000017800020000017900030000000201020801000002"
     "0003",
     0xc121eaf6f8774dffULL},
    {"atom_le",
     "03020000017800000014000009010000020001",
     0x1a596c3bd4f9433dULL},
    {"divides",
     "04020000017800020000017900030000000200010b0106000102",
     0x08910c18bd750b8aULL},
    {"conj",
     "0a0200000178000000140000090100000200010000000000090100000203"
     "0002010004666c6167000c01000001050200000179000b01040001070d01"
     "00000402040608",
     0xe4d0133b36db200cULL},
    {"disj",
     "0802010004666c6167000200000178000200000179000a01000002010200"
     "00c8010000090100000202040c01000001050e01000003000306",
     0xf61907332896509bULL},
    {"nested_vc",
     "120200000178000000010000020000017900040000000201020300000002"
     "00030b010800010400000400000400000002060203000000020007000080"
     "01000009010000020809000000000009010000020b0002010004666c6167"
     "000c010000010d0d010000020c0e0c010000010f0e01000003050a10",
     0xcb964856d82f05bbULL},
};

/// A complete 3-record queries.log (profile "mini") written by the
/// pre-refactor QueryStore: keys are the conj / disj / nested_vc blobs
/// above with answers Unsat / Sat / Unsat.
const char *GoldenStoreLogHex =
    "585052535152595302000000046d696e694c0000005309bec27b3108b443"
    "0a0200000178000000140000090100000200010000000000090100000203"
    "0002010004666c6167000c01000001050200000179000b01040001070d01"
    "00000402040608010098c7b4a70d0041000000e15e43966ed848cf380802"
    "010004666c6167000200000178000200000179000a0100000201020000c8"
    "010000090100000202040c01000001050e01000003000306000098c7b4a7"
    "0d007f000000d4e0c3605f0a7eef76120200000178000000010000020000"
    "01790004000000020102030000000200030b010800010400000400000400"
    "000002060203000000020007000080010000090100000208090000000000"
    "09010000020b0002010004666c6167000c010000010d0d010000020c0e0c"
    "010000010f0e01000003050a10010098c7b4a70d00";

// Every golden blob must decode through today's TermReader, re-intern to a
// term whose structural hash equals the recorded pre-refactor value, and
// re-encode to the exact original bytes.
TEST(PersistTest, GoldenBlobsFromPreShardingInternerStillRoundTrip) {
  TermContext C;
  for (const GoldenBlob &G : GoldenBlobs) {
    std::string Bytes = fromHex(G.Hex);
    ByteReader R(reinterpret_cast<const uint8_t *>(Bytes.data()),
                 Bytes.size());
    TermReader TR(C, R);
    const Term *T = TR.read();
    ASSERT_NE(T, nullptr) << "golden blob failed to decode: " << G.Label;
    EXPECT_EQ(T->structuralHash(), G.StructHash)
        << "structural hash drifted for " << G.Label << ": " << T->str();
    EXPECT_EQ(encodeTermKey(T), Bytes)
        << "canonical bytes drifted for " << G.Label << ": " << T->str();
  }
}

// The golden store log must open cleanly under the current code with every
// record intact and answers preserved — and its keys must equal what
// today's interner encodes for the same structures, proving key lookups
// from pre-refactor stores still hit.
TEST(PersistTest, GoldenStoreLogFromPreShardingInternerStillReads) {
  TempDir Dir;
  std::string Log = fromHex(GoldenStoreLogHex);
  {
    std::ofstream F(Dir.log(), std::ios::binary);
    F.write(Log.data(), static_cast<std::streamsize>(Log.size()));
  }
  auto Store = openStore(Dir.Path, /*ReadOnly=*/true, "mini");
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(Store->size(), 3u);
  EXPECT_FALSE(Store->stats().Degraded);

  const Answer Expected[] = {Answer::Unsat, Answer::Sat, Answer::Unsat};
  const char *Labels[] = {"conj", "disj", "nested_vc"};
  for (int I = 0; I < 3; ++I) {
    const GoldenBlob *G = nullptr;
    for (const GoldenBlob &B : GoldenBlobs)
      if (std::string(B.Label) == Labels[I])
        G = &B;
    ASSERT_NE(G, nullptr);
    CheckResult R;
    ASSERT_TRUE(Store->lookup(fromHex(G->Hex), R))
        << "pre-refactor record not found for " << Labels[I];
    EXPECT_EQ(R.TheAnswer, Expected[I]);
  }

  // The same structures decoded and re-keyed through the current interner
  // produce the very keys the old store holds (lookup-compatibility both
  // ways).
  TermContext C;
  for (const char *L : Labels) {
    for (const GoldenBlob &B : GoldenBlobs)
      if (std::string(B.Label) == L) {
        std::string Bytes = fromHex(B.Hex);
        ByteReader R(reinterpret_cast<const uint8_t *>(Bytes.data()),
                     Bytes.size());
        TermReader TR(C, R);
        const Term *T = TR.read();
        ASSERT_NE(T, nullptr);
        CheckResult Res;
        EXPECT_TRUE(Store->lookup(encodeTermKey(T), Res))
            << "freshly-encoded key missed the pre-refactor store: " << L;
      }
  }
}

} // namespace
