//===- tests/IncrementalPropertyTest.cpp - Session API property tests ---------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Randomized differential validation of the incremental session API
// (push/pop/assertTerm/checkSatAssuming/checkSatBatch): generated scripts
// drive a session backend while the test mirrors the assertion stack, and
// every check's answer is compared against a *fresh one-shot* solve of the
// accumulated assertion set — the definition of session correctness. Runs
// on MiniSmt (assertion-stack snapshots) always, on Z3 (native push/pop,
// assumption literals, unsat cores) when the build has it, and through the
// cross-checking backend. Seeded and fully reproducible.
//
//===----------------------------------------------------------------------===//

#include "solver/SmtSolver.h"

#include "tests/TestUtil.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace expresso;
using namespace expresso::logic;
using namespace expresso::solver;

namespace {

/// One-shot reference answer for "the asserted stack plus these assumptions"
/// on a fresh backend of the same kind.
Answer oneShotReference(TermContext &C, SolverKind Kind,
                        const std::vector<const Term *> &Stack,
                        const std::vector<const Term *> &Assumptions) {
  std::vector<const Term *> All(Stack.begin(), Stack.end());
  All.insert(All.end(), Assumptions.begin(), Assumptions.end());
  const Term *F = All.empty() ? C.getTrue() : C.and_(All);
  std::unique_ptr<SmtSolver> Fresh = createSolver(Kind, C);
  return Fresh->checkSat(F).TheAnswer;
}

/// Drives \p NumScripts random push/pop/assert/check scripts against one
/// session backend, cross-checking every answer. The shadow stack the test
/// maintains is the spec: a backend whose internal bookkeeping drifts from
/// it (bad pop, lost assertion, leaked scope) produces a wrong answer on
/// some later check with high probability.
void runScripts(SolverKind Kind, unsigned NumScripts, uint64_t Seed) {
  TermContext C;
  Rng R(Seed);
  testutil::FormulaGen Gen(C, R);
  std::unique_ptr<SmtSolver> S = createSolver(Kind, C);
  ASSERT_NE(S, nullptr);
  ASSERT_TRUE(S->supportsIncremental());

  unsigned ChecksDone = 0;
  for (unsigned Script = 0; Script < NumScripts; ++Script) {
    // Shadow assertion stack: one vector of terms per open scope.
    std::vector<std::vector<const Term *>> Scopes(1);
    auto flat = [&] {
      std::vector<const Term *> All;
      for (const auto &Scope : Scopes)
        All.insert(All.end(), Scope.begin(), Scope.end());
      return All;
    };

    unsigned Steps = 3 + static_cast<unsigned>(R.below(10));
    for (unsigned Step = 0; Step < Steps; ++Step) {
      switch (R.below(5)) {
      case 0: // push
        if (Scopes.size() < 5) {
          ASSERT_TRUE(S->push());
          Scopes.emplace_back();
        }
        break;
      case 1: // pop
        if (Scopes.size() > 1) {
          ASSERT_TRUE(S->pop());
          Scopes.pop_back();
        } else {
          // Popping with no open scope must refuse and change nothing.
          EXPECT_FALSE(S->pop());
        }
        break;
      case 2: { // assert
        const Term *F = Gen.randomFormula(2);
        ASSERT_TRUE(S->assertTerm(F));
        Scopes.back().push_back(F);
        break;
      }
      case 3: { // checkSatAssuming with 0-2 assumptions
        std::vector<const Term *> As;
        for (uint64_t K = R.below(3); K > 0; --K)
          As.push_back(Gen.randomFormula(2));
        Answer Got = S->checkSatAssuming(As).TheAnswer;
        Answer Want = oneShotReference(C, Kind, flat(), As);
        if (Got != Answer::Unknown && Want != Answer::Unknown)
          ASSERT_EQ(Got, Want)
              << "script " << Script << " step " << Step << " (seed " << Seed
              << ")";
        ++ChecksDone;
        break;
      }
      default: { // checkSatBatch with 1-4 formulas, decided independently
        std::vector<const Term *> Fs;
        for (uint64_t K = 1 + R.below(4); K > 0; --K)
          Fs.push_back(Gen.randomFormula(2));
        std::vector<CheckResult> Got = S->checkSatBatch(Fs);
        ASSERT_EQ(Got.size(), Fs.size());
        for (size_t I = 0; I < Fs.size(); ++I) {
          Answer Want = oneShotReference(C, Kind, flat(), {Fs[I]});
          if (Got[I].TheAnswer != Answer::Unknown && Want != Answer::Unknown)
            ASSERT_EQ(Got[I].TheAnswer, Want)
                << "script " << Script << " step " << Step << " batch index "
                << I << " (seed " << Seed << ")";
          ++ChecksDone;
        }
        break;
      }
      }
    }
    // Unwind so the next script starts from a clean stack.
    while (Scopes.size() > 1) {
      ASSERT_TRUE(S->pop());
      Scopes.pop_back();
    }
    // The base scope's assertions persist for the backend's lifetime in a
    // real session; scripts here want independence, so keep the base scope
    // empty by asserting only inside pushed scopes... except we did assert
    // at depth 0. Recreate the backend instead — cheap, and it also
    // exercises many session lifetimes.
    if (!Scopes.front().empty())
      S = createSolver(Kind, C);
  }
  // The scripts must actually have exercised the API.
  EXPECT_GE(ChecksDone, NumScripts);
}

TEST(IncrementalPropertyTest, MiniSnapshotSessions500Scripts) {
  runScripts(SolverKind::Mini, 500, 0xC0FFEE);
}

TEST(IncrementalPropertyTest, Z3NativeSessions250Scripts) {
  if (!hasZ3())
    GTEST_SKIP() << "Z3 backend not built";
  runScripts(SolverKind::Z3, 250, 0xBADC0DE);
}

TEST(IncrementalPropertyTest, CrossCheckSessions100Scripts) {
  // Without Z3 the crosscheck factory degrades to plain MiniSmt; the run is
  // still valid, just not differential.
  runScripts(SolverKind::CrossCheck, 100, 0xFEEDFACE);
}

//===----------------------------------------------------------------------===//
// Directed session edge cases
//===----------------------------------------------------------------------===//

class SessionEdgeTest : public ::testing::TestWithParam<SolverKind> {};

TEST_P(SessionEdgeTest, PopWithoutPushRefuses) {
  TermContext C;
  std::unique_ptr<SmtSolver> S = createSolver(GetParam(), C);
  ASSERT_NE(S, nullptr);
  EXPECT_FALSE(S->pop());
  // The refusal must not corrupt the session.
  EXPECT_TRUE(S->push());
  EXPECT_TRUE(S->assertTerm(C.getFalse()));
  EXPECT_EQ(S->checkSatAssuming({}).TheAnswer, Answer::Unsat);
  EXPECT_TRUE(S->pop());
  EXPECT_EQ(S->checkSatAssuming({}).TheAnswer, Answer::Sat);
}

TEST_P(SessionEdgeTest, AssertionsScopeWithPushPop) {
  TermContext C;
  std::unique_ptr<SmtSolver> S = createSolver(GetParam(), C);
  ASSERT_NE(S, nullptr);
  const Term *X = C.var("x", Sort::Int);
  ASSERT_TRUE(S->assertTerm(C.ge(X, C.intConst(5))));
  EXPECT_EQ(S->checkSatAssuming({}).TheAnswer, Answer::Sat);
  ASSERT_TRUE(S->push());
  ASSERT_TRUE(S->assertTerm(C.le(X, C.intConst(3))));
  EXPECT_EQ(S->checkSatAssuming({}).TheAnswer, Answer::Unsat);
  ASSERT_TRUE(S->pop());
  // The contradiction must be gone, the base assertion must remain.
  EXPECT_EQ(S->checkSatAssuming({}).TheAnswer, Answer::Sat);
  EXPECT_EQ(S->checkSatAssuming({C.le(X, C.intConst(4))}).TheAnswer,
            Answer::Unsat);
}

TEST_P(SessionEdgeTest, BatchDecidesFormulasIndependently) {
  TermContext C;
  std::unique_ptr<SmtSolver> S = createSolver(GetParam(), C);
  ASSERT_NE(S, nullptr);
  const Term *X = C.var("x", Sort::Int);
  ASSERT_TRUE(S->assertTerm(C.ge(X, C.getZero()))); // prefix: x >= 0
  // Mixed batch relative to the prefix: sat, unsat, sat, unsat.
  std::vector<const Term *> Fs = {
      C.le(X, C.intConst(10)),          // sat
      C.lt(X, C.getZero()),             // unsat under prefix
      C.eq(X, C.intConst(3)),           // sat
      C.and_(C.le(X, C.intConst(1)), C.ge(X, C.intConst(2)))}; // unsat
  std::vector<CheckResult> Rs = S->checkSatBatch(Fs);
  ASSERT_EQ(Rs.size(), 4u);
  EXPECT_EQ(Rs[0].TheAnswer, Answer::Sat);
  EXPECT_EQ(Rs[1].TheAnswer, Answer::Unsat);
  EXPECT_EQ(Rs[2].TheAnswer, Answer::Sat);
  EXPECT_EQ(Rs[3].TheAnswer, Answer::Unsat);
}

TEST_P(SessionEdgeTest, BatchAllUnsatViaContradictoryPrefix) {
  TermContext C;
  std::unique_ptr<SmtSolver> S = createSolver(GetParam(), C);
  ASSERT_NE(S, nullptr);
  ASSERT_TRUE(S->assertTerm(C.getFalse()));
  std::vector<const Term *> Fs = {C.getTrue(), C.getTrue()};
  for (const CheckResult &R : S->checkSatBatch(Fs))
    EXPECT_EQ(R.TheAnswer, Answer::Unsat);
}

TEST_P(SessionEdgeTest, EmptyBatchAndEmptyAssumptions) {
  TermContext C;
  std::unique_ptr<SmtSolver> S = createSolver(GetParam(), C);
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->checkSatBatch({}).empty());
  EXPECT_EQ(S->checkSatAssuming({}).TheAnswer, Answer::Sat); // empty stack
}

std::vector<SolverKind> sessionKinds() {
  std::vector<SolverKind> Kinds = {SolverKind::Mini, SolverKind::CrossCheck};
  if (hasZ3())
    Kinds.push_back(SolverKind::Z3);
  return Kinds;
}

std::string kindName(const ::testing::TestParamInfo<SolverKind> &Info) {
  switch (Info.param) {
  case SolverKind::Mini:
    return "Mini";
  case SolverKind::Z3:
    return "Z3";
  case SolverKind::CrossCheck:
    return "CrossCheck";
  case SolverKind::Default:
    break;
  }
  return "Default";
}

INSTANTIATE_TEST_SUITE_P(Backends, SessionEdgeTest,
                         ::testing::ValuesIn(sessionKinds()), kindName);

//===----------------------------------------------------------------------===//
// Fail-closed defaults
//===----------------------------------------------------------------------===//

TEST(SessionFailClosedTest, BaseClassRefusesEverything) {
  // A backend that never opted into sessions must fail closed through the
  // base-class defaults.
  class Plain : public SmtSolver {
  public:
    explicit Plain(TermContext &C) : SmtSolver(C) {}
    CheckResult checkSat(const Term *) override {
      CheckResult R;
      R.TheAnswer = Answer::Sat;
      return R;
    }
    std::string name() const override { return "plain"; }
  };
  TermContext C;
  Plain P(C);
  EXPECT_FALSE(P.supportsIncremental());
  EXPECT_FALSE(P.nativeIncremental());
  EXPECT_FALSE(P.push());
  EXPECT_FALSE(P.pop());
  EXPECT_FALSE(P.assertTerm(C.getTrue()));
  EXPECT_EQ(P.checkSatAssuming({C.getTrue()}).TheAnswer, Answer::Unknown);
  std::vector<CheckResult> Rs = P.checkSatBatch({C.getTrue(), C.getFalse()});
  ASSERT_EQ(Rs.size(), 2u);
  for (const CheckResult &R : Rs)
    EXPECT_EQ(R.TheAnswer, Answer::Unknown);
}

} // namespace
