//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random-formula generation and brute-force model enumeration used by the
/// differential and property test suites.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_TESTS_TESTUTIL_H
#define EXPRESSO_TESTS_TESTUTIL_H

#include "logic/Term.h"
#include "logic/TermOps.h"
#include "support/Rng.h"

#include <optional>
#include <string>
#include <vector>

namespace expresso {
namespace testutil {

/// Generates random boolean formulas over a fixed set of integer and boolean
/// variables, with small constants so brute force stays cheap.
class FormulaGen {
public:
  FormulaGen(logic::TermContext &C, Rng &R) : C(C), R(R) {
    IntVars = {C.var("x", logic::Sort::Int), C.var("y", logic::Sort::Int),
               C.var("z", logic::Sort::Int)};
    BoolVars = {C.var("p", logic::Sort::Bool), C.var("q", logic::Sort::Bool)};
  }

  const std::vector<const logic::Term *> &intVars() const { return IntVars; }
  const std::vector<const logic::Term *> &boolVars() const { return BoolVars; }

  const logic::Term *randomIntTerm(int Depth) {
    if (Depth <= 0 || R.chance(2, 5)) {
      if (R.chance(1, 3))
        return C.intConst(R.range(-4, 4));
      return IntVars[R.below(IntVars.size())];
    }
    switch (R.below(3)) {
    case 0:
      return C.add(randomIntTerm(Depth - 1), randomIntTerm(Depth - 1));
    case 1:
      return C.sub(randomIntTerm(Depth - 1), randomIntTerm(Depth - 1));
    default:
      return C.mulConst(R.range(-3, 3), randomIntTerm(Depth - 1));
    }
  }

  const logic::Term *randomFormula(int Depth) {
    if (Depth <= 0 || R.chance(1, 4)) {
      switch (R.below(5)) {
      case 0:
        return C.le(randomIntTerm(1), randomIntTerm(1));
      case 1:
        return C.lt(randomIntTerm(1), randomIntTerm(1));
      case 2:
        return C.eq(randomIntTerm(1), randomIntTerm(1));
      case 3:
        return BoolVars[R.below(BoolVars.size())];
      default:
        return C.divides(static_cast<int64_t>(R.range(2, 4)),
                         randomIntTerm(1));
      }
    }
    switch (R.below(5)) {
    case 0:
      return C.and_(randomFormula(Depth - 1), randomFormula(Depth - 1));
    case 1:
      return C.or_(randomFormula(Depth - 1), randomFormula(Depth - 1));
    case 2:
      return C.not_(randomFormula(Depth - 1));
    case 3:
      return C.implies(randomFormula(Depth - 1), randomFormula(Depth - 1));
    default:
      return C.iff(randomFormula(Depth - 1), randomFormula(Depth - 1));
    }
  }

private:
  logic::TermContext &C;
  Rng &R;
  std::vector<const logic::Term *> IntVars;
  std::vector<const logic::Term *> BoolVars;
};

/// Exhaustively searches integer values in [-Bound, Bound] (and both truth
/// values for booleans) for a model of \p F over exactly the given
/// variables. Complete for formulas whose satisfying models (if any) fit in
/// the box; the generators above keep constants small to make that likely.
inline std::optional<logic::Assignment>
bruteForceModel(const logic::Term *F,
                const std::vector<const logic::Term *> &Ints,
                const std::vector<const logic::Term *> &Bools, int64_t Bound) {
  std::vector<int64_t> IntVals(Ints.size(), -Bound);
  std::vector<int> BoolVals(Bools.size(), 0);
  for (;;) {
    logic::Assignment Asg;
    for (size_t I = 0; I < Ints.size(); ++I)
      Asg[Ints[I]->varName()] = logic::Value::ofInt(IntVals[I]);
    for (size_t I = 0; I < Bools.size(); ++I)
      Asg[Bools[I]->varName()] = logic::Value::ofBool(BoolVals[I] != 0);
    if (logic::evaluateBool(F, Asg))
      return Asg;
    // Odometer increment.
    size_t K = 0;
    for (; K < Bools.size(); ++K) {
      if (BoolVals[K] == 0) {
        BoolVals[K] = 1;
        break;
      }
      BoolVals[K] = 0;
    }
    if (K < Bools.size())
      continue;
    for (K = 0; K < Ints.size(); ++K) {
      if (IntVals[K] < Bound) {
        ++IntVals[K];
        break;
      }
      IntVals[K] = -Bound;
    }
    if (K == Ints.size())
      return std::nullopt;
  }
}

} // namespace testutil
} // namespace expresso

#endif // EXPRESSO_TESTS_TESTUTIL_H
