//===- tests/PropertyTest.cpp - Random monitors, end-to-end -------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The capstone property test: generate random implicit-signal monitors,
/// run the full pipeline (sema -> invariant inference -> PlaceSignals), and
/// verify Definition 3.4 equivalence of the synthesized signal plan against
/// the source monitor on exhaustively enumerated bounded traces. This is
/// Theorem 4.1, checked empirically over a family of machines the test
/// author never saw.
///
//===----------------------------------------------------------------------===//

#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "specgen/Diff.h"
#include "specgen/SpecGen.h"
#include "support/Rng.h"
#include "trace/Semantics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

using namespace expresso;
using namespace expresso::frontend;
using namespace expresso::trace;
using logic::Assignment;
using logic::Value;

namespace {

/// On failure, dumps the offending spec as a *.repro file that
/// `expresso-diff --replay` re-checks across the whole execution-mode
/// matrix, and returns the one-liner to run. Debugging starts from the
/// reproducer, not from rerunning the gtest shard.
std::string dumpRepro(int Seed, const std::string &Source,
                      const std::string &Detail) {
  const char *Dir = std::getenv("TEST_TMPDIR");
  std::string Path = std::string(Dir ? Dir : "/tmp") + "/property-seed" +
                     std::to_string(Seed) + ".repro";
  std::string Written = specgen::writeRepro(
      Path, Source, "legacy-seed=" + std::to_string(Seed), Detail);
  if (Written.empty())
    return "(failed to write " + Path + ")";
  return "replay: expresso-diff --replay=" + Written;
}

class RandomMonitorEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomMonitorEquivalence, PlacementSatisfiesDef34) {
  // The seed derivation and the generator (specgen::legacyRandomMonitorSource
  // preserves the original in-file generator byte-for-byte) are load-bearing:
  // together they pin the exact historical monitor family this suite has
  // always covered.
  Rng R(static_cast<uint64_t>(GetParam()) * 48271 + 101);
  std::string Source = specgen::legacyRandomMonitorSource(R);

  DiagnosticEngine Diags;
  auto M = parseMonitor(Source, Diags);
  ASSERT_NE(M, nullptr) << Source << "\n"
                        << Diags.str() << "\n"
                        << dumpRepro(GetParam(), Source, "parse failure");
  logic::TermContext C;
  auto Sema = analyze(*M, C, Diags);
  ASSERT_NE(Sema, nullptr) << Source << "\n"
                           << Diags.str() << "\n"
                           << dumpRepro(GetParam(), Source, "sema failure");
  auto Solver = solver::createSolver(solver::SolverKind::Default, C);
  core::PlacementResult Placement = core::placeSignals(C, *Sema, *Solver);
  runtime::SignalPlan Plan = runtime::SignalPlan::fromPlacement(Placement);

  // Three threads, randomly assigned methods, from the constructor state.
  for (int TaskTrial = 0; TaskTrial < 2; ++TaskTrial) {
    MonitorState Initial;
    Initial.Shared = initialState(*M);

    std::vector<ThreadTask> Tasks;
    for (unsigned T = 1; T <= 3; ++T)
      Tasks.push_back(
          {T, &M->Methods[R.below(M->Methods.size())], {}});

    EquivalenceResult Res =
        checkEquivalenceBounded(*Sema, Plan, Tasks, Initial, 6);
    EXPECT_TRUE(Res.Equivalent)
        << Source << "\n"
        << Placement.summary() << "\n"
        << Res.CounterExample << "\n"
        << dumpRepro(GetParam(), Source, "Def 3.4 equivalence failure");
  }
}

INSTANTIATE_TEST_SUITE_P(Random, RandomMonitorEquivalence,
                         ::testing::Range(0, 25));

} // namespace
