//===- tests/PropertyTest.cpp - Random monitors, end-to-end -------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The capstone property test: generate random implicit-signal monitors,
/// run the full pipeline (sema -> invariant inference -> PlaceSignals), and
/// verify Definition 3.4 equivalence of the synthesized signal plan against
/// the source monitor on exhaustively enumerated bounded traces. This is
/// Theorem 4.1, checked empirically over a family of machines the test
/// author never saw.
///
//===----------------------------------------------------------------------===//

#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "support/Rng.h"
#include "trace/Semantics.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace expresso;
using namespace expresso::frontend;
using namespace expresso::trace;
using logic::Assignment;
using logic::Value;

namespace {

/// Generates a random monitor over two counters and a flag: methods are
/// guarded transfer/toggle operations, the bread and butter of real
/// synchronization code.
std::string randomMonitorSource(Rng &R) {
  std::ostringstream OS;
  OS << "monitor Gen {\n";
  // Initial-state diversity lives in the declared initializers: the
  // invariant's initiation check (and hence Theorem 4.1) is relative to
  // constructor-reachable states, so overriding σ from outside would test a
  // claim the paper does not make.
  OS << "  int a = " << R.range(0, 2) << ";\n";
  OS << "  int b = " << R.range(0, 2) << ";\n";
  OS << "  bool flag = " << (R.chance(1, 2) ? "true" : "false") << ";\n";

  const char *Guards[] = {
      "a > 0",          "b > 0",        "a >= b",
      "a + b <= 3",     "flag",         "!flag",
      "a == 0",         "b < 2",        "a > 0 && !flag",
      "b > 0 || flag",
  };
  const char *Bodies[] = {
      "a++;",
      "a--;",
      "b++;",
      "if (b > 0) b--;",
      "a = a + 1; b = b + 1;",
      "if (a > 0) { a--; b++; }",
      "flag = true;",
      "flag = false;",
      "flag = !flag; a = a + 1;",
      "if (flag) a = a + 2; else b = b + 1;",
  };

  unsigned NumMethods = 2 + static_cast<unsigned>(R.below(2));
  for (unsigned I = 0; I < NumMethods; ++I) {
    OS << "  void m" << I << "() {\n";
    if (R.chance(3, 4)) {
      OS << "    waituntil (" << Guards[R.below(std::size(Guards))] << ") { "
         << Bodies[R.below(std::size(Bodies))] << " }\n";
    } else {
      OS << "    " << Bodies[R.below(std::size(Bodies))] << "\n";
    }
    OS << "  }\n";
  }
  OS << "}\n";
  return OS.str();
}

class RandomMonitorEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomMonitorEquivalence, PlacementSatisfiesDef34) {
  Rng R(static_cast<uint64_t>(GetParam()) * 48271 + 101);
  std::string Source = randomMonitorSource(R);

  DiagnosticEngine Diags;
  auto M = parseMonitor(Source, Diags);
  ASSERT_NE(M, nullptr) << Source << "\n" << Diags.str();
  logic::TermContext C;
  auto Sema = analyze(*M, C, Diags);
  ASSERT_NE(Sema, nullptr) << Source << "\n" << Diags.str();
  auto Solver = solver::createSolver(solver::SolverKind::Default, C);
  core::PlacementResult Placement = core::placeSignals(C, *Sema, *Solver);
  runtime::SignalPlan Plan = runtime::SignalPlan::fromPlacement(Placement);

  // Three threads, randomly assigned methods, from the constructor state.
  for (int TaskTrial = 0; TaskTrial < 2; ++TaskTrial) {
    MonitorState Initial;
    Initial.Shared = initialState(*M);

    std::vector<ThreadTask> Tasks;
    for (unsigned T = 1; T <= 3; ++T)
      Tasks.push_back(
          {T, &M->Methods[R.below(M->Methods.size())], {}});

    EquivalenceResult Res =
        checkEquivalenceBounded(*Sema, Plan, Tasks, Initial, 6);
    EXPECT_TRUE(Res.Equivalent)
        << Source << "\n"
        << Placement.summary() << "\n"
        << Res.CounterExample;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, RandomMonitorEquivalence,
                         ::testing::Range(0, 25));

} // namespace
