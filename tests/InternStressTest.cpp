//===- tests/InternStressTest.cpp - Concurrent interning stress ----------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Hammers the sharded lock-free interner: N threads × M contexts driving
// intern / transferTerm concurrently, asserting the invariants the rest of
// the engine leans on — structural-hash uniqueness (equal structure ⇒ same
// pointer, distinct structure ⇒ distinct pointer), id uniqueness under
// racing publishes, and id-determinism of serial construction across runs.
// Runs under TSan in CI (ctest label "intern" rides the sanitizer leg's
// filter), where the bucket-CAS publish, table migration, and arena
// rollover protocols get their real workout.
//
//===----------------------------------------------------------------------===//

#include "logic/Term.h"
#include "logic/TermOps.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace expresso;
using namespace expresso::logic;

namespace {

/// Builds thread T's slice of a mixed hit/miss formula stream in \p C.
/// Shared shapes (drawn from a small window) collide across threads and
/// must converge on identical pointers; private shapes are thread-unique.
std::vector<const Term *> buildSlice(TermContext &C, unsigned T,
                                     unsigned OpsPerThread,
                                     const std::vector<const Term *> &Vars) {
  std::vector<const Term *> Out;
  Out.reserve(OpsPerThread);
  uint64_t State = 0x2545f4914f6cdd1dULL + T;
  auto Next = [&State]() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 16;
  };
  for (unsigned I = 0; I < OpsPerThread; ++I) {
    const Term *X = Vars[Next() % Vars.size()];
    const Term *Y = Vars[Next() % Vars.size()];
    int64_t K = (I % 2 == 0) ? static_cast<int64_t>(Next() % 64) // shared
                             : 1000 + static_cast<int64_t>(T) * OpsPerThread +
                                   I; // thread-private
    switch (Next() % 4) {
    case 0:
      Out.push_back(C.le(X, C.intConst(K)));
      break;
    case 1:
      Out.push_back(C.eq(C.add(X, Y), C.intConst(K)));
      break;
    case 2:
      Out.push_back(C.and_(C.lt(X, C.intConst(K)), C.divides(3, Y)));
      break;
    default:
      Out.push_back(C.or_(C.not_(C.le(X, Y)), C.eq(X, C.intConst(K))));
      break;
    }
  }
  return Out;
}

} // namespace

// Equal structures built concurrently from many threads must all intern to
// one pointer per structure, and every published term must carry a unique
// id and a structural hash consistent with a serial rebuild.
TEST(InternStressTest, ConcurrentInternConverges) {
  constexpr unsigned Threads = 8;
  constexpr unsigned OpsPerThread = 4000;

  TermContext C;
  std::vector<const Term *> Vars;
  for (unsigned V = 0; V < 8; ++V)
    Vars.push_back(C.var("v" + std::to_string(V), Sort::Int));

  std::vector<std::vector<const Term *>> Slices(Threads);
  std::atomic<bool> Go{false};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      Slices[T] = buildSlice(C, T, OpsPerThread, Vars);
    });
  Go.store(true, std::memory_order_release);
  for (auto &Th : Pool)
    Th.join();

  // Re-running any slice serially must return the exact same pointers: the
  // table holds one node per structure, permanently.
  for (unsigned T = 0; T < Threads; ++T) {
    std::vector<const Term *> Again = buildSlice(C, T, OpsPerThread, Vars);
    EXPECT_EQ(Again, Slices[T]) << "re-intern diverged for thread " << T;
  }

  // Structural-hash uniqueness: within the context, equal hash + equal
  // structure ⇒ same pointer. Collect the whole published population
  // reachable from the slices and check ids are unique and hashes map to
  // single pointers per structure.
  std::unordered_set<const Term *> Population;
  std::vector<const Term *> Work;
  for (auto &S : Slices)
    for (const Term *F : S)
      Work.push_back(F);
  while (!Work.empty()) {
    const Term *F = Work.back();
    Work.pop_back();
    if (!Population.insert(F).second)
      continue;
    for (const Term *Op : F->operands())
      Work.push_back(Op);
  }
  std::set<uint32_t> Ids;
  std::unordered_map<uint64_t, std::vector<const Term *>> ByHash;
  for (const Term *F : Population) {
    EXPECT_TRUE(Ids.insert(F->id()).second)
        << "duplicate id " << F->id() << " for " << F->str();
    ByHash[F->structuralHash()].push_back(F);
  }
  // Hash collisions between *distinct* structures are permitted (64-bit
  // hash), but two nodes with equal hash and equal rendering would mean the
  // dedup failed.
  for (auto &[H, Terms] : ByHash) {
    if (Terms.size() < 2)
      continue;
    std::set<std::string> Rendered;
    for (const Term *F : Terms)
      EXPECT_TRUE(Rendered.insert(F->str()).second)
          << "two published nodes for one structure: " << F->str();
  }
}

// Serial construction is bit-for-bit reproducible: two fresh contexts fed
// the same build sequence assign identical ids, hashes, and renderings.
// This is the determinism contract Σ/stats byte-parity rests on.
TEST(InternStressTest, SerialIdDeterminismAcrossRuns) {
  auto Build = [](TermContext &C) {
    std::vector<const Term *> Vars;
    for (unsigned V = 0; V < 4; ++V)
      Vars.push_back(C.var("v" + std::to_string(V), Sort::Int));
    return buildSlice(C, /*T=*/0, /*OpsPerThread=*/2000, Vars);
  };
  TermContext C1, C2;
  std::vector<const Term *> R1 = Build(C1), R2 = Build(C2);
  ASSERT_EQ(R1.size(), R2.size());
  for (size_t I = 0; I < R1.size(); ++I) {
    EXPECT_EQ(R1[I]->id(), R2[I]->id()) << "id sequence diverged at " << I;
    EXPECT_EQ(R1[I]->structuralHash(), R2[I]->structuralHash());
    EXPECT_EQ(R1[I]->str(), R2[I]->str());
  }
  EXPECT_EQ(C1.numTerms(), C2.numTerms());
}

// N threads × M contexts: every thread transfers a shared formula set into
// its own subset of contexts concurrently with other threads targeting the
// same contexts. Transfers of one structure into one context must converge
// on one pointer, with the structural hash preserved exactly.
TEST(InternStressTest, ConcurrentTransferTermAcrossContexts) {
  constexpr unsigned Threads = 8;
  constexpr unsigned Contexts = 4;

  TermContext Src;
  std::vector<const Term *> Vars;
  for (unsigned V = 0; V < 6; ++V)
    Vars.push_back(Src.var("v" + std::to_string(V), Sort::Int));
  std::vector<const Term *> Formulas =
      buildSlice(Src, /*T=*/0, /*OpsPerThread=*/800, Vars);

  std::vector<std::unique_ptr<TermContext>> Dsts;
  for (unsigned D = 0; D < Contexts; ++D)
    Dsts.push_back(std::make_unique<TermContext>());

  // Results[T][D][I]: thread T's transfer of formula I into context D.
  std::vector<std::vector<std::vector<const Term *>>> Results(
      Threads, std::vector<std::vector<const Term *>>(Contexts));
  std::atomic<bool> Go{false};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      // Stagger the visiting order per thread so every context sees
      // first-transfer races from several threads, not a warmed table.
      for (unsigned Step = 0; Step < Contexts; ++Step) {
        unsigned D = (T + Step) % Contexts;
        auto &Out = Results[T][D];
        Out.reserve(Formulas.size());
        for (const Term *F : Formulas)
          Out.push_back(transferTerm(*Dsts[D], F));
      }
    });
  Go.store(true, std::memory_order_release);
  for (auto &Th : Pool)
    Th.join();

  // All threads' transfers into one context agree pointer-for-pointer, and
  // structural hashes survive the crossing untouched.
  for (unsigned D = 0; D < Contexts; ++D) {
    // Reference: a fresh serial transfer into the same context (pure hits
    // now) — equals what every thread got.
    for (size_t I = 0; I < Formulas.size(); ++I) {
      const Term *Ref = transferTerm(*Dsts[D], Formulas[I]);
      EXPECT_EQ(Ref->structuralHash(), Formulas[I]->structuralHash())
          << "transfer changed structural hash of " << Formulas[I]->str();
      for (unsigned T = 0; T < Threads; ++T)
        EXPECT_EQ(Results[T][D][I], Ref)
            << "thread " << T << " got a different node in context " << D;
    }
  }
}

// Sustained miss pressure from many threads forces repeated table growth
// and arena-chunk rollover in one shard-heavy context; everything must
// stay unique and reachable afterwards.
TEST(InternStressTest, GrowthUnderMissPressure) {
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 6000;

  TermContext C;
  const Term *X = C.var("x", Sort::Int);
  std::atomic<bool> Go{false};
  std::vector<std::vector<const Term *>> Out(Threads);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      Out[T].reserve(PerThread);
      for (unsigned I = 0; I < PerThread; ++I) {
        int64_t K = static_cast<int64_t>(T) * PerThread + I;
        Out[T].push_back(C.le(X, C.intConst(K))); // all distinct: pure miss
      }
    });
  Go.store(true, std::memory_order_release);
  for (auto &Th : Pool)
    Th.join();

  std::unordered_set<const Term *> Distinct;
  std::set<uint32_t> Ids;
  for (auto &V : Out)
    for (const Term *F : V) {
      Distinct.insert(F);
      EXPECT_TRUE(Ids.insert(F->id()).second) << "duplicate id under growth";
    }
  EXPECT_EQ(Distinct.size(), static_cast<size_t>(Threads) * PerThread);
  // Lookups after the storm are hits on the final table generation.
  for (unsigned T = 0; T < Threads; ++T)
    for (unsigned I = 0; I < PerThread; I += 997) {
      int64_t K = static_cast<int64_t>(T) * PerThread + I;
      EXPECT_EQ(C.le(X, C.intConst(K)), Out[T][I]);
    }
}
