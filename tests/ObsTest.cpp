//===- tests/ObsTest.cpp - Observability layer tests --------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Covers the obs layer and its plumbing through the stack:
//  * the span tracer: nesting and thread attribution under an 8-thread
//    fan-out, move/finish semantics, disabled spans as pure no-ops;
//  * Chrome trace_event export: syntactically valid JSON (checked by a
//    strict little parser) with thread_name metadata and argument objects;
//  * the metrics registry: histogram bucket math, window trimming,
//    percentile parity with the daemon's historical p50/p99 computation,
//    idempotent registration, deterministic text rendering;
//  * the byte-invisibility differential: placeSignals with a tracer
//    attached produces the identical Σ, summary, IR, stats, and cache
//    counters as without, serial and with a 4-way fan-out;
//  * a live daemon: WantTrace round trip (nonzero trace id echoed, valid
//    trace payload), the structured request log (one JSON line per request
//    with the echoed id), and the MetricsRequest dump agreeing with
//    StatusResponse's latency percentiles bit for bit.
//
// Runs entirely on the MiniSmt backend (identical with and without Z3) and
// rides the TSan leg via the "obs" ctest label.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include "bench/Workloads.h"
#include "codegen/Codegen.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "service/Client.h"
#include "service/Protocol.h"
#include "service/Server.h"
#include "solver/SolverRig.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

using namespace expresso;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// A strict, minimal JSON syntax checker — enough to guarantee the trace
/// export and request-log lines load in any real parser (Perfetto, python
/// json). Accepts exactly one value and requires it to consume the whole
/// input.
class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : P(S.data()), End(P + S.size()) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return P == End;
  }

private:
  const char *P;
  const char *End;

  void skipWs() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
  bool literal(const char *L) {
    size_t N = std::strlen(L);
    if (static_cast<size_t>(End - P) < N || std::strncmp(P, L, N) != 0)
      return false;
    P += N;
    return true;
  }
  bool string() {
    if (P == End || *P != '"')
      return false;
    ++P;
    while (P != End && *P != '"') {
      if (static_cast<unsigned char>(*P) < 0x20)
        return false; // control chars must be escaped
      if (*P == '\\') {
        ++P;
        if (P == End)
          return false;
        if (*P == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++P;
            if (P == End || !std::isxdigit(static_cast<unsigned char>(*P)))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", *P)) {
          return false;
        }
      }
      ++P;
    }
    if (P == End)
      return false;
    ++P; // closing quote
    return true;
  }
  bool number() {
    const char *Start = P;
    if (P != End && *P == '-')
      ++P;
    while (P != End && std::isdigit(static_cast<unsigned char>(*P)))
      ++P;
    if (P == Start || (*Start == '-' && P == Start + 1))
      return false;
    if (P != End && *P == '.') {
      ++P;
      if (P == End || !std::isdigit(static_cast<unsigned char>(*P)))
        return false;
      while (P != End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    }
    if (P != End && (*P == 'e' || *P == 'E')) {
      ++P;
      if (P != End && (*P == '+' || *P == '-'))
        ++P;
      if (P == End || !std::isdigit(static_cast<unsigned char>(*P)))
        return false;
      while (P != End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    }
    return true;
  }
  bool value() {
    skipWs();
    if (P == End)
      return false;
    switch (*P) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
  bool object() {
    ++P; // '{'
    skipWs();
    if (P != End && *P == '}') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (P == End || *P != ':')
        return false;
      ++P;
      if (!value())
        return false;
      skipWs();
      if (P == End)
        return false;
      if (*P == '}') {
        ++P;
        return true;
      }
      if (*P != ',')
        return false;
      ++P;
    }
  }
  bool array() {
    ++P; // '['
    skipWs();
    if (P != End && *P == ']') {
      ++P;
      return true;
    }
    for (;;) {
      if (!value())
        return false;
      skipWs();
      if (P == End)
        return false;
      if (*P == ']') {
        ++P;
        return true;
      }
      if (*P != ',')
        return false;
      ++P;
    }
  }
};

bool isValidJson(const std::string &S) { return JsonChecker(S).valid(); }

/// A private temp directory (for sockets and log files).
struct TempDir {
  std::string Path;
  TempDir() {
    std::string Tmpl =
        (std::filesystem::temp_directory_path() / "expresso-obs-XXXXXX")
            .string();
    char *D = ::mkdtemp(Tmpl.data());
    EXPECT_NE(D, nullptr);
    Path = D ? std::string(D) : std::string();
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string sock(const char *Name = "d.sock") const {
    return Path + "/" + Name;
  }
};

/// One full pipeline run on the mini backend with an optional tracer
/// attached — every observable byte of the result, for the differential.
struct PipelineRun {
  std::string Sigma;
  std::string Summary;
  std::string Ir;
  size_t HoareChecks = 0;
  size_t PairsConsidered = 0;
  size_t SolverQueries = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t DiskHits = 0;
  uint64_t DiskMisses = 0;
};

PipelineRun runPipeline(const std::string &BenchName, unsigned Jobs,
                        obs::Tracer *Trace) {
  const bench::BenchmarkDef *Def = bench::findBenchmark(BenchName);
  EXPECT_NE(Def, nullptr);
  logic::TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def->Source, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  auto Sema = frontend::analyze(*M, C, Diags);
  EXPECT_NE(Sema, nullptr) << Diags.str();
  solver::SolverRig Rig = solver::buildSolverRig(C, solver::SolverKind::Mini,
                                                 /*CacheQueries=*/true,
                                                 nullptr);
  core::PlacementOptions Opts;
  Opts.WorkerSolvers = solver::SolverFactory(solver::SolverKind::Mini);
  Opts.Jobs = Jobs;
  Opts.Trace = Trace;
  core::PlacementResult P = core::placeSignals(C, *Sema, Rig.solver(), Opts);
  EXPECT_FALSE(P.Cancelled);
  PipelineRun R;
  R.Sigma = P.decisionSummary();
  R.Summary = P.summary();
  R.Ir = codegen::printTargetIr(P);
  R.HoareChecks = P.Stats.HoareChecks;
  R.PairsConsidered = P.Stats.PairsConsidered;
  R.SolverQueries = P.Stats.SolverQueries;
  R.CacheHits = P.Stats.Cache.Hits;
  R.CacheMisses = P.Stats.Cache.Misses;
  R.DiskHits = P.Stats.Cache.DiskHits;
  R.DiskMisses = P.Stats.Cache.DiskMisses;
  return R;
}

//===----------------------------------------------------------------------===//
// Span tracer
//===----------------------------------------------------------------------===//

TEST(ObsTest, SpanNestingAndThreadAttributionUnderFanOut) {
  obs::Tracer T;
  constexpr unsigned Workers = 8;
  constexpr int PerWorker = 25;
  {
    obs::Span Outer(&T, "outer");
    Outer.arg("phase", "fanout");
    std::vector<std::thread> Threads;
    for (unsigned I = 0; I < Workers; ++I)
      Threads.emplace_back([&T, I] {
        for (int J = 0; J < PerWorker; ++J) {
          obs::Span S(&T, "work");
          S.arg("worker", static_cast<uint64_t>(I));
        }
      });
    for (std::thread &Th : Threads)
      Th.join();
  }
  ASSERT_EQ(T.spanCount(), 1u + Workers * PerWorker);

  std::vector<obs::SpanRecord> Spans = T.snapshot();
  ASSERT_EQ(Spans.size(), 1u + Workers * PerWorker);

  // snapshot() orders by (thread index, start time).
  for (size_t I = 1; I < Spans.size(); ++I) {
    if (Spans[I - 1].Tid == Spans[I].Tid)
      EXPECT_LE(Spans[I - 1].StartNs, Spans[I].StartNs);
    else
      EXPECT_LT(Spans[I - 1].Tid, Spans[I].Tid);
  }

  // Every worker thread got its own lane; the outer span sits on a ninth.
  std::set<uint32_t> WorkTids;
  const obs::SpanRecord *Outer = nullptr;
  for (const obs::SpanRecord &S : Spans) {
    if (std::strcmp(S.Name, "work") == 0)
      WorkTids.insert(S.Tid);
    else if (std::strcmp(S.Name, "outer") == 0)
      Outer = &S;
  }
  EXPECT_EQ(WorkTids.size(), Workers);
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(WorkTids.count(Outer->Tid), 0u);
  EXPECT_EQ(Outer->Args, "\"phase\":\"fanout\"");

  // Nesting: the outer span (finished after the join) encloses every inner
  // span on the shared steady clock.
  for (const obs::SpanRecord &S : Spans) {
    if (S.Name == std::string("work")) {
      EXPECT_GE(S.StartNs, Outer->StartNs);
      EXPECT_LE(S.StartNs + S.DurNs, Outer->StartNs + Outer->DurNs);
    }
  }
}

TEST(ObsTest, DisabledAndMovedSpansRecordExactlyOnce) {
  // A disabled span is a pure no-op through every member.
  obs::Span Off;
  EXPECT_FALSE(Off.enabled());
  Off.arg("k", "v");
  Off.finish();
  obs::Span Null(nullptr, "x");
  EXPECT_FALSE(Null.enabled());

  obs::Tracer T;
  {
    obs::Span A(&T, "moved");
    obs::Span B = std::move(A);
    EXPECT_FALSE(A.enabled());
    EXPECT_TRUE(B.enabled());
    A.finish(); // no-op: ownership moved
  }
  EXPECT_EQ(T.spanCount(), 1u);

  {
    obs::Span C(&T, "finished");
    C.finish();
    C.finish(); // idempotent
    EXPECT_FALSE(C.enabled());
  } // destructor must not record again
  EXPECT_EQ(T.spanCount(), 2u);
}

TEST(ObsTest, ChromeExportIsValidTraceEventJson) {
  obs::Tracer T;
  {
    obs::Span S(&T, "parse");
    S.arg("file", "a \"quoted\"\nname\twith\\escapes");
    S.arg("bytes", static_cast<uint64_t>(123));
  }
  std::thread W([&T] {
    obs::Span S(&T, "solver.query");
    S.arg("tier", std::string("memo"));
  });
  W.join();

  std::string J = T.exportChromeJson();
  EXPECT_TRUE(isValidJson(J)) << J;
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(J.find("thread_name"), std::string::npos);
  EXPECT_NE(J.find("\"main-0\""), std::string::npos);
  EXPECT_NE(J.find("\"worker-1\""), std::string::npos);
  EXPECT_NE(J.find("\"solver.query\""), std::string::npos);
  EXPECT_NE(J.find("\"tier\":\"memo\""), std::string::npos);
  EXPECT_NE(J.find("\"bytes\":123"), std::string::npos);

  // An empty tracer still exports a loadable document.
  obs::Tracer Empty;
  EXPECT_TRUE(isValidJson(Empty.exportChromeJson()));
  EXPECT_EQ(Empty.exportChromeJson(), "{\"traceEvents\":[]}");
}

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

TEST(ObsTest, HistogramBucketMathAndWindowTrim) {
  obs::Histogram H({0.1, 1.0, 10.0}, /*WindowSize=*/4);
  EXPECT_EQ(H.percentile(0.5), 0.0); // empty window reads as zero

  for (double X : {0.05, 0.5, 5.0, 50.0, 0.5, 0.7})
    H.observe(X);
  EXPECT_EQ(H.count(), 6u);
  EXPECT_DOUBLE_EQ(H.sum(), 56.75);

  std::vector<uint64_t> B = H.bucketCounts();
  ASSERT_EQ(B.size(), 4u); // three bounds + overflow
  EXPECT_EQ(B[0], 1u);     // 0.05
  EXPECT_EQ(B[1], 3u);     // 0.5, 0.5, 0.7 (bounds are inclusive upper)
  EXPECT_EQ(B[2], 1u);     // 5.0
  EXPECT_EQ(B[3], 1u);     // 50.0 overflows

  // The percentile window holds only the last four observations, and the
  // computation is the daemon's historical one, bit for bit: copy the
  // window, nth_element at size_t(Q * (n - 1)).
  auto Historical = [](std::vector<double> Sample, double Q) {
    size_t I =
        static_cast<size_t>(Q * static_cast<double>(Sample.size() - 1));
    std::nth_element(Sample.begin(), Sample.begin() + I, Sample.end());
    return Sample[I];
  };
  std::vector<double> Window{5.0, 50.0, 0.5, 0.7};
  EXPECT_EQ(H.percentile(0.5), Historical(Window, 0.5));
  EXPECT_EQ(H.percentile(0.99), Historical(Window, 0.99));
  EXPECT_EQ(H.percentile(0.99), 5.0); // index floor(0.99 * 3) = 2
  EXPECT_EQ(H.percentile(0.0), 0.5);  // the trimmed 0.05 must be gone
  EXPECT_EQ(H.percentile(1.0), 50.0);
}

TEST(ObsTest, RegistryIdempotentRegistrationAndStableRender) {
  obs::Registry R;
  obs::Counter &C1 = R.counter("b_total", "events observed");
  obs::Counter &C2 = R.counter("b_total");
  EXPECT_EQ(&C1, &C2); // first registration wins, later lookups alias it
  EXPECT_EQ(C1.inc(), 1u);
  EXPECT_EQ(C1.inc(2), 3u); // inc returns the new value (cadence checks)
  EXPECT_EQ(C2.value(), 3u);

  R.gauge("a_gauge").set(2.5);
  obs::Histogram &H = R.histogram("lat", {0.5, 1.0}, /*WindowSize=*/8);
  H.observe(0.25);
  H.observe(0.75);

  std::string Text = R.renderText();
  EXPECT_EQ(Text, R.renderText()); // deterministic

  // Metrics render sorted by name.
  EXPECT_LT(Text.find("a_gauge"), Text.find("b_total"));
  EXPECT_LT(Text.find("b_total"), Text.find("# TYPE lat histogram"));

  EXPECT_NE(Text.find("# HELP b_total events observed"), std::string::npos);
  EXPECT_NE(Text.find("b_total 3\n"), std::string::npos);
  EXPECT_NE(Text.find("a_gauge 2.5\n"), std::string::npos);
  // Cumulative buckets, count/sum, and the window-backed percentiles.
  EXPECT_NE(Text.find("lat_bucket{le=\"0.5\"} 1\n"), std::string::npos);
  EXPECT_NE(Text.find("lat_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(Text.find("lat_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(Text.find("lat_count 2\n"), std::string::npos);
  EXPECT_NE(Text.find("lat_sum 1\n"), std::string::npos);
  // Two samples: both percentile indices floor to 0, the window minimum.
  EXPECT_NE(Text.find("lat_p50 0.25\n"), std::string::npos);
  EXPECT_NE(Text.find("lat_p99 0.25\n"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Byte-invisibility differential
//===----------------------------------------------------------------------===//

TEST(ObsTest, TracingIsByteInvisibleToPlacement) {
  // The observability contract (mirroring GenerousDeadlineIsByteInvisible):
  // attaching a tracer changes no observable byte of a placement run — Σ,
  // the summary with its stats trailer, the emitted IR, and every cache
  // counter — serial and with a 4-way fan-out.
  for (unsigned Jobs : {1u, 4u}) {
    PipelineRun Plain = runPipeline("ReadersWriters", Jobs, nullptr);
    obs::Tracer T;
    PipelineRun Traced = runPipeline("ReadersWriters", Jobs, &T);

    EXPECT_EQ(Traced.Sigma, Plain.Sigma) << "Jobs=" << Jobs;
    EXPECT_EQ(Traced.Summary, Plain.Summary) << "Jobs=" << Jobs;
    EXPECT_EQ(Traced.Ir, Plain.Ir) << "Jobs=" << Jobs;
    EXPECT_EQ(Traced.HoareChecks, Plain.HoareChecks);
    EXPECT_EQ(Traced.PairsConsidered, Plain.PairsConsidered);
    EXPECT_EQ(Traced.SolverQueries, Plain.SolverQueries);
    EXPECT_EQ(Traced.CacheHits, Plain.CacheHits);
    EXPECT_EQ(Traced.CacheMisses, Plain.CacheMisses);
    EXPECT_EQ(Traced.DiskHits, Plain.DiskHits);
    EXPECT_EQ(Traced.DiskMisses, Plain.DiskMisses);

    // …and the tracer did actually observe the run.
    EXPECT_GT(T.spanCount(), 0u);
    std::string J = T.exportChromeJson();
    EXPECT_TRUE(isValidJson(J));
    EXPECT_NE(J.find("\"place\""), std::string::npos);
    EXPECT_NE(J.find("\"solver.query\""), std::string::npos);
    EXPECT_NE(J.find("\"invariants\""), std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Live daemon: trace echo, request log, metrics
//===----------------------------------------------------------------------===//

#ifndef _WIN32

TEST(ObsTest, DaemonEchoesTraceIdWritesRequestLogAndServesMetrics) {
  TempDir Dir;
  service::ServerOptions Opts;
  Opts.SocketPath = Dir.sock();
  Opts.Workers = 2;
  Opts.SolverName = "mini";
  Opts.RequestLogPath = Dir.Path + "/requests.jsonl";
  service::Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;
  auto Client = service::ServiceClient::connect(Dir.sock(), &Error);
  ASSERT_NE(Client, nullptr) << Error;

  const bench::BenchmarkDef *Def = bench::findBenchmark("ReadersWriters");
  ASSERT_NE(Def, nullptr);
  service::PlaceRequest Req;
  Req.Source = Def->Source;
  Req.Emit = "summary";
  Req.Solver = "mini";
  Req.WantTrace = true;

  service::PlaceResponse R1;
  ASSERT_TRUE(Client->place(Req, R1, &Error)) << Error;
  ASSERT_EQ(R1.Status, service::ResponseStatus::Ok) << R1.Error;
  EXPECT_NE(R1.TraceId, 0u);
  ASSERT_FALSE(R1.TraceJson.empty());
  EXPECT_TRUE(isValidJson(R1.TraceJson)) << R1.TraceJson;
  EXPECT_NE(R1.TraceJson.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(R1.TraceJson.find("\"place\""), std::string::npos);
  EXPECT_FALSE(R1.Replayed); // traced requests bypass the replay cache

  // An untraced request still gets a fresh id but carries no payload.
  service::PlaceRequest Plain = Req;
  Plain.WantTrace = false;
  service::PlaceResponse R2;
  ASSERT_TRUE(Client->place(Plain, R2, &Error)) << Error;
  ASSERT_EQ(R2.Status, service::ResponseStatus::Ok) << R2.Error;
  EXPECT_NE(R2.TraceId, 0u);
  EXPECT_NE(R2.TraceId, R1.TraceId);
  EXPECT_TRUE(R2.TraceJson.empty());
  // Same Σ with tracing on or off. (The summary artifact's stats trailer
  // legitimately differs — the second run sees the warmer shared store.)
  EXPECT_EQ(R2.DecisionSummary, R1.DecisionSummary);

  // The metrics dump: the latency histogram must agree with the status
  // percentiles bit for bit (renderText prints %.9g, so compare through
  // the same format).
  std::string Metrics;
  ASSERT_TRUE(Client->metrics(Metrics, &Error)) << Error;
  service::StatusResponse S;
  ASSERT_TRUE(Client->status(S, &Error)) << Error;
  EXPECT_EQ(S.RequestsServed, 2u);
  EXPECT_NE(Metrics.find("expressod_requests_served_total 2\n"),
            std::string::npos)
      << Metrics;
  EXPECT_NE(Metrics.find("expressod_requests_completed_total 2\n"),
            std::string::npos);
  EXPECT_NE(Metrics.find("# TYPE expressod_request_latency_seconds histogram"),
            std::string::npos);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "expressod_request_latency_seconds_p50 %.9g",
                S.LatencyP50Seconds);
  EXPECT_NE(Metrics.find(Buf), std::string::npos) << Metrics;
  std::snprintf(Buf, sizeof(Buf), "expressod_request_latency_seconds_p99 %.9g",
                S.LatencyP99Seconds);
  EXPECT_NE(Metrics.find(Buf), std::string::npos) << Metrics;

  // The request log: one self-contained JSON line per request, carrying
  // the id the client saw. Lines are flushed before the response is sent,
  // so both are on disk by now.
  std::ifstream Log(Opts.RequestLogPath);
  ASSERT_TRUE(Log.is_open());
  std::vector<std::string> Lines;
  for (std::string Line; std::getline(Log, Line);)
    Lines.push_back(Line);
  ASSERT_EQ(Lines.size(), 2u);
  for (const std::string &Line : Lines)
    EXPECT_TRUE(isValidJson(Line)) << Line;
  EXPECT_NE(Lines[0].find("\"trace_id\":" + std::to_string(R1.TraceId)),
            std::string::npos)
      << Lines[0];
  EXPECT_NE(Lines[0].find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(Lines[0].find("\"traced\":true"), std::string::npos);
  EXPECT_NE(Lines[0].find("\"emit\":\"summary\""), std::string::npos);
  EXPECT_NE(Lines[0].find("\"solver\":\"mini\""), std::string::npos);
  EXPECT_NE(Lines[1].find("\"trace_id\":" + std::to_string(R2.TraceId)),
            std::string::npos)
      << Lines[1];
  EXPECT_NE(Lines[1].find("\"traced\":false"), std::string::npos);
}

#endif // !_WIN32

} // namespace
