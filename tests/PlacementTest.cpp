//===- tests/PlacementTest.cpp - Algorithm 1 end-to-end -----------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The most important tests in the suite: they assert that the full
/// pipeline (parse -> sema -> invariant inference -> PlaceSignals)
/// reproduces the paper's Section 2 walkthrough exactly — Figure 1 in,
/// Figure 2's signaling discipline out.
///
//===----------------------------------------------------------------------===//

#include "core/SignalPlacement.h"

#include "frontend/Parser.h"
#include "logic/Printer.h"

#include <gtest/gtest.h>

using namespace expresso;
using namespace expresso::frontend;
using namespace expresso::core;
using logic::Term;

namespace {

struct Pipeline {
  explicit Pipeline(const char *Source,
                    PlacementOptions Options = PlacementOptions()) {
    DiagnosticEngine Diags;
    M = parseMonitor(Source, Diags);
    if (!M) {
      ADD_FAILURE() << "parse failed: " << Diags.str();
      return;
    }
    Sema = analyze(*M, C, Diags);
    if (!Sema) {
      ADD_FAILURE() << "sema failed: " << Diags.str();
      return;
    }
    Solver = solver::createSolver(solver::SolverKind::Default, C);
    Result = placeSignals(C, *Sema, *Solver, Options);
  }

  /// Decisions of the CCR with the given program-order index.
  const std::vector<SignalDecision> &decisions(unsigned CcrIndex) const {
    return Result.Placements[CcrIndex].Decisions;
  }

  logic::TermContext C;
  std::unique_ptr<Monitor> M;
  std::unique_ptr<SemaInfo> Sema;
  std::unique_ptr<solver::SmtSolver> Solver;
  PlacementResult Result;
};

const char *RWSource = R"(
monitor RWLock {
  int readers = 0;
  bool writerIn = false;
  void enterReader() { waituntil (!writerIn) { readers++; } }
  void exitReader()  { if (readers > 0) readers--; }
  void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
  void exitWriter()  { writerIn = false; }
}
)";

/// The Section 2 walkthrough: the generated signaling discipline must be
/// exactly Figure 2's.
TEST(PlacementTest, ReadersWritersMatchesFigure2) {
  Pipeline P(RWSource);
  ASSERT_EQ(P.Result.Placements.size(), 4u);

  const PredicateClass *ReadersClass = P.Sema->Ccrs[0].Class; // !writerIn
  const PredicateClass *WritersClass = P.Sema->Ccrs[2].Class; // Pw

  // enterReader: no signals at all.
  EXPECT_TRUE(P.decisions(0).empty())
      << P.Result.summary();

  // exitReader: exactly one signal — conditional, single, to writers.
  ASSERT_EQ(P.decisions(1).size(), 1u) << P.Result.summary();
  EXPECT_EQ(P.decisions(1)[0].Target, WritersClass);
  EXPECT_TRUE(P.decisions(1)[0].Conditional);
  EXPECT_FALSE(P.decisions(1)[0].Broadcast);

  // enterWriter: no signals.
  EXPECT_TRUE(P.decisions(2).empty()) << P.Result.summary();

  // exitWriter: conditional single signal to writers AND unconditional
  // broadcast to readers.
  ASSERT_EQ(P.decisions(3).size(), 2u) << P.Result.summary();
  const SignalDecision *ToReaders = nullptr;
  const SignalDecision *ToWriters = nullptr;
  for (const SignalDecision &D : P.decisions(3)) {
    if (D.Target == ReadersClass)
      ToReaders = &D;
    if (D.Target == WritersClass)
      ToWriters = &D;
  }
  ASSERT_NE(ToReaders, nullptr);
  ASSERT_NE(ToWriters, nullptr);
  EXPECT_TRUE(ToReaders->Broadcast);
  EXPECT_FALSE(ToReaders->Conditional); // signalAll unconditionally
  EXPECT_FALSE(ToWriters->Broadcast);
  EXPECT_TRUE(ToWriters->Conditional); // if (readers == 0) signal

  // The invariant pulled its weight.
  const Term *Readers = P.C.var("readers", logic::Sort::Int);
  EXPECT_TRUE(P.Solver->isValid(
      P.C.implies(P.Result.Invariant, P.C.ge(Readers, P.C.getZero()))));
}

/// Without the monitor invariant, enterReader can no longer prove the
/// no-signal triple (the paper's §2 observation) — placement degrades but
/// stays sound.
TEST(PlacementTest, WithoutInvariantIsConservative) {
  PlacementOptions Opts;
  Opts.UseInvariant = false;
  Pipeline P(RWSource, Opts);
  // enterReader must now signal the writers class.
  ASSERT_EQ(P.decisions(0).size(), 1u) << P.Result.summary();
  EXPECT_EQ(P.decisions(0)[0].Target, P.Sema->Ccrs[2].Class);
}

TEST(PlacementTest, BoundedBuffer) {
  Pipeline P(R"(
    monitor BoundedBuffer {
      const int capacity;
      int count = 0;
      requires capacity > 0;
      void put()  { waituntil (count < capacity) { count++; } }
      void take() { waituntil (count > 0) { count--; } }
    }
  )");
  ASSERT_EQ(P.Result.Placements.size(), 2u);
  const PredicateClass *NotFull = P.Sema->Ccrs[0].Class;
  const PredicateClass *NotEmpty = P.Sema->Ccrs[1].Class;

  // put signals take's class (count > 0) — single and unconditional
  // (count becomes >= 1 after count++ given count >= 0 from the invariant).
  ASSERT_EQ(P.decisions(0).size(), 1u) << P.Result.summary();
  EXPECT_EQ(P.decisions(0)[0].Target, NotEmpty);
  EXPECT_FALSE(P.decisions(0)[0].Broadcast);
  EXPECT_FALSE(P.decisions(0)[0].Conditional);

  // take signals put's class (count < capacity) — single, unconditional.
  ASSERT_EQ(P.decisions(1).size(), 1u) << P.Result.summary();
  EXPECT_EQ(P.decisions(1)[0].Target, NotFull);
  EXPECT_FALSE(P.decisions(1)[0].Broadcast);
  EXPECT_FALSE(P.decisions(1)[0].Conditional);
}

/// Example 4.2 from the paper: guards with thread-local variables force a
/// broadcast that the naive (rename-free) algorithm would miss.
TEST(PlacementTest, Example42RequiresBroadcast) {
  Pipeline P(R"(
    monitor M {
      int y = 0;
      void m1(int x) { waituntil (x < y) { x = y + 1; } }
      void m2() { y = y + 2; }
    }
  )");
  const PredicateClass *XltY = P.Sema->Ccrs[0].Class;
  ASSERT_FALSE(XltY->isGround());
  // m2 must notify the x<y class with a BROADCAST: executing one blocked
  // thread does not falsify another thread's instance of x < y.
  bool FoundBroadcast = false;
  for (const SignalDecision &D : P.decisions(1)) {
    if (D.Target == XltY) {
      EXPECT_TRUE(D.Broadcast) << P.Result.summary();
      FoundBroadcast = true;
    }
  }
  EXPECT_TRUE(FoundBroadcast) << P.Result.summary();
}

/// ConcurrencyThrottle (Spring): the §4.3 commutativity weakening is what
/// avoids the broadcast — threadCount-- commutes with everything, and
/// beforeAccess re-falsifies the waiting condition.
TEST(PlacementTest, ConcurrencyThrottleSingleSignal) {
  const char *Source = R"(
    monitor ConcurrencyThrottle {
      const int threadLimit;
      int threadCount = 0;
      requires threadLimit > 0;
      void beforeAccess() {
        waituntil (threadCount < threadLimit) { threadCount++; }
      }
      void afterAccess() { threadCount--; }
    }
  )";
  Pipeline P(Source);
  const PredicateClass *NotSaturated = P.Sema->Ccrs[0].Class;
  // afterAccess signals the class; thanks to §4.3 it is a SINGLE signal.
  ASSERT_EQ(P.decisions(1).size(), 1u) << P.Result.summary();
  EXPECT_EQ(P.decisions(1)[0].Target, NotSaturated);
  EXPECT_FALSE(P.decisions(1)[0].Broadcast) << P.Result.summary();

  // Ablation: without §4.3 the broadcast comes back.
  PlacementOptions NoComm;
  NoComm.UseCommutativity = false;
  Pipeline P2(Source, NoComm);
  ASSERT_EQ(P2.decisions(1).size(), 1u);
  EXPECT_TRUE(P2.decisions(1)[0].Broadcast) << P2.Result.summary();
}

TEST(PlacementTest, SelfSignalWhenBodyMakesOwnGuardTrue) {
  // A CCR whose body re-enables its own class for OTHER pending threads:
  // taking k at a time; take(k) leaves count > 0 possible, so no self
  // signal needed only if provably false. Here free(k) increases count and
  // must signal the waiters class.
  Pipeline P(R"(
    monitor Sem {
      int count = 0;
      void acquire(int k) { waituntil (count >= k) { count = count - k; } }
      void release(int k) { count = count + k; }
    }
  )");
  const PredicateClass *Waiters = P.Sema->Ccrs[0].Class;
  ASSERT_FALSE(Waiters->isGround());
  // release must broadcast (different waiters have different k).
  bool Found = false;
  for (const SignalDecision &D : P.decisions(1)) {
    if (D.Target == Waiters) {
      Found = true;
      EXPECT_TRUE(D.Broadcast) << P.Result.summary();
    }
  }
  EXPECT_TRUE(Found) << P.Result.summary();
}

TEST(PlacementTest, GroundTrueClassNeverSignaled) {
  Pipeline P(RWSource);
  for (const CcrPlacement &CP : P.Result.Placements)
    for (const SignalDecision &D : CP.Decisions)
      EXPECT_FALSE(D.Target->Canonical->isTrue());
}

TEST(PlacementTest, StatsAreConsistent) {
  Pipeline P(RWSource);
  const PlacementStats &S = P.Result.Stats;
  EXPECT_GT(S.HoareChecks, 0u);
  size_t TotalDecisions = 0;
  for (const CcrPlacement &CP : P.Result.Placements)
    TotalDecisions += CP.Decisions.size();
  EXPECT_EQ(S.Signals + S.Broadcasts, TotalDecisions);
  EXPECT_EQ(S.PairsConsidered,
            P.Sema->Ccrs.size() * P.Sema->Classes.size());
}

TEST(PlacementTest, SummaryMentionsEveryCcr) {
  Pipeline P(RWSource);
  std::string Summary = P.Result.summary();
  EXPECT_NE(Summary.find("enterReader"), std::string::npos);
  EXPECT_NE(Summary.find("exitWriter"), std::string::npos);
  EXPECT_NE(Summary.find("invariant"), std::string::npos);
}

} // namespace
