//===- tests/SolverCacheTest.cpp - CachingSolver unit tests -------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Covers the memoizing solver decorator: hit/miss accounting, context-
// mismatch rejection, structural-hash stability, and differential parity
// of the cached solver against the undecorated backend on random formulas.
//
//===----------------------------------------------------------------------===//

#include "solver/CachingSolver.h"

#include "tests/TestUtil.h"

#include <gtest/gtest.h>

using namespace expresso;
using namespace expresso::logic;
using namespace expresso::solver;

namespace {

const Term *notLeBound(TermContext &C, int64_t Bound) {
  const Term *X = C.var("x", Sort::Int);
  return C.and_(C.le(C.intConst(Bound), X), C.lt(X, C.intConst(Bound)));
}

TEST(SolverCacheTest, HitMissAccounting) {
  TermContext C;
  auto Backend = createSolver(SolverKind::Mini, C);
  SmtSolver &Raw = *Backend;
  CachingSolver Cache(Raw);

  const Term *F = notLeBound(C, 3); // x >= 3 && x < 3: unsat
  EXPECT_EQ(Cache.checkSat(F).TheAnswer, Answer::Unsat);
  EXPECT_EQ(Cache.stats().Hits, 0u);
  EXPECT_EQ(Cache.stats().Misses, 1u);
  EXPECT_EQ(Raw.numQueries(), 1u);

  // Asking again answers from the memo table without touching the backend.
  EXPECT_EQ(Cache.checkSat(F).TheAnswer, Answer::Unsat);
  EXPECT_EQ(Cache.stats().Hits, 1u);
  EXPECT_EQ(Cache.stats().Misses, 1u);
  EXPECT_EQ(Raw.numQueries(), 1u);

  // A structurally equal formula built independently interns to the same
  // pointer, so it also hits.
  const Term *G = notLeBound(C, 3);
  EXPECT_EQ(G, F);
  EXPECT_EQ(Cache.checkSat(G).TheAnswer, Answer::Unsat);
  EXPECT_EQ(Cache.stats().Hits, 2u);
  EXPECT_EQ(Raw.numQueries(), 1u);

  // A different formula misses.
  EXPECT_EQ(Cache.checkSat(notLeBound(C, 4)).TheAnswer, Answer::Unsat);
  EXPECT_EQ(Cache.stats().Misses, 2u);
  EXPECT_EQ(Cache.cacheSize(), 2u);
  EXPECT_DOUBLE_EQ(Cache.stats().hitRate(), 0.5);

  Cache.clearCache();
  EXPECT_EQ(Cache.cacheSize(), 0u);
  EXPECT_EQ(Cache.checkSat(F).TheAnswer, Answer::Unsat);
  EXPECT_EQ(Cache.stats().Misses, 3u);
  EXPECT_EQ(Raw.numQueries(), 3u);
}

TEST(SolverCacheTest, ModelsAreCachedToo) {
  TermContext C;
  auto Backend = createSolver(SolverKind::Mini, C);
  CachingSolver Cache(*Backend);

  const Term *X = C.var("x", Sort::Int);
  const Term *F = C.eq(X, C.intConst(7));
  CheckResult First = Cache.checkSat(F);
  ASSERT_EQ(First.TheAnswer, Answer::Sat);
  CheckResult Again = Cache.checkSat(F);
  EXPECT_EQ(Again.TheAnswer, Answer::Sat);
  EXPECT_EQ(Again.Model, First.Model);
  EXPECT_TRUE(evaluateBool(F, Again.Model));
  EXPECT_EQ(Cache.stats().Hits, 1u);
}

TEST(SolverCacheTest, ContextMismatchRejected) {
  TermContext C1, C2;
  // A backend bound to C1 must not be wrapped for C2: the cache keys on C2's
  // term pointers while the backend interprets C1's.
  EXPECT_EQ(CachingSolver::create(C2, createSolver(SolverKind::Mini, C1)),
            nullptr);
  EXPECT_EQ(CachingSolver::create(C1, nullptr), nullptr);

  auto Cache = CachingSolver::create(C1, createSolver(SolverKind::Mini, C1));
  ASSERT_NE(Cache, nullptr);
  EXPECT_EQ(&Cache->context(), &C1);
  EXPECT_EQ(&Cache->backend().context(), &C1);
  EXPECT_EQ(Cache->checkSat(C1.getTrue()).TheAnswer, Answer::Sat);
}

TEST(SolverCacheTest, StructuralHashStableAcrossContexts) {
  TermContext C1, C2;
  const Term *F1 = notLeBound(C1, 5);
  const Term *F2 = notLeBound(C2, 5);
  EXPECT_NE(F1, F2);
  EXPECT_EQ(F1->structuralHash(), F2->structuralHash());
  EXPECT_NE(F1->structuralHash(), notLeBound(C1, 6)->structuralHash());
}

TEST(SolverCacheTest, NameReflectsBackend) {
  TermContext C;
  CachingSolver Cache(createSolver(SolverKind::Mini, C));
  EXPECT_EQ(Cache.name(), "cache(mini)");
}

/// Differential parity: for random formulas (with repeats forcing hits), the
/// cached solver must agree with a fresh undecorated backend on every query.
class SolverCacheParityTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverCacheParityTest, AgreesWithUndecoratedBackend) {
  TermContext C;
  Rng R(0xCAFE + GetParam());
  testutil::FormulaGen Gen(C, R);

  auto Reference = createSolver(SolverKind::Mini, C);
  CachingSolver Cache(createSolver(SolverKind::Mini, C));

  std::vector<const Term *> Formulas;
  for (int I = 0; I < 40; ++I) {
    const Term *F = I % 3 == 2 && !Formulas.empty()
                        ? Formulas[R.below(Formulas.size())] // replay: hits
                        : Gen.randomFormula(3);
    Formulas.push_back(F);
    Answer Cached = Cache.checkSat(F).TheAnswer;
    Answer Ref = Reference->checkSat(F).TheAnswer;
    EXPECT_EQ(Cached, Ref) << "formula: " << F->str();
  }
  EXPECT_GT(Cache.stats().Hits, 0u);
  EXPECT_EQ(Cache.stats().lookups(), 40u);
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, SolverCacheParityTest,
                         ::testing::Range(0, 4));

} // namespace
