//===- tests/QeTest.cpp - Cooper quantifier elimination ----------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "qe/Cooper.h"

#include "TestUtil.h"
#include "logic/Printer.h"
#include "logic/Simplify.h"
#include "logic/TermOps.h"

#include <gtest/gtest.h>

using namespace expresso;
using namespace expresso::logic;

namespace {

class QeTest : public ::testing::Test {
protected:
  TermContext C;
  const Term *X = C.var("x", Sort::Int);
  const Term *Y = C.var("y", Sort::Int);
  const Term *Z = C.var("z", Sort::Int);
  const Term *P = C.var("p", Sort::Bool);
};

TEST_F(QeTest, ExistsUnboundedIsTrue) {
  // ∃x. x <= y
  auto R = qe::eliminateExists(C, C.le(X, Y), X);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, C.getTrue());
}

TEST_F(QeTest, ExistsBoxNonempty) {
  // ∃x. (y <= x and x <= z)  <=>  y <= z
  auto R = qe::eliminateExists(C, C.and_(C.le(Y, X), C.le(X, Z)), X);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(simplify(C, *R), simplify(C, C.le(Y, Z)));
}

TEST_F(QeTest, ExistsEquality) {
  // ∃x. (x == y + 1 and x <= z)  <=>  y + 1 <= z
  const Term *F = C.and_(C.eq(X, C.add(Y, C.getOne())), C.le(X, Z));
  auto R = qe::eliminateExists(C, F, X);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(simplify(C, *R), simplify(C, C.le(C.add(Y, C.getOne()), Z)));
}

TEST_F(QeTest, ExistsScaledVar) {
  // ∃x. 2x == y  <=>  2 | y
  auto R = qe::eliminateExists(C, C.eq(C.mulConst(2, X), Y), X);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(simplify(C, *R), C.divides(2, Y));
}

TEST_F(QeTest, ForallIsDual) {
  // ∀x. x >= y is false (pick x < y); ∀x. (x >= y or x < y) is true.
  auto R1 = qe::eliminateForall(C, C.ge(X, Y), X);
  ASSERT_TRUE(R1.has_value());
  EXPECT_EQ(*R1, C.getFalse());
  auto R2 = qe::eliminateForall(C, C.or_(C.ge(X, Y), C.lt(X, Y)), X);
  ASSERT_TRUE(R2.has_value());
  EXPECT_EQ(*R2, C.getTrue());
}

TEST_F(QeTest, ForallProducesResidue) {
  // ∀x. (x >= y -> x >= z)  <=>  z <= y
  const Term *F = C.implies(C.ge(X, Y), C.ge(X, Z));
  auto R = qe::eliminateForall(C, F, X);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(simplify(C, *R), simplify(C, C.le(Z, Y)));
}

TEST_F(QeTest, BoolCaseSplit) {
  // ∃p. (p and x <= 0) or (!p and x >= 1): always true (pick p by sign).
  const Term *F = C.or_(C.and_(P, C.le(X, C.getZero())),
                        C.and_(C.not_(P), C.ge(X, C.getOne())));
  auto R = qe::eliminateExists(C, F, P);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, C.getTrue());
}

TEST_F(QeTest, NonLinearOccurrenceRejected) {
  const Term *A = C.var("a", Sort::IntArray);
  // x occurs as an array index: not eliminable by Cooper.
  auto R = qe::eliminateExists(C, C.le(C.select(A, X), C.getZero()), X);
  EXPECT_FALSE(R.has_value());
}

TEST_F(QeTest, ReadersInvariantShape) {
  // The readers-writers abduction query (Section 2/5 of the paper):
  //   ψ must satisfy  ψ ∧ ¬writerIn ∧ readers != 0  =>  readers + 1 != 0.
  // Eliminating writerIn universally from (P -> C) leaves a formula over
  // readers that excludes readers == -1.
  const Term *Readers = C.var("readers", Sort::Int);
  const Term *WriterIn = C.var("writerIn", Sort::Bool);
  const Term *Pre = C.and_(C.not_(WriterIn), C.ne(Readers, C.getZero()));
  const Term *Post = C.ne(C.add(Readers, C.getOne()), C.getZero());
  auto R = qe::eliminateForall(C, C.implies(Pre, Post), WriterIn);
  ASSERT_TRUE(R.has_value());
  // The result must hold for readers == 0 and readers == 5, fail for -1.
  Assignment A1{{"readers", Value::ofInt(0)}};
  Assignment A2{{"readers", Value::ofInt(5)}};
  Assignment A3{{"readers", Value::ofInt(-1)}};
  EXPECT_TRUE(evaluateBool(*R, A1));
  EXPECT_TRUE(evaluateBool(*R, A2));
  EXPECT_FALSE(evaluateBool(*R, A3));
}

TEST_F(QeTest, DecideSatGround) {
  EXPECT_EQ(qe::decideSat(C, C.le(C.intConst(1), C.intConst(2))),
            std::optional<bool>(true));
  EXPECT_EQ(qe::decideSat(C, C.and_(C.le(X, C.getZero()),
                                    C.ge(X, C.getOne()))),
            std::optional<bool>(false));
  EXPECT_EQ(qe::decideSat(C, C.eq(C.mulConst(2, X), C.add(C.mulConst(2, Y),
                                                          C.getOne()))),
            std::optional<bool>(false));
}

//===----------------------------------------------------------------------===//
// Property sweep: QE result agrees with finite-domain expansion
//===----------------------------------------------------------------------===//

class QePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QePropertyTest, ExistsAgreesWithExpansion) {
  TermContext C;
  Rng R(static_cast<uint64_t>(GetParam()) * 6151 + 3);
  testutil::FormulaGen Gen(C, R);
  const Term *F = Gen.randomFormula(3);
  const Term *X = Gen.intVars()[0];

  auto Elim = qe::eliminateExists(C, F, X);
  ASSERT_TRUE(Elim.has_value()) << printTerm(F);

  // For every assignment of the remaining variables in a small box, the
  // eliminated formula must equal ∃x∈[-B',B'].F (the witness box is widened
  // because Cooper may need values outside the checked box; we verify the
  // implication in the sound direction plus witness checking).
  const Term *Y = Gen.intVars()[1];
  const Term *Z = Gen.intVars()[2];
  const Term *P = Gen.boolVars()[0];
  const Term *Q = Gen.boolVars()[1];
  for (int64_t YV = -3; YV <= 3; ++YV) {
    for (int64_t ZV = -3; ZV <= 3; ++ZV) {
      for (int PV = 0; PV <= 1; ++PV) {
        for (int QV = 0; QV <= 1; ++QV) {
          Assignment Asg{{Y->varName(), Value::ofInt(YV)},
                         {Z->varName(), Value::ofInt(ZV)},
                         {P->varName(), Value::ofBool(PV != 0)},
                         {Q->varName(), Value::ofBool(QV != 0)}};
          bool ExistsWitness = false;
          for (int64_t XV = -40; XV <= 40 && !ExistsWitness; ++XV) {
            Assignment Inner = Asg;
            Inner[X->varName()] = Value::ofInt(XV);
            ExistsWitness = evaluateBool(F, Inner);
          }
          Assignment ElimAsg = Asg;
          // The eliminated formula must not mention x, but bind it anyway in
          // case elimination returned the input unchanged for a formula not
          // containing x.
          ElimAsg[X->varName()] = Value::ofInt(0);
          bool ElimTruth = evaluateBool(*Elim, ElimAsg);
          // Soundness: a witness in the box implies the eliminated formula.
          if (ExistsWitness)
            EXPECT_TRUE(ElimTruth)
                << "lost a witness for " << printTerm(F) << " at y=" << YV
                << " z=" << ZV;
          // Precision within the box: coefficients are <= 4 and constants
          // <= 4, so any witness fits well inside |x| <= 40.
          if (ElimTruth)
            EXPECT_TRUE(ExistsWitness)
                << "phantom witness for " << printTerm(F) << " at y=" << YV
                << " z=" << ZV << " elim=" << printTerm(*Elim);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, QePropertyTest, ::testing::Range(0, 60));

} // namespace
