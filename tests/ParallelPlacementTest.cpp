//===- tests/ParallelPlacementTest.cpp - Parallel engine tests ----------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// The parallel placement engine's contract: for every benchmark workload and
// any worker count, the fanned-out Algorithm 1 produces bit-for-bit the
// serial Σ — decisions, conditionality, and broadcast bits — and stats
// totals (Hoare checks, solver queries, cache hits/misses) equal to the
// serial run's. Also covers the support::ThreadPool and the sharded
// single-flight CachingSolver under concurrency. This suite carries the
// "parallel" ctest label and is the TSan CI gate.
//
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "solver/CachingSolver.h"
#include "support/ThreadPool.h"

#include "tests/TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace expresso;
using namespace expresso::logic;
using namespace expresso::solver;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  support::ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(Hits.size(), [&](unsigned WorkerId, size_t Index) {
    EXPECT_LT(WorkerId, 4u);
    Hits[Index].fetch_add(1);
  });
  for (const std::atomic<int> &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  support::ThreadPool Pool(3);
  for (int Batch = 0; Batch < 5; ++Batch) {
    std::atomic<size_t> Sum{0};
    Pool.parallelFor(100, [&](unsigned, size_t Index) {
      Sum.fetch_add(Index + 1);
    });
    EXPECT_EQ(Sum.load(), 5050u);
  }
}

TEST(ThreadPoolTest, EmptyBatchAndZeroWorkers) {
  support::ThreadPool Pool(2);
  Pool.parallelFor(0, [&](unsigned, size_t) { FAIL(); });

  // A pool without threads degrades to an inline loop on the caller.
  support::ThreadPool Inline(0);
  EXPECT_EQ(Inline.size(), 0u);
  size_t Count = 0;
  Inline.parallelFor(7, [&](unsigned WorkerId, size_t) {
    EXPECT_EQ(WorkerId, 0u);
    ++Count;
  });
  EXPECT_EQ(Count, 7u);
}

TEST(ThreadPoolTest, MoreWorkersThanItems) {
  support::ThreadPool Pool(8);
  std::atomic<int> Ran{0};
  Pool.parallelFor(2, [&](unsigned, size_t) { Ran.fetch_add(1); });
  EXPECT_EQ(Ran.load(), 2);
}

//===----------------------------------------------------------------------===//
// Sharded single-flight CachingSolver
//===----------------------------------------------------------------------===//

TEST(ShardedCacheTest, ConcurrentLookupsCountLikeSerial) {
  TermContext C;
  Rng R(0xBEEF);
  testutil::FormulaGen Gen(C, R);

  // A fixed pool of formulas queried many times from many threads: misses
  // must equal the number of distinct formulas (single-flight — first ask
  // computes, everyone else hits), exactly as a serial replay would count.
  std::vector<const Term *> Formulas;
  for (int I = 0; I < 12; ++I)
    Formulas.push_back(Gen.randomFormula(3));

  CachingSolver Cache(createSolver(SolverKind::Mini, C));
  constexpr unsigned NumThreads = 8;
  constexpr unsigned RoundsPerThread = 25;
  std::vector<std::unique_ptr<SmtSolver>> Sessions;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Sessions.push_back(Cache.makeSession(createSolver(SolverKind::Mini, C)));
    ASSERT_NE(Sessions.back(), nullptr);
  }

  // Reference answers from an undecorated backend, before the hammer.
  auto Reference = createSolver(SolverKind::Mini, C);
  std::vector<Answer> Expected;
  for (const Term *F : Formulas)
    Expected.push_back(Reference->checkSat(F).TheAnswer);

  std::vector<std::thread> Threads;
  std::atomic<bool> Mismatch{false};
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (unsigned Round = 0; Round < RoundsPerThread; ++Round)
        for (size_t I = 0; I < Formulas.size(); ++I) {
          Answer A = Sessions[T]->checkSat(Formulas[I]).TheAnswer;
          if (A != Expected[I])
            Mismatch.store(true);
        }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_FALSE(Mismatch.load());
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, Formulas.size());
  EXPECT_EQ(S.lookups(), NumThreads * RoundsPerThread * Formulas.size());
  EXPECT_EQ(Cache.cacheSize(), Formulas.size());
  // Per-worker query counts sum to the shared total.
  uint64_t PerWorker = 0;
  for (const auto &Session : Sessions)
    PerWorker += Session->numQueries();
  EXPECT_EQ(PerWorker, S.lookups());
}

TEST(ShardedCacheTest, SessionRejectsForeignContext) {
  TermContext C1, C2;
  CachingSolver Cache(createSolver(SolverKind::Mini, C1));
  EXPECT_EQ(Cache.makeSession(createSolver(SolverKind::Mini, C2)), nullptr);
  EXPECT_EQ(Cache.makeSession(nullptr), nullptr);
  auto Session = Cache.makeSession(createSolver(SolverKind::Mini, C1));
  ASSERT_NE(Session, nullptr);
  EXPECT_EQ(Session->checkSat(C1.getTrue()).TheAnswer, Answer::Sat);
  EXPECT_EQ(Cache.stats().Misses, 1u);
  // The primary solver now hits the entry the session populated.
  EXPECT_EQ(Cache.checkSat(C1.getTrue()).TheAnswer, Answer::Sat);
  EXPECT_EQ(Cache.stats().Hits, 1u);
}

//===----------------------------------------------------------------------===//
// Parallel placement vs serial placement
//===----------------------------------------------------------------------===//

struct PlacementRun {
  std::string Decisions;
  std::string FullSummary;
  core::PlacementStats Stats;
};

PlacementRun runPlacement(const bench::BenchmarkDef &Def, unsigned Jobs,
                          bool Cache) {
  TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def.Source, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  auto Sema = frontend::analyze(*M, C, Diags);
  EXPECT_NE(Sema, nullptr) << Diags.str();
  auto Solver = solver::createSolver(SolverKind::Mini, C);
  core::PlacementOptions Opts;
  Opts.CacheQueries = Cache;
  Opts.Jobs = Jobs;
  Opts.WorkerSolvers = SolverFactory(SolverKind::Mini);
  core::PlacementResult P = core::placeSignals(C, *Sema, *Solver, Opts);
  // The engine clamps the worker count to the number of (w, p) pairs.
  if (Jobs > 1)
    EXPECT_LE(P.Stats.JobsUsed, Jobs) << Def.Name;
  return {P.decisionSummary(), P.summary(), P.Stats};
}

/// The tentpole contract, asserted per benchmark workload: parallel Σ is the
/// serial Σ bit-for-bit, and stats totals agree query-for-query.
class ParallelPlacementTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelPlacementTest, FourJobsMatchSerial) {
  const bench::BenchmarkDef *Def = bench::findBenchmark(GetParam());
  ASSERT_NE(Def, nullptr);
  PlacementRun Serial = runPlacement(*Def, 1, /*Cache=*/true);
  PlacementRun Par = runPlacement(*Def, 4, /*Cache=*/true);

  // Σ: decisions, conditionality, broadcast bits — byte-identical.
  EXPECT_EQ(Par.Decisions, Serial.Decisions);
  // The full summary includes the stats trailer (queries, hit/miss): the
  // single-flight cache makes even those counters deterministic.
  EXPECT_EQ(Par.FullSummary, Serial.FullSummary);

  EXPECT_EQ(Par.Stats.PairsConsidered, Serial.Stats.PairsConsidered);
  EXPECT_EQ(Par.Stats.HoareChecks, Serial.Stats.HoareChecks);
  EXPECT_EQ(Par.Stats.NoSignalProved, Serial.Stats.NoSignalProved);
  EXPECT_EQ(Par.Stats.Signals, Serial.Stats.Signals);
  EXPECT_EQ(Par.Stats.Broadcasts, Serial.Stats.Broadcasts);
  EXPECT_EQ(Par.Stats.Unconditional, Serial.Stats.Unconditional);
  EXPECT_EQ(Par.Stats.CommutativityWins, Serial.Stats.CommutativityWins);
  EXPECT_EQ(Par.Stats.SolverQueries, Serial.Stats.SolverQueries);
  EXPECT_EQ(Par.Stats.Cache.Hits, Serial.Stats.Cache.Hits);
  EXPECT_EQ(Par.Stats.Cache.Misses, Serial.Stats.Cache.Misses);

  // Per-worker accounting reconciles with the totals (absent only when the
  // pair count clamped the fan-out back to serial).
  if (Par.Stats.JobsUsed > 1) {
    EXPECT_EQ(Par.Stats.Workers.size(), Par.Stats.JobsUsed);
    uint64_t Pairs = 0;
    for (const core::WorkerStats &W : Par.Stats.Workers)
      Pairs += W.Pairs;
    EXPECT_EQ(Pairs, Par.Stats.PairsConsidered);
  }
}

TEST_P(ParallelPlacementTest, CacheOffParityHolds) {
  const bench::BenchmarkDef *Def = bench::findBenchmark(GetParam());
  ASSERT_NE(Def, nullptr);
  PlacementRun Serial = runPlacement(*Def, 1, /*Cache=*/false);
  PlacementRun Par = runPlacement(*Def, 3, /*Cache=*/false);
  EXPECT_EQ(Par.Decisions, Serial.Decisions);
  EXPECT_EQ(Par.Stats.SolverQueries, Serial.Stats.SolverQueries);
  EXPECT_EQ(Par.Stats.HoareChecks, Serial.Stats.HoareChecks);
  EXPECT_EQ(Par.Stats.Cache.lookups(), 0u);
  EXPECT_EQ(Serial.Stats.Cache.lookups(), 0u);
}

std::vector<std::string> allBenchmarkNames() {
  std::vector<std::string> Names;
  for (const bench::BenchmarkDef &Def : bench::allBenchmarks())
    Names.push_back(Def.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ParallelPlacementTest,
                         ::testing::ValuesIn(allBenchmarkNames()),
                         [](const auto &Info) { return Info.param; });

TEST(ParallelPlacementDeterminismTest, RepeatedParallelRunsAgree) {
  const bench::BenchmarkDef *Def = bench::findBenchmark("ReadersWriters");
  ASSERT_NE(Def, nullptr);
  PlacementRun First = runPlacement(*Def, 4, /*Cache=*/true);
  for (int Round = 0; Round < 3; ++Round) {
    PlacementRun Again = runPlacement(*Def, 4, /*Cache=*/true);
    EXPECT_EQ(Again.FullSummary, First.FullSummary);
  }
}

TEST(ParallelPlacementDeterminismTest, InvalidFactoryFallsBackToSerial) {
  const bench::BenchmarkDef *Def = bench::findBenchmark("BoundedBuffer");
  ASSERT_NE(Def, nullptr);
  TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def->Source, Diags);
  auto Sema = frontend::analyze(*M, C, Diags);
  auto Solver = solver::createSolver(SolverKind::Mini, C);
  core::PlacementOptions Opts;
  Opts.Jobs = 4; // requested, but no WorkerSolvers factory configured
  core::PlacementResult P = core::placeSignals(C, *Sema, *Solver, Opts);
  EXPECT_EQ(P.Stats.JobsUsed, 1u);
  EXPECT_TRUE(P.Stats.Workers.empty());
}

} // namespace
