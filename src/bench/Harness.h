//===- bench/Harness.h - Saturation-test harness ----------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's measurement methodology (§7): saturation tests in
/// which threads only access the monitor, one series per signaling engine,
/// ms/op on the y-axis and thread count on the x-axis. Each fig8_*/fig9_*
/// binary calls figureMain() with its benchmark name and prints one row per
/// thread count with expresso / autosynch / explicit columns — the same
/// series as the paper's Figures 8 and 9.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_BENCH_HARNESS_H
#define EXPRESSO_BENCH_HARNESS_H

#include "bench/Workloads.h"
#include "core/SignalPlacement.h"

#include <iosfwd>
#include <memory>
#include <optional>

namespace expresso {
namespace persist {
class QueryStore;
}
namespace bench {

/// Which signaling strategy to run on the shared substrate.
enum class EngineKind { Expresso, AutoSynch, Explicit, Naive };

const char *engineKindName(EngineKind K);

/// Command-line options shared by all bench binaries.
struct HarnessOptions {
  /// Total operation cycles across all threads (split per thread).
  unsigned TargetTotalCycles = 20000;
  unsigned MinCyclesPerThread = 8;
  unsigned MaxThreads = 0;  ///< 0 = benchmark's full series
  unsigned Repetitions = 1; ///< best-of-N timing
  bool Quick = false;       ///< --quick: fewer cycles, capped threads
  bool IncludeNaive = false;///< add the naive-broadcast series
  std::string JsonPath;     ///< --json=PATH: machine-readable table1 artifact
  std::string CacheDir;     ///< --cache-dir=DIR: persistent query store
  bool CacheReadOnly = false; ///< --cache-readonly: never write the store
  /// --build-jobs=N: parallel per-benchmark BenchContext builds in table1
  /// (row order stays deterministic; per-row timings contend for cores, so
  /// use 1 when absolute times matter — see docs/BENCHMARKS.md).
  unsigned BuildJobs = 1;
  /// --corpus=DIR: table1 appends one row per *.mon file in DIR (sorted by
  /// filename, named corpus/<stem>, figure "table_corpus") — the specgen
  /// stress corpus rides the same artifact as the paper workloads.
  std::string CorpusDir;
  /// --serve: after the table rows, start an in-process expressod on a
  /// private socket and measure the serving protocol per workload — cold
  /// request (daemon's first sight of the spec), warm request (shared
  /// query-store hits, replay cache bypassed), and hot request (whole-
  /// response replay) — emitting the serve_* column family into the JSON
  /// artifact with Σ parity checked against the serial row.
  bool Serve = false;
  unsigned ServeWorkers = 2; ///< daemon scheduler width for --serve
  /// Placement knobs, including --incremental=on|off (Placement.Incremental):
  /// store-less table1 rows additionally measure the flipped discharge mode
  /// serially and report the pair as the 1shot/incspd columns and the
  /// incremental_* JSON fields, failing the run if the two modes' full
  /// summaries are not byte-identical.
  core::PlacementOptions Placement;

  static HarnessOptions fromArgs(int Argc, char **Argv);
};

/// A compiled benchmark: parsed monitor, sema, placement, and both plans.
/// When \p Store is non-null (and caching is on) it becomes the persistent
/// tier behind this context's query cache; one store may back any number of
/// live contexts at once — keys are context-free — which is how the table1
/// harness shares a single cache directory across all workloads.
class BenchContext {
public:
  BenchContext(const BenchmarkDef &Def, const core::PlacementOptions &Opts,
               std::shared_ptr<persist::QueryStore> Store = nullptr);

  std::unique_ptr<runtime::MonitorEngine> makeEngine(EngineKind Kind,
                                                     unsigned Threads) const;

  const core::PlacementResult &placement() const { return Placement; }
  /// Wall-clock seconds for the full static pipeline (Table 1's metric).
  double analysisSeconds() const { return AnalysisSeconds; }
  const frontend::SemaInfo &sema() const { return *Sema; }

private:
  const BenchmarkDef &Def;
  logic::TermContext C;
  std::unique_ptr<frontend::Monitor> M;
  std::unique_ptr<frontend::SemaInfo> Sema;
  std::unique_ptr<solver::SmtSolver> Solver;
  std::shared_ptr<persist::QueryStore> Store; ///< persistent tier, if any
  core::PlacementResult Placement;
  runtime::SignalPlan ExpressoPlan;
  runtime::SignalPlan GoldPlan;
  double AnalysisSeconds = 0;
};

/// One measured cell of a figure.
struct CellResult {
  double MsPerOp = 0;
  uint64_t TotalOps = 0;
  runtime::EngineStats Stats;
  bool StateOk = true;
};

/// Runs one (engine, thread-count) cell. Aborts with a diagnostic if the
/// monitor stops making progress (watchdog).
CellResult runCell(const BenchmarkDef &Def, const BenchContext &Ctx,
                   EngineKind Kind, unsigned Threads,
                   const HarnessOptions &Opts);

/// Entry point for fig8_* / fig9_* binaries: prints the paper-style series
/// for \p BenchName. Returns a process exit code.
int figureMain(const std::string &BenchName, int Argc, char **Argv);

/// Entry point for the Table-1 binary: per-benchmark analysis time.
int tableMain(int Argc, char **Argv);

} // namespace bench
} // namespace expresso

#endif // EXPRESSO_BENCH_HARNESS_H
