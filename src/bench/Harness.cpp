//===- bench/Harness.cpp - Saturation-test harness ------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

#include "frontend/Parser.h"
#include "logic/Printer.h"
#include "solver/CachingSolver.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace expresso;
using namespace expresso::bench;
using namespace expresso::runtime;

const char *bench::engineKindName(EngineKind K) {
  switch (K) {
  case EngineKind::Expresso:
    return "expresso";
  case EngineKind::AutoSynch:
    return "autosynch";
  case EngineKind::Explicit:
    return "explicit";
  case EngineKind::Naive:
    return "naive";
  }
  return "?";
}

HarnessOptions HarnessOptions::fromArgs(int Argc, char **Argv) {
  HarnessOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--quick") == 0) {
      Opts.Quick = true;
      Opts.TargetTotalCycles = 3000;
      Opts.MaxThreads = 16;
    } else if (std::strncmp(Arg, "--cycles=", 9) == 0) {
      Opts.TargetTotalCycles = static_cast<unsigned>(std::atoi(Arg + 9));
    } else if (std::strncmp(Arg, "--max-threads=", 14) == 0) {
      Opts.MaxThreads = static_cast<unsigned>(std::atoi(Arg + 14));
    } else if (std::strncmp(Arg, "--reps=", 7) == 0) {
      Opts.Repetitions = static_cast<unsigned>(std::atoi(Arg + 7));
    } else if (std::strcmp(Arg, "--naive") == 0) {
      Opts.IncludeNaive = true;
    } else if (std::strcmp(Arg, "--no-lazy-broadcast") == 0) {
      Opts.Placement.LazyBroadcast = false;
    } else if (std::strcmp(Arg, "--no-invariant") == 0) {
      Opts.Placement.UseInvariant = false;
    } else if (std::strcmp(Arg, "--no-commutativity") == 0) {
      Opts.Placement.UseCommutativity = false;
    } else if (std::strcmp(Arg, "--no-cache") == 0) {
      Opts.Placement.CacheQueries = false;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", Arg);
    }
  }
  return Opts;
}

BenchContext::BenchContext(const BenchmarkDef &Def,
                           const core::PlacementOptions &Opts)
    : Def(Def) {
  WallTimer Timer;
  DiagnosticEngine Diags;
  M = frontend::parseMonitor(Def.Source, Diags);
  if (!M) {
    std::fprintf(stderr, "benchmark %s failed to parse:\n%s\n",
                 Def.Name.c_str(), Diags.str().c_str());
    std::abort();
  }
  Sema = frontend::analyze(*M, C, Diags);
  if (!Sema) {
    std::fprintf(stderr, "benchmark %s failed sema:\n%s\n", Def.Name.c_str(),
                 Diags.str().c_str());
    std::abort();
  }
  Solver = solver::createSolver(solver::SolverKind::Default, C);
  // Decorate the backend here (rather than relying on placeSignals' internal
  // wrapping) so one memo table spans the whole analysis and stays available
  // for any follow-up queries the harness issues.
  if (Opts.CacheQueries)
    Solver = solver::CachingSolver::create(C, std::move(Solver));
  Placement = core::placeSignals(C, *Sema, *Solver, Opts);
  AnalysisSeconds = Timer.elapsedSeconds();
  ExpressoPlan = SignalPlan::fromPlacement(Placement);
  GoldPlan = Def.GoldPlan(*Sema);
  GoldPlan.LazyBroadcast = Opts.LazyBroadcast;
}

std::unique_ptr<MonitorEngine> BenchContext::makeEngine(EngineKind Kind,
                                                        unsigned Threads) const {
  logic::Assignment Config = Def.Config(Threads);
  switch (Kind) {
  case EngineKind::Expresso:
    return createExplicitEngine(*Sema, ExpressoPlan, Config);
  case EngineKind::Explicit:
    return createExplicitEngine(*Sema, GoldPlan, Config);
  case EngineKind::AutoSynch:
    return createAutoSynchEngine(*Sema, Config);
  case EngineKind::Naive:
    return createNaiveEngine(*Sema, Config);
  }
  return nullptr;
}

CellResult bench::runCell(const BenchmarkDef &Def, const BenchContext &Ctx,
                          EngineKind Kind, unsigned Threads,
                          const HarnessOptions &Opts) {
  unsigned Cycles = std::max(Opts.MinCyclesPerThread,
                             Opts.TargetTotalCycles / std::max(1u, Threads));
  CellResult Best;
  Best.MsPerOp = -1;

  for (unsigned Rep = 0; Rep < std::max(1u, Opts.Repetitions); ++Rep) {
    auto Engine = Ctx.makeEngine(Kind, Threads);
    std::atomic<unsigned> Ready{0};
    std::atomic<bool> Go{false};
    std::atomic<bool> Done{false};

    std::vector<std::thread> Workers;
    Workers.reserve(Threads);
    for (unsigned T = 0; T < Threads; ++T) {
      Workers.emplace_back([&, T] {
        Ready.fetch_add(1);
        while (!Go.load(std::memory_order_acquire))
          std::this_thread::yield();
        Def.Worker(*Engine, T, Threads, Cycles);
      });
    }
    while (Ready.load() != Threads)
      std::this_thread::yield();

    // Watchdog: abort with a diagnostic if the monitor stops progressing.
    std::thread Watchdog([&] {
      uint64_t LastCalls = 0;
      int Stalls = 0;
      while (!Done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
        if (Done.load())
          return;
        uint64_t Calls = Engine->stats().Calls;
        if (Calls == LastCalls) {
          if (++Stalls >= 40) {
            std::fprintf(stderr,
                         "DEADLOCK suspected: %s / %s / %u threads stuck at "
                         "%llu calls\n",
                         Def.Name.c_str(), engineKindName(Kind), Threads,
                         static_cast<unsigned long long>(Calls));
            std::abort();
          }
        } else {
          Stalls = 0;
          LastCalls = Calls;
        }
      }
    });

    WallTimer Timer;
    Go.store(true, std::memory_order_release);
    for (std::thread &W : Workers)
      W.join();
    double ElapsedMs = Timer.elapsedMillis();
    Done.store(true);
    Watchdog.join();

    CellResult R;
    R.Stats = Engine->stats();
    R.TotalOps = R.Stats.Calls;
    // JMH-style average time per operation under N threads.
    R.MsPerOp = ElapsedMs * Threads / static_cast<double>(R.TotalOps);
    R.StateOk = !Def.FinalStateOk || Def.FinalStateOk(Engine->snapshot());
    if (!R.StateOk) {
      std::fprintf(stderr, "FINAL STATE CHECK FAILED: %s / %s / %u threads\n",
                   Def.Name.c_str(), engineKindName(Kind), Threads);
    }
    if (Best.MsPerOp < 0 || R.MsPerOp < Best.MsPerOp)
      Best = R;
  }
  return Best;
}

int bench::figureMain(const std::string &BenchName, int Argc, char **Argv) {
  const BenchmarkDef *Def = findBenchmark(BenchName);
  if (!Def) {
    std::fprintf(stderr, "unknown benchmark: %s\n", BenchName.c_str());
    return 1;
  }
  HarnessOptions Opts = HarnessOptions::fromArgs(Argc, Argv);
  BenchContext Ctx(*Def, Opts.Placement);

  std::printf("# %s (%s) — %s\n", Def->Name.c_str(), Def->Figure.c_str(),
              Def->Origin.c_str());
  std::printf("# ms/op (avg time per monitor operation, JMH-style), lower "
              "is better\n");
  std::printf("# invariant: %s\n",
              logic::printTerm(Ctx.placement().Invariant).c_str());
  std::printf("# plan: %zu signals, %zu broadcasts, analysis %.2fs\n",
              runtime::SignalPlan::fromPlacement(Ctx.placement()).numSignals(),
              runtime::SignalPlan::fromPlacement(Ctx.placement())
                  .numBroadcasts(),
              Ctx.analysisSeconds());
  const core::PlacementStats &PS = Ctx.placement().Stats;
  if (Opts.Placement.CacheQueries)
    std::printf("# solver: %zu queries, %llu cache hits / %llu misses "
                "(%.0f%% hit rate)\n",
                PS.SolverQueries,
                static_cast<unsigned long long>(PS.Cache.Hits),
                static_cast<unsigned long long>(PS.Cache.Misses),
                PS.Cache.hitRate() * 100);
  else
    std::printf("# solver: %zu queries (cache disabled)\n", PS.SolverQueries);
  std::printf("%-8s %12s %12s %12s%s\n", "threads", "expresso", "autosynch",
              "explicit", Opts.IncludeNaive ? "        naive" : "");

  std::vector<EngineKind> Kinds = {EngineKind::Expresso, EngineKind::AutoSynch,
                                   EngineKind::Explicit};
  if (Opts.IncludeNaive)
    Kinds.push_back(EngineKind::Naive);

  for (unsigned Threads : Def->ThreadCounts) {
    if (Opts.MaxThreads && Threads > Opts.MaxThreads)
      continue;
    std::printf("%-8u", Threads);
    for (EngineKind Kind : Kinds) {
      CellResult R = runCell(*Def, Ctx, Kind, Threads, Opts);
      std::printf(" %12.5f", R.MsPerOp);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}

int bench::tableMain(int Argc, char **Argv) {
  HarnessOptions Opts = HarnessOptions::fromArgs(Argc, Argv);
  std::printf("# Table 1: compilation (analysis) time per benchmark\n");
  std::printf("%-28s %12s %10s %12s %12s %10s %10s\n", "benchmark",
              "time (sec)", "#checks", "signals", "broadcasts", "cachehit",
              "hit%");
  for (const BenchmarkDef &Def : allBenchmarks()) {
    BenchContext Ctx(Def, Opts.Placement);
    const core::PlacementStats &S = Ctx.placement().Stats;
    if (Opts.Placement.CacheQueries)
      std::printf("%-28s %12.2f %10zu %12zu %12zu %10llu %9.0f%%\n",
                  Def.Name.c_str(), Ctx.analysisSeconds(), S.HoareChecks,
                  S.Signals, S.Broadcasts,
                  static_cast<unsigned long long>(S.Cache.Hits),
                  S.Cache.hitRate() * 100);
    else
      std::printf("%-28s %12.2f %10zu %12zu %12zu %10s %10s\n",
                  Def.Name.c_str(), Ctx.analysisSeconds(), S.HoareChecks,
                  S.Signals, S.Broadcasts, "-", "-");
    std::fflush(stdout);
  }
  return 0;
}
