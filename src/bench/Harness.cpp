//===- bench/Harness.cpp - Saturation-test harness ------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

#include "frontend/Parser.h"
#include "logic/Printer.h"
#include "persist/QueryStore.h"
#include "service/Client.h"
#include "service/Server.h"
#include "solver/CachingSolver.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace expresso;
using namespace expresso::bench;
using namespace expresso::runtime;

const char *bench::engineKindName(EngineKind K) {
  switch (K) {
  case EngineKind::Expresso:
    return "expresso";
  case EngineKind::AutoSynch:
    return "autosynch";
  case EngineKind::Explicit:
    return "explicit";
  case EngineKind::Naive:
    return "naive";
  }
  return "?";
}

HarnessOptions HarnessOptions::fromArgs(int Argc, char **Argv) {
  HarnessOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--quick") == 0) {
      Opts.Quick = true;
      Opts.TargetTotalCycles = 3000;
      Opts.MaxThreads = 16;
    } else if (std::strncmp(Arg, "--cycles=", 9) == 0) {
      Opts.TargetTotalCycles = static_cast<unsigned>(std::atoi(Arg + 9));
    } else if (std::strncmp(Arg, "--max-threads=", 14) == 0) {
      Opts.MaxThreads = static_cast<unsigned>(std::atoi(Arg + 14));
    } else if (std::strncmp(Arg, "--reps=", 7) == 0) {
      Opts.Repetitions = static_cast<unsigned>(std::atoi(Arg + 7));
    } else if (std::strcmp(Arg, "--naive") == 0) {
      Opts.IncludeNaive = true;
    } else if (std::strcmp(Arg, "--no-lazy-broadcast") == 0) {
      Opts.Placement.LazyBroadcast = false;
    } else if (std::strcmp(Arg, "--no-invariant") == 0) {
      Opts.Placement.UseInvariant = false;
    } else if (std::strcmp(Arg, "--no-commutativity") == 0) {
      Opts.Placement.UseCommutativity = false;
    } else if (std::strcmp(Arg, "--no-cache") == 0) {
      Opts.Placement.CacheQueries = false;
    } else if (std::strncmp(Arg, "--incremental=", 14) == 0 ||
               std::strcmp(Arg, "--incremental") == 0) {
      const char *Value = Arg[13] == '=' ? Arg + 14
                          : I + 1 < Argc ? Argv[++I]
                                         : "";
      if (std::strcmp(Value, "on") == 0)
        Opts.Placement.Incremental = true;
      else if (std::strcmp(Value, "off") == 0)
        Opts.Placement.Incremental = false;
      else
        std::fprintf(stderr,
                     "--incremental expects on|off (got '%s'); keeping %s\n",
                     Value, Opts.Placement.Incremental ? "on" : "off");
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0 ||
               std::strcmp(Arg, "--jobs") == 0) {
      const char *Value = Arg[6] == '=' ? Arg + 7
                          : I + 1 < Argc ? Argv[++I]
                                         : "";
      int N = std::atoi(Value);
      unsigned Jobs = std::strcmp(Value, "auto") == 0
                          ? support::ThreadPool::defaultWorkers()
                          : N > 0 ? static_cast<unsigned>(N)
                                  : 0;
      if (Jobs == 0)
        std::fprintf(stderr,
                     "--jobs expects a positive count or \"auto\" (got "
                     "'%s'); keeping %u\n",
                     Value, Opts.Placement.Jobs);
      else
        Opts.Placement.Jobs = Jobs;
    } else if (std::strncmp(Arg, "--json=", 7) == 0) {
      Opts.JsonPath = Arg + 7;
    } else if (std::strncmp(Arg, "--cache-dir=", 12) == 0) {
      Opts.CacheDir = Arg + 12;
    } else if (std::strcmp(Arg, "--cache-readonly") == 0) {
      Opts.CacheReadOnly = true;
    } else if (std::strncmp(Arg, "--corpus=", 9) == 0) {
      Opts.CorpusDir = Arg + 9;
    } else if (std::strcmp(Arg, "--serve") == 0) {
      Opts.Serve = true;
    } else if (std::strncmp(Arg, "--serve-workers=", 16) == 0) {
      int N = std::atoi(Arg + 16);
      if (N <= 0)
        std::fprintf(stderr, "--serve-workers expects a positive count; "
                             "keeping %u\n",
                     Opts.ServeWorkers);
      else
        Opts.ServeWorkers = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--build-jobs=", 13) == 0) {
      const char *Value = Arg + 13;
      unsigned N = std::strcmp(Value, "auto") == 0
                       ? support::ThreadPool::defaultWorkers()
                       : static_cast<unsigned>(std::atoi(Value));
      if (N == 0)
        std::fprintf(stderr,
                     "--build-jobs expects a positive count or \"auto\" "
                     "(got '%s'); keeping %u\n",
                     Value, Opts.BuildJobs);
      else
        Opts.BuildJobs = N;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", Arg);
    }
  }
  return Opts;
}

/// Opens the persistent query store named by --cache-dir (null when unset,
/// unopenable, or pointless because caching is off). Keyed to the default
/// backend's profile — the harness always analyzes with
/// SolverKind::Default — so a directory warmed by one solver never answers
/// for another.
static std::shared_ptr<persist::QueryStore>
openHarnessStore(const HarnessOptions &Opts) {
  return persist::QueryStore::openReportingWarnings(
      Opts.CacheDir, Opts.CacheReadOnly, solver::defaultSolverName(),
      Opts.Placement.CacheQueries);
}

BenchContext::BenchContext(const BenchmarkDef &Def,
                           const core::PlacementOptions &Opts,
                           std::shared_ptr<persist::QueryStore> Store)
    : Def(Def), Store(std::move(Store)) {
  core::PlacementOptions POpts = Opts;
  // Placement workers mint private backends matching the primary one.
  if (POpts.Jobs > 1 && !POpts.WorkerSolvers)
    POpts.WorkerSolvers = solver::SolverFactory(solver::SolverKind::Default);
  WallTimer Timer;
  DiagnosticEngine Diags;
  M = frontend::parseMonitor(Def.Source, Diags);
  if (!M) {
    std::fprintf(stderr, "benchmark %s failed to parse:\n%s\n",
                 Def.Name.c_str(), Diags.str().c_str());
    std::abort();
  }
  Sema = frontend::analyze(*M, C, Diags);
  if (!Sema) {
    std::fprintf(stderr, "benchmark %s failed sema:\n%s\n", Def.Name.c_str(),
                 Diags.str().c_str());
    std::abort();
  }
  Solver = solver::createSolver(solver::SolverKind::Default, C);
  // Decorate the backend here (rather than relying on placeSignals' internal
  // wrapping) so one memo table spans the whole analysis and stays available
  // for any follow-up queries the harness issues. The persistent store (if
  // any) hangs behind the memo as the second tier.
  if (POpts.CacheQueries) {
    auto Cache = solver::CachingSolver::create(C, std::move(Solver));
    if (Cache && this->Store)
      Cache->attachStore(this->Store);
    Solver = std::move(Cache);
  }
  Placement = core::placeSignals(C, *Sema, *Solver, POpts);
  AnalysisSeconds = Timer.elapsedSeconds();
  ExpressoPlan = SignalPlan::fromPlacement(Placement);
  GoldPlan = Def.GoldPlan(*Sema);
  GoldPlan.LazyBroadcast = Opts.LazyBroadcast;
}

std::unique_ptr<MonitorEngine> BenchContext::makeEngine(EngineKind Kind,
                                                        unsigned Threads) const {
  logic::Assignment Config = Def.Config(Threads);
  switch (Kind) {
  case EngineKind::Expresso:
    return createExplicitEngine(*Sema, ExpressoPlan, Config);
  case EngineKind::Explicit:
    return createExplicitEngine(*Sema, GoldPlan, Config);
  case EngineKind::AutoSynch:
    return createAutoSynchEngine(*Sema, Config);
  case EngineKind::Naive:
    return createNaiveEngine(*Sema, Config);
  }
  return nullptr;
}

CellResult bench::runCell(const BenchmarkDef &Def, const BenchContext &Ctx,
                          EngineKind Kind, unsigned Threads,
                          const HarnessOptions &Opts) {
  unsigned Cycles = std::max(Opts.MinCyclesPerThread,
                             Opts.TargetTotalCycles / std::max(1u, Threads));
  CellResult Best;
  Best.MsPerOp = -1;

  for (unsigned Rep = 0; Rep < std::max(1u, Opts.Repetitions); ++Rep) {
    auto Engine = Ctx.makeEngine(Kind, Threads);
    std::atomic<unsigned> Ready{0};
    std::atomic<bool> Go{false};
    std::atomic<bool> Done{false};

    std::vector<std::thread> Workers;
    Workers.reserve(Threads);
    for (unsigned T = 0; T < Threads; ++T) {
      Workers.emplace_back([&, T] {
        Ready.fetch_add(1);
        while (!Go.load(std::memory_order_acquire))
          std::this_thread::yield();
        Def.Worker(*Engine, T, Threads, Cycles);
      });
    }
    while (Ready.load() != Threads)
      std::this_thread::yield();

    // Watchdog: abort with a diagnostic if the monitor stops progressing.
    std::thread Watchdog([&] {
      uint64_t LastCalls = 0;
      int Stalls = 0;
      while (!Done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
        if (Done.load())
          return;
        uint64_t Calls = Engine->stats().Calls;
        if (Calls == LastCalls) {
          if (++Stalls >= 40) {
            std::fprintf(stderr,
                         "DEADLOCK suspected: %s / %s / %u threads stuck at "
                         "%llu calls\n",
                         Def.Name.c_str(), engineKindName(Kind), Threads,
                         static_cast<unsigned long long>(Calls));
            std::abort();
          }
        } else {
          Stalls = 0;
          LastCalls = Calls;
        }
      }
    });

    WallTimer Timer;
    Go.store(true, std::memory_order_release);
    for (std::thread &W : Workers)
      W.join();
    double ElapsedMs = Timer.elapsedMillis();
    Done.store(true);
    Watchdog.join();

    CellResult R;
    R.Stats = Engine->stats();
    R.TotalOps = R.Stats.Calls;
    // JMH-style average time per operation under N threads.
    R.MsPerOp = ElapsedMs * Threads / static_cast<double>(R.TotalOps);
    R.StateOk = !Def.FinalStateOk || Def.FinalStateOk(Engine->snapshot());
    if (!R.StateOk) {
      std::fprintf(stderr, "FINAL STATE CHECK FAILED: %s / %s / %u threads\n",
                   Def.Name.c_str(), engineKindName(Kind), Threads);
    }
    if (Best.MsPerOp < 0 || R.MsPerOp < Best.MsPerOp)
      Best = R;
  }
  return Best;
}

int bench::figureMain(const std::string &BenchName, int Argc, char **Argv) {
  const BenchmarkDef *Def = findBenchmark(BenchName);
  if (!Def) {
    std::fprintf(stderr, "unknown benchmark: %s\n", BenchName.c_str());
    return 1;
  }
  HarnessOptions Opts = HarnessOptions::fromArgs(Argc, Argv);
  BenchContext Ctx(*Def, Opts.Placement, openHarnessStore(Opts));

  std::printf("# %s (%s) — %s\n", Def->Name.c_str(), Def->Figure.c_str(),
              Def->Origin.c_str());
  std::printf("# ms/op (avg time per monitor operation, JMH-style), lower "
              "is better\n");
  std::printf("# invariant: %s\n",
              logic::printTerm(Ctx.placement().Invariant).c_str());
  std::printf("# plan: %zu signals, %zu broadcasts, analysis %.2fs\n",
              runtime::SignalPlan::fromPlacement(Ctx.placement()).numSignals(),
              runtime::SignalPlan::fromPlacement(Ctx.placement())
                  .numBroadcasts(),
              Ctx.analysisSeconds());
  const core::PlacementStats &PS = Ctx.placement().Stats;
  // One header shape for every cache configuration: --no-cache reports
  // uniform zeros (suffix-flagged) instead of a different line.
  std::printf("# solver: %zu queries, %llu cache hits / %llu misses "
              "(%.0f%% hit rate), %llu disk hits / %llu disk misses%s\n",
              PS.SolverQueries,
              static_cast<unsigned long long>(PS.Cache.Hits),
              static_cast<unsigned long long>(PS.Cache.Misses),
              PS.Cache.hitRate() * 100,
              static_cast<unsigned long long>(PS.Cache.DiskHits),
              static_cast<unsigned long long>(PS.Cache.DiskMisses),
              Opts.Placement.CacheQueries ? "" : " [cache off]");
  if (Opts.Placement.Jobs > 1 && !Opts.CacheDir.empty()) {
    // A persistent store spans contexts, so a store-less serial baseline
    // would report cache warming as "parallel speedup" (and a store-backed
    // one the reverse, when the main context ran cold). The comparison is
    // only meaningful without --cache-dir; table1's cold/warm protocol
    // covers the cached case.
    std::printf("# analysis: serial-vs-parallel comparison skipped under "
                "--cache-dir (see docs/BENCHMARKS.md)\n");
  } else if (Opts.Placement.Jobs > 1) {
    // Serial-vs-parallel speedup on the same workload: a second context so
    // neither run warms the other's caches.
    core::PlacementOptions SerialOpts = Opts.Placement;
    SerialOpts.Jobs = 1;
    BenchContext Serial(*Def, SerialOpts);
    bool Match = Serial.placement().decisionSummary() ==
                 Ctx.placement().decisionSummary();
    std::printf("# analysis: serial %.2fs, %u jobs %.2fs, speedup %.2fx, "
                "decisions %s\n",
                Serial.analysisSeconds(), PS.JobsUsed, Ctx.analysisSeconds(),
                Serial.analysisSeconds() /
                    std::max(1e-9, Ctx.analysisSeconds()),
                Match ? "identical" : "MISMATCH");
  }
  std::printf("%-8s %12s %12s %12s%s\n", "threads", "expresso", "autosynch",
              "explicit", Opts.IncludeNaive ? "        naive" : "");

  std::vector<EngineKind> Kinds = {EngineKind::Expresso, EngineKind::AutoSynch,
                                   EngineKind::Explicit};
  if (Opts.IncludeNaive)
    Kinds.push_back(EngineKind::Naive);

  for (unsigned Threads : Def->ThreadCounts) {
    if (Opts.MaxThreads && Threads > Opts.MaxThreads)
      continue;
    std::printf("%-8u", Threads);
    for (EngineKind Kind : Kinds) {
      CellResult R = runCell(*Def, Ctx, Kind, Threads, Opts);
      std::printf(" %12.5f", R.MsPerOp);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}

namespace {

/// Everything one table1 row needs, computed (possibly concurrently) by
/// buildTableRow and rendered strictly in benchmark order afterwards.
struct TableRow {
  double SerialSeconds = 0;
  std::string Decisions; ///< serial Σ, the parity reference for --serve
  core::PlacementStats S; ///< serial (cold, when a store is attached) stats
  bool HasPar = false;
  double ParSeconds = 0;
  bool Match = true;
  bool HasWarm = false;
  double WarmSeconds = 0;
  core::PlacementStats WarmStats;
  bool WarmMatch = true;
  /// Incremental-vs-one-shot ablation pair (store-less invocations only:
  /// a shared store would launder one mode's solves into the other's time).
  bool HasInc = false;
  double IncSeconds = 0;     ///< serial, --incremental=on
  double OneShotSeconds = 0; ///< serial, --incremental=off
  bool IncMatch = true;      ///< full summaries byte-identical across modes
};

/// Builds the contexts for one benchmark: the serial baseline, the optional
/// parallel rerun (determinism check), and — when a persistent store is
/// attached — a warm rerun in a *fresh* TermContext against the store the
/// baseline just filled, the in-process equivalent of a second process
/// reusing the cache directory.
TableRow buildTableRow(const BenchmarkDef &Def, const HarnessOptions &Opts,
                       const std::shared_ptr<persist::QueryStore> &Store) {
  TableRow Row;
  core::PlacementOptions SerialOpts = Opts.Placement;
  SerialOpts.Jobs = 1;
  BenchContext Serial(Def, SerialOpts, Store);
  Row.SerialSeconds = Serial.analysisSeconds();
  Row.Decisions = Serial.placement().decisionSummary();
  Row.S = Serial.placement().Stats;

  if (Opts.Placement.Jobs > 1) {
    // Measure the fan-out in a second, independent context (so neither run
    // warms the other's memo table) and check the determinism contract.
    // Note the parallel context shares the *persistent* tier when a store
    // is attached; table1's parallel columns are therefore only a fair
    // speedup measure without --cache-dir.
    BenchContext Par(Def, Opts.Placement, Store);
    Row.HasPar = true;
    Row.ParSeconds = Par.analysisSeconds();
    Row.Match = Serial.placement().decisionSummary() ==
                Par.placement().decisionSummary();
  }

  if (Store) {
    BenchContext Warm(Def, SerialOpts, Store);
    Row.HasWarm = true;
    Row.WarmSeconds = Warm.analysisSeconds();
    Row.WarmStats = Warm.placement().Stats;
    Row.WarmMatch = Serial.placement().decisionSummary() ==
                    Warm.placement().decisionSummary();
  } else {
    // Incremental ablation: rerun the serial row with the discharge mode
    // flipped and hold the *full* summaries — Σ plus every cache counter —
    // to byte parity. The already-measured serial run covers the configured
    // mode, so only one extra context is built.
    core::PlacementOptions FlippedOpts = SerialOpts;
    FlippedOpts.Incremental = !SerialOpts.Incremental;
    BenchContext Flipped(Def, FlippedOpts);
    Row.HasInc = true;
    Row.IncSeconds = SerialOpts.Incremental ? Row.SerialSeconds
                                            : Flipped.analysisSeconds();
    Row.OneShotSeconds = SerialOpts.Incremental ? Flipped.analysisSeconds()
                                                : Row.SerialSeconds;
    Row.IncMatch =
        Serial.placement().summary() == Flipped.placement().summary();
  }
  return Row;
}

/// One workload's serving-protocol measurements (--serve): client-observed
/// request latencies against an in-process expressod.
struct ServeRow {
  bool Ok = false;
  double ColdSeconds = 0; ///< daemon's first request for this spec
  double WarmSeconds = 0; ///< repeat request, replay cache bypassed
  double HotSeconds = 0;  ///< repeat request served by the replay cache
  uint64_t WarmSharedHits = 0;   ///< shared-store hits on the warm request
  uint64_t WarmSharedMisses = 0;
  bool HotReplayed = false;
  bool Match = true; ///< every response Σ == the serial row's Σ
};

#ifndef _WIN32

/// Runs the cold/warm/hot serving protocol for every workload against a
/// freshly started daemon on a private socket. The daemon's store is its
/// resident in-memory tier, so "cold" is a true first sight of each spec
/// and "warm" measures exactly the cross-request reuse a second client
/// gets. Requests are serial (Jobs=1) to stay comparable with the serial
/// table rows.
std::vector<ServeRow> runServeProtocol(
    const std::vector<const BenchmarkDef *> &Defs,
    const std::vector<TableRow> &Rows, const HarnessOptions &Opts) {
  std::vector<ServeRow> Out(Defs.size());
  service::ServerOptions SOpts;
  SOpts.SocketPath =
      "/tmp/expressod-bench-" + std::to_string(::getpid()) + ".sock";
  SOpts.Workers = Opts.ServeWorkers;
  std::string Error;
  service::Server Srv(SOpts);
  if (!Srv.start(&Error)) {
    std::fprintf(stderr, "--serve: cannot start daemon: %s\n", Error.c_str());
    return Out;
  }

  for (size_t I = 0; I < Defs.size(); ++I) {
    std::unique_ptr<service::ServiceClient> Client =
        service::ServiceClient::connect(SOpts.SocketPath, &Error);
    if (!Client) {
      std::fprintf(stderr, "--serve: %s\n", Error.c_str());
      break;
    }
    service::PlaceRequest Req;
    Req.Source = Defs[I]->Source;
    Req.Emit = "summary";
    Req.UseInvariant = Opts.Placement.UseInvariant;
    Req.UseCommutativity = Opts.Placement.UseCommutativity;
    Req.LazyBroadcast = Opts.Placement.LazyBroadcast;
    Req.CacheQueries = Opts.Placement.CacheQueries;
    Req.Incremental = Opts.Placement.Incremental;
    Req.Jobs = 1;
    Req.BypassResultCache = true;

    ServeRow &R = Out[I];
    service::PlaceResponse Resp;
    auto Roundtrip = [&](double &Seconds) {
      WallTimer T;
      if (!Client->place(Req, Resp, &Error) ||
          Resp.Status != service::ResponseStatus::Ok) {
        std::fprintf(stderr, "--serve: %s failed: %s\n",
                     Defs[I]->Name.c_str(),
                     Error.empty() ? Resp.Error.c_str() : Error.c_str());
        return false;
      }
      Seconds = T.elapsedSeconds();
      if (Resp.DecisionSummary != Rows[I].Decisions)
        R.Match = false;
      return true;
    };

    if (!Roundtrip(R.ColdSeconds))
      continue;
    if (!Roundtrip(R.WarmSeconds))
      continue;
    R.WarmSharedHits = Resp.SharedHits;
    R.WarmSharedMisses = Resp.SharedMisses;
    // Hot pair: first non-bypassed request populates the replay cache (it
    // still runs the warm pipeline), the second is served from it.
    Req.BypassResultCache = false;
    double PrimeSeconds = 0;
    if (!Roundtrip(PrimeSeconds) || !Roundtrip(R.HotSeconds))
      continue;
    R.HotReplayed = Resp.Replayed;
    R.Ok = true;
  }

  Srv.requestShutdown(/*Drain=*/true);
  Srv.wait();
  return Out;
}

#else

std::vector<ServeRow> runServeProtocol(
    const std::vector<const BenchmarkDef *> &Defs,
    const std::vector<TableRow> &, const HarnessOptions &) {
  std::fprintf(stderr, "--serve is not supported on this platform\n");
  return std::vector<ServeRow>(Defs.size());
}

#endif

/// Loads the --corpus directory: every *.mon file (sorted by filename for a
/// deterministic row order) becomes a synthetic table-only BenchmarkDef
/// named corpus/<stem> under figure "table_corpus". The defs carry no
/// worker/config/gold-plan content beyond what BenchContext construction
/// needs — corpus rows measure analysis time, never the runtime engines.
std::vector<BenchmarkDef> loadCorpusDefs(const std::string &Dir) {
  std::vector<BenchmarkDef> Out;
  std::error_code Ec;
  std::vector<std::filesystem::path> Paths;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir, Ec))
    if (Entry.path().extension() == ".mon")
      Paths.push_back(Entry.path());
  if (Ec) {
    std::fprintf(stderr, "--corpus: cannot read %s: %s\n", Dir.c_str(),
                 Ec.message().c_str());
    return Out;
  }
  std::sort(Paths.begin(), Paths.end());
  for (const std::filesystem::path &Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "--corpus: cannot open %s\n", Path.c_str());
      continue;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    BenchmarkDef D;
    D.Name = "corpus/" + Path.stem().string();
    D.Figure = "table_corpus";
    D.Origin = "specgen stress corpus (see corpus/README.md)";
    D.Source = Buf.str();
    D.Config = [](unsigned) { return logic::Assignment{}; };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      return SignalPlanBuilder(S).build();
    };
    Out.push_back(std::move(D));
  }
  if (Out.empty())
    std::fprintf(stderr, "--corpus: no *.mon files in %s\n", Dir.c_str());
  return Out;
}

} // namespace

int bench::tableMain(int Argc, char **Argv) {
  HarnessOptions Opts = HarnessOptions::fromArgs(Argc, Argv);
  const unsigned Jobs = Opts.Placement.Jobs;
  std::shared_ptr<persist::QueryStore> Store = openHarnessStore(Opts);

  FILE *Json = nullptr;
  if (!Opts.JsonPath.empty()) {
    Json = std::fopen(Opts.JsonPath.c_str(), "w");
    if (!Json) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   Opts.JsonPath.c_str());
      return 1;
    }
    // The directory is the only user-controlled string in the artifact;
    // escape it so an exotic path cannot break the JSON.
    std::string CacheDirJson = "null";
    if (Store) {
      CacheDirJson = "\"";
      for (char Ch : Store->directory()) {
        if (Ch == '"' || Ch == '\\')
          CacheDirJson += '\\';
        CacheDirJson += Ch;
      }
      CacheDirJson += "\"";
    }
    std::fprintf(Json,
                 "{\n  \"bench\": \"table1_analysis_time\",\n"
                 "  \"jobs\": %u,\n  \"cache\": %s,\n"
                 "  \"cache_dir\": %s,\n  \"results\": [",
                 Jobs, Opts.Placement.CacheQueries ? "true" : "false",
                 CacheDirJson.c_str());
  }

  std::printf("# Table 1: compilation (analysis) time per benchmark\n");
  if (Store)
    std::printf("%-28s %10s %10s %8s %10s %9s %9s %6s\n", "benchmark",
                "cold(s)", "warm(s)", "speedup", "#checks", "diskhit",
                "diskhit%", "match");
  else if (Jobs > 1)
    std::printf("%-28s %10s %10s %8s %10s %12s %12s %6s\n", "benchmark",
                "serial(s)", "par(s)", "speedup", "#checks", "signals",
                "broadcasts", "match");
  else
    std::printf("%-28s %12s %10s %8s %10s %12s %12s %10s\n", "benchmark",
                "time (sec)", "1shot(s)", "incspd", "#checks", "signals",
                "broadcasts", "cachehit");

  // Resolve the benchmark list once, outside the fan-out (its lazy init is
  // the only shared mutable state the builds would otherwise touch).
  std::vector<const BenchmarkDef *> Defs;
  for (const BenchmarkDef &Def : allBenchmarks())
    Defs.push_back(&Def);
  std::vector<BenchmarkDef> CorpusDefs;
  if (!Opts.CorpusDir.empty()) {
    CorpusDefs = loadCorpusDefs(Opts.CorpusDir);
    for (const BenchmarkDef &Def : CorpusDefs)
      Defs.push_back(&Def);
  }
  std::vector<TableRow> Rows(Defs.size());

  // Satellite of the persistence PR (ROADMAP leftover from the parallel
  // engine): the per-benchmark context builds are independent — separate
  // TermContexts, private solvers, and a thread-safe store — so they fan
  // out across a pool. Rows land in a slot array and render in benchmark
  // order below, keeping the report (and JSON) byte-deterministic whatever
  // the completion order.
  unsigned BuildJobs = Opts.BuildJobs;
  if (BuildJobs > Defs.size())
    BuildJobs = static_cast<unsigned>(Defs.size());
  if (BuildJobs > 1) {
    support::ThreadPool Pool(BuildJobs);
    Pool.parallelFor(Defs.size(), [&](unsigned, size_t I) {
      Rows[I] = buildTableRow(*Defs[I], Opts, Store);
    });
  } else {
    for (size_t I = 0; I < Defs.size(); ++I)
      Rows[I] = buildTableRow(*Defs[I], Opts, Store);
  }

  // Serving protocol (fix for the cold-start accounting gap: the daemon's
  // warm-request latency vs. the CLI's cold latency is the number the
  // resident service exists to improve, so it is now a tracked column
  // family). Runs after the table rows so Σ parity is checked against the
  // serial baseline of this very invocation.
  std::vector<ServeRow> ServeRows;
  if (Opts.Serve) {
    ServeRows = runServeProtocol(Defs, Rows, Opts);
    std::printf("# serving protocol (in-process expressod, workers %u): "
                "cold/warm/hot request latency\n",
                Opts.ServeWorkers);
    std::printf("%-28s %10s %10s %10s %9s %8s %6s\n", "benchmark",
                "cold(s)", "warm(s)", "hot(s)", "sharedhit", "vs-cli",
                "match");
    for (size_t I = 0; I < Defs.size(); ++I) {
      const ServeRow &SR = ServeRows[I];
      if (!SR.Ok) {
        std::printf("%-28s %10s\n", Defs[I]->Name.c_str(), "FAILED");
        continue;
      }
      std::printf("%-28s %10.3f %10.3f %10.4f %9llu %7.1fx %6s\n",
                  Defs[I]->Name.c_str(), SR.ColdSeconds, SR.WarmSeconds,
                  SR.HotSeconds,
                  static_cast<unsigned long long>(SR.WarmSharedHits),
                  Rows[I].SerialSeconds / std::max(1e-9, SR.WarmSeconds),
                  SR.Match ? "yes" : "NO");
    }
  }

  bool FirstRow = true;
  int Exit = 0;
  for (size_t I = 0; I < Defs.size(); ++I) {
    const BenchmarkDef &Def = *Defs[I];
    const TableRow &Row = Rows[I];
    const core::PlacementStats &S = Row.S;
    if (!Row.Match || !Row.WarmMatch || !Row.IncMatch)
      Exit = 1;
    if (I < ServeRows.size() && (!ServeRows[I].Ok || !ServeRows[I].Match))
      Exit = 1;

    if (Row.HasWarm) {
      std::printf("%-28s %10.2f %10.2f %7.2fx %10zu %9llu %8.0f%% %6s\n",
                  Def.Name.c_str(), Row.SerialSeconds, Row.WarmSeconds,
                  Row.SerialSeconds / std::max(1e-9, Row.WarmSeconds),
                  S.HoareChecks,
                  static_cast<unsigned long long>(Row.WarmStats.Cache.DiskHits),
                  Row.WarmStats.Cache.diskHitRate() * 100,
                  Row.WarmMatch && Row.Match ? "yes" : "NO");
    } else if (Row.HasPar) {
      std::printf("%-28s %10.2f %10.2f %7.2fx %10zu %12zu %12zu %6s\n",
                  Def.Name.c_str(), Row.SerialSeconds, Row.ParSeconds,
                  Row.SerialSeconds / std::max(1e-9, Row.ParSeconds),
                  S.HoareChecks, S.Signals, S.Broadcasts,
                  Row.Match ? "yes" : "NO");
    } else {
      // Cache columns print in every configuration; --no-cache rows carry
      // uniform zeros so the table (and JSON schema) keeps one shape. The
      // 1shot/incspd pair is the incremental-session ablation: the same
      // serial analysis with one solver context per query, and the speedup
      // sessions buy over it (decision mismatch flags the row via IncMatch).
      std::printf("%-28s %12.2f %10.2f %7.2fx %10zu %12zu %12zu %10llu%s\n",
                  Def.Name.c_str(), Row.SerialSeconds, Row.OneShotSeconds,
                  Row.OneShotSeconds / std::max(1e-9, Row.IncSeconds),
                  S.HoareChecks, S.Signals, S.Broadcasts,
                  static_cast<unsigned long long>(S.Cache.Hits),
                  Row.IncMatch ? "" : "  MISMATCH");
    }
    std::fflush(stdout);

    if (Json) {
      std::fprintf(Json,
                   "%s\n    {\"name\": \"%s\", \"figure\": \"%s\", "
                   "\"serial_seconds\": %.4f, "
                   "\"hoare_checks\": %zu, \"solver_queries\": %zu, "
                   "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                   "\"disk_hits\": %llu, \"disk_misses\": %llu, "
                   "\"signals\": %zu, \"broadcasts\": %zu",
                   FirstRow ? "" : ",", Def.Name.c_str(), Def.Figure.c_str(),
                   Row.SerialSeconds, S.HoareChecks, S.SolverQueries,
                   static_cast<unsigned long long>(S.Cache.Hits),
                   static_cast<unsigned long long>(S.Cache.Misses),
                   static_cast<unsigned long long>(S.Cache.DiskHits),
                   static_cast<unsigned long long>(S.Cache.DiskMisses),
                   S.Signals, S.Broadcasts);
      std::fprintf(Json, ", \"incremental\": %s",
                   Opts.Placement.Incremental ? "true" : "false");
      if (Row.HasInc)
        std::fprintf(Json,
                     ", \"incremental_seconds\": %.4f, "
                     "\"oneshot_seconds\": %.4f, "
                     "\"incremental_speedup\": %.3f, "
                     "\"incremental_match\": %s",
                     Row.IncSeconds, Row.OneShotSeconds,
                     Row.OneShotSeconds / std::max(1e-9, Row.IncSeconds),
                     Row.IncMatch ? "true" : "false");
      if (Row.HasPar)
        std::fprintf(Json,
                     ", \"parallel_seconds\": %.4f, \"speedup\": %.3f, "
                     "\"decisions_match\": %s",
                     Row.ParSeconds,
                     Row.SerialSeconds / std::max(1e-9, Row.ParSeconds),
                     Row.Match ? "true" : "false");
      if (Row.HasWarm)
        std::fprintf(Json,
                     ", \"warm_seconds\": %.4f, \"warm_disk_hits\": %llu, "
                     "\"warm_disk_misses\": %llu, \"warm_match\": %s",
                     Row.WarmSeconds,
                     static_cast<unsigned long long>(
                         Row.WarmStats.Cache.DiskHits),
                     static_cast<unsigned long long>(
                         Row.WarmStats.Cache.DiskMisses),
                     Row.WarmMatch ? "true" : "false");
      if (I < ServeRows.size() && ServeRows[I].Ok) {
        const ServeRow &SR = ServeRows[I];
        std::fprintf(Json,
                     ", \"serve_cold_seconds\": %.4f, "
                     "\"serve_warm_seconds\": %.4f, "
                     "\"serve_hot_seconds\": %.4f, "
                     "\"serve_warm_shared_hits\": %llu, "
                     "\"serve_warm_shared_misses\": %llu, "
                     "\"serve_speedup\": %.3f, "
                     "\"serve_vs_cli_speedup\": %.3f, "
                     "\"serve_hot_replayed\": %s, \"serve_match\": %s",
                     SR.ColdSeconds, SR.WarmSeconds, SR.HotSeconds,
                     static_cast<unsigned long long>(SR.WarmSharedHits),
                     static_cast<unsigned long long>(SR.WarmSharedMisses),
                     SR.ColdSeconds / std::max(1e-9, SR.WarmSeconds),
                     Row.SerialSeconds / std::max(1e-9, SR.WarmSeconds),
                     SR.HotReplayed ? "true" : "false",
                     SR.Match ? "true" : "false");
      }
      std::fprintf(Json, "}");
      FirstRow = false;
    }
  }
  if (Json) {
    std::fprintf(Json, "\n  ]\n}\n");
    std::fclose(Json);
    std::printf("# wrote %s\n", Opts.JsonPath.c_str());
  }
  return Exit;
}
