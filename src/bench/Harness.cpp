//===- bench/Harness.cpp - Saturation-test harness ------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

#include "frontend/Parser.h"
#include "logic/Printer.h"
#include "solver/CachingSolver.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace expresso;
using namespace expresso::bench;
using namespace expresso::runtime;

const char *bench::engineKindName(EngineKind K) {
  switch (K) {
  case EngineKind::Expresso:
    return "expresso";
  case EngineKind::AutoSynch:
    return "autosynch";
  case EngineKind::Explicit:
    return "explicit";
  case EngineKind::Naive:
    return "naive";
  }
  return "?";
}

HarnessOptions HarnessOptions::fromArgs(int Argc, char **Argv) {
  HarnessOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--quick") == 0) {
      Opts.Quick = true;
      Opts.TargetTotalCycles = 3000;
      Opts.MaxThreads = 16;
    } else if (std::strncmp(Arg, "--cycles=", 9) == 0) {
      Opts.TargetTotalCycles = static_cast<unsigned>(std::atoi(Arg + 9));
    } else if (std::strncmp(Arg, "--max-threads=", 14) == 0) {
      Opts.MaxThreads = static_cast<unsigned>(std::atoi(Arg + 14));
    } else if (std::strncmp(Arg, "--reps=", 7) == 0) {
      Opts.Repetitions = static_cast<unsigned>(std::atoi(Arg + 7));
    } else if (std::strcmp(Arg, "--naive") == 0) {
      Opts.IncludeNaive = true;
    } else if (std::strcmp(Arg, "--no-lazy-broadcast") == 0) {
      Opts.Placement.LazyBroadcast = false;
    } else if (std::strcmp(Arg, "--no-invariant") == 0) {
      Opts.Placement.UseInvariant = false;
    } else if (std::strcmp(Arg, "--no-commutativity") == 0) {
      Opts.Placement.UseCommutativity = false;
    } else if (std::strcmp(Arg, "--no-cache") == 0) {
      Opts.Placement.CacheQueries = false;
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0 ||
               std::strcmp(Arg, "--jobs") == 0) {
      const char *Value = Arg[6] == '=' ? Arg + 7
                          : I + 1 < Argc ? Argv[++I]
                                         : "";
      int N = std::atoi(Value);
      unsigned Jobs = std::strcmp(Value, "auto") == 0
                          ? support::ThreadPool::defaultWorkers()
                          : N > 0 ? static_cast<unsigned>(N)
                                  : 0;
      if (Jobs == 0)
        std::fprintf(stderr,
                     "--jobs expects a positive count or \"auto\" (got "
                     "'%s'); keeping %u\n",
                     Value, Opts.Placement.Jobs);
      else
        Opts.Placement.Jobs = Jobs;
    } else if (std::strncmp(Arg, "--json=", 7) == 0) {
      Opts.JsonPath = Arg + 7;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", Arg);
    }
  }
  return Opts;
}

BenchContext::BenchContext(const BenchmarkDef &Def,
                           const core::PlacementOptions &Opts)
    : Def(Def) {
  core::PlacementOptions POpts = Opts;
  // Placement workers mint private backends matching the primary one.
  if (POpts.Jobs > 1 && !POpts.WorkerSolvers)
    POpts.WorkerSolvers = solver::SolverFactory(solver::SolverKind::Default);
  WallTimer Timer;
  DiagnosticEngine Diags;
  M = frontend::parseMonitor(Def.Source, Diags);
  if (!M) {
    std::fprintf(stderr, "benchmark %s failed to parse:\n%s\n",
                 Def.Name.c_str(), Diags.str().c_str());
    std::abort();
  }
  Sema = frontend::analyze(*M, C, Diags);
  if (!Sema) {
    std::fprintf(stderr, "benchmark %s failed sema:\n%s\n", Def.Name.c_str(),
                 Diags.str().c_str());
    std::abort();
  }
  Solver = solver::createSolver(solver::SolverKind::Default, C);
  // Decorate the backend here (rather than relying on placeSignals' internal
  // wrapping) so one memo table spans the whole analysis and stays available
  // for any follow-up queries the harness issues.
  if (POpts.CacheQueries)
    Solver = solver::CachingSolver::create(C, std::move(Solver));
  Placement = core::placeSignals(C, *Sema, *Solver, POpts);
  AnalysisSeconds = Timer.elapsedSeconds();
  ExpressoPlan = SignalPlan::fromPlacement(Placement);
  GoldPlan = Def.GoldPlan(*Sema);
  GoldPlan.LazyBroadcast = Opts.LazyBroadcast;
}

std::unique_ptr<MonitorEngine> BenchContext::makeEngine(EngineKind Kind,
                                                        unsigned Threads) const {
  logic::Assignment Config = Def.Config(Threads);
  switch (Kind) {
  case EngineKind::Expresso:
    return createExplicitEngine(*Sema, ExpressoPlan, Config);
  case EngineKind::Explicit:
    return createExplicitEngine(*Sema, GoldPlan, Config);
  case EngineKind::AutoSynch:
    return createAutoSynchEngine(*Sema, Config);
  case EngineKind::Naive:
    return createNaiveEngine(*Sema, Config);
  }
  return nullptr;
}

CellResult bench::runCell(const BenchmarkDef &Def, const BenchContext &Ctx,
                          EngineKind Kind, unsigned Threads,
                          const HarnessOptions &Opts) {
  unsigned Cycles = std::max(Opts.MinCyclesPerThread,
                             Opts.TargetTotalCycles / std::max(1u, Threads));
  CellResult Best;
  Best.MsPerOp = -1;

  for (unsigned Rep = 0; Rep < std::max(1u, Opts.Repetitions); ++Rep) {
    auto Engine = Ctx.makeEngine(Kind, Threads);
    std::atomic<unsigned> Ready{0};
    std::atomic<bool> Go{false};
    std::atomic<bool> Done{false};

    std::vector<std::thread> Workers;
    Workers.reserve(Threads);
    for (unsigned T = 0; T < Threads; ++T) {
      Workers.emplace_back([&, T] {
        Ready.fetch_add(1);
        while (!Go.load(std::memory_order_acquire))
          std::this_thread::yield();
        Def.Worker(*Engine, T, Threads, Cycles);
      });
    }
    while (Ready.load() != Threads)
      std::this_thread::yield();

    // Watchdog: abort with a diagnostic if the monitor stops progressing.
    std::thread Watchdog([&] {
      uint64_t LastCalls = 0;
      int Stalls = 0;
      while (!Done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
        if (Done.load())
          return;
        uint64_t Calls = Engine->stats().Calls;
        if (Calls == LastCalls) {
          if (++Stalls >= 40) {
            std::fprintf(stderr,
                         "DEADLOCK suspected: %s / %s / %u threads stuck at "
                         "%llu calls\n",
                         Def.Name.c_str(), engineKindName(Kind), Threads,
                         static_cast<unsigned long long>(Calls));
            std::abort();
          }
        } else {
          Stalls = 0;
          LastCalls = Calls;
        }
      }
    });

    WallTimer Timer;
    Go.store(true, std::memory_order_release);
    for (std::thread &W : Workers)
      W.join();
    double ElapsedMs = Timer.elapsedMillis();
    Done.store(true);
    Watchdog.join();

    CellResult R;
    R.Stats = Engine->stats();
    R.TotalOps = R.Stats.Calls;
    // JMH-style average time per operation under N threads.
    R.MsPerOp = ElapsedMs * Threads / static_cast<double>(R.TotalOps);
    R.StateOk = !Def.FinalStateOk || Def.FinalStateOk(Engine->snapshot());
    if (!R.StateOk) {
      std::fprintf(stderr, "FINAL STATE CHECK FAILED: %s / %s / %u threads\n",
                   Def.Name.c_str(), engineKindName(Kind), Threads);
    }
    if (Best.MsPerOp < 0 || R.MsPerOp < Best.MsPerOp)
      Best = R;
  }
  return Best;
}

int bench::figureMain(const std::string &BenchName, int Argc, char **Argv) {
  const BenchmarkDef *Def = findBenchmark(BenchName);
  if (!Def) {
    std::fprintf(stderr, "unknown benchmark: %s\n", BenchName.c_str());
    return 1;
  }
  HarnessOptions Opts = HarnessOptions::fromArgs(Argc, Argv);
  BenchContext Ctx(*Def, Opts.Placement);

  std::printf("# %s (%s) — %s\n", Def->Name.c_str(), Def->Figure.c_str(),
              Def->Origin.c_str());
  std::printf("# ms/op (avg time per monitor operation, JMH-style), lower "
              "is better\n");
  std::printf("# invariant: %s\n",
              logic::printTerm(Ctx.placement().Invariant).c_str());
  std::printf("# plan: %zu signals, %zu broadcasts, analysis %.2fs\n",
              runtime::SignalPlan::fromPlacement(Ctx.placement()).numSignals(),
              runtime::SignalPlan::fromPlacement(Ctx.placement())
                  .numBroadcasts(),
              Ctx.analysisSeconds());
  const core::PlacementStats &PS = Ctx.placement().Stats;
  if (Opts.Placement.CacheQueries)
    std::printf("# solver: %zu queries, %llu cache hits / %llu misses "
                "(%.0f%% hit rate)\n",
                PS.SolverQueries,
                static_cast<unsigned long long>(PS.Cache.Hits),
                static_cast<unsigned long long>(PS.Cache.Misses),
                PS.Cache.hitRate() * 100);
  else
    std::printf("# solver: %zu queries (cache disabled)\n", PS.SolverQueries);
  if (Opts.Placement.Jobs > 1) {
    // Serial-vs-parallel speedup on the same workload: a second context so
    // neither run warms the other's caches.
    core::PlacementOptions SerialOpts = Opts.Placement;
    SerialOpts.Jobs = 1;
    BenchContext Serial(*Def, SerialOpts);
    bool Match = Serial.placement().decisionSummary() ==
                 Ctx.placement().decisionSummary();
    std::printf("# analysis: serial %.2fs, %u jobs %.2fs, speedup %.2fx, "
                "decisions %s\n",
                Serial.analysisSeconds(), PS.JobsUsed, Ctx.analysisSeconds(),
                Serial.analysisSeconds() /
                    std::max(1e-9, Ctx.analysisSeconds()),
                Match ? "identical" : "MISMATCH");
  }
  std::printf("%-8s %12s %12s %12s%s\n", "threads", "expresso", "autosynch",
              "explicit", Opts.IncludeNaive ? "        naive" : "");

  std::vector<EngineKind> Kinds = {EngineKind::Expresso, EngineKind::AutoSynch,
                                   EngineKind::Explicit};
  if (Opts.IncludeNaive)
    Kinds.push_back(EngineKind::Naive);

  for (unsigned Threads : Def->ThreadCounts) {
    if (Opts.MaxThreads && Threads > Opts.MaxThreads)
      continue;
    std::printf("%-8u", Threads);
    for (EngineKind Kind : Kinds) {
      CellResult R = runCell(*Def, Ctx, Kind, Threads, Opts);
      std::printf(" %12.5f", R.MsPerOp);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}

int bench::tableMain(int Argc, char **Argv) {
  HarnessOptions Opts = HarnessOptions::fromArgs(Argc, Argv);
  const unsigned Jobs = Opts.Placement.Jobs;

  FILE *Json = nullptr;
  if (!Opts.JsonPath.empty()) {
    Json = std::fopen(Opts.JsonPath.c_str(), "w");
    if (!Json) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   Opts.JsonPath.c_str());
      return 1;
    }
    std::fprintf(Json, "{\n  \"bench\": \"table1_analysis_time\",\n"
                       "  \"jobs\": %u,\n  \"cache\": %s,\n  \"results\": [",
                 Jobs, Opts.Placement.CacheQueries ? "true" : "false");
  }

  std::printf("# Table 1: compilation (analysis) time per benchmark\n");
  if (Jobs > 1)
    std::printf("%-28s %10s %10s %8s %10s %12s %12s %6s\n", "benchmark",
                "serial(s)", "par(s)", "speedup", "#checks", "signals",
                "broadcasts", "match");
  else
    std::printf("%-28s %12s %10s %12s %12s %10s %10s\n", "benchmark",
                "time (sec)", "#checks", "signals", "broadcasts", "cachehit",
                "hit%");

  bool FirstRow = true;
  int Exit = 0;
  for (const BenchmarkDef &Def : allBenchmarks()) {
    // Always measure the serial baseline; in parallel mode measure the
    // fan-out in a second, independent context (so neither run warms the
    // other's memo table) and check the determinism contract.
    core::PlacementOptions SerialOpts = Opts.Placement;
    SerialOpts.Jobs = 1;
    BenchContext Serial(Def, SerialOpts);
    const core::PlacementStats &S = Serial.placement().Stats;

    double ParSeconds = 0;
    bool Match = true;
    if (Jobs > 1) {
      BenchContext Par(Def, Opts.Placement);
      ParSeconds = Par.analysisSeconds();
      Match = Serial.placement().decisionSummary() ==
              Par.placement().decisionSummary();
      if (!Match)
        Exit = 1;
      std::printf("%-28s %10.2f %10.2f %7.2fx %10zu %12zu %12zu %6s\n",
                  Def.Name.c_str(), Serial.analysisSeconds(), ParSeconds,
                  Serial.analysisSeconds() / std::max(1e-9, ParSeconds),
                  S.HoareChecks, S.Signals, S.Broadcasts,
                  Match ? "yes" : "NO");
    } else if (Opts.Placement.CacheQueries) {
      std::printf("%-28s %12.2f %10zu %12zu %12zu %10llu %9.0f%%\n",
                  Def.Name.c_str(), Serial.analysisSeconds(), S.HoareChecks,
                  S.Signals, S.Broadcasts,
                  static_cast<unsigned long long>(S.Cache.Hits),
                  S.Cache.hitRate() * 100);
    } else {
      std::printf("%-28s %12.2f %10zu %12zu %12zu %10s %10s\n",
                  Def.Name.c_str(), Serial.analysisSeconds(), S.HoareChecks,
                  S.Signals, S.Broadcasts, "-", "-");
    }
    std::fflush(stdout);

    if (Json) {
      std::fprintf(Json,
                   "%s\n    {\"name\": \"%s\", \"serial_seconds\": %.4f, "
                   "\"hoare_checks\": %zu, \"solver_queries\": %zu, "
                   "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                   "\"signals\": %zu, \"broadcasts\": %zu",
                   FirstRow ? "" : ",", Def.Name.c_str(),
                   Serial.analysisSeconds(), S.HoareChecks, S.SolverQueries,
                   static_cast<unsigned long long>(S.Cache.Hits),
                   static_cast<unsigned long long>(S.Cache.Misses),
                   S.Signals, S.Broadcasts);
      if (Jobs > 1)
        std::fprintf(Json,
                     ", \"parallel_seconds\": %.4f, \"speedup\": %.3f, "
                     "\"decisions_match\": %s",
                     ParSeconds,
                     Serial.analysisSeconds() / std::max(1e-9, ParSeconds),
                     Match ? "true" : "false");
      std::fprintf(Json, "}");
      FirstRow = false;
    }
  }
  if (Json) {
    std::fprintf(Json, "\n  ]\n}\n");
    std::fclose(Json);
    std::printf("# wrote %s\n", Opts.JsonPath.c_str());
  }
  return Exit;
}
