//===- bench/Workloads.h - The paper's 14 evaluation monitors ---*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Benchmark definitions for every monitor in the paper's evaluation (§7):
/// the eight AutoSynch-suite benchmarks of Figure 8 (including the
/// readers-writers motivating example) and the six GitHub monitors of
/// Figure 9 (Spring ConcurrencyThrottle, EventBus PendingPostQueue, Gradle
/// AsyncDispatch and SimpleBlockingDeployment, ExoPlayer SimpleDecoder,
/// greenDAO AsyncOperationExecutor).
///
/// Each definition carries: the implicit-signal DSL source, the
/// configuration (const fields) as a function of the thread count, the
/// paper's thread-count series (x-axis), a saturation worker (threads call
/// only monitor operations — the paper's methodology, following [8]), and a
/// hand-written gold signal plan representing the "Explicit" competitor.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_BENCH_WORKLOADS_H
#define EXPRESSO_BENCH_WORKLOADS_H

#include "runtime/Engine.h"

#include <functional>
#include <string>
#include <vector>

namespace expresso {
namespace bench {

/// A complete benchmark definition.
struct BenchmarkDef {
  std::string Name;
  std::string Figure; ///< "fig8" or "fig9"
  std::string Origin; ///< provenance note (AutoSynch suite / GitHub project)
  std::string Source; ///< implicit-signal monitor (DSL)

  /// Const-field configuration, possibly thread-count dependent.
  std::function<logic::Assignment(unsigned Threads)> Config;

  /// Thread counts reported in the paper's figure (x-axis).
  std::vector<unsigned> ThreadCounts;

  /// Saturation worker: thread \p Idx of \p Threads performs \p Ops
  /// operation cycles against the engine.
  std::function<void(runtime::MonitorEngine &, unsigned Idx, unsigned Threads,
                     unsigned Ops)>
      Worker;

  /// Hand-written explicit-signal plan (the "Explicit" series).
  std::function<runtime::SignalPlan(const frontend::SemaInfo &)> GoldPlan;

  /// Sanity predicate on the final shared state after a balanced run
  /// (empty = no check).
  std::function<bool(const logic::Assignment &)> FinalStateOk;
};

/// All fourteen benchmarks, in paper order (Figure 8 then Figure 9).
const std::vector<BenchmarkDef> &allBenchmarks();

/// Benchmark by name; null if unknown.
const BenchmarkDef *findBenchmark(const std::string &Name);

} // namespace bench
} // namespace expresso

#endif // EXPRESSO_BENCH_WORKLOADS_H
