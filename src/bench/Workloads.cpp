//===- bench/Workloads.cpp - The paper's 14 evaluation monitors ----------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"

#include <cassert>

using namespace expresso;
using namespace expresso::bench;
using namespace expresso::runtime;
using logic::Assignment;
using logic::Value;

namespace {

Assignment noConfig(unsigned) { return {}; }

/// Fixed-capacity configuration helper.
std::function<Assignment(unsigned)> intConfig(const char *Name, int64_t V) {
  std::string N = Name;
  return [N, V](unsigned) {
    Assignment A;
    A[N] = Value::ofInt(V);
    return A;
  };
}

const std::vector<unsigned> Pow2Counts = {2, 4, 8, 16, 32, 64, 128};
const std::vector<unsigned> TriadCounts = {3, 6, 9, 18, 33, 66, 129};

std::vector<BenchmarkDef> buildAll() {
  std::vector<BenchmarkDef> Defs;

  //===------------------------------------------------------------------===//
  // Figure 8: AutoSynch-suite benchmarks + the motivating example.
  //===------------------------------------------------------------------===//

  // --- BoundedBuffer -----------------------------------------------------
  {
    BenchmarkDef D;
    D.Name = "BoundedBuffer";
    D.Figure = "fig8";
    D.Origin = "AutoSynch suite";
    D.Source = R"(
monitor BoundedBuffer {
  const int capacity;
  int count = 0;
  requires capacity > 0;
  void put()  { waituntil (count < capacity) { count++; } }
  void take() { waituntil (count > 0) { count--; } }
}
)";
    D.Config = intConfig("capacity", 64);
    D.ThreadCounts = Pow2Counts;
    D.Worker = [](MonitorEngine &E, unsigned, unsigned, unsigned Ops) {
      for (unsigned I = 0; I < Ops; ++I) {
        E.call("put");
        E.call("take");
      }
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      return SignalPlanBuilder(S)
          .notify("put", 0, "take", 0, /*Conditional=*/false, /*Broadcast=*/false)
          .notify("take", 0, "put", 0, false, false)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return A.at("count").asInt() == 0;
    };
    Defs.push_back(std::move(D));
  }

  // --- H2O Barrier ---------------------------------------------------------
  {
    BenchmarkDef D;
    D.Name = "H2OBarrier";
    D.Figure = "fig8";
    D.Origin = "AutoSynch suite";
    // A bounded hydrogen pool: hydrogens deposit into a pool of capacity
    // maxPool, each oxygen withdraws a pair. (The classic unbounded
    // formulation can strand the final oxygen under a fixed per-thread op
    // budget — this bounded variant keeps both directions of blocking while
    // guaranteeing balanced runs terminate.)
    D.Source = R"(
monitor H2OBarrier {
  const int maxPool;
  int hAvail = 0;
  requires maxPool >= 2;
  void hydrogen() { waituntil (hAvail < maxPool) { hAvail++; } }
  void oxygen()   { waituntil (hAvail >= 2) { hAvail = hAvail - 2; } }
}
)";
    D.Config = intConfig("maxPool", 8);
    D.ThreadCounts = TriadCounts;
    D.Worker = [](MonitorEngine &E, unsigned Idx, unsigned, unsigned Ops) {
      bool IsOxygen = Idx % 3 == 0;
      for (unsigned I = 0; I < Ops; ++I)
        E.call(IsOxygen ? "oxygen" : "hydrogen");
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      return SignalPlanBuilder(S)
          // A new hydrogen may complete an oxygen's pair.
          .notify("hydrogen", 0, "oxygen", 0, true, false)
          // Withdrawing a pair frees two pool slots.
          .notify("oxygen", 0, "hydrogen", 0, true, true)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return A.at("hAvail").asInt() == 0;
    };
    Defs.push_back(std::move(D));
  }

  // --- Sleeping Barber -----------------------------------------------------
  {
    BenchmarkDef D;
    D.Name = "SleepingBarber";
    D.Figure = "fig8";
    D.Origin = "AutoSynch suite";
    D.Source = R"(
monitor SleepingBarber {
  const int chairs;
  int waiting = 0;
  int available = 0;
  requires chairs > 0;
  void customer() {
    waituntil (waiting < chairs) { waiting++; }
    waituntil (available > 0) { available--; }
  }
  void barber() {
    waituntil (waiting > 0) { waiting--; available++; }
  }
}
)";
    D.Config = intConfig("chairs", 8);
    D.ThreadCounts = Pow2Counts;
    D.Worker = [](MonitorEngine &E, unsigned Idx, unsigned, unsigned Ops) {
      bool IsBarber = Idx % 2 == 0;
      for (unsigned I = 0; I < Ops; ++I)
        E.call(IsBarber ? "barber" : "customer");
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      return SignalPlanBuilder(S)
          .notify("customer", 0, "barber", 0, false, false)
          .notify("barber", 0, "customer", 0, false, false)
          .notify("barber", 0, "customer", 1, false, false)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return A.at("waiting").asInt() == 0 && A.at("available").asInt() == 0;
    };
    Defs.push_back(std::move(D));
  }

  // --- Round Robin -----------------------------------------------------------
  {
    BenchmarkDef D;
    D.Name = "RoundRobin";
    D.Figure = "fig8";
    D.Origin = "AutoSynch suite";
    D.Source = R"(
monitor RoundRobin {
  const int n;
  int turn = 0;
  requires n > 0;
  void access(int id) {
    waituntil (turn == id) {
      turn = turn + 1;
      if (turn == n) turn = 0;
    }
  }
}
)";
    D.Config = [](unsigned Threads) {
      Assignment A;
      A["n"] = Value::ofInt(Threads);
      return A;
    };
    D.ThreadCounts = Pow2Counts;
    D.Worker = [](MonitorEngine &E, unsigned Idx, unsigned, unsigned Ops) {
      Assignment L;
      L["id"] = Value::ofInt(Idx);
      for (unsigned I = 0; I < Ops; ++I)
        E.call("access", L);
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      // The expert wakes exactly the successor: conditional single signal.
      return SignalPlanBuilder(S)
          .notify("access", 0, "access", 0, true, false)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return A.at("turn").asInt() == 0;
    };
    Defs.push_back(std::move(D));
  }

  // --- Ticketed Readers-Writers ---------------------------------------------
  {
    BenchmarkDef D;
    D.Name = "TicketedRW";
    D.Figure = "fig8";
    D.Origin = "AutoSynch suite";
    D.Source = R"(
monitor TicketedRW {
  int nextTicket = 0;
  int nowServing = 0;
  int readers = 0;
  bool writerIn = false;
  void enterReader() {
    int t = nextTicket;
    nextTicket++;
    waituntil (nowServing == t && !writerIn) { readers++; nowServing++; }
  }
  void exitReader() { if (readers > 0) readers--; }
  void enterWriter() {
    int t = nextTicket;
    nextTicket++;
    waituntil (nowServing == t && readers == 0 && !writerIn) {
      writerIn = true;
      nowServing++;
    }
  }
  void exitWriter() { writerIn = false; }
}
)";
    D.Config = noConfig;
    D.ThreadCounts = {7, 14, 28, 56, 112}; // paper's 5/2 .. 80/32 mix
    D.Worker = [](MonitorEngine &E, unsigned Idx, unsigned, unsigned Ops) {
      bool IsReader = Idx % 7 < 5;
      for (unsigned I = 0; I < Ops; ++I) {
        if (IsReader) {
          E.call("enterReader");
          E.call("exitReader");
        } else {
          E.call("enterWriter");
          E.call("exitWriter");
        }
      }
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      return SignalPlanBuilder(S)
          // nowServing++ passes the baton to the next ticket holder.
          .notify("enterReader", 2, "enterReader", 2, true, false)
          .notify("enterReader", 2, "enterWriter", 2, true, false)
          .notify("exitReader", 0, "enterWriter", 2, true, false)
          .notify("exitWriter", 0, "enterReader", 2, true, false)
          .notify("exitWriter", 0, "enterWriter", 2, true, false)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return A.at("readers").asInt() == 0 && !A.at("writerIn").asBool() &&
             A.at("nextTicket").asInt() == A.at("nowServing").asInt();
    };
    Defs.push_back(std::move(D));
  }

  // --- Parameterized Bounded Buffer ------------------------------------------
  {
    BenchmarkDef D;
    D.Name = "ParamBoundedBuffer";
    D.Figure = "fig8";
    D.Origin = "AutoSynch suite";
    D.Source = R"(
monitor ParamBoundedBuffer {
  const int capacity;
  int count = 0;
  requires capacity > 0;
  void put(int n)  { waituntil (count + n <= capacity) { count = count + n; } }
  void take(int n) { waituntil (count >= n) { count = count - n; } }
}
)";
    D.Config = intConfig("capacity", 64);
    D.ThreadCounts = {4, 8, 16, 32, 64, 128};
    D.Worker = [](MonitorEngine &E, unsigned Idx, unsigned, unsigned Ops) {
      Assignment L;
      L["n"] = Value::ofInt(1 + (Idx % 3));
      for (unsigned I = 0; I < Ops; ++I) {
        E.call("put", L);
        E.call("take", L);
      }
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      return SignalPlanBuilder(S)
          .notify("put", 0, "take", 0, true, true)
          .notify("take", 0, "put", 0, true, true)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return A.at("count").asInt() == 0;
    };
    Defs.push_back(std::move(D));
  }

  // --- Dining Philosophers -----------------------------------------------------
  {
    BenchmarkDef D;
    D.Name = "DiningPhilosophers";
    D.Figure = "fig8";
    D.Origin = "AutoSynch suite";
    D.Source = R"(
monitor DiningPhilosophers {
  bool[] forks;
  void pickup(int left, int right) {
    waituntil (!forks[left] && !forks[right]) {
      forks[left] = true;
      forks[right] = true;
    }
  }
  void putdown(int left, int right) {
    forks[left] = false;
    forks[right] = false;
  }
}
)";
    D.Config = noConfig;
    D.ThreadCounts = {4, 8, 16, 32, 64, 128};
    D.Worker = [](MonitorEngine &E, unsigned Idx, unsigned Threads,
                  unsigned Ops) {
      Assignment L;
      L["left"] = Value::ofInt(Idx);
      L["right"] = Value::ofInt((Idx + 1) % Threads);
      for (unsigned I = 0; I < Ops; ++I) {
        E.call("pickup", L);
        E.call("putdown", L);
      }
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      // The hand-written code in the paper exploits problem structure; on
      // this substrate the expert choice is a conditional broadcast (only
      // neighbours can become eligible). putdown releases the two forks in
      // two top-level statements (two CCRs), and BOTH must signal: a waiter
      // may be blocked on exactly the second fork.
      return SignalPlanBuilder(S)
          .notify("putdown", 0, "pickup", 0, true, true)
          .notify("putdown", 1, "pickup", 0, true, true)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      for (const auto &[Idx, V] : A.at("forks").A)
        if (V != 0)
          return false;
      return true;
    };
    Defs.push_back(std::move(D));
  }

  // --- Readers-Writers (motivating example) -----------------------------------
  {
    BenchmarkDef D;
    D.Name = "ReadersWriters";
    D.Figure = "fig8";
    D.Origin = "paper §2 (Figure 1)";
    D.Source = R"(
monitor RWLock {
  int readers = 0;
  bool writerIn = false;
  void enterReader() { waituntil (!writerIn) { readers++; } }
  void exitReader()  { if (readers > 0) readers--; }
  void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
  void exitWriter()  { writerIn = false; }
}
)";
    D.Config = noConfig;
    D.ThreadCounts = {12, 24, 48, 96, 192}; // paper's 10/2 .. 160/32 mix
    D.Worker = [](MonitorEngine &E, unsigned Idx, unsigned, unsigned Ops) {
      bool IsReader = Idx % 6 < 5;
      for (unsigned I = 0; I < Ops; ++I) {
        if (IsReader) {
          E.call("enterReader");
          E.call("exitReader");
        } else {
          E.call("enterWriter");
          E.call("exitWriter");
        }
      }
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      // Figure 2, verbatim.
      return SignalPlanBuilder(S)
          .notify("exitReader", 0, "enterWriter", 0, true, false)
          .notify("exitWriter", 0, "enterWriter", 0, true, false)
          .notify("exitWriter", 0, "enterReader", 0, false, true)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return A.at("readers").asInt() == 0 && !A.at("writerIn").asBool();
    };
    Defs.push_back(std::move(D));
  }

  //===------------------------------------------------------------------===//
  // Figure 9: monitors from popular GitHub projects.
  //===------------------------------------------------------------------===//

  // --- ConcurrencyThrottle (Spring framework) ---------------------------------
  {
    BenchmarkDef D;
    D.Name = "ConcurrencyThrottle";
    D.Figure = "fig9";
    D.Origin = "Spring framework";
    D.Source = R"(
monitor ConcurrencyThrottle {
  const int threadLimit;
  int threadCount = 0;
  requires threadLimit > 0;
  void beforeAccess() {
    waituntil (threadCount < threadLimit) { threadCount++; }
  }
  void afterAccess() { threadCount--; }
}
)";
    D.Config = intConfig("threadLimit", 4);
    D.ThreadCounts = Pow2Counts;
    D.Worker = [](MonitorEngine &E, unsigned, unsigned, unsigned Ops) {
      for (unsigned I = 0; I < Ops; ++I) {
        E.call("beforeAccess");
        E.call("afterAccess");
      }
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      return SignalPlanBuilder(S)
          .notify("afterAccess", 0, "beforeAccess", 0, false, false)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return A.at("threadCount").asInt() == 0;
    };
    Defs.push_back(std::move(D));
  }

  // --- PendingPostQueue (EventBus) --------------------------------------------
  {
    BenchmarkDef D;
    D.Name = "PendingPostQueue";
    D.Figure = "fig9";
    D.Origin = "greenrobot EventBus";
    D.Source = R"(
monitor PendingPostQueue {
  int size = 0;
  void enqueue() { size++; }
  void poll()    { waituntil (size > 0) { size--; } }
}
)";
    D.Config = noConfig;
    D.ThreadCounts = TriadCounts;
    D.Worker = [](MonitorEngine &E, unsigned, unsigned, unsigned Ops) {
      for (unsigned I = 0; I < Ops; ++I) {
        E.call("enqueue");
        E.call("poll");
      }
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      return SignalPlanBuilder(S)
          .notify("enqueue", 0, "poll", 0, false, false)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return A.at("size").asInt() == 0;
    };
    Defs.push_back(std::move(D));
  }

  // --- AsyncDispatch (Gradle) ---------------------------------------------------
  {
    BenchmarkDef D;
    D.Name = "AsyncDispatch";
    D.Figure = "fig9";
    D.Origin = "Gradle";
    D.Source = R"(
monitor AsyncDispatch {
  const int maxQueueSize;
  int size = 0;
  bool stopped = false;
  requires maxQueueSize > 0;
  void dispatch() {
    waituntil (size < maxQueueSize || stopped) {
      if (!stopped) size++;
    }
  }
  void take() {
    waituntil (size > 0 || stopped) {
      if (size > 0) size--;
    }
  }
  void stop() { stopped = true; }
}
)";
    D.Config = intConfig("maxQueueSize", 4);
    D.ThreadCounts = Pow2Counts;
    D.Worker = [](MonitorEngine &E, unsigned, unsigned, unsigned Ops) {
      for (unsigned I = 0; I < Ops; ++I) {
        E.call("dispatch");
        E.call("take");
      }
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      return SignalPlanBuilder(S)
          .notify("dispatch", 0, "take", 0, false, false)
          .notify("take", 0, "dispatch", 0, false, false)
          .notify("stop", 0, "dispatch", 0, false, true)
          .notify("stop", 0, "take", 0, false, true)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return A.at("size").asInt() == 0;
    };
    Defs.push_back(std::move(D));
  }

  // --- SimpleBlockingDeployment (Gradle) -----------------------------------------
  {
    BenchmarkDef D;
    D.Name = "SimpleBlockingDeployment";
    D.Figure = "fig9";
    D.Origin = "Gradle";
    D.Source = R"(
monitor SimpleBlockingDeployment {
  bool busy = false;
  void deploy()  { waituntil (!busy) { busy = true; } }
  void release() { busy = false; }
}
)";
    D.Config = noConfig;
    D.ThreadCounts = Pow2Counts;
    D.Worker = [](MonitorEngine &E, unsigned, unsigned, unsigned Ops) {
      for (unsigned I = 0; I < Ops; ++I) {
        E.call("deploy");
        E.call("release");
      }
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      return SignalPlanBuilder(S)
          .notify("release", 0, "deploy", 0, false, false)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return !A.at("busy").asBool();
    };
    Defs.push_back(std::move(D));
  }

  // --- SimpleDecoder (ExoPlayer) ---------------------------------------------------
  {
    BenchmarkDef D;
    D.Name = "SimpleDecoder";
    D.Figure = "fig9";
    D.Origin = "Google ExoPlayer";
    D.Source = R"(
monitor SimpleDecoder {
  const int inputBuffers;
  const int outputBuffers;
  int availIn = 0;
  int availOut = 0;
  int pending = 0;
  requires inputBuffers > 0;
  requires outputBuffers > 0;
  init { availIn = inputBuffers; availOut = outputBuffers; }
  void dequeueInput()  { waituntil (availIn > 0) { availIn--; } }
  void queueInput()    { pending++; }
  void decodeOne() {
    waituntil (pending > 0 && availOut > 0) {
      pending--;
      availOut--;
      availIn++;
    }
  }
  void releaseOutput() { availOut++; }
}
)";
    D.Config = [](unsigned) {
      Assignment A;
      A["inputBuffers"] = Value::ofInt(8);
      A["outputBuffers"] = Value::ofInt(8);
      return A;
    };
    D.ThreadCounts = TriadCounts;
    D.Worker = [](MonitorEngine &E, unsigned Idx, unsigned, unsigned Ops) {
      bool IsProducer = Idx % 3 == 0;
      for (unsigned I = 0; I < Ops; ++I) {
        if (IsProducer) {
          // Producers feed two units per cycle to balance the 1:2 role mix.
          E.call("dequeueInput");
          E.call("queueInput");
          E.call("dequeueInput");
          E.call("queueInput");
        } else {
          E.call("decodeOne");
          E.call("releaseOutput");
        }
      }
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      return SignalPlanBuilder(S)
          .notify("queueInput", 0, "decodeOne", 0, true, false)
          .notify("decodeOne", 0, "dequeueInput", 0, false, false)
          .notify("releaseOutput", 0, "decodeOne", 0, true, false)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return A.at("pending").asInt() == 0 &&
             A.at("availIn").asInt() == 8 && A.at("availOut").asInt() == 8;
    };
    Defs.push_back(std::move(D));
  }

  // --- AsyncOperationExecutor (greenDAO) ---------------------------------------------
  {
    BenchmarkDef D;
    D.Name = "AsyncOperationExecutor";
    D.Figure = "fig9";
    D.Origin = "greenDAO";
    D.Source = R"(
monitor AsyncOperationExecutor {
  const int maxPending;
  int pending = 0;
  requires maxPending > 0;
  void enqueue()        { waituntil (pending < maxPending) { pending++; } }
  void complete()       { waituntil (pending > 0) { pending--; } }
  void waitToComplete() { waituntil (pending == 0) { ; } }
}
)";
    D.Config = intConfig("maxPending", 16);
    D.ThreadCounts = Pow2Counts;
    D.Worker = [](MonitorEngine &E, unsigned Idx, unsigned, unsigned Ops) {
      for (unsigned I = 0; I < Ops; ++I) {
        E.call("enqueue");
        E.call("complete");
      }
      // One observer thread verifies quiescence at the end, exercising the
      // pending == 0 predicate class.
      if (Idx == 0)
        E.call("waitToComplete");
    };
    D.GoldPlan = [](const frontend::SemaInfo &S) {
      return SignalPlanBuilder(S)
          .notify("enqueue", 0, "complete", 0, false, false)
          .notify("complete", 0, "enqueue", 0, false, false)
          .notify("complete", 0, "waitToComplete", 0, true, true)
          .build();
    };
    D.FinalStateOk = [](const Assignment &A) {
      return A.at("pending").asInt() == 0;
    };
    Defs.push_back(std::move(D));
  }

  return Defs;
}

} // namespace

const std::vector<BenchmarkDef> &bench::allBenchmarks() {
  static const std::vector<BenchmarkDef> All = buildAll();
  return All;
}

const BenchmarkDef *bench::findBenchmark(const std::string &Name) {
  for (const BenchmarkDef &D : allBenchmarks())
    if (D.Name == Name)
      return &D;
  return nullptr;
}
