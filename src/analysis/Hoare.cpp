//===- analysis/Hoare.cpp - Hoare triple checking -------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "analysis/Hoare.h"

#include "logic/Simplify.h"

using namespace expresso;
using namespace expresso::analysis;
using logic::Term;

const Term *HoareChecker::verificationCondition(const HoareTriple &T) {
  const Term *WpPost = Wp.wp(T.Body, T.InMethod, T.Post, T.LocalRename);
  return logic::simplify(C, C.implies(T.Pre, WpPost));
}

solver::Validity HoareChecker::check(const HoareTriple &T) {
  ++Checks;
  const Term *VC = verificationCondition(T);
  if (VC->isTrue())
    return solver::Validity::Valid;
  if (VC->isFalse())
    return solver::Validity::Invalid;
  return Solver.checkValid(VC);
}
