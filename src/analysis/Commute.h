//===- analysis/Commute.h - CCR commutativity (§4.3) ------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The commutativity analysis behind the paper's Section 4.3 improvement:
///
///   Comm(w, M)  <=>  forall w' in CCRs(M)\{w}:
///                       Body(w'); Body(w)  ==  Body(w); Body(w')
///
/// Checked by loop-free symbolic execution of both orders from a common
/// symbolic initial state, comparing the final symbolic values of every
/// shared variable with the SMT solver (arrays via fresh-index
/// extensionality). Bodies containing loops are conservatively
/// non-commuting.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_ANALYSIS_COMMUTE_H
#define EXPRESSO_ANALYSIS_COMMUTE_H

#include "frontend/Sema.h"
#include "solver/SmtSolver.h"

#include <map>
#include <optional>

namespace expresso {
namespace analysis {

/// Symbolic store: lowered variable -> symbolic value term.
using SymState =
    std::map<const logic::Term *, const logic::Term *, logic::TermIdLess>;

/// Symbolically executes \p S (scope \p InMethod) from \p State. Returns
/// nullopt when the body contains a while loop (not expressible loop-free).
/// Branches merge with ite on the symbolic condition. \p LocalSeed maps the
/// executing thread's locals to their initial symbolic values.
std::optional<SymState> symExec(logic::TermContext &C,
                                const frontend::SemaInfo &Sema,
                                const frontend::Stmt *S,
                                const frontend::Method *InMethod,
                                SymState State);

/// Checks whether the bodies of \p A and \p B commute as shared-state
/// transformers (executed by *different* threads, so their locals are
/// independent even within the same method).
bool bodiesCommute(logic::TermContext &C, const frontend::SemaInfo &Sema,
                   solver::SmtSolver &Solver, const frontend::CcrInfo &A,
                   const frontend::CcrInfo &B);

/// The paper's Comm(w, M): Body(w) commutes with every other CCR body.
bool commutesWithAll(logic::TermContext &C, const frontend::SemaInfo &Sema,
                     solver::SmtSolver &Solver, const frontend::CcrInfo &W);

} // namespace analysis
} // namespace expresso

#endif // EXPRESSO_ANALYSIS_COMMUTE_H
