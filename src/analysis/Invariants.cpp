//===- analysis/Invariants.cpp - Monitor invariant inference --------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "analysis/Invariants.h"

#include "logic/Simplify.h"
#include "logic/TermOps.h"
#include "obs/Trace.h"
#include "solver/CachingSolver.h"
#include "solver/SolverSession.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <functional>
#include <memory>
#include <set>

using namespace expresso;
using namespace expresso::analysis;
using namespace expresso::frontend;
using logic::Term;

namespace {

/// The lowered conjunction of the monitor's requires clauses.
const Term *requiresTerm(logic::TermContext &C, const SemaInfo &Sema) {
  std::vector<const Term *> Parts;
  for (const Expr *R : Sema.M->Requires)
    Parts.push_back(Sema.lowerExpr(R, nullptr));
  return C.and_(std::move(Parts));
}

/// Fresh renaming of a predicate class: placeholders -> fresh variables
/// representing the blocked thread's locals.
const Term *renameClassFresh(logic::TermContext &C, const PredicateClass &Q) {
  logic::Substitution Subst;
  for (const Term *P : Q.Placeholders)
    Subst.emplace(P, C.freshVar(P->varName() + "!blk", P->sort()));
  return logic::substitute(C, Q.Canonical, Subst);
}

/// Abducible vocabulary: shared scalar fields (an invariant must hold for
/// every thread, so locals are excluded; arrays are outside the QE
/// fragment).
std::vector<const Term *> abducibles(const SemaInfo &Sema) {
  std::vector<const Term *> Result;
  for (const Term *V : Sema.sharedVars())
    if (V->sort() == logic::Sort::Int || V->sort() == logic::Sort::Bool)
      Result.push_back(V);
  return Result;
}

/// Per-worker state for the fixpoint fan-out: a private solver handle (a
/// session of the shared memo table when the caller's solver is a
/// CachingSolver, a raw backend otherwise) and its own Hoare checker. In
/// incremental mode the worker owns a raw backend plus a SolverSession over
/// it (with nothing ever asserted — the fixpoint's queries share no fixed
/// prefix across rounds, so the lever is context reuse, not assertion
/// sharing). Declaration order matters: Session borrows RawBackend and
/// Checker borrows Session's absolute view.
struct FixpointWorker {
  std::unique_ptr<solver::SmtSolver> Solver;
  std::unique_ptr<solver::SmtSolver> RawBackend;
  std::unique_ptr<solver::SolverSession> Session;
  std::unique_ptr<HoareChecker> Checker;
};

} // namespace

bool analysis::isMonitorInvariant(logic::TermContext &C, const SemaInfo &Sema,
                                  solver::SmtSolver &Solver, const Term *I) {
  HoareChecker Checker(C, Sema, Solver);
  // Initiation: {requires} Ctr(M) {I}.
  const Term *InitVc = C.implies(requiresTerm(C, Sema),
                                 Checker.wpEngine().wpConstructor(I));
  if (!Solver.isValid(logic::simplify(C, InitVc)))
    return false;
  // Consecution: {I and Guard(w)} Body(w) {I} for every CCR.
  for (const CcrInfo &W : Sema.Ccrs) {
    HoareTriple T;
    T.Pre = C.and_(I, W.Guard);
    T.Body = W.W->Body;
    T.InMethod = W.Parent;
    T.Post = I;
    if (!Checker.proves(T))
      return false;
  }
  return true;
}

InvariantResult analysis::inferMonitorInvariant(logic::TermContext &C,
                                                const SemaInfo &Sema,
                                                solver::SmtSolver &Solver,
                                                const InvariantConfig &Cfg) {
  InvariantResult Result;
  auto *SharedCache = dynamic_cast<solver::CachingSolver *>(&Solver);

  // Incremental mode: route every serial-path query (abduction consistency,
  // initiation, serial fixpoint rounds, minimization) through one long-lived
  // solver session with an empty assertion stack. Answers and counters are
  // identical to the per-query-context path; only the discharge mechanism
  // changes (see SolverSession::checkSatAbsolute).
  std::unique_ptr<solver::SolverSession> SerialSession;
  solver::SmtSolver *Discharge = &Solver;
  if (Cfg.Incremental) {
    solver::SmtSolver &Underlying =
        SharedCache ? SharedCache->backend() : Solver;
    if (Underlying.supportsIncremental()) {
      SerialSession =
          std::make_unique<solver::SolverSession>(SharedCache, Underlying);
      Discharge = &SerialSession->absoluteSolver();
    }
  }

  HoareChecker Checker(C, Sema, *Discharge);
  WpEngine &Wp = Checker.wpEngine();
  std::vector<const Term *> Vocab = abducibles(Sema);
  WallTimer PhaseTimer;

  // --- Phase 1: candidate universe Φ from abduction over Θ. --------------
  // Θ is the triple set PlaceSignals generates with I = true (paper, §5).
  obs::Span AbdSpan(Cfg.Trace, "invariant.abduction");
  std::vector<std::pair<const Term *, const Term *>> Theta; // (Pre, Goal=wp)
  for (const CcrInfo &W : Sema.Ccrs) {
    for (const auto &QPtr : Sema.Classes) {
      const PredicateClass &Q = *QPtr;
      const Term *P = renameClassFresh(C, Q);
      const Term *NoSignalPost = Wp.wp(W.W->Body, W.Parent, C.not_(P));
      const Term *UncondPost = Wp.wp(W.W->Body, W.Parent, P);
      const Term *Pre = C.and_(W.Guard, C.not_(P));
      Theta.emplace_back(Pre, NoSignalPost);
      Theta.emplace_back(Pre, UncondPost);
    }
  }
  // Single-signal triples: {p} Body(w') {not p} per class.
  for (const auto &QPtr : Sema.Classes) {
    const PredicateClass &Q = *QPtr;
    const Term *P = renameClassFresh(C, Q);
    for (const CcrInfo &W : Sema.Ccrs) {
      if (W.Class != &Q)
        continue;
      const Term *Post = Wp.wp(W.W->Body, W.Parent, C.not_(P));
      Theta.emplace_back(C.and_(W.Guard, P), Post);
    }
  }

  // Id-ordered: iteration order feeds the initiation filter, the Φ vector,
  // and ultimately the greedy minimization — pointer order would make the
  // inferred invariant depend on heap layout.
  std::set<const Term *, logic::TermIdLess> Universe;
  size_t Queries = 0;
  AbductionConfig AbdCfg = Cfg.Abduction;
  AbdCfg.Cancel = Cfg.Cancel;
  auto Expired = [&Cfg] { return Cfg.Cancel && Cfg.Cancel->expired(); };
  for (const auto &[Pre, Goal] : Theta) {
    if (Queries >= Cfg.MaxAbductionQueries ||
        Universe.size() >= Cfg.MaxCandidates || Expired())
      break;
    const Term *VC = logic::simplify(C, C.implies(Pre, Goal));
    if (VC->isTrue())
      continue; // already provable without an invariant
    ++Queries;
    for (const Term *Psi :
         abduce(C, *Discharge, Pre, Goal, Vocab, AbdCfg)) {
      if (Universe.size() >= Cfg.MaxCandidates)
        break;
      Universe.insert(Psi);
    }
  }
  Result.NumCandidates = Universe.size();
  Result.AbductionSeconds = PhaseTimer.elapsedSeconds();
  PhaseTimer.restart();
  AbdSpan.arg("candidates", static_cast<uint64_t>(Universe.size()));
  AbdSpan.arg("queries", static_cast<uint64_t>(Queries));
  AbdSpan.finish();

  // --- Phase 2: Houdini fixpoint. -----------------------------------------
  // Every candidate's fate is decided by its own checks alone — initiation
  // never looks at other candidates, and consecution in a round checks ψ
  // against the invariant fixed at round start — so the per-ψ work fans out
  // across workers while keep/drop verdicts land in slot arrays merged in
  // candidate order: the fixpoint (and the invariant) is identical for any
  // worker count.
  unsigned Jobs = Cfg.Jobs;
  if (Jobs > Universe.size())
    Jobs = static_cast<unsigned>(Universe.size());
  std::vector<FixpointWorker> Workers;
  bool SessionWorkers = false;
  if (Cfg.Incremental && Cfg.WorkerSolvers && Jobs > 1) {
    // Worker sessions mirror the serial path: raw per-worker backends, one
    // empty-stack session each, shared memo on the lookup path. A minted
    // set whose backends lack session support is reused as plain one-shot
    // handles below, never discarded.
    std::vector<std::unique_ptr<solver::SmtSolver>> Raw =
        solver::mintWorkerBackends(C, Cfg.WorkerSolvers, Jobs);
    if (!Raw.empty()) {
      SessionWorkers = Raw.front()->supportsIncremental();
      Workers.resize(Jobs);
      for (unsigned J = 0; J < Jobs; ++J) {
        if (SessionWorkers) {
          Workers[J].RawBackend = std::move(Raw[J]);
          Workers[J].Session = std::make_unique<solver::SolverSession>(
              SharedCache, *Workers[J].RawBackend);
          Workers[J].Checker = std::make_unique<HoareChecker>(
              C, Sema, Workers[J].Session->absoluteSolver());
        } else {
          Workers[J].Solver = SharedCache
                                  ? SharedCache->makeSession(std::move(Raw[J]))
                                  : std::move(Raw[J]);
          Workers[J].Checker =
              std::make_unique<HoareChecker>(C, Sema, *Workers[J].Solver);
        }
      }
    }
  }
  if (Workers.empty()) {
    std::vector<std::unique_ptr<solver::SmtSolver>> Handles =
        solver::makeWorkerSolvers(C, Cfg.WorkerSolvers, SharedCache, Jobs);
    Workers.resize(Handles.size());
    for (size_t J = 0; J < Handles.size(); ++J) {
      Workers[J].Solver = std::move(Handles[J]);
      Workers[J].Checker =
          std::make_unique<HoareChecker>(C, Sema, *Workers[J].Solver);
    }
  }
  if (Cfg.Cancel)
    for (FixpointWorker &W : Workers) {
      if (W.RawBackend)
        W.RawBackend->setCancelToken(Cfg.Cancel);
      if (W.Solver)
        W.Solver->setCancelToken(Cfg.Cancel);
    }
  std::unique_ptr<support::ThreadPool> Pool;
  if (!Workers.empty())
    Pool = std::make_unique<support::ThreadPool>(
        static_cast<unsigned>(Workers.size()));

  // A per-ψ checker: worker-private when fanned out, the caller's when serial.
  auto checkerFor = [&](unsigned WorkerId) -> HoareChecker & {
    return Pool ? *Workers[WorkerId].Checker : Checker;
  };
  auto forEachCandidate =
      [&](size_t Count, const std::function<void(unsigned, size_t)> &Body) {
        if (Pool) {
          Pool->parallelFor(Count, Body);
        } else {
          for (size_t I = 0; I < Count; ++I)
            Body(0, I);
        }
      };

  // Initiation is independent of Φ: filter once.
  obs::Span InitSpan(Cfg.Trace, "invariant.initiation");
  const Term *Req = requiresTerm(C, Sema);
  std::vector<const Term *> UniverseVec(Universe.begin(), Universe.end());
  std::vector<char> Keep(UniverseVec.size(), 0);
  forEachCandidate(UniverseVec.size(), [&](unsigned WorkerId, size_t Idx) {
    if (Expired())
      return; // drop the candidate — conservative, and the run is doomed
    HoareChecker &Chk = checkerFor(WorkerId);
    const Term *InitVc = logic::simplify(
        C, C.implies(Req, Chk.wpEngine().wpConstructor(UniverseVec[Idx])));
    Keep[Idx] = Chk.solver().isValid(InitVc) ? 1 : 0;
  });
  std::vector<const Term *> Phi;
  for (size_t Idx = 0; Idx < UniverseVec.size(); ++Idx)
    if (Keep[Idx])
      Phi.push_back(UniverseVec[Idx]);
  InitSpan.arg("kept", static_cast<uint64_t>(Phi.size()));
  InitSpan.finish();

  for (;;) {
    if (Expired())
      break; // keep whatever Φ holds; still a sound (if weak) conjunction
    ++Result.NumIterations;
    obs::Span RoundSpan(Cfg.Trace, "invariant.houdini.round");
    RoundSpan.arg("round", static_cast<uint64_t>(Result.NumIterations));
    RoundSpan.arg("candidates", static_cast<uint64_t>(Phi.size()));
    const Term *I = C.and_(Phi);
    Keep.assign(Phi.size(), 0);
    forEachCandidate(Phi.size(), [&](unsigned WorkerId, size_t Idx) {
      if (Expired())
        return; // conservative drop, as in the initiation filter
      HoareChecker &Chk = checkerFor(WorkerId);
      bool Preserved = true;
      for (const CcrInfo &W : Sema.Ccrs) {
        HoareTriple T;
        T.Pre = C.and_(I, W.Guard);
        T.Body = W.W->Body;
        T.InMethod = W.Parent;
        T.Post = Phi[Idx];
        if (!Chk.proves(T)) {
          Preserved = false;
          break;
        }
      }
      Keep[Idx] = Preserved ? 1 : 0;
    });
    std::vector<const Term *> Survivors;
    for (size_t Idx = 0; Idx < Phi.size(); ++Idx)
      if (Keep[Idx])
        Survivors.push_back(Phi[Idx]);
    bool Stable = Survivors.size() == Phi.size();
    Phi = std::move(Survivors);
    if (Stable)
      break;
  }

  // Private-backend queries the caller's solver never saw (cache-off runs;
  // with a shared cache, sessions count centrally on the caller's solver).
  if (!SharedCache)
    for (const FixpointWorker &W : Workers)
      Result.WorkerQueries += SessionWorkers ? W.Session->numQueries()
                                             : W.Solver->numQueries();

  // Minimize: greedily drop predicates implied by the remaining ones. This
  // keeps the invariant presentable (e.g. plain `readers >= 0` for the
  // readers-writers monitor) without weakening it.
  obs::Span MinSpan(Cfg.Trace, "invariant.minimize");
  for (size_t I = 0; I < Phi.size();) {
    if (Expired())
      break;
    std::vector<const Term *> Others;
    for (size_t K = 0; K < Phi.size(); ++K)
      if (K != I)
        Others.push_back(Phi[K]);
    const Term *Rest = C.and_(Others);
    if (Discharge->isValid(C.implies(Rest, Phi[I]))) {
      Phi.erase(Phi.begin() + static_cast<long>(I));
      continue;
    }
    ++I;
  }
  MinSpan.finish();

  Result.Predicates = Phi;
  Result.Invariant = logic::simplify(C, C.and_(Phi));
  Result.FixpointSeconds = PhaseTimer.elapsedSeconds();
  return Result;
}
