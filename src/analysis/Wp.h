//===- analysis/Wp.h - Weakest preconditions --------------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Weakest-precondition computation over monitor statements, the engine
/// behind every Hoare triple in the paper ("Expresso discharges any Hoare
/// triple {P} s {Q} by computing the weakest precondition of Q with respect
/// to s and performing a validity check", §6).
///
/// Rules:
///   wp(skip, Q)        = Q
///   wp(x = e, Q)       = Q[e/x]
///   wp(a[i] = e, Q)    = Q[store(a,i,e)/a]     (selects push through stores)
///   wp(s1; s2, Q)      = wp(s1, wp(s2, Q))
///   wp(if c s1 s2, Q)  = (c => wp(s1,Q)) and (!c => wp(s2,Q))
///   wp(while c s, Q)   = (!c => Q)[fresh/modified(s)]
///
/// The while rule is the sound `havoc; assume !c` over-approximation: any
/// terminating loop execution ends in a state with !c and arbitrary values
/// for modified variables. Because every placement check treats validity as
/// a license to optimize, over-approximation can only cost extra signals,
/// never correctness (paper §9's conservative posture).
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_ANALYSIS_WP_H
#define EXPRESSO_ANALYSIS_WP_H

#include "frontend/Sema.h"
#include "logic/TermOps.h"

#include <set>

namespace expresso {
namespace analysis {

/// Weakest-precondition engine bound to one analyzed monitor.
class WpEngine {
public:
  WpEngine(logic::TermContext &C, const frontend::SemaInfo &Sema)
      : C(C), Sema(Sema) {}

  /// Weakest precondition of \p Q with respect to \p S, which executes in
  /// the scope of \p InMethod (null for the init block). If \p LocalRename
  /// is non-null, thread-local variables read or written by \p S are renamed
  /// through it first — used when the executing thread is *not* the one
  /// whose locals appear in Q (Section 4.2 / Equation 2 of the paper).
  const logic::Term *wp(const frontend::Stmt *S,
                        const frontend::Method *InMethod,
                        const logic::Term *Q,
                        const logic::Substitution *LocalRename = nullptr);

  /// The variables (lowered) that \p S may modify, after renaming. Ordered
  /// by creation index so havoc renaming assigns fresh variables in a
  /// reproducible order.
  std::set<const logic::Term *, logic::TermIdLess>
  modifiedVars(const frontend::Stmt *S, const frontend::Method *InMethod,
               const logic::Substitution *LocalRename = nullptr);

  /// wp over the whole constructor: declared field initializers (defaults
  /// for non-const uninitialized fields), then the init block. Const fields
  /// without initializers stay symbolic (they are configuration).
  const logic::Term *wpConstructor(const logic::Term *Q);

private:
  const logic::Term *lower(const frontend::Expr *E,
                           const frontend::Method *InMethod,
                           const logic::Substitution *LocalRename);
  const logic::Term *targetVar(const std::string &Name,
                               const frontend::Method *InMethod,
                               const logic::Substitution *LocalRename);

  logic::TermContext &C;
  const frontend::SemaInfo &Sema;
};

} // namespace analysis
} // namespace expresso

#endif // EXPRESSO_ANALYSIS_WP_H
