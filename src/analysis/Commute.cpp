//===- analysis/Commute.cpp - CCR commutativity (§4.3) --------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "analysis/Commute.h"

#include "logic/Simplify.h"
#include "support/Casting.h"

using namespace expresso;
using namespace expresso::analysis;
using namespace expresso::frontend;
using logic::Term;

namespace {

/// Evaluates an expression under a symbolic state: lower, then substitute
/// current symbolic values for every variable.
const Term *evalSym(logic::TermContext &C, const SemaInfo &Sema,
                    const Expr *E, const Method *InMethod,
                    const SymState &State) {
  const Term *Lowered = Sema.lowerExpr(E, InMethod);
  logic::Substitution Subst;
  for (const Term *V : logic::freeVars(Lowered)) {
    auto It = State.find(V);
    if (It != State.end() && It->second != V)
      Subst.emplace(V, It->second);
  }
  return logic::substitute(C, Lowered, Subst);
}

} // namespace

std::optional<SymState> analysis::symExec(logic::TermContext &C,
                                          const SemaInfo &Sema, const Stmt *S,
                                          const Method *InMethod,
                                          SymState State) {
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    return State;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    const Term *V = nullptr;
    if (InMethod)
      V = Sema.localVar(*InMethod, A->target());
    if (!V)
      V = Sema.fieldVar(A->target());
    State[V] = evalSym(C, Sema, A->value(), InMethod, State);
    return State;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    const Term *Arr = Sema.fieldVar(St->array());
    const Term *Cur = State.count(Arr) ? State[Arr] : Arr;
    const Term *Idx = evalSym(C, Sema, St->index(), InMethod, State);
    const Term *Val = evalSym(C, Sema, St->value(), InMethod, State);
    State[Arr] = C.store(Cur, Idx, Val);
    return State;
  }
  case Stmt::Kind::Seq: {
    for (const Stmt *Sub : cast<SeqStmt>(S)->stmts()) {
      auto Next = symExec(C, Sema, Sub, InMethod, std::move(State));
      if (!Next)
        return std::nullopt;
      State = std::move(*Next);
    }
    return State;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    const Term *Cond = evalSym(C, Sema, I->cond(), InMethod, State);
    auto ThenState = symExec(C, Sema, I->thenStmt(), InMethod, State);
    auto ElseState = symExec(C, Sema, I->elseStmt(), InMethod, State);
    if (!ThenState || !ElseState)
      return std::nullopt;
    // Merge: ite per differing variable. Arrays cannot be merged with ite;
    // bail if a branch-dependent array state differs.
    SymState Merged = State;
    std::map<const Term *, const Term *, logic::TermIdLess> All;
    for (const auto &[V, T] : *ThenState)
      All.emplace(V, T);
    for (const auto &[V, T] : *ElseState)
      All.emplace(V, T);
    for (const auto &[V, Unused] : All) {
      (void)Unused;
      const Term *TV = ThenState->count(V) ? (*ThenState)[V]
                       : State.count(V)    ? State[V]
                                           : V;
      const Term *EV = ElseState->count(V) ? (*ElseState)[V]
                       : State.count(V)    ? State[V]
                                           : V;
      if (TV == EV) {
        Merged[V] = TV;
        continue;
      }
      if (V->sort() == logic::Sort::IntArray ||
          V->sort() == logic::Sort::BoolArray)
        return std::nullopt; // branch-dependent array effects
      Merged[V] = C.ite(Cond, TV, EV);
    }
    return Merged;
  }
  case Stmt::Kind::While:
    return std::nullopt; // loops are not loop-free expressible
  case Stmt::Kind::LocalDecl: {
    const auto *L = cast<LocalDeclStmt>(S);
    const Term *V = Sema.localVar(*InMethod, L->name());
    State[V] = evalSym(C, Sema, L->init(), InMethod, State);
    return State;
  }
  }
  return std::nullopt;
}

bool analysis::bodiesCommute(logic::TermContext &C, const SemaInfo &Sema,
                             solver::SmtSolver &Solver, const CcrInfo &A,
                             const CcrInfo &B) {
  // Each role gets its own fresh local seeds: the two executions belong to
  // different threads even when A and B sit in the same method.
  auto seedLocals = [&](const Method *M, const char *Tag) {
    logic::Substitution Seed;
    for (const auto &[Name, V] : Sema.LocalVars)
      if (Name.rfind(M->Name + "::", 0) == 0)
        Seed.emplace(V, C.freshVar(Name + "!" + Tag, V->sort()));
    return Seed;
  };
  logic::Substitution SeedA = seedLocals(A.Parent, "ta");
  logic::Substitution SeedB = seedLocals(B.Parent, "tb");

  auto runOrder = [&](const CcrInfo &First, const logic::Substitution &FSeed,
                      const CcrInfo &Second,
                      const logic::Substitution &SSeed)
      -> std::optional<SymState> {
    SymState S0;
    for (const auto &[V, F] : FSeed)
      S0[V] = F;
    auto S1 = symExec(C, Sema, First.W->Body, First.Parent, std::move(S0));
    if (!S1)
      return std::nullopt;
    // Re-seed the second role's locals (overwriting any collision when both
    // CCRs live in the same method).
    for (const auto &[V, F] : SSeed)
      (*S1)[V] = F;
    return symExec(C, Sema, Second.W->Body, Second.Parent, std::move(*S1));
  };

  auto AB = runOrder(A, SeedA, B, SeedB);
  auto BA = runOrder(B, SeedB, A, SeedA);
  if (!AB || !BA)
    return false;

  // Compare shared variables.
  std::vector<const Term *> Eqs;
  for (const Term *V : Sema.sharedVars()) {
    const Term *VA = AB->count(V) ? (*AB)[V] : V;
    const Term *VB = BA->count(V) ? (*BA)[V] : V;
    if (VA == VB)
      continue;
    if (V->sort() == logic::Sort::IntArray ||
        V->sort() == logic::Sort::BoolArray) {
      // Extensionality with a fresh index.
      const Term *K = C.freshVar("comm!k", logic::Sort::Int);
      const Term *SelA = C.select(VA, K);
      const Term *SelB = C.select(VB, K);
      Eqs.push_back(V->sort() == logic::Sort::BoolArray ? C.iff(SelA, SelB)
                                                        : C.eq(SelA, SelB));
    } else {
      Eqs.push_back(V->sort() == logic::Sort::Bool ? C.iff(VA, VB)
                                                   : C.eq(VA, VB));
    }
  }
  if (Eqs.empty())
    return true;
  return Solver.isValid(logic::simplify(C, C.and_(std::move(Eqs))));
}

bool analysis::commutesWithAll(logic::TermContext &C, const SemaInfo &Sema,
                               solver::SmtSolver &Solver, const CcrInfo &W) {
  for (const CcrInfo &Other : Sema.Ccrs) {
    if (Other.W == W.W)
      continue;
    if (!bodiesCommute(C, Sema, Solver, W, Other))
      return false;
  }
  return true;
}
