//===- analysis/Wp.cpp - Weakest preconditions ----------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "analysis/Wp.h"

#include "support/Casting.h"

using namespace expresso;
using namespace expresso::analysis;
using namespace expresso::frontend;
using logic::Substitution;
using logic::Term;

const Term *WpEngine::lower(const Expr *E, const Method *InMethod,
                            const Substitution *LocalRename) {
  const Term *T = Sema.lowerExpr(E, InMethod);
  if (LocalRename && !LocalRename->empty())
    T = logic::substitute(C, T, *LocalRename);
  return T;
}

const Term *WpEngine::targetVar(const std::string &Name,
                                const Method *InMethod,
                                const Substitution *LocalRename) {
  const Term *V = nullptr;
  if (InMethod)
    V = Sema.localVar(*InMethod, Name);
  if (!V)
    V = Sema.fieldVar(Name);
  if (LocalRename) {
    auto It = LocalRename->find(V);
    if (It != LocalRename->end())
      V = It->second;
  }
  return V;
}

const Term *WpEngine::wp(const Stmt *S, const Method *InMethod, const Term *Q,
                         const Substitution *LocalRename) {
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    return Q;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    const Term *V = targetVar(A->target(), InMethod, LocalRename);
    const Term *E = lower(A->value(), InMethod, LocalRename);
    return logic::substitute(C, Q, V, E);
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    const Term *Arr = Sema.fieldVar(St->array());
    const Term *Idx = lower(St->index(), InMethod, LocalRename);
    const Term *Val = lower(St->value(), InMethod, LocalRename);
    return logic::substitute(C, Q, Arr, C.store(Arr, Idx, Val));
  }
  case Stmt::Kind::Seq: {
    const auto &Stmts = cast<SeqStmt>(S)->stmts();
    const Term *Cur = Q;
    for (auto It = Stmts.rbegin(); It != Stmts.rend(); ++It)
      Cur = wp(*It, InMethod, Cur, LocalRename);
    return Cur;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    const Term *Cond = lower(I->cond(), InMethod, LocalRename);
    const Term *ThenWp = wp(I->thenStmt(), InMethod, Q, LocalRename);
    const Term *ElseWp = wp(I->elseStmt(), InMethod, Q, LocalRename);
    return C.and_(C.implies(Cond, ThenWp), C.implies(C.not_(Cond), ElseWp));
  }
  case Stmt::Kind::While: {
    // havoc(modified); assume(!cond): rename modified vars fresh in
    // (!cond => Q). The fresh variables are implicitly universally
    // quantified — free fresh variables on the consequent side of a
    // validity check mean exactly that.
    const auto *W = cast<WhileStmt>(S);
    Substitution Havoc;
    for (const Term *V : modifiedVars(W->body(), InMethod, LocalRename))
      Havoc.emplace(V, C.freshVar(V->varName() + "!havoc", V->sort()));
    const Term *Cond = lower(W->cond(), InMethod, LocalRename);
    const Term *Exit = C.implies(C.not_(Cond), Q);
    return logic::substitute(C, Exit, Havoc);
  }
  case Stmt::Kind::LocalDecl: {
    const auto *L = cast<LocalDeclStmt>(S);
    const Term *V = targetVar(L->name(), InMethod, LocalRename);
    const Term *E = lower(L->init(), InMethod, LocalRename);
    return logic::substitute(C, Q, V, E);
  }
  }
  return Q;
}

std::set<const Term *, logic::TermIdLess>
WpEngine::modifiedVars(const Stmt *S, const Method *InMethod,
                       const Substitution *LocalRename) {
  std::set<const Term *, logic::TermIdLess> Result;
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    break;
  case Stmt::Kind::Assign:
    Result.insert(
        targetVar(cast<AssignStmt>(S)->target(), InMethod, LocalRename));
    break;
  case Stmt::Kind::Store:
    Result.insert(Sema.fieldVar(cast<StoreStmt>(S)->array()));
    break;
  case Stmt::Kind::Seq:
    for (const Stmt *Sub : cast<SeqStmt>(S)->stmts()) {
      auto Sub2 = modifiedVars(Sub, InMethod, LocalRename);
      Result.insert(Sub2.begin(), Sub2.end());
    }
    break;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    auto T = modifiedVars(I->thenStmt(), InMethod, LocalRename);
    auto E = modifiedVars(I->elseStmt(), InMethod, LocalRename);
    Result.insert(T.begin(), T.end());
    Result.insert(E.begin(), E.end());
    break;
  }
  case Stmt::Kind::While: {
    auto B = modifiedVars(cast<WhileStmt>(S)->body(), InMethod, LocalRename);
    Result.insert(B.begin(), B.end());
    break;
  }
  case Stmt::Kind::LocalDecl:
    Result.insert(
        targetVar(cast<LocalDeclStmt>(S)->name(), InMethod, LocalRename));
    break;
  }
  return Result;
}

const Term *WpEngine::wpConstructor(const Term *Q) {
  // The constructor model, in execution order:
  //   1. every non-const field gets its declared initializer, or the
  //      default (0 / false / empty array);
  //   2. const fields with initializers get them; const fields without
  //      stay symbolic (configuration values constrained by `requires`);
  //   3. the init block runs.
  // wp is computed backwards.
  const Term *Cur = Q;
  if (Sema.M->InitBody)
    Cur = wp(Sema.M->InitBody, nullptr, Cur);
  for (auto It = Sema.M->Fields.rbegin(); It != Sema.M->Fields.rend(); ++It) {
    const frontend::Field &F = *It;
    const Term *V = Sema.fieldVar(F.Name);
    if (F.Init) {
      const Term *InitVal = Sema.lowerExpr(F.Init, nullptr);
      Cur = logic::substitute(C, Cur, V, InitVal);
      continue;
    }
    if (F.IsConst)
      continue; // configuration: stays symbolic
    switch (F.Type) {
    case frontend::TypeKind::Int:
      Cur = logic::substitute(C, Cur, V, C.getZero());
      break;
    case frontend::TypeKind::Bool:
      Cur = logic::substitute(C, Cur, V, C.getFalse());
      break;
    case frontend::TypeKind::IntArray:
    case frontend::TypeKind::BoolArray:
      // Arrays start all-default; model as a fresh symbolic array (sound
      // over-approximation of the all-zero array).
      Cur = logic::substitute(C, Cur, V,
                              C.freshVar(F.Name + "!init", V->sort()));
      break;
    }
  }
  return Cur;
}
