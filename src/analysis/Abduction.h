//===- analysis/Abduction.h - QE-based abductive inference ------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abduction for monitor-invariant candidates (paper §5, Equation 3):
///
///   find ψ with   (1) P ∧ ψ |= Goal    (2) SAT(P ∧ ψ)
///
/// built from scratch on Cooper QE (the paper uses the EXPLAIN tool [16]).
/// For each small subset K of the abducible variables — the monitor's
/// shared scalars, since an invariant must hold for every thread — the
/// weakest solution over K is
///
///   ψ_K = ∀ (Vars(P → Goal) \ K). (P → Goal)
///
/// Candidates are ψ_K itself plus its top-level conjuncts and disjuncts and
/// inequality-strengthened literal variants (e.g. `x != -1` also proposes
/// `x >= 0`); strengthenings remain sufficient, and Algorithm 2's fixpoint
/// keeps only the inductive ones. Every returned candidate is consistent
/// with P.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_ANALYSIS_ABDUCTION_H
#define EXPRESSO_ANALYSIS_ABDUCTION_H

#include "solver/SmtSolver.h"

#include <vector>

namespace expresso {
namespace analysis {

struct AbductionConfig {
  /// Abducible subsets are enumerated smallest-first up to this size (the
  /// full abducible set is always tried as well).
  size_t MaxSubsetSize = 2;
  /// Cap on candidates returned per query.
  size_t MaxCandidates = 16;
  /// Cooperative cancellation: polled per abducible subset; an expired
  /// token cuts the enumeration short (the partial candidate list is
  /// discarded with the rest of the cancelled run). Not owned.
  const support::CancelToken *Cancel = nullptr;
};

/// Computes candidate strengthenings ψ of P sufficient for Goal, over the
/// \p Abducibles vocabulary. May return an empty vector (no abducible
/// explanation in the fragment).
std::vector<const logic::Term *>
abduce(logic::TermContext &C, solver::SmtSolver &Solver,
       const logic::Term *P, const logic::Term *Goal,
       const std::vector<const logic::Term *> &Abducibles,
       const AbductionConfig &Cfg = AbductionConfig());

} // namespace analysis
} // namespace expresso

#endif // EXPRESSO_ANALYSIS_ABDUCTION_H
