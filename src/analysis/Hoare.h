//===- analysis/Hoare.h - Hoare triple checking -----------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hoare-triple validity over monitor statements: `{P} s {Q}` holds iff
/// `P => wp(s, Q)` is valid. This is the exact reduction the paper uses to
/// answer all three placement questions (no-signal, conditional,
/// signal-vs-broadcast).
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_ANALYSIS_HOARE_H
#define EXPRESSO_ANALYSIS_HOARE_H

#include "analysis/Wp.h"
#include "solver/SmtSolver.h"

namespace expresso {
namespace analysis {

/// A Hoare triple over a CCR body (or arbitrary statement).
struct HoareTriple {
  const logic::Term *Pre = nullptr;
  const frontend::Stmt *Body = nullptr;
  const frontend::Method *InMethod = nullptr;
  const logic::Term *Post = nullptr;
  /// Optional renaming of the executing thread's locals (§4.2).
  const logic::Substitution *LocalRename = nullptr;
};

/// Discharges Hoare triples through a WP engine and an SMT backend.
class HoareChecker {
public:
  HoareChecker(logic::TermContext &C, const frontend::SemaInfo &Sema,
               solver::SmtSolver &Solver)
      : C(C), Wp(C, Sema), Solver(Solver) {}

  /// The verification condition `Pre => wp(Body, Post)` of \p T.
  const logic::Term *verificationCondition(const HoareTriple &T);

  /// Three-valued validity of the triple; Unknown is reported as such so
  /// callers can stay conservative.
  solver::Validity check(const HoareTriple &T);

  /// True iff the triple is proved valid (Unknown counts as not proved).
  bool proves(const HoareTriple &T) {
    return check(T) == solver::Validity::Valid;
  }

  WpEngine &wpEngine() { return Wp; }
  solver::SmtSolver &solver() { return Solver; }
  uint64_t numChecks() const { return Checks; }

private:
  logic::TermContext &C;
  WpEngine Wp;
  solver::SmtSolver &Solver;
  uint64_t Checks = 0;
};

} // namespace analysis
} // namespace expresso

#endif // EXPRESSO_ANALYSIS_HOARE_H
