//===- analysis/Abduction.cpp - QE-based abductive inference --------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "analysis/Abduction.h"

#include "logic/Linear.h"
#include "logic/Simplify.h"
#include "logic/TermOps.h"
#include "qe/Cooper.h"

#include <algorithm>
#include <set>

using namespace expresso;
using namespace expresso::analysis;
using logic::Term;

namespace {

/// For a disequality literal `not (a == b)` over integers, proposes the two
/// strict sides `a < b` and `a > b`. Each is strictly stronger than the
/// disequality, so sufficiency is preserved; the consistency filter and
/// Algorithm 2's fixpoint decide which (if either) is useful. This is what
/// turns the abduced `readers != -1` into the paper's `readers >= 0`.
void addDisequalitySides(logic::TermContext &C, const Term *L,
                         std::vector<const Term *> &Out) {
  if (L->kind() != logic::TermKind::Not)
    return;
  const Term *Eq = L->operand(0);
  if (Eq->kind() != logic::TermKind::Eq ||
      Eq->operand(0)->sort() != logic::Sort::Int)
    return;
  const Term *A = Eq->operand(0);
  const Term *B = Eq->operand(1);
  Out.push_back(C.lt(A, B));
  Out.push_back(C.lt(B, A));
}

/// Generates candidate predicates from an abduced ψ: ψ itself, its
/// top-level conjuncts (weaker pieces whose conjunction Algorithm 2 can
/// re-establish), its top-level disjuncts (stronger, still sufficient), and
/// inequality-strengthened variants of disequality literals.
void collectSubCandidates(logic::TermContext &C, const Term *Psi,
                          std::vector<const Term *> &Out) {
  Out.push_back(Psi);
  addDisequalitySides(C, Psi, Out);
  if (Psi->kind() == logic::TermKind::And || Psi->kind() == logic::TermKind::Or)
    for (const Term *Op : Psi->operands()) {
      Out.push_back(Op);
      addDisequalitySides(C, Op, Out);
    }
}

} // namespace

std::vector<const Term *>
analysis::abduce(logic::TermContext &C, solver::SmtSolver &Solver,
                 const Term *P, const Term *Goal,
                 const std::vector<const Term *> &Abducibles,
                 const AbductionConfig &Cfg) {
  const Term *F = logic::simplify(C, C.implies(P, Goal));
  std::vector<const Term *> Result;
  if (F->isTrue())
    return Result; // no strengthening needed

  // Universe of variables to eliminate: everything not kept.
  std::vector<const Term *> AllVars = logic::freeVars(F);

  // Order abducible subsets smallest-first; always end with the full set.
  std::vector<std::vector<const Term *>> Subsets;
  std::vector<const Term *> Relevant;
  for (const Term *A : Abducibles)
    if (std::find(AllVars.begin(), AllVars.end(), A) != AllVars.end())
      Relevant.push_back(A);
  for (size_t Size = 1; Size <= std::min(Cfg.MaxSubsetSize, Relevant.size());
       ++Size) {
    // Enumerate subsets of the given size (combinatorial walk).
    std::vector<size_t> Idx(Size);
    for (size_t I = 0; I < Size; ++I)
      Idx[I] = I;
    for (;;) {
      std::vector<const Term *> Subset;
      for (size_t I : Idx)
        Subset.push_back(Relevant[I]);
      Subsets.push_back(std::move(Subset));
      // Advance combination.
      size_t K = Size;
      while (K > 0 && Idx[K - 1] == Relevant.size() - Size + (K - 1))
        --K;
      if (K == 0)
        break;
      ++Idx[K - 1];
      for (size_t I = K; I < Size; ++I)
        Idx[I] = Idx[I - 1] + 1;
    }
  }
  if (Relevant.size() > Cfg.MaxSubsetSize)
    Subsets.push_back(Relevant);

  std::set<const Term *> Seen;
  for (const auto &Keep : Subsets) {
    if (Result.size() >= Cfg.MaxCandidates)
      break;
    if (Cfg.Cancel && Cfg.Cancel->expired())
      break; // cancelled: QE per subset is the expensive step here
    // Eliminate everything not kept.
    std::vector<const Term *> Elim;
    bool HasArray = false;
    for (const Term *V : AllVars) {
      if (std::find(Keep.begin(), Keep.end(), V) != Keep.end())
        continue;
      if (V->sort() == logic::Sort::IntArray ||
          V->sort() == logic::Sort::BoolArray) {
        HasArray = true;
        break;
      }
      Elim.push_back(V);
    }
    if (HasArray)
      continue; // cannot eliminate array variables
    auto PsiOpt = qe::eliminateForall(C, F, Elim);
    if (!PsiOpt)
      continue;
    const Term *Psi = logic::simplify(C, *PsiOpt);
    if (Psi->isTrue() || Psi->isFalse())
      continue;

    std::vector<const Term *> Candidates;
    collectSubCandidates(C, Psi, Candidates);
    for (const Term *RawCand : Candidates) {
      if (Result.size() >= Cfg.MaxCandidates)
        break;
      const Term *Cand = logic::simplify(C, RawCand);
      if (!Seen.insert(Cand).second)
        continue;
      if (Cand->isTrue() || Cand->isFalse())
        continue;
      // Consistency with P (abduction condition (2)).
      if (!Solver.isSat(C.and_(P, Cand)))
        continue;
      Result.push_back(Cand);
    }
  }
  return Result;
}
