//===- analysis/Invariants.h - Monitor invariant inference ------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 2 (InferMonitorInv): property-directed inference of monitor
/// invariants — assertions that hold whenever a thread enters or exits the
/// monitor.
///
/// Phase 1 runs abduction on every Hoare triple the placement algorithm
/// would generate with I = true, producing a candidate universe Φ.
/// Phase 2 is a Houdini-style fixpoint (monomial predicate abstraction over
/// the abduced predicates): drop every ψ ∈ Φ that fails initiation
/// ({requires} Ctr(M) {ψ}) or consecution ({∧Φ ∧ Guard(w)} Body(w) {ψ});
/// repeat until stable. The conjunction of survivors is a valid monitor
/// invariant by construction.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_ANALYSIS_INVARIANTS_H
#define EXPRESSO_ANALYSIS_INVARIANTS_H

#include "analysis/Abduction.h"
#include "analysis/Hoare.h"
#include "frontend/Sema.h"
#include "solver/SolverFactory.h"

#include <vector>

namespace expresso {
namespace obs {
class Tracer;
}
namespace analysis {

struct InvariantConfig {
  AbductionConfig Abduction;
  /// Cap on total abduction queries (one per failing triple).
  size_t MaxAbductionQueries = 64;
  /// Cap on the candidate universe |Φ|.
  size_t MaxCandidates = 48;
  /// Worker threads for the Houdini fixpoint (initiation filter and
  /// per-candidate consecution checks are independent; a candidate's fate
  /// in a round depends only on its own checks against the round-start
  /// invariant, so any Jobs value yields the same fixpoint). Phase 1
  /// abduction stays serial — its query/candidate caps make it
  /// order-sensitive. 0 = inherit from PlacementOptions::Jobs; 1 = serial.
  unsigned Jobs = 0;
  /// Per-worker backend recipe; required for Jobs > 1 (else serial).
  solver::SolverFactory WorkerSolvers;
  /// Discharge abduction/fixpoint queries through a long-lived solver
  /// session (empty assertion stack — pure context/translation reuse on
  /// native backends) instead of one solver context per query. Answers and
  /// all cache counters are identical either way; placeSignals overrides
  /// this with PlacementOptions::Incremental so one flag governs the whole
  /// analysis.
  bool Incremental = true;
  /// Cooperative cancellation: polled at candidate/round boundaries in both
  /// phases (and forwarded into abduction and the worker backends). An
  /// expired token makes inference wind down with whatever conservative
  /// partial invariant it has — callers discard the whole run anyway.
  /// Not owned; null disables. placeSignals forwards its own token here.
  support::CancelToken *Cancel = nullptr;
  /// Span tracer for phase attribution: abduction, the initiation filter,
  /// each Houdini round, and minimization record spans (solver queries get
  /// their own through the caching tier). Tracing is byte-invisible to the
  /// inferred invariant and every counter — it only reads clocks. Not
  /// owned; null (the default) disables. placeSignals forwards its own
  /// tracer here.
  obs::Tracer *Trace = nullptr;
};

/// Result of invariant inference with simple provenance for tests/benches.
struct InvariantResult {
  const logic::Term *Invariant = nullptr; ///< Conjunction of survivors.
  std::vector<const logic::Term *> Predicates; ///< Surviving ψ's.
  size_t NumCandidates = 0; ///< |Φ| before the fixpoint.
  size_t NumIterations = 0; ///< Fixpoint rounds.
  double AbductionSeconds = 0; ///< Phase 1 (candidate universe) wall time.
  double FixpointSeconds = 0;  ///< Phase 2 (Houdini + minimize) wall time.
  /// checkSat calls issued on private worker backends that the caller's
  /// solver did not see (only non-zero for parallel runs without a shared
  /// CachingSolver — sessions of a shared cache count centrally).
  uint64_t WorkerQueries = 0;
};

/// Runs Algorithm 2 for monitor \p Sema. The triples in Θ are exactly those
/// of PlaceSignals with I = true (no-signal, unconditionality, and
/// single-signal checks).
InvariantResult inferMonitorInvariant(logic::TermContext &C,
                                      const frontend::SemaInfo &Sema,
                                      solver::SmtSolver &Solver,
                                      const InvariantConfig &Cfg =
                                          InvariantConfig());

/// Verifies that \p I is a valid monitor invariant (initiation +
/// consecution). Exposed for tests and for user-supplied invariants.
bool isMonitorInvariant(logic::TermContext &C, const frontend::SemaInfo &Sema,
                        solver::SmtSolver &Solver, const logic::Term *I);

} // namespace analysis
} // namespace expresso

#endif // EXPRESSO_ANALYSIS_INVARIANTS_H
