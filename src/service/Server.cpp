//===- service/Server.cpp - The expressod placement daemon --------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "codegen/Codegen.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "obs/Trace.h"
#include "persist/TermCodec.h"
#include "solver/SolverRig.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace expresso;
using namespace expresso::service;

namespace {

/// Stable outcome names for the request log (and nothing else — the wire
/// carries the enum).
const char *statusName(ResponseStatus S) {
  switch (S) {
  case ResponseStatus::Ok:
    return "ok";
  case ResponseStatus::ParseError:
    return "parse_error";
  case ResponseStatus::SolverUnavailable:
    return "solver_unavailable";
  case ResponseStatus::Rejected:
    return "rejected";
  case ResponseStatus::Draining:
    return "draining";
  case ResponseStatus::Malformed:
    return "malformed";
  case ResponseStatus::InternalError:
    return "internal_error";
  case ResponseStatus::DeadlineExceeded:
    return "deadline_exceeded";
  }
  return "unknown";
}

} // namespace

//===----------------------------------------------------------------------===//
// PlacementService
//===----------------------------------------------------------------------===//

PlacementService::PlacementService(const ServerOptions &Opts)
    : Opts(Opts),
      Budget(Opts.JobsBudget == 0 ? support::ThreadPool::defaultWorkers()
                                  : Opts.JobsBudget),
      Served(Reg.counter("expressod_requests_served_total",
                         "Requests answered (replay hits included)")),
      Executed(Reg.counter("expressod_requests_executed_total",
                           "Requests that ran the full pipeline")),
      ResultHits(Reg.counter("expressod_result_cache_hits_total",
                             "Whole-response replay cache hits")),
      Completed(Reg.counter("expressod_requests_completed_total",
                            "Requests that produced a real answer (Ok)")),
      CancelledRunning(
          Reg.counter("expressod_requests_cancelled_running_total",
                      "Deadlines that fired mid-placement")),
      Latency(Reg.histogram("expressod_request_latency_seconds",
                            obs::Histogram::defaultLatencyBounds(),
                            LatencyWindow,
                            "Admission-to-answer latency of completed "
                            "requests (window percentiles back "
                            "StatusResponse)")) {
  // Resolve the store profile: profile strings must equal the answering
  // backend's name() exactly (that is the store's never-mix-solvers key).
  // An unbuildable kind (requests for it will fail individually) gets no
  // store at all — opening --cache-dir under a guessed profile could
  // rotate another backend's healthy log aside.
  solver::SolverKind Kind = solver::parseSolverKind(Opts.SolverName);
  Profile = solver::backendProfileName(Kind);
  if (Profile.empty())
    return;
  if (Opts.CacheDir.empty())
    Store = persist::QueryStore::createInMemory(Profile);
  else
    Store = persist::QueryStore::openReportingWarnings(
        Opts.CacheDir, Opts.CacheReadOnly, Profile, /*CacheEnabled=*/true);
  if (Store)
    Store->setEvictionPolicy(Opts.Eviction);
}

std::string PlacementService::resultCacheKey(const PlaceRequest &Req) {
  // Everything the response *bytes* are a function of. Jobs, priority, and
  // the bypass flag are deliberately excluded: the parallel engine's
  // determinism contract makes output invariant under Jobs, and the other
  // two are scheduling concerns. Each string field is length-prefixed —
  // Emit/Solver are unconstrained client bytes, so separator characters
  // alone could not prevent two different (Emit, Solver, Source) triples
  // from aliasing to one key.
  std::vector<uint8_t> Bytes;
  persist::ByteWriter B(Bytes);
  B.writeString(Req.Emit);
  B.writeString(Req.Solver);
  B.writeByte(static_cast<uint8_t>((Req.UseInvariant ? 1 : 0) |
                                   (Req.UseCommutativity ? 2 : 0) |
                                   (Req.LazyBroadcast ? 4 : 0) |
                                   (Req.CacheQueries ? 8 : 0) |
                                   (Req.Incremental ? 16 : 0)));
  B.writeString(Req.Source);
  return std::string(reinterpret_cast<const char *>(Bytes.data()),
                     Bytes.size());
}

PlaceResponse PlacementService::run(const PlaceRequest &Req,
                                    double QueueSeconds,
                                    support::CancelToken *Cancel) {
  WallTimer RunTimer;
  std::string Key;
  // A traced request never reads (or below, writes) the replay cache: the
  // attached trace must describe a real run, and replayed responses carry
  // no trace.
  if (Opts.ResultCache && !Req.BypassResultCache && !Req.WantTrace) {
    Key = resultCacheKey(Req);
    std::lock_guard<std::mutex> Lock(ResultMu);
    auto It = ResultCache.find(Key);
    if (It != ResultCache.end()) {
      PlaceResponse R = It->second;
      R.Replayed = true;
      R.QueueSeconds = QueueSeconds;
      ResultHits.inc();
      Served.inc();
      noteCompleted(QueueSeconds + RunTimer.elapsedSeconds());
      return R;
    }
  }

  // The tracer lives exactly as long as the pipeline run: execute() returns
  // only after placeSignals' pool tasks joined, which is the quiescence the
  // export below requires.
  std::unique_ptr<obs::Tracer> Tracer;
  if (Req.WantTrace)
    Tracer = std::make_unique<obs::Tracer>();

  PlaceResponse R = execute(Req, Cancel, Tracer.get());
  // Total wait = scheduler queue + budget contention inside execute().
  R.QueueSeconds += QueueSeconds;
  if (Tracer)
    R.TraceJson = Tracer->exportChromeJson();

  // Resident-store lifecycle: a long-lived daemon must enforce its size
  // policy while serving, not only at exit — otherwise the warm tier grows
  // without bound for the process lifetime. Compaction is batched (every
  // CompactEvery executed requests) because it takes the store's exclusive
  // lock and rewrites the log.
  if (Executed.inc() % CompactEvery == 0 && Opts.Eviction.enabled())
    compactStore();

  // Only Ok responses enter the replay cache — a DeadlineExceeded answer
  // in particular must never be replayed to a later patient client.
  if (!Key.empty() && R.Status == ResponseStatus::Ok) {
    std::lock_guard<std::mutex> Lock(ResultMu);
    if (ResultCache.emplace(Key, R).second) {
      ResultOrder.push_back(Key);
      while (ResultOrder.size() > Opts.ResultCacheCap) {
        ResultCache.erase(ResultOrder.front());
        ResultOrder.pop_front();
      }
    }
  }
  Served.inc();
  if (R.Status == ResponseStatus::DeadlineExceeded)
    CancelledRunning.inc();
  else if (R.Status == ResponseStatus::Ok)
    noteCompleted(QueueSeconds + RunTimer.elapsedSeconds());
  return R;
}

void PlacementService::noteCompleted(double LatencySeconds) {
  Completed.inc();
  Latency.observe(LatencySeconds);
}

void PlacementService::latencyPercentiles(double &P50, double &P99) const {
  P50 = Latency.percentile(0.5);
  P99 = Latency.percentile(0.99);
}

PlaceResponse PlacementService::execute(const PlaceRequest &Req,
                                        support::CancelToken *Cancel,
                                        obs::Tracer *Trace) {
  PlaceResponse R;
  WallTimer Timer;

  // The CLI pipeline, verbatim, against a request-private TermContext.
  solver::SolverKind Kind = solver::parseSolverKind(Req.Solver);
  logic::TermContext C;
  DiagnosticEngine Diags;
  obs::Span ParseSpan(Trace, "parse");
  std::unique_ptr<frontend::Monitor> M = frontend::parseMonitor(Req.Source,
                                                                Diags);
  ParseSpan.finish();
  if (!M) {
    R.Status = ResponseStatus::ParseError;
    R.Error = Diags.str();
    return R;
  }
  obs::Span SemaSpan(Trace, "sema");
  std::unique_ptr<frontend::SemaInfo> Sema = frontend::analyze(*M, C, Diags);
  SemaSpan.finish();
  if (!Sema) {
    R.Status = ResponseStatus::ParseError;
    R.Error = Diags.str();
    return R;
  }

  // Lease parallelism out of the shared budget only once real solver work
  // is imminent (a parse error must not queue behind a wide placement).
  // Time blocked here is budget contention, not analysis: it lands in
  // QueueSeconds (run() adds the scheduler wait on top) and is subtracted
  // from AnalysisSeconds below.
  WallTimer BudgetTimer;
  support::JobBudget::Lease Lease = Budget.acquire(Req.Jobs);
  double BudgetWait = BudgetTimer.elapsedSeconds();
  R.QueueSeconds = BudgetWait;

  // Budget contention may have eaten the whole deadline; bail before any
  // solver work (acquire itself is not interruptible — the lease was worth
  // waiting for only if time remains).
  if (Cancel && Cancel->expired()) {
    R.Status = ResponseStatus::DeadlineExceeded;
    R.Error = "deadline exceeded waiting for the job budget";
    return R;
  }

  // Cross-daemon pickup: a fleet of daemons sharing one --cache-dir sees
  // each other's appends at request granularity.
  if (Store && Req.CacheQueries && !Store->inMemory())
    Store->refresh();

  solver::SolverRig Rig = solver::buildSolverRig(
      C, Kind, Req.CacheQueries, Req.CacheQueries ? Store : nullptr);
  if (!Rig) {
    R.Status = ResponseStatus::SolverUnavailable;
    R.Error = "solver backend '" + Req.Solver +
              "' is not available in this build";
    return R;
  }
  R.StoreSkipped = Rig.StoreProfileMismatch;

  core::PlacementOptions POpts;
  POpts.UseInvariant = Req.UseInvariant;
  POpts.UseCommutativity = Req.UseCommutativity;
  POpts.LazyBroadcast = Req.LazyBroadcast;
  POpts.CacheQueries = Req.CacheQueries;
  POpts.Incremental = Req.Incremental;
  POpts.Jobs = Lease.slots();
  // Unconditionally, exactly like the CLI: serial runs still mint session
  // backends from the factory (the incremental engine is per-worker even
  // at Jobs == 1).
  POpts.WorkerSolvers = solver::SolverFactory(Kind);
  POpts.Cancel = Cancel;
  POpts.Trace = Trace;

  core::PlacementResult Result = core::placeSignals(C, *Sema, Rig.solver(),
                                                    POpts);
  R.AnalysisSeconds = Timer.elapsedSeconds() - BudgetWait;

  if (Result.Cancelled) {
    // The pipeline wound down cooperatively. Report the partial stats (they
    // tell the client how far it got) but no artifact — a cancelled run's
    // decisions are incomplete and must not look like an answer. Nothing
    // was published into the shared store (CachingSolver gates appends on
    // the same token) and run() refuses to replay-cache this status.
    const core::PlacementStats &S = Result.Stats;
    R.HoareChecks = S.HoareChecks;
    R.SolverQueries = S.SolverQueries;
    R.CacheHits = S.Cache.Hits;
    R.CacheMisses = S.Cache.Misses;
    R.SharedHits = S.Cache.DiskHits;
    R.SharedMisses = S.Cache.DiskMisses;
    R.PairsConsidered = S.PairsConsidered;
    R.InvariantSeconds = S.InvariantSeconds;
    R.JobsUsed = S.JobsUsed;
    R.SolverName = Rig.solver().name();
    R.Status = ResponseStatus::DeadlineExceeded;
    R.Error = "deadline exceeded during placement";
    return R;
  }

  obs::Span EmitSpan(Trace, "emit");
  if (Req.Emit == "cpp")
    R.Artifact = codegen::emitCpp(Result);
  else if (Req.Emit == "java")
    R.Artifact = codegen::emitJava(Result);
  else if (Req.Emit == "ir")
    R.Artifact = codegen::printTargetIr(Result);
  else
    R.Artifact = Result.summary();
  EmitSpan.finish();
  R.DecisionSummary = Result.decisionSummary();
  R.SolverName = Rig.solver().name();

  const core::PlacementStats &S = Result.Stats;
  R.HoareChecks = S.HoareChecks;
  R.SolverQueries = S.SolverQueries;
  R.CacheHits = S.Cache.Hits;
  R.CacheMisses = S.Cache.Misses;
  R.SharedHits = S.Cache.DiskHits;
  R.SharedMisses = S.Cache.DiskMisses;
  R.PairsConsidered = S.PairsConsidered;
  R.NoSignalProved = S.NoSignalProved;
  R.Signals = S.Signals;
  R.Broadcasts = S.Broadcasts;
  R.Unconditional = S.Unconditional;
  R.CommutativityWins = S.CommutativityWins;
  R.InvariantSeconds = S.InvariantSeconds;
  R.JobsUsed = S.JobsUsed;
  R.Status = ResponseStatus::Ok;
  return R;
}

void PlacementService::compactStore() {
  if (Store && !Store->readOnly() && Store->evictionPolicy().enabled())
    Store->compact();
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(const ServerOptions &Opts) : Opts(Opts), Core(Opts) {
  RequestScheduler::Options SchedOpts;
  SchedOpts.Workers = Opts.Workers;
  SchedOpts.MaxQueue = Opts.QueueDepth;
  Sched = std::make_unique<RequestScheduler>(SchedOpts);
}

Server::~Server() {
  if (!ShutdownFlagged.load()) {
    requestShutdown(/*Drain=*/false);
  }
  // wait() may already have run; it is idempotent about the teardown steps.
  wait();
}

#ifndef _WIN32

bool Server::start(std::string *Error) {
  if (!Opts.RequestLogPath.empty()) {
    RequestLog.open(Opts.RequestLogPath, std::ios::app);
    if (!RequestLog) {
      if (Error)
        *Error = "cannot open request log " + Opts.RequestLogPath + ": " +
                 std::strerror(errno);
      return false;
    }
  }
  ListenFd = listenUnix(Opts.SocketPath, /*Backlog=*/64, Error);
  if (ListenFd < 0)
    return false;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    AcceptingConnections = true;
  }
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  int BackoffMs = 1;
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      // Transient pressure must not permanently kill the acceptor: fd
      // exhaustion (EMFILE/ENFILE — connections in flight will close and
      // free slots), a peer that reset before we got to it (ECONNABORTED,
      // EPROTO), or momentary kernel memory pressure (ENOBUFS/ENOMEM).
      // Back off briefly and retry; only a genuinely dead listen socket
      // (EBADF/EINVAL after shutdown() teardown, or anything unknown)
      // ends the loop.
      if (errno == ECONNABORTED || errno == EPROTO || errno == EMFILE ||
          errno == ENFILE || errno == ENOBUFS || errno == ENOMEM ||
          errno == EAGAIN || errno == EWOULDBLOCK) {
        if (ShutdownFlagged.load())
          return; // teardown in progress: stop retrying
        std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
        BackoffMs = BackoffMs < 64 ? BackoffMs * 2 : 100;
        continue;
      }
      return; // listen socket shut down (or fatal): stop accepting
    }
    BackoffMs = 1;
    // Reap handlers that exited since the last accept (joins happen
    // outside the lock), so a long-lived daemon serving many short
    // connections never accumulates unjoined threads.
    std::vector<std::thread> Reap;
    bool Track = false;
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      Reap.swap(Finished);
      if (AcceptingConnections) {
        Connections.emplace(Fd, std::thread([this, Fd] {
                              connectionLoop(Fd);
                            }));
        Track = true;
      }
    }
    for (std::thread &T : Reap)
      T.join();
    if (!Track)
      ::close(Fd); // drain began between accept and tracking
  }
}

bool Server::sendPlaceResponse(int Fd, const PlaceResponse &R) {
  std::vector<uint8_t> Payload;
  R.encode(Payload);
  return sendFrame(Fd, MsgType::PlaceResponse, Payload);
}

void Server::handlePlace(int Fd, const std::vector<uint8_t> &Payload) {
  PlaceRequest Req;
  if (!PlaceRequest::decode(Payload.data(), Payload.size(), Req)) {
    ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    PlaceResponse R;
    R.Status = ResponseStatus::Malformed;
    R.Error = "malformed PlaceRequest payload";
    R.TraceId = TraceIds.fetch_add(1, std::memory_order_relaxed) + 1;
    logRequest(R.TraceId, nullptr, R, 0);
    sendPlaceResponse(Fd, R);
    return;
  }

  // Deadline starts at admission: the clock covers queueing, budget
  // contention, and the placement itself. The request's own deadline wins
  // over the daemon-wide default.
  std::shared_ptr<support::CancelToken> Tok;
  uint64_t DeadlineMs =
      Req.DeadlineMs != 0 ? Req.DeadlineMs : Opts.DefaultDeadlineMs;
  if (DeadlineMs != 0) {
    Tok = std::make_shared<support::CancelToken>();
    Tok->setDeadlineAfterSeconds(static_cast<double>(DeadlineMs) / 1000.0);
  }

  // Hand the request to the scheduler and block this (cheap, connection-
  // bound) thread on the outcome; execution width is the scheduler's.
  auto Done = std::make_shared<std::promise<PlaceResponse>>();
  std::future<PlaceResponse> Future = Done->get_future();
  WallTimer QueueTimer;
  bool Admitted = Sched->submit(
      Req.Prio,
      [this, Req, Done, QueueTimer, Tok] {
        // An exception out of the pipeline must neither kill the worker
        // (std::terminate) nor leave the client hanging: answer
        // InternalError and keep serving.
        PlaceResponse Resp;
        try {
          Resp = Core.run(Req, QueueTimer.elapsedSeconds(), Tok.get());
        } catch (const std::exception &E) {
          Resp = PlaceResponse();
          Resp.Status = ResponseStatus::InternalError;
          Resp.Error = std::string("internal error: ") + E.what();
        } catch (...) {
          Resp = PlaceResponse();
          Resp.Status = ResponseStatus::InternalError;
          Resp.Error = "internal error";
        }
        Done->set_value(std::move(Resp));
      },
      Tok,
      [Done, QueueTimer] {
        // Deadline fired while still queued: answer without burning a
        // worker on work that is already late.
        PlaceResponse Resp;
        Resp.Status = ResponseStatus::DeadlineExceeded;
        Resp.Error = "deadline exceeded while queued";
        Resp.QueueSeconds = QueueTimer.elapsedSeconds();
        Done->set_value(std::move(Resp));
      });
  PlaceResponse R;
  if (!Admitted) {
    R.Status = Sched->shuttingDown() ? ResponseStatus::Draining
                                     : ResponseStatus::Rejected;
    R.Error = Sched->shuttingDown()
                  ? "daemon is draining"
                  : "request queue is full, retry later";
  } else {
    try {
      R = Future.get();
    } catch (const std::future_error &) {
      // stop() discarded the queued task (drain would have run it).
      R = PlaceResponse();
      R.Status = ResponseStatus::Draining;
      R.Error = "daemon shut down before the request ran";
    }
  }
  // The trace id is assigned at answer time (monotonic, covers rejected
  // and drained requests too) so every response — and every request-log
  // line — carries one.
  R.TraceId = TraceIds.fetch_add(1, std::memory_order_relaxed) + 1;
  logRequest(R.TraceId, &Req, R, DeadlineMs);
  sendPlaceResponse(Fd, R);
}

void Server::logRequest(uint64_t TraceId, const PlaceRequest *Req,
                        const PlaceResponse &R, uint64_t DeadlineMs) {
  if (!RequestLog.is_open())
    return;
  // One self-contained JSON object per line (JSONL): greppable live,
  // parseable after the fact. Fixed "%.6f" for seconds keeps lines stable
  // across platforms.
  char Buf[128];
  std::string Line = "{\"trace_id\":" + std::to_string(TraceId);
  Line += ",\"outcome\":\"";
  Line += statusName(R.Status);
  Line += "\"";
  std::snprintf(Buf, sizeof(Buf),
                ",\"queue_seconds\":%.6f,\"run_seconds\":%.6f",
                R.QueueSeconds, R.AnalysisSeconds);
  Line += Buf;
  Line += ",\"deadline_ms\":" + std::to_string(DeadlineMs);
  Line += ",\"jobs_leased\":" + std::to_string(R.JobsUsed);
  Line += ",\"solver_queries\":" + std::to_string(R.SolverQueries);
  Line += ",\"cache_hits\":" + std::to_string(R.CacheHits);
  Line += ",\"cache_misses\":" + std::to_string(R.CacheMisses);
  Line += ",\"shared_hits\":" + std::to_string(R.SharedHits);
  Line += ",\"shared_misses\":" + std::to_string(R.SharedMisses);
  Line += R.Replayed ? ",\"replayed\":true" : ",\"replayed\":false";
  Line += R.TraceJson.empty() ? ",\"traced\":false" : ",\"traced\":true";
  if (Req) {
    Line += ",\"emit\":\"" + obs::jsonEscape(Req->Emit) + "\"";
    Line += ",\"solver\":\"" + obs::jsonEscape(Req->Solver) + "\"";
  }
  Line += "}\n";
  std::lock_guard<std::mutex> Lock(LogMu);
  RequestLog << Line;
  RequestLog.flush(); // a crashed daemon must not owe anyone log lines
}

void Server::connectionLoop(int Fd) {
  for (;;) {
    MsgType Type;
    std::vector<uint8_t> Payload;
    if (!recvFrame(Fd, Type, Payload))
      break; // EOF or malformed frame: fail closed, no resync
    if (Type == MsgType::PlaceRequest) {
      handlePlace(Fd, Payload);
    } else if (Type == MsgType::StatusRequest) {
      StatusResponse S = status();
      std::vector<uint8_t> Out;
      S.encode(Out);
      if (!sendFrame(Fd, MsgType::StatusResponse, Out))
        break;
    } else if (Type == MsgType::MetricsRequest) {
      MetricsResponse MR;
      MR.Text = metricsText();
      std::vector<uint8_t> Out;
      MR.encode(Out);
      if (!sendFrame(Fd, MsgType::MetricsResponse, Out))
        break;
    } else if (Type == MsgType::ShutdownRequest) {
      ShutdownRequest SR;
      if (!ShutdownRequest::decode(Payload.data(), Payload.size(), SR))
        break;
      std::vector<uint8_t> Out; // empty ack payload
      sendFrame(Fd, MsgType::ShutdownResponse, Out);
      requestShutdown(SR.Drain);
      // Keep reading: wait() will SHUT_RD this connection when teardown
      // reaches it, and the client usually just closes after the ack.
    } else {
      ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      std::vector<uint8_t> Out;
      sendFrame(Fd, MsgType::ErrorResponse, Out);
      break; // a peer speaking the wrong direction: close
    }
  }
  // Unregister before closing so wait() never touches a recycled fd.
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    auto It = Connections.find(Fd);
    if (It != Connections.end()) {
      Finished.push_back(std::move(It->second));
      Connections.erase(It);
    }
  }
  ::close(Fd);
}

void Server::requestShutdown(bool Drain) {
  // The flag flips under ShutdownMu: wait() checks its predicate under the
  // same mutex, so the notify can never land in the window between a false
  // predicate check and the wait going to sleep (the classic lost wakeup).
  {
    std::lock_guard<std::mutex> Lock(ShutdownMu);
    bool Expected = false;
    if (!ShutdownFlagged.compare_exchange_strong(Expected, true))
      return; // first request wins (a drain cannot be upgraded mid-flight)
    ShutdownDrain.store(Drain);
  }
  ShutdownCv.notify_all();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> Lock(ShutdownMu);
    ShutdownCv.wait(Lock, [&] { return ShutdownFlagged.load(); });
  }

  // 1. Stop taking connections and wake the acceptor.
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    AcceptingConnections = false;
  }
  if (ListenFd >= 0) {
    ::shutdown(ListenFd, SHUT_RDWR);
    // Self-connect fallback: some kernels leave a blocked accept() sleeping
    // after shutdown(); a doomed connection guarantees it wakes.
    int Poke = connectUnix(Opts.SocketPath, nullptr);
    if (Poke >= 0)
      ::close(Poke);
  }
  if (Acceptor.joinable())
    Acceptor.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
  }

  // 2. Settle the queue: drain runs everything admitted; stop discards the
  // queue (handlePlace answers those clients Draining via the broken
  // promise). Either way every in-flight placement completes and its
  // response is written by its connection thread.
  if (ShutdownDrain.load())
    Sched->drain();
  else
    Sched->stop();

  // 3. Wake idle connection threads (SHUT_RD: pending response writes
  // still flush) and join everything.
  for (;;) {
    std::thread T;
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      if (!Finished.empty()) {
        T = std::move(Finished.back());
        Finished.pop_back();
      } else if (!Connections.empty()) {
        ::shutdown(Connections.begin()->first, SHUT_RD);
      } else {
        break;
      }
    }
    if (T.joinable())
      T.join();
    else
      std::this_thread::yield(); // a poked connection is on its way out
  }

  // 4. Store lifecycle: apply the eviction policy before the process goes
  // away (the daemon is the store's janitor; one-shot CLI runs are not).
  Core.compactStore();
}

#else // _WIN32

bool Server::start(std::string *Error) {
  if (Error)
    *Error = "the placement service is not supported on this platform";
  return false;
}
void Server::acceptLoop() {}
void Server::connectionLoop(int) {}
void Server::handlePlace(int, const std::vector<uint8_t> &) {}
bool Server::sendPlaceResponse(int, const PlaceResponse &) { return false; }
void Server::logRequest(uint64_t, const PlaceRequest *, const PlaceResponse &,
                        uint64_t) {}
void Server::requestShutdown(bool) { ShutdownFlagged.store(true); }
void Server::wait() {}

#endif

int Server::serveForever(std::string *Error) {
  if (!start(Error))
    return 1;
  wait();
  return 0;
}

StatusResponse Server::status() const {
  StatusResponse S;
  S.RequestsServed = Core.requestsServed();
  SchedulerStats Sc = Sched->stats();
  S.RequestsActive = Sc.ActiveNow;
  S.RequestsQueued = Sc.QueuedNow;
  S.RequestsRejected = Sc.Rejected;
  S.RequestsRejectedFull = Sc.RejectedFull;
  S.RequestsRejectedDraining = Sc.RejectedDraining;
  S.RequestsExpiredQueued = Sc.ExpiredQueued;
  S.RequestsCancelledRunning = Core.requestsCancelledRunning();
  S.RequestsCompleted = Core.requestsCompleted();
  Core.latencyPercentiles(S.LatencyP50Seconds, S.LatencyP99Seconds);
  S.ResultCacheHits = Core.resultCacheHits();
  // const_cast-free store access: stats are logically const.
  PlacementService &Svc = const_cast<PlacementService &>(Core);
  if (persist::QueryStore *St = Svc.store()) {
    S.StoreRecords = St->size();
    S.StoreEvicted = St->stats().evicted();
    S.StoreProfile = St->profile();
    S.StoreDir = St->directory();
  }
  S.JobsBudget = Svc.budget().total();
  S.JobsAvailable = Svc.budget().available();
  S.UptimeSeconds = Uptime.elapsedSeconds();
  S.Draining = Sched->shuttingDown();
  return S;
}

std::string Server::metricsText() {
  // The core's counters/histogram are live in the registry; point-in-time
  // values owned elsewhere (scheduler atomics, budget, store, the uptime
  // clock) are surfaced as gauges refreshed at render time — the scheduler
  // keeps its own deterministic accounting and the registry mirrors it
  // rather than owning it.
  obs::Registry &Reg = Core.metrics();
  SchedulerStats Sc = Sched->stats();
  Reg.gauge("expressod_requests_active", "Placements running now")
      .set(static_cast<double>(Sc.ActiveNow));
  Reg.gauge("expressod_requests_queued", "Requests admitted, not yet running")
      .set(static_cast<double>(Sc.QueuedNow));
  Reg.gauge("expressod_requests_submitted", "Requests offered to admission")
      .set(static_cast<double>(Sc.Submitted));
  Reg.gauge("expressod_requests_rejected", "Admission rejections (total)")
      .set(static_cast<double>(Sc.Rejected));
  Reg.gauge("expressod_requests_rejected_full", "Rejected: queue at capacity")
      .set(static_cast<double>(Sc.RejectedFull));
  Reg.gauge("expressod_requests_rejected_draining",
            "Rejected: daemon shutting down")
      .set(static_cast<double>(Sc.RejectedDraining));
  Reg.gauge("expressod_requests_expired_queued",
            "Deadlines that fired while still queued")
      .set(static_cast<double>(Sc.ExpiredQueued));
  Reg.gauge("expressod_jobs_budget", "Global worker-slot budget")
      .set(static_cast<double>(Core.budget().total()));
  Reg.gauge("expressod_jobs_available", "Worker slots currently free")
      .set(static_cast<double>(Core.budget().available()));
  if (persist::QueryStore *St = Core.store()) {
    Reg.gauge("expressod_store_records", "Shared query-store records")
        .set(static_cast<double>(St->size()));
    Reg.gauge("expressod_store_evicted", "Records evicted by compaction")
        .set(static_cast<double>(St->stats().evicted()));
  }
  Reg.gauge("expressod_protocol_errors", "Malformed frames/payloads seen")
      .set(static_cast<double>(ProtocolErrors.load(std::memory_order_relaxed)));
  Reg.gauge("expressod_uptime_seconds", "Seconds since daemon start")
      .set(Uptime.elapsedSeconds());
  return Reg.renderText();
}
