//===- service/Client.cpp - expressod client ----------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cerrno>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

using namespace expresso;
using namespace expresso::service;

std::unique_ptr<ServiceClient> ServiceClient::connect(
    const std::string &SocketPath, std::string *Error) {
  int Fd = connectUnix(SocketPath, Error);
  if (Fd < 0)
    return nullptr;
  return std::unique_ptr<ServiceClient>(new ServiceClient(Fd));
}

ServiceClient::~ServiceClient() {
#ifndef _WIN32
  if (Fd >= 0)
    ::close(Fd);
#endif
}

bool ServiceClient::setReceiveTimeout(double Seconds) {
#ifndef _WIN32
  if (Fd < 0)
    return false;
  struct timeval Tv;
  if (Seconds <= 0) {
    Tv.tv_sec = 0;
    Tv.tv_usec = 0; // zero timeval = blocking again
  } else {
    Tv.tv_sec = static_cast<time_t>(Seconds);
    Tv.tv_usec = static_cast<suseconds_t>(
        (Seconds - static_cast<double>(Tv.tv_sec)) * 1e6);
    if (Tv.tv_sec == 0 && Tv.tv_usec == 0)
      Tv.tv_usec = 1; // sub-microsecond ask: the smallest non-zero bound
  }
  return ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) == 0;
#else
  (void)Seconds;
  return false;
#endif
}

bool ServiceClient::roundTrip(MsgType SendType,
                              const std::vector<uint8_t> &Payload,
                              MsgType WantType, std::vector<uint8_t> &Reply,
                              std::string *Error) {
  if (Fd < 0) {
    if (Error)
      *Error = "not connected";
    return false;
  }
  if (!sendFrame(Fd, SendType, Payload)) {
    if (Error)
      *Error = "cannot send request (daemon gone?)";
    return false;
  }
  MsgType GotType;
  if (!recvFrame(Fd, GotType, Reply)) {
    if (Error)
      *Error = errno == EAGAIN || errno == EWOULDBLOCK
                   ? "timed out waiting for expressod reply"
                   : "connection closed or malformed reply";
    return false;
  }
  if (GotType != WantType) {
    if (Error)
      *Error = GotType == MsgType::ErrorResponse
                   ? "daemon rejected the request (protocol error)"
                   : "unexpected reply type";
    return false;
  }
  return true;
}

bool ServiceClient::place(const PlaceRequest &Req, PlaceResponse &Out,
                          std::string *Error) {
  std::vector<uint8_t> Payload, Reply;
  Req.encode(Payload);
  if (!roundTrip(MsgType::PlaceRequest, Payload, MsgType::PlaceResponse,
                 Reply, Error))
    return false;
  if (!PlaceResponse::decode(Reply.data(), Reply.size(), Out)) {
    if (Error)
      *Error = "malformed PlaceResponse payload";
    return false;
  }
  return true;
}

bool ServiceClient::status(StatusResponse &Out, std::string *Error) {
  std::vector<uint8_t> Payload, Reply;
  if (!roundTrip(MsgType::StatusRequest, Payload, MsgType::StatusResponse,
                 Reply, Error))
    return false;
  if (!StatusResponse::decode(Reply.data(), Reply.size(), Out)) {
    if (Error)
      *Error = "malformed StatusResponse payload";
    return false;
  }
  return true;
}

bool ServiceClient::metrics(std::string &Out, std::string *Error) {
  std::vector<uint8_t> Payload, Reply;
  if (!roundTrip(MsgType::MetricsRequest, Payload, MsgType::MetricsResponse,
                 Reply, Error))
    return false;
  MetricsResponse MR;
  if (!MetricsResponse::decode(Reply.data(), Reply.size(), MR)) {
    if (Error)
      *Error = "malformed MetricsResponse payload";
    return false;
  }
  Out = std::move(MR.Text);
  return true;
}

bool ServiceClient::shutdown(bool Drain, std::string *Error) {
  ShutdownRequest SR;
  SR.Drain = Drain;
  std::vector<uint8_t> Payload, Reply;
  SR.encode(Payload);
  return roundTrip(MsgType::ShutdownRequest, Payload,
                   MsgType::ShutdownResponse, Reply, Error);
}
