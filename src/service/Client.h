//===- service/Client.h - expressod client ----------------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin client side of the placement service: connect to a daemon's
/// Unix socket, run request/response round trips, fail closed on anything
/// the protocol layer rejects. Used by `expresso --connect`, the bench
/// harness's serving measurements, and the service tests.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SERVICE_CLIENT_H
#define EXPRESSO_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <memory>
#include <string>

namespace expresso {
namespace service {

/// One connection to a running expressod. Not thread-safe (one round trip
/// at a time); open one client per concurrent caller.
class ServiceClient {
public:
  /// Connects to the daemon at \p SocketPath. Null (with \p Error) when the
  /// socket cannot be reached.
  static std::unique_ptr<ServiceClient> connect(const std::string &SocketPath,
                                                std::string *Error = nullptr);
  ~ServiceClient();

  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  /// Bounds every subsequent recv (SO_RCVTIMEO): if the daemon wedges, the
  /// round trip fails with a clear timeout message instead of blocking the
  /// client forever. Non-positive \p Seconds clears the bound. Callers
  /// sending a deadline should allow slack on top of it — the daemon's
  /// cooperative wind-down takes a poll interval, and a DeadlineExceeded
  /// *response* still has to travel back. False when the socket option
  /// cannot be set.
  bool setReceiveTimeout(double Seconds);

  /// One placement round trip. False (with \p Error) on connection or
  /// protocol failure; \p Out.Status distinguishes daemon-side outcomes.
  bool place(const PlaceRequest &Req, PlaceResponse &Out,
             std::string *Error = nullptr);

  /// Daemon introspection round trip.
  bool status(StatusResponse &Out, std::string *Error = nullptr);

  /// Fetches the daemon's metrics dump (protocol v3). \p Out receives the
  /// registry's stable text rendering.
  bool metrics(std::string &Out, std::string *Error = nullptr);

  /// Asks the daemon to shut down (drain or abort the queue). True once the
  /// daemon acknowledged.
  bool shutdown(bool Drain, std::string *Error = nullptr);

private:
  explicit ServiceClient(int Fd) : Fd(Fd) {}
  bool roundTrip(MsgType SendType, const std::vector<uint8_t> &Payload,
                 MsgType WantType, std::vector<uint8_t> &Reply,
                 std::string *Error);

  int Fd = -1;
};

} // namespace service
} // namespace expresso

#endif // EXPRESSO_SERVICE_CLIENT_H
