//===- service/Protocol.h - expressod wire protocol -------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed binary protocol the placement daemon (`expressod`)
/// speaks over its Unix-domain socket. One frame carries one message:
///
///   frame := u32 magic "XSV1", u8 protocolVersion, u8 msgType,
///            u32 payloadLen, u64 fnv1a(payload), payload
///
/// All integers little-endian (the fixed-width ones) or LEB128 varints (in
/// payloads, via persist::ByteWriter — the same primitives as the query
/// store, so the service and the store fail closed the same way). Every
/// decode path is bounds-checked and rejects trailing garbage; a malformed,
/// truncated, oversized, or checksum-failing frame terminates the
/// connection rather than being half-trusted. The checksum guards against
/// torn writes, not adversaries — the socket is a filesystem object with
/// filesystem permissions.
///
/// A connection carries any number of sequential request/response pairs
/// (the client writes a request, reads the response, repeats). Message
/// kinds:
///
///   PlaceRequest/PlaceResponse   — one placement analysis (the payload
///                                  mirrors the CLI surface: spec source,
///                                  emit kind, solver, option flags, jobs,
///                                  priority)
///   StatusRequest/StatusResponse — daemon introspection (queue depth,
///                                  budget, shared-cache size, uptime)
///   ShutdownRequest/…Response    — ask the daemon to drain and exit
///   ErrorResponse                — protocol-level rejection (bad version,
///                                  unknown message type)
///   MetricsRequest/…Response     — the daemon's full obs::Registry as a
///                                  stable text dump (v3; empty request
///                                  payload, like StatusRequest)
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SERVICE_PROTOCOL_H
#define EXPRESSO_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace expresso {
namespace service {

/// Bumped on any wire-format change; the daemon answers a client speaking a
/// newer version with ErrorResponse instead of guessing. Version 2 added
/// request deadlines (PlaceRequest::DeadlineMs, ResponseStatus::
/// DeadlineExceeded) and the outcome/latency fields of StatusResponse.
/// Version 3 added per-request tracing (PlaceRequest::WantTrace,
/// PlaceResponse::TraceId/TraceJson) and the Metrics message pair. All
/// additions are appended and decoded only when present, so version-1 and
/// version-2 frames remain accepted (see MinProtocolVersion).
constexpr uint8_t ProtocolVersion = 3;

/// Oldest frame version still accepted (v1/v2 payloads are strict prefixes
/// of v3 payloads, so the decoders handle all of them).
constexpr uint8_t MinProtocolVersion = 1;

/// "XSV1" little-endian.
constexpr uint32_t FrameMagic = 0x31565358u;

/// Upper bound for one frame payload (a monitor spec plus emitted artifact
/// is tiny; 64 MiB is already absurdly generous — anything larger is
/// corruption or abuse and fails closed).
constexpr size_t MaxFramePayload = 1u << 26;

enum class MsgType : uint8_t {
  PlaceRequest = 1,
  PlaceResponse = 2,
  StatusRequest = 3,
  StatusResponse = 4,
  ShutdownRequest = 5,
  ShutdownResponse = 6,
  ErrorResponse = 7,
  MetricsRequest = 8,  ///< v3; empty payload
  MetricsResponse = 9, ///< v3; obs::Registry text dump
};

enum class Priority : uint8_t { Normal = 0, High = 1 };

/// One placement request — the CLI surface, serialized. Defaults match the
/// CLI's defaults so an empty-option request behaves like `expresso spec`.
struct PlaceRequest {
  std::string Source;           ///< monitor source text (client-resolved)
  std::string Emit = "summary"; ///< summary | ir | cpp | java
  std::string Solver = "default";
  bool UseInvariant = true;
  bool UseCommutativity = true;
  bool LazyBroadcast = true;
  bool CacheQueries = true;
  bool Incremental = true;
  uint32_t Jobs = 1; ///< ask; the daemon grants min(ask, budget free)
  Priority Prio = Priority::Normal;
  /// Skip the daemon's whole-response replay cache for this request (used
  /// by benchmarks and tests that measure the query-tier warmth beneath).
  bool BypassResultCache = false;
  /// Soft deadline for the whole request, milliseconds from admission;
  /// 0 = none (and what a version-1 client gets). A request still queued
  /// past its deadline is answered DeadlineExceeded without burning a
  /// worker; one already placing is cooperatively cancelled at the next
  /// Hoare-check/solver-poll boundary. A request that completes in time is
  /// byte-identical to the same request with no deadline.
  uint64_t DeadlineMs = 0;
  /// Record a per-request span trace daemon-side and ship it back in
  /// PlaceResponse::TraceJson (Chrome trace_event JSON). Tracing is
  /// byte-invisible to the placement answer — Σ, stats, and cache counters
  /// are identical with this on or off — and a traced response is never
  /// served from (or published into) the whole-response replay cache, so
  /// the trace always describes a real run. v3; absent = false.
  bool WantTrace = false;

  void encode(std::vector<uint8_t> &Out) const;
  static bool decode(const uint8_t *Data, size_t Size, PlaceRequest &Out);
};

enum class ResponseStatus : uint8_t {
  Ok = 0,
  ParseError = 1,        ///< spec failed to parse or analyze (Error has why)
  SolverUnavailable = 2, ///< requested backend not in this build
  Rejected = 3,          ///< admission control: queue full
  Draining = 4,          ///< daemon is shutting down, not accepting work
  Malformed = 5,         ///< request payload did not decode
  InternalError = 6,
  /// The request's deadline fired before placement finished. Partial stats
  /// (Hoare checks, queries, queue wait) are still populated; Artifact and
  /// DecisionSummary are empty — a cancelled run publishes nothing, not
  /// even into the daemon's shared caches.
  DeadlineExceeded = 7,
};

/// One placement answer. Artifact is byte-identical to what the standalone
/// CLI prints for the same spec and --emit kind; DecisionSummary is Σ (the
/// invariant plus decisions), the cross-surface determinism contract —
/// cache counters differ between a warm daemon and a cold CLI, Σ never
/// does.
struct PlaceResponse {
  ResponseStatus Status = ResponseStatus::InternalError;
  std::string Error;           ///< diagnostics when Status != Ok
  std::string Artifact;        ///< the --emit output (summary/ir/cpp/java)
  std::string DecisionSummary; ///< Σ, for byte-parity checks
  std::string SolverName;      ///< answering backend ("z3", "mini", …)

  uint64_t HoareChecks = 0;
  uint64_t SolverQueries = 0;
  uint64_t CacheHits = 0;    ///< request-local memo tier
  uint64_t CacheMisses = 0;
  uint64_t SharedHits = 0;   ///< daemon-shared store tier (cross-request)
  uint64_t SharedMisses = 0;
  uint64_t PairsConsidered = 0;
  uint64_t NoSignalProved = 0;
  uint64_t Signals = 0;
  uint64_t Broadcasts = 0;
  uint64_t Unconditional = 0;
  uint64_t CommutativityWins = 0;
  double AnalysisSeconds = 0;  ///< daemon-side pipeline wall time
  double InvariantSeconds = 0; ///< share spent inferring the invariant
  double QueueSeconds = 0;     ///< admission-to-execution wait
  uint32_t JobsUsed = 1;       ///< slots the budget actually granted
  bool Replayed = false;       ///< served from the whole-response cache
  bool StoreSkipped = false;   ///< store profile != backend, ran memo-only

  // --- v3 additions (appended; absent in v1/v2 payloads) ---
  /// Daemon-assigned monotonic request id, echoed here and in the daemon's
  /// structured request log (--request-log) so one request can be joined
  /// across the response, the log line, and an attached trace. 0 from a
  /// pre-v3 daemon.
  uint64_t TraceId = 0;
  /// Chrome trace_event JSON for this request's run (Perfetto-loadable);
  /// empty unless PlaceRequest::WantTrace was set and the run executed.
  std::string TraceJson;

  void encode(std::vector<uint8_t> &Out) const;
  static bool decode(const uint8_t *Data, size_t Size, PlaceResponse &Out);
};

/// Daemon introspection snapshot. Fields after StoreDir were appended in
/// protocol v2 and decode to their defaults when absent (v1 daemon).
struct StatusResponse {
  uint64_t RequestsServed = 0;
  uint64_t RequestsActive = 0;
  uint64_t RequestsQueued = 0;
  uint64_t RequestsRejected = 0; ///< total (= RejectedFull + RejectedDraining)
  uint64_t ResultCacheHits = 0;
  uint64_t StoreRecords = 0;
  uint64_t StoreEvicted = 0;
  uint32_t JobsBudget = 0;
  uint32_t JobsAvailable = 0;
  double UptimeSeconds = 0;
  bool Draining = false;
  std::string StoreProfile;
  std::string StoreDir; ///< empty = resident in-memory store

  // --- v2 additions (appended; absent in v1 payloads) ---
  uint64_t RequestsRejectedFull = 0;     ///< admission: queue at capacity
  uint64_t RequestsRejectedDraining = 0; ///< admission: daemon shutting down
  uint64_t RequestsExpiredQueued = 0;    ///< deadline fired while still queued
  uint64_t RequestsCancelledRunning = 0; ///< deadline fired mid-placement
  uint64_t RequestsCompleted = 0;        ///< placements that ran to completion
  double LatencyP50Seconds = 0; ///< admission-to-answer, completed requests
  double LatencyP99Seconds = 0; ///< (sliding window; 0 until any complete)

  void encode(std::vector<uint8_t> &Out) const;
  static bool decode(const uint8_t *Data, size_t Size, StatusResponse &Out);
};

/// The daemon's unified metrics registry rendered as stable text (sorted
/// metric names; counters, gauges, and histograms with cumulative buckets
/// plus the window p50/p99 that back StatusResponse). v3; the request
/// (MsgType::MetricsRequest) carries an empty payload like StatusRequest.
struct MetricsResponse {
  std::string Text;

  void encode(std::vector<uint8_t> &Out) const;
  static bool decode(const uint8_t *Data, size_t Size, MetricsResponse &Out);
};

struct ShutdownRequest {
  /// Drain (finish queued + in-flight work) before exiting; false aborts
  /// the queue (in-flight requests still finish — workers are never
  /// killed mid-solve).
  bool Drain = true;

  void encode(std::vector<uint8_t> &Out) const;
  static bool decode(const uint8_t *Data, size_t Size, ShutdownRequest &Out);
};

//===----------------------------------------------------------------------===//
// Framing over file descriptors
//===----------------------------------------------------------------------===//

/// Writes one frame. Returns false on any I/O error (EPIPE included — the
/// caller treats the connection as dead).
bool sendFrame(int Fd, MsgType Type, const std::vector<uint8_t> &Payload);

/// Reads one frame, validating magic, version, length bound, and checksum.
/// Returns false on EOF or anything malformed — the connection must then be
/// closed (fail closed: no resync attempts inside a byte stream).
bool recvFrame(int Fd, MsgType &Type, std::vector<uint8_t> &Payload);

//===----------------------------------------------------------------------===//
// Unix-domain socket helpers
//===----------------------------------------------------------------------===//

/// Binds and listens on \p Path (unlinking a stale socket first). Returns
/// the listening fd, or -1 with \p Error set.
int listenUnix(const std::string &Path, int Backlog, std::string *Error);

/// Connects to \p Path. Returns the fd, or -1 with \p Error set.
int connectUnix(const std::string &Path, std::string *Error);

} // namespace service
} // namespace expresso

#endif // EXPRESSO_SERVICE_PROTOCOL_H
