//===- service/Protocol.cpp - expressod wire protocol -------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "persist/TermCodec.h"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace expresso;
using namespace expresso::service;
using persist::ByteReader;
using persist::ByteWriter;

//===----------------------------------------------------------------------===//
// Message codecs
//===----------------------------------------------------------------------===//

namespace {

/// Shared tail check: a payload with trailing bytes is as malformed as a
/// truncated one (it is evidence the two sides disagree on the format).
bool finish(ByteReader &B) { return !B.failed() && B.atEnd(); }

void writeBool(ByteWriter &B, bool V) { B.writeByte(V ? 1 : 0); }

bool readBool(ByteReader &B, bool &V) {
  uint8_t Byte = B.readByte();
  if (B.failed() || Byte > 1)
    return false;
  V = Byte != 0;
  return true;
}

/// Doubles travel as fixed u64 bit patterns (latencies and uptimes are
/// diagnostics; bit-exactness is still nice for the tests).
void writeDouble(ByteWriter &B, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  B.writeU64(Bits);
}

double readDouble(ByteReader &B) {
  uint64_t Bits = B.readU64();
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

} // namespace

void PlaceRequest::encode(std::vector<uint8_t> &Out) const {
  ByteWriter B(Out);
  B.writeString(Source);
  B.writeString(Emit);
  B.writeString(Solver);
  writeBool(B, UseInvariant);
  writeBool(B, UseCommutativity);
  writeBool(B, LazyBroadcast);
  writeBool(B, CacheQueries);
  writeBool(B, Incremental);
  B.writeVarint(Jobs);
  B.writeByte(static_cast<uint8_t>(Prio));
  writeBool(B, BypassResultCache);
  // v2 tail: appended so a v1 daemon-side decode of a v1 client's payload
  // is unchanged, and our decode treats absence as DeadlineMs = 0.
  B.writeVarint(DeadlineMs);
  // v3 tail: absence decodes as WantTrace = false.
  writeBool(B, WantTrace);
}

bool PlaceRequest::decode(const uint8_t *Data, size_t Size, PlaceRequest &Out) {
  ByteReader B(Data, Size);
  if (!B.readString(Out.Source, MaxFramePayload) ||
      !B.readString(Out.Emit, 64) || !B.readString(Out.Solver, 64))
    return false;
  if (!readBool(B, Out.UseInvariant) || !readBool(B, Out.UseCommutativity) ||
      !readBool(B, Out.LazyBroadcast) || !readBool(B, Out.CacheQueries) ||
      !readBool(B, Out.Incremental))
    return false;
  uint64_t Jobs = B.readVarint();
  if (B.failed() || Jobs == 0 || Jobs > (1u << 16))
    return false;
  Out.Jobs = static_cast<uint32_t>(Jobs);
  uint8_t Prio = B.readByte();
  if (B.failed() || Prio > static_cast<uint8_t>(Priority::High))
    return false;
  Out.Prio = static_cast<Priority>(Prio);
  if (!readBool(B, Out.BypassResultCache))
    return false;
  if (!B.atEnd()) { // v2 tail; a v1 payload ends here (DeadlineMs = 0)
    Out.DeadlineMs = B.readVarint();
    if (B.failed())
      return false;
  }
  if (!B.atEnd()) { // v3 tail; a v2 payload ends here (WantTrace = false)
    if (!readBool(B, Out.WantTrace))
      return false;
  }
  return finish(B);
}

void PlaceResponse::encode(std::vector<uint8_t> &Out) const {
  ByteWriter B(Out);
  B.writeByte(static_cast<uint8_t>(Status));
  B.writeString(Error);
  B.writeString(Artifact);
  B.writeString(DecisionSummary);
  B.writeString(SolverName);
  B.writeVarint(HoareChecks);
  B.writeVarint(SolverQueries);
  B.writeVarint(CacheHits);
  B.writeVarint(CacheMisses);
  B.writeVarint(SharedHits);
  B.writeVarint(SharedMisses);
  B.writeVarint(PairsConsidered);
  B.writeVarint(NoSignalProved);
  B.writeVarint(Signals);
  B.writeVarint(Broadcasts);
  B.writeVarint(Unconditional);
  B.writeVarint(CommutativityWins);
  writeDouble(B, AnalysisSeconds);
  writeDouble(B, InvariantSeconds);
  writeDouble(B, QueueSeconds);
  B.writeVarint(JobsUsed);
  writeBool(B, Replayed);
  writeBool(B, StoreSkipped);
  // v3 tail: trace id + optional attached Chrome trace.
  B.writeVarint(TraceId);
  B.writeString(TraceJson);
}

bool PlaceResponse::decode(const uint8_t *Data, size_t Size,
                           PlaceResponse &Out) {
  ByteReader B(Data, Size);
  uint8_t Status = B.readByte();
  if (B.failed() ||
      Status > static_cast<uint8_t>(ResponseStatus::DeadlineExceeded))
    return false;
  Out.Status = static_cast<ResponseStatus>(Status);
  if (!B.readString(Out.Error, MaxFramePayload) ||
      !B.readString(Out.Artifact, MaxFramePayload) ||
      !B.readString(Out.DecisionSummary, MaxFramePayload) ||
      !B.readString(Out.SolverName, 64))
    return false;
  Out.HoareChecks = B.readVarint();
  Out.SolverQueries = B.readVarint();
  Out.CacheHits = B.readVarint();
  Out.CacheMisses = B.readVarint();
  Out.SharedHits = B.readVarint();
  Out.SharedMisses = B.readVarint();
  Out.PairsConsidered = B.readVarint();
  Out.NoSignalProved = B.readVarint();
  Out.Signals = B.readVarint();
  Out.Broadcasts = B.readVarint();
  Out.Unconditional = B.readVarint();
  Out.CommutativityWins = B.readVarint();
  Out.AnalysisSeconds = readDouble(B);
  Out.InvariantSeconds = readDouble(B);
  Out.QueueSeconds = readDouble(B);
  uint64_t Jobs = B.readVarint();
  if (B.failed() || Jobs > (1u << 16))
    return false;
  Out.JobsUsed = static_cast<uint32_t>(Jobs);
  if (!readBool(B, Out.Replayed) || !readBool(B, Out.StoreSkipped))
    return false;
  if (!B.atEnd()) { // v3 tail; a v2 payload ends here (TraceId = 0, no JSON)
    Out.TraceId = B.readVarint();
    if (B.failed() || !B.readString(Out.TraceJson, MaxFramePayload))
      return false;
  }
  return finish(B);
}

void StatusResponse::encode(std::vector<uint8_t> &Out) const {
  ByteWriter B(Out);
  B.writeVarint(RequestsServed);
  B.writeVarint(RequestsActive);
  B.writeVarint(RequestsQueued);
  B.writeVarint(RequestsRejected);
  B.writeVarint(ResultCacheHits);
  B.writeVarint(StoreRecords);
  B.writeVarint(StoreEvicted);
  B.writeVarint(JobsBudget);
  B.writeVarint(JobsAvailable);
  writeDouble(B, UptimeSeconds);
  writeBool(B, Draining);
  B.writeString(StoreProfile);
  B.writeString(StoreDir);
  // v2 tail: outcome breakdown and completed-request latency percentiles.
  B.writeVarint(RequestsRejectedFull);
  B.writeVarint(RequestsRejectedDraining);
  B.writeVarint(RequestsExpiredQueued);
  B.writeVarint(RequestsCancelledRunning);
  B.writeVarint(RequestsCompleted);
  writeDouble(B, LatencyP50Seconds);
  writeDouble(B, LatencyP99Seconds);
}

bool StatusResponse::decode(const uint8_t *Data, size_t Size,
                            StatusResponse &Out) {
  ByteReader B(Data, Size);
  Out.RequestsServed = B.readVarint();
  Out.RequestsActive = B.readVarint();
  Out.RequestsQueued = B.readVarint();
  Out.RequestsRejected = B.readVarint();
  Out.ResultCacheHits = B.readVarint();
  Out.StoreRecords = B.readVarint();
  Out.StoreEvicted = B.readVarint();
  Out.JobsBudget = static_cast<uint32_t>(B.readVarint());
  Out.JobsAvailable = static_cast<uint32_t>(B.readVarint());
  Out.UptimeSeconds = readDouble(B);
  if (!readBool(B, Out.Draining))
    return false;
  if (!B.readString(Out.StoreProfile, 64) ||
      !B.readString(Out.StoreDir, 1 << 16))
    return false;
  if (!B.atEnd()) { // v2 tail; a v1 daemon's payload ends here
    Out.RequestsRejectedFull = B.readVarint();
    Out.RequestsRejectedDraining = B.readVarint();
    Out.RequestsExpiredQueued = B.readVarint();
    Out.RequestsCancelledRunning = B.readVarint();
    Out.RequestsCompleted = B.readVarint();
    Out.LatencyP50Seconds = readDouble(B);
    Out.LatencyP99Seconds = readDouble(B);
    if (B.failed())
      return false;
  }
  return finish(B);
}

void MetricsResponse::encode(std::vector<uint8_t> &Out) const {
  ByteWriter B(Out);
  B.writeString(Text);
}

bool MetricsResponse::decode(const uint8_t *Data, size_t Size,
                             MetricsResponse &Out) {
  ByteReader B(Data, Size);
  if (!B.readString(Out.Text, MaxFramePayload))
    return false;
  return finish(B);
}

void ShutdownRequest::encode(std::vector<uint8_t> &Out) const {
  ByteWriter B(Out);
  writeBool(B, Drain);
}

bool ShutdownRequest::decode(const uint8_t *Data, size_t Size,
                             ShutdownRequest &Out) {
  ByteReader B(Data, Size);
  if (!readBool(B, Out.Drain))
    return false;
  return finish(B);
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

#ifndef _WIN32

namespace {

bool writeAllFd(int Fd, const uint8_t *Data, size_t Len) {
  while (Len > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as a false return (the
    // caller treats the connection as dead), never as SIGPIPE killing the
    // client CLI / bench harness / test binary embedding this protocol.
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool readAllFd(int Fd, uint8_t *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::read(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // EOF mid-frame = truncated
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

constexpr size_t FrameHeaderSize = 4 + 1 + 1 + 4 + 8;

} // namespace

bool service::sendFrame(int Fd, MsgType Type,
                        const std::vector<uint8_t> &Payload) {
  if (Payload.size() > MaxFramePayload)
    return false;
  std::vector<uint8_t> Header;
  Header.reserve(FrameHeaderSize);
  ByteWriter B(Header);
  B.writeU32(FrameMagic);
  B.writeByte(ProtocolVersion);
  B.writeByte(static_cast<uint8_t>(Type));
  B.writeU32(static_cast<uint32_t>(Payload.size()));
  B.writeU64(persist::fnv1a(Payload.data(), Payload.size()));
  return writeAllFd(Fd, Header.data(), Header.size()) &&
         (Payload.empty() || writeAllFd(Fd, Payload.data(), Payload.size()));
}

bool service::recvFrame(int Fd, MsgType &Type, std::vector<uint8_t> &Payload) {
  uint8_t Header[FrameHeaderSize];
  if (!readAllFd(Fd, Header, sizeof(Header)))
    return false;
  ByteReader B(Header, sizeof(Header));
  uint32_t Magic = B.readU32();
  uint8_t Version = B.readByte();
  uint8_t TypeByte = B.readByte();
  uint32_t Len = B.readU32();
  uint64_t Sum = B.readU64();
  if (Magic != FrameMagic || Version < MinProtocolVersion ||
      Version > ProtocolVersion)
    return false;
  if (TypeByte < static_cast<uint8_t>(MsgType::PlaceRequest) ||
      TypeByte > static_cast<uint8_t>(MsgType::MetricsResponse))
    return false;
  if (Len > MaxFramePayload)
    return false;
  Payload.resize(Len);
  if (Len > 0 && !readAllFd(Fd, Payload.data(), Len))
    return false;
  if (persist::fnv1a(Payload.data(), Payload.size()) != Sum)
    return false;
  Type = static_cast<MsgType>(TypeByte);
  return true;
}

//===----------------------------------------------------------------------===//
// Sockets
//===----------------------------------------------------------------------===//

namespace {

bool fillSockAddr(const std::string &Path, sockaddr_un &Addr,
                  std::string *Error) {
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path too long (max " +
               std::to_string(sizeof(Addr.sun_path) - 1) + " bytes): " + Path;
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

int service::listenUnix(const std::string &Path, int Backlog,
                        std::string *Error) {
  sockaddr_un Addr;
  if (!fillSockAddr(Path, Addr, Error))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(Path.c_str()); // stale socket from a dead daemon
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (Error)
      *Error = "bind " + Path + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, Backlog) != 0) {
    if (Error)
      *Error = "listen " + Path + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int service::connectUnix(const std::string &Path, std::string *Error) {
  sockaddr_un Addr;
  if (!fillSockAddr(Path, Addr, Error))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (Error)
      *Error = "connect " + Path + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

#else // _WIN32: the service is POSIX-only (Unix-domain sockets).

bool service::sendFrame(int, MsgType, const std::vector<uint8_t> &) {
  return false;
}
bool service::recvFrame(int, MsgType &, std::vector<uint8_t> &) {
  return false;
}
int service::listenUnix(const std::string &, int, std::string *Error) {
  if (Error)
    *Error = "the placement service is not supported on this platform";
  return -1;
}
int service::connectUnix(const std::string &, std::string *Error) {
  if (Error)
    *Error = "the placement service is not supported on this platform";
  return -1;
}

#endif
