//===- service/Scheduler.h - Request admission and scheduling ---*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's admission/scheduling layer: a bounded two-level FIFO queue
/// drained by a fixed pool of service workers. Admission is all-or-nothing
/// — a full queue rejects immediately (the client sees Rejected and can
/// back off) instead of building unbounded latency. High-priority requests
/// are dequeued before normal ones but FIFO within their level, so equal
/// work is served in arrival order.
///
/// The scheduler owns *which* request runs next, never *how wide* it runs —
/// per-request parallelism is leased from the global support::JobBudget by
/// the executing worker. Keeping the two separate means a wide request
/// cannot wedge the queue: it is admitted, starts, and simply runs narrower
/// while the budget is contended.
///
/// Requests may carry a deadline token: a queued entry whose deadline fires
/// before any worker reaches it is answered by its expiry handler instead
/// of running — past-deadline work never costs a worker slot. Once running,
/// the scheduler never preempts; the task itself polls the token
/// (cooperative cancellation inside the placement pipeline).
///
/// Shutdown has two shapes: drain() (stop admission, run everything already
/// queued, then stop workers) and stop() (stop admission, discard the
/// queue, finish only in-flight tasks). In-flight tasks are never
/// interrupted by the scheduler — a placement mid-solve winds down on its
/// own terms and its response is delivered.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SERVICE_SCHEDULER_H
#define EXPRESSO_SERVICE_SCHEDULER_H

#include "service/Protocol.h"
#include "support/CancelToken.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace expresso {
namespace service {

/// Counter snapshot for StatusResponse and tests.
struct SchedulerStats {
  uint64_t Submitted = 0;        ///< admitted into the queue
  uint64_t Rejected = 0;         ///< total refusals (= Full + Draining)
  uint64_t RejectedFull = 0;     ///< refused: queue at capacity
  uint64_t RejectedDraining = 0; ///< refused: shutdown had begun
  uint64_t ExpiredQueued = 0;    ///< deadline fired before a worker started it
  uint64_t Executed = 0;         ///< tasks completed
  uint64_t Discarded = 0;        ///< queued tasks dropped by stop()
  uint64_t QueuedNow = 0;
  uint64_t ActiveNow = 0;
};

/// Bounded two-level FIFO executor.
class RequestScheduler {
public:
  using Task = std::function<void()>;

  struct Options {
    unsigned Workers = 2;  ///< concurrent placements (clamped to >= 1)
    size_t MaxQueue = 64;  ///< queued-but-not-running cap (>= 1)
  };

  explicit RequestScheduler(const Options &Opts);
  ~RequestScheduler(); // equivalent to stop()

  RequestScheduler(const RequestScheduler &) = delete;
  RequestScheduler &operator=(const RequestScheduler &) = delete;

  /// Admits \p T at \p P. False when the queue is full or shutdown has
  /// begun; the task is then never run (caller must answer the client).
  bool submit(Priority P, Task T);

  /// Deadline-aware admission: if \p Cancel has expired by the time a
  /// worker would start \p T, the scheduler runs the (cheap) \p OnExpire
  /// handler instead — the client gets DeadlineExceeded without a worker
  /// ever burning time on a request that is already late. At most one of
  /// T / OnExpire runs (neither when stop() discards the queue, exactly as
  /// with plain submit). Null Cancel degrades to plain submit().
  bool submit(Priority P, Task T,
              std::shared_ptr<support::CancelToken> Cancel, Task OnExpire);

  /// Stops admission, runs every queued task to completion, then stops the
  /// workers. Idempotent; safe to call concurrently with submit().
  void drain();

  /// Stops admission, discards queued tasks (counted in stats().Discarded),
  /// waits only for in-flight tasks. Idempotent.
  void stop();

  /// True once drain()/stop() has begun (new submissions are refused).
  bool shuttingDown() const;

  SchedulerStats stats() const;

private:
  /// A queued request: the work itself plus (optionally) its deadline token
  /// and the cheap answer to give if the deadline fires first.
  struct Entry {
    Task Run;
    std::shared_ptr<support::CancelToken> Cancel;
    Task OnExpire;
  };

  void workerMain();
  /// Pops the next live task by priority, expiring queued entries whose
  /// deadline already fired on the way (their OnExpire handlers run here,
  /// off-lock, so an expired client is answered even when no further work
  /// follows). Blocks; returns false at shutdown.
  bool nextTask(Entry &Out);
  void shutdown(bool RunQueued);

  const unsigned Workers;
  const size_t MaxQueue;

  mutable std::mutex Mu;
  std::condition_variable QueueCv; ///< workers wait for work / shutdown
  std::condition_variable IdleCv;  ///< shutdown waits for queue+active == 0
  std::deque<Entry> High;
  std::deque<Entry> Normal;
  bool ShuttingDown = false; ///< no new admissions
  bool StopWorkers = false;  ///< workers exit once the queue is empty
  uint64_t Active = 0;       ///< tasks currently executing
  SchedulerStats Counters;   ///< Submitted/Rejected/Executed/Discarded

  std::mutex JoinMu; ///< serializes the join loop across shutdown callers
  std::vector<std::thread> Threads;
};

} // namespace service
} // namespace expresso

#endif // EXPRESSO_SERVICE_SCHEDULER_H
