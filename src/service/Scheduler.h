//===- service/Scheduler.h - Request admission and scheduling ---*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's admission/scheduling layer: a bounded two-level FIFO queue
/// drained by a fixed pool of service workers. Admission is all-or-nothing
/// — a full queue rejects immediately (the client sees Rejected and can
/// back off) instead of building unbounded latency. High-priority requests
/// are dequeued before normal ones but FIFO within their level, so equal
/// work is served in arrival order.
///
/// The scheduler owns *which* request runs next, never *how wide* it runs —
/// per-request parallelism is leased from the global support::JobBudget by
/// the executing worker. Keeping the two separate means a wide request
/// cannot wedge the queue: it is admitted, starts, and simply runs narrower
/// while the budget is contended.
///
/// Shutdown has two shapes: drain() (stop admission, run everything already
/// queued, then stop workers) and stop() (stop admission, discard the
/// queue, finish only in-flight tasks). In-flight tasks are never
/// interrupted — a placement mid-solve always completes and its response is
/// delivered.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SERVICE_SCHEDULER_H
#define EXPRESSO_SERVICE_SCHEDULER_H

#include "service/Protocol.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace expresso {
namespace service {

/// Counter snapshot for StatusResponse and tests.
struct SchedulerStats {
  uint64_t Submitted = 0; ///< admitted into the queue
  uint64_t Rejected = 0;  ///< refused: queue full or draining
  uint64_t Executed = 0;  ///< tasks completed
  uint64_t Discarded = 0; ///< queued tasks dropped by stop()
  uint64_t QueuedNow = 0;
  uint64_t ActiveNow = 0;
};

/// Bounded two-level FIFO executor.
class RequestScheduler {
public:
  using Task = std::function<void()>;

  struct Options {
    unsigned Workers = 2;  ///< concurrent placements (clamped to >= 1)
    size_t MaxQueue = 64;  ///< queued-but-not-running cap (>= 1)
  };

  explicit RequestScheduler(const Options &Opts);
  ~RequestScheduler(); // equivalent to stop()

  RequestScheduler(const RequestScheduler &) = delete;
  RequestScheduler &operator=(const RequestScheduler &) = delete;

  /// Admits \p T at \p P. False when the queue is full or shutdown has
  /// begun; the task is then never run (caller must answer the client).
  bool submit(Priority P, Task T);

  /// Stops admission, runs every queued task to completion, then stops the
  /// workers. Idempotent; safe to call concurrently with submit().
  void drain();

  /// Stops admission, discards queued tasks (counted in stats().Discarded),
  /// waits only for in-flight tasks. Idempotent.
  void stop();

  /// True once drain()/stop() has begun (new submissions are refused).
  bool shuttingDown() const;

  SchedulerStats stats() const;

private:
  void workerMain();
  /// Pops the next task by priority. Blocks; returns false at shutdown.
  bool nextTask(Task &Out);
  void shutdown(bool RunQueued);

  const unsigned Workers;
  const size_t MaxQueue;

  mutable std::mutex Mu;
  std::condition_variable QueueCv; ///< workers wait for work / shutdown
  std::condition_variable IdleCv;  ///< shutdown waits for queue+active == 0
  std::deque<Task> High;
  std::deque<Task> Normal;
  bool ShuttingDown = false; ///< no new admissions
  bool StopWorkers = false;  ///< workers exit once the queue is empty
  uint64_t Active = 0;       ///< tasks currently executing
  SchedulerStats Counters;   ///< Submitted/Rejected/Executed/Discarded

  std::mutex JoinMu; ///< serializes the join loop across shutdown callers
  std::vector<std::thread> Threads;
};

} // namespace service
} // namespace expresso

#endif // EXPRESSO_SERVICE_SCHEDULER_H
