//===- service/Server.h - The expressod placement daemon -------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident placement service. Two layers:
///
///   * PlacementService — the socket-free execution core: runs one
///     PlaceRequest through the exact CLI pipeline (parse → sema → two-tier
///     solver rig → placeSignals → emit) against a *fresh TermContext per
///     request*, with all cross-request warmth flowing through two shared
///     tiers that are sound by construction:
///       1. the resident persist::QueryStore (in-memory by default, or the
///          --cache-dir store) — keyed by canonical term blobs, so request
///          N's VCs hit answers proven for request N−1 with exactly the
///          cross-process determinism argument of the persistence layer;
///       2. a whole-response replay cache keyed by (spec, emit, solver,
///          semantic flags) — sound because the analysis is a deterministic
///          function of that key (the parallel/incremental/persistence PRs
///          each proved their slice of that invariance).
///     Per-request parallelism is leased from one global support::JobBudget
///     so concurrent requests share the machine instead of fighting for it.
///
///     Why not share one TermContext (and memo tier) across requests? The
///     memo's keys are hash-consed pointers, valid only within a context —
///     and a context shared across requests would assign Term ids in
///     arrival order, perturbing the id-ordered iteration that PR 2 made
///     the determinism backbone. A fresh context per request keeps every
///     response byte-identical to the standalone CLI; the canonical-key
///     store is exactly the context-free projection of the memo, so it is
///     the tier that may be shared.
///
///   * Server — the Unix-domain-socket front end: an acceptor thread, one
///     lightweight thread per connection (blocked on recv; execution
///     parallelism is the scheduler's, not the connection count's), a
///     bounded RequestScheduler, and a graceful drain path (stop admission,
///     finish queued + in-flight work, deliver every response, compact the
///     store if an eviction policy is set, exit).
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SERVICE_SERVER_H
#define EXPRESSO_SERVICE_SERVER_H

#include "obs/Metrics.h"
#include "persist/QueryStore.h"
#include "service/Protocol.h"
#include "service/Scheduler.h"
#include "support/CancelToken.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <atomic>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace expresso {
namespace obs {
class Tracer;
}
namespace service {

/// Configuration shared by expressod, the bench harness's --serve mode, and
/// the service tests.
struct ServerOptions {
  std::string SocketPath;
  unsigned Workers = 2;   ///< concurrent placements (scheduler width)
  size_t QueueDepth = 64; ///< admission bound (queued, not yet running)
  /// Global worker-slot budget requests lease --jobs from; 0 = one per
  /// hardware thread.
  unsigned JobsBudget = 0;
  /// Backend the daemon's shared store is keyed to ("default" resolves to
  /// the build's preferred solver). Requests may still ask for another
  /// backend; they then run memo-only (never mixing profiles in one store).
  std::string SolverName = "default";
  std::string CacheDir;      ///< empty = resident in-memory store
  bool CacheReadOnly = false;
  persist::EvictionPolicy Eviction; ///< enforced when the store compacts
  bool ResultCache = true;          ///< whole-response replay cache
  size_t ResultCacheCap = 128;      ///< replay-cache entries (FIFO bound)
  /// Deadline applied to requests that do not carry one (PlaceRequest::
  /// DeadlineMs == 0); 0 = no default. A request's own deadline always
  /// wins.
  uint64_t DefaultDeadlineMs = 0;
  /// Structured request log: append one JSON object per served request
  /// (monotonic trace id — echoed in PlaceResponse::TraceId — outcome,
  /// queue wait, run time, deadline budget, cache hit counts, jobs
  /// leased). Empty disables. The expressod --request-log flag.
  std::string RequestLogPath;
};

/// The socket-free execution core (tests and the bench harness drive it
/// directly; the Server wraps it with framing and scheduling).
class PlacementService {
public:
  explicit PlacementService(const ServerOptions &Opts);

  /// Runs one request to completion (this is the scheduler task body).
  /// \p QueueSeconds is admission-to-execution wait, echoed in the
  /// response. \p Cancel (optional, not owned) is polled cooperatively
  /// through the whole pipeline; an expired token yields a
  /// DeadlineExceeded response with partial stats, and the cancelled run
  /// publishes nothing into the shared store or the replay cache.
  PlaceResponse run(const PlaceRequest &Req, double QueueSeconds,
                    support::CancelToken *Cancel = nullptr);

  /// The resolved backend profile of the shared store ("z3", "mini", …).
  const std::string &profile() const { return Profile; }
  persist::QueryStore *store() { return Store.get(); }
  support::JobBudget &budget() { return Budget; }
  /// The unified metrics registry (outcome counters + the latency
  /// histogram live here; the Server layers scheduler/store/uptime gauges
  /// on top when rendering the MetricsResponse dump).
  obs::Registry &metrics() { return Reg; }
  uint64_t resultCacheHits() const { return ResultHits.value(); }
  uint64_t requestsServed() const { return Served.value(); }
  /// Requests that produced a real answer (Ok, replay hits included).
  uint64_t requestsCompleted() const { return Completed.value(); }
  /// Requests whose deadline fired mid-placement (the pipeline wound down
  /// cooperatively and answered DeadlineExceeded).
  uint64_t requestsCancelledRunning() const {
    return CancelledRunning.value();
  }
  /// Admission-to-answer latency percentiles over a sliding window of
  /// completed requests (both 0 until anything completes).
  void latencyPercentiles(double &P50, double &P99) const;

  /// Store end-of-life management: applies the eviction policy via
  /// compact() when one is configured and the store is writable. Called by
  /// the Server at drain; safe to call any time.
  void compactStore();

private:
  PlaceResponse execute(const PlaceRequest &Req, support::CancelToken *Cancel,
                        obs::Tracer *Trace);
  static std::string resultCacheKey(const PlaceRequest &Req);
  void noteCompleted(double LatencySeconds);

  /// Executed (non-replayed) requests between in-service compactions when
  /// an eviction policy is set.
  static constexpr uint64_t CompactEvery = 64;
  /// Sliding latency window (enough for stable p99 without unbounded
  /// memory in a long-lived daemon).
  static constexpr size_t LatencyWindow = 512;

  ServerOptions Opts;
  std::string Profile;
  std::shared_ptr<persist::QueryStore> Store;
  support::JobBudget Budget;

  /// Unified accounting: the named counters subsume the previous ad-hoc
  /// outcome atomics, and Latency subsumes the hand-rolled sliding window
  /// (same 512-entry window, same percentile math — see obs/Metrics.h —
  /// so StatusResponse's p50/p99 are bit-identical to before).
  obs::Registry Reg;
  obs::Counter &Served;
  obs::Counter &Executed; ///< requests that ran the pipeline
  obs::Counter &ResultHits;
  obs::Counter &Completed;
  obs::Counter &CancelledRunning;
  obs::Histogram &Latency; ///< admission-to-answer, completed requests

  std::mutex ResultMu;
  std::unordered_map<std::string, PlaceResponse> ResultCache;
  std::deque<std::string> ResultOrder; ///< FIFO eviction at ResultCacheCap
};

/// The daemon: socket front end over PlacementService + RequestScheduler.
class Server {
public:
  explicit Server(const ServerOptions &Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and starts the acceptor. False (with \p Error) when
  /// the socket cannot be created.
  bool start(std::string *Error);

  /// Initiates shutdown from any thread (signal handlers use the atomic
  /// flag + a self-wake connect instead of calling this directly).
  /// \p Drain finishes queued work first; otherwise the queue is dropped
  /// (in-flight requests still complete and respond).
  void requestShutdown(bool Drain);

  /// Blocks until a shutdown request arrives, then tears down: stops
  /// admission, drains per the request, closes connections, joins threads,
  /// compacts the store (if a policy is set), and removes the socket file.
  void wait();

  /// start() + wait() + exit code (the expressod main body).
  int serveForever(std::string *Error);

  StatusResponse status() const;
  PlacementService &service() { return Core; }
  const std::string &socketPath() const { return Opts.SocketPath; }

  /// The daemon's full metrics dump (MetricsResponse::Text): the core's
  /// registry plus scheduler/budget/store/uptime gauges refreshed at
  /// render time.
  std::string metricsText();

private:
  void acceptLoop();
  void connectionLoop(int Fd);
  void handlePlace(int Fd, const std::vector<uint8_t> &Payload);
  bool sendPlaceResponse(int Fd, const PlaceResponse &R);
  /// Appends one JSON object to the request log (no-op when disabled).
  /// \p Req is null for requests that failed to decode.
  void logRequest(uint64_t TraceId, const PlaceRequest *Req,
                  const PlaceResponse &R, uint64_t DeadlineMs);

  ServerOptions Opts;
  PlacementService Core;
  std::unique_ptr<RequestScheduler> Sched;
  WallTimer Uptime;

  /// Monotonic per-request id, echoed in PlaceResponse::TraceId and the
  /// request log so one request joins across response, log line, and an
  /// attached trace.
  std::atomic<uint64_t> TraceIds{0};
  std::mutex LogMu;
  std::ofstream RequestLog; ///< --request-log sink; one JSON object per line

  int ListenFd = -1;
  std::thread Acceptor;

  std::mutex ConnMu;
  std::unordered_map<int, std::thread> Connections; ///< fd → handler
  std::vector<std::thread> Finished; ///< handlers that exited, to join
  bool AcceptingConnections = false;

  std::atomic<bool> ShutdownFlagged{false};
  std::atomic<bool> ShutdownDrain{true};
  std::mutex ShutdownMu;
  std::condition_variable ShutdownCv;
  std::atomic<uint64_t> ProtocolErrors{0};
};

} // namespace service
} // namespace expresso

#endif // EXPRESSO_SERVICE_SERVER_H
