//===- service/Scheduler.cpp - Request admission and scheduling ---------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "service/Scheduler.h"

using namespace expresso;
using namespace expresso::service;

RequestScheduler::RequestScheduler(const Options &Opts)
    : Workers(Opts.Workers == 0 ? 1 : Opts.Workers),
      MaxQueue(Opts.MaxQueue == 0 ? 1 : Opts.MaxQueue) {
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this] { workerMain(); });
}

RequestScheduler::~RequestScheduler() { stop(); }

bool RequestScheduler::submit(Priority P, Task T) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (ShuttingDown || High.size() + Normal.size() >= MaxQueue) {
      ++Counters.Rejected;
      return false;
    }
    (P == Priority::High ? High : Normal).push_back(std::move(T));
    ++Counters.Submitted;
  }
  QueueCv.notify_one();
  return true;
}

bool RequestScheduler::nextTask(Task &Out) {
  std::unique_lock<std::mutex> Lock(Mu);
  QueueCv.wait(Lock, [&] {
    return StopWorkers || !High.empty() || !Normal.empty();
  });
  // Drain semantics: StopWorkers with a non-empty queue still serves the
  // queue first (drain() only discards nothing); stop() cleared it already.
  std::deque<Task> &Q = !High.empty() ? High : Normal;
  if (Q.empty())
    return false; // StopWorkers and nothing queued
  Out = std::move(Q.front());
  Q.pop_front();
  ++Active;
  return true;
}

void RequestScheduler::workerMain() {
  for (;;) {
    Task T;
    if (!nextTask(T))
      return;
    T(); // placement tasks are noexcept by design (like ThreadPool bodies)
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --Active;
      ++Counters.Executed;
    }
    IdleCv.notify_all();
  }
}

void RequestScheduler::shutdown(bool RunQueued) {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    ShuttingDown = true;
    if (!RunQueued) {
      Counters.Discarded += High.size() + Normal.size();
      High.clear();
      Normal.clear();
    }
    // Wait for the queue to empty and every in-flight task to finish
    // before telling workers to exit, so drain() really runs everything.
    IdleCv.wait(Lock, [&] {
      return High.empty() && Normal.empty() && Active == 0;
    });
    StopWorkers = true;
  }
  QueueCv.notify_all();
  // Serialize the joins: drain() and the destructor's stop() may overlap
  // when a shutdown request races process teardown, and join() from two
  // threads on one std::thread is UB.
  std::lock_guard<std::mutex> JoinLock(JoinMu);
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
}

void RequestScheduler::drain() { shutdown(/*RunQueued=*/true); }

void RequestScheduler::stop() { shutdown(/*RunQueued=*/false); }

bool RequestScheduler::shuttingDown() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return ShuttingDown;
}

SchedulerStats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  SchedulerStats S = Counters;
  S.QueuedNow = High.size() + Normal.size();
  S.ActiveNow = Active;
  return S;
}
