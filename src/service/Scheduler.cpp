//===- service/Scheduler.cpp - Request admission and scheduling ---------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "service/Scheduler.h"

using namespace expresso;
using namespace expresso::service;

RequestScheduler::RequestScheduler(const Options &Opts)
    : Workers(Opts.Workers == 0 ? 1 : Opts.Workers),
      MaxQueue(Opts.MaxQueue == 0 ? 1 : Opts.MaxQueue) {
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this] { workerMain(); });
}

RequestScheduler::~RequestScheduler() { stop(); }

bool RequestScheduler::submit(Priority P, Task T) {
  return submit(P, std::move(T), nullptr, nullptr);
}

bool RequestScheduler::submit(Priority P, Task T,
                              std::shared_ptr<support::CancelToken> Cancel,
                              Task OnExpire) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (ShuttingDown) {
      ++Counters.RejectedDraining;
      ++Counters.Rejected;
      return false;
    }
    if (High.size() + Normal.size() >= MaxQueue) {
      ++Counters.RejectedFull;
      ++Counters.Rejected;
      return false;
    }
    Entry E;
    E.Run = std::move(T);
    E.Cancel = std::move(Cancel);
    E.OnExpire = std::move(OnExpire);
    (P == Priority::High ? High : Normal).push_back(std::move(E));
    ++Counters.Submitted;
  }
  QueueCv.notify_one();
  return true;
}

bool RequestScheduler::nextTask(Entry &Out) {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    QueueCv.wait(Lock, [&] {
      return StopWorkers || !High.empty() || !Normal.empty();
    });
    // Drain semantics: StopWorkers with a non-empty queue still serves the
    // queue first (drain() only discards nothing); stop() cleared it already.
    std::deque<Entry> &Q = !High.empty() ? High : Normal;
    if (Q.empty())
      return false; // StopWorkers and nothing queued
    Entry E = std::move(Q.front());
    Q.pop_front();
    if (E.Cancel && E.Cancel->expired()) {
      // Already past its deadline: answer it immediately (off-lock — the
      // handler writes to a client socket) and keep looking. Neither
      // Active nor Executed ticks; this was never real work.
      ++Counters.ExpiredQueued;
      IdleCv.notify_all(); // the queue shrank; a drain() may be waiting
      if (E.OnExpire) {
        Lock.unlock();
        E.OnExpire();
        Lock.lock();
      }
      continue;
    }
    Out = std::move(E);
    ++Active;
    return true;
  }
}

void RequestScheduler::workerMain() {
  for (;;) {
    Entry E;
    if (!nextTask(E))
      return;
    // A placement task that throws must not take the daemon down with
    // std::terminate (the task body answers the client InternalError
    // itself; this is the last-resort backstop for anything it missed).
    try {
      E.Run();
    } catch (...) {
    }
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --Active;
      ++Counters.Executed;
    }
    IdleCv.notify_all();
  }
}

void RequestScheduler::shutdown(bool RunQueued) {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    ShuttingDown = true;
    if (!RunQueued) {
      Counters.Discarded += High.size() + Normal.size();
      High.clear();
      Normal.clear();
    }
    // Wait for the queue to empty and every in-flight task to finish
    // before telling workers to exit, so drain() really runs everything.
    IdleCv.wait(Lock, [&] {
      return High.empty() && Normal.empty() && Active == 0;
    });
    StopWorkers = true;
  }
  QueueCv.notify_all();
  // Serialize the joins: drain() and the destructor's stop() may overlap
  // when a shutdown request races process teardown, and join() from two
  // threads on one std::thread is UB.
  std::lock_guard<std::mutex> JoinLock(JoinMu);
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
}

void RequestScheduler::drain() { shutdown(/*RunQueued=*/true); }

void RequestScheduler::stop() { shutdown(/*RunQueued=*/false); }

bool RequestScheduler::shuttingDown() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return ShuttingDown;
}

SchedulerStats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  SchedulerStats S = Counters;
  S.QueuedNow = High.size() + Normal.size();
  S.ActiveNow = Active;
  return S;
}
