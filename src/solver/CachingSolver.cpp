//===- solver/CachingSolver.cpp - Memoizing solver decorator ------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "solver/CachingSolver.h"

using namespace expresso;
using namespace expresso::solver;
using namespace expresso::logic;

std::unique_ptr<CachingSolver>
CachingSolver::create(TermContext &C, std::unique_ptr<SmtSolver> Backend) {
  if (!Backend || &Backend->context() != &C)
    return nullptr;
  return std::make_unique<CachingSolver>(std::move(Backend));
}

CheckResult CachingSolver::checkSat(const Term *F) {
  ++Queries;
  auto It = Cache.find(F);
  if (It != Cache.end()) {
    ++Stats.Hits;
    return It->second;
  }
  ++Stats.Misses;
  CheckResult R = Backend->checkSat(F);
  // Unknown is not a semantic answer (a timeout-ish backend could do better
  // on a retry), but re-asking within one analysis run would deterministically
  // reproduce it, so caching Unknown too avoids pointless repeat work.
  Cache.emplace(F, R);
  return R;
}
