//===- solver/CachingSolver.cpp - Sharded memoizing solver --------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "solver/CachingSolver.h"

#include "obs/Trace.h"
#include "persist/QueryStore.h"
#include "persist/TermCodec.h"

using namespace expresso;
using namespace expresso::solver;
using namespace expresso::logic;

namespace {

const char *answerName(Answer A) {
  switch (A) {
  case Answer::Sat:
    return "sat";
  case Answer::Unsat:
    return "unsat";
  case Answer::Unknown:
    break;
  }
  return "unknown";
}

} // namespace

std::unique_ptr<CachingSolver>
CachingSolver::create(TermContext &C, std::unique_ptr<SmtSolver> Backend) {
  if (!Backend || &Backend->context() != &C)
    return nullptr;
  return std::make_unique<CachingSolver>(std::move(Backend));
}

CachingSolver::Shard &CachingSolver::shardFor(const Term *F) {
  // The structural hash is well-mixed (multiplicative mixing at intern
  // time), so the low bits stripe evenly across shards.
  return Shards[F->structuralHash() % NumShards];
}

CheckResult CachingSolver::computeOwned(const Term *F,
                                        const ComputeFn &Compute,
                                        obs::Span *Q) {
  CheckResult R;
  if (persist::QueryStore *QS = Store.get()) {
    // Second tier: probe the persistent store by the formula's canonical
    // encoding — always the *equivalent one-shot formula*, whatever
    // session/batching machinery sits inside Compute, so a store warmed in
    // one discharge mode answers every other. Only the single-flight owner
    // reaches here, so the disk counters are exactly the
    // per-distinct-formula found/not-found totals.
    std::string Key = persist::encodeTermKey(F);
    if (QS->lookup(Key, R)) {
      DiskHits.fetch_add(1, std::memory_order_relaxed);
      if (Q)
        Q->arg("tier", "disk");
    } else {
      DiskMisses.fetch_add(1, std::memory_order_relaxed);
      if (Q && Q->enabled()) {
        Q->arg("tier", "solve");
        Q->arg("backend", Backend->name());
      }
      R = Compute(F);
      // Publication gate: a result computed under an expired token is a
      // cancellation artifact (Unknown), not the formula's answer — keep
      // it out of the shared store. (append is a no-op when read-only.)
      if (!cancelled())
        QS->append(Key, R);
    }
  } else {
    if (Q && Q->enabled()) {
      Q->arg("tier", "solve");
      Q->arg("backend", Backend->name());
    }
    R = Compute(F);
  }
  return R;
}

CheckResult CachingSolver::lookupOrCompute(const Term *F,
                                           const ComputeFn &Compute) {
  obs::Span Q(Trace, "solver.query");
  ++Queries;
  Shard &S = shardFor(F);
  std::promise<CheckResult> Promise;
  std::shared_future<CheckResult> Future;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(F);
    if (It != S.Map.end()) {
      // Hit — possibly an in-flight entry another thread is computing; we
      // wait on the future instead of re-solving. Counting in-flight finds
      // as hits keeps hit/miss totals equal to a serial run's (first ask of
      // a formula is the one miss; every later ask is a hit).
      Future = It->second;
      Hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      Owner = true;
      Future = Promise.get_future().share();
      S.Map.emplace(F, Future);
      Misses.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!Owner) {
    CheckResult R = Future.get();
    if (Q.enabled()) {
      Q.arg("tier", "memo");
      Q.arg("answer", answerName(R.TheAnswer));
    }
    return R;
  }

  // Compute outside the shard lock so other formulas in this shard proceed.
  // Unknown is not a semantic answer (a timeout-ish backend could do better
  // on a retry), but re-asking within one analysis run would
  // deterministically reproduce it, so caching Unknown too avoids pointless
  // repeat work.
  try {
    Promise.set_value(computeOwned(F, Compute, &Q));
  } catch (...) {
    // Unpoison the entry so a later ask retries, and propagate the error to
    // any concurrent waiters before rethrowing to our caller.
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      S.Map.erase(F);
    }
    Promise.set_exception(std::current_exception());
    throw;
  }
  CheckResult R = Future.get();
  if (Q.enabled())
    Q.arg("answer", answerName(R.TheAnswer));
  return R;
}

CheckResult CachingSolver::lookupOrCompute(const Term *F,
                                           SmtSolver &ComputeBackend) {
  return lookupOrCompute(
      F, [&](const Term *G) { return ComputeBackend.checkSat(G); });
}

std::vector<CheckResult>
CachingSolver::lookupOrComputeBatch(const std::vector<const Term *> &Fs,
                                    const BatchComputeFn &Compute) {
  const size_t N = Fs.size();
  obs::Span BatchSpan(Trace, "solver.batch");
  std::vector<std::shared_future<CheckResult>> Futures(N);
  std::vector<std::promise<CheckResult>> Promises(N);
  std::vector<char> Owner(N, 0);
  size_t OwnedCount = 0; // span bookkeeping only; counters stay atomic

  // Phase 1: classify strictly in order. Duplicates within the batch find
  // the first occurrence's in-flight entry and count as hits — exactly what
  // asking them one-by-one would have counted. Nothing is waited on yet
  // (an in-batch duplicate's future is fulfilled by *this* call, below).
  for (size_t I = 0; I < N; ++I) {
    ++Queries;
    Shard &S = shardFor(Fs[I]);
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Fs[I]);
    if (It != S.Map.end()) {
      Futures[I] = It->second;
      Hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      Owner[I] = 1;
      ++OwnedCount;
      Futures[I] = Promises[I].get_future().share();
      S.Map.emplace(Fs[I], Futures[I]);
      Misses.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Phases 2 and 3 run under one exception contract mirroring the
  // single-formula path: any throw (key encoding, store I/O, the compute
  // call, a wrong-sized compute result) unpoisons every still-unpublished
  // owned entry and forwards the exception to its waiters — a failed batch
  // must never leave permanently-broken futures in the memo.
  try {
    // Phase 2: persistent-tier probe per owned miss, in order. Store hits
    // publish immediately; the rest become the residual the backend solves.
    persist::QueryStore *QS = Store.get();
    std::vector<const Term *> Residual;
    std::vector<size_t> ResidualIdx;
    std::vector<std::string> ResidualKeys;
    for (size_t I = 0; I < N; ++I) {
      if (!Owner[I])
        continue;
      if (QS) {
        std::string Key = persist::encodeTermKey(Fs[I]);
        CheckResult R;
        if (QS->lookup(Key, R)) {
          DiskHits.fetch_add(1, std::memory_order_relaxed);
          Promises[I].set_value(std::move(R));
          Owner[I] = 0; // published
          continue;
        }
        DiskMisses.fetch_add(1, std::memory_order_relaxed);
        ResidualKeys.push_back(std::move(Key));
      }
      Residual.push_back(Fs[I]);
      ResidualIdx.push_back(I);
    }

    if (BatchSpan.enabled()) {
      BatchSpan.arg("n", static_cast<uint64_t>(N));
      BatchSpan.arg("memo_hits", static_cast<uint64_t>(N - OwnedCount));
      BatchSpan.arg("disk_hits",
                    static_cast<uint64_t>(OwnedCount - Residual.size()));
      BatchSpan.arg("solved", static_cast<uint64_t>(Residual.size()));
      if (!Residual.empty())
        BatchSpan.arg("backend", Backend->name());
    }

    // Phase 3: one compute call over the residual, then write-through and
    // publication.
    if (!Residual.empty()) {
      std::vector<CheckResult> Rs = Compute(Residual);
      if (Rs.size() != Residual.size())
        throw std::logic_error(
            "CachingSolver batch compute returned wrong result count");
      for (size_t K = 0; K < ResidualIdx.size(); ++K) {
        size_t I = ResidualIdx[K];
        // Same publication gate as computeOwned: no store writes once the
        // token has expired.
        if (QS && !cancelled())
          QS->append(ResidualKeys[K], Rs[K]);
        Promises[I].set_value(std::move(Rs[K]));
        Owner[I] = 0; // published
      }
    }
  } catch (...) {
    for (size_t I = 0; I < N; ++I) {
      if (!Owner[I])
        continue;
      Shard &S = shardFor(Fs[I]);
      {
        std::lock_guard<std::mutex> Lock(S.Mu);
        S.Map.erase(Fs[I]);
      }
      Promises[I].set_exception(std::current_exception());
    }
    throw;
  }

  // Phase 4: collect — every future is fulfilled by now (by us, or by a
  // concurrent owner in another thread).
  std::vector<CheckResult> Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Out.push_back(Futures[I].get());
  return Out;
}

CheckResult CachingSolver::checkSat(const Term *F) {
  return lookupOrCompute(F, *Backend);
}

void CachingSolver::setCancelToken(support::CancelToken *T) {
  SmtSolver::setCancelToken(T);
  Backend->setCancelToken(T);
}

size_t CachingSolver::cacheSize() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.Map.size();
  }
  return N;
}

void CachingSolver::clearCache() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Map.clear();
  }
}

/// Worker-side view of a shared CachingSolver: same memo table, private
/// backend for the misses this worker owns.
class CachingSolver::Session : public SmtSolver {
public:
  Session(CachingSolver &Shared, std::unique_ptr<SmtSolver> WorkerBackend)
      : SmtSolver(Shared.context()), Shared(Shared),
        WorkerBackend(std::move(WorkerBackend)) {}

  CheckResult checkSat(const Term *F) override {
    ++Queries; // per-worker lookup count; Shared counts the global total
    return Shared.lookupOrCompute(F, *WorkerBackend);
  }

  std::string name() const override {
    return "session(" + WorkerBackend->name() + ")";
  }

  void setCancelToken(support::CancelToken *T) override {
    SmtSolver::setCancelToken(T);
    WorkerBackend->setCancelToken(T);
  }

private:
  CachingSolver &Shared;
  std::unique_ptr<SmtSolver> WorkerBackend;
};

std::unique_ptr<SmtSolver>
CachingSolver::makeSession(std::unique_ptr<SmtSolver> WorkerBackend) {
  if (!WorkerBackend || &WorkerBackend->context() != &Ctx)
    return nullptr;
  return std::make_unique<Session>(*this, std::move(WorkerBackend));
}

std::vector<std::unique_ptr<SmtSolver>>
solver::mintWorkerBackends(TermContext &C, const SolverFactory &Factory,
                           unsigned Jobs) {
  std::vector<std::unique_ptr<SmtSolver>> Raw;
  if (Jobs == 0 || !Factory)
    return Raw;
  for (unsigned J = 0; J < Jobs; ++J) {
    std::unique_ptr<SmtSolver> Backend = Factory.create(C);
    if (!Backend || &Backend->context() != &C)
      return {};
    Raw.push_back(std::move(Backend));
  }
  return Raw;
}

std::vector<std::unique_ptr<SmtSolver>>
solver::makeWorkerSolvers(TermContext &C, const SolverFactory &Factory,
                          CachingSolver *SharedCache, unsigned Jobs) {
  std::vector<std::unique_ptr<SmtSolver>> Workers;
  if (Jobs <= 1)
    return Workers;
  std::vector<std::unique_ptr<SmtSolver>> Raw =
      mintWorkerBackends(C, Factory, Jobs);
  if (Raw.empty())
    return Workers;
  for (unsigned J = 0; J < Jobs; ++J) {
    if (SharedCache) {
      Workers.push_back(SharedCache->makeSession(std::move(Raw[J])));
      if (!Workers.back())
        return {};
    } else {
      Workers.push_back(std::move(Raw[J]));
    }
  }
  return Workers;
}
