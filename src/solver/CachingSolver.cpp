//===- solver/CachingSolver.cpp - Sharded memoizing solver --------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "solver/CachingSolver.h"

#include "persist/QueryStore.h"
#include "persist/TermCodec.h"

using namespace expresso;
using namespace expresso::solver;
using namespace expresso::logic;

std::unique_ptr<CachingSolver>
CachingSolver::create(TermContext &C, std::unique_ptr<SmtSolver> Backend) {
  if (!Backend || &Backend->context() != &C)
    return nullptr;
  return std::make_unique<CachingSolver>(std::move(Backend));
}

CachingSolver::Shard &CachingSolver::shardFor(const Term *F) {
  // The structural hash is well-mixed (multiplicative mixing at intern
  // time), so the low bits stripe evenly across shards.
  return Shards[F->structuralHash() % NumShards];
}

CheckResult CachingSolver::lookupOrCompute(const Term *F,
                                           SmtSolver &ComputeBackend) {
  ++Queries;
  Shard &S = shardFor(F);
  std::promise<CheckResult> Promise;
  std::shared_future<CheckResult> Future;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(F);
    if (It != S.Map.end()) {
      // Hit — possibly an in-flight entry another thread is computing; we
      // wait on the future instead of re-solving. Counting in-flight finds
      // as hits keeps hit/miss totals equal to a serial run's (first ask of
      // a formula is the one miss; every later ask is a hit).
      Future = It->second;
      Hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      Owner = true;
      Future = Promise.get_future().share();
      S.Map.emplace(F, Future);
      Misses.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!Owner)
    return Future.get();

  // Compute outside the shard lock so other formulas in this shard proceed.
  // Unknown is not a semantic answer (a timeout-ish backend could do better
  // on a retry), but re-asking within one analysis run would
  // deterministically reproduce it, so caching Unknown too avoids pointless
  // repeat work.
  try {
    CheckResult R;
    if (persist::QueryStore *QS = Store.get()) {
      // Second tier: probe the persistent store by canonical encoding.
      // Only the single-flight owner reaches here, so the disk counters
      // are exactly the per-distinct-formula found/not-found totals.
      std::string Key = persist::encodeTermKey(F);
      if (QS->lookup(Key, R)) {
        DiskHits.fetch_add(1, std::memory_order_relaxed);
      } else {
        DiskMisses.fetch_add(1, std::memory_order_relaxed);
        R = ComputeBackend.checkSat(F);
        QS->append(Key, R); // no-op when the store is read-only
      }
    } else {
      R = ComputeBackend.checkSat(F);
    }
    Promise.set_value(std::move(R));
  } catch (...) {
    // Unpoison the entry so a later ask retries, and propagate the error to
    // any concurrent waiters before rethrowing to our caller.
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      S.Map.erase(F);
    }
    Promise.set_exception(std::current_exception());
    throw;
  }
  return Future.get();
}

CheckResult CachingSolver::checkSat(const Term *F) {
  return lookupOrCompute(F, *Backend);
}

size_t CachingSolver::cacheSize() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.Map.size();
  }
  return N;
}

void CachingSolver::clearCache() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Map.clear();
  }
}

/// Worker-side view of a shared CachingSolver: same memo table, private
/// backend for the misses this worker owns.
class CachingSolver::Session : public SmtSolver {
public:
  Session(CachingSolver &Shared, std::unique_ptr<SmtSolver> WorkerBackend)
      : SmtSolver(Shared.context()), Shared(Shared),
        WorkerBackend(std::move(WorkerBackend)) {}

  CheckResult checkSat(const Term *F) override {
    ++Queries; // per-worker lookup count; Shared counts the global total
    return Shared.lookupOrCompute(F, *WorkerBackend);
  }

  std::string name() const override {
    return "session(" + WorkerBackend->name() + ")";
  }

private:
  CachingSolver &Shared;
  std::unique_ptr<SmtSolver> WorkerBackend;
};

std::unique_ptr<SmtSolver>
CachingSolver::makeSession(std::unique_ptr<SmtSolver> WorkerBackend) {
  if (!WorkerBackend || &WorkerBackend->context() != &Ctx)
    return nullptr;
  return std::make_unique<Session>(*this, std::move(WorkerBackend));
}

std::vector<std::unique_ptr<SmtSolver>>
solver::makeWorkerSolvers(TermContext &C, const SolverFactory &Factory,
                          CachingSolver *SharedCache, unsigned Jobs) {
  std::vector<std::unique_ptr<SmtSolver>> Workers;
  if (Jobs <= 1 || !Factory)
    return Workers;
  for (unsigned J = 0; J < Jobs; ++J) {
    std::unique_ptr<SmtSolver> Backend = Factory.create(C);
    if (!Backend || &Backend->context() != &C)
      return {};
    if (SharedCache) {
      Workers.push_back(SharedCache->makeSession(std::move(Backend)));
      if (!Workers.back())
        return {};
    } else {
      Workers.push_back(std::move(Backend));
    }
  }
  return Workers;
}
