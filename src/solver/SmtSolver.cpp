//===- solver/SmtSolver.cpp - Solver backend abstraction ----------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "solver/SmtSolver.h"

#include "logic/Printer.h"
#include "smt/MiniSmt.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace expresso;
using namespace expresso::solver;
using namespace expresso::logic;

SmtSolver::~SmtSolver() = default;

Validity SmtSolver::checkValid(const Term *F) {
  CheckResult R = checkSat(Ctx.not_(F));
  switch (R.TheAnswer) {
  case Answer::Unsat:
    return Validity::Valid;
  case Answer::Sat:
    return Validity::Invalid;
  case Answer::Unknown:
    return Validity::Unknown;
  }
  return Validity::Unknown;
}

namespace {

/// MiniSmt-backed implementation. Sessions are assertion-stack *snapshots*:
/// push/pop/assertTerm maintain a plain vector of asserted terms (scope
/// boundaries recorded as size marks) and every checkSatAssuming re-solves
/// the accumulated conjunction with a fresh one-shot MiniSmt. That gives the
/// full session API with exactly one-shot semantics — no incremental state
/// to get wrong, no answer drift versus a fresh solve — at the cost of no
/// incremental speedup (MiniSmt is the fallback backend; the perf lever is
/// the native Z3 session).
class MiniBackend : public SmtSolver {
public:
  explicit MiniBackend(TermContext &C) : SmtSolver(C) {}

  CheckResult checkSat(const Term *F) override {
    ++Queries;
    return solveOnce({F});
  }

  bool supportsIncremental() const override { return true; }

  bool push() override {
    Marks.push_back(Stack.size());
    return true;
  }

  bool pop() override {
    if (Marks.empty())
      return false;
    Stack.resize(Marks.back());
    Marks.pop_back();
    return true;
  }

  bool assertTerm(const Term *F) override {
    if (!F || F->sort() != Sort::Bool)
      return false;
    Stack.push_back(F);
    return true;
  }

  CheckResult checkSatAssuming(
      const std::vector<const Term *> &Assumptions) override {
    ++Queries;
    std::vector<const Term *> All(Stack.begin(), Stack.end());
    All.insert(All.end(), Assumptions.begin(), Assumptions.end());
    return solveOnce(All);
  }

  std::string name() const override { return "mini"; }

private:
  /// Solves the conjunction of \p Fs inside a private scratch context.
  /// MiniSmt interns auxiliary terms throughout preprocessing and QE;
  /// doing that in the caller's context would make the caller's
  /// creation-id sequence — and with it the operand order of every And/Or
  /// built afterwards (TermContext sorts operands by id) — depend on which
  /// queries were actually solved versus answered from a cache. Results
  /// only carry variable names, so nothing transfers back.
  CheckResult solveOnce(const std::vector<const Term *> &Fs) {
    if (cancelled())
      return CheckResult(); // Unknown without touching the solver
    logic::TermContext Scratch;
    std::vector<const Term *> Transferred;
    Transferred.reserve(Fs.size());
    for (const Term *F : Fs)
      Transferred.push_back(logic::transferTerm(Scratch, F));
    smt::MiniSmt::Config Cfg;
    Cfg.Cancel = Cancel; // polled once per CDCL/theory round
    smt::MiniSmt Solver(Scratch, Cfg);
    smt::SmtResult R = Solver.checkSat(Scratch.and_(std::move(Transferred)));
    CheckResult Out;
    switch (R.Answer) {
    case smt::SatAnswer::Sat:
      Out.TheAnswer = Answer::Sat;
      break;
    case smt::SatAnswer::Unsat:
      Out.TheAnswer = Answer::Unsat;
      break;
    case smt::SatAnswer::Unknown:
      Out.TheAnswer = Answer::Unknown;
      break;
    }
    Out.Model = std::move(R.Model);
    Out.ModelComplete = R.ModelComplete;
    return Out;
  }

  std::vector<const Term *> Stack; ///< asserted terms, all open scopes
  std::vector<size_t> Marks;       ///< Stack.size() at each push()
};

/// Runs two backends and aborts on disagreement (Unknown tolerated). The
/// differential test suite instantiates this to validate MiniSmt against Z3.
class CrossCheckBackend : public SmtSolver {
public:
  CrossCheckBackend(TermContext &C, std::unique_ptr<SmtSolver> A,
                    std::unique_ptr<SmtSolver> B)
      : SmtSolver(C), A(std::move(A)), B(std::move(B)) {}

  CheckResult checkSat(const Term *F) override {
    ++Queries;
    CheckResult RA = A->checkSat(F);
    CheckResult RB = B->checkSat(F);
    if (RA.TheAnswer != Answer::Unknown && RB.TheAnswer != Answer::Unknown &&
        RA.TheAnswer != RB.TheAnswer) {
      std::fprintf(stderr,
                   "solver disagreement on %s: %s says %d, %s says %d\n",
                   printSmtLib(F).c_str(), A->name().c_str(),
                   static_cast<int>(RA.TheAnswer), B->name().c_str(),
                   static_cast<int>(RB.TheAnswer));
      std::abort();
    }
    return RA.TheAnswer != Answer::Unknown ? RA : RB;
  }

  std::string name() const override { return "crosscheck"; }

  // Sessions forward to both backends so the differential property suite
  // can drive push/pop scripts through the cross-checker. Prefix assertions
  // stay non-native (nativeIncremental() is false): both backends carry the
  // full stack and every check is cross-validated against it.
  bool supportsIncremental() const override {
    return A->supportsIncremental() && B->supportsIncremental();
  }

  bool push() override { return A->push() && B->push(); }

  bool pop() override { return A->pop() && B->pop(); }

  bool assertTerm(const Term *F) override {
    return A->assertTerm(F) && B->assertTerm(F);
  }

  CheckResult checkSatAssuming(
      const std::vector<const Term *> &Assumptions) override {
    ++Queries;
    CheckResult RA = A->checkSatAssuming(Assumptions);
    CheckResult RB = B->checkSatAssuming(Assumptions);
    if (RA.TheAnswer != Answer::Unknown && RB.TheAnswer != Answer::Unknown &&
        RA.TheAnswer != RB.TheAnswer) {
      std::fprintf(stderr,
                   "session solver disagreement: %s says %d, %s says %d\n",
                   A->name().c_str(), static_cast<int>(RA.TheAnswer),
                   B->name().c_str(), static_cast<int>(RB.TheAnswer));
      std::abort();
    }
    return RA.TheAnswer != Answer::Unknown ? RA : RB;
  }

  void setCancelToken(support::CancelToken *T) override {
    SmtSolver::setCancelToken(T);
    A->setCancelToken(T);
    B->setCancelToken(T);
  }

private:
  std::unique_ptr<SmtSolver> A, B;
};

} // namespace

// Defined in Z3Solver.cpp when EXPRESSO_HAVE_Z3, in Z3Stub.cpp otherwise.
namespace expresso {
namespace solver {
std::unique_ptr<SmtSolver> createZ3Backend(TermContext &C);
} // namespace solver
} // namespace expresso

std::string solver::defaultSolverName() { return hasZ3() ? "z3" : "mini"; }

SolverKind solver::parseSolverKind(const std::string &Name) {
  if (Name == "mini")
    return SolverKind::Mini;
  if (Name == "z3")
    return SolverKind::Z3;
  if (Name == "crosscheck")
    return SolverKind::CrossCheck;
  return SolverKind::Default;
}

std::unique_ptr<SmtSolver> solver::createSolver(SolverKind Kind,
                                                TermContext &C) {
  switch (Kind) {
  case SolverKind::Mini:
    return std::make_unique<MiniBackend>(C);
  case SolverKind::Z3:
    return createZ3Backend(C);
  case SolverKind::Default: {
    if (auto Z3 = createZ3Backend(C))
      return Z3;
    return std::make_unique<MiniBackend>(C);
  }
  case SolverKind::CrossCheck: {
    auto Z3 = createZ3Backend(C);
    if (!Z3)
      return std::make_unique<MiniBackend>(C);
    return std::make_unique<CrossCheckBackend>(C, std::make_unique<MiniBackend>(C),
                                               std::move(Z3));
  }
  }
  return nullptr;
}
