//===- solver/SolverRig.h - Two-tier analysis solver assembly ---*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One constructor for the solver stack every analysis surface uses: a
/// backend of the requested kind, optionally wrapped in the sharded
/// CachingSolver memo, optionally backed by a persist::QueryStore as the
/// second tier. The CLI, the bench harness, and the placement service all
/// assemble the identical stack through buildSolverRig, so the three
/// surfaces cannot drift apart in how caching is wired — which is half of
/// the cross-surface determinism argument (the other half being that Σ is a
/// pure function of (spec, backend profile) regardless of cache state).
///
/// Profile safety is centralized here: a store is attached only when its
/// profile names the backend that will answer misses. The daemon relies on
/// this — its resident store is keyed to the daemon's default backend, and
/// a request that selects a different solver silently runs memo-only
/// instead of mixing answers from two solvers in one directory.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SOLVER_SOLVERRIG_H
#define EXPRESSO_SOLVER_SOLVERRIG_H

#include "solver/CachingSolver.h"
#include "solver/SmtSolver.h"

#include <memory>
#include <string>

namespace expresso {
namespace persist {
class QueryStore;
}
namespace solver {

/// The assembled solver stack for one analysis. Move-only; the solver()
/// reference stays valid for the rig's lifetime.
struct SolverRig {
  /// Owned backend when no cache wraps it (cache-off configuration);
  /// otherwise the cache owns the backend and this is null.
  std::unique_ptr<SmtSolver> Backend;
  /// The sharded memo (plus attached store, if any); null when caching off.
  std::unique_ptr<CachingSolver> Cache;
  /// True when the store was offered but skipped over a profile mismatch.
  bool StoreProfileMismatch = false;

  explicit operator bool() const { return Backend || Cache; }

  /// The solver analyses should query (the cache when present).
  SmtSolver &solver() {
    return Cache ? static_cast<SmtSolver &>(*Cache) : *Backend;
  }

  /// Cache counters (zeros when caching is off).
  CacheStats cacheStats() const { return Cache ? Cache->stats() : CacheStats(); }
};

/// Builds the analysis solver stack: backend of \p Kind bound to \p C,
/// wrapped in a CachingSolver when \p CacheQueries, with \p Store attached
/// behind the memo when non-null, caching is on, and the store's profile
/// matches the backend's name(). Returns an empty rig (operator bool false)
/// when the backend cannot be built in this configuration (SolverKind::Z3
/// without Z3).
SolverRig buildSolverRig(logic::TermContext &C, SolverKind Kind,
                         bool CacheQueries,
                         std::shared_ptr<persist::QueryStore> Store);

/// The name() of the backend \p Kind resolves to in this build — the
/// profile string persistent stores are keyed to. Minted from a throwaway
/// probe backend in a scratch context (CrossCheck's composite name is not
/// computable statically). Empty when the kind cannot be built here.
std::string backendProfileName(SolverKind Kind);

} // namespace solver
} // namespace expresso

#endif // EXPRESSO_SOLVER_SOLVERRIG_H
