//===- solver/SolverRig.cpp - Two-tier analysis solver assembly ---------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "solver/SolverRig.h"

#include "persist/QueryStore.h"

#include <map>
#include <mutex>

using namespace expresso;
using namespace expresso::solver;

std::string solver::backendProfileName(SolverKind Kind) {
  // A kind's profile is fixed per build, so the probe backend (cheap —
  // heavyweight solver state is lazily created — but not free) is minted
  // at most once per kind per process.
  static std::mutex Mu;
  static std::map<SolverKind, std::string> Memo;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Memo.find(Kind);
    if (It != Memo.end())
      return It->second;
  }
  logic::TermContext Scratch;
  std::unique_ptr<SmtSolver> Probe = createSolver(Kind, Scratch);
  std::string Name = Probe ? Probe->name() : std::string();
  std::lock_guard<std::mutex> Lock(Mu);
  Memo.emplace(Kind, Name);
  return Name;
}

SolverRig solver::buildSolverRig(logic::TermContext &C, SolverKind Kind,
                                 bool CacheQueries,
                                 std::shared_ptr<persist::QueryStore> Store) {
  SolverRig Rig;
  std::unique_ptr<SmtSolver> Backend = createSolver(Kind, C);
  if (!Backend)
    return Rig; // unbuildable configuration (e.g. --solver=z3 without Z3)

  if (!CacheQueries) {
    Rig.Backend = std::move(Backend);
    return Rig;
  }

  std::string Profile = Backend->name();
  Rig.Cache = CachingSolver::create(C, std::move(Backend));
  if (Rig.Cache && Store) {
    if (Store->profile() == Profile)
      Rig.Cache->attachStore(std::move(Store));
    else
      Rig.StoreProfileMismatch = true; // memo-only: never mix solver answers
  }
  return Rig;
}
