//===- solver/SolverFactory.h - Per-worker backend factory ------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solver backends are cheap to construct but not thread-safe (MiniSmt keeps
/// per-solve scratch state; Z3 contexts must not be shared across threads).
/// The parallel placement engine therefore gives every worker its own
/// backend instance, produced by a SolverFactory: a copyable recipe that,
/// given a TermContext, mints a fresh SmtSolver. The common case wraps a
/// SolverKind; tests can inject arbitrary construction lambdas.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SOLVER_SOLVERFACTORY_H
#define EXPRESSO_SOLVER_SOLVERFACTORY_H

#include "solver/SmtSolver.h"

#include <functional>

namespace expresso {
namespace solver {

/// A copyable recipe for minting per-worker solver backends.
class SolverFactory {
public:
  using FactoryFn =
      std::function<std::unique_ptr<SmtSolver>(logic::TermContext &)>;

  /// An invalid factory; create() returns null. Placement falls back to the
  /// serial engine when asked to parallelize without a valid factory.
  SolverFactory() = default;

  /// Mints createSolver(Kind, C) backends.
  explicit SolverFactory(SolverKind Kind);

  /// Mints backends from a custom recipe (test injection).
  explicit SolverFactory(FactoryFn Fn) : Fn(std::move(Fn)) {}

  /// A fresh backend bound to \p C, or null when the factory is invalid or
  /// the recipe cannot produce one (e.g. SolverKind::Z3 without Z3).
  std::unique_ptr<SmtSolver> create(logic::TermContext &C) const {
    return Fn ? Fn(C) : nullptr;
  }

  explicit operator bool() const { return static_cast<bool>(Fn); }

private:
  FactoryFn Fn;
};

} // namespace solver
} // namespace expresso

#endif // EXPRESSO_SOLVER_SOLVERFACTORY_H
