//===- solver/CachingSolver.h - Memoizing solver decorator ------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decorator over any SmtSolver that memoizes checkSat results. Signal
/// placement asks many structurally identical validity questions — the same
/// no-signal triple appears once per (CCR, predicate-class) pair, invariant
/// inference re-proves the same inductiveness VCs across fixpoint rounds,
/// and the paper's Table 1 shows solver time dominating analysis time — so
/// deduplicating queries is the first perf lever on the hot path.
///
/// Because terms are hash-consed, structurally equal formulas within one
/// TermContext are pointer-equal: the cache key is the term pointer, hashed
/// by its precomputed structural hash (Term::structuralHash). A solver's
/// answer for a formula is state-free (every checkSat starts from a fresh
/// backend state), so memoization is sound with no generation tracking.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SOLVER_CACHINGSOLVER_H
#define EXPRESSO_SOLVER_CACHINGSOLVER_H

#include "solver/SmtSolver.h"

#include <unordered_map>

namespace expresso {
namespace solver {

/// Hit/miss accounting for one CachingSolver.
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;

  uint64_t lookups() const { return Hits + Misses; }
  double hitRate() const {
    return lookups() == 0 ? 0.0 : static_cast<double>(Hits) / lookups();
  }
};

/// Memoizing decorator implementing the SmtSolver interface. Wraps either a
/// borrowed backend (whose lifetime the caller guarantees) or an owned one.
class CachingSolver : public SmtSolver {
public:
  /// Decorates \p Backend without taking ownership. The backend must be
  /// bound to the same TermContext (guaranteed here by construction).
  explicit CachingSolver(SmtSolver &Backend)
      : SmtSolver(Backend.context()), Backend(&Backend) {}

  /// Decorates and owns \p Backend (must be non-null).
  explicit CachingSolver(std::unique_ptr<SmtSolver> Backend)
      : SmtSolver(Backend->context()), Owned(std::move(Backend)) {
    this->Backend = Owned.get();
  }

  /// Safe factory: returns null when \p Backend is null or is bound to a
  /// TermContext other than \p C. A cache keyed on terms from one context
  /// must never answer queries about terms from another — interning makes
  /// pointer equality semantic only within a single context.
  static std::unique_ptr<CachingSolver>
  create(logic::TermContext &C, std::unique_ptr<SmtSolver> Backend);

  CheckResult checkSat(const logic::Term *F) override;

  std::string name() const override { return "cache(" + Backend->name() + ")"; }

  const CacheStats &stats() const { return Stats; }
  size_t cacheSize() const { return Cache.size(); }
  void clearCache() { Cache.clear(); }

  /// The decorated backend (for cross-check tests and diagnostics).
  SmtSolver &backend() { return *Backend; }

private:
  std::unique_ptr<SmtSolver> Owned; ///< null when decorating a borrowed ref
  SmtSolver *Backend = nullptr;
  std::unordered_map<const logic::Term *, CheckResult, logic::TermStructuralHash>
      Cache;
  CacheStats Stats;
};

} // namespace solver
} // namespace expresso

#endif // EXPRESSO_SOLVER_CACHINGSOLVER_H
