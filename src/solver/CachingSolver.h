//===- solver/CachingSolver.h - Sharded memoizing solver --------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decorator over any SmtSolver that memoizes checkSat results. Signal
/// placement asks many structurally identical validity questions — the same
/// no-signal triple appears once per (CCR, predicate-class) pair, invariant
/// inference re-proves the same inductiveness VCs across fixpoint rounds,
/// and the paper's Table 1 shows solver time dominating analysis time — so
/// deduplicating queries is the first perf lever on the hot path.
///
/// Because terms are hash-consed, structurally equal formulas within one
/// TermContext are pointer-equal: the cache key is the term pointer, hashed
/// by its precomputed structural hash (Term::structuralHash). A solver's
/// answer for a formula is state-free (every checkSat starts from a fresh
/// backend state), so memoization is sound with no generation tracking.
///
/// Concurrency: the memo table is sharded into fixed mutex-striped buckets,
/// and each entry is a single-flight future — the first thread to ask about
/// a formula computes it on its own backend while later askers block on the
/// entry instead of duplicating the solve. This makes the hit/miss counts
/// *deterministic* under any interleaving: misses always equal the number of
/// distinct formulas asked, exactly as in a serial run. Hit/miss/query
/// counters are atomics.
///
/// Worker threads do not share the primary backend (backends are not
/// thread-safe); they attach via makeSession(), which pairs the shared memo
/// table with a private backend instance for cache misses.
///
/// Two-tier operation: when a persist::QueryStore is attached
/// (attachStore), the sharded memo stays in front and the disk store sits
/// behind it — a memo miss probes the store by the formula's canonical
/// serialization (persist::TermCodec) before falling through to the
/// backend, and backend answers are written through so the next process
/// starts warm. Worker sessions inherit the store automatically (they
/// funnel through the shared lookupOrCompute), and per-tier hit/miss
/// counters stay deterministic because only the single-flight owner of a
/// formula ever touches the persistent tier.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SOLVER_CACHINGSOLVER_H
#define EXPRESSO_SOLVER_CACHINGSOLVER_H

#include "solver/SmtSolver.h"
#include "solver/SolverFactory.h"

#include <array>
#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace expresso {
namespace obs {
class Span;
class Tracer;
}
namespace persist {
class QueryStore;
}
namespace solver {

/// Hit/miss accounting snapshot for one CachingSolver, per tier: the
/// in-memory memo (Hits/Misses) and, when a persist::QueryStore is
/// attached, the persistent tier behind it (DiskHits/DiskMisses). Every
/// memo miss becomes exactly one disk lookup, so DiskHits + DiskMisses ==
/// Misses when a store is attached and 0 otherwise — and all four counters
/// are deterministic under any parallel interleaving (single-flight memo
/// entries mean one owner per distinct formula).
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t DiskHits = 0;   ///< memo misses answered by the persistent store
  uint64_t DiskMisses = 0; ///< memo misses that had to hit the backend

  uint64_t lookups() const { return Hits + Misses; }
  double hitRate() const {
    return lookups() == 0 ? 0.0 : static_cast<double>(Hits) / lookups();
  }
  uint64_t diskLookups() const { return DiskHits + DiskMisses; }
  double diskHitRate() const {
    return diskLookups() == 0 ? 0.0
                              : static_cast<double>(DiskHits) / diskLookups();
  }
};

/// Memoizing decorator implementing the SmtSolver interface. Wraps either a
/// borrowed backend (whose lifetime the caller guarantees) or an owned one.
class CachingSolver : public SmtSolver {
public:
  /// Decorates \p Backend without taking ownership. The backend must be
  /// bound to the same TermContext (guaranteed here by construction).
  explicit CachingSolver(SmtSolver &Backend)
      : SmtSolver(Backend.context()), Backend(&Backend) {}

  /// Decorates and owns \p Backend (must be non-null).
  explicit CachingSolver(std::unique_ptr<SmtSolver> Backend)
      : SmtSolver(Backend->context()), Owned(std::move(Backend)) {
    this->Backend = Owned.get();
  }

  /// Safe factory: returns null when \p Backend is null or is bound to a
  /// TermContext other than \p C. A cache keyed on terms from one context
  /// must never answer queries about terms from another — interning makes
  /// pointer equality semantic only within a single context.
  static std::unique_ptr<CachingSolver>
  create(logic::TermContext &C, std::unique_ptr<SmtSolver> Backend);

  CheckResult checkSat(const logic::Term *F) override;

  /// Computes the answer for one formula on a miss. Receives the formula
  /// itself; how it is discharged (one-shot, or as a delta under a solver
  /// session whose asserted prefix the formula entails) is the caller's
  /// business — the cache only requires that the result equal a one-shot
  /// checkSat(F).
  using ComputeFn = std::function<CheckResult(const logic::Term *)>;

  /// Computes answers for a *batch* of distinct formulas in one go (e.g.
  /// one checkSatBatch solver call). Must return exactly one result per
  /// input formula, positionally.
  using BatchComputeFn = std::function<std::vector<CheckResult>(
      const std::vector<const logic::Term *> &)>;

  /// The single-flight lookup with a caller-supplied compute for the miss
  /// path. Identical counter semantics to checkSat(): one Queries tick, a
  /// memo Hit or Miss, and — for the owning miss, when a store is attached
  /// — one persistent-tier probe plus write-through. This is how solver
  /// sessions keep the cache on their path: the cache key is always the
  /// equivalent one-shot formula, whatever \p Compute does internally.
  CheckResult lookupOrCompute(const logic::Term *F, const ComputeFn &Compute);

  /// Batched single-flight lookup: processes \p Fs strictly in order —
  /// memo probe (hit counts exactly as if asked one-by-one, including
  /// duplicates within the batch), then a persistent-store probe per owned
  /// miss, then ONE \p Compute call over the still-unanswered rest, then
  /// publication. Counter totals are therefore identical to issuing the
  /// same formulas individually, which is the cold/warm and
  /// incremental-vs-one-shot parity contract. Returns one result per input.
  std::vector<CheckResult>
  lookupOrComputeBatch(const std::vector<const logic::Term *> &Fs,
                       const BatchComputeFn &Compute);

  std::string name() const override { return "cache(" + Backend->name() + ")"; }

  /// Forwards the token to the primary backend and additionally gates the
  /// persistent tier: once the token expires, owned misses are still
  /// computed (they come back Unknown almost immediately) but are *never*
  /// written through to the store — a cancelled run's Unknowns are
  /// artifacts of the deadline, not of the formula, and publishing them
  /// would poison every later process that trusts the store.
  void setCancelToken(support::CancelToken *T) override;

  /// Attaches (or detaches, with null) a persistent store as the second
  /// tier: memo misses first probe the store by the formula's canonical
  /// encoding; store misses are computed on the backend and written through
  /// (unless the store is read-only). The store outlives any formula this
  /// solver caches and may be shared by several CachingSolvers across
  /// different TermContexts — keys are context-free byte strings.
  void attachStore(std::shared_ptr<persist::QueryStore> Store) {
    this->Store = std::move(Store);
  }
  persist::QueryStore *store() const { return Store.get(); }

  /// Attaches (or detaches, with null) a span tracer: every lookup then
  /// records one "solver.query" span (batches record one "solver.batch")
  /// carrying its cache-tier outcome — "memo" (answered by the in-memory
  /// table, in-flight waits included), "disk" (persistent store), or
  /// "solve" (computed on a backend, with the backend's name) — plus the
  /// answer. Tracing reads counters and clocks only: it never touches the
  /// memo, the store, or any stat, so traced and untraced runs are
  /// byte-identical (the obs determinism contract). Not owned; callers
  /// must detach before the tracer dies (placeSignals does, via a scope
  /// guard).
  void setTracer(obs::Tracer *T) { Trace = T; }
  obs::Tracer *tracer() const { return Trace; }

  /// A per-worker handle onto this memo table. The session shares (and
  /// populates) the cache but discharges misses on \p WorkerBackend, which
  /// it owns — so placement workers never touch the primary backend. The
  /// session's own numQueries() counts the lookups that worker issued.
  /// Returns null when \p WorkerBackend is null or bound to another context.
  std::unique_ptr<SmtSolver>
  makeSession(std::unique_ptr<SmtSolver> WorkerBackend);

  /// Snapshot of the per-tier hit/miss counters (atomics read relaxed;
  /// exact once concurrent queries have drained).
  CacheStats stats() const {
    CacheStats S;
    S.Hits = Hits.load(std::memory_order_relaxed);
    S.Misses = Misses.load(std::memory_order_relaxed);
    S.DiskHits = DiskHits.load(std::memory_order_relaxed);
    S.DiskMisses = DiskMisses.load(std::memory_order_relaxed);
    return S;
  }
  size_t cacheSize() const;
  void clearCache();

  /// The decorated backend (for cross-check tests and diagnostics).
  SmtSolver &backend() { return *Backend; }

private:
  class Session;

  /// The single-flight lookup: returns the memoized result, or computes it
  /// on \p ComputeBackend while publishing an in-flight entry that
  /// concurrent askers of the same formula wait on.
  CheckResult lookupOrCompute(const logic::Term *F, SmtSolver &ComputeBackend);

  /// Probes the persistent tier for the owning miss of \p F (counting disk
  /// hit/miss) and computes + writes through on a store miss. Shared by the
  /// single and batched owner paths. \p Q (may be null) is the caller's
  /// query span; the tier outcome is recorded onto it.
  CheckResult computeOwned(const logic::Term *F, const ComputeFn &Compute,
                           obs::Span *Q = nullptr);

  static constexpr size_t NumShards = 16;
  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<const logic::Term *, std::shared_future<CheckResult>,
                       logic::TermStructuralHash>
        Map;
  };
  Shard &shardFor(const logic::Term *F);

  std::unique_ptr<SmtSolver> Owned; ///< null when decorating a borrowed ref
  SmtSolver *Backend = nullptr;
  obs::Tracer *Trace = nullptr; ///< not owned; null = tracing off
  std::shared_ptr<persist::QueryStore> Store; ///< second tier; may be null
  std::array<Shard, NumShards> Shards;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> DiskHits{0};
  std::atomic<uint64_t> DiskMisses{0};
};

/// Mints one private raw backend per job from \p Factory, each validated
/// against \p C. Empty — callers must then stay serial — when \p Jobs == 0,
/// the factory is invalid, or any backend cannot be minted. The raw-handle
/// sibling of makeWorkerSolvers, for the incremental-session engines (which
/// need push/pop on the backend itself); shared so the mint/validate
/// sequence cannot diverge between placement and the invariant fixpoint.
std::vector<std::unique_ptr<SmtSolver>>
mintWorkerBackends(logic::TermContext &C, const SolverFactory &Factory,
                   unsigned Jobs);

/// Builds the per-worker solver handles for a parallel fan-out: one private
/// backend per job minted by \p Factory, each wrapped as a session of
/// \p SharedCache when non-null (raw backends otherwise — the cache-off
/// configuration). Returns an empty vector — callers must then stay serial
/// — when \p Jobs <= 1, the factory is invalid, or any backend cannot be
/// minted for \p C. Shared by placeSignals and the invariant fixpoint so
/// the mint/validate/session sequence cannot diverge between them.
std::vector<std::unique_ptr<SmtSolver>>
makeWorkerSolvers(logic::TermContext &C, const SolverFactory &Factory,
                  CachingSolver *SharedCache, unsigned Jobs);

} // namespace solver
} // namespace expresso

#endif // EXPRESSO_SOLVER_CACHINGSOLVER_H
