//===- solver/Z3Solver.cpp - Z3 backend (the paper's solver) -----------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates logic::Term formulas into Z3 expressions and queries Z3,
/// mirroring the paper's implementation section ("invokes the Z3 SMT solver
/// for checking logical validity"). Compiled only when z3++.h is available;
/// Z3Stub.cpp provides the factory otherwise.
///
/// Two discharge paths coexist per backend instance:
///
///   * checkSat() is *absolute and context-fresh*: a new z3::context and
///     z3::solver per query, exactly the paper-style one-context-per-query
///     configuration. This is deliberately not sped up — it is the
///     --incremental=off ablation baseline.
///   * The session API (push/pop/assertTerm/checkSatAssuming/checkSatBatch)
///     runs against one lazily-created long-lived z3::context + z3::solver,
///     with a persistent Term→expr translation memo, so shared prefixes are
///     asserted and internalized once and each delta rides Z3's incremental
///     state. checkSatBatch guards every formula with a fresh assumption
///     literal and decides the family with check(assumptions) calls,
///     reading answers out of one model (sat decides every formula at once)
///     or unsat cores (a singleton core decides its formula; larger cores
///     fall back to per-literal checks that still re-assert nothing).
///
/// Every session entry point catches z3 exceptions and fails closed (false
/// or Unknown) — a broken session can cost performance, never an answer.
///
//===----------------------------------------------------------------------===//

#include "solver/SmtSolver.h"

#include <z3++.h>

#include <climits>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <unordered_set>

using namespace expresso;
using namespace expresso::solver;
using namespace expresso::logic;

namespace {

class Z3Backend : public SmtSolver {
public:
  explicit Z3Backend(TermContext &C) : SmtSolver(C) {}

  CheckResult checkSat(const Term *F) override {
    ++Queries;
    CheckResult Out;
    if (cancelled())
      return Out; // Unknown without spinning up a context
    z3::context Z3Ctx;
    try {
      z3::solver Solver(Z3Ctx);
      applyDeadline(Solver);
      // An explicit cancel() interrupts the live context mid-solve; the
      // deadline itself rides Z3's native timeout watchdog (applyDeadline),
      // which cannot perturb a check that completes in time.
      support::ScopedInterrupt Guard(Cancel,
                                     [&Z3Ctx] { Z3Ctx.interrupt(); });
      std::unordered_map<const Term *, z3::expr> Memo;
      Solver.add(translate(Z3Ctx, F, Memo));
      switch (Solver.check()) {
      case z3::unsat:
        Out.TheAnswer = Answer::Unsat;
        return Out;
      case z3::unknown:
        Out.TheAnswer = Answer::Unknown;
        return Out;
      case z3::sat:
        break;
      }
      extractModel(Out, Z3Ctx, Solver.get_model(), {F}, Memo);
    } catch (const z3::exception &) {
      return CheckResult(); // Unknown — an interrupted solve may throw
    }
    return Out;
  }

  std::string name() const override { return "z3"; }

  //===--------------------------------------------------------------------===
  // Incremental sessions: one long-lived z3::solver per backend instance.
  //===--------------------------------------------------------------------===

  bool supportsIncremental() const override { return true; }
  bool nativeIncremental() const override { return true; }

  bool push() override {
    Session *S = session();
    if (!S)
      return false;
    try {
      S->Solver.push();
      ++S->Depth;
      return true;
    } catch (const z3::exception &) {
      killSession();
      return false;
    }
  }

  bool pop() override {
    Session *S = session();
    if (!S || S->Depth == 0)
      return false;
    try {
      S->Solver.pop();
      --S->Depth;
      return true;
    } catch (const z3::exception &) {
      killSession();
      return false;
    }
  }

  bool assertTerm(const Term *F) override {
    Session *S = session();
    if (!S || !F || F->sort() != Sort::Bool)
      return false;
    try {
      S->Solver.add(translate(S->Ctx, F, S->Memo));
      return true;
    } catch (const z3::exception &) {
      killSession();
      return false;
    }
  }

  CheckResult checkSatAssuming(
      const std::vector<const Term *> &Assumptions) override {
    ++Queries;
    CheckResult Out;
    if (cancelled())
      return Out;
    Session *S = session();
    if (!S)
      return Out;
    // A temporary scope keeps the assumptions out of the persistent stack;
    // arbitrary formulas (not just literals) are allowed this way.
    try {
      S->Solver.push();
    } catch (const z3::exception &) {
      killSession();
      return Out;
    }
    try {
      applyDeadline(S->Solver);
      support::ScopedInterrupt Guard(Cancel,
                                     [S] { S->Ctx.interrupt(); });
      for (const Term *A : Assumptions)
        S->Solver.add(translate(S->Ctx, A, S->Memo));
      switch (S->Solver.check()) {
      case z3::unsat:
        Out.TheAnswer = Answer::Unsat;
        break;
      case z3::unknown:
        break;
      case z3::sat:
        extractModel(Out, S->Ctx, S->Solver.get_model(), Assumptions,
                     S->Memo);
        break;
      }
      S->Solver.pop(); // matches the push above; Depth is untouched
    } catch (const z3::exception &) {
      killSession();
      return CheckResult();
    }
    // Fail closed: a session whose check was cut short by cancellation is
    // retired, not resumed — later sessions start from a clean context.
    if (Out.TheAnswer == Answer::Unknown && cancelled())
      killSession();
    return Out;
  }

  std::vector<CheckResult>
  checkSatBatch(const std::vector<const Term *> &Fs) override {
    Queries.fetch_add(Fs.size(), std::memory_order_relaxed);
    std::vector<CheckResult> Answers(Fs.size());
    if (Fs.empty() || cancelled())
      return Answers;
    Session *S = session();
    if (!S)
      return Answers; // all Unknown — fail closed
    try {
      S->Solver.push();
    } catch (const z3::exception &) {
      killSession();
      return Answers;
    }
    try {
      applyDeadline(S->Solver);
      support::ScopedInterrupt Guard(Cancel,
                                     [S] { S->Ctx.interrupt(); });
      // Guard every formula with a fresh assumption literal p_i and assert
      // p_i => F_i once; all subsequent check(assumptions) calls reuse the
      // internalized formulas without re-asserting anything.
      std::vector<z3::expr> Proxies;
      std::unordered_map<std::string, size_t> ProxyIndex;
      Proxies.reserve(Fs.size());
      for (size_t I = 0; I < Fs.size(); ++I) {
        std::string Name =
            "xpr!assume!" + std::to_string(S->ProxyBatch) + "!" +
            std::to_string(I);
        z3::expr P = S->Ctx.bool_const(Name.c_str());
        S->Solver.add(z3::implies(P, translate(S->Ctx, Fs[I], S->Memo)));
        ProxyIndex.emplace(Name, I);
        Proxies.push_back(P);
      }
      ++S->ProxyBatch;

      // Decide the family: check all remaining assumptions together. A sat
      // answer's model satisfies every assumed formula, so it decides all
      // of them at once; unsat yields a core whose singleton case decides
      // one formula, and larger (or unknown) cases degrade to per-literal
      // checks that still ride the session state.
      std::vector<size_t> Remaining(Fs.size());
      for (size_t I = 0; I < Fs.size(); ++I)
        Remaining[I] = I;
      auto checkOne = [&](size_t I) {
        CheckResult R;
        z3::expr_vector One(S->Ctx);
        One.push_back(Proxies[I]);
        switch (S->Solver.check(One)) {
        case z3::unsat:
          R.TheAnswer = Answer::Unsat;
          break;
        case z3::unknown:
          break;
        case z3::sat:
          extractModel(R, S->Ctx, S->Solver.get_model(), {Fs[I]}, S->Memo);
          break;
        }
        return R;
      };
      while (!Remaining.empty()) {
        z3::expr_vector As(S->Ctx);
        for (size_t I : Remaining)
          As.push_back(Proxies[I]);
        z3::check_result CR = S->Solver.check(As);
        if (CR == z3::sat) {
          z3::model Model = S->Solver.get_model();
          for (size_t I : Remaining)
            extractModel(Answers[I], S->Ctx, Model, {Fs[I]}, S->Memo);
          break;
        }
        if (CR == z3::unknown) {
          for (size_t I : Remaining)
            Answers[I] = checkOne(I);
          break;
        }
        // unsat: read the core of assumption literals.
        std::vector<size_t> CoreIdx;
        z3::expr_vector Core = S->Solver.unsat_core();
        for (unsigned K = 0; K < Core.size(); ++K) {
          auto It = ProxyIndex.find(Core[K].decl().name().str());
          if (It != ProxyIndex.end())
            CoreIdx.push_back(It->second);
        }
        if (CoreIdx.empty()) {
          // The asserted stack alone is unsat: every formula is unsat
          // relative to it.
          for (size_t I : Remaining)
            Answers[I].TheAnswer = Answer::Unsat;
          break;
        }
        if (CoreIdx.size() == 1)
          Answers[CoreIdx.front()].TheAnswer = Answer::Unsat;
        else
          for (size_t I : CoreIdx)
            Answers[I] = checkOne(I);
        std::vector<size_t> Next;
        for (size_t I : Remaining) {
          bool InCore = false;
          for (size_t CI : CoreIdx)
            InCore |= CI == I;
          if (!InCore)
            Next.push_back(I);
        }
        Remaining = std::move(Next);
      }
      S->Solver.pop();
    } catch (const z3::exception &) {
      killSession();
      return std::vector<CheckResult>(Fs.size()); // all Unknown
    }
    if (cancelled())
      killSession(); // fail-closed retirement, as in checkSatAssuming
    return Answers;
  }

private:
  /// Long-lived per-instance session state, created on first use. Terms are
  /// interned and never freed, so the translation memo stays valid for the
  /// backend's lifetime and shared subterms translate exactly once.
  struct Session {
    z3::context Ctx;
    z3::solver Solver;
    std::unordered_map<const Term *, z3::expr> Memo;
    unsigned Depth = 0;      ///< open push() scopes
    uint64_t ProxyBatch = 0; ///< uniquifies batch assumption literals
    Session() : Solver(Ctx) {}
  };

  Session *session() {
    if (SessionDead)
      return nullptr;
    if (!TheSession) {
      try {
        TheSession = std::make_unique<Session>();
      } catch (const z3::exception &) {
        SessionDead = true;
        return nullptr;
      }
    }
    return TheSession.get();
  }

  /// After any z3 exception the session state is unreliable; retire it so
  /// every later session call fails closed (plain checkSat is unaffected —
  /// it never touches the session).
  void killSession() {
    TheSession.reset();
    SessionDead = true;
  }

  /// Arms Z3's per-check timeout watchdog with the token's remaining
  /// budget. A watchdog only *interrupts* — it never changes how a check
  /// that finishes in time searches — so checks completed under deadline
  /// stay byte-identical to a run with no deadline at all.
  void applyDeadline(z3::solver &Solver) {
    if (!Cancel)
      return;
    double Left = Cancel->remainingSeconds();
    if (!std::isfinite(Left))
      return; // cancel-only token: the interrupt hook covers it
    double Ms = Left * 1000.0 + 1.0;
    unsigned Timeout =
        Ms >= static_cast<double>(UINT_MAX) ? UINT_MAX
                                            : static_cast<unsigned>(Ms);
    z3::params P(Solver.ctx());
    P.set("timeout", Timeout);
    Solver.set(P);
  }

  /// Collects the distinct Select nodes of \p T's DAG in deterministic
  /// DFS order. Model extraction reads array contents through these — and
  /// *only* these, never the whole translation memo: a session memo holds
  /// terms from every earlier query, and scanning it would both cost
  /// O(session lifetime) per extraction and inject other queries' select
  /// points into this formula's model, breaking model parity with a
  /// one-shot solve of the same formula.
  static void collectSelects(const Term *T,
                             std::unordered_set<const Term *> &Seen,
                             std::vector<const Term *> &Out) {
    if (!Seen.insert(T).second)
      return;
    if (T->kind() == TermKind::Select)
      Out.push_back(T);
    for (const Term *Op : T->operands())
      collectSelects(Op, Seen, Out);
  }

  /// Fills \p Out with Sat plus a model over the free variables of \p
  /// Roots, read from \p Model. Array variables are reconstructed pointwise
  /// through the select terms occurring in \p Roots (all already translated
  /// in \p Memo, since the roots themselves were).
  void extractModel(CheckResult &Out, z3::context &Z, z3::model Model,
                    const std::vector<const Term *> &Roots,
                    std::unordered_map<const Term *, z3::expr> &Memo) {
    Out.TheAnswer = Answer::Sat;
    Out.ModelComplete = true;
    std::unordered_set<const Term *> Seen;
    std::vector<const Term *> Selects;
    for (const Term *Root : Roots)
      collectSelects(Root, Seen, Selects);
    for (const Term *Root : Roots) {
      for (const Term *V : freeVars(Root)) {
        if (Out.Model.count(V->varName()))
          continue;
        z3::expr E = translate(Z, V, Memo);
        z3::expr Val = Model.eval(E, /*model_completion=*/true);
        switch (V->sort()) {
        case Sort::Int: {
          int64_t I = 0;
          if (Val.is_numeral_i64(I)) {
            Out.Model[V->varName()] = Value::ofInt(I);
          } else {
            Out.ModelComplete = false;
          }
          break;
        }
        case Sort::Bool:
          Out.Model[V->varName()] = Value::ofBool(Val.is_true());
          break;
        case Sort::IntArray:
        case Sort::BoolArray: {
          // Reconstruct pointwise through the roots' own select terms.
          Value AV = Value::ofArray(V->sort(), {}, 0);
          for (const Term *SelTerm : Selects) {
            if (SelTerm->operand(0) != V)
              continue;
            z3::expr Idx =
                Model.eval(translate(Z, SelTerm->operand(1), Memo), true);
            z3::expr Elem = Model.eval(translate(Z, SelTerm, Memo), true);
            int64_t IdxV = 0;
            if (!Idx.is_numeral_i64(IdxV))
              continue;
            if (SelTerm->sort() == Sort::Bool) {
              AV.A[IdxV] = Elem.is_true() ? 1 : 0;
            } else {
              int64_t EV = 0;
              if (Elem.is_numeral_i64(EV))
                AV.A[IdxV] = EV;
            }
          }
          Out.Model[V->varName()] = AV;
          break;
        }
        }
      }
    }
  }

  std::unique_ptr<Session> TheSession;
  bool SessionDead = false;

  z3::expr translate(z3::context &Z, const Term *T,
                     std::unordered_map<const Term *, z3::expr> &Memo) {
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    z3::expr E = translateUncached(Z, T, Memo);
    Memo.emplace(T, E);
    return E;
  }

  z3::sort z3Sort(z3::context &Z, Sort S) {
    switch (S) {
    case Sort::Int:
      return Z.int_sort();
    case Sort::Bool:
      return Z.bool_sort();
    case Sort::IntArray:
      return Z.array_sort(Z.int_sort(), Z.int_sort());
    case Sort::BoolArray:
      return Z.array_sort(Z.int_sort(), Z.bool_sort());
    }
    return Z.int_sort();
  }

  z3::expr translateUncached(z3::context &Z, const Term *T,
                             std::unordered_map<const Term *, z3::expr> &Memo) {
    switch (T->kind()) {
    case TermKind::IntConst:
      return Z.int_val(T->intValue());
    case TermKind::BoolConst:
      return Z.bool_val(T->boolValue());
    case TermKind::Var:
      return Z.constant(T->varName().c_str(), z3Sort(Z, T->sort()));
    case TermKind::Add: {
      z3::expr E = translate(Z, T->operand(0), Memo);
      for (unsigned I = 1; I < T->numOperands(); ++I)
        E = E + translate(Z, T->operand(I), Memo);
      return E;
    }
    case TermKind::Mul:
      return translate(Z, T->operand(0), Memo) *
             translate(Z, T->operand(1), Memo);
    case TermKind::Ite:
      return z3::ite(translate(Z, T->operand(0), Memo),
                     translate(Z, T->operand(1), Memo),
                     translate(Z, T->operand(2), Memo));
    case TermKind::Select:
      return z3::select(translate(Z, T->operand(0), Memo),
                        translate(Z, T->operand(1), Memo));
    case TermKind::Store:
      return z3::store(translate(Z, T->operand(0), Memo),
                       translate(Z, T->operand(1), Memo),
                       translate(Z, T->operand(2), Memo));
    case TermKind::Eq:
      return translate(Z, T->operand(0), Memo) ==
             translate(Z, T->operand(1), Memo);
    case TermKind::Le:
      return translate(Z, T->operand(0), Memo) <=
             translate(Z, T->operand(1), Memo);
    case TermKind::Lt:
      return translate(Z, T->operand(0), Memo) <
             translate(Z, T->operand(1), Memo);
    case TermKind::Divides:
      return z3::mod(translate(Z, T->operand(0), Memo),
                     Z.int_val(T->intValue())) == Z.int_val(0);
    case TermKind::Not:
      return !translate(Z, T->operand(0), Memo);
    case TermKind::And: {
      z3::expr_vector V(Z);
      for (const Term *Op : T->operands())
        V.push_back(translate(Z, Op, Memo));
      return z3::mk_and(V);
    }
    case TermKind::Or: {
      z3::expr_vector V(Z);
      for (const Term *Op : T->operands())
        V.push_back(translate(Z, Op, Memo));
      return z3::mk_or(V);
    }
    }
    return Z.bool_val(false);
  }
};

} // namespace

namespace expresso {
namespace solver {
std::unique_ptr<SmtSolver> createZ3Backend(TermContext &C) {
  return std::make_unique<Z3Backend>(C);
}
bool hasZ3() { return true; }
} // namespace solver
} // namespace expresso
