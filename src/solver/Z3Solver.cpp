//===- solver/Z3Solver.cpp - Z3 backend (the paper's solver) -----------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates logic::Term formulas into Z3 expressions and queries Z3,
/// mirroring the paper's implementation section ("invokes the Z3 SMT solver
/// for checking logical validity"). Compiled only when z3++.h is available;
/// Z3Stub.cpp provides the factory otherwise.
///
//===----------------------------------------------------------------------===//

#include "solver/SmtSolver.h"

#include <z3++.h>

#include <unordered_map>

using namespace expresso;
using namespace expresso::solver;
using namespace expresso::logic;

namespace {

class Z3Backend : public SmtSolver {
public:
  explicit Z3Backend(TermContext &C) : SmtSolver(C) {}

  CheckResult checkSat(const Term *F) override {
    ++Queries;
    CheckResult Out;
    z3::context Z3Ctx;
    z3::solver Solver(Z3Ctx);
    std::unordered_map<const Term *, z3::expr> Memo;
    Solver.add(translate(Z3Ctx, F, Memo));
    switch (Solver.check()) {
    case z3::unsat:
      Out.TheAnswer = Answer::Unsat;
      return Out;
    case z3::unknown:
      Out.TheAnswer = Answer::Unknown;
      return Out;
    case z3::sat:
      break;
    }
    Out.TheAnswer = Answer::Sat;
    Out.ModelComplete = true;
    z3::model Model = Solver.get_model();
    for (const Term *V : freeVars(F)) {
      z3::expr E = translate(Z3Ctx, V, Memo);
      z3::expr Val = Model.eval(E, /*model_completion=*/true);
      switch (V->sort()) {
      case Sort::Int: {
        int64_t I = 0;
        if (Val.is_numeral_i64(I)) {
          Out.Model[V->varName()] = Value::ofInt(I);
        } else {
          Out.ModelComplete = false;
        }
        break;
      }
      case Sort::Bool:
        Out.Model[V->varName()] = Value::ofBool(Val.is_true());
        break;
      case Sort::IntArray:
      case Sort::BoolArray: {
        // Reconstruct pointwise through the select terms appearing in F.
        Value AV = Value::ofArray(V->sort(), {}, 0);
        for (const auto &[SelTerm, Unused] : Memo) {
          (void)Unused;
          if (SelTerm->kind() != TermKind::Select ||
              SelTerm->operand(0) != V)
            continue;
          z3::expr Idx =
              Model.eval(translate(Z3Ctx, SelTerm->operand(1), Memo), true);
          z3::expr Elem = Model.eval(translate(Z3Ctx, SelTerm, Memo), true);
          int64_t IdxV = 0;
          if (!Idx.is_numeral_i64(IdxV))
            continue;
          if (SelTerm->sort() == Sort::Bool) {
            AV.A[IdxV] = Elem.is_true() ? 1 : 0;
          } else {
            int64_t EV = 0;
            if (Elem.is_numeral_i64(EV))
              AV.A[IdxV] = EV;
          }
        }
        Out.Model[V->varName()] = AV;
        break;
      }
      }
    }
    return Out;
  }

  std::string name() const override { return "z3"; }

private:
  z3::expr translate(z3::context &Z, const Term *T,
                     std::unordered_map<const Term *, z3::expr> &Memo) {
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    z3::expr E = translateUncached(Z, T, Memo);
    Memo.emplace(T, E);
    return E;
  }

  z3::sort z3Sort(z3::context &Z, Sort S) {
    switch (S) {
    case Sort::Int:
      return Z.int_sort();
    case Sort::Bool:
      return Z.bool_sort();
    case Sort::IntArray:
      return Z.array_sort(Z.int_sort(), Z.int_sort());
    case Sort::BoolArray:
      return Z.array_sort(Z.int_sort(), Z.bool_sort());
    }
    return Z.int_sort();
  }

  z3::expr translateUncached(z3::context &Z, const Term *T,
                             std::unordered_map<const Term *, z3::expr> &Memo) {
    switch (T->kind()) {
    case TermKind::IntConst:
      return Z.int_val(T->intValue());
    case TermKind::BoolConst:
      return Z.bool_val(T->boolValue());
    case TermKind::Var:
      return Z.constant(T->varName().c_str(), z3Sort(Z, T->sort()));
    case TermKind::Add: {
      z3::expr E = translate(Z, T->operand(0), Memo);
      for (unsigned I = 1; I < T->numOperands(); ++I)
        E = E + translate(Z, T->operand(I), Memo);
      return E;
    }
    case TermKind::Mul:
      return translate(Z, T->operand(0), Memo) *
             translate(Z, T->operand(1), Memo);
    case TermKind::Ite:
      return z3::ite(translate(Z, T->operand(0), Memo),
                     translate(Z, T->operand(1), Memo),
                     translate(Z, T->operand(2), Memo));
    case TermKind::Select:
      return z3::select(translate(Z, T->operand(0), Memo),
                        translate(Z, T->operand(1), Memo));
    case TermKind::Store:
      return z3::store(translate(Z, T->operand(0), Memo),
                       translate(Z, T->operand(1), Memo),
                       translate(Z, T->operand(2), Memo));
    case TermKind::Eq:
      return translate(Z, T->operand(0), Memo) ==
             translate(Z, T->operand(1), Memo);
    case TermKind::Le:
      return translate(Z, T->operand(0), Memo) <=
             translate(Z, T->operand(1), Memo);
    case TermKind::Lt:
      return translate(Z, T->operand(0), Memo) <
             translate(Z, T->operand(1), Memo);
    case TermKind::Divides:
      return z3::mod(translate(Z, T->operand(0), Memo),
                     Z.int_val(T->intValue())) == Z.int_val(0);
    case TermKind::Not:
      return !translate(Z, T->operand(0), Memo);
    case TermKind::And: {
      z3::expr_vector V(Z);
      for (const Term *Op : T->operands())
        V.push_back(translate(Z, Op, Memo));
      return z3::mk_and(V);
    }
    case TermKind::Or: {
      z3::expr_vector V(Z);
      for (const Term *Op : T->operands())
        V.push_back(translate(Z, Op, Memo));
      return z3::mk_or(V);
    }
    }
    return Z.bool_val(false);
  }
};

} // namespace

namespace expresso {
namespace solver {
std::unique_ptr<SmtSolver> createZ3Backend(TermContext &C) {
  return std::make_unique<Z3Backend>(C);
}
bool hasZ3() { return true; }
} // namespace solver
} // namespace expresso
