//===- solver/SolverSession.cpp - Scoped incremental VC sessions --------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "solver/SolverSession.h"

using namespace expresso;
using namespace expresso::solver;
using logic::Term;

SolverSession::SolverSession(CachingSolver *Cache, SmtSolver &Backend)
    : Cache(Cache), Backend(Backend), Absolute(*this),
      Native(Backend.nativeIncremental()) {}

SolverSession::~SolverSession() {
  // Restore the backend to an empty stack so it can serve a later session.
  dropGuardScope();
  if (InvariantPushed)
    Backend.pop();
}

void SolverSession::markBroken() {
  if (GuardPushed) {
    Backend.pop();
    GuardPushed = false;
  }
  if (InvariantPushed) {
    Backend.pop();
    InvariantPushed = false;
  }
  Native = false;
}

bool SolverSession::setInvariant(const Term *I) {
  if (Invariant)
    return Invariant == I;
  Invariant = I;
  if (!Native || !I || I->isTrue())
    return true; // nothing worth asserting; discharges stay sound regardless
  if (!Backend.push()) {
    markBroken();
    return true;
  }
  InvariantPushed = true;
  if (!Backend.assertTerm(I))
    markBroken();
  return true;
}

void SolverSession::enterCcr(const Term *Guard) {
  dropGuardScope();
  this->Guard = Guard;
}

void SolverSession::exitCcr() {
  dropGuardScope();
  Guard = nullptr;
}

bool SolverSession::ensureGuardPushed() {
  if (!Native || GuardPushed || !Guard || Guard->isTrue())
    return GuardPushed;
  if (!Backend.push()) {
    markBroken();
    return false;
  }
  GuardPushed = true;
  if (!Backend.assertTerm(Guard)) {
    markBroken();
    return false;
  }
  return true;
}

void SolverSession::dropGuardScope() {
  if (!GuardPushed)
    return;
  Backend.pop();
  GuardPushed = false;
}

CheckResult SolverSession::computeScoped(const Term *F) {
  // Only natively incremental backends discharge through the session
  // solver; snapshot backends would re-encode the same one-shot formula
  // with extra steps (and their Unknown-fallback would double-count backend
  // queries, breaking stat parity with --incremental=off).
  if (Native) {
    CheckResult R = Backend.checkSatAssuming({F});
    // An incremental Unknown falls back to the one-shot discharge so a
    // session never answers weaker than --incremental=off would. (A genuine
    // Unknown re-derives deterministically; the retry only matters when the
    // session machinery itself gave up.)
    if (R.TheAnswer != Answer::Unknown)
      return R;
  }
  return Backend.checkSat(F);
}

CheckResult SolverSession::checkSatAbsolute(const Term *F) {
  ++Lookups;
  // With no prefix pushed, the session stack is empty and a scoped check is
  // *exactly* an absolute one — so it may ride the long-lived solver (this
  // is how invariant inference reuses contexts without asserting anything).
  // With prefixes pushed, absolute semantics require the context-fresh
  // one-shot path.
  auto Compute = [this](const Term *G) {
    return (InvariantPushed || GuardPushed) ? Backend.checkSat(G)
                                            : computeScoped(G);
  };
  if (Cache)
    return Cache->lookupOrCompute(F, Compute);
  return Compute(F);
}

CheckResult SolverSession::checkSatUnderGuard(const Term *F) {
  ++Lookups;
  ensureGuardPushed();
  if (Cache)
    return Cache->lookupOrCompute(
        F, [this](const Term *G) { return computeScoped(G); });
  return computeScoped(F);
}

CheckResult SolverSession::checkSatUnderInvariant(const Term *F) {
  ++Lookups;
  dropGuardScope();
  if (Cache)
    return Cache->lookupOrCompute(
        F, [this](const Term *G) { return computeScoped(G); });
  return computeScoped(F);
}

std::vector<CheckResult> SolverSession::checkSatBatchUnderGuard(
    const std::vector<const Term *> &Fs) {
  Lookups += Fs.size();
  if (Fs.empty())
    return {};
  ensureGuardPushed();
  auto ComputeBatch = [this](const std::vector<const Term *> &Residual) {
    std::vector<CheckResult> Rs;
    if (Native) {
      Rs = Backend.checkSatBatch(Residual);
      // Per-formula one-shot fallback for incremental Unknowns (see
      // computeScoped).
      for (size_t I = 0; I < Rs.size(); ++I)
        if (Rs[I].TheAnswer == Answer::Unknown)
          Rs[I] = Backend.checkSat(Residual[I]);
    } else {
      Rs.reserve(Residual.size());
      for (const Term *F : Residual)
        Rs.push_back(Backend.checkSat(F));
    }
    return Rs;
  };
  if (Cache)
    return Cache->lookupOrComputeBatch(Fs, ComputeBatch);
  return ComputeBatch(Fs);
}
