//===- solver/SolverSession.h - Scoped incremental VC sessions --*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discharge layer between signal placement and the solver stack when
/// incremental sessions are on. One SolverSession pairs a worker's private
/// backend with the shared CachingSolver (when caching is enabled) and
/// exposes the scope structure Algorithm 1 needs:
///
///   * a session-lifetime *invariant scope* — the monitor invariant I is
///     asserted once per worker and stays for every CCR the worker handles;
///   * a per-CCR *guard scope* — Guard(w) is asserted (lazily) while the
///     CCR's own checks run and popped when the CCR is done, so switching
///     CCRs is one pop + one push instead of a new solver context.
///
/// Soundness contract: a formula may only be discharged under a scope whose
/// assertions it *semantically entails*. Every placement VC is the negation
/// of `Pre => wp(...)` with Pre = I ∧ Guard ∧ ..., so the negation is
/// equivalent to Pre ∧ ¬wp(...) and entails I (and, for the signalling
/// CCR's own checks, its guard). Asserting the entailed prefix is therefore
/// redundant — sat(prefix ∧ F) == sat(F) — and the *equivalent one-shot
/// formula* of every scoped query is the delta F itself. That identity is
/// what keeps the cache on the path unchanged: scoped queries are keyed,
/// counted, single-flighted, and persisted exactly like one-shot queries,
/// byte-for-byte (see persist/TermCodec.h on key derivation).
///
/// Queries whose answers the backend fails to produce incrementally
/// (session breakage, Unknown from an incremental check) are re-discharged
/// one-shot, so the answers a session produces are the answers
/// --incremental=off would have produced — the differential harness in
/// tests/IncrementalSolverTest.cpp holds the two modes to byte parity.
///
/// Prefix assertion is applied only on natively incremental backends (Z3).
/// Snapshot backends (MiniSmt) would pay re-encoding for nothing, so for
/// them every scoped check degrades to the one-shot-equivalent single-
/// assumption form; answers are identical either way.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SOLVER_SOLVERSESSION_H
#define EXPRESSO_SOLVER_SOLVERSESSION_H

#include "solver/CachingSolver.h"

#include <vector>

namespace expresso {
namespace solver {

/// A per-worker incremental discharge session. Not thread-safe: one worker
/// thread owns one session (and its backend) for the session's lifetime.
class SolverSession {
public:
  /// \p Cache may be null (the --no-cache configuration); \p Backend is the
  /// worker's private backend, borrowed for the session's lifetime.
  SolverSession(CachingSolver *Cache, SmtSolver &Backend);
  ~SolverSession();

  SolverSession(const SolverSession &) = delete;
  SolverSession &operator=(const SolverSession &) = delete;

  /// Asserts the monitor invariant in the session-lifetime scope (first
  /// call only; later calls must pass the same term and are no-ops). On
  /// non-native or broken backends this records nothing and returns true —
  /// discharges simply stay one-shot-equivalent.
  bool setInvariant(const logic::Term *I);

  /// Enters the per-CCR guard scope (the guard is pushed lazily, on the
  /// first checkSatUnderGuard). Must be balanced with exitCcr().
  void enterCcr(const logic::Term *Guard);
  void exitCcr();

  /// Decides sat(F) for an F that entails I ∧ Guard(current CCR).
  CheckResult checkSatUnderGuard(const logic::Term *F);

  /// Decides sat(F) for an F that entails I only (e.g. the one-wake checks,
  /// whose precondition carries the *woken* CCR's guard). Drops the guard
  /// scope if it is currently pushed.
  CheckResult checkSatUnderInvariant(const logic::Term *F);

  /// Batched form of checkSatUnderGuard: decides each formula independently
  /// with one cache-batch + (at best) one backend checkSatBatch call.
  std::vector<CheckResult>
  checkSatBatchUnderGuard(const std::vector<const logic::Term *> &Fs);

  /// An SmtSolver view of the *absolute* path — plain cached one-shot
  /// checkSat, blind to every session scope. Hand this to code whose
  /// queries entail no prefix at all (commutativity checks).
  SmtSolver &absoluteSolver() { return Absolute; }

  /// Total formulas this session decided (scoped + absolute), the analogue
  /// of a worker solver handle's numQueries() in one-shot mode.
  uint64_t numQueries() const { return Lookups; }

  /// True while the backend session machinery is healthy AND natively
  /// incremental; false means every discharge is one-shot-equivalent
  /// (answers unchanged — this is a perf bit, not a correctness bit).
  bool native() const { return Native; }

private:
  class AbsoluteView : public SmtSolver {
  public:
    AbsoluteView(SolverSession &Parent)
        : SmtSolver(Parent.Backend.context()), Parent(Parent) {}
    CheckResult checkSat(const logic::Term *F) override {
      ++Queries;
      return Parent.checkSatAbsolute(F);
    }
    std::string name() const override {
      return "session-abs(" + Parent.Backend.name() + ")";
    }

  private:
    SolverSession &Parent;
  };

  CheckResult checkSatAbsolute(const logic::Term *F);

  /// Pops every scope this session pushed and downgrades to non-native
  /// (one-shot-equivalent) discharge. Called on any push/assert failure.
  void markBroken();

  bool ensureGuardPushed();
  void dropGuardScope();

  /// Computes sat(stack ∧ F) on the backend, falling back to a one-shot
  /// solve when the scoped answer is Unknown (or the session is not
  /// native), so scoped answers can never be *weaker* than one-shot mode's.
  CheckResult computeScoped(const logic::Term *F);

  CachingSolver *Cache; ///< shared memo + persistent tier; may be null
  SmtSolver &Backend;   ///< worker-private backend, borrowed
  AbsoluteView Absolute;
  bool Native = false;          ///< backend prefix assertion in effect
  const logic::Term *Invariant = nullptr;
  bool InvariantPushed = false;
  const logic::Term *Guard = nullptr; ///< current CCR guard (null outside)
  bool GuardPushed = false;
  uint64_t Lookups = 0;
};

} // namespace solver
} // namespace expresso

#endif // EXPRESSO_SOLVER_SOLVERSESSION_H
