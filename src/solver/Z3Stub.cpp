//===- solver/Z3Stub.cpp - Factory stub for builds without Z3 ----------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "solver/SmtSolver.h"

namespace expresso {
namespace solver {
std::unique_ptr<SmtSolver> createZ3Backend(logic::TermContext &) {
  return nullptr;
}
bool hasZ3() { return false; }
} // namespace solver
} // namespace expresso
