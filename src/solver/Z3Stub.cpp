//===- solver/Z3Stub.cpp - Factory stub for builds without Z3 ----------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds without z3++.h get no Z3 backend at all: the factory returns null
/// and SolverKind::Default resolves to MiniSmt. That is also the session
/// API's fail-closed story for such builds — there is no half-working Z3
/// object whose push/pop could misbehave; incremental placement rides
/// MiniSmt's assertion-stack snapshots instead (same answers, no speedup).
///
//===----------------------------------------------------------------------===//

#include "solver/SmtSolver.h"

namespace expresso {
namespace solver {
std::unique_ptr<SmtSolver> createZ3Backend(logic::TermContext &) {
  return nullptr;
}
bool hasZ3() { return false; }
} // namespace solver
} // namespace expresso
