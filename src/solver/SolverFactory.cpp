//===- solver/SolverFactory.cpp - Per-worker backend factory ------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "solver/SolverFactory.h"

using namespace expresso;
using namespace expresso::solver;

SolverFactory::SolverFactory(SolverKind Kind)
    : Fn([Kind](logic::TermContext &C) { return createSolver(Kind, C); }) {}
