//===- solver/SmtSolver.h - Solver backend abstraction ----------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver interface used by every analysis (WP validity, abduction
/// consistency, commutativity, invariant fixpoints). Two backends:
///
///   * Z3 (the paper's solver, built when z3++.h is available), and
///   * MiniSmt (the from-scratch CDCL(T) solver in src/smt).
///
/// A cross-checking backend runs both and asserts agreement; the test suite
/// uses it for differential validation of MiniSmt against Z3.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SOLVER_SMTSOLVER_H
#define EXPRESSO_SOLVER_SMTSOLVER_H

#include "logic/TermOps.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace expresso {
namespace solver {

/// Three-valued satisfiability answer.
enum class Answer { Sat, Unsat, Unknown };

/// Three-valued validity answer.
enum class Validity { Valid, Invalid, Unknown };

/// Result of a satisfiability query.
struct CheckResult {
  Answer TheAnswer = Answer::Unknown;
  /// Witness assignment when TheAnswer is Sat (possibly partial).
  logic::Assignment Model;
  bool ModelComplete = false;
};

/// Abstract SMT backend over logic::Term formulas. Each solver is bound to
/// the TermContext whose terms it accepts.
class SmtSolver {
public:
  explicit SmtSolver(logic::TermContext &C) : Ctx(C) {}
  virtual ~SmtSolver();

  /// Decides satisfiability of the boolean term \p F.
  virtual CheckResult checkSat(const logic::Term *F) = 0;

  /// Backend name for diagnostics ("z3", "mini", "crosscheck").
  virtual std::string name() const = 0;

  /// Validity of \p F: F is valid iff not F is unsatisfiable.
  Validity checkValid(const logic::Term *F);

  /// True iff \p F is valid; Unknown counts as "not proved" (the paper's
  /// conservative direction: failing to prove a triple only costs signals).
  bool isValid(const logic::Term *F) {
    return checkValid(F) == Validity::Valid;
  }

  /// True iff \p F is satisfiable; Unknown counts as "possibly sat" only
  /// when \p UnknownMeansSat is set.
  bool isSat(const logic::Term *F, bool UnknownMeansSat = false) {
    Answer A = checkSat(F).TheAnswer;
    return A == Answer::Sat || (UnknownMeansSat && A == Answer::Unknown);
  }

  uint64_t numQueries() const {
    return Queries.load(std::memory_order_relaxed);
  }

  logic::TermContext &context() { return Ctx; }

protected:
  logic::TermContext &Ctx;
  /// Atomic so a solver shared across placement workers (the sharded
  /// CachingSolver) keeps an exact count under concurrent checkSat calls.
  std::atomic<uint64_t> Queries{0};
};

/// Which backend to instantiate.
enum class SolverKind { Mini, Z3, Default, CrossCheck };

/// True when this build has the Z3 backend compiled in.
bool hasZ3();

/// The name() of the backend SolverKind::Default resolves to in this build
/// ("z3" or "mini") — computable without minting a backend. Used to key the
/// persistent query cache to the answering solver.
std::string defaultSolverName();

/// Creates the requested backend. `Default` prefers Z3 (the paper's solver)
/// and falls back to MiniSmt. Returns nullptr only for SolverKind::Z3 in a
/// build without Z3.
std::unique_ptr<SmtSolver> createSolver(SolverKind Kind,
                                        logic::TermContext &C);

/// Parses "mini" / "z3" / "default" / "crosscheck" (for CLI flags).
SolverKind parseSolverKind(const std::string &Name);

} // namespace solver
} // namespace expresso

#endif // EXPRESSO_SOLVER_SMTSOLVER_H
