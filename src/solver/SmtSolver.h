//===- solver/SmtSolver.h - Solver backend abstraction ----------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver interface used by every analysis (WP validity, abduction
/// consistency, commutativity, invariant fixpoints). Two backends:
///
///   * Z3 (the paper's solver, built when z3++.h is available), and
///   * MiniSmt (the from-scratch CDCL(T) solver in src/smt).
///
/// A cross-checking backend runs both and asserts agreement; the test suite
/// uses it for differential validation of MiniSmt against Z3.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SOLVER_SMTSOLVER_H
#define EXPRESSO_SOLVER_SMTSOLVER_H

#include "logic/TermOps.h"
#include "support/CancelToken.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace expresso {
namespace solver {

/// Three-valued satisfiability answer.
enum class Answer { Sat, Unsat, Unknown };

/// Three-valued validity answer.
enum class Validity { Valid, Invalid, Unknown };

/// Result of a satisfiability query.
struct CheckResult {
  Answer TheAnswer = Answer::Unknown;
  /// Witness assignment when TheAnswer is Sat (possibly partial).
  logic::Assignment Model;
  bool ModelComplete = false;
};

/// Abstract SMT backend over logic::Term formulas. Each solver is bound to
/// the TermContext whose terms it accepts.
class SmtSolver {
public:
  explicit SmtSolver(logic::TermContext &C) : Ctx(C) {}
  virtual ~SmtSolver();

  /// Decides satisfiability of the boolean term \p F.
  virtual CheckResult checkSat(const logic::Term *F) = 0;

  /// Backend name for diagnostics ("z3", "mini", "crosscheck").
  virtual std::string name() const = 0;

  /// Validity of \p F: F is valid iff not F is unsatisfiable.
  Validity checkValid(const logic::Term *F);

  /// True iff \p F is valid; Unknown counts as "not proved" (the paper's
  /// conservative direction: failing to prove a triple only costs signals).
  bool isValid(const logic::Term *F) {
    return checkValid(F) == Validity::Valid;
  }

  /// True iff \p F is satisfiable; Unknown counts as "possibly sat" only
  /// when \p UnknownMeansSat is set.
  bool isSat(const logic::Term *F, bool UnknownMeansSat = false) {
    Answer A = checkSat(F).TheAnswer;
    return A == Answer::Sat || (UnknownMeansSat && A == Answer::Unknown);
  }

  //===--------------------------------------------------------------------===
  // Incremental session API
  //===--------------------------------------------------------------------===
  //
  // A solver session is a stack of assertion scopes: push() opens a scope,
  // assertTerm() adds a formula to the current scope, pop() discards the
  // innermost scope and everything asserted in it, and checkSatAssuming(A)
  // decides  sat(asserted-stack ∧ A)  without disturbing the stack. Plain
  // checkSat() remains *absolute*: it ignores the session stack entirely
  // (every backend guarantees this), so mixing one-shot and session traffic
  // on one backend is safe.
  //
  // The base class fails closed: push/pop/assertTerm refuse (return false)
  // and checkSatAssuming answers Unknown, so a caller that forgot to test
  // supportsIncremental() can never extract a wrong answer — only a useless
  // one. Backends opt in:
  //   * Z3Backend keeps one long-lived z3::solver per instance and maps the
  //     API onto native push/pop/check-with-assumptions (and discharges
  //     checkSatBatch with assumption literals + unsat cores);
  //   * the MiniSmt backend implements assertion-stack *snapshots*: the
  //     stack is recorded term-by-term and every check re-solves the
  //     accumulated conjunction one-shot (correctness, not speed);
  //   * builds without Z3 (Z3Stub) have no Z3 backend at all — requesting
  //     one yields null, which is as closed as failing gets.

  /// True when this backend implements the session API (push/pop/assert/
  /// checkSatAssuming) with stack ∧ assumptions semantics.
  virtual bool supportsIncremental() const { return false; }

  /// True when sessions are *natively* incremental — asserted prefixes live
  /// inside the backend's solver state instead of being re-conjoined into
  /// every check. Callers use this to decide whether asserting a shared
  /// prefix is a win (Z3) or pure re-encoding overhead (MiniSmt snapshots).
  virtual bool nativeIncremental() const { return false; }

  /// Opens an assertion scope. Returns false (and changes nothing) when the
  /// backend has no session support or the solver errored.
  virtual bool push() { return false; }

  /// Discards the innermost scope. False when no scope is open.
  virtual bool pop() { return false; }

  /// Asserts \p F in the current scope. False on failure; a failed assert
  /// leaves the stack unchanged.
  virtual bool assertTerm(const logic::Term *F) {
    (void)F;
    return false;
  }

  /// Decides sat(asserted-stack ∧ Assumptions). The assumptions are not
  /// retained. Fail-closed default: Unknown.
  virtual CheckResult checkSatAssuming(
      const std::vector<const logic::Term *> &Assumptions) {
    (void)Assumptions;
    ++Queries;
    return CheckResult();
  }

  /// Decides, for each \p Fs[i] *independently*, sat(asserted-stack ∧
  /// Fs[i]), returning one CheckResult per formula. Semantically equivalent
  /// to |Fs| checkSatAssuming({F}) calls — and the default implementation is
  /// exactly that loop — but a native backend (Z3) discharges the whole
  /// family against its current solver state with per-formula assumption
  /// literals, extracting answers from one model / unsat cores instead of
  /// re-asserting anything. Queries counts one per formula in every
  /// implementation, so query accounting is batching-invariant.
  virtual std::vector<CheckResult>
  checkSatBatch(const std::vector<const logic::Term *> &Fs) {
    std::vector<CheckResult> Out;
    Out.reserve(Fs.size());
    for (const logic::Term *F : Fs)
      Out.push_back(checkSatAssuming({F}));
    return Out;
  }

  uint64_t numQueries() const {
    return Queries.load(std::memory_order_relaxed);
  }

  /// Attaches a cooperative cancellation token. Every subsequent check
  /// polls it and answers Unknown once it expires — the conservative
  /// direction for all of Expresso's analyses (an unproved triple only
  /// costs signals). Backends with native interruption (Z3) additionally
  /// register interrupt hooks so an explicit cancel() aborts a solve in
  /// flight instead of waiting for its next poll point. Null detaches.
  /// Must not be called while checks are executing on other threads.
  virtual void setCancelToken(support::CancelToken *T) { Cancel = T; }

  support::CancelToken *cancelToken() const { return Cancel; }

  logic::TermContext &context() { return Ctx; }

protected:
  /// True once the attached token (if any) has expired; checked by every
  /// backend at query entry.
  bool cancelled() const { return Cancel && Cancel->expired(); }

  logic::TermContext &Ctx;
  /// Atomic so a solver shared across placement workers (the sharded
  /// CachingSolver) keeps an exact count under concurrent checkSat calls.
  std::atomic<uint64_t> Queries{0};
  /// Cooperative cancellation token; not owned, null when detached.
  support::CancelToken *Cancel = nullptr;
};

/// Which backend to instantiate.
enum class SolverKind { Mini, Z3, Default, CrossCheck };

/// True when this build has the Z3 backend compiled in.
bool hasZ3();

/// The name() of the backend SolverKind::Default resolves to in this build
/// ("z3" or "mini") — computable without minting a backend. Used to key the
/// persistent query cache to the answering solver.
std::string defaultSolverName();

/// Creates the requested backend. `Default` prefers Z3 (the paper's solver)
/// and falls back to MiniSmt. Returns nullptr only for SolverKind::Z3 in a
/// build without Z3.
std::unique_ptr<SmtSolver> createSolver(SolverKind Kind,
                                        logic::TermContext &C);

/// Parses "mini" / "z3" / "default" / "crosscheck" (for CLI flags).
SolverKind parseSolverKind(const std::string &Name);

} // namespace solver
} // namespace expresso

#endif // EXPRESSO_SOLVER_SMTSOLVER_H
