//===- specgen/Diff.h - Whole-placement differential harness ----*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential fuzz rig behind `expresso-diff`: run one monitor spec
/// through the full placement pipeline across the execution-mode matrix
///
///   {serial, --jobs N} x {--incremental on/off} x {cache off/cold/warm}
///   x {MiniSmt, Z3 when present} x {local, daemon}
///
/// and assert the engine's standing determinism contract:
///
///   * Σ (PlacementResult::decisionSummary()) is byte-identical across
///     every cell of one backend group (MiniSmt and Z3 are separate
///     groups — Σ is a pure function of (spec, backend profile));
///   * the core placement stats and the memo-tier cache counters are
///     identical across all cache-enabled cells, and zero with the cache
///     off;
///   * persistent-tier counters obey the per-cell contract: cold runs see
///     DiskHits == 0 and DiskMisses == memo misses; warm runs at
///     jobs == 1 are exact (all hits, both backends — MiniSmt solves in a
///     private scratch context precisely so cache state cannot perturb
///     the analysis context's term ids), and --jobs warm runs conserve
///     DiskHits + DiskMisses == misses (scheduling order varies).
///
/// Every cell executes in a forked child with a hard deadline, so a
/// pathological spec degrades to a skipped-and-logged row and a crashing
/// configuration is isolated as a divergence instead of taking the rig
/// down. Divergent specs are reduced by a greedy ddmin-style shrinker
/// (drop method / drop CCR / guard -> true / drop statement / drop field)
/// and dumped as *.repro files that `expresso-diff --replay` re-checks.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SPECGEN_DIFF_H
#define EXPRESSO_SPECGEN_DIFF_H

#include "solver/SmtSolver.h"

#include <cstdint>
#include <string>
#include <vector>

namespace expresso {
namespace specgen {

/// Persistent-cache posture of one matrix cell.
enum class CacheMode {
  Off,  ///< --no-cache: no memo, no store
  Cold, ///< fresh store directory, populated by this run
  Warm, ///< rerun against the store a Cold cell populated
};

/// One cell of the execution-mode matrix.
struct RunSpec {
  solver::SolverKind Backend = solver::SolverKind::Mini;
  unsigned Jobs = 1;
  bool Incremental = true;
  CacheMode Cache = CacheMode::Off;
  bool Daemon = false;       ///< route through an in-process expressod
  std::string CacheDir;      ///< store directory for Cold/Warm local cells

  std::string label() const;
};

/// What one cell produced (shipped from the forked child to the parent).
struct RunResult {
  enum class Status {
    Ok,
    Error,   ///< pipeline reported an error (message says why)
    Crash,   ///< child died on a signal / nonzero exit
    Timeout, ///< child exceeded the per-cell deadline
  };
  Status St = Status::Error;
  std::string Message;
  std::string Sigma; ///< PlacementResult::decisionSummary()

  // Core placement stats, identical across every cell of a backend group.
  uint64_t PairsConsidered = 0;
  uint64_t HoareChecks = 0;
  uint64_t NoSignalProved = 0;
  uint64_t Signals = 0;
  uint64_t Broadcasts = 0;
  uint64_t Unconditional = 0;
  uint64_t CommutativityWins = 0;
  uint64_t SolverQueries = 0;

  // Cache counters: memo tier, then persistent tier.
  uint64_t MemoHits = 0;
  uint64_t MemoMisses = 0;
  uint64_t DiskHits = 0;
  uint64_t DiskMisses = 0;
};

/// Harness-wide options.
struct DiffOptions {
  unsigned JobsMax = 4;        ///< the parallel leg's --jobs value
  /// Matrix cells with no mutual ordering constraint (cache-off, cold, and
  /// daemon cells; then the warm reruns) execute in concurrently forked
  /// children, capped at this many in flight. 0 = auto (hardware threads,
  /// clamped to [4, 16]).
  unsigned Parallel = 0;
  bool UseDaemon = true;       ///< include the in-process daemon cells
  bool Shrink = true;          ///< reduce divergent specs before reporting
  int TimeoutSeconds = 300;    ///< per-cell deadline (ctest discipline)
  /// Wall budget for one spec's whole matrix; 0 = unlimited. A spec whose
  /// completed cells exceed it skips its remaining cells and logs a
  /// Skipped row — the lever that bounds a CI smoke run, complementing the
  /// per-cell deadline (which only catches outright hangs).
  int SpecBudgetSeconds = 0;
  int ShrinkSeconds = 300;     ///< wall budget for the whole shrink loop
  std::string ReproDir = ".";  ///< where *.repro files land
  std::string ScratchDir;      ///< cache/socket scratch (default: TMPDIR)
  bool Verbose = false;        ///< per-cell progress on stderr
  /// Backend groups to check; empty = MiniSmt plus Z3 when built in.
  std::vector<solver::SolverKind> Backends;
};

/// Verdict for one spec across the whole matrix.
struct SpecVerdict {
  enum class Kind {
    Parity,     ///< every cell agreed; the contract held
    Divergence, ///< parity violation / crash (repro written)
    Skipped,    ///< a cell timed out; spec logged and skipped
    Invalid,    ///< the spec failed parse/sema before any cell ran
  };
  Kind K = Kind::Parity;
  std::string Detail;    ///< human-readable cause for non-Parity verdicts
  std::string ReproPath; ///< written for Divergence (empty otherwise)
  std::string MinReproPath; ///< shrunk reproducer, when shrinking succeeded
  unsigned Cells = 0;    ///< matrix cells executed
};

/// Runs \p Source through the full matrix. \p ConfigStr (a
/// specgen::configToString string, or any provenance note) is recorded in
/// repro headers so a failure is regenerable without the fuzz loop.
SpecVerdict checkSpec(const std::string &Source, const std::string &ConfigStr,
                      const DiffOptions &Opts);

/// Writes a reproducer: '#'-prefixed header lines (seed/config/divergence
/// provenance plus the replay one-liner) followed by the verbatim monitor
/// source. Returns the path written, or "" on I/O failure.
std::string writeRepro(const std::string &Path, const std::string &Source,
                       const std::string &ConfigStr,
                       const std::string &Detail);

/// Reads a *.repro file: header lines starting with '#' are skipped, the
/// rest is the monitor source. False when the file cannot be read.
bool readRepro(const std::string &Path, std::string &Source,
               std::string *Error);

} // namespace specgen
} // namespace expresso

#endif // EXPRESSO_SPECGEN_DIFF_H
