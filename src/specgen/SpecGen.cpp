//===- specgen/SpecGen.cpp - Seeded monitor-spec generator ----------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "specgen/SpecGen.h"

#include "support/Casting.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace expresso;
using namespace expresso::specgen;
using namespace expresso::frontend;

//===----------------------------------------------------------------------===//
// GuardShape names
//===----------------------------------------------------------------------===//

const char *specgen::guardShapeName(GuardShape S) {
  switch (S) {
  case GuardShape::Comparison:
    return "comparison";
  case GuardShape::Arithmetic:
    return "arithmetic";
  case GuardShape::Boolean:
    return "boolean";
  case GuardShape::Mixed:
    return "mixed";
  }
  return "mixed";
}

bool specgen::parseGuardShape(const std::string &Name, GuardShape &Out) {
  if (Name == "comparison")
    Out = GuardShape::Comparison;
  else if (Name == "arithmetic")
    Out = GuardShape::Arithmetic;
  else if (Name == "boolean")
    Out = GuardShape::Boolean;
  else if (Name == "mixed")
    Out = GuardShape::Mixed;
  else
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// GenConfig
//===----------------------------------------------------------------------===//

void GenConfig::normalize() {
  if (Ccrs == 0)
    Ccrs = 1;
  if (MaxCcrsPerMethod == 0)
    MaxCcrsPerMethod = 1;
  MaxCcrsPerMethod = std::min(MaxCcrsPerMethod, Ccrs);
  if (IntFields == 0)
    IntFields = 1;
  if (BodyStmts == 0)
    BodyStmts = 1;
  if (FanIn == 0)
    FanIn = 1;
  // A guard can only read fields that exist.
  FanIn = std::min(FanIn, IntFields + BoolFields);
  if (Name.empty())
    Name = "Gen";
}

bool GenConfig::operator==(const GenConfig &O) const {
  return Seed == O.Seed && Ccrs == O.Ccrs &&
         MaxCcrsPerMethod == O.MaxCcrsPerMethod && IntFields == O.IntFields &&
         BoolFields == O.BoolFields && PredicateDepth == O.PredicateDepth &&
         FanIn == O.FanIn && Shape == O.Shape && BodyStmts == O.BodyStmts &&
         ConstConfig == O.ConstConfig && AllowLoops == O.AllowLoops &&
         AllowParams == O.AllowParams && Name == O.Name;
}

std::string specgen::configToString(const GenConfig &Config) {
  std::ostringstream OS;
  OS << "seed=" << Config.Seed << ",ccrs=" << Config.Ccrs
     << ",perm=" << Config.MaxCcrsPerMethod << ",ints=" << Config.IntFields
     << ",bools=" << Config.BoolFields << ",depth=" << Config.PredicateDepth
     << ",fanin=" << Config.FanIn << ",shape=" << guardShapeName(Config.Shape)
     << ",stmts=" << Config.BodyStmts << ",const=" << (Config.ConstConfig ? 1 : 0)
     << ",loops=" << (Config.AllowLoops ? 1 : 0)
     << ",params=" << (Config.AllowParams ? 1 : 0) << ",name=" << Config.Name;
  return OS.str();
}

bool specgen::configFromString(const std::string &Text, GenConfig &Out,
                               std::string *Error) {
  auto fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  GenConfig C;
  std::istringstream IS(Text);
  std::string Item;
  while (std::getline(IS, Item, ',')) {
    if (Item.empty())
      continue;
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      return fail("malformed config item '" + Item + "' (expected key=value)");
    std::string Key = Item.substr(0, Eq);
    std::string Value = Item.substr(Eq + 1);
    auto asUnsigned = [&](unsigned &Slot) {
      try {
        Slot = static_cast<unsigned>(std::stoul(Value));
      } catch (...) {
        return false;
      }
      return true;
    };
    auto asBool = [&](bool &Slot) {
      if (Value != "0" && Value != "1")
        return false;
      Slot = Value == "1";
      return true;
    };
    bool Ok = true;
    if (Key == "seed") {
      try {
        C.Seed = std::stoull(Value);
      } catch (...) {
        Ok = false;
      }
    } else if (Key == "ccrs") {
      Ok = asUnsigned(C.Ccrs);
    } else if (Key == "perm") {
      Ok = asUnsigned(C.MaxCcrsPerMethod);
    } else if (Key == "ints") {
      Ok = asUnsigned(C.IntFields);
    } else if (Key == "bools") {
      Ok = asUnsigned(C.BoolFields);
    } else if (Key == "depth") {
      Ok = asUnsigned(C.PredicateDepth);
    } else if (Key == "fanin") {
      Ok = asUnsigned(C.FanIn);
    } else if (Key == "shape") {
      Ok = parseGuardShape(Value, C.Shape);
    } else if (Key == "stmts") {
      Ok = asUnsigned(C.BodyStmts);
    } else if (Key == "const") {
      Ok = asBool(C.ConstConfig);
    } else if (Key == "loops") {
      Ok = asBool(C.AllowLoops);
    } else if (Key == "params") {
      Ok = asBool(C.AllowParams);
    } else if (Key == "name") {
      if (Value.empty())
        Ok = false;
      else
        C.Name = Value;
    } else {
      return fail("unknown config key '" + Key + "'");
    }
    if (!Ok)
      return fail("bad value for config key '" + Key + "': '" + Value + "'");
  }
  C.normalize();
  Out = C;
  return true;
}

GenConfig specgen::sampleConfig(uint64_t Seed, const GenConfig &Max) {
  // A distinct stream from the generator itself so knob sampling never
  // perturbs spec content for a fixed config.
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + 0x5eedull);
  GenConfig C;
  C.Seed = Seed;
  C.Ccrs = 1 + static_cast<unsigned>(R.below(std::max(1u, Max.Ccrs)));
  C.MaxCcrsPerMethod =
      1 + static_cast<unsigned>(R.below(std::max(1u, Max.MaxCcrsPerMethod)));
  C.IntFields = 1 + static_cast<unsigned>(R.below(std::max(1u, Max.IntFields)));
  C.BoolFields = static_cast<unsigned>(R.below(Max.BoolFields + 1));
  C.PredicateDepth = static_cast<unsigned>(R.below(Max.PredicateDepth + 1));
  C.FanIn = 1 + static_cast<unsigned>(R.below(std::max(1u, Max.FanIn)));
  if (Max.Shape == GuardShape::Mixed) {
    static const GuardShape Shapes[] = {GuardShape::Comparison,
                                        GuardShape::Arithmetic,
                                        GuardShape::Boolean, GuardShape::Mixed};
    C.Shape = Shapes[R.below(4)];
  } else {
    C.Shape = Max.Shape;
  }
  C.BodyStmts = 1 + static_cast<unsigned>(R.below(std::max(1u, Max.BodyStmts)));
  C.ConstConfig = Max.ConstConfig && R.chance(1, 2);
  C.AllowLoops = Max.AllowLoops && R.chance(1, 3);
  C.AllowParams = Max.AllowParams && R.chance(1, 2);
  C.Name = Max.Name;
  C.normalize();
  return C;
}

//===----------------------------------------------------------------------===//
// The generator
//===----------------------------------------------------------------------===//

namespace {

/// State for generating one monitor: the normalized config, the RNG stream,
/// and the field names the guards/bodies may touch.
class Generator {
public:
  Generator(const GenConfig &Config)
      : C(Config), R(Config.Seed ^ 0x1ce5c0de5eedf00dULL) {
    C.normalize();
    for (unsigned I = 0; I < C.IntFields; ++I)
      Ints.push_back("v" + std::to_string(I));
    for (unsigned I = 0; I < C.BoolFields; ++I)
      Bools.push_back("f" + std::to_string(I));
    // The fan-in window: guards read only this prefix of the fields, so the
    // FanIn knob is an upper bound on per-guard shared-variable coupling.
    unsigned IntWindow = std::min<unsigned>(C.FanIn, C.IntFields);
    if (IntWindow == 0)
      IntWindow = 1;
    for (unsigned I = 0; I < IntWindow; ++I)
      GuardInts.push_back(Ints[I]);
    unsigned BoolWindow =
        std::min<unsigned>(C.FanIn > IntWindow ? C.FanIn - IntWindow : 0,
                           C.BoolFields);
    for (unsigned I = 0; I < BoolWindow; ++I)
      GuardBools.push_back(Bools[I]);
  }

  std::string run();

private:
  std::string pickGuardInt() { return GuardInts[R.below(GuardInts.size())]; }
  std::string pickInt() { return Ints[R.below(Ints.size())]; }
  std::string pickBool() { return Bools[R.below(Bools.size())]; }

  std::string comparisonAtom(bool AllowParam);
  std::string arithmeticAtom();
  std::string booleanAtom();
  std::string atom(bool AllowParam, bool AllowNot);
  std::string guard(bool First, bool HasParam);
  std::string bodyStmt(bool HasParam, unsigned Indent);
  std::string ccrBody(bool HasParam, unsigned Indent);

  GenConfig C;
  Rng R;
  std::vector<std::string> Ints;  ///< all int field names
  std::vector<std::string> Bools; ///< all bool field names
  std::vector<std::string> GuardInts;  ///< fan-in window, int part
  std::vector<std::string> GuardBools; ///< fan-in window, bool part
  std::vector<std::string> GuardPool;  ///< param-free guards, for reuse
  bool HasCap = false;
  bool GuardUsedParam = false; ///< set when the current guard read `p`
  unsigned LocalCounter = 0;   ///< uniquifies method-local names
};

static const char *CmpOps[] = {">", ">=", "<", "<=", "==", "!="};

std::string Generator::comparisonAtom(bool AllowParam) {
  std::ostringstream OS;
  switch (R.below(AllowParam ? 4 : (HasCap ? 3 : 2))) {
  case 0: // vi OP lit
    OS << pickGuardInt() << " " << CmpOps[R.below(6)] << " " << R.range(0, 4);
    break;
  case 1: // vi OP vj
    OS << pickGuardInt() << " " << CmpOps[R.below(6)] << " " << pickGuardInt();
    break;
  case 2: // vi OP cap (only when the const field exists)
    if (HasCap) {
      OS << pickGuardInt() << " " << CmpOps[R.below(4)] << " cap";
      break;
    }
    OS << pickGuardInt() << " " << CmpOps[R.below(6)] << " " << R.range(0, 4);
    break;
  default: // vi OP p — a thread-local operand, minting placeholder classes
    OS << pickGuardInt() << " " << CmpOps[R.below(6)] << " p";
    GuardUsedParam = true;
    break;
  }
  return OS.str();
}

std::string Generator::arithmeticAtom() {
  std::ostringstream OS;
  std::string A = pickGuardInt(), B = pickGuardInt();
  switch (R.below(4)) {
  case 0: // linear sum vs literal
    OS << A << " + " << B << " " << CmpOps[R.below(6)] << " " << R.range(0, 6);
    break;
  case 1: // difference vs literal
    OS << A << " - " << B << " " << CmpOps[R.below(6)] << " " << R.range(0, 4);
    break;
  case 2: { // constant-coefficient term (Sema demands a constant operand)
    int64_t K = R.range(2, 3);
    OS << K << " * " << A << " + " << B << " " << CmpOps[R.below(6)] << " "
       << R.range(0, 8);
    break;
  }
  default: { // divisibility: '%' only under ==/!= against a literal
    int64_t D = R.range(2, 4);
    OS << A << " % " << D << " " << (R.chance(1, 2) ? "==" : "!=") << " "
       << R.range(0, D - 1);
    break;
  }
  }
  return OS.str();
}

std::string Generator::booleanAtom() {
  if (GuardBools.empty())
    return comparisonAtom(false);
  std::string F = GuardBools[R.below(GuardBools.size())];
  return R.chance(1, 2) ? F : "!" + F;
}

std::string Generator::atom(bool AllowParam, bool AllowNot) {
  GuardShape S = C.Shape;
  if (S == GuardShape::Mixed) {
    static const GuardShape Pool[] = {GuardShape::Comparison,
                                      GuardShape::Arithmetic,
                                      GuardShape::Boolean};
    S = Pool[R.below(3)];
  }
  switch (S) {
  case GuardShape::Comparison:
    return comparisonAtom(AllowParam);
  case GuardShape::Arithmetic:
    return arithmeticAtom();
  case GuardShape::Boolean:
    if (!AllowNot && !GuardBools.empty())
      return GuardBools[R.below(GuardBools.size())];
    return booleanAtom();
  case GuardShape::Mixed:
    break;
  }
  return comparisonAtom(AllowParam);
}

std::string Generator::guard(bool First, bool HasParam) {
  if (First) {
    // The calibration guard: its first atom sums the whole int fan-in
    // window (hitting the FanIn knob exactly) and it stacks exactly
    // PredicateDepth connectives, so measured shape tracks the knobs. Atoms
    // avoid '!' here to keep the connective count exact.
    std::ostringstream Sum;
    for (size_t I = 0; I < GuardInts.size(); ++I)
      Sum << (I ? " + " : "") << GuardInts[I];
    Sum << " >= 0";
    std::string G = Sum.str();
    for (unsigned D = 0; D < C.PredicateDepth; ++D) {
      std::string Next;
      if (D == 0 && !GuardBools.empty())
        Next = GuardBools[D % GuardBools.size()];
      else
        Next = atom(false, /*AllowNot=*/false);
      G = "(" + G + ") " + (D % 2 ? "||" : "&&") + " (" + Next + ")";
    }
    GuardPool.push_back(G);
    return G;
  }

  // Reuse an earlier guard 1 time in 4: shared syntactic predicates become
  // shared predicate classes, the axis Algorithm 1's memoization lives on.
  if (!GuardPool.empty() && R.chance(1, 4))
    return GuardPool[R.below(GuardPool.size())];

  // Otherwise build a fresh guard with a random connective depth budget.
  GuardUsedParam = false;
  unsigned Depth = static_cast<unsigned>(R.below(C.PredicateDepth + 1));
  std::string G = atom(HasParam, /*AllowNot=*/Depth == 0);
  for (unsigned D = 0; D < Depth; ++D)
    G = "(" + G + ") " + (R.chance(1, 2) ? "&&" : "||") + " (" +
        atom(HasParam, /*AllowNot=*/false) + ")";
  // Guards that read the method parameter are method-specific; only
  // param-free guards can be reused across CCRs.
  if (!GuardUsedParam)
    GuardPool.push_back(G);
  return G;
}

std::string Generator::bodyStmt(bool HasParam, unsigned Indent) {
  std::string Pad(Indent, ' ');
  std::ostringstream OS;
  unsigned NumKinds = 6;
  if (!Bools.empty())
    NumKinds += 2;
  if (HasParam)
    NumKinds += 1;
  if (C.AllowLoops)
    NumKinds += 1;
  unsigned Kind = static_cast<unsigned>(R.below(NumKinds));
  std::string A = pickInt(), B = pickInt();
  switch (Kind) {
  case 0:
    OS << Pad << A << " = " << A << " + 1;";
    break;
  case 1:
    OS << Pad << A << " = " << A << " - 1;";
    break;
  case 2:
    OS << Pad << "if (" << A << " > 0) { " << A << " = " << A << " - 1; " << B
       << " = " << B << " + 1; }";
    break;
  case 3:
    OS << Pad << A << " = " << A << " + " << R.range(2, 3) << " * " << B
       << ";";
    break;
  case 4:
    OS << Pad << "if (" << A << " " << CmpOps[R.below(4)] << " " << B << ") "
       << A << " = " << B << "; else " << B << " = " << A << ";";
    break;
  case 5: {
    std::string T = "t" + std::to_string(LocalCounter++);
    OS << Pad << "int " << T << " = " << A << " + 1; " << B << " = " << T
       << ";";
    break;
  }
  case 6:
    if (!Bools.empty()) {
      std::string F = pickBool();
      switch (R.below(3)) {
      case 0:
        OS << Pad << F << " = true;";
        break;
      case 1:
        OS << Pad << F << " = false;";
        break;
      default:
        OS << Pad << F << " = !" << F << ";";
        break;
      }
      break;
    }
    [[fallthrough]];
  case 7:
    if (!Bools.empty()) {
      OS << Pad << "if (" << pickBool() << ") " << A << " = " << A
         << " + 1; else " << B << " = " << B << " + 1;";
      break;
    }
    [[fallthrough]];
  case 8:
    if (HasParam) {
      OS << Pad << A << " = " << A << " + p;";
      break;
    }
    [[fallthrough]];
  default:
    if (C.AllowLoops) {
      OS << Pad << "while (" << A << " > 0) { " << A << " = " << A << " - 1; "
         << B << " = " << B << " + 1; }";
      break;
    }
    OS << Pad << A << " = " << B << " + " << R.range(0, 2) << ";";
    break;
  }
  return OS.str();
}

std::string Generator::ccrBody(bool HasParam, unsigned Indent) {
  unsigned N = 1 + static_cast<unsigned>(R.below(C.BodyStmts));
  std::ostringstream OS;
  for (unsigned I = 0; I < N; ++I)
    OS << bodyStmt(HasParam, Indent) << "\n";
  return OS.str();
}

std::string Generator::run() {
  std::ostringstream OS;
  OS << "monitor " << C.Name << " {\n";

  HasCap = C.ConstConfig;
  if (HasCap) {
    int64_t Cap = R.range(3, 5);
    OS << "  const int cap = " << Cap << ";\n";
    OS << "  requires cap >= " << R.range(1, 2) << ";\n";
  }
  for (const std::string &V : Ints)
    OS << "  int " << V << " = " << R.range(0, 2) << ";\n";
  for (const std::string &F : Bools)
    OS << "  bool " << F << " = " << (R.chance(1, 2) ? "true" : "false")
       << ";\n";

  // Deal the CCR budget into methods of at most MaxCcrsPerMethod regions.
  std::vector<unsigned> PerMethod;
  unsigned Remaining = C.Ccrs;
  while (Remaining > 0) {
    unsigned Take = 1 + static_cast<unsigned>(R.below(
                            std::min(C.MaxCcrsPerMethod, Remaining)));
    PerMethod.push_back(Take);
    Remaining -= Take;
  }

  bool First = true;
  for (size_t MI = 0; MI < PerMethod.size(); ++MI) {
    bool HasParam = C.AllowParams && R.chance(1, 4);
    OS << "  void m" << MI << "(" << (HasParam ? "int p" : "") << ") {\n";
    for (unsigned WI = 0; WI < PerMethod[MI]; ++WI) {
      OS << "    waituntil (" << guard(First, HasParam) << ") {\n";
      OS << ccrBody(HasParam, 6);
      OS << "    }\n";
      First = false;
    }
    OS << "  }\n";
  }
  OS << "}\n";
  return OS.str();
}

} // namespace

std::string specgen::generateMonitorSource(const GenConfig &Config) {
  Generator G(Config);
  return G.run();
}

//===----------------------------------------------------------------------===//
// Shape measurement
//===----------------------------------------------------------------------===//

namespace {

unsigned connectiveDepth(const Expr *E) {
  if (const auto *U = dyn_cast<Unary>(E)) {
    if (U->op() == UnaryOp::Not)
      return 1 + connectiveDepth(U->operand());
    return connectiveDepth(U->operand());
  }
  if (const auto *B = dyn_cast<Binary>(E)) {
    if (B->op() == BinaryOp::And || B->op() == BinaryOp::Or)
      return 1 + std::max(connectiveDepth(B->lhs()), connectiveDepth(B->rhs()));
    return 0; // comparisons and arithmetic are atoms
  }
  return 0;
}

void collectVarNames(const Expr *E, std::set<std::string> &Out) {
  if (!E)
    return;
  if (const auto *V = dyn_cast<VarRef>(E)) {
    Out.insert(V->name());
    return;
  }
  if (const auto *A = dyn_cast<ArrayRef>(E)) {
    Out.insert(A->array());
    collectVarNames(A->index(), Out);
    return;
  }
  if (const auto *U = dyn_cast<Unary>(E)) {
    collectVarNames(U->operand(), Out);
    return;
  }
  if (const auto *B = dyn_cast<Binary>(E)) {
    collectVarNames(B->lhs(), Out);
    collectVarNames(B->rhs(), Out);
  }
}

void collectStmtNames(const Stmt *S, std::set<std::string> &Out) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    return;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    Out.insert(A->target());
    collectVarNames(A->value(), Out);
    return;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    Out.insert(St->array());
    collectVarNames(St->index(), Out);
    collectVarNames(St->value(), Out);
    return;
  }
  case Stmt::Kind::Seq:
    for (const Stmt *Child : cast<SeqStmt>(S)->stmts())
      collectStmtNames(Child, Out);
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    collectVarNames(I->cond(), Out);
    collectStmtNames(I->thenStmt(), Out);
    collectStmtNames(I->elseStmt(), Out);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    collectVarNames(W->cond(), Out);
    collectStmtNames(W->body(), Out);
    return;
  }
  case Stmt::Kind::LocalDecl:
    collectVarNames(cast<LocalDeclStmt>(S)->init(), Out);
    return;
  }
}

} // namespace

SpecShape specgen::measureShape(const Monitor &M) {
  SpecShape Shape;
  Shape.Methods = static_cast<unsigned>(M.Methods.size());
  for (const Field &F : M.Fields) {
    if (F.IsConst)
      continue;
    if (F.Type == TypeKind::Int || F.Type == TypeKind::IntArray)
      ++Shape.IntFields;
    else
      ++Shape.BoolFields;
  }
  for (const Method &Meth : M.Methods) {
    for (const WaitUntil &W : Meth.Body) {
      ++Shape.Ccrs;
      Shape.MaxGuardDepth =
          std::max(Shape.MaxGuardDepth, connectiveDepth(W.Guard));
      std::set<std::string> Names;
      collectVarNames(W.Guard, Names);
      // Fan-in counts mutable shared state only: const fields and
      // thread-local operands don't couple CCRs through the invariant.
      unsigned FanIn = 0;
      for (const std::string &N : Names) {
        const Field *F = M.findField(N);
        if (F && !F->IsConst)
          ++FanIn;
      }
      Shape.MaxGuardFanIn = std::max(Shape.MaxGuardFanIn, FanIn);
    }
  }
  return Shape;
}

//===----------------------------------------------------------------------===//
// Monitor printing and shrink edits
//===----------------------------------------------------------------------===//

bool ShrinkEdit::isIdentity() const {
  return DropMethod < 0 && DropCcrMethod < 0 && TrueGuardMethod < 0 &&
         DropStmtMethod < 0 && DropField < 0 && DropRequires < 0;
}

namespace {

void printTypeAndName(std::ostream &OS, TypeKind T, const std::string &Name) {
  switch (T) {
  case TypeKind::Int:
    OS << "int " << Name;
    return;
  case TypeKind::Bool:
    OS << "bool " << Name;
    return;
  case TypeKind::IntArray:
    OS << "int[] " << Name;
    return;
  case TypeKind::BoolArray:
    OS << "bool[] " << Name;
    return;
  }
}

/// Top-level statements of a CCR body (a Seq's children, or the statement
/// itself): the granularity DropStmt edits work at.
std::vector<const Stmt *> topLevelStmts(const Stmt *Body) {
  if (const auto *Seq = dyn_cast<SeqStmt>(Body))
    return Seq->stmts();
  return {Body};
}

} // namespace

std::string specgen::printMonitor(const Monitor &M, const ShrinkEdit &Edit) {
  std::ostringstream OS;
  OS << "monitor " << M.Name << " {\n";

  for (size_t FI = 0; FI < M.Fields.size(); ++FI) {
    if (Edit.DropField == static_cast<int>(FI))
      continue;
    const Field &F = M.Fields[FI];
    OS << "  ";
    if (F.IsConst)
      OS << "const ";
    printTypeAndName(OS, F.Type, F.Name);
    if (F.Init)
      OS << " = " << printExpr(F.Init);
    OS << ";\n";
  }

  for (size_t RI = 0; RI < M.Requires.size(); ++RI) {
    if (Edit.DropRequires == static_cast<int>(RI))
      continue;
    OS << "  requires " << printExpr(M.Requires[RI]) << ";\n";
  }

  if (M.InitBody) {
    OS << "  init {\n";
    OS << printStmt(M.InitBody, 4);
    OS << "  }\n";
  }

  for (size_t MI = 0; MI < M.Methods.size(); ++MI) {
    if (Edit.DropMethod == static_cast<int>(MI))
      continue;
    const Method &Meth = M.Methods[MI];
    OS << "  void " << Meth.Name << "(";
    for (size_t PI = 0; PI < Meth.Params.size(); ++PI) {
      if (PI)
        OS << ", ";
      printTypeAndName(OS, Meth.Params[PI].Type, Meth.Params[PI].Name);
    }
    OS << ") {\n";
    for (size_t WI = 0; WI < Meth.Body.size(); ++WI) {
      if (Edit.DropCcrMethod == static_cast<int>(MI) &&
          Edit.DropCcrIndex == static_cast<int>(WI))
        continue;
      const WaitUntil &W = Meth.Body[WI];
      bool ForceTrue = Edit.TrueGuardMethod == static_cast<int>(MI) &&
                       Edit.TrueGuardIndex == static_cast<int>(WI);
      OS << "    waituntil (" << (ForceTrue ? "true" : printExpr(W.Guard))
         << ") {\n";
      std::vector<const Stmt *> Stmts = topLevelStmts(W.Body);
      bool Dropping = Edit.DropStmtMethod == static_cast<int>(MI) &&
                      Edit.DropStmtCcr == static_cast<int>(WI);
      bool Printed = false;
      for (size_t SI = 0; SI < Stmts.size(); ++SI) {
        if (Dropping && Edit.DropStmtIndex == static_cast<int>(SI))
          continue;
        OS << printStmt(Stmts[SI], 6);
        Printed = true;
      }
      if (!Printed)
        OS << "      skip;\n";
      OS << "    }\n";
    }
    OS << "  }\n";
  }
  OS << "}\n";
  return OS.str();
}

bool specgen::fieldReferenced(const Monitor &M, size_t FieldIndex) {
  if (FieldIndex >= M.Fields.size())
    return false;
  const std::string &Name = M.Fields[FieldIndex].Name;
  std::set<std::string> Names;
  for (const Expr *Req : M.Requires)
    collectVarNames(Req, Names);
  collectStmtNames(M.InitBody, Names);
  for (const Method &Meth : M.Methods) {
    for (const WaitUntil &W : Meth.Body) {
      collectVarNames(W.Guard, Names);
      collectStmtNames(W.Body, Names);
    }
  }
  return Names.count(Name) != 0;
}

//===----------------------------------------------------------------------===//
// The legacy PropertyTest generator (verbatim)
//===----------------------------------------------------------------------===//

std::string specgen::legacyRandomMonitorSource(Rng &R) {
  std::ostringstream OS;
  OS << "monitor Gen {\n";
  // Initial-state diversity lives in the declared initializers: the
  // invariant's initiation check (and hence Theorem 4.1) is relative to
  // constructor-reachable states, so overriding σ from outside would test a
  // claim the paper does not make.
  OS << "  int a = " << R.range(0, 2) << ";\n";
  OS << "  int b = " << R.range(0, 2) << ";\n";
  OS << "  bool flag = " << (R.chance(1, 2) ? "true" : "false") << ";\n";

  const char *Guards[] = {
      "a > 0",          "b > 0",        "a >= b",
      "a + b <= 3",     "flag",         "!flag",
      "a == 0",         "b < 2",        "a > 0 && !flag",
      "b > 0 || flag",
  };
  const char *Bodies[] = {
      "a++;",
      "a--;",
      "b++;",
      "if (b > 0) b--;",
      "a = a + 1; b = b + 1;",
      "if (a > 0) { a--; b++; }",
      "flag = true;",
      "flag = false;",
      "flag = !flag; a = a + 1;",
      "if (flag) a = a + 2; else b = b + 1;",
  };

  unsigned NumMethods = 2 + static_cast<unsigned>(R.below(2));
  for (unsigned I = 0; I < NumMethods; ++I) {
    OS << "  void m" << I << "() {\n";
    if (R.chance(3, 4)) {
      OS << "    waituntil (" << Guards[R.below(std::size(Guards))] << ") { "
         << Bodies[R.below(std::size(Bodies))] << " }\n";
    } else {
      OS << "    " << Bodies[R.below(std::size(Bodies))] << "\n";
    }
    OS << "  }\n";
  }
  OS << "}\n";
  return OS.str();
}
