//===- specgen/SpecGen.h - Seeded monitor-spec generator --------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic generator of well-typed implicit-signal monitor
/// specs. The paper validates Theorem 4.1 on fourteen fixed benchmarks;
/// this library manufactures arbitrarily many machines no author ever saw,
/// parameterized by the axes that drive analysis cost and shape:
///
///   * CCR count           — how many waituntil regions the monitor has
///                           (placement work is O(CCR x predicate-class));
///   * predicate depth     — boolean-connective nesting in guards;
///   * shared-variable     — how many distinct fields one guard reads
///     fan-in                (couples CCRs through the invariant);
///   * guard shape         — comparison-only, linear-arithmetic (incl. the
///                           divisibility fragment), boolean-flag, or mixed.
///
/// Every generated spec is well-typed by construction: the generator emits
/// only the statement and expression forms Sema accepts (linear arithmetic,
/// constant-operand multiplication, literal-divisor '%' under (in)equality,
/// requires clauses over const fields). Generation is a pure function of
/// GenConfig — same config, byte-identical spec — which is what makes
/// *.repro files replayable and the corpus reproducible.
///
/// The library is the promoted form of the ad-hoc generator that lived in
/// tests/PropertyTest.cpp; `legacyRandomMonitorSource` preserves that
/// generator byte-for-byte so the historical property-test seeds keep their
/// exact coverage.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SPECGEN_SPECGEN_H
#define EXPRESSO_SPECGEN_SPECGEN_H

#include "frontend/Ast.h"
#include "support/Rng.h"

#include <cstdint>
#include <string>

namespace expresso {
namespace specgen {

/// The syntactic family guard predicates are drawn from.
enum class GuardShape {
  Comparison, ///< field-vs-literal / field-vs-field comparisons
  Arithmetic, ///< linear sums, const-coefficient terms, '%' divisibility
  Boolean,    ///< boolean-flag atoms (falls back to comparisons as needed)
  Mixed,      ///< the union (default)
};

const char *guardShapeName(GuardShape S);
bool parseGuardShape(const std::string &Name, GuardShape &Out);

/// The knob surface. Defaults generate a small mixed-shape monitor; the
/// differential rig and the corpus generator turn the dials.
struct GenConfig {
  uint64_t Seed = 1;

  unsigned Ccrs = 4;             ///< total waituntil regions in the monitor
  unsigned MaxCcrsPerMethod = 2; ///< CCR sequences inside one method
  unsigned IntFields = 3;        ///< shared int fields v0..
  unsigned BoolFields = 1;       ///< shared bool fields f0..
  unsigned PredicateDepth = 2;   ///< max connective nesting in guards
  unsigned FanIn = 2;            ///< distinct shared vars one guard reads
  GuardShape Shape = GuardShape::Mixed;
  unsigned BodyStmts = 2;        ///< max top-level statements per CCR body

  bool ConstConfig = true; ///< emit a `const int cap` + requires clause
  bool AllowLoops = false; ///< rare bounded while-loops in bodies
  bool AllowParams = true; ///< methods may take an int parameter (guards
                           ///< over it mint placeholder predicate classes)

  std::string Name = "Gen"; ///< monitor name

  /// Clamps nonsensical values (zero CCRs, zero int fields, fan-in beyond
  /// the field count) to the nearest generatable configuration.
  void normalize();

  bool operator==(const GenConfig &O) const;
};

/// Renders \p Config as a stable `key=value,...` string (the repro-file and
/// CLI wire format).
std::string configToString(const GenConfig &Config);

/// Parses a `key=value,...` string produced by configToString (unknown keys
/// are an error). Returns false with \p Error set.
bool configFromString(const std::string &Text, GenConfig &Out,
                      std::string *Error);

/// Generates the monitor source for \p Config. Pure: same config,
/// byte-identical output. The result always parses and passes Sema.
std::string generateMonitorSource(const GenConfig &Config);

/// Derives a varied GenConfig for \p Seed, sampling each knob up to the
/// ceilings in \p Max (the differential rig's per-seed diversity). Pure.
GenConfig sampleConfig(uint64_t Seed, const GenConfig &Max);

//===----------------------------------------------------------------------===//
// Shape measurement (the knob-monotonicity contract)
//===----------------------------------------------------------------------===//

/// Measured structural shape of a monitor spec.
struct SpecShape {
  unsigned Ccrs = 0;          ///< waituntil regions
  unsigned Methods = 0;
  unsigned IntFields = 0;     ///< non-const int fields
  unsigned BoolFields = 0;
  unsigned MaxGuardDepth = 0; ///< max connective nesting over all guards
  unsigned MaxGuardFanIn = 0; ///< max distinct fields read by one guard
};

/// Measures \p M (guard depth counts And/Or/Not nesting above atoms;
/// fan-in counts distinct field references per guard).
SpecShape measureShape(const frontend::Monitor &M);

//===----------------------------------------------------------------------===//
// Monitor printing (shrinker substrate)
//===----------------------------------------------------------------------===//

/// An edit applied while printing a monitor back to source — the shrinker's
/// reduction operators. Indices select the target; -1 means "no edit of
/// this kind". At most one edit is applied per print.
struct ShrinkEdit {
  int DropMethod = -1;     ///< omit method with this index
  int DropCcrMethod = -1;  ///< with DropCcrIndex: omit one waituntil
  int DropCcrIndex = -1;
  int TrueGuardMethod = -1; ///< with TrueGuardIndex: replace guard by true
  int TrueGuardIndex = -1;
  int DropStmtMethod = -1; ///< with DropStmtCcr/DropStmtIndex: drop one
  int DropStmtCcr = -1;    ///< top-level statement of a CCR body
  int DropStmtIndex = -1;
  int DropField = -1;      ///< omit field with this index (caller ensures
                           ///< it is unreferenced)
  int DropRequires = -1;   ///< omit requires clause with this index

  bool isIdentity() const;
};

/// Prints \p M back to parseable monitor-language source, applying \p Edit.
/// printMonitor(parse(S)) is semantically S (modulo whitespace and the
/// waituntil(true) normalization the parser applies to bare statements).
std::string printMonitor(const frontend::Monitor &M,
                         const ShrinkEdit &Edit = ShrinkEdit());

/// True when field \p FieldIndex of \p M is referenced anywhere outside its
/// own declaration (guards, bodies, requires clauses, other initializers).
bool fieldReferenced(const frontend::Monitor &M, size_t FieldIndex);

//===----------------------------------------------------------------------===//
// The legacy PropertyTest generator
//===----------------------------------------------------------------------===//

/// The original tests/PropertyTest.cpp generator, preserved byte-for-byte:
/// a random monitor over two counters and a flag with guarded
/// transfer/toggle methods. Consumes \p R exactly as the historical code
/// did, so existing seeds generate identical machines.
std::string legacyRandomMonitorSource(Rng &R);

} // namespace specgen
} // namespace expresso

#endif // EXPRESSO_SPECGEN_SPECGEN_H
