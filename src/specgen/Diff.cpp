//===- specgen/Diff.cpp - Whole-placement differential harness ------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "specgen/Diff.h"

#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "persist/QueryStore.h"
#include "service/Client.h"
#include "service/Server.h"
#include "solver/SolverFactory.h"
#include "solver/SolverRig.h"
#include "specgen/SpecGen.h"
#include "support/Timer.h"

#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <poll.h>
#include <sstream>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace expresso;
using namespace expresso::specgen;

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Cell labels
//===----------------------------------------------------------------------===//

namespace {

const char *kindName(solver::SolverKind K) {
  return K == solver::SolverKind::Z3 ? "z3" : "mini";
}

const char *cacheModeName(CacheMode M) {
  switch (M) {
  case CacheMode::Off:
    return "cache-off";
  case CacheMode::Cold:
    return "cache-cold";
  case CacheMode::Warm:
    return "cache-warm";
  }
  return "cache-off";
}

} // namespace

std::string RunSpec::label() const {
  std::ostringstream OS;
  OS << kindName(Backend) << "/" << (Daemon ? "daemon" : "local") << "/jobs"
     << Jobs << "/" << (Incremental ? "inc-on" : "inc-off") << "/"
     << cacheModeName(Cache);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// In-process cell execution (runs inside the forked child)
//===----------------------------------------------------------------------===//

namespace {

RunResult runLocalCell(const std::string &Source, const RunSpec &Cell) {
  RunResult Out;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Source, Diags);
  if (!M) {
    Out.Message = "parse error:\n" + Diags.str();
    return Out;
  }
  logic::TermContext C;
  auto Sema = frontend::analyze(*M, C, Diags);
  if (!Sema) {
    Out.Message = "sema error:\n" + Diags.str();
    return Out;
  }
  std::string Profile = solver::backendProfileName(Cell.Backend);
  if (Profile.empty()) {
    Out.Message = std::string("backend '") + kindName(Cell.Backend) +
                  "' unavailable in this build";
    return Out;
  }
  bool CacheQueries = Cell.Cache != CacheMode::Off;
  std::shared_ptr<persist::QueryStore> Store;
  if (CacheQueries && !Cell.CacheDir.empty()) {
    Store = persist::QueryStore::openReportingWarnings(
        Cell.CacheDir, /*ReadOnly=*/false, Profile, CacheQueries);
    if (!Store) {
      Out.Message = "cannot open cache dir " + Cell.CacheDir;
      return Out;
    }
  }
  solver::SolverRig Rig =
      solver::buildSolverRig(C, Cell.Backend, CacheQueries, Store);
  if (!Rig) {
    Out.Message = std::string("solver rig for '") + kindName(Cell.Backend) +
                  "' unavailable";
    return Out;
  }
  core::PlacementOptions Opts;
  Opts.CacheQueries = CacheQueries;
  Opts.Incremental = Cell.Incremental;
  Opts.Jobs = Cell.Jobs;
  Opts.WorkerSolvers = solver::SolverFactory(Cell.Backend);
  core::PlacementResult R = core::placeSignals(C, *Sema, Rig.solver(), Opts);

  Out.St = RunResult::Status::Ok;
  Out.Sigma = R.decisionSummary();
  Out.PairsConsidered = R.Stats.PairsConsidered;
  Out.HoareChecks = R.Stats.HoareChecks;
  Out.NoSignalProved = R.Stats.NoSignalProved;
  Out.Signals = R.Stats.Signals;
  Out.Broadcasts = R.Stats.Broadcasts;
  Out.Unconditional = R.Stats.Unconditional;
  Out.CommutativityWins = R.Stats.CommutativityWins;
  Out.SolverQueries = R.Stats.SolverQueries;
  Out.MemoHits = R.Stats.Cache.Hits;
  Out.MemoMisses = R.Stats.Cache.Misses;
  Out.DiskHits = R.Stats.Cache.DiskHits;
  Out.DiskMisses = R.Stats.Cache.DiskMisses;
  return Out;
}

RunResult fromResponse(const service::PlaceResponse &R) {
  RunResult Out;
  if (R.Status != service::ResponseStatus::Ok) {
    Out.Message =
        "daemon: " + (R.Error.empty() ? std::string("request failed") : R.Error);
    return Out;
  }
  Out.St = RunResult::Status::Ok;
  Out.Sigma = R.DecisionSummary;
  Out.PairsConsidered = R.PairsConsidered;
  Out.HoareChecks = R.HoareChecks;
  Out.NoSignalProved = R.NoSignalProved;
  Out.Signals = R.Signals;
  Out.Broadcasts = R.Broadcasts;
  Out.Unconditional = R.Unconditional;
  Out.CommutativityWins = R.CommutativityWins;
  Out.SolverQueries = R.SolverQueries;
  Out.MemoHits = R.CacheHits;
  Out.MemoMisses = R.CacheMisses;
  // The daemon's shared store is the persistent tier of a local run.
  Out.DiskHits = R.SharedHits;
  Out.DiskMisses = R.SharedMisses;
  return Out;
}

/// Daemon leg: boot an in-process expressod on a private socket, send the
/// same request twice with the replay cache bypassed. Request 1 sees the
/// daemon's store cold (joins the Cold parity group), request 2 sees it
/// warmed by request 1 (joins the Warm group).
std::vector<RunResult> runDaemonPair(const std::string &Source,
                                     const RunSpec &Cell,
                                     const std::string &SocketPath) {
  auto bothFailed = [](const std::string &Msg) {
    RunResult R;
    R.Message = Msg;
    return std::vector<RunResult>{R, R};
  };
  service::ServerOptions SOpts;
  SOpts.SocketPath = SocketPath;
  SOpts.Workers = 2;
  SOpts.JobsBudget = std::max(1u, Cell.Jobs);
  SOpts.SolverName = kindName(Cell.Backend);
  service::Server Srv(SOpts);
  std::string Error;
  if (!Srv.start(&Error))
    return bothFailed("daemon start failed: " + Error);

  std::vector<RunResult> Results;
  {
    std::unique_ptr<service::ServiceClient> Client =
        service::ServiceClient::connect(SocketPath, &Error);
    if (!Client) {
      Srv.requestShutdown(/*Drain=*/false);
      Srv.wait();
      return bothFailed("daemon connect failed: " + Error);
    }
    service::PlaceRequest Req;
    Req.Source = Source;
    Req.Emit = "summary";
    Req.Solver = kindName(Cell.Backend);
    Req.Incremental = Cell.Incremental;
    Req.Jobs = Cell.Jobs;
    Req.BypassResultCache = true;
    for (int I = 0; I < 2; ++I) {
      service::PlaceResponse Resp;
      if (!Client->place(Req, Resp, &Error)) {
        RunResult R;
        R.Message = "daemon request failed: " + Error;
        Results.push_back(R);
      } else {
        Results.push_back(fromResponse(Resp));
      }
    }
  }
  Srv.requestShutdown(/*Drain=*/true);
  Srv.wait();
  return Results;
}

//===----------------------------------------------------------------------===//
// Child <-> parent result transport
//===----------------------------------------------------------------------===//

void writeAll(int Fd, const char *Data, size_t Size) {
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::write(Fd, Data + Off, Size - Off);
    if (N <= 0) {
      if (errno == EINTR)
        continue;
      return; // parent went away; nothing sensible left to do
    }
    Off += static_cast<size_t>(N);
  }
}

void writeBlob(std::ostream &OS, const char *Tag, const std::string &S) {
  OS << Tag << " " << S.size() << "\n" << S << "\n";
}

void serializeResult(std::ostream &OS, const RunResult &R) {
  OS << "status " << static_cast<int>(R.St) << "\n";
  writeBlob(OS, "msg", R.Message);
  writeBlob(OS, "sigma", R.Sigma);
  OS << "core " << R.PairsConsidered << " " << R.HoareChecks << " "
     << R.NoSignalProved << " " << R.Signals << " " << R.Broadcasts << " "
     << R.Unconditional << " " << R.CommutativityWins << " "
     << R.SolverQueries << "\n";
  OS << "cache " << R.MemoHits << " " << R.MemoMisses << " " << R.DiskHits
     << " " << R.DiskMisses << "\n";
  OS << "end\n";
}

/// Parses the child's output stream back into results. Returns false when
/// the stream is truncated or malformed (treated as a crash by the caller).
bool parseResults(const std::string &Data, size_t Expected,
                  std::vector<RunResult> &Out) {
  size_t Pos = 0;
  auto line = [&](std::string &L) {
    size_t Nl = Data.find('\n', Pos);
    if (Nl == std::string::npos)
      return false;
    L = Data.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    return true;
  };
  auto blob = [&](const char *Tag, std::string &S) {
    std::string L;
    if (!line(L))
      return false;
    std::istringstream IS(L);
    std::string Got;
    size_t Len = 0;
    if (!(IS >> Got >> Len) || Got != Tag)
      return false;
    if (Pos + Len + 1 > Data.size())
      return false;
    S = Data.substr(Pos, Len);
    Pos += Len + 1; // skip the trailing newline
    return true;
  };
  for (size_t I = 0; I < Expected; ++I) {
    RunResult R;
    std::string L;
    if (!line(L))
      return false;
    {
      std::istringstream IS(L);
      std::string Tag;
      int St = 0;
      if (!(IS >> Tag >> St) || Tag != "status")
        return false;
      R.St = static_cast<RunResult::Status>(St);
    }
    if (!blob("msg", R.Message) || !blob("sigma", R.Sigma))
      return false;
    if (!line(L))
      return false;
    {
      std::istringstream IS(L);
      std::string Tag;
      if (!(IS >> Tag >> R.PairsConsidered >> R.HoareChecks >>
            R.NoSignalProved >> R.Signals >> R.Broadcasts >> R.Unconditional >>
            R.CommutativityWins >> R.SolverQueries) ||
          Tag != "core")
        return false;
    }
    if (!line(L))
      return false;
    {
      std::istringstream IS(L);
      std::string Tag;
      if (!(IS >> Tag >> R.MemoHits >> R.MemoMisses >> R.DiskHits >>
            R.DiskMisses) ||
          Tag != "cache")
        return false;
    }
    if (!line(L) || L != "end")
      return false;
    Out.push_back(std::move(R));
  }
  return true;
}

/// One forked cell in flight: the child executes the cell (one local run,
/// or a daemon request pair) and streams results back over a pipe; the
/// parent enforces the per-cell deadline. Independent cells run
/// concurrently — every cold store directory and daemon socket is private
/// to its cell, so the only ordering constraint is cold-before-warm.
struct PendingCell {
  RunSpec Cell;
  std::string SocketPath;
  int DeadlineSeconds = 300;
  size_t Expected = 1;

  pid_t Pid = -1;
  int Fd = -1;
  std::string Data;
  WallTimer Start;
  std::vector<RunResult> Results; ///< filled when finished

  bool finished() const { return !Results.empty(); }

  void finishAll(RunResult::Status St, const std::string &Msg) {
    RunResult R;
    R.St = St;
    R.Message = Msg;
    Results.assign(Expected, R);
  }
};

/// Forks the child for \p P. On failure the cell finishes immediately with
/// an Error result.
void launchCell(const std::string &Source, PendingCell &P) {
  P.Expected = P.Cell.Daemon ? 2 : 1;
  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    P.finishAll(RunResult::Status::Error, "pipe() failed");
    return;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Pipe[0]);
    ::close(Pipe[1]);
    P.finishAll(RunResult::Status::Error, "fork() failed");
    return;
  }
  if (Pid == 0) {
    // Child: run the cell, ship the results, exit without running atexit
    // handlers (the parent's state must stay untouched).
    ::close(Pipe[0]);
    std::ostringstream OS;
    std::vector<RunResult> Results;
    try {
      if (P.Cell.Daemon)
        Results = runDaemonPair(Source, P.Cell, P.SocketPath);
      else
        Results.push_back(runLocalCell(Source, P.Cell));
    } catch (const std::exception &E) {
      RunResult R;
      R.Message = std::string("exception: ") + E.what();
      Results.assign(P.Expected, R);
    } catch (...) {
      RunResult R;
      R.Message = "unknown exception";
      Results.assign(P.Expected, R);
    }
    if (Results.size() != P.Expected)
      Results.resize(P.Expected);
    for (const RunResult &R : Results)
      serializeResult(OS, R);
    std::string Payload = OS.str();
    writeAll(Pipe[1], Payload.data(), Payload.size());
    ::close(Pipe[1]);
    ::_exit(0);
  }
  ::close(Pipe[1]);
  P.Pid = Pid;
  P.Fd = Pipe[0];
  P.Start.restart();
}

/// Reaps one launched cell that has reached EOF or its deadline.
void finalizeCell(PendingCell &P, bool TimedOut) {
  if (P.Fd >= 0) {
    ::close(P.Fd);
    P.Fd = -1;
  }
  if (TimedOut) {
    ::kill(P.Pid, SIGKILL);
    int Status = 0;
    ::waitpid(P.Pid, &Status, 0);
    P.finishAll(RunResult::Status::Timeout,
                "exceeded " + std::to_string(P.DeadlineSeconds) +
                    "s deadline");
    return;
  }
  int Status = 0;
  ::waitpid(P.Pid, &Status, 0);
  if (WIFSIGNALED(Status)) {
    P.finishAll(RunResult::Status::Crash, std::string("killed by signal ") +
                                              strsignal(WTERMSIG(Status)));
    return;
  }
  if (WIFEXITED(Status) && WEXITSTATUS(Status) != 0) {
    P.finishAll(RunResult::Status::Crash,
                "exited with code " + std::to_string(WEXITSTATUS(Status)));
    return;
  }
  std::vector<RunResult> Results;
  if (!parseResults(P.Data, P.Expected, Results)) {
    P.finishAll(RunResult::Status::Crash, "truncated result stream");
    return;
  }
  P.Results = std::move(Results);
}

/// Drives a batch of launched cells to completion: polls every open pipe,
/// drains output as it arrives, and kills any child past its own deadline.
void collectCells(std::vector<PendingCell *> &Batch) {
  char Buf[4096];
  for (;;) {
    std::vector<struct pollfd> Pfds;
    std::vector<size_t> Index;
    for (size_t I = 0; I < Batch.size(); ++I) {
      PendingCell &P = *Batch[I];
      if (P.finished() || P.Fd < 0)
        continue;
      if (P.Start.elapsedSeconds() >= P.DeadlineSeconds) {
        finalizeCell(P, /*TimedOut=*/true);
        continue;
      }
      Pfds.push_back({P.Fd, POLLIN, 0});
      Index.push_back(I);
    }
    if (Pfds.empty())
      return;
    int Rc = ::poll(Pfds.data(), Pfds.size(), 200);
    if (Rc < 0 && errno != EINTR)
      Rc = 0;
    for (size_t K = 0; K < Pfds.size(); ++K) {
      if (!(Pfds[K].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      PendingCell &P = *Batch[Index[K]];
      ssize_t N = ::read(P.Fd, Buf, sizeof(Buf));
      if (N > 0) {
        P.Data.append(Buf, static_cast<size_t>(N));
      } else if (N == 0 || (N < 0 && errno != EINTR)) {
        finalizeCell(P, /*TimedOut=*/false); // EOF: child is done
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// The matrix
//===----------------------------------------------------------------------===//

/// One executed cell with the metadata the parity checks key on.
struct CellOutcome {
  solver::SolverKind Backend = solver::SolverKind::Mini;
  std::string Label;
  CacheMode Mode = CacheMode::Off;
  bool ExactWarm = false; ///< warm disk counters must be all-hits
  RunResult R;
};

struct MatrixReport {
  SpecVerdict::Kind K = SpecVerdict::Kind::Parity;
  std::string Detail;
  unsigned Cells = 0;
};

std::string statLine(const RunResult &R) {
  std::ostringstream OS;
  OS << "pairs=" << R.PairsConsidered << " hoare=" << R.HoareChecks
     << " nosignal=" << R.NoSignalProved << " signals=" << R.Signals
     << " broadcasts=" << R.Broadcasts << " uncond=" << R.Unconditional
     << " commwins=" << R.CommutativityWins << " queries=" << R.SolverQueries;
  return OS.str();
}

bool coreEqual(const RunResult &A, const RunResult &B) {
  return A.PairsConsidered == B.PairsConsidered &&
         A.HoareChecks == B.HoareChecks &&
         A.NoSignalProved == B.NoSignalProved && A.Signals == B.Signals &&
         A.Broadcasts == B.Broadcasts && A.Unconditional == B.Unconditional &&
         A.CommutativityWins == B.CommutativityWins &&
         A.SolverQueries == B.SolverQueries;
}

/// One planned matrix cell: the forked child plus the parity metadata its
/// results carry. A daemon cell yields two outcomes (request 1 joins the
/// cold parity group, request 2 the warm group).
struct PlannedCell {
  solver::SolverKind Backend = solver::SolverKind::Mini;
  PendingCell Pending;
  std::string Label;
  CacheMode Mode = CacheMode::Off;
  bool ExactWarm = false;
};

void appendOutcomes(const PlannedCell &C, std::vector<CellOutcome> &Out) {
  for (size_t I = 0; I < C.Pending.Results.size(); ++I) {
    CellOutcome O;
    O.Backend = C.Backend;
    O.Label = C.Label;
    O.Mode = C.Mode;
    O.ExactWarm = C.ExactWarm;
    if (C.Pending.Cell.Daemon) {
      O.Label += I == 0 ? "/req-cold" : "/req-warm";
      O.Mode = I == 0 ? CacheMode::Cold : CacheMode::Warm;
    }
    O.R = C.Pending.Results[I];
    Out.push_back(std::move(O));
  }
}

/// Plans one backend group's cells. Cache-off, cold, and daemon cells have
/// no ordering constraints between them and go to \p Stage1; warm cells
/// must follow the cold run that fills their store and go to \p Stage2.
void planGroup(solver::SolverKind Backend, const DiffOptions &Opts,
               const std::string &Scratch, std::vector<PlannedCell> &Stage1,
               std::vector<PlannedCell> &Stage2) {
  std::vector<unsigned> JobsLegs = {1};
  if (Opts.JobsMax > 1)
    JobsLegs.push_back(Opts.JobsMax);

  auto localCell = [&](unsigned Jobs, bool Inc, CacheMode Mode,
                       const std::string &Dir) {
    PlannedCell C;
    C.Backend = Backend;
    C.Pending.Cell.Backend = Backend;
    C.Pending.Cell.Jobs = Jobs;
    C.Pending.Cell.Incremental = Inc;
    C.Pending.Cell.Cache = Mode;
    C.Pending.Cell.CacheDir = Dir;
    C.Pending.DeadlineSeconds = Opts.TimeoutSeconds;
    C.Label = C.Pending.Cell.label();
    C.Mode = Mode;
    C.ExactWarm = Jobs == 1;
    return C;
  };

  for (unsigned Jobs : JobsLegs) {
    for (bool Inc : {true, false}) {
      Stage1.push_back(localCell(Jobs, Inc, CacheMode::Off, ""));
      std::string Dir = Scratch + "/store-" + kindName(Backend) + "-j" +
                        std::to_string(Jobs) + (Inc ? "-inc" : "-one");
      Stage1.push_back(localCell(Jobs, Inc, CacheMode::Cold, Dir));
      Stage2.push_back(localCell(Jobs, Inc, CacheMode::Warm, Dir));
    }
  }

  // Daemon legs on the matrix diagonal.
  if (Opts.UseDaemon) {
    struct DaemonLeg {
      unsigned Jobs;
      bool Inc;
    };
    std::vector<DaemonLeg> Legs = {{1, true}};
    if (Opts.JobsMax > 1)
      Legs.push_back({Opts.JobsMax, false});
    unsigned LegIdx = 0;
    for (const DaemonLeg &Leg : Legs) {
      PlannedCell C;
      C.Backend = Backend;
      C.Pending.Cell.Backend = Backend;
      C.Pending.Cell.Jobs = Leg.Jobs;
      C.Pending.Cell.Incremental = Leg.Inc;
      C.Pending.Cell.Daemon = true;
      C.Pending.SocketPath = Scratch + "/expressod-" + kindName(Backend) +
                             "-" + std::to_string(LegIdx++) + ".sock";
      C.Pending.DeadlineSeconds = 2 * Opts.TimeoutSeconds;
      C.Label = C.Pending.Cell.label();
      C.ExactWarm = Leg.Jobs == 1;
      Stage1.push_back(std::move(C));
    }
  }
}

/// Concurrency cap for one stage's forked children. Cells are short and
/// mostly independent pipelines, so mild oversubscription beats idle cores.
unsigned parallelCap(const DiffOptions &Opts) {
  if (Opts.Parallel > 0)
    return Opts.Parallel;
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 8;
  return std::min(16u, std::max(4u, Hw));
}

/// Launches one stage's cells in chunks of the concurrency cap, collecting
/// each chunk before the next. Returns false once the spec budget expires;
/// unlaunched cells stay unexecuted (the caller reports Skipped).
bool runStage(const std::string &Source, std::vector<PlannedCell> &Stage,
              const DiffOptions &Opts, const WallTimer &SpecClock,
              std::vector<CellOutcome> &Outcomes) {
  unsigned Cap = parallelCap(Opts);
  size_t Next = 0;
  while (Next < Stage.size()) {
    int Remaining = 0;
    if (Opts.SpecBudgetSeconds > 0) {
      Remaining = Opts.SpecBudgetSeconds -
                  static_cast<int>(SpecClock.elapsedSeconds());
      if (SpecClock.elapsedSeconds() > Opts.SpecBudgetSeconds)
        return false;
    }
    size_t End = std::min(Stage.size(), Next + Cap);
    std::vector<PendingCell *> Batch;
    for (size_t I = Next; I < End; ++I) {
      PlannedCell &C = Stage[I];
      // Under a spec budget, cap each child's deadline at what is left of
      // the budget so a slow chunk degrades to Timeout rows instead of
      // blowing through the bound.
      if (Opts.SpecBudgetSeconds > 0)
        C.Pending.DeadlineSeconds =
            std::min(C.Pending.DeadlineSeconds, std::max(1, Remaining + 1));
      if (Opts.Verbose)
        std::fprintf(stderr, "  [cell] %s\n", C.Label.c_str());
      launchCell(Source, C.Pending);
      if (!C.Pending.finished())
        Batch.push_back(&C.Pending);
    }
    collectCells(Batch);
    for (size_t I = Next; I < End; ++I)
      appendOutcomes(Stage[I], Outcomes);
    Next = End;
  }
  return true;
}

/// Checks every parity rule over one backend group's executed cells.
MatrixReport checkGroup(solver::SolverKind Backend,
                        const std::vector<CellOutcome> &All) {
  MatrixReport Report;
  std::vector<CellOutcome> Cells;
  for (const CellOutcome &O : All)
    if (O.Backend == Backend)
      Cells.push_back(O);
  Report.Cells = static_cast<unsigned>(Cells.size());

  auto fail = [&](const std::string &Detail) {
    Report.K = SpecVerdict::Kind::Divergence;
    Report.Detail = Detail;
    return Report;
  };

  // Hard failures and timeouts first.
  bool SawTimeout = false;
  std::string TimeoutDetail;
  for (const CellOutcome &O : Cells) {
    switch (O.R.St) {
    case RunResult::Status::Ok:
      break;
    case RunResult::Status::Timeout:
      SawTimeout = true;
      if (TimeoutDetail.empty())
        TimeoutDetail = O.Label + ": " + O.R.Message;
      break;
    case RunResult::Status::Crash:
    case RunResult::Status::Error:
      return fail(O.Label + ": " + O.R.Message);
    }
  }

  // Σ and core-stat byte parity across every completed cell.
  const CellOutcome *Ref = nullptr;
  for (const CellOutcome &O : Cells) {
    if (O.R.St != RunResult::Status::Ok)
      continue;
    if (!Ref) {
      Ref = &O;
      continue;
    }
    if (O.R.Sigma != Ref->R.Sigma)
      return fail("sigma mismatch: " + Ref->Label + " vs " + O.Label +
                  "\n--- " + Ref->Label + "\n" + Ref->R.Sigma + "--- " +
                  O.Label + "\n" + O.R.Sigma);
    if (!coreEqual(O.R, Ref->R))
      return fail("stats mismatch: " + Ref->Label + " [" + statLine(Ref->R) +
                  "] vs " + O.Label + " [" + statLine(O.R) + "]");
  }

  // Memo tier: zero with the cache off, identical across cache-enabled
  // cells (misses == distinct formulas, an interleaving-independent count).
  const CellOutcome *MemoRef = nullptr;
  for (const CellOutcome &O : Cells) {
    if (O.R.St != RunResult::Status::Ok)
      continue;
    if (O.Mode == CacheMode::Off) {
      if (O.R.MemoHits != 0 || O.R.MemoMisses != 0 || O.R.DiskHits != 0 ||
          O.R.DiskMisses != 0)
        return fail(O.Label + ": nonzero cache counters with cache off");
      continue;
    }
    if (!MemoRef) {
      MemoRef = &O;
      continue;
    }
    if (O.R.MemoHits != MemoRef->R.MemoHits ||
        O.R.MemoMisses != MemoRef->R.MemoMisses)
      return fail("memo counter mismatch: " + MemoRef->Label + " (" +
                  std::to_string(MemoRef->R.MemoHits) + "/" +
                  std::to_string(MemoRef->R.MemoMisses) + ") vs " + O.Label +
                  " (" + std::to_string(O.R.MemoHits) + "/" +
                  std::to_string(O.R.MemoMisses) + ")");
  }

  // Persistent tier, per cell. Cold stores answer nothing and record every
  // memo miss; warm stores answer everything at jobs==1 (both backends —
  // solver-side interning is isolated in a scratch context, so a warm
  // replay re-derives identical keys) and under --jobs conserve lookups
  // (worker-interleaved interning can still reorder worker-built subterms).
  for (const CellOutcome &O : Cells) {
    if (O.R.St != RunResult::Status::Ok || O.Mode == CacheMode::Off)
      continue;
    uint64_t Lookups = O.R.DiskHits + O.R.DiskMisses;
    if (Lookups != O.R.MemoMisses)
      return fail(O.Label + ": disk lookups (" + std::to_string(Lookups) +
                  ") != memo misses (" + std::to_string(O.R.MemoMisses) + ")");
    if (O.Mode == CacheMode::Cold && O.R.DiskHits != 0)
      return fail(O.Label + ": cold store answered " +
                  std::to_string(O.R.DiskHits) + " lookups");
    if (O.Mode == CacheMode::Warm) {
      if (O.ExactWarm && O.R.DiskMisses != 0)
        return fail(O.Label + ": warm store missed " +
                    std::to_string(O.R.DiskMisses) + " of " +
                    std::to_string(Lookups) + " lookups (expected all hits)");
      // Loose warm contract (--jobs cells): demand *some* reuse once
      // there is enough traffic that scheduling jitter cannot plausibly
      // miss every key.
      if (!O.ExactWarm && Lookups >= 4 && O.R.DiskHits == 0)
        return fail(O.Label + ": warm store answered 0 of " +
                    std::to_string(Lookups) + " lookups");
    }
  }

  if (SawTimeout) {
    Report.K = SpecVerdict::Kind::Skipped;
    Report.Detail = TimeoutDetail;
  }
  return Report;
}

/// Plans every backend group, runs stage 1 (off + cold + daemon) and then
/// stage 2 (warm) with intra-stage concurrency, and checks parity per
/// group. The spec budget spans the whole matrix.
MatrixReport runMatrix(const std::string &Source, const DiffOptions &Opts,
                       const std::string &Scratch,
                       std::vector<CellOutcome> &Outcomes) {
  std::vector<solver::SolverKind> Backends = Opts.Backends;
  if (Backends.empty()) {
    Backends.push_back(solver::SolverKind::Mini);
    if (solver::hasZ3())
      Backends.push_back(solver::SolverKind::Z3);
  }
  WallTimer SpecClock;
  std::vector<PlannedCell> Stage1, Stage2;
  for (solver::SolverKind Backend : Backends)
    planGroup(Backend, Opts, Scratch, Stage1, Stage2);
  bool Complete = runStage(Source, Stage1, Opts, SpecClock, Outcomes);
  if (Complete)
    Complete = runStage(Source, Stage2, Opts, SpecClock, Outcomes);

  MatrixReport Combined;
  Combined.Cells = static_cast<unsigned>(Outcomes.size());
  for (solver::SolverKind Backend : Backends) {
    MatrixReport R = checkGroup(Backend, Outcomes);
    if (R.K == SpecVerdict::Kind::Divergence) {
      Combined.K = R.K;
      Combined.Detail = R.Detail;
      return Combined; // first divergence wins
    }
    if (R.K == SpecVerdict::Kind::Skipped &&
        Combined.K == SpecVerdict::Kind::Parity) {
      Combined.K = R.K;
      Combined.Detail = R.Detail;
    }
  }
  if (!Complete && Combined.K == SpecVerdict::Kind::Parity) {
    Combined.K = SpecVerdict::Kind::Skipped;
    Combined.Detail = "spec budget (" +
                      std::to_string(Opts.SpecBudgetSeconds) +
                      "s) exhausted after " +
                      std::to_string(Outcomes.size()) + " cells";
  }
  return Combined;
}

//===----------------------------------------------------------------------===//
// Scratch management
//===----------------------------------------------------------------------===//

/// Unique scratch directory for one matrix run (cache stores + daemon
/// sockets). Socket paths must stay under sun_path limits, so prefer short
/// roots.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Root) {
    static unsigned Counter = 0;
    const char *Base = Root.empty() ? nullptr : Root.c_str();
    if (!Base) {
      Base = ::getenv("TMPDIR");
      if (!Base || !*Base)
        Base = "/tmp";
    }
    Path = std::string(Base) + "/xdiff-" + std::to_string(::getpid()) + "-" +
           std::to_string(Counter++);
    std::error_code Ec;
    fs::create_directories(Path, Ec);
  }
  ~ScratchDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

//===----------------------------------------------------------------------===//
// Shrinking
//===----------------------------------------------------------------------===//

/// True when the candidate source still parses, passes sema, and still
/// diverges under a (cheaper) matrix run.
bool stillFails(const std::string &Candidate, const DiffOptions &Opts,
                const std::string &Scratch) {
  {
    DiagnosticEngine Diags;
    auto M = frontend::parseMonitor(Candidate, Diags);
    if (!M)
      return false;
    logic::TermContext C;
    if (!frontend::analyze(*M, C, Diags))
      return false;
  }
  DiffOptions Cheap = Opts;
  Cheap.Shrink = false;
  Cheap.UseDaemon = false; // daemon-only divergences simply stop shrinking
  Cheap.TimeoutSeconds = std::min(Opts.TimeoutSeconds, 60);
  std::vector<CellOutcome> Outcomes;
  return runMatrix(Candidate, Cheap, Scratch, Outcomes).K ==
         SpecVerdict::Kind::Divergence;
}

/// Greedy ddmin-style reduction: repeatedly try structural edits (largest
/// cuts first) and keep any reduced spec that still fails, until a full
/// pass accepts nothing or the wall budget runs out.
std::string shrinkSpec(const std::string &Source, const DiffOptions &Opts,
                       const std::string &Scratch) {
  WallTimer Budget;
  std::string Current = Source;

  auto parse = [](const std::string &Src) -> std::unique_ptr<frontend::Monitor> {
    DiagnosticEngine Diags;
    return frontend::parseMonitor(Src, Diags);
  };

  bool Improved = true;
  while (Improved && Budget.elapsedSeconds() < Opts.ShrinkSeconds) {
    Improved = false;
    auto M = parse(Current);
    if (!M)
      break;

    std::vector<ShrinkEdit> Candidates;
    // Largest cuts first: whole methods, then single CCRs, then guards and
    // statements, then dead fields and requires clauses.
    if (M->Methods.size() > 1)
      for (size_t MI = 0; MI < M->Methods.size(); ++MI) {
        ShrinkEdit E;
        E.DropMethod = static_cast<int>(MI);
        Candidates.push_back(E);
      }
    for (size_t MI = 0; MI < M->Methods.size(); ++MI)
      if (M->Methods[MI].Body.size() > 1)
        for (size_t WI = 0; WI < M->Methods[MI].Body.size(); ++WI) {
          ShrinkEdit E;
          E.DropCcrMethod = static_cast<int>(MI);
          E.DropCcrIndex = static_cast<int>(WI);
          Candidates.push_back(E);
        }
    for (size_t MI = 0; MI < M->Methods.size(); ++MI)
      for (size_t WI = 0; WI < M->Methods[MI].Body.size(); ++WI) {
        ShrinkEdit E;
        E.TrueGuardMethod = static_cast<int>(MI);
        E.TrueGuardIndex = static_cast<int>(WI);
        Candidates.push_back(E);
      }
    for (size_t MI = 0; MI < M->Methods.size(); ++MI)
      for (size_t WI = 0; WI < M->Methods[MI].Body.size(); ++WI) {
        const frontend::Stmt *Body = M->Methods[MI].Body[WI].Body;
        size_t N = 1;
        if (const auto *Seq = dyn_cast<frontend::SeqStmt>(Body))
          N = Seq->stmts().size();
        for (size_t SI = 0; SI < N; ++SI) {
          ShrinkEdit E;
          E.DropStmtMethod = static_cast<int>(MI);
          E.DropStmtCcr = static_cast<int>(WI);
          E.DropStmtIndex = static_cast<int>(SI);
          Candidates.push_back(E);
        }
      }
    for (size_t FI = 0; FI < M->Fields.size(); ++FI)
      if (!fieldReferenced(*M, FI)) {
        ShrinkEdit E;
        E.DropField = static_cast<int>(FI);
        Candidates.push_back(E);
      }
    for (size_t RI = 0; RI < M->Requires.size(); ++RI) {
      ShrinkEdit E;
      E.DropRequires = static_cast<int>(RI);
      Candidates.push_back(E);
    }

    for (const ShrinkEdit &E : Candidates) {
      if (Budget.elapsedSeconds() >= Opts.ShrinkSeconds)
        return Current;
      std::string Reduced = printMonitor(*M, E);
      if (Reduced == Current)
        continue;
      if (stillFails(Reduced, Opts, Scratch)) {
        Current = Reduced;
        Improved = true;
        break; // re-enumerate candidates against the smaller spec
      }
    }
  }
  return Current;
}

std::string extractSeedTag(const std::string &ConfigStr) {
  size_t Pos = ConfigStr.find("seed=");
  if (Pos == std::string::npos)
    return "spec";
  size_t End = Pos + 5;
  while (End < ConfigStr.size() && std::isdigit(ConfigStr[End]))
    ++End;
  return "seed" + ConfigStr.substr(Pos + 5, End - (Pos + 5));
}

} // namespace

//===----------------------------------------------------------------------===//
// Repro files
//===----------------------------------------------------------------------===//

std::string specgen::writeRepro(const std::string &Path,
                                const std::string &Source,
                                const std::string &ConfigStr,
                                const std::string &Detail) {
  std::ofstream Out(Path);
  if (!Out)
    return "";
  Out << "# expresso-diff reproducer\n";
  if (!ConfigStr.empty())
    Out << "# config: " << ConfigStr << "\n";
  if (!Detail.empty())
    Out << "# divergence: " << Detail << "\n";
  Out << "# replay: expresso-diff --replay=" << Path << "\n";
  Out << Source;
  if (!Source.empty() && Source.back() != '\n')
    Out << "\n";
  return Out.good() ? Path : "";
}

bool specgen::readRepro(const std::string &Path, std::string &Source,
                        std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  std::ostringstream OS;
  std::string Line;
  while (std::getline(In, Line)) {
    if (!Line.empty() && Line[0] == '#')
      continue;
    OS << Line << "\n";
  }
  Source = OS.str();
  return true;
}

//===----------------------------------------------------------------------===//
// The public entry point
//===----------------------------------------------------------------------===//

SpecVerdict specgen::checkSpec(const std::string &Source,
                               const std::string &ConfigStr,
                               const DiffOptions &Opts) {
  SpecVerdict Verdict;

  // Reject unparseable input up front: no cell would get past the
  // frontend, so there is no parity question to ask.
  {
    DiagnosticEngine Diags;
    auto M = frontend::parseMonitor(Source, Diags);
    logic::TermContext C;
    if (!M || !frontend::analyze(*M, C, Diags)) {
      Verdict.K = SpecVerdict::Kind::Invalid;
      Verdict.Detail = Diags.str();
      return Verdict;
    }
  }

  ScratchDir Scratch(Opts.ScratchDir);
  std::vector<CellOutcome> Outcomes;
  MatrixReport Report = runMatrix(Source, Opts, Scratch.path(), Outcomes);
  Verdict.Cells = Report.Cells;
  Verdict.Detail = Report.Detail;
  Verdict.K = Report.K;
  if (Report.K != SpecVerdict::Kind::Divergence)
    return Verdict;

  // A real divergence: persist it, then shrink it.
  std::error_code Ec;
  fs::create_directories(Opts.ReproDir, Ec);
  std::string Stem = Opts.ReproDir + "/diff-" + extractSeedTag(ConfigStr);
  Verdict.ReproPath =
      writeRepro(Stem + ".repro", Source, ConfigStr, Report.Detail);

  if (Opts.Shrink) {
    std::string Reduced = shrinkSpec(Source, Opts, Scratch.path());
    if (Reduced != Source)
      Verdict.MinReproPath = writeRepro(Stem + "-min.repro", Reduced,
                                        ConfigStr, Report.Detail);
  }
  return Verdict;
}
