//===- codegen/Codegen.h - Explicit-signal code generation ------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emitters for the synthesized explicit-signal monitor:
///
///   * printTargetIr — the paper's target language (§3.3): the original
///     monitor with `signal(S1); broadcast(S2)` sets spliced into each
///     waituntil, with ✓/? condition marks;
///   * emitCpp — a self-contained C++17 class using std::mutex and
///     condition variables (per predicate class), with the §6 waiter
///     registry for predicate classes that mention thread-local variables;
///   * emitJava — the paper's §6 Java scheme: ReentrantLock + Condition,
///     `while (!p) c.await()`, `if (p) c.signal()` for conditional signals
///     and `c.signalAll()` for broadcasts.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_CODEGEN_CODEGEN_H
#define EXPRESSO_CODEGEN_CODEGEN_H

#include "core/SignalPlacement.h"

#include <string>

namespace expresso {
namespace codegen {

/// Renders the §3.3 target-language IR for a placement result.
std::string printTargetIr(const core::PlacementResult &R);

/// Emits a compilable C++17 translation unit implementing the
/// explicit-signal monitor.
std::string emitCpp(const core::PlacementResult &R);

/// Emits a Java class implementing the explicit-signal monitor with
/// ReentrantLock/Condition, following the paper's §6 description.
std::string emitJava(const core::PlacementResult &R);

} // namespace codegen
} // namespace expresso

#endif // EXPRESSO_CODEGEN_CODEGEN_H
