//===- codegen/IrPrinter.cpp - Target-language IR printer -----------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "logic/Printer.h"

#include <sstream>

using namespace expresso;
using namespace expresso::codegen;
using namespace expresso::frontend;

std::string codegen::printTargetIr(const core::PlacementResult &R) {
  const SemaInfo &Sema = *R.Sema;
  std::ostringstream OS;
  OS << "monitor " << Sema.M->Name << "  // explicit-signal target IR\n";
  OS << "// invariant: " << logic::printTerm(R.Invariant) << "\n";
  for (const Method &M : Sema.M->Methods) {
    OS << "atomic " << M.Name << "(";
    bool First = true;
    for (const Param &P : M.Params) {
      if (!First)
        OS << ", ";
      First = false;
      OS << typeName(P.Type) << " " << P.Name;
    }
    OS << ") {\n";
    for (const WaitUntil &W : M.Body) {
      const core::CcrPlacement &CP = R.placementFor(&W);
      OS << "  waituntil (" << printExpr(W.Guard) << ") {\n";
      std::string Body = printStmt(W.Body, 2);
      OS << Body;
      // signal(S1) and broadcast(S2) sets with the paper's ✓/? marks.
      std::ostringstream Signals, Broadcasts;
      for (const core::SignalDecision &D : CP.Decisions) {
        std::ostringstream &Target = D.Broadcast ? Broadcasts : Signals;
        if (Target.tellp() > 0)
          Target << ", ";
        Target << "(" << logic::printTerm(D.Target->Canonical) << ", "
               << (D.Conditional ? "?" : "\xE2\x9C\x93") << ")";
      }
      if (Signals.tellp() > 0)
        OS << "    signal({" << Signals.str() << "});\n";
      if (Broadcasts.tellp() > 0)
        OS << "    broadcast({" << Broadcasts.str() << "});\n";
      OS << "  }\n";
    }
    OS << "}\n";
  }
  return OS.str();
}
