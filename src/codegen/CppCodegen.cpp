//===- codegen/CppCodegen.cpp - C++ explicit-signal emitter ---------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "logic/Printer.h"

#include <map>
#include <set>
#include <sstream>

using namespace expresso;
using namespace expresso::codegen;
using namespace expresso::frontend;
using logic::Term;
using logic::TermKind;

namespace {

/// Emits a logic term as a C++ expression. \p Rename maps variable names
/// (e.g. the positional placeholders `$p0`) to replacement spellings.
void emitTerm(std::ostringstream &OS, const Term *T,
              const std::map<std::string, std::string> &Rename) {
  switch (T->kind()) {
  case TermKind::IntConst:
    OS << T->intValue() << "L";
    return;
  case TermKind::BoolConst:
    OS << (T->boolValue() ? "true" : "false");
    return;
  case TermKind::Var: {
    auto It = Rename.find(T->varName());
    OS << (It != Rename.end() ? It->second : T->varName());
    return;
  }
  case TermKind::Add: {
    OS << "(";
    bool First = true;
    for (const Term *Op : T->operands()) {
      if (!First)
        OS << " + ";
      First = false;
      emitTerm(OS, Op, Rename);
    }
    OS << ")";
    return;
  }
  case TermKind::Mul:
    OS << "(";
    emitTerm(OS, T->operand(0), Rename);
    OS << " * ";
    emitTerm(OS, T->operand(1), Rename);
    OS << ")";
    return;
  case TermKind::Ite:
    OS << "(";
    emitTerm(OS, T->operand(0), Rename);
    OS << " ? ";
    emitTerm(OS, T->operand(1), Rename);
    OS << " : ";
    emitTerm(OS, T->operand(2), Rename);
    OS << ")";
    return;
  case TermKind::Select:
    emitTerm(OS, T->operand(0), Rename);
    OS << "[";
    emitTerm(OS, T->operand(1), Rename);
    OS << "]";
    return;
  case TermKind::Eq:
    OS << "(";
    emitTerm(OS, T->operand(0), Rename);
    OS << " == ";
    emitTerm(OS, T->operand(1), Rename);
    OS << ")";
    return;
  case TermKind::Le:
    OS << "(";
    emitTerm(OS, T->operand(0), Rename);
    OS << " <= ";
    emitTerm(OS, T->operand(1), Rename);
    OS << ")";
    return;
  case TermKind::Lt:
    OS << "(";
    emitTerm(OS, T->operand(0), Rename);
    OS << " < ";
    emitTerm(OS, T->operand(1), Rename);
    OS << ")";
    return;
  case TermKind::Divides:
    OS << "(mod_(";
    emitTerm(OS, T->operand(0), Rename);
    OS << ", " << T->intValue() << "L) == 0)";
    return;
  case TermKind::Not:
    OS << "!";
    emitTerm(OS, T->operand(0), Rename);
    return;
  case TermKind::And:
  case TermKind::Or: {
    OS << "(";
    bool First = true;
    for (const Term *Op : T->operands()) {
      if (!First)
        OS << (T->kind() == TermKind::And ? " && " : " || ");
      First = false;
      emitTerm(OS, Op, Rename);
    }
    OS << ")";
    return;
  }
  case TermKind::Store:
    OS << "/* unexpected store */";
    return;
  }
}

std::string termCpp(const Term *T,
                    const std::map<std::string, std::string> &Rename = {}) {
  std::ostringstream OS;
  emitTerm(OS, T, Rename);
  return OS.str();
}

const char *cppType(TypeKind T) {
  switch (T) {
  case TypeKind::Int:
    return "long";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::IntArray:
    return "std::map<long, long>";
  case TypeKind::BoolArray:
    return "std::map<long, bool>";
  }
  return "long";
}

/// C++ statement emission (the DSL syntax is already C++-compatible except
/// for local declarations, which get C++ types).
void emitStmt(std::ostringstream &OS, const Stmt *S, unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    OS << Pad << ";\n";
    return;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    OS << Pad << A->target() << " = " << printExpr(A->value()) << ";\n";
    return;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    OS << Pad << St->array() << "[" << printExpr(St->index())
       << "] = " << printExpr(St->value()) << ";\n";
    return;
  }
  case Stmt::Kind::Seq:
    for (const Stmt *Sub : cast<SeqStmt>(S)->stmts())
      emitStmt(OS, Sub, Indent);
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    OS << Pad << "if (" << printExpr(I->cond()) << ") {\n";
    emitStmt(OS, I->thenStmt(), Indent + 1);
    if (I->elseStmt() && !isa<SkipStmt>(I->elseStmt())) {
      OS << Pad << "} else {\n";
      emitStmt(OS, I->elseStmt(), Indent + 1);
    }
    OS << Pad << "}\n";
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    OS << Pad << "while (" << printExpr(W->cond()) << ") {\n";
    emitStmt(OS, W->body(), Indent + 1);
    OS << Pad << "}\n";
    return;
  }
  case Stmt::Kind::LocalDecl: {
    const auto *L = cast<LocalDeclStmt>(S);
    OS << Pad << cppType(L->type()) << " " << L->name() << " = "
       << printExpr(L->init()) << ";\n";
    return;
  }
  }
}

/// Per-class naming helpers.
std::string cvName(const PredicateClass *Q) {
  return "cv_c" + std::to_string(Q->Index) + "_";
}
std::string waiterStructName(const PredicateClass *Q) {
  return "WaiterC" + std::to_string(Q->Index);
}
std::string waiterListName(const PredicateClass *Q) {
  return "waiters_c" + std::to_string(Q->Index) + "_";
}

/// Rename map sending placeholders to a waiter record's fields.
std::map<std::string, std::string> waiterRename(const PredicateClass *Q,
                                                const std::string &Obj) {
  std::map<std::string, std::string> Rename;
  for (size_t I = 0; I < Q->Placeholders.size(); ++I)
    Rename[Q->Placeholders[I]->varName()] = Obj + "->p" + std::to_string(I);
  return Rename;
}

class CppEmitter {
public:
  CppEmitter(const core::PlacementResult &R) : R(R), Sema(*R.Sema) {}

  std::string run() {
    collectUsedClasses();
    OS << "// " << Sema.M->Name
       << ": explicit-signal monitor synthesized by expresso-cpp\n";
    OS << "// (reproduction of PLDI'18 \"Symbolic Reasoning for Automatic "
          "Signal Placement\")\n";
    OS << "// monitor invariant: " << logic::printTerm(R.Invariant) << "\n";
    OS << "#include <condition_variable>\n";
    OS << "#include <deque>\n";
    OS << "#include <map>\n";
    OS << "#include <mutex>\n\n";
    OS << "class " << Sema.M->Name << " {\n";
    emitState();
    emitWaiterInfrastructure();
    OS << "public:\n";
    emitConstructor();
    for (const Method &M : Sema.M->Methods)
      emitMethod(M);
    OS << "};\n";
    return OS.str();
  }

private:
  void collectUsedClasses() {
    for (const CcrInfo &CI : Sema.Ccrs)
      if (!CI.Guard->isTrue())
        Used.insert(CI.Class);
    if (R.Options.LazyBroadcast)
      for (const core::CcrPlacement &P : R.Placements)
        for (const core::SignalDecision &D : P.Decisions)
          if (D.Broadcast)
            Chained.insert(D.Target);
  }

  void emitState() {
    OS << "private:\n";
    OS << "  // shared monitor state\n";
    for (const Field &F : Sema.M->Fields) {
      OS << "  " << (F.IsConst ? "const " : "") << cppType(F.Type) << " "
         << F.Name;
      if (F.Init) {
        OS << " = " << printExpr(F.Init);
      } else if (!F.IsConst && F.Type == TypeKind::Int) {
        OS << " = 0";
      } else if (!F.IsConst && F.Type == TypeKind::Bool) {
        OS << " = false";
      }
      OS << ";\n";
    }
    OS << "\n  std::mutex m_;\n";
    OS << "  static long mod_(long a, long b) { long r = a % b; return r < 0 "
          "? r + b : r; }\n";
  }

  void emitWaiterInfrastructure() {
    for (const PredicateClass *Q : Used) {
      OS << "\n  // predicate class c" << Q->Index << ": "
         << logic::printTerm(Q->Canonical) << "\n";
      if (Q->isGround()) {
        OS << "  std::condition_variable " << cvName(Q) << ";\n";
        continue;
      }
      // §6: track blocked threads' local values for conditional signaling.
      OS << "  struct " << waiterStructName(Q) << " {\n";
      OS << "    std::condition_variable cv;\n";
      OS << "    bool notified = false;\n";
      for (size_t I = 0; I < Q->Placeholders.size(); ++I)
        OS << "    "
           << (Q->Placeholders[I]->sort() == logic::Sort::Bool ? "bool"
                                                               : "long")
           << " p" << I << ";\n";
      OS << "  };\n";
      OS << "  std::deque<" << waiterStructName(Q) << " *> "
         << waiterListName(Q) << ";\n";
      // Targeted wake: first waiter (optionally first whose predicate
      // holds).
      OS << "  void wake_c" << Q->Index << "_(bool checkPredicate, bool all) "
         << "{\n";
      OS << "    for (auto it = " << waiterListName(Q) << ".begin(); it != "
         << waiterListName(Q) << ".end();) {\n";
      OS << "      auto *w = *it;\n";
      OS << "      if (checkPredicate && !"
         << termCpp(Q->Canonical, waiterRename(Q, "w")) << ") { ++it; "
         << "continue; }\n";
      OS << "      w->notified = true;\n";
      OS << "      w->cv.notify_one();\n";
      OS << "      it = " << waiterListName(Q) << ".erase(it);\n";
      OS << "      if (!all) return;\n";
      OS << "    }\n";
      OS << "  }\n";
    }
  }

  void emitConstructor() {
    // const fields without initializers become constructor parameters.
    std::vector<const Field *> Params;
    for (const Field &F : Sema.M->Fields)
      if (F.IsConst && !F.Init)
        Params.push_back(&F);
    OS << "  explicit " << Sema.M->Name << "(";
    bool First = true;
    for (const Field *F : Params) {
      if (!First)
        OS << ", ";
      First = false;
      OS << cppType(F->Type) << " " << F->Name << "_arg";
    }
    OS << ")";
    First = true;
    for (const Field *F : Params) {
      OS << (First ? " : " : ", ") << F->Name << "(" << F->Name << "_arg)";
      First = false;
    }
    OS << " {\n";
    if (Sema.M->InitBody)
      emitStmt(OS, Sema.M->InitBody, 2);
    OS << "  }\n";
  }

  void emitMethod(const Method &M) {
    OS << "\n  void " << M.Name << "(";
    bool First = true;
    for (const Param &P : M.Params) {
      if (!First)
        OS << ", ";
      First = false;
      OS << cppType(P.Type) << " " << P.Name;
    }
    OS << ") {\n";
    OS << "    std::unique_lock<std::mutex> lock_(m_);\n";
    for (const WaitUntil &W : M.Body) {
      const CcrInfo &CI = Sema.info(&W);
      const core::CcrPlacement &CP = R.placementFor(&W);
      // Wait loop.
      if (!CI.Guard->isTrue()) {
        const PredicateClass *Q = CI.Class;
        if (Q->isGround()) {
          OS << "    while (!(" << printExpr(W.Guard) << ")) " << cvName(Q)
             << ".wait(lock_);\n";
        } else {
          OS << "    while (!(" << printExpr(W.Guard) << ")) {\n";
          OS << "      " << waiterStructName(Q) << " w_;\n";
          for (size_t I = 0; I < Q->Placeholders.size(); ++I) {
            const std::string &Qual = CI.ClassArgs[I]->varName();
            OS << "      w_.p" << I << " = "
               << Qual.substr(Qual.find("::") + 2) << ";\n";
          }
          OS << "      " << waiterListName(Q) << ".push_back(&w_);\n";
          OS << "      w_.cv.wait(lock_, [&] { return w_.notified; });\n";
          OS << "    }\n";
        }
      }
      // Body.
      emitStmt(OS, W.Body, 2);
      // Lazy-broadcast chain for this CCR's own class (§6).
      if (R.Options.LazyBroadcast && Chained.count(CI.Class))
        emitWake(CI.Class, /*Conditional=*/true, /*All=*/false,
                 "    // lazy broadcast chain\n");
      // Signals.
      for (const core::SignalDecision &D : CP.Decisions) {
        bool All = D.Broadcast && !R.Options.LazyBroadcast;
        bool Cond = D.Broadcast && R.Options.LazyBroadcast
                        ? true // lazy broadcast wakes one, predicate-checked
                        : D.Conditional;
        emitWake(D.Target, Cond, All, "");
      }
    }
    OS << "  }\n";
  }

  void emitWake(const PredicateClass *Q, bool Conditional, bool All,
                const std::string &Comment) {
    OS << Comment;
    if (Q->isGround()) {
      std::string Notify =
          cvName(Q) + (All ? ".notify_all();" : ".notify_one();");
      if (Conditional) {
        OS << "    if (" << termCpp(Q->Canonical) << ") " << Notify << "\n";
      } else {
        OS << "    " << Notify << "\n";
      }
      return;
    }
    OS << "    wake_c" << Q->Index << "_(" << (Conditional ? "true" : "false")
       << ", " << (All ? "true" : "false") << ");\n";
  }

  const core::PlacementResult &R;
  const SemaInfo &Sema;
  std::ostringstream OS;
  std::set<const PredicateClass *> Used;
  std::set<const PredicateClass *> Chained;
};

} // namespace

std::string codegen::emitCpp(const core::PlacementResult &R) {
  return CppEmitter(R).run();
}
