//===- codegen/JavaCodegen.cpp - Java explicit-signal emitter (§6) ------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the paper's §6 Java scheme: one ReentrantLock per monitor, one
/// Condition per ground predicate class, `while (!p) c.await()` wait loops,
/// `if (p) c.signal()` for conditional signals, `c.signalAll()` for eager
/// broadcasts. Predicate classes with thread-local variables get the §6
/// waiter-tracking structure (an ArrayDeque of per-thread Conditions plus
/// local snapshots).
///
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "logic/Printer.h"

#include <set>
#include <sstream>

using namespace expresso;
using namespace expresso::codegen;
using namespace expresso::frontend;
using logic::Term;
using logic::TermKind;

namespace {

const char *javaType(TypeKind T) {
  switch (T) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Bool:
    return "boolean";
  case TypeKind::IntArray:
    return "java.util.HashMap<Integer, Integer>";
  case TypeKind::BoolArray:
    return "java.util.HashMap<Integer, Boolean>";
  }
  return "int";
}

void emitTermJava(std::ostringstream &OS, const Term *T,
                  const std::map<std::string, std::string> &Rename) {
  switch (T->kind()) {
  case TermKind::IntConst:
    OS << T->intValue();
    return;
  case TermKind::BoolConst:
    OS << (T->boolValue() ? "true" : "false");
    return;
  case TermKind::Var: {
    auto It = Rename.find(T->varName());
    OS << (It != Rename.end() ? It->second : T->varName());
    return;
  }
  case TermKind::Add: {
    OS << "(";
    bool First = true;
    for (const Term *Op : T->operands()) {
      if (!First)
        OS << " + ";
      First = false;
      emitTermJava(OS, Op, Rename);
    }
    OS << ")";
    return;
  }
  case TermKind::Mul:
    OS << "(";
    emitTermJava(OS, T->operand(0), Rename);
    OS << " * ";
    emitTermJava(OS, T->operand(1), Rename);
    OS << ")";
    return;
  case TermKind::Ite:
    OS << "(";
    emitTermJava(OS, T->operand(0), Rename);
    OS << " ? ";
    emitTermJava(OS, T->operand(1), Rename);
    OS << " : ";
    emitTermJava(OS, T->operand(2), Rename);
    OS << ")";
    return;
  case TermKind::Select:
    emitTermJava(OS, T->operand(0), Rename);
    OS << ".getOrDefault(";
    emitTermJava(OS, T->operand(1), Rename);
    OS << ", " << (T->sort() == logic::Sort::Bool ? "false" : "0") << ")";
    return;
  case TermKind::Eq:
    OS << "(";
    emitTermJava(OS, T->operand(0), Rename);
    OS << " == ";
    emitTermJava(OS, T->operand(1), Rename);
    OS << ")";
    return;
  case TermKind::Le:
    OS << "(";
    emitTermJava(OS, T->operand(0), Rename);
    OS << " <= ";
    emitTermJava(OS, T->operand(1), Rename);
    OS << ")";
    return;
  case TermKind::Lt:
    OS << "(";
    emitTermJava(OS, T->operand(0), Rename);
    OS << " < ";
    emitTermJava(OS, T->operand(1), Rename);
    OS << ")";
    return;
  case TermKind::Divides:
    OS << "(Math.floorMod(";
    emitTermJava(OS, T->operand(0), Rename);
    OS << ", " << T->intValue() << ") == 0)";
    return;
  case TermKind::Not:
    OS << "!";
    emitTermJava(OS, T->operand(0), Rename);
    return;
  case TermKind::And:
  case TermKind::Or: {
    OS << "(";
    bool First = true;
    for (const Term *Op : T->operands()) {
      if (!First)
        OS << (T->kind() == TermKind::And ? " && " : " || ");
      First = false;
      emitTermJava(OS, Op, Rename);
    }
    OS << ")";
    return;
  }
  case TermKind::Store:
    OS << "/* unexpected store */";
    return;
  }
}

std::string termJava(const Term *T,
                     const std::map<std::string, std::string> &Rename = {}) {
  std::ostringstream OS;
  emitTermJava(OS, T, Rename);
  return OS.str();
}

/// Java statement emission. Array accesses go through HashMap get/put.
void emitStmtJava(std::ostringstream &OS, const Stmt *S, unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    OS << Pad << ";\n";
    return;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    OS << Pad << A->target() << " = " << printExpr(A->value()) << ";\n";
    return;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    OS << Pad << St->array() << ".put(" << printExpr(St->index()) << ", "
       << printExpr(St->value()) << ");\n";
    return;
  }
  case Stmt::Kind::Seq:
    for (const Stmt *Sub : cast<SeqStmt>(S)->stmts())
      emitStmtJava(OS, Sub, Indent);
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    OS << Pad << "if (" << printExpr(I->cond()) << ") {\n";
    emitStmtJava(OS, I->thenStmt(), Indent + 1);
    if (I->elseStmt() && !isa<SkipStmt>(I->elseStmt())) {
      OS << Pad << "} else {\n";
      emitStmtJava(OS, I->elseStmt(), Indent + 1);
    }
    OS << Pad << "}\n";
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    OS << Pad << "while (" << printExpr(W->cond()) << ") {\n";
    emitStmtJava(OS, W->body(), Indent + 1);
    OS << Pad << "}\n";
    return;
  }
  case Stmt::Kind::LocalDecl: {
    const auto *L = cast<LocalDeclStmt>(S);
    OS << Pad << javaType(L->type()) << " " << L->name() << " = "
       << printExpr(L->init()) << ";\n";
    return;
  }
  }
}

} // namespace

std::string codegen::emitJava(const core::PlacementResult &R) {
  const SemaInfo &Sema = *R.Sema;
  std::ostringstream OS;

  std::set<const PredicateClass *> Used, Chained;
  for (const CcrInfo &CI : Sema.Ccrs)
    if (!CI.Guard->isTrue())
      Used.insert(CI.Class);
  if (R.Options.LazyBroadcast)
    for (const core::CcrPlacement &P : R.Placements)
      for (const core::SignalDecision &D : P.Decisions)
        if (D.Broadcast)
          Chained.insert(D.Target);

  auto condName = [](const PredicateClass *Q) {
    return "cond_c" + std::to_string(Q->Index);
  };
  auto waitersName = [](const PredicateClass *Q) {
    return "waiters_c" + std::to_string(Q->Index);
  };

  OS << "// " << Sema.M->Name
     << ": explicit-signal monitor synthesized by expresso-cpp (Java "
        "backend, paper §6)\n";
  OS << "// monitor invariant: " << logic::printTerm(R.Invariant) << "\n";
  OS << "import java.util.concurrent.locks.Condition;\n";
  OS << "import java.util.concurrent.locks.ReentrantLock;\n\n";
  OS << "public class " << Sema.M->Name << " {\n";

  // State.
  for (const Field &F : Sema.M->Fields) {
    OS << "  private " << (F.IsConst ? "final " : "") << javaType(F.Type)
       << " " << F.Name;
    if (F.Init) {
      OS << " = " << printExpr(F.Init);
    } else if (F.Type == TypeKind::IntArray || F.Type == TypeKind::BoolArray) {
      OS << " = new java.util.HashMap<>()";
    } else if (!F.IsConst) {
      OS << (F.Type == TypeKind::Bool ? " = false" : " = 0");
    }
    OS << ";\n";
  }
  OS << "\n  private final ReentrantLock lock = new ReentrantLock();\n";
  for (const PredicateClass *Q : Used) {
    OS << "  // class c" << Q->Index << ": "
       << logic::printTerm(Q->Canonical) << "\n";
    if (Q->isGround()) {
      OS << "  private final Condition " << condName(Q)
         << " = lock.newCondition();\n";
      continue;
    }
    OS << "  private static final class WaiterC" << Q->Index << " {\n";
    OS << "    final Condition cv;\n    boolean notified = false;\n";
    for (size_t I = 0; I < Q->Placeholders.size(); ++I)
      OS << "    "
         << (Q->Placeholders[I]->sort() == logic::Sort::Bool ? "boolean"
                                                             : "int")
         << " p" << I << ";\n";
    OS << "    WaiterC" << Q->Index
       << "(Condition cv) { this.cv = cv; }\n  }\n";
    OS << "  private final java.util.ArrayDeque<WaiterC" << Q->Index << "> "
       << waitersName(Q) << " = new java.util.ArrayDeque<>();\n";
  }

  // Constructor for const configuration fields.
  std::vector<const Field *> CtorParams;
  for (const Field &F : Sema.M->Fields)
    if (F.IsConst && !F.Init)
      CtorParams.push_back(&F);
  OS << "\n  public " << Sema.M->Name << "(";
  for (size_t I = 0; I < CtorParams.size(); ++I)
    OS << (I ? ", " : "") << javaType(CtorParams[I]->Type) << " "
       << CtorParams[I]->Name << "Arg";
  OS << ") {\n";
  for (const Field *F : CtorParams)
    OS << "    this." << F->Name << " = " << F->Name << "Arg;\n";
  if (Sema.M->InitBody)
    emitStmtJava(OS, Sema.M->InitBody, 2);
  OS << "  }\n";

  // A wake helper per local-variable class.
  for (const PredicateClass *Q : Used) {
    if (Q->isGround())
      continue;
    std::map<std::string, std::string> Rename;
    for (size_t I = 0; I < Q->Placeholders.size(); ++I)
      Rename[Q->Placeholders[I]->varName()] = "w.p" + std::to_string(I);
    OS << "\n  private void wakeC" << Q->Index
       << "(boolean checkPredicate, boolean all) {\n";
    OS << "    java.util.Iterator<WaiterC" << Q->Index << "> it = "
       << waitersName(Q) << ".iterator();\n";
    OS << "    while (it.hasNext()) {\n";
    OS << "      WaiterC" << Q->Index << " w = it.next();\n";
    OS << "      if (checkPredicate && !" << termJava(Q->Canonical, Rename)
       << ") continue;\n";
    OS << "      w.notified = true;\n      w.cv.signal();\n"
       << "      it.remove();\n";
    OS << "      if (!all) return;\n";
    OS << "    }\n  }\n";
  }

  // Methods.
  for (const Method &M : Sema.M->Methods) {
    OS << "\n  public void " << M.Name << "(";
    for (size_t I = 0; I < M.Params.size(); ++I)
      OS << (I ? ", " : "") << javaType(M.Params[I].Type) << " "
         << M.Params[I].Name;
    OS << ") {\n    lock.lock();\n    try {\n";
    for (const WaitUntil &W : M.Body) {
      const CcrInfo &CI = Sema.info(&W);
      const core::CcrPlacement &CP = R.placementFor(&W);
      if (!CI.Guard->isTrue()) {
        const PredicateClass *Q = CI.Class;
        if (Q->isGround()) {
          OS << "      while (!(" << printExpr(W.Guard) << ")) "
             << condName(Q) << ".awaitUninterruptibly();\n";
        } else {
          OS << "      while (!(" << printExpr(W.Guard) << ")) {\n";
          OS << "        WaiterC" << Q->Index << " w = new WaiterC"
             << Q->Index << "(lock.newCondition());\n";
          for (size_t I = 0; I < Q->Placeholders.size(); ++I) {
            const std::string &Qual = CI.ClassArgs[I]->varName();
            OS << "        w.p" << I << " = "
               << Qual.substr(Qual.find("::") + 2) << ";\n";
          }
          OS << "        " << waitersName(Q) << ".addLast(w);\n";
          OS << "        while (!w.notified) w.cv.awaitUninterruptibly();\n";
          OS << "      }\n";
        }
      }
      emitStmtJava(OS, W.Body, 3);
      if (R.Options.LazyBroadcast && Chained.count(CI.Class)) {
        OS << "      // lazy broadcast chain\n";
        if (CI.Class->isGround()) {
          OS << "      if (" << termJava(CI.Class->Canonical) << ") "
             << condName(CI.Class) << ".signal();\n";
        } else {
          OS << "      wakeC" << CI.Class->Index << "(true, false);\n";
        }
      }
      for (const core::SignalDecision &D : CP.Decisions) {
        bool Lazy = D.Broadcast && R.Options.LazyBroadcast;
        bool Cond = Lazy ? true : D.Conditional;
        if (D.Target->isGround()) {
          std::string Call =
              condName(D.Target) +
              (D.Broadcast && !Lazy ? ".signalAll();" : ".signal();");
          if (Cond) {
            OS << "      if (" << termJava(D.Target->Canonical) << ") "
               << Call << "\n";
          } else {
            OS << "      " << Call << "\n";
          }
        } else {
          OS << "      wakeC" << D.Target->Index << "("
             << (Cond ? "true" : "false") << ", "
             << (D.Broadcast && !Lazy ? "true" : "false") << ");\n";
        }
      }
    }
    OS << "    } finally {\n      lock.unlock();\n    }\n  }\n";
  }
  OS << "}\n";
  return OS.str();
}
