//===- persist/TermCodec.h - Canonical binary term serialization *- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical binary serialization for `logic::Term` DAGs, the foundation of
/// the cross-process solver cache (persist::QueryStore). The encoding is a
/// *pure function of term structure*: node kinds, sorts, payloads, variable
/// names, and operand order — never pointer values, creation ids, or intern
/// order. Two structurally equal terms, built in different TermContexts or
/// different processes, serialize to identical bytes, so the byte string
/// doubles as a context-free cache key (encodeTermKey).
///
/// Format of one term blob (all integers LEB128 varints; signed values
/// zigzag-encoded):
///
///   varint nodeCount                       (>= 1)
///   node*  := u8 kind, u8 sort, svarint intVal,
///             varint nameLen, nameLen bytes,
///             varint numOps, numOps * varint opIndex
///
/// Nodes appear in DFS post-order from the root (operands before users,
/// each distinct node once), operand references are indices into the node
/// sequence (strictly smaller than the referencing node's own index, making
/// cycles unrepresentable), and the root is the last node. DFS order is
/// determined by the term's own operand order, which the smart constructors
/// already canonicalize (commutative operands sorted, sums flattened), so
/// the whole blob is deterministic. In particular the sharding of the
/// interner is invisible here: nothing in the encoding depends on which
/// shard, table generation, or arena chunk a node lives in, and
/// PersistTest's pre-refactor golden blobs pin this down — blobs written
/// by the single-mutex interner must keep decoding and re-encoding
/// byte-identically forever.
///
/// TermReader re-interns through a TermContext (TermContext::internRaw) so
/// loaded terms are first-class hash-consed terms: decoding a blob into the
/// context that produced it returns the original pointers, and decoding
/// into a fresh context yields terms with identical structural hashes.
/// Every read validates shape invariants (operand arity, sorts, variable
/// sort consistency) and fails closed — a malformed blob yields null, never
/// a malformed term.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_PERSIST_TERMCODEC_H
#define EXPRESSO_PERSIST_TERMCODEC_H

#include "logic/Term.h"

#include <cstdint>
#include <string>
#include <vector>

namespace expresso {
namespace persist {

/// Version of the canonical term encoding (and of the QueryStore record
/// format built on top of it). Bump on any byte-level change; the store
/// treats a version mismatch as an empty cache.
constexpr uint32_t CodecVersion = 1;

//===----------------------------------------------------------------------===//
// Byte-level primitives
//===----------------------------------------------------------------------===//

/// Append-only byte sink with LEB128 varint helpers.
class ByteWriter {
public:
  explicit ByteWriter(std::vector<uint8_t> &Out) : Out(Out) {}

  void writeByte(uint8_t B) { Out.push_back(B); }
  void writeBytes(const void *Data, size_t Len) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    Out.insert(Out.end(), P, P + Len);
  }
  void writeVarint(uint64_t V) {
    while (V >= 0x80) {
      Out.push_back(static_cast<uint8_t>(V) | 0x80);
      V >>= 7;
    }
    Out.push_back(static_cast<uint8_t>(V));
  }
  /// Zigzag-encoded signed varint.
  void writeSigned(int64_t V) {
    writeVarint((static_cast<uint64_t>(V) << 1) ^
                static_cast<uint64_t>(V >> 63));
  }
  void writeString(const std::string &S) {
    writeVarint(S.size());
    writeBytes(S.data(), S.size());
  }
  /// Fixed-width little-endian u32 (record framing, not varint, so a
  /// truncated length field is detectable by size alone).
  void writeU32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void writeU64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

private:
  std::vector<uint8_t> &Out;
};

/// Bounds-checked cursor over a byte buffer. All read* methods fail closed:
/// after the first malformed/truncated read, failed() is sticky and every
/// subsequent read returns a zero value.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  bool failed() const { return Failed; }
  bool atEnd() const { return Pos >= Size; }
  size_t position() const { return Pos; }

  uint8_t readByte() {
    if (Failed || Pos >= Size)
      return fail();
    return Data[Pos++];
  }
  uint64_t readVarint() {
    uint64_t V = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (Failed || Pos >= Size)
        return fail();
      uint8_t B = Data[Pos++];
      V |= static_cast<uint64_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return V;
    }
    return fail(); // overlong encoding
  }
  int64_t readSigned() {
    uint64_t Z = readVarint();
    return static_cast<int64_t>((Z >> 1) ^ (~(Z & 1) + 1));
  }
  bool readString(std::string &Out, size_t MaxLen = 1 << 20) {
    uint64_t Len = readVarint();
    if (Failed || Len > MaxLen || Pos + Len > Size) {
      fail();
      return false;
    }
    Out.assign(reinterpret_cast<const char *>(Data + Pos),
               static_cast<size_t>(Len));
    Pos += static_cast<size_t>(Len);
    return true;
  }
  uint32_t readU32() {
    if (Failed || Pos + 4 > Size)
      return static_cast<uint32_t>(fail());
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  uint64_t readU64() {
    if (Failed || Pos + 8 > Size)
      return fail();
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  /// Skips \p Len bytes; fails when they are not there. (Len is checked
  /// against the remainder, not added to Pos, so huge values cannot wrap.)
  void skip(size_t Len) {
    if (Failed || Len > Size - Pos)
      fail();
    else
      Pos += Len;
  }

  /// Marks the stream failed; all subsequent reads return zero. Used by
  /// higher-level decoders to reject structurally invalid input.
  void poison() { Failed = true; }

private:
  uint64_t fail() {
    Failed = true;
    return 0;
  }
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

/// FNV-1a 64-bit over a byte range; the content checksum of store records.
uint64_t fnv1a(const uint8_t *Data, size_t Len,
               uint64_t Seed = 0xcbf29ce484222325ULL);

//===----------------------------------------------------------------------===//
// Term serialization
//===----------------------------------------------------------------------===//

/// Serializes terms as self-contained canonical blobs (see file comment).
class TermWriter {
public:
  explicit TermWriter(ByteWriter &B) : B(B) {}

  /// Appends the canonical blob for \p T.
  void write(const logic::Term *T);

private:
  ByteWriter &B;
};

/// Deserializes canonical blobs, re-interning every node through
/// \p C (TermContext::internRaw) with full shape validation.
class TermReader {
public:
  TermReader(logic::TermContext &C, ByteReader &B) : C(C), B(B) {}

  /// Reads one term blob. Returns null (and poisons the underlying
  /// ByteReader) when the input is truncated or structurally invalid.
  const logic::Term *read();

private:
  logic::TermContext &C;
  ByteReader &B;
};

/// The canonical blob of \p T as a string — the context-free cache key used
/// by persist::QueryStore. Structurally equal terms from any context (or
/// process) produce identical keys.
///
/// Key derivation for *session* queries (incremental solver sessions,
/// solver::SolverSession): a query discharged as (asserted prefix, delta)
/// is keyed by the canonical blob of its *equivalent one-shot formula*.
/// Placement only ever discharges deltas that semantically entail the
/// asserted prefix (a negated Hoare VC contains its own precondition), so
/// sat(prefix ∧ delta) == sat(delta) and the equivalent one-shot formula
/// IS the delta — the key is encodeTermKey(delta), byte-identical to what
/// a one-shot discharge of the same VC would use. This is the invariant
/// that lets one cache directory serve `--incremental on` and `off` runs
/// interchangeably, with identical hit/miss counts; never key a session
/// query by a prefix-dependent encoding.
std::string encodeTermKey(const logic::Term *T);

} // namespace persist
} // namespace expresso

#endif // EXPRESSO_PERSIST_TERMCODEC_H
