//===- persist/QueryStore.cpp - Disk-backed solver query store ----------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "persist/QueryStore.h"

#include "persist/TermCodec.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <vector>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace expresso;
using namespace expresso::persist;
using solver::Answer;
using solver::CheckResult;

namespace {

constexpr char LogMagic[8] = {'X', 'P', 'R', 'S', 'Q', 'R', 'Y', 'S'};
constexpr size_t FrameOverhead = 4 + 8; // u32 payload length + u64 checksum
constexpr size_t MaxPayload = 1u << 30;

/// On-disk format version of the record log. v2 added the per-record
/// last-used timestamp that LRU/TTL eviction keys on; older logs simply
/// read as a version mismatch and start cold (never a wrong answer).
constexpr uint32_t StoreVersion = 2;

int64_t wallClockSeconds() { return static_cast<int64_t>(::time(nullptr)); }

std::string buildHeader(const std::string &Profile) {
  std::vector<uint8_t> Buf;
  ByteWriter B(Buf);
  B.writeBytes(LogMagic, sizeof(LogMagic));
  B.writeU32(StoreVersion);
  B.writeString(Profile);
  return std::string(reinterpret_cast<const char *>(Buf.data()), Buf.size());
}

/// Parses and validates the log header. Returns the offset past it, or 0
/// with \p Reason set when the log belongs to another format/version/solver.
size_t parseHeader(const uint8_t *Data, size_t Size,
                   const std::string &WantProfile, std::string &Reason,
                   std::string *FoundProfile = nullptr) {
  ByteReader B(Data, Size);
  char Magic[sizeof(LogMagic)];
  for (char &Ch : Magic)
    Ch = static_cast<char>(B.readByte());
  if (B.failed() || std::memcmp(Magic, LogMagic, sizeof(LogMagic)) != 0) {
    Reason = "bad magic";
    return 0;
  }
  uint32_t Version = B.readU32();
  if (B.failed() || Version != StoreVersion) {
    Reason = "version mismatch (log v" + std::to_string(Version) +
             ", store v" + std::to_string(StoreVersion) + ")";
    return 0;
  }
  std::string Profile;
  if (!B.readString(Profile)) {
    Reason = "truncated header";
    return 0;
  }
  if (FoundProfile)
    *FoundProfile = Profile;
  // An empty WantProfile accepts any profile (fsck reports what it found);
  // every cache-serving open passes the answering backend's name.
  if (!WantProfile.empty() && Profile != WantProfile) {
    Reason = "profile mismatch (log '" + Profile + "', caller '" +
             WantProfile + "')";
    return 0;
  }
  return B.position();
}

void serializeValue(ByteWriter &P, const logic::Value &V) {
  P.writeByte(static_cast<uint8_t>(V.S));
  P.writeSigned(V.I);
  P.writeSigned(V.ArrayDefault);
  P.writeVarint(V.A.size());
  for (const auto &[Idx, Elem] : V.A) {
    P.writeSigned(Idx);
    P.writeSigned(Elem);
  }
}

bool parseValue(ByteReader &P, logic::Value &V) {
  uint8_t SortByte = P.readByte();
  if (P.failed() || SortByte > static_cast<uint8_t>(logic::Sort::BoolArray))
    return false;
  V.S = static_cast<logic::Sort>(SortByte);
  V.I = P.readSigned();
  V.ArrayDefault = P.readSigned();
  uint64_t N = P.readVarint();
  if (P.failed() || N > (1u << 20))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    int64_t Idx = P.readSigned();
    int64_t Elem = P.readSigned();
    if (P.failed())
      return false;
    V.A[Idx] = Elem;
  }
  return true;
}

/// Frames one (key, result, last-used) record: length, checksum, payload.
void serializeRecord(const std::string &Key, const CheckResult &R,
                     int64_t LastUsed, std::vector<uint8_t> &Out) {
  std::vector<uint8_t> Payload;
  ByteWriter P(Payload);
  P.writeString(Key);
  P.writeByte(static_cast<uint8_t>(R.TheAnswer));
  P.writeByte(R.ModelComplete ? 1 : 0);
  // v2: the recency stamp LRU/TTL eviction keys on. Appends stamp creation
  // time; compaction re-stamps each surviving record with its in-memory
  // last-used time, so recency survives across processes.
  P.writeSigned(LastUsed);
  P.writeVarint(R.Model.size());
  // Model is a std::map, so iteration (and therefore the record bytes) is
  // deterministic.
  for (const auto &[Name, V] : R.Model) {
    P.writeString(Name);
    serializeValue(P, V);
  }
  ByteWriter F(Out);
  F.writeU32(static_cast<uint32_t>(Payload.size()));
  F.writeU64(fnv1a(Payload.data(), Payload.size()));
  F.writeBytes(Payload.data(), Payload.size());
}

bool parsePayload(const uint8_t *Data, size_t Len, std::string &Key,
                  CheckResult &R, int64_t &LastUsed) {
  ByteReader P(Data, Len);
  if (!P.readString(Key, MaxPayload))
    return false;
  uint8_t AnswerByte = P.readByte();
  uint8_t Complete = P.readByte();
  if (P.failed() || AnswerByte > static_cast<uint8_t>(Answer::Unknown) ||
      Complete > 1)
    return false;
  R.TheAnswer = static_cast<Answer>(AnswerByte);
  R.ModelComplete = Complete != 0;
  LastUsed = P.readSigned();
  if (P.failed() || LastUsed < 0)
    return false;
  uint64_t NumVars = P.readVarint();
  if (P.failed() || NumVars > (1u << 20))
    return false;
  for (uint64_t I = 0; I < NumVars; ++I) {
    std::string Name;
    logic::Value V;
    if (!P.readString(Name) || !parseValue(P, V))
      return false;
    R.Model[Name] = V;
  }
  return !P.failed() && P.atEnd(); // trailing garbage = corrupt record
}

#ifndef _WIN32
bool writeAll(int Fd, const uint8_t *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

uint64_t inodeOf(int Fd) {
  struct stat St;
  return ::fstat(Fd, &St) == 0 ? static_cast<uint64_t>(St.st_ino) : 0;
}

uint64_t inodeOfPath(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 ? static_cast<uint64_t>(St.st_ino)
                                        : 0;
}
#endif

} // namespace

//===----------------------------------------------------------------------===//
// Open / load
//===----------------------------------------------------------------------===//

std::shared_ptr<QueryStore> QueryStore::open(const std::string &Dir,
                                             const Options &Opts,
                                             std::string *Error) {
#ifdef _WIN32
  if (Error)
    *Error = "persistent query store is not supported on this platform";
  return nullptr;
#else
  if (Dir.empty()) {
    if (Error)
      *Error = "empty cache directory (use createInMemory for a file-less "
               "store)";
    return nullptr;
  }
  std::shared_ptr<QueryStore> Store(new QueryStore(Dir, Opts));
  std::string Err;
  if (!Store->initialize(&Err)) {
    if (Error)
      *Error = Err;
    return nullptr;
  }
  return Store;
#endif
}

std::shared_ptr<QueryStore>
QueryStore::createInMemory(const std::string &Profile) {
  Options Opts;
  Opts.Profile = Profile;
  // Empty Dir is the in-memory marker: Fd stays -1, so append() stops after
  // populating the index and every file-touching path no-ops.
  std::shared_ptr<QueryStore> Store(new QueryStore("", Opts));
  Store->HeaderBytes = buildHeader(Profile); // keeps size accounting uniform
  return Store;
}

std::shared_ptr<QueryStore>
QueryStore::openReportingWarnings(const std::string &Dir, bool ReadOnly,
                                  const std::string &Profile,
                                  bool CacheEnabled) {
  if (Dir.empty())
    return nullptr;
  if (!CacheEnabled) {
    std::fprintf(stderr, "warning: --cache-dir requires the query cache; "
                         "ignoring it because of --no-cache\n");
    return nullptr;
  }
  Options Opts;
  Opts.ReadOnly = ReadOnly;
  Opts.Profile = Profile;
  std::string Err;
  std::shared_ptr<QueryStore> Store = open(Dir, Opts, &Err);
  if (!Store)
    std::fprintf(stderr, "warning: cannot open cache directory: %s "
                         "(continuing without persistence)\n",
                 Err.c_str());
  else if (Store->stats().Degraded)
    std::fprintf(stderr, "warning: cache directory %s: %s (starting cold)\n",
                 Dir.c_str(), Store->stats().DegradedReason.c_str());
  return Store;
}

QueryStore::~QueryStore() {
#ifndef _WIN32
  if (Fd >= 0)
    ::close(Fd);
#endif
}

#ifndef _WIN32

bool QueryStore::initialize(std::string *Error) {
  HeaderBytes = buildHeader(Opts.Profile);

  std::error_code Ec;
  if (!Opts.ReadOnly) {
    std::filesystem::create_directories(Dir, Ec);
    if (Ec) {
      if (Error)
        *Error = "cannot create cache directory " + Dir + ": " + Ec.message();
      return false;
    }
  }

  int Flags = Opts.ReadOnly ? O_RDONLY : (O_RDWR | O_CREAT | O_APPEND);
  Fd = ::open(logPath().c_str(), Flags, 0644);
  if (Fd < 0) {
    if (Opts.ReadOnly && errno == ENOENT)
      return true; // nothing cached yet: a valid, empty, read-only store
    if (Error)
      *Error = "cannot open " + logPath() + ": " + std::strerror(errno);
    return false;
  }

  ::flock(Fd, Opts.ReadOnly ? LOCK_SH : LOCK_EX);
  std::vector<uint8_t> Data;
  bool ReadOk = readFileFrom(0, Data);
  if (!ReadOk) {
    ::flock(Fd, LOCK_UN);
    if (Error)
      *Error = "cannot read " + logPath();
    return false;
  }

  if (Data.empty()) {
    if (!Opts.ReadOnly) {
      writeAll(Fd, reinterpret_cast<const uint8_t *>(HeaderBytes.data()),
               HeaderBytes.size());
      LoadedEnd = HeaderBytes.size();
    }
    LogInode = inodeOf(Fd);
    ::flock(Fd, LOCK_UN);
    return true;
  }

  std::string Reason;
  size_t HeaderEnd = parseHeader(Data.data(), Data.size(), Opts.Profile,
                                 Reason);
  if (HeaderEnd == 0) {
    // Foreign, damaged, or differently-versioned log: an empty cache, never
    // an error. Writable opens rotate the old log aside (keeping it for
    // forensics) and start a fresh one; read-only opens just serve misses.
    TheStats.Degraded = true;
    TheStats.DegradedReason = Reason;
    if (Opts.ReadOnly) {
      ::flock(Fd, LOCK_UN);
      ::close(Fd);
      Fd = -1;
      return true;
    }
    std::filesystem::rename(logPath(), logPath() + ".bad", Ec);
    ::flock(Fd, LOCK_UN);
    ::close(Fd);
    if (Ec) { // rotation failed: run without persistence rather than clobber
      Fd = -1;
      return true;
    }
    Fd = ::open(logPath().c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
    if (Fd < 0)
      return true; // degraded to memory-only
    ::flock(Fd, LOCK_EX);
    writeAll(Fd, reinterpret_cast<const uint8_t *>(HeaderBytes.data()),
             HeaderBytes.size());
    LoadedEnd = HeaderBytes.size();
    LogInode = inodeOf(Fd);
    ::flock(Fd, LOCK_UN);
    return true;
  }

  LoadedEnd = loadRecords(Data.data(), Data.size(), HeaderEnd);
  if (LoadedEnd < Data.size()) {
    // Truncated or checksum-failing tail: everything before it is intact.
    TheStats.Degraded = true;
    TheStats.DegradedReason = "dropped damaged tail (" +
                              std::to_string(Data.size() - LoadedEnd) +
                              " bytes)";
    if (!Opts.ReadOnly)
      ::ftruncate(Fd, static_cast<off_t>(LoadedEnd));
  }
  LogInode = inodeOf(Fd);
  ::flock(Fd, LOCK_UN);
  return true;
}

size_t QueryStore::loadRecords(const uint8_t *Data, size_t Size,
                               size_t BaseOffset) {
  size_t Pos = BaseOffset;
  while (Pos + FrameOverhead <= Size) {
    ByteReader Frame(Data + Pos, FrameOverhead);
    uint32_t Len = Frame.readU32();
    uint64_t Sum = Frame.readU64();
    if (Len > MaxPayload || Pos + FrameOverhead + Len > Size)
      break; // truncated (possibly a record another process is mid-append)
    const uint8_t *Payload = Data + Pos + FrameOverhead;
    if (fnv1a(Payload, Len) != Sum)
      break; // corruption: stop trusting the log from here on
    std::string Key;
    CheckResult R;
    int64_t LastUsed = 0;
    if (!parsePayload(Payload, Len, Key, R, LastUsed))
      break;
    // First record's *answer* wins (matches append()), but a duplicate —
    // two processes can each append the same key once — may carry a
    // fresher recency stamp (e.g. written by a later compaction), which
    // LRU/TTL eviction must not lose.
    auto [It, Inserted] = Index.try_emplace(std::move(Key), R, LastUsed);
    if (!Inserted &&
        LastUsed > It->second.LastUsed.load(std::memory_order_relaxed))
      It->second.LastUsed.store(LastUsed, std::memory_order_relaxed);
    ++TheStats.RecordsLoaded;
    Pos += FrameOverhead + Len;
  }
  return Pos;
}

bool QueryStore::readFileFrom(size_t Offset, std::vector<uint8_t> &Out) const {
  Out.clear();
  if (Fd < 0)
    return false;
  struct stat St;
  if (::fstat(Fd, &St) != 0)
    return false;
  if (static_cast<size_t>(St.st_size) <= Offset)
    return true;
  size_t Len = static_cast<size_t>(St.st_size) - Offset;
  Out.resize(Len);
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::pread(Fd, Out.data() + Done, Len - Done,
                        static_cast<off_t>(Offset + Done));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0) { // file shrank under us; serve what we have
      Out.resize(Done);
      return true;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

bool QueryStore::lockLiveLog(bool Exclusive) {
  // flock is per-inode, so locking our fd is only meaningful if the path
  // still names that inode — another process's compaction atomically
  // renames a fresh file into place. Lock, check, and follow the rename
  // (closing the dead fd releases its lock) until lock and inode agree.
  for (int Tries = 0; Fd >= 0 && Tries < 8; ++Tries) {
    ::flock(Fd, Exclusive ? LOCK_EX : LOCK_SH);
    if (inodeOfPath(logPath()) == inodeOf(Fd)) {
      LogInode = inodeOf(Fd);
      return true;
    }
    ::flock(Fd, LOCK_UN);
    ::close(Fd);
    int Flags = Opts.ReadOnly ? O_RDONLY : (O_RDWR | O_CREAT | O_APPEND);
    Fd = ::open(logPath().c_str(), Flags, 0644);
    LoadedEnd = 0; // stale index bookkeeping: re-parse on the next refresh
  }
  if (Fd >= 0) // livelock guard tripped: keep the lock we hold
    return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Lookup / append / refresh / compact
//===----------------------------------------------------------------------===//

bool QueryStore::lookup(const std::string &Key, CheckResult &Out) {
  std::shared_lock<std::shared_mutex> Lock(Mu);
  Lookups.fetch_add(1, std::memory_order_relaxed);
  auto It = Index.find(Key);
  if (It == Index.end())
    return false;
  LookupHits.fetch_add(1, std::memory_order_relaxed);
  Out = It->second.R;
  // Recency stamp for LRU eviction: atomic, so the shared lock suffices.
  It->second.LastUsed.store(wallClockSeconds(), std::memory_order_relaxed);
  return true;
}

void QueryStore::append(const std::string &Key, const CheckResult &R) {
  // Serialize before taking Mu; wasted work only in the duplicate-key case,
  // which the single-flight memo in front makes rare.
  int64_t Now = wallClockSeconds();
  std::vector<uint8_t> Record;
  serializeRecord(Key, R, Now, Record);

  std::unique_lock<std::shared_mutex> Lock(Mu);
  if (!Index.try_emplace(Key, R, Now).second)
    return; // already cached (first answer wins)
  if (Opts.ReadOnly || Fd < 0)
    return;
  // The flock + write stay under Mu because the fd bookkeeping
  // (lockLiveLog may swap Fd) is Mu-guarded. Concurrent lookups therefore
  // wait out each append — acceptable, since appends are one small buffered
  // write per *distinct* formula (no fsync) and only the flock can stall,
  // when another process is compacting.
  if (lockLiveLog(/*Exclusive=*/true)) {
    // O_APPEND positions every write at the true end of file, so whole
    // records from cooperating processes interleave without tearing (the
    // exclusive lock serializes the write itself).
    if (writeAll(Fd, Record.data(), Record.size()))
      ++TheStats.RecordsAppended;
    ::flock(Fd, LOCK_UN);
  }
}

void QueryStore::refresh() {
  std::unique_lock<std::shared_mutex> Lock(Mu);
  if (Fd < 0) {
    if (!Opts.ReadOnly || TheStats.Degraded)
      return;
    // Read-only store whose log did not exist at open: it may by now.
    Fd = ::open(logPath().c_str(), O_RDONLY, 0644);
    if (Fd < 0)
      return;
    LogInode = inodeOf(Fd);
    LoadedEnd = 0;
  }
  if (!lockLiveLog(/*Exclusive=*/false))
    return;
  refreshUnderLock();
  ::flock(Fd, LOCK_UN);
}

void QueryStore::refreshUnderLock() {
  std::vector<uint8_t> Data;
  if (LoadedEnd == 0) {
    // Fresh or replaced log: re-validate the header before trusting it.
    if (readFileFrom(0, Data) && !Data.empty()) {
      std::string Reason;
      size_t HeaderEnd = parseHeader(Data.data(), Data.size(), Opts.Profile,
                                     Reason);
      if (HeaderEnd != 0)
        LoadedEnd = loadRecords(Data.data(), Data.size(), HeaderEnd);
      else {
        TheStats.Degraded = true;
        TheStats.DegradedReason = Reason;
      }
    }
  } else if (readFileFrom(LoadedEnd, Data) && !Data.empty()) {
    // LoadedEnd only ever advances past whole, checksummed records, so a
    // partial tail another process is mid-writing is simply re-read later.
    LoadedEnd += loadRecords(Data.data(), Data.size(), 0);
  }
}

/// Evaluates the eviction policy without mutating anything: TTL first,
/// then LRU-by-last-used until the serialized survivors (plus header) fit
/// MaxBytes. Survivor bytes come back in canonical key order.
QueryStore::EvictionPlan QueryStore::planEvictionLocked() {
  EvictionPlan Plan;
  int64_t Now = wallClockSeconds();

  // Serialize every non-expired record (re-stamped with its live recency).
  struct Rec {
    const std::string *Key;
    int64_t LastUsed;
    std::vector<uint8_t> Bytes;
  };
  std::vector<Rec> Recs;
  Recs.reserve(Index.size());
  for (const auto &[Key, E] : Index) {
    int64_t Used = E.LastUsed.load(std::memory_order_relaxed);
    if (Policy.TtlSeconds > 0 && Now - Used > Policy.TtlSeconds) {
      Plan.TtlVictims.push_back(Key);
      continue;
    }
    Rec R;
    R.Key = &Key;
    R.LastUsed = Used;
    serializeRecord(Key, E.R, Used, R.Bytes);
    Recs.push_back(std::move(R));
  }
  std::sort(Recs.begin(), Recs.end(),
            [](const Rec &A, const Rec &B) { return *A.Key < *B.Key; });

  // Size pass: keep the most recently used records whose cumulative size
  // (plus header) fits MaxBytes; evict the rest. Ties break by key so two
  // processes compacting the same index evict identically.
  std::vector<char> Keep(Recs.size(), 1);
  if (Policy.MaxBytes > 0) {
    uint64_t Total = HeaderBytes.size();
    for (const Rec &R : Recs)
      Total += R.Bytes.size();
    if (Total > Policy.MaxBytes) {
      std::vector<size_t> ByAge(Recs.size());
      for (size_t I = 0; I < ByAge.size(); ++I)
        ByAge[I] = I;
      std::sort(ByAge.begin(), ByAge.end(), [&](size_t A, size_t B) {
        if (Recs[A].LastUsed != Recs[B].LastUsed)
          return Recs[A].LastUsed < Recs[B].LastUsed; // oldest first
        return *Recs[A].Key < *Recs[B].Key;
      });
      for (size_t I : ByAge) {
        if (Total <= Policy.MaxBytes)
          break;
        Keep[I] = 0;
        Total -= Recs[I].Bytes.size();
        Plan.SizeVictims.push_back(*Recs[I].Key);
      }
    }
  }

  for (size_t I = 0; I < Recs.size(); ++I)
    if (Keep[I])
      Plan.Records.insert(Plan.Records.end(), Recs[I].Bytes.begin(),
                          Recs[I].Bytes.end());
  return Plan;
}

void QueryStore::applyEvictionPlanLocked(const EvictionPlan &Plan) {
  for (const std::string &Key : Plan.TtlVictims) {
    Index.erase(Key);
    ++TheStats.EvictedTtl;
  }
  for (const std::string &Key : Plan.SizeVictims) {
    Index.erase(Key);
    ++TheStats.EvictedSize;
  }
}

bool QueryStore::compact(std::string *Error) {
  std::unique_lock<std::shared_mutex> Lock(Mu);
  if (inMemory()) {
    // No file to rewrite: compaction is just policy enforcement on the
    // index (the daemon's size/TTL management for its resident warm tier).
    applyEvictionPlanLocked(planEvictionLocked());
    return true;
  }
  if (Opts.ReadOnly || Fd < 0) {
    if (Error)
      *Error = "store is read-only or detached";
    return false;
  }
  if (!lockLiveLog(/*Exclusive=*/true)) {
    if (Error)
      *Error = "log disappeared during compaction";
    return false;
  }
  // Merge everything other processes wrote since we last looked, so the
  // rewrite never discards someone else's work (we hold the exclusive lock,
  // so the set is stable from here to the rename). This handles both a
  // tail of fresh appends and a whole new inode another compaction renamed
  // into place (lockLiveLog then reset LoadedEnd to 0, and the full-reload
  // branch re-parses the new log before we rewrite it).
  refreshUnderLock();

  // Plan now, mutate later: evictions land in the index and the counters
  // only once the rewrite is durably in place, so a failed rewrite really
  // does leave this handle (and the log) untouched.
  EvictionPlan Plan = planEvictionLocked();

  std::string TmpPath = logPath() + ".tmp." + std::to_string(::getpid());
  int TmpFd = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (TmpFd < 0) {
    ::flock(Fd, LOCK_UN);
    if (Error)
      *Error = "cannot create " + TmpPath + ": " + std::strerror(errno);
    return false;
  }
  std::vector<uint8_t> Buf(HeaderBytes.begin(), HeaderBytes.end());
  Buf.insert(Buf.end(), Plan.Records.begin(), Plan.Records.end());
  bool Ok = writeAll(TmpFd, Buf.data(), Buf.size()) && ::fsync(TmpFd) == 0;
  ::close(TmpFd);
  if (Ok && ::rename(TmpPath.c_str(), logPath().c_str()) != 0)
    Ok = false;
  if (!Ok) {
    ::unlink(TmpPath.c_str());
    ::flock(Fd, LOCK_UN);
    if (Error)
      *Error = "cannot write compacted log: " + std::string(strerror(errno));
    return false;
  }
  applyEvictionPlanLocked(Plan);
  // Swap our handle onto the new inode; the old fd's lock dies with it.
  ::close(Fd);
  Fd = ::open(logPath().c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  LogInode = Fd >= 0 ? inodeOf(Fd) : 0;
  LoadedEnd = Buf.size();
  return true;
}

//===----------------------------------------------------------------------===//
// fsck
//===----------------------------------------------------------------------===//

namespace {

/// One fully valid record surviving an fsck scan.
struct GoodRec {
  std::string Key;
  CheckResult R;
  int64_t LastUsed;
};

/// Reads [0, EOF) of \p Fd. Returns false on I/O error.
bool readWholeFile(int Fd, std::vector<uint8_t> &Out) {
  struct stat St;
  if (::fstat(Fd, &St) != 0)
    return false;
  Out.resize(static_cast<size_t>(St.st_size));
  size_t Done = 0;
  while (Done < Out.size()) {
    ssize_t N = ::pread(Fd, Out.data() + Done, Out.size() - Done,
                        static_cast<off_t>(Done));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false;
    Done += static_cast<size_t>(N);
  }
  return true;
}

/// The fsck scan proper: walks frames exactly like loadRecords, but
/// additionally requires every key to decode as one complete canonical
/// term blob — a key that is not a term can never be *served wrongly*
/// (lookups are exact-byte probes), but it is dead weight and evidence of
/// writer corruption. Fills \p Report and collects the survivors.
void scanLogBytes(const std::vector<uint8_t> &Data,
                  const std::string &ExpectProfile, FsckReport &Report,
                  std::vector<GoodRec> &Good) {
  Report = FsckReport();
  Good.clear();
  Report.TotalBytes = Data.size();

  // Parse the header accepting any profile (structural validity first);
  // an expectation mismatch is then flagged separately, because a healthy
  // log of another backend is not corruption and must never be "repaired"
  // away.
  std::string Reason;
  size_t HeaderEnd = Data.empty()
                         ? 0
                         : parseHeader(Data.data(), Data.size(), "", Reason,
                                       &Report.Profile);
  if (HeaderEnd == 0) {
    Report.HeaderOk = false;
    Report.Problem = Data.empty() ? "empty log" : Reason;
    Report.BadBytes = Data.size();
    return;
  }
  Report.HeaderOk = true;
  if (!ExpectProfile.empty() && Report.Profile != ExpectProfile) {
    Report.ProfileMismatch = true;
    Report.Problem = "profile mismatch (log '" + Report.Profile +
                     "', expected '" + ExpectProfile + "')";
  }

  std::unordered_map<std::string, size_t> Seen;
  size_t Pos = HeaderEnd;
  while (Pos + FrameOverhead <= Data.size()) {
    ByteReader Frame(Data.data() + Pos, FrameOverhead);
    uint32_t Len = Frame.readU32();
    uint64_t Sum = Frame.readU64();
    if (Len > MaxPayload || Pos + FrameOverhead + Len > Data.size())
      break;
    const uint8_t *Payload = Data.data() + Pos + FrameOverhead;
    if (fnv1a(Payload, Len) != Sum)
      break;
    GoodRec G;
    if (!parsePayload(Payload, Len, G.Key, G.R, G.LastUsed))
      break;
    logic::TermContext Scratch;
    ByteReader KeyReader(reinterpret_cast<const uint8_t *>(G.Key.data()),
                         G.Key.size());
    TermReader TR(Scratch, KeyReader);
    const logic::Term *T = TR.read();
    if (!T || !KeyReader.atEnd()) {
      ++Report.UndecodableKeys;
      if (Report.Problem.empty())
        Report.Problem = "record key is not a canonical term blob";
    } else if (!Seen.emplace(G.Key, Good.size()).second) {
      ++Report.DuplicateKeys;
      ++Report.GoodRecords;
    } else {
      ++Report.GoodRecords;
      Good.push_back(std::move(G));
    }
    Pos += FrameOverhead + Len;
  }
  Report.BadBytes = Data.size() - Pos;
  if (Report.BadBytes > 0 && Report.Problem.empty())
    Report.Problem = "unparseable tail (" + std::to_string(Report.BadBytes) +
                     " bytes)";
}

} // namespace

bool QueryStore::fsck(const std::string &Dir, const std::string &ExpectProfile,
                      bool DropBad, FsckReport &Report, std::string *Error) {
  Report = FsckReport();
  std::string Path = Dir + "/queries.log";
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    if (Error)
      *Error = "cannot open " + Path + ": " + std::strerror(errno);
    return false;
  }
  ::flock(Fd, LOCK_SH);
  std::vector<uint8_t> Data;
  bool ReadOk = readWholeFile(Fd, Data);
  ::flock(Fd, LOCK_UN);
  ::close(Fd);
  if (!ReadOk) {
    if (Error)
      *Error = "cannot read " + Path;
    return false;
  }
  std::vector<GoodRec> Good;
  scanLogBytes(Data, ExpectProfile, Report, Good);

  if (!DropBad || Report.clean())
    return true;

  // A healthy log of another backend is not damage: refuse to "repair"
  // (i.e. erase) it. The caller either meant a different directory or
  // should rerun with the log's own profile.
  if (Report.ProfileMismatch) {
    if (Error)
      *Error = "log belongs to profile '" + Report.Profile +
               "', not '" + ExpectProfile +
               "' — refusing --drop-bad (this is a mismatch, not "
               "corruption)";
    return false;
  }
  // A repair of a log whose header is unreadable must know which backend
  // the replacement header should name — writing an empty profile would
  // produce a "repaired" store every subsequent open rejects as a
  // mismatch and rotates aside.
  if (!Report.HeaderOk && ExpectProfile.empty()) {
    if (Error)
      *Error = "cannot repair a log with an invalid header without "
               "--profile (the replacement header must name the answering "
               "backend)";
    return false;
  }

  // Repair: rewrite with only the fully valid records. The rewrite must
  // not trust the unlocked snapshot above — a cooperating writer may have
  // appended between the scan and here — so the log is re-read and
  // re-scanned *under the exclusive lock* (following any compaction
  // rename, like lockLiveLog) and the rewrite is built from that locked
  // scan. The atomic rename means readers either see the old log or the
  // repaired one.
  int LiveFd = -1;
  for (int Tries = 0; Tries < 8; ++Tries) {
    LiveFd = ::open(Path.c_str(), O_RDONLY);
    if (LiveFd < 0)
      break;
    ::flock(LiveFd, LOCK_EX);
    if (inodeOfPath(Path) == inodeOf(LiveFd))
      break; // locked the inode the path names: this is the live log
    ::flock(LiveFd, LOCK_UN);
    ::close(LiveFd);
    LiveFd = -1;
  }
  if (LiveFd < 0) {
    if (Error)
      *Error = "log disappeared during fsck";
    return false;
  }
  std::vector<uint8_t> LockedData;
  std::vector<GoodRec> LockedGood;
  FsckReport LockedReport;
  if (!readWholeFile(LiveFd, LockedData)) {
    ::flock(LiveFd, LOCK_UN);
    ::close(LiveFd);
    if (Error)
      *Error = "cannot re-read " + Path + " under lock";
    return false;
  }
  scanLogBytes(LockedData, ExpectProfile, LockedReport, LockedGood);
  if (LockedReport.ProfileMismatch) {
    // Another process replaced the log with a different profile's store
    // between the scans; same rule — never erase a healthy foreign log.
    ::flock(LiveFd, LOCK_UN);
    ::close(LiveFd);
    if (Error)
      *Error = "log changed to profile '" + LockedReport.Profile +
               "' during fsck — refusing --drop-bad";
    return false;
  }

  std::string Header =
      buildHeader(LockedReport.HeaderOk ? LockedReport.Profile
                                        : ExpectProfile);
  std::vector<uint8_t> Buf(Header.begin(), Header.end());
  for (const GoodRec &G : LockedGood)
    serializeRecord(G.Key, G.R, G.LastUsed, Buf);
  std::string TmpPath = Path + ".fsck." + std::to_string(::getpid());
  int TmpFd = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  bool Ok = TmpFd >= 0 && writeAll(TmpFd, Buf.data(), Buf.size()) &&
            ::fsync(TmpFd) == 0;
  if (TmpFd >= 0)
    ::close(TmpFd);
  if (Ok && ::rename(TmpPath.c_str(), Path.c_str()) != 0)
    Ok = false;
  if (!Ok)
    ::unlink(TmpPath.c_str());
  ::flock(LiveFd, LOCK_UN);
  ::close(LiveFd);
  if (!Ok) {
    if (Error)
      *Error = "cannot rewrite repaired log";
    return false;
  }
  // Report what the repair actually acted on (the locked scan), keeping
  // the original TotalBytes/BadBytes so the caller sees the damage found.
  Report.GoodRecords = LockedReport.GoodRecords;
  Report.DuplicateKeys = LockedReport.DuplicateKeys;
  Report.UndecodableKeys = LockedReport.UndecodableKeys;
  Report.Rewritten = true;
  return true;
}

#else // _WIN32 stubs (the store is POSIX-only; open() already refused)

bool QueryStore::initialize(std::string *) { return false; }
size_t QueryStore::loadRecords(const uint8_t *, size_t, size_t) { return 0; }
bool QueryStore::readFileFrom(size_t, std::vector<uint8_t> &) const {
  return false;
}
bool QueryStore::lockLiveLog(bool) { return false; }
bool QueryStore::lookup(const std::string &, CheckResult &) { return false; }
void QueryStore::append(const std::string &, const CheckResult &) {}
void QueryStore::refresh() {}
void QueryStore::refreshUnderLock() {}
QueryStore::EvictionPlan QueryStore::planEvictionLocked() { return {}; }
void QueryStore::applyEvictionPlanLocked(const EvictionPlan &) {}
bool QueryStore::compact(std::string *) { return false; }
bool QueryStore::fsck(const std::string &, const std::string &, bool,
                      FsckReport &, std::string *Error) {
  if (Error)
    *Error = "persistent query store is not supported on this platform";
  return false;
}

#endif

void QueryStore::setEvictionPolicy(const EvictionPolicy &P) {
  std::unique_lock<std::shared_mutex> Lock(Mu);
  Policy = P;
}

EvictionPolicy QueryStore::evictionPolicy() const {
  std::shared_lock<std::shared_mutex> Lock(Mu);
  return Policy;
}

size_t QueryStore::size() const {
  std::shared_lock<std::shared_mutex> Lock(Mu);
  return Index.size();
}

StoreStats QueryStore::stats() const {
  std::shared_lock<std::shared_mutex> Lock(Mu);
  StoreStats S = TheStats;
  S.Lookups = Lookups.load(std::memory_order_relaxed);
  S.LookupHits = LookupHits.load(std::memory_order_relaxed);
  return S;
}
