//===- persist/TermCodec.cpp - Canonical binary term serialization ------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "persist/TermCodec.h"

#include <unordered_map>

using namespace expresso;
using namespace expresso::persist;
using namespace expresso::logic;

uint64_t persist::fnv1a(const uint8_t *Data, size_t Len, uint64_t Seed) {
  uint64_t H = Seed;
  for (size_t I = 0; I < Len; ++I)
    H = (H ^ Data[I]) * 0x100000001b3ULL;
  return H;
}

void TermWriter::write(const Term *T) {
  // DFS post-order over the DAG, each distinct node once. The visit order —
  // and therefore every node index — is fully determined by the term's own
  // operand order, which is canonical by construction (commutative operands
  // are sorted at intern time), so the blob is reproducible across
  // processes.
  std::vector<const Term *> Order;
  std::unordered_map<const Term *, uint32_t> Index;
  std::vector<std::pair<const Term *, unsigned>> Stack; // (node, next child)
  Stack.emplace_back(T, 0);
  while (!Stack.empty()) {
    auto &[Node, Child] = Stack.back();
    if (Index.count(Node)) {
      Stack.pop_back();
      continue;
    }
    if (Child < Node->numOperands()) {
      const Term *Op = Node->operand(Child++);
      if (!Index.count(Op))
        Stack.emplace_back(Op, 0);
      continue;
    }
    Index.emplace(Node, static_cast<uint32_t>(Order.size()));
    Order.push_back(Node);
    Stack.pop_back();
  }

  B.writeVarint(Order.size());
  for (const Term *Node : Order) {
    B.writeByte(static_cast<uint8_t>(Node->kind()));
    B.writeByte(static_cast<uint8_t>(Node->sort()));
    // IntVal carries the payload of constants and Divides; every other kind
    // stores 0. Reading it straight off the node (rather than via the
    // asserting accessors) keeps the writer total.
    int64_t IntVal = 0;
    if (Node->isIntConst() || Node->isBoolConst())
      IntVal = Node->intValue();
    else if (Node->kind() == TermKind::Divides)
      IntVal = Node->intValue();
    B.writeSigned(IntVal);
    B.writeString(Node->isVar() ? Node->varName() : std::string());
    B.writeVarint(Node->numOperands());
    for (const Term *Op : Node->operands())
      B.writeVarint(Index.at(Op));
  }
}

namespace {

bool validSort(uint8_t S) { return S <= static_cast<uint8_t>(Sort::BoolArray); }
bool validKind(uint8_t K) { return K <= static_cast<uint8_t>(TermKind::Or); }
bool isArraySort(Sort S) {
  return S == Sort::IntArray || S == Sort::BoolArray;
}

/// Shape validation mirroring the invariants the smart constructors
/// guarantee. Anything that fails here could only come from a corrupted (or
/// hostile) blob; rejecting it keeps every decoded term safe to hand to the
/// printer, evaluator, and solvers, whose assertions assume these shapes.
bool validNode(TermKind K, Sort S, int64_t IntVal, const std::string &Name,
               const std::vector<const Term *> &Ops) {
  // Only variables carry a name; only constants and Divides carry IntVal.
  if (K != TermKind::Var && !Name.empty())
    return false;
  if (K != TermKind::IntConst && K != TermKind::BoolConst &&
      K != TermKind::Divides && IntVal != 0)
    return false;
  auto AllInt = [&] {
    for (const Term *Op : Ops)
      if (Op->sort() != Sort::Int)
        return false;
    return true;
  };
  auto AllBool = [&] {
    for (const Term *Op : Ops)
      if (Op->sort() != Sort::Bool)
        return false;
    return true;
  };
  switch (K) {
  case TermKind::IntConst:
    return S == Sort::Int && Ops.empty();
  case TermKind::BoolConst:
    return S == Sort::Bool && Ops.empty() && (IntVal == 0 || IntVal == 1);
  case TermKind::Var:
    return Ops.empty() && !Name.empty();
  case TermKind::Add:
    return S == Sort::Int && Ops.size() >= 2 && AllInt();
  case TermKind::Mul:
    return S == Sort::Int && Ops.size() == 2 && Ops[0]->isIntConst() &&
           Ops[1]->sort() == Sort::Int;
  case TermKind::Ite:
    return Ops.size() == 3 && Ops[0]->sort() == Sort::Bool &&
           Ops[1]->sort() == S && Ops[2]->sort() == S && S != Sort::Bool;
  case TermKind::Select:
    return Ops.size() == 2 && isArraySort(Ops[0]->sort()) &&
           Ops[1]->sort() == Sort::Int && S == elementSort(Ops[0]->sort());
  case TermKind::Store:
    return Ops.size() == 3 && isArraySort(Ops[0]->sort()) &&
           S == Ops[0]->sort() && Ops[1]->sort() == Sort::Int &&
           Ops[2]->sort() == elementSort(Ops[0]->sort());
  case TermKind::Eq:
    return S == Sort::Bool && Ops.size() == 2 &&
           Ops[0]->sort() == Ops[1]->sort() && !isArraySort(Ops[0]->sort());
  case TermKind::Le:
  case TermKind::Lt:
    return S == Sort::Bool && Ops.size() == 2 && AllInt();
  case TermKind::Divides:
    return S == Sort::Bool && Ops.size() == 1 && AllInt() && IntVal >= 2;
  case TermKind::Not:
    return S == Sort::Bool && Ops.size() == 1 && AllBool();
  case TermKind::And:
  case TermKind::Or:
    return S == Sort::Bool && Ops.size() >= 2 && AllBool();
  }
  return false;
}

} // namespace

const Term *TermReader::read() {
  uint64_t Count = B.readVarint();
  if (B.failed() || Count == 0 || Count > (1u << 24)) {
    B.poison();
    return nullptr;
  }
  std::vector<const Term *> Nodes;
  Nodes.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I < Count; ++I) {
    uint8_t KindByte = B.readByte();
    uint8_t SortByte = B.readByte();
    int64_t IntVal = B.readSigned();
    std::string Name;
    B.readString(Name);
    // Operands may repeat (x + x is one node with two references to x), so
    // NumOps is bounded for sanity only; each reference is checked below.
    uint64_t NumOps = B.readVarint();
    if (B.failed() || !validKind(KindByte) || !validSort(SortByte) ||
        NumOps > (1u << 20)) {
      B.poison();
      return nullptr;
    }
    std::vector<const Term *> Ops;
    Ops.reserve(static_cast<size_t>(NumOps));
    for (uint64_t OpI = 0; OpI < NumOps; ++OpI) {
      uint64_t Ref = B.readVarint();
      if (B.failed() || Ref >= I) { // back-references only: DAG, no cycles
        B.poison();
        return nullptr;
      }
      Ops.push_back(Nodes[static_cast<size_t>(Ref)]);
    }
    TermKind K = static_cast<TermKind>(KindByte);
    Sort S = static_cast<Sort>(SortByte);
    if (!validNode(K, S, IntVal, Name, Ops)) {
      B.poison();
      return nullptr;
    }
    // A variable already interned at a different sort means this blob
    // belongs to an incompatible term universe: fail rather than trip the
    // re-declaration assertion inside TermContext::var.
    if (K == TermKind::Var) {
      if (const Term *Existing = C.lookupVar(Name))
        if (Existing->sort() != S) {
          B.poison();
          return nullptr;
        }
    }
    Nodes.push_back(C.internRaw(K, S, IntVal, std::move(Name),
                                std::move(Ops)));
  }
  return Nodes.back();
}

std::string persist::encodeTermKey(const Term *T) {
  std::vector<uint8_t> Buf;
  ByteWriter B(Buf);
  TermWriter(B).write(T);
  return std::string(reinterpret_cast<const char *>(Buf.data()), Buf.size());
}
