//===- persist/QueryStore.h - Disk-backed solver query store ----*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent tier of the two-tier solver cache: a disk-backed map from
/// canonical term encodings (persist::TermCodec) to checkSat results, shared
/// by concurrent workers in one process and by separate processes pointed at
/// the same cache directory. Keys are context-free byte strings, so one
/// store serves any number of TermContexts — the bench harness shares a
/// single store across all 14 workloads' contexts.
///
/// On-disk layout (one directory):
///
///   queries.log   append-only record log
///     header  := magic "XPRSQRYS", u32 version, profile string
///     record* := u32 payloadLen, u64 fnv1a(payload), payload
///     payload := key string (canonical term blob),
///                u8 answer, u8 modelComplete,
///                varint numVars, numVars * (name, u8 sort, svarint int,
///                  svarint arrayDefault, varint n, n * (svarint, svarint))
///
/// The `profile` string names the answering backend ("mini", "z3", ...).
/// Cached answers are only meaningful relative to a deterministic backend;
/// opening a store whose profile differs from the caller's starts over
/// (writable mode rotates the old log aside; read-only mode loads nothing),
/// so one directory never mixes answers from different solvers and a warm
/// run's Σ stays byte-identical to the cold run that filled the cache.
///
/// Durability and concurrency:
///  * The whole log is parsed into an in-memory index at open; lookups are
///    map probes under a shared lock.
///  * Appends take the process mutex plus an advisory flock(LOCK_EX) on the
///    log, write one framed record, and release — so any number of
///    cooperating processes can interleave whole records safely
///    (single-writer at a time, multi-reader always).
///  * Compaction rewrites the deduplicated index to a temp file and
///    atomically renames it over the log while holding the exclusive lock.
///    Writers detect the inode swap on their next append and reopen.
///  * Corruption fails *closed but soft*: a bad magic/version/profile means
///    an empty cache, a truncated or checksum-failing record ends the load
///    at the last good record (writable opens truncate the garbage tail).
///    No corruption can surface as a wrong answer — a record either
///    checksums clean or is never served.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_PERSIST_QUERYSTORE_H
#define EXPRESSO_PERSIST_QUERYSTORE_H

#include "solver/SmtSolver.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

namespace expresso {
namespace persist {

/// Counters and health of one QueryStore handle.
struct StoreStats {
  uint64_t RecordsLoaded = 0;   ///< records read from disk (open + refresh)
  uint64_t RecordsAppended = 0; ///< records this handle wrote
  uint64_t Lookups = 0;
  uint64_t LookupHits = 0;
  uint64_t EvictedTtl = 0;      ///< records dropped at compaction: TTL expiry
  uint64_t EvictedSize = 0;     ///< records dropped at compaction: size cap
  bool Degraded = false;        ///< open found a damaged/mismatched log
  std::string DegradedReason;   ///< human-readable cause when Degraded

  uint64_t evicted() const { return EvictedTtl + EvictedSize; }
};

/// Size/age bounds enforced when the store compacts (never during normal
/// lookups/appends — the log is append-only between compactions, so
/// enforcement is batched where the rewrite already happens). Zero fields
/// mean "unbounded".
struct EvictionPolicy {
  uint64_t MaxBytes = 0;  ///< target upper bound for the compacted log size
  int64_t TtlSeconds = 0; ///< drop records not used for this many seconds
  bool enabled() const { return MaxBytes != 0 || TtlSeconds != 0; }
};

/// What `expresso cache fsck` found in one store directory. The scan is
/// read-only unless DropBad was requested (then the log is rewritten with
/// only the records that passed every check, via atomic rename).
struct FsckReport {
  bool HeaderOk = false;      ///< magic/version parsed (structurally valid)
  /// Header is valid but names a different backend than the caller
  /// expected. This is *not* corruption — the records are fine for their
  /// own profile — so DropBad refuses to "repair" (i.e. erase) such a log.
  bool ProfileMismatch = false;
  std::string Profile;        ///< backend profile recorded in the header
  std::string Problem;        ///< first structural problem (empty if clean)
  uint64_t GoodRecords = 0;   ///< frames whose checksum + payload parse
  uint64_t DuplicateKeys = 0; ///< well-formed records repeating an old key
  uint64_t UndecodableKeys = 0; ///< records whose key is not a valid term blob
  uint64_t TotalBytes = 0;    ///< log size on disk
  uint64_t BadBytes = 0;      ///< unparseable tail (0 when the log is clean)
  bool Rewritten = false;     ///< DropBad rewrote the log

  bool clean() const {
    return HeaderOk && !ProfileMismatch && BadBytes == 0 &&
           UndecodableKeys == 0;
  }
};

/// A disk-backed query cache directory. Thread-safe; open one handle per
/// process and share it (the two-tier CachingSolver keeps it behind its
/// in-memory memo, so the store only sees first-ask traffic).
class QueryStore {
public:
  struct Options {
    bool ReadOnly = false;
    /// Backend identity the cached answers belong to (e.g. "mini").
    std::string Profile = "default";
  };

  /// Opens (creating if needed and writable) the store in \p Dir. Returns
  /// null only when the directory or log cannot be created/opened at all —
  /// damaged content degrades to an empty cache instead (see stats()).
  /// \p Error receives a diagnostic on null returns.
  static std::shared_ptr<QueryStore> open(const std::string &Dir,
                                          const Options &Opts,
                                          std::string *Error = nullptr);

  /// The open() wrapper shared by every cache-dir surface (CLI, bench
  /// harness): prints a warning to stderr — and returns null or a degraded
  /// empty store — instead of failing, so a bad cache directory never stops
  /// an analysis. \p CacheEnabled gates the whole thing: a --no-cache run
  /// warns that --cache-dir is ignored (the persistent tier sits behind the
  /// in-memory memo) and returns null.
  static std::shared_ptr<QueryStore>
  openReportingWarnings(const std::string &Dir, bool ReadOnly,
                        const std::string &Profile, bool CacheEnabled);

  /// A purely in-memory store: same index, counters, and first-answer-wins
  /// semantics, but no backing file. This is the daemon's shared warm tier
  /// when it runs without --cache-dir — canonical keys make it shareable
  /// across every request's TermContext, exactly like the disk store, and
  /// compact() applies the eviction policy to the index alone.
  static std::shared_ptr<QueryStore> createInMemory(const std::string &Profile);

  /// Validates the store in \p Dir record by record: header magic/version
  /// (and profile when \p ExpectProfile is non-empty), frame checksums,
  /// payload shape, and that every key decodes as a canonical term blob.
  /// Read-only unless \p DropBad, which rewrites the log keeping only fully
  /// valid records (atomic rename under the advisory lock). Returns false
  /// (with \p Error) only when the directory/log cannot be read at all.
  static bool fsck(const std::string &Dir, const std::string &ExpectProfile,
                   bool DropBad, FsckReport &Report,
                   std::string *Error = nullptr);

  ~QueryStore();
  QueryStore(const QueryStore &) = delete;
  QueryStore &operator=(const QueryStore &) = delete;

  /// Looks up a canonical term key. On hit copies the stored result into
  /// \p Out and returns true.
  bool lookup(const std::string &Key, solver::CheckResult &Out);

  /// Inserts and persists one result. Duplicate keys are dropped (first
  /// answer wins — with a deterministic backend they are identical anyway).
  /// No-op in read-only mode (the in-memory index still absorbs the entry
  /// so repeated asks within this process stay hits).
  void append(const std::string &Key, const solver::CheckResult &R);

  /// Re-reads any records other processes appended since open/last refresh.
  void refresh();

  /// Rewrites the log as the deduplicated in-memory index (sorted by key,
  /// so compaction output is canonical) and atomically renames it into
  /// place, enforcing the eviction policy on the way: TTL-expired records
  /// are dropped first, then least-recently-used records until the rewrite
  /// fits MaxBytes (ties broken by key, so eviction is deterministic).
  /// Returns false (with \p Error) when writing fails; the original log is
  /// untouched in that case. No-op in read-only mode; an in-memory store
  /// applies the policy to its index and always succeeds.
  bool compact(std::string *Error = nullptr);

  /// Installs the size/TTL bounds compact() enforces (thread-safe).
  void setEvictionPolicy(const EvictionPolicy &P);
  EvictionPolicy evictionPolicy() const;

  bool readOnly() const { return Opts.ReadOnly; }
  /// True for createInMemory() stores (no backing file; directory() empty).
  bool inMemory() const { return Dir.empty(); }
  const std::string &directory() const { return Dir; }
  const std::string &profile() const { return Opts.Profile; }
  size_t size() const;
  StoreStats stats() const;

private:
  QueryStore(std::string Dir, const Options &Opts) : Dir(std::move(Dir)),
                                                     Opts(Opts) {}

  std::string logPath() const { return Dir + "/queries.log"; }

  /// Opens/creates the log file and loads every valid record. Requires no
  /// locks held; called once from open().
  bool initialize(std::string *Error);
  /// Parses records from \p Data, merging new keys into the index. Returns
  /// the offset just past the last well-formed record.
  size_t loadRecords(const uint8_t *Data, size_t Size, size_t BaseOffset);
  /// Reads [Offset, EOF) of the log into \p Out. Returns false on I/O error.
  bool readFileFrom(size_t Offset, std::vector<uint8_t> &Out) const;
  /// Merges unseen log content into the index: the not-yet-parsed tail, or
  /// — when lockLiveLog reset LoadedEnd after following a rename — the
  /// whole (re-validated) log. Requires Mu exclusive and the flock held.
  void refreshUnderLock();
  /// The outcome of evaluating the eviction policy against the index:
  /// serialized survivors (canonical key order) plus the keys to drop.
  /// Planning never mutates — compact() applies the plan only after the
  /// rewrite succeeded, so a failed rewrite leaves index and stats intact.
  struct EvictionPlan {
    std::vector<uint8_t> Records;
    std::vector<std::string> TtlVictims;
    std::vector<std::string> SizeVictims;
  };
  /// Evaluates the policy and serializes the survivors. Requires Mu
  /// exclusive; does not modify the index or stats.
  EvictionPlan planEvictionLocked();
  /// Erases the plan's victims and bumps the evicted counters. Requires Mu
  /// exclusive and an unchanged index since planEvictionLocked().
  void applyEvictionPlanLocked(const EvictionPlan &Plan);
  /// Takes the advisory flock on the inode the log *path* currently names,
  /// following atomic-rename compactions by other processes (closing a
  /// superseded fd on the way). On true the caller holds the lock on the
  /// live log and must flock(LOCK_UN) it; on false there is no usable log.
  /// Caller holds Mu exclusively.
  bool lockLiveLog(bool Exclusive);

  std::string Dir;
  Options Opts;

  /// One cached answer plus its recency stamp. LastUsed is an atomic so
  /// shared-lock readers (lookup) can refresh it without upgrading to the
  /// exclusive lock; unordered_map node stability keeps the atomic's address
  /// fixed across rehashes.
  struct Entry {
    solver::CheckResult R;
    std::atomic<int64_t> LastUsed{0};
    Entry(const solver::CheckResult &R, int64_t T) : R(R), LastUsed(T) {}
  };

  mutable std::shared_mutex Mu; ///< guards Index, Stats, fd bookkeeping
  std::unordered_map<std::string, Entry> Index;
  EvictionPolicy Policy; ///< enforced by compact(); guarded by Mu
  StoreStats TheStats; ///< all fields written under exclusive Mu …
  /// … except the lookup counters, which concurrent shared-lock readers
  /// bump and are therefore atomics.
  std::atomic<uint64_t> Lookups{0};
  std::atomic<uint64_t> LookupHits{0};

  int Fd = -1;               ///< log fd (O_APPEND when writable)
  uint64_t LogInode = 0;     ///< inode at open, for replace detection
  size_t LoadedEnd = 0;      ///< offset just past the last record we parsed
  std::string HeaderBytes;   ///< serialized header (rewritten on rotate)
};

} // namespace persist
} // namespace expresso

#endif // EXPRESSO_PERSIST_QUERYSTORE_H
