//===- support/CancelToken.cpp - Cooperative cancellation ---------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "support/CancelToken.h"

#include <limits>

using namespace expresso;
using namespace expresso::support;

void CancelToken::setDeadlineAfterSeconds(double Seconds) {
  if (Seconds <= 0) {
    cancel();
    return;
  }
  int64_t Delta = static_cast<int64_t>(Seconds * 1e9);
  DeadlineNs.store(nowNs() + Delta, std::memory_order_relaxed);
}

void CancelToken::cancel() {
  std::lock_guard<std::mutex> Lock(Mu);
  // Exchange under the lock so exactly one caller fires the hooks, and a
  // racing registerInterrupt either sees Cancelled (fires itself) or lands
  // in Hooks before this loop runs.
  if (Cancelled.exchange(true, std::memory_order_relaxed))
    return;
  for (auto &Entry : Hooks)
    if (Entry.second)
      Entry.second();
}

double CancelToken::remainingSeconds() const {
  if (Cancelled.load(std::memory_order_relaxed))
    return 0.0;
  int64_t D = DeadlineNs.load(std::memory_order_relaxed);
  if (D == 0)
    return std::numeric_limits<double>::infinity();
  int64_t Left = D - nowNs();
  return Left > 0 ? static_cast<double>(Left) * 1e-9 : 0.0;
}

uint64_t CancelToken::registerInterrupt(InterruptHook H) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Cancelled.load(std::memory_order_relaxed)) {
    if (H)
      H();
    return 0;
  }
  uint64_t Handle = NextHandle++;
  Hooks.emplace(Handle, std::move(H));
  return Handle;
}

void CancelToken::unregisterInterrupt(uint64_t Handle) {
  std::lock_guard<std::mutex> Lock(Mu);
  Hooks.erase(Handle);
}
