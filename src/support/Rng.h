//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64: a small, fast, deterministic PRNG used by property tests and
/// workload generators so every run is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SUPPORT_RNG_H
#define EXPRESSO_SUPPORT_RNG_H

#include <cstdint>

namespace expresso {

/// Deterministic 64-bit PRNG (SplitMix64).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Bernoulli trial with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace expresso

#endif // EXPRESSO_SUPPORT_RNG_H
