//===- support/Timer.h - Wall-clock timing utilities ------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny steady-clock stopwatch used by the Table-1 analysis-time bench and
/// the saturation harness.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SUPPORT_TIMER_H
#define EXPRESSO_SUPPORT_TIMER_H

#include <chrono>

namespace expresso {

/// Measures elapsed wall-clock time from construction or the last restart().
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  void restart() { Start = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double elapsedMillis() const { return elapsedSeconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace expresso

#endif // EXPRESSO_SUPPORT_TIMER_H
