//===- support/Timer.h - Wall-clock timing utilities ------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny steady-clock stopwatch used by the Table-1 analysis-time bench,
/// the saturation harness, the daemon's latency accounting, and the obs
/// tracer. The clock choice is a contract, not an implementation detail:
/// every `*Seconds` stat in the system (InvariantSeconds,
/// PlacementSeconds, QueueSeconds, AnalysisSeconds, span durations) is a
/// difference of WallTimer::Clock readings, and std::chrono::steady_clock
/// is monotonic — so none of them can go negative or jump when the system
/// wall clock is adjusted (NTP step, manual set, DST).
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SUPPORT_TIMER_H
#define EXPRESSO_SUPPORT_TIMER_H

#include <chrono>

namespace expresso {

/// Measures elapsed wall-clock time from construction or the last restart().
class WallTimer {
public:
  /// The one clock all timing in the system derives from. Monotonic
  /// (steady_clock) by contract — see the file comment. obs::Tracer stamps
  /// span timestamps from this same clock so trace durations line up with
  /// the `*Seconds` stats.
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "WallTimer's clock must be monotonic: every *Seconds stat "
                "and span duration is a difference of its readings");

  WallTimer() : Start(Clock::now()) {}

  void restart() { Start = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double elapsedMillis() const { return elapsedSeconds() * 1000.0; }

private:
  Clock::time_point Start;
};

} // namespace expresso

#endif // EXPRESSO_SUPPORT_TIMER_H
