//===- support/Diagnostics.cpp - Diagnostic engine ------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace expresso;

std::string SourceLoc::str() const {
  std::ostringstream OS;
  OS << Line << ":" << Col;
  return OS.str();
}

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  if (Loc.isValid())
    OS << Loc.str() << ": ";
  OS << severityName(Severity) << ": " << Message;
  return OS.str();
}

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << D.str() << "\n";
  return OS.str();
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}
