//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. A class hierarchy opts in by defining
/// a static `classof(const Base *)` predicate; clients then use `isa<T>`,
/// `cast<T>`, and `dyn_cast<T>` instead of C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SUPPORT_CASTING_H
#define EXPRESSO_SUPPORT_CASTING_H

#include <cassert>

namespace expresso {

/// Returns true if \p Val is an instance of type To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that the cast is valid.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checked downcast for mutable pointers.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Downcast that returns null when \p Val is not an instance of To.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Downcast for mutable pointers that returns null on mismatch.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// dyn_cast that tolerates null inputs.
template <typename To, typename From> const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace expresso

#endif // EXPRESSO_SUPPORT_CASTING_H
