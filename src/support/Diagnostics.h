//===- support/Diagnostics.h - Source locations and diagnostics -*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and a small diagnostic engine used by the monitor-DSL
/// frontend. Diagnostics are collected rather than printed so that tests can
/// assert on them.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SUPPORT_DIAGNOSTICS_H
#define EXPRESSO_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace expresso {

/// A 1-based (line, column) position in a monitor source file.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// Severity of a reported diagnostic.
enum class DiagSeverity { Note, Warning, Error };

/// A single diagnostic message attached to a source location.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics emitted by the frontend and analyses.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic on its own line, in emission order.
  std::string str() const;

  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace expresso

#endif // EXPRESSO_SUPPORT_DIAGNOSTICS_H
