//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately simple fixed-size thread pool for the placement engine's
/// embarrassingly parallel fan-out: every (CCR, predicate-class) pair of
/// Algorithm 1 is an independent batch item. There is no work stealing and
/// no general task queue — parallelFor hands a batch to all workers, who
/// pull indices from a shared atomic cursor (self-balancing when items have
/// skewed solver cost) and expose their worker id so callers can keep
/// per-worker state (solver backends, statistics) without synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SUPPORT_THREADPOOL_H
#define EXPRESSO_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace expresso {
namespace support {

/// Fixed-size pool of worker threads executing one batch at a time.
class ThreadPool {
public:
  /// Spawns \p Workers threads (0 means run batches inline on the caller).
  explicit ThreadPool(unsigned Workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return static_cast<unsigned>(Threads.size()); }

  /// Runs Body(WorkerId, Index) for every Index in [0, Count), distributing
  /// indices dynamically across the workers, and returns once all items
  /// completed. WorkerId is stable per thread and < size() (0 when the pool
  /// has no threads and the batch runs inline). Not reentrant: one batch at
  /// a time, and Body must not call back into the same pool. Exceptions
  /// escaping Body terminate the process (the placement fan-out is
  /// noexcept by design).
  void parallelFor(size_t Count,
                   const std::function<void(unsigned WorkerId, size_t Index)>
                       &Body);

  /// A sensible default worker count: hardware concurrency, at least 1.
  static unsigned defaultWorkers() {
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1 : N;
  }

private:
  void workerMain(unsigned Id);

  std::vector<std::thread> Threads;

  std::mutex Mu;
  std::condition_variable WorkCv; ///< signaled when a batch starts / shutdown
  std::condition_variable DoneCv; ///< signaled when the last worker finishes
  const std::function<void(unsigned, size_t)> *Body = nullptr;
  size_t BatchCount = 0;
  std::atomic<size_t> NextIndex{0};
  uint64_t BatchSeq = 0;      ///< bumped per batch so workers join exactly once
  unsigned ActiveWorkers = 0; ///< workers still draining the current batch
  bool ShuttingDown = false;
};

} // namespace support
} // namespace expresso

#endif // EXPRESSO_SUPPORT_THREADPOOL_H
