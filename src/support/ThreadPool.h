//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately simple fixed-size thread pool for the placement engine's
/// embarrassingly parallel fan-out: every (CCR, predicate-class) pair of
/// Algorithm 1 is an independent batch item. There is no work stealing and
/// no general task queue — parallelFor hands a batch to all workers, who
/// pull indices from a shared atomic cursor (self-balancing when items have
/// skewed solver cost) and expose their worker id so callers can keep
/// per-worker state (solver backends, statistics) without synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SUPPORT_THREADPOOL_H
#define EXPRESSO_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace expresso {
namespace support {

/// Fixed-size pool of worker threads executing one batch at a time.
class ThreadPool {
public:
  /// Spawns \p Workers threads (0 means run batches inline on the caller).
  explicit ThreadPool(unsigned Workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return static_cast<unsigned>(Threads.size()); }

  /// Runs Body(WorkerId, Index) for every Index in [0, Count), distributing
  /// indices dynamically across the workers, and returns once all items
  /// completed. WorkerId is stable per thread and < size() (0 when the pool
  /// has no threads and the batch runs inline). Not reentrant: one batch at
  /// a time, and Body must not call back into the same pool. Exceptions
  /// escaping Body terminate the process (the placement fan-out is
  /// noexcept by design).
  void parallelFor(size_t Count,
                   const std::function<void(unsigned WorkerId, size_t Index)>
                       &Body);

  /// A sensible default worker count: hardware concurrency, at least 1.
  static unsigned defaultWorkers() {
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1 : N;
  }

private:
  void workerMain(unsigned Id);

  std::vector<std::thread> Threads;

  std::mutex Mu;
  std::condition_variable WorkCv; ///< signaled when a batch starts / shutdown
  std::condition_variable DoneCv; ///< signaled when the last worker finishes
  const std::function<void(unsigned, size_t)> *Body = nullptr;
  size_t BatchCount = 0;
  std::atomic<size_t> NextIndex{0};
  uint64_t BatchSeq = 0;      ///< bumped per batch so workers join exactly once
  unsigned ActiveWorkers = 0; ///< workers still draining the current batch
  bool ShuttingDown = false;
};

/// A counting budget of worker slots shared by concurrent consumers — the
/// admission-control primitive of the placement service: the daemon owns one
/// global budget (typically hardware concurrency) and every in-flight
/// request leases its `--jobs` worth of slots out of it, so N concurrent
/// requests degrade gracefully to fewer workers each instead of
/// oversubscribing the machine N-fold.
///
/// acquire() is *elastic*: it blocks only until at least one slot is free,
/// then grants min(Want, free) — a request never deadlocks waiting for its
/// full ask, it just runs narrower. Grants are served FIFO (a ticket queue),
/// so a wide request cannot be starved by a stream of narrow ones.
class JobBudget {
public:
  /// RAII grant: releases its slots on destruction. Movable, not copyable.
  class Lease {
  public:
    Lease() = default;
    Lease(JobBudget *Owner, unsigned Slots) : Owner(Owner), Slots(Slots) {}
    Lease(Lease &&O) noexcept : Owner(O.Owner), Slots(O.Slots) {
      O.Owner = nullptr;
      O.Slots = 0;
    }
    Lease &operator=(Lease &&O) noexcept {
      if (this != &O) {
        reset();
        Owner = O.Owner;
        Slots = O.Slots;
        O.Owner = nullptr;
        O.Slots = 0;
      }
      return *this;
    }
    ~Lease() { reset(); }
    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;

    /// Number of worker slots granted (0 for an empty lease).
    unsigned slots() const { return Slots; }
    explicit operator bool() const { return Slots > 0; }

    /// Returns the slots early (idempotent).
    void reset();

  private:
    JobBudget *Owner = nullptr;
    unsigned Slots = 0;
  };

  /// A budget of \p Total slots (clamped to at least 1).
  explicit JobBudget(unsigned Total)
      : Total(Total == 0 ? 1 : Total), Free(this->Total) {}

  /// Leases up to \p Want slots (at least 1), blocking while the budget is
  /// exhausted or earlier callers are still queued. \p Want == 0 asks for 1.
  Lease acquire(unsigned Want);

  unsigned total() const { return Total; }
  unsigned available() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Free;
  }

private:
  friend class Lease;
  void release(unsigned Slots);

  const unsigned Total;
  mutable std::mutex Mu;
  std::condition_variable FreeCv;
  unsigned Free;
  uint64_t NextTicket = 0;    ///< next ticket to hand out
  uint64_t ServingTicket = 0; ///< ticket currently allowed to acquire
};

} // namespace support
} // namespace expresso

#endif // EXPRESSO_SUPPORT_THREADPOOL_H
