//===- support/CancelToken.h - Cooperative cancellation ---------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative cancellation/deadline token. One token is shared by every
/// participant in a placement run — the driver loops in placeSignals, the
/// Houdini fixpoint, abduction, and the solver backends — each of which
/// polls expired() at its natural granularity (a Hoare check for the outer
/// loops, a theory round for MiniSmt) and bails out conservatively.
///
/// Two trigger paths:
///
///   * a *deadline* (steady-clock instant) makes expired() flip on its own
///     — cheap to poll, no thread ever blocks on it;
///   * an explicit cancel() additionally fires registered interrupt hooks,
///     which is how a live z3::context gets interrupted mid-solve instead
///     of waiting for its next poll point.
///
/// Hooks fire under the token's mutex; registerInterrupt() on an
/// already-cancelled token fires the hook immediately so a solve that
/// started after cancellation still gets interrupted. unregisterInterrupt()
/// blocks until any in-flight firing completes, so a hook's captures may be
/// destroyed the moment it returns.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SUPPORT_CANCELTOKEN_H
#define EXPRESSO_SUPPORT_CANCELTOKEN_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>

namespace expresso {
namespace support {

class CancelToken {
public:
  using InterruptHook = std::function<void()>;

  CancelToken() = default;
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// Arms the deadline \p Seconds from now. Call before sharing the token;
  /// a non-positive value cancels immediately.
  void setDeadlineAfterSeconds(double Seconds);

  /// Explicit cancellation: flips expired() and fires every registered
  /// interrupt hook exactly once. Idempotent.
  void cancel();

  /// True once cancel() was called or the deadline passed. The hot-path
  /// poll: one relaxed load plus (when a deadline is armed) one clock read.
  bool expired() const {
    if (Cancelled.load(std::memory_order_relaxed))
      return true;
    int64_t D = DeadlineNs.load(std::memory_order_relaxed);
    return D != 0 && nowNs() >= D;
  }

  /// Seconds until the deadline; a large sentinel when none is armed, and
  /// 0 once expired. Used to derive per-query solver timeouts.
  double remainingSeconds() const;

  /// Registers \p H to fire on cancel(); returns a handle for
  /// unregisterInterrupt. Fires \p H immediately when already cancelled.
  uint64_t registerInterrupt(InterruptHook H);

  /// Removes a hook. Safe to call concurrently with cancel(); returns only
  /// once no firing of this hook is in flight.
  void unregisterInterrupt(uint64_t Handle);

private:
  static int64_t nowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> Cancelled{false};
  /// Deadline as steady-clock nanoseconds; 0 means "no deadline".
  std::atomic<int64_t> DeadlineNs{0};

  std::mutex Mu; // guards Hooks; cancel() fires hooks while holding it
  std::map<uint64_t, InterruptHook> Hooks;
  uint64_t NextHandle = 1;
};

/// RAII registration of an interrupt hook against a (possibly null) token.
class ScopedInterrupt {
public:
  ScopedInterrupt(CancelToken *T, CancelToken::InterruptHook H) : Tok(T) {
    if (Tok)
      Handle = Tok->registerInterrupt(std::move(H));
  }
  ~ScopedInterrupt() {
    if (Tok && Handle)
      Tok->unregisterInterrupt(Handle);
  }
  ScopedInterrupt(const ScopedInterrupt &) = delete;
  ScopedInterrupt &operator=(const ScopedInterrupt &) = delete;

private:
  CancelToken *Tok = nullptr;
  uint64_t Handle = 0;
};

} // namespace support
} // namespace expresso

#endif // EXPRESSO_SUPPORT_CANCELTOKEN_H
