//===- support/ThreadPool.cpp - Fixed-size worker pool ------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace expresso;
using namespace expresso::support;

ThreadPool::ThreadPool(unsigned Workers) {
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::workerMain(unsigned Id) {
  uint64_t SeenSeq = 0;
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    WorkCv.wait(Lock, [&] { return ShuttingDown || BatchSeq != SeenSeq; });
    if (ShuttingDown)
      return;
    SeenSeq = BatchSeq;
    const auto *TheBody = Body;
    size_t Count = BatchCount;
    Lock.unlock();
    for (size_t I = NextIndex.fetch_add(1, std::memory_order_relaxed);
         I < Count; I = NextIndex.fetch_add(1, std::memory_order_relaxed))
      (*TheBody)(Id, I);
    Lock.lock();
    if (--ActiveWorkers == 0)
      DoneCv.notify_all();
  }
}

void ThreadPool::parallelFor(
    size_t Count,
    const std::function<void(unsigned WorkerId, size_t Index)> &Body) {
  if (Count == 0)
    return;
  if (Threads.empty()) {
    for (size_t I = 0; I < Count; ++I)
      Body(0, I);
    return;
  }
  std::unique_lock<std::mutex> Lock(Mu);
  this->Body = &Body;
  BatchCount = Count;
  NextIndex.store(0, std::memory_order_relaxed);
  ActiveWorkers = size();
  ++BatchSeq;
  WorkCv.notify_all();
  // Every worker joins the batch exactly once (even if only to find the
  // cursor exhausted), so ActiveWorkers reaching zero means all items ran.
  DoneCv.wait(Lock, [&] { return ActiveWorkers == 0; });
  this->Body = nullptr;
}
