//===- support/ThreadPool.cpp - Fixed-size worker pool ------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace expresso;
using namespace expresso::support;

ThreadPool::ThreadPool(unsigned Workers) {
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::workerMain(unsigned Id) {
  uint64_t SeenSeq = 0;
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    WorkCv.wait(Lock, [&] { return ShuttingDown || BatchSeq != SeenSeq; });
    if (ShuttingDown)
      return;
    SeenSeq = BatchSeq;
    const auto *TheBody = Body;
    size_t Count = BatchCount;
    Lock.unlock();
    for (size_t I = NextIndex.fetch_add(1, std::memory_order_relaxed);
         I < Count; I = NextIndex.fetch_add(1, std::memory_order_relaxed))
      (*TheBody)(Id, I);
    Lock.lock();
    if (--ActiveWorkers == 0)
      DoneCv.notify_all();
  }
}

void ThreadPool::parallelFor(
    size_t Count,
    const std::function<void(unsigned WorkerId, size_t Index)> &Body) {
  if (Count == 0)
    return;
  if (Threads.empty()) {
    for (size_t I = 0; I < Count; ++I)
      Body(0, I);
    return;
  }
  std::unique_lock<std::mutex> Lock(Mu);
  this->Body = &Body;
  BatchCount = Count;
  NextIndex.store(0, std::memory_order_relaxed);
  ActiveWorkers = size();
  ++BatchSeq;
  WorkCv.notify_all();
  // Every worker joins the batch exactly once (even if only to find the
  // cursor exhausted), so ActiveWorkers reaching zero means all items ran.
  DoneCv.wait(Lock, [&] { return ActiveWorkers == 0; });
  this->Body = nullptr;
}

//===----------------------------------------------------------------------===//
// JobBudget
//===----------------------------------------------------------------------===//

JobBudget::Lease JobBudget::acquire(unsigned Want) {
  if (Want == 0)
    Want = 1;
  std::unique_lock<std::mutex> Lock(Mu);
  uint64_t Ticket = NextTicket++;
  // FIFO: wait until it is this caller's turn AND a slot is free. The
  // elastic grant (min(Want, Free), never zero) means the head of the queue
  // always makes progress as soon as anything is released.
  FreeCv.wait(Lock, [&] { return Ticket == ServingTicket && Free > 0; });
  unsigned Granted = Want < Free ? Want : Free;
  Free -= Granted;
  ++ServingTicket;
  // Wake the next ticket holder (it may still find Free == 0 and re-wait).
  FreeCv.notify_all();
  return Lease(this, Granted);
}

void JobBudget::release(unsigned Slots) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Free += Slots;
  }
  FreeCv.notify_all();
}

void JobBudget::Lease::reset() {
  if (Owner && Slots > 0)
    Owner->release(Slots);
  Owner = nullptr;
  Slots = 0;
}
