//===- logic/TermOps.cpp - Traversal, substitution, evaluation -------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "logic/TermOps.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace expresso;
using namespace expresso::logic;

//===----------------------------------------------------------------------===//
// Free variables
//===----------------------------------------------------------------------===//

std::vector<const Term *> logic::freeVars(const Term *T) {
  std::vector<const Term *> Result;
  std::unordered_set<const Term *> Seen;
  std::vector<const Term *> Work{T};
  while (!Work.empty()) {
    const Term *Cur = Work.back();
    Work.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    if (Cur->isVar()) {
      Result.push_back(Cur);
      continue;
    }
    for (const Term *Op : Cur->operands())
      Work.push_back(Op);
  }
  std::sort(Result.begin(), Result.end(),
            [](const Term *A, const Term *B) { return A->id() < B->id(); });
  return Result;
}

bool logic::occurs(const Term *T, const Term *Var) {
  std::unordered_set<const Term *> Seen;
  std::vector<const Term *> Work{T};
  while (!Work.empty()) {
    const Term *Cur = Work.back();
    Work.pop_back();
    if (Cur == Var)
      return true;
    if (!Seen.insert(Cur).second)
      continue;
    for (const Term *Op : Cur->operands())
      Work.push_back(Op);
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

namespace {

const Term *substImpl(TermContext &C, const Term *T, const Substitution &Subst,
                      std::unordered_map<const Term *, const Term *> &Memo) {
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;

  const Term *Result = nullptr;
  if (T->isVar()) {
    auto SIt = Subst.find(T);
    Result = SIt == Subst.end() ? T : SIt->second;
  } else if (T->numOperands() == 0) {
    Result = T;
  } else {
    std::vector<const Term *> NewOps;
    NewOps.reserve(T->numOperands());
    bool Changed = false;
    for (const Term *Op : T->operands()) {
      const Term *NewOp = substImpl(C, Op, Subst, Memo);
      Changed |= NewOp != Op;
      NewOps.push_back(NewOp);
    }
    if (!Changed) {
      Result = T;
    } else {
      switch (T->kind()) {
      case TermKind::Add:
        Result = C.add(std::move(NewOps));
        break;
      case TermKind::Mul:
        Result = C.mul(NewOps[0], NewOps[1]);
        break;
      case TermKind::Ite:
        Result = C.ite(NewOps[0], NewOps[1], NewOps[2]);
        break;
      case TermKind::Select:
        Result = C.select(NewOps[0], NewOps[1]);
        break;
      case TermKind::Store:
        Result = C.store(NewOps[0], NewOps[1], NewOps[2]);
        break;
      case TermKind::Eq:
        Result = C.eq(NewOps[0], NewOps[1]);
        break;
      case TermKind::Le:
        Result = C.le(NewOps[0], NewOps[1]);
        break;
      case TermKind::Lt:
        Result = C.lt(NewOps[0], NewOps[1]);
        break;
      case TermKind::Divides:
        Result = C.divides(T->intValue(), NewOps[0]);
        break;
      case TermKind::Not:
        Result = C.not_(NewOps[0]);
        break;
      case TermKind::And:
        Result = C.and_(std::move(NewOps));
        break;
      case TermKind::Or:
        Result = C.or_(std::move(NewOps));
        break;
      default:
        assert(false && "unexpected term kind in substitution");
      }
    }
  }
  Memo.emplace(T, Result);
  return Result;
}

} // namespace

const Term *logic::substitute(TermContext &C, const Term *T,
                              const Substitution &Subst) {
  if (Subst.empty())
    return T;
#ifndef NDEBUG
  for (const auto &[Var, Rep] : Subst) {
    assert(Var->isVar() && "substitution key must be a variable");
    assert(Var->sort() == Rep->sort() && "substitution must preserve sorts");
  }
#endif
  std::unordered_map<const Term *, const Term *> Memo;
  return substImpl(C, T, Subst, Memo);
}

const Term *logic::substitute(TermContext &C, const Term *T, const Term *Var,
                              const Term *Replacement) {
  Substitution S;
  S.emplace(Var, Replacement);
  return substitute(C, T, S);
}

//===----------------------------------------------------------------------===//
// Concrete evaluation
//===----------------------------------------------------------------------===//

Value logic::evaluate(const Term *T, const Assignment &Asg) {
  switch (T->kind()) {
  case TermKind::IntConst:
    return Value::ofInt(T->intValue());
  case TermKind::BoolConst:
    return Value::ofBool(T->boolValue());
  case TermKind::Var: {
    auto It = Asg.find(T->varName());
    assert(It != Asg.end() && "unbound variable in evaluation");
    assert(It->second.S == T->sort() && "assignment sort mismatch");
    return It->second;
  }
  case TermKind::Add: {
    int64_t Sum = 0;
    for (const Term *Op : T->operands())
      Sum += evaluate(Op, Asg).asInt();
    return Value::ofInt(Sum);
  }
  case TermKind::Mul:
    return Value::ofInt(evaluate(T->operand(0), Asg).asInt() *
                        evaluate(T->operand(1), Asg).asInt());
  case TermKind::Ite:
    return evaluate(T->operand(0), Asg).asBool() ? evaluate(T->operand(1), Asg)
                                                 : evaluate(T->operand(2), Asg);
  case TermKind::Select: {
    Value Arr = evaluate(T->operand(0), Asg);
    int64_t Raw = Arr.arrayAt(evaluate(T->operand(1), Asg).asInt());
    return elementSort(T->operand(0)->sort()) == Sort::Bool
               ? Value::ofBool(Raw != 0)
               : Value::ofInt(Raw);
  }
  case TermKind::Store: {
    Value Arr = evaluate(T->operand(0), Asg);
    int64_t Idx = evaluate(T->operand(1), Asg).asInt();
    Value Elem = evaluate(T->operand(2), Asg);
    Arr.A[Idx] = Elem.I;
    return Arr;
  }
  case TermKind::Eq: {
    Value A = evaluate(T->operand(0), Asg);
    Value B = evaluate(T->operand(1), Asg);
    return Value::ofBool(A.I == B.I);
  }
  case TermKind::Le:
    return Value::ofBool(evaluate(T->operand(0), Asg).asInt() <=
                         evaluate(T->operand(1), Asg).asInt());
  case TermKind::Lt:
    return Value::ofBool(evaluate(T->operand(0), Asg).asInt() <
                         evaluate(T->operand(1), Asg).asInt());
  case TermKind::Divides: {
    int64_t V = evaluate(T->operand(0), Asg).asInt();
    int64_t D = T->intValue();
    // Mathematical divisibility: works for negative V too.
    return Value::ofBool(((V % D) + D) % D == 0);
  }
  case TermKind::Not:
    return Value::ofBool(!evaluate(T->operand(0), Asg).asBool());
  case TermKind::And: {
    for (const Term *Op : T->operands())
      if (!evaluate(Op, Asg).asBool())
        return Value::ofBool(false);
    return Value::ofBool(true);
  }
  case TermKind::Or: {
    for (const Term *Op : T->operands())
      if (evaluate(Op, Asg).asBool())
        return Value::ofBool(true);
    return Value::ofBool(false);
  }
  }
  assert(false && "unhandled term kind");
  return Value::ofInt(0);
}

bool logic::evaluateBool(const Term *T, const Assignment &Asg) {
  return evaluate(T, Asg).asBool();
}

//===----------------------------------------------------------------------===//
// Negation normal form / DNF
//===----------------------------------------------------------------------===//

namespace {

const Term *expandBoolEqImpl(TermContext &C, const Term *T,
                             std::unordered_map<const Term *, const Term *> &Memo) {
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;
  const Term *Result;
  if (T->kind() == TermKind::Eq && T->operand(0)->sort() == Sort::Bool) {
    const Term *A = expandBoolEqImpl(C, T->operand(0), Memo);
    const Term *B = expandBoolEqImpl(C, T->operand(1), Memo);
    Result = C.or_(C.and_(A, B), C.and_(C.not_(A), C.not_(B)));
  } else if (T->sort() == Sort::Bool && T->numOperands() != 0 &&
             T->kind() != TermKind::Select && T->kind() != TermKind::Le &&
             T->kind() != TermKind::Lt && T->kind() != TermKind::Eq &&
             T->kind() != TermKind::Divides) {
    std::vector<const Term *> Ops;
    Ops.reserve(T->numOperands());
    bool Changed = false;
    for (const Term *Op : T->operands()) {
      const Term *NewOp = expandBoolEqImpl(C, Op, Memo);
      Changed |= NewOp != Op;
      Ops.push_back(NewOp);
    }
    if (!Changed) {
      Result = T;
    } else if (T->kind() == TermKind::Not) {
      Result = C.not_(Ops[0]);
    } else if (T->kind() == TermKind::And) {
      Result = C.and_(std::move(Ops));
    } else {
      assert(T->kind() == TermKind::Or);
      Result = C.or_(std::move(Ops));
    }
  } else {
    // Atoms (including int equalities and bool selects) pass through; iff
    // cannot hide below them except inside integer ite conditions, which the
    // solver lifts separately.
    Result = T;
  }
  Memo.emplace(T, Result);
  return Result;
}

const Term *nnfImpl(TermContext &C, const Term *T, bool Negated) {
  switch (T->kind()) {
  case TermKind::Not:
    return nnfImpl(C, T->operand(0), !Negated);
  case TermKind::And: {
    std::vector<const Term *> Ops;
    Ops.reserve(T->numOperands());
    for (const Term *Op : T->operands())
      Ops.push_back(nnfImpl(C, Op, Negated));
    return Negated ? C.or_(std::move(Ops)) : C.and_(std::move(Ops));
  }
  case TermKind::Or: {
    std::vector<const Term *> Ops;
    Ops.reserve(T->numOperands());
    for (const Term *Op : T->operands())
      Ops.push_back(nnfImpl(C, Op, Negated));
    return Negated ? C.and_(std::move(Ops)) : C.or_(std::move(Ops));
  }
  case TermKind::Le:
    // not (a <= b)  =>  b + 1 <= a
    if (Negated)
      return C.le(C.add(T->operand(1), C.getOne()), T->operand(0));
    return T;
  case TermKind::Lt:
    // Canonicalize a < b to a + 1 <= b; not (a < b) => b <= a.
    if (Negated)
      return C.le(T->operand(1), T->operand(0));
    return C.le(C.add(T->operand(0), C.getOne()), T->operand(1));
  case TermKind::Eq:
    // not (a == b) over integers => a < b or b < a; re-run NNF so the strict
    // comparisons canonicalize to <=. Boolean equalities keep their Not.
    if (T->operand(0)->sort() == Sort::Int && Negated)
      return nnfImpl(C,
                     C.or_(C.lt(T->operand(0), T->operand(1)),
                           C.lt(T->operand(1), T->operand(0))),
                     false);
    return Negated ? C.not_(T) : T;
  default:
    // Atoms: bool vars, bool selects, divisibility, constants.
    return Negated ? C.not_(T) : T;
  }
}

} // namespace

const Term *logic::expandBoolEq(TermContext &C, const Term *T) {
  assert(T->sort() == Sort::Bool);
  std::unordered_map<const Term *, const Term *> Memo;
  return expandBoolEqImpl(C, T, Memo);
}

const Term *logic::toNNF(TermContext &C, const Term *T) {
  assert(T->sort() == Sort::Bool && "NNF requires a boolean term");
  return nnfImpl(C, T, false);
}

std::vector<std::vector<const Term *>> logic::toDNF(TermContext &C,
                                                    const Term *T) {
  switch (T->kind()) {
  case TermKind::Or: {
    std::vector<std::vector<const Term *>> Result;
    for (const Term *Op : T->operands()) {
      auto Sub = toDNF(C, Op);
      Result.insert(Result.end(), Sub.begin(), Sub.end());
    }
    return Result;
  }
  case TermKind::And: {
    std::vector<std::vector<const Term *>> Result{{}};
    for (const Term *Op : T->operands()) {
      auto Sub = toDNF(C, Op);
      std::vector<std::vector<const Term *>> Next;
      Next.reserve(Result.size() * Sub.size());
      for (const auto &Left : Result) {
        for (const auto &Right : Sub) {
          std::vector<const Term *> Merged = Left;
          Merged.insert(Merged.end(), Right.begin(), Right.end());
          Next.push_back(std::move(Merged));
        }
      }
      Result = std::move(Next);
    }
    return Result;
  }
  default:
    return {{T}};
  }
}

//===----------------------------------------------------------------------===//
// Cross-context transfer
//===----------------------------------------------------------------------===//

namespace {

const Term *transferRec(TermContext &Dst, const Term *T,
                        std::unordered_map<const Term *, const Term *> &Memo) {
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;
  std::vector<const Term *> Ops;
  Ops.reserve(T->numOperands());
  for (const Term *Op : T->operands())
    Ops.push_back(transferRec(Dst, Op, Memo));
  int64_t IntVal = 0;
  std::string Name;
  switch (T->kind()) {
  case TermKind::Var:
    Name = T->varName();
    break;
  case TermKind::IntConst:
  case TermKind::BoolConst:
  case TermKind::Divides:
    IntVal = T->intValue();
    break;
  default:
    break;
  }
  const Term *R = Dst.internRaw(T->kind(), T->sort(), IntVal, std::move(Name),
                                std::move(Ops));
  Memo.emplace(T, R);
  return R;
}

} // namespace

const Term *logic::transferTerm(TermContext &Dst, const Term *T) {
  std::unordered_map<const Term *, const Term *> Memo;
  return transferRec(Dst, T, Memo);
}
