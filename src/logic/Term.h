//===- logic/Term.h - Hash-consed logical terms -----------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, hash-consed terms of quantifier-free linear integer arithmetic
/// with booleans and integer-indexed arrays. Every verification condition,
/// guard, monitor invariant, and abduced predicate in the system is a `Term`.
///
/// Terms are interned in a `TermContext`: structurally equal terms are the
/// same pointer, so pointer equality is semantic-literal equality and terms
/// can be used as map keys. Smart constructors perform light normalization
/// (constant folding, flattening, operand sorting for commutative nodes) so
/// that trivially equal formulas coincide.
///
/// Lowered forms (no dedicated node kinds):
///   a - b      => a + (-1)*b          -a    => (-1)*a
///   a != b     => not (a = b)         a > b => b < a,  a >= b => b <= a
///   a ==> b    => (not a) or b        iff   => bool equality
///   bool ite   => (c and a) or (not c and b)
///   select(store(A,i,v), j) => ite(i = j, v, select(A, j))
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_LOGIC_TERM_H
#define EXPRESSO_LOGIC_TERM_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace expresso {
namespace logic {

/// Sort (type) of a term.
enum class Sort : uint8_t { Int, Bool, IntArray, BoolArray };

/// Returns the element sort of an array sort.
inline Sort elementSort(Sort S) {
  assert(S == Sort::IntArray || S == Sort::BoolArray);
  return S == Sort::IntArray ? Sort::Int : Sort::Bool;
}

/// Returns the array sort holding elements of \p Elem.
inline Sort arraySortOf(Sort Elem) {
  assert(Elem == Sort::Int || Elem == Sort::Bool);
  return Elem == Sort::Int ? Sort::IntArray : Sort::BoolArray;
}

const char *sortName(Sort S);

/// Node kinds of the term DAG. See the file comment for lowered sugar.
enum class TermKind : uint8_t {
  IntConst, ///< 64-bit integer literal (IntVal)
  BoolConst,///< true/false (IntVal is 0/1)
  Var,      ///< named variable of any sort
  Add,      ///< n-ary integer sum
  Mul,      ///< coefficient * term; Ops[0] is always an IntConst
  Ite,      ///< integer-sorted if-then-else (cond, then, else)
  Select,   ///< array read (array, index)
  Store,    ///< array write (array, index, value)
  Eq,       ///< equality over Int or Bool operands
  Le,       ///< integer <=
  Lt,       ///< integer <
  Divides,  ///< IntVal | Ops[0], with IntVal >= 1
  Not,      ///< boolean negation
  And,      ///< n-ary conjunction
  Or,       ///< n-ary disjunction
};

const char *kindName(TermKind K);

/// An immutable node in the hash-consed term DAG. Create via TermContext.
class Term {
public:
  TermKind kind() const { return Kind; }
  Sort sort() const { return TheSort; }

  /// Stable creation index; used for deterministic operand ordering.
  uint32_t id() const { return Id; }

  /// Structural hash, computed once at intern time. Depends only on the
  /// term's shape (kind, sort, payload, operand hashes) — never on pointer
  /// values or creation order — so it is stable across runs and identical
  /// for structurally equal terms built in different TermContexts. Used by
  /// solver::CachingSolver to memoize checkSat results.
  uint64_t structuralHash() const { return StructHash; }

  /// Value of an IntConst / BoolConst, or the divisor of a Divides node.
  int64_t intValue() const {
    assert(Kind == TermKind::IntConst || Kind == TermKind::BoolConst ||
           Kind == TermKind::Divides);
    return IntVal;
  }

  bool boolValue() const {
    assert(Kind == TermKind::BoolConst);
    return IntVal != 0;
  }

  const std::string &varName() const {
    assert(Kind == TermKind::Var);
    return Name;
  }

  const std::vector<const Term *> &operands() const { return Ops; }
  const Term *operand(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }
  unsigned numOperands() const { return static_cast<unsigned>(Ops.size()); }

  bool isIntConst() const { return Kind == TermKind::IntConst; }
  bool isBoolConst() const { return Kind == TermKind::BoolConst; }
  bool isVar() const { return Kind == TermKind::Var; }
  bool isTrue() const { return isBoolConst() && IntVal != 0; }
  bool isFalse() const { return isBoolConst() && IntVal == 0; }
  bool isAtomKind() const {
    return Kind == TermKind::Eq || Kind == TermKind::Le ||
           Kind == TermKind::Lt || Kind == TermKind::Divides ||
           Kind == TermKind::Var || Kind == TermKind::BoolConst ||
           Kind == TermKind::Select;
  }

  /// Renders this term with the infix pretty-printer (see Printer.h).
  std::string str() const;

private:
  friend class TermContext;
  Term(TermKind K, Sort S, uint32_t Id, int64_t IntVal, std::string Name,
       std::vector<const Term *> Ops)
      : Kind(K), TheSort(S), Id(Id), IntVal(IntVal), Name(std::move(Name)),
        Ops(std::move(Ops)) {}

  TermKind Kind;
  Sort TheSort;
  uint32_t Id;
  int64_t IntVal;
  std::string Name;
  std::vector<const Term *> Ops;
  uint64_t StructHash = 0; ///< set by TermContext::intern
};

/// Hasher for term-keyed hash maps that uses the precomputed structural
/// hash. Key equality stays pointer equality (sound within one context,
/// where interning makes structural and pointer equality coincide).
struct TermStructuralHash {
  size_t operator()(const Term *T) const {
    return static_cast<size_t>(T->structuralHash());
  }
};

/// Deterministic strict order for term-keyed ordered containers: creation
/// index, never pointer value. Pointer order varies with heap history (two
/// analyses in one process see different layouts), which leaks into solver
/// tableau column order and greedy-minimization order and makes results
/// irreproducible; creation order is a pure function of the construction
/// sequence. Use this instead of the default `std::less<const Term *>` for
/// any map/set whose iteration order can reach an observable result.
struct TermIdLess {
  bool operator()(const Term *A, const Term *B) const {
    return A->id() < B->id();
  }
};

/// Owns and interns terms. All terms built from one context may be mixed
/// freely; terms from different contexts must never meet.
///
/// Thread safety: interning (and therefore every smart constructor) is
/// guarded by an internal mutex, so concurrent term construction from
/// multiple threads is safe — the parallel placement engine builds VCs on
/// worker threads, and MiniSmt interns auxiliary terms mid-checkSat. Terms
/// themselves are immutable after interning and may be read without
/// synchronization. Note that freshVar names depend on the global counter,
/// so fresh-variable *names* are interleaving-dependent under concurrency
/// (never colliding, and never semantically significant).
class TermContext {
public:
  TermContext();
  TermContext(const TermContext &) = delete;
  TermContext &operator=(const TermContext &) = delete;

  //===--------------------------------------------------------------------===
  // Leaves
  //===--------------------------------------------------------------------===

  const Term *intConst(int64_t V);
  const Term *boolConst(bool B);
  const Term *getTrue() { return True; }
  const Term *getFalse() { return False; }
  const Term *getZero() { return Zero; }
  const Term *getOne() { return One; }

  /// Interns a variable. Re-requesting the same name must use the same sort.
  const Term *var(const std::string &Name, Sort S);

  /// Returns the existing variable named \p Name, or null if none was made.
  const Term *lookupVar(const std::string &Name) const;

  /// Creates a fresh variable with a unique suffix derived from \p Hint.
  const Term *freshVar(const std::string &Hint, Sort S);

  //===--------------------------------------------------------------------===
  // Integer arithmetic
  //===--------------------------------------------------------------------===

  const Term *add(std::vector<const Term *> Ts);
  const Term *add(const Term *A, const Term *B) { return add({A, B}); }
  const Term *sub(const Term *A, const Term *B);
  const Term *neg(const Term *A);
  /// Linear multiplication by a constant coefficient.
  const Term *mulConst(int64_t Coeff, const Term *T);
  /// General product; at least one side must be an integer constant.
  const Term *mul(const Term *A, const Term *B);
  const Term *ite(const Term *Cond, const Term *Then, const Term *Else);

  //===--------------------------------------------------------------------===
  // Arrays
  //===--------------------------------------------------------------------===

  const Term *select(const Term *Array, const Term *Index);
  const Term *store(const Term *Array, const Term *Index, const Term *Value);

  //===--------------------------------------------------------------------===
  // Atoms
  //===--------------------------------------------------------------------===

  const Term *eq(const Term *A, const Term *B);
  const Term *ne(const Term *A, const Term *B);
  const Term *le(const Term *A, const Term *B);
  const Term *lt(const Term *A, const Term *B);
  const Term *ge(const Term *A, const Term *B) { return le(B, A); }
  const Term *gt(const Term *A, const Term *B) { return lt(B, A); }
  /// Divisibility constraint Divisor | T with Divisor >= 1.
  const Term *divides(int64_t Divisor, const Term *T);

  //===--------------------------------------------------------------------===
  // Boolean structure
  //===--------------------------------------------------------------------===

  const Term *not_(const Term *A);
  const Term *and_(std::vector<const Term *> Ts);
  const Term *and_(const Term *A, const Term *B) { return and_({A, B}); }
  const Term *or_(std::vector<const Term *> Ts);
  const Term *or_(const Term *A, const Term *B) { return or_({A, B}); }
  const Term *implies(const Term *A, const Term *B);
  const Term *iff(const Term *A, const Term *B);

  //===--------------------------------------------------------------------===
  // Deserialization
  //===--------------------------------------------------------------------===

  /// Re-interns a node with exactly the given shape, preserving operand
  /// order. The smart constructors normalize (flatten, fold, re-sort
  /// commutative operands by creation id), which is wrong for terms loaded
  /// from the persistent store: those were already normalized when first
  /// built, and their operand order is part of the canonical serialized
  /// shape — re-sorting by the *loading* context's ids would change the
  /// structural hash. Callers (persist::TermReader) must validate shapes
  /// before interning; this method only routes leaves through the proper
  /// paths (Var registration, Int/Bool singletons) and dedups against the
  /// existing intern table.
  const Term *internRaw(TermKind K, Sort S, int64_t IntVal, std::string Name,
                        std::vector<const Term *> Ops);

  /// Number of distinct terms interned so far (for tests/stats).
  size_t numTerms() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Arena.size();
  }

private:
  const Term *intern(TermKind K, Sort S, int64_t IntVal, std::string Name,
                     std::vector<const Term *> Ops);
  /// Interning body; requires Mu to be held.
  const Term *internLocked(TermKind K, Sort S, int64_t IntVal,
                           std::string Name, std::vector<const Term *> Ops);

  struct Key {
    TermKind Kind;
    Sort S;
    int64_t IntVal;
    std::string Name;
    std::vector<const Term *> Ops;
    bool operator==(const Key &O) const {
      return Kind == O.Kind && S == O.S && IntVal == O.IntVal &&
             Name == O.Name && Ops == O.Ops;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const;
  };

  /// Guards Arena, Interned, VarsByName, NextId, and FreshCounter.
  mutable std::mutex Mu;
  std::vector<std::unique_ptr<Term>> Arena;
  std::unordered_map<Key, const Term *, KeyHash> Interned;
  std::unordered_map<std::string, const Term *> VarsByName;
  uint32_t NextId = 0;
  uint64_t FreshCounter = 0;
  const Term *True = nullptr;
  const Term *False = nullptr;
  const Term *Zero = nullptr;
  const Term *One = nullptr;
};

} // namespace logic
} // namespace expresso

#endif // EXPRESSO_LOGIC_TERM_H
