//===- logic/Term.h - Hash-consed logical terms -----------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, hash-consed terms of quantifier-free linear integer arithmetic
/// with booleans and integer-indexed arrays. Every verification condition,
/// guard, monitor invariant, and abduced predicate in the system is a `Term`.
///
/// Terms are interned in a `TermContext`: structurally equal terms are the
/// same pointer, so pointer equality is semantic-literal equality and terms
/// can be used as map keys. Smart constructors perform light normalization
/// (constant folding, flattening, operand sorting for commutative nodes) so
/// that trivially equal formulas coincide.
///
/// Lowered forms (no dedicated node kinds):
///   a - b      => a + (-1)*b          -a    => (-1)*a
///   a != b     => not (a = b)         a > b => b < a,  a >= b => b <= a
///   a ==> b    => (not a) or b        iff   => bool equality
///   bool ite   => (c and a) or (not c and b)
///   select(store(A,i,v), j) => ite(i = j, v, select(A, j))
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_LOGIC_TERM_H
#define EXPRESSO_LOGIC_TERM_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace expresso {
namespace logic {

/// Sort (type) of a term.
enum class Sort : uint8_t { Int, Bool, IntArray, BoolArray };

/// Returns the element sort of an array sort.
inline Sort elementSort(Sort S) {
  assert(S == Sort::IntArray || S == Sort::BoolArray);
  return S == Sort::IntArray ? Sort::Int : Sort::Bool;
}

/// Returns the array sort holding elements of \p Elem.
inline Sort arraySortOf(Sort Elem) {
  assert(Elem == Sort::Int || Elem == Sort::Bool);
  return Elem == Sort::Int ? Sort::IntArray : Sort::BoolArray;
}

const char *sortName(Sort S);

/// Node kinds of the term DAG. See the file comment for lowered sugar.
enum class TermKind : uint8_t {
  IntConst, ///< 64-bit integer literal (IntVal)
  BoolConst,///< true/false (IntVal is 0/1)
  Var,      ///< named variable of any sort
  Add,      ///< n-ary integer sum
  Mul,      ///< coefficient * term; Ops[0] is always an IntConst
  Ite,      ///< integer-sorted if-then-else (cond, then, else)
  Select,   ///< array read (array, index)
  Store,    ///< array write (array, index, value)
  Eq,       ///< equality over Int or Bool operands
  Le,       ///< integer <=
  Lt,       ///< integer <
  Divides,  ///< IntVal | Ops[0], with IntVal >= 1
  Not,      ///< boolean negation
  And,      ///< n-ary conjunction
  Or,       ///< n-ary disjunction
};

const char *kindName(TermKind K);

/// An immutable node in the hash-consed term DAG. Create via TermContext.
///
/// Nodes live in their context's bump-pointer arenas (one arena per intern
/// shard): allocation is an atomic offset bump, nodes are never moved or
/// freed individually, and the whole population is destroyed with the
/// context. Pointers to terms therefore stay valid for exactly the
/// context's lifetime — the same contract the old heap-allocated nodes had,
/// now without a per-node malloc on the interning fast path.
class Term {
public:
  TermKind kind() const { return Kind; }
  Sort sort() const { return TheSort; }

  /// Stable creation index; used for deterministic operand ordering. Ids
  /// are drawn from one context-global atomic counter at publish time, so a
  /// serial run assigns exactly the sequence the single-mutex interner did.
  /// Under concurrent interning a candidate that loses its publish race
  /// leaves a gap; order stays strict and unique either way.
  uint32_t id() const { return Id; }

  /// Structural hash, computed before intern-table insertion. Depends only
  /// on the term's shape (kind, sort, payload, operand hashes) — never on
  /// pointer values or creation order — so it is stable across runs and
  /// identical for structurally equal terms built in different
  /// TermContexts. It is also the intern table's probe hash and the shard
  /// selector. Used by solver::CachingSolver to memoize checkSat results.
  uint64_t structuralHash() const { return StructHash; }

  /// Value of an IntConst / BoolConst, or the divisor of a Divides node.
  int64_t intValue() const {
    assert(Kind == TermKind::IntConst || Kind == TermKind::BoolConst ||
           Kind == TermKind::Divides);
    return IntVal;
  }

  bool boolValue() const {
    assert(Kind == TermKind::BoolConst);
    return IntVal != 0;
  }

  const std::string &varName() const {
    assert(Kind == TermKind::Var);
    return Name;
  }

  const std::vector<const Term *> &operands() const { return Ops; }
  const Term *operand(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }
  unsigned numOperands() const { return static_cast<unsigned>(Ops.size()); }

  bool isIntConst() const { return Kind == TermKind::IntConst; }
  bool isBoolConst() const { return Kind == TermKind::BoolConst; }
  bool isVar() const { return Kind == TermKind::Var; }
  bool isTrue() const { return isBoolConst() && IntVal != 0; }
  bool isFalse() const { return isBoolConst() && IntVal == 0; }
  bool isAtomKind() const {
    return Kind == TermKind::Eq || Kind == TermKind::Le ||
           Kind == TermKind::Lt || Kind == TermKind::Divides ||
           Kind == TermKind::Var || Kind == TermKind::BoolConst ||
           Kind == TermKind::Select;
  }

  /// Renders this term with the infix pretty-printer (see Printer.h).
  std::string str() const;

private:
  friend class TermContext;
  Term(TermKind K, Sort S, uint32_t Id, uint64_t StructHash, int64_t IntVal,
       std::string Name, std::vector<const Term *> Ops)
      : Kind(K), TheSort(S), Id(Id), IntVal(IntVal), Name(std::move(Name)),
        Ops(std::move(Ops)), StructHash(StructHash) {}

  TermKind Kind;
  Sort TheSort;
  uint32_t Id;
  int64_t IntVal;
  std::string Name;
  std::vector<const Term *> Ops;
  uint64_t StructHash;
};

/// Hasher for term-keyed hash maps that uses the precomputed structural
/// hash. Key equality stays pointer equality (sound within one context,
/// where interning makes structural and pointer equality coincide).
struct TermStructuralHash {
  size_t operator()(const Term *T) const {
    return static_cast<size_t>(T->structuralHash());
  }
};

/// Deterministic strict order for term-keyed ordered containers: creation
/// index, never pointer value. Pointer order varies with heap history (two
/// analyses in one process see different layouts), which leaks into solver
/// tableau column order and greedy-minimization order and makes results
/// irreproducible; creation order is a pure function of the construction
/// sequence. Use this instead of the default `std::less<const Term *>` for
/// any map/set whose iteration order can reach an observable result.
struct TermIdLess {
  bool operator()(const Term *A, const Term *B) const {
    return A->id() < B->id();
  }
};

/// Owns and interns terms. All terms built from one context may be mixed
/// freely; terms from different contexts must never meet.
///
/// Thread safety: interning (and therefore every smart constructor) is safe
/// to call from any number of threads — the parallel placement engine
/// builds VCs on worker threads, and solver scratch contexts intern during
/// transferTerm. Unlike the original single-mutex design, the intern table
/// is sharded 16 ways by structural hash, and within a shard the *hit*
/// path (the overwhelming majority of hash-consing traffic) is entirely
/// lock-free: an atomic load of the shard's open-addressed table and a
/// linear probe over atomic bucket entries. Misses allocate the node from
/// the shard's bump-pointer arena and publish it with a bucket
/// compare-exchange; only table growth takes the shard's mutex, and only
/// variable-name registration (var/freshVar/lookupVar) shares a dedicated
/// name-map mutex. Terms themselves are immutable after publication and may
/// be read without synchronization.
///
/// Determinism: Term::id values come from one context-global counter,
/// claimed when a candidate node is built. A serial construction sequence
/// therefore yields exactly the id sequence the single-mutex interner
/// produced — byte-for-byte identical operand sorting, printing, and
/// canonical (TermCodec) bytes. Concurrent interning can interleave id
/// claims (and waste an id when two threads race to publish the same
/// structure), which is the same schedule-dependence the single mutex had;
/// everything observable downstream is already guarded against it (see
/// ARCHITECTURE.md, "Determinism argument"). Note that freshVar names
/// depend on the global counter, so fresh-variable *names* are
/// interleaving-dependent under concurrency (never colliding, and never
/// semantically significant).
class TermContext {
public:
  TermContext();
  ~TermContext();
  TermContext(const TermContext &) = delete;
  TermContext &operator=(const TermContext &) = delete;

  //===--------------------------------------------------------------------===
  // Leaves
  //===--------------------------------------------------------------------===

  const Term *intConst(int64_t V);
  const Term *boolConst(bool B);
  const Term *getTrue() { return True; }
  const Term *getFalse() { return False; }
  const Term *getZero() { return Zero; }
  const Term *getOne() { return One; }

  /// Interns a variable. Re-requesting the same name must use the same sort.
  const Term *var(const std::string &Name, Sort S);

  /// Returns the existing variable named \p Name, or null if none was made.
  const Term *lookupVar(const std::string &Name) const;

  /// Creates a fresh variable with a unique suffix derived from \p Hint.
  const Term *freshVar(const std::string &Hint, Sort S);

  //===--------------------------------------------------------------------===
  // Integer arithmetic
  //===--------------------------------------------------------------------===

  const Term *add(std::vector<const Term *> Ts);
  const Term *add(const Term *A, const Term *B) { return add({A, B}); }
  const Term *sub(const Term *A, const Term *B);
  const Term *neg(const Term *A);
  /// Linear multiplication by a constant coefficient.
  const Term *mulConst(int64_t Coeff, const Term *T);
  /// General product; at least one side must be an integer constant.
  const Term *mul(const Term *A, const Term *B);
  const Term *ite(const Term *Cond, const Term *Then, const Term *Else);

  //===--------------------------------------------------------------------===
  // Arrays
  //===--------------------------------------------------------------------===

  const Term *select(const Term *Array, const Term *Index);
  const Term *store(const Term *Array, const Term *Index, const Term *Value);

  //===--------------------------------------------------------------------===
  // Atoms
  //===--------------------------------------------------------------------===

  const Term *eq(const Term *A, const Term *B);
  const Term *ne(const Term *A, const Term *B);
  const Term *le(const Term *A, const Term *B);
  const Term *lt(const Term *A, const Term *B);
  const Term *ge(const Term *A, const Term *B) { return le(B, A); }
  const Term *gt(const Term *A, const Term *B) { return lt(B, A); }
  /// Divisibility constraint Divisor | T with Divisor >= 1.
  const Term *divides(int64_t Divisor, const Term *T);

  //===--------------------------------------------------------------------===
  // Boolean structure
  //===--------------------------------------------------------------------===

  const Term *not_(const Term *A);
  const Term *and_(std::vector<const Term *> Ts);
  const Term *and_(const Term *A, const Term *B) { return and_({A, B}); }
  const Term *or_(std::vector<const Term *> Ts);
  const Term *or_(const Term *A, const Term *B) { return or_({A, B}); }
  const Term *implies(const Term *A, const Term *B);
  const Term *iff(const Term *A, const Term *B);

  //===--------------------------------------------------------------------===
  // Deserialization
  //===--------------------------------------------------------------------===

  /// Re-interns a node with exactly the given shape, preserving operand
  /// order. The smart constructors normalize (flatten, fold, re-sort
  /// commutative operands by creation id), which is wrong for terms loaded
  /// from the persistent store: those were already normalized when first
  /// built, and their operand order is part of the canonical serialized
  /// shape — re-sorting by the *loading* context's ids would change the
  /// structural hash. Callers (persist::TermReader) must validate shapes
  /// before interning; this method only routes leaves through the proper
  /// paths (Var registration, Int/Bool singletons) and dedups against the
  /// existing intern table.
  const Term *internRaw(TermKind K, Sort S, int64_t IntVal, std::string Name,
                        std::vector<const Term *> Ops);

  /// Number of distinct terms interned so far (for tests/stats). Lock-free:
  /// sums the shards' publish counters.
  size_t numTerms() const {
    size_t N = 0;
    for (const Shard &Sh : Shards)
      N += Sh.Count.load(std::memory_order_acquire);
    return N;
  }

private:
  const Term *intern(TermKind K, Sort S, int64_t IntVal, std::string Name,
                     std::vector<const Term *> Ops);

  /// One open-addressed generation of a shard's intern table. Buckets hold
  /// published Term pointers; empty buckets are null. Entries are only ever
  /// added (terms are immortal within the context), so a null bucket
  /// terminates any probe. `Sealed` flips once, when the generation is
  /// being migrated to a larger successor; see internMiss for the
  /// writer-draining protocol.
  struct Table {
    explicit Table(size_t Cap)
        : Capacity(Cap), Slots(new std::atomic<const Term *>[Cap]) {
      for (size_t I = 0; I < Cap; ++I)
        Slots[I].store(nullptr, std::memory_order_relaxed);
    }
    const size_t Capacity; ///< power of two
    std::atomic<size_t> Used{0};
    std::atomic<bool> Sealed{false};
    std::unique_ptr<std::atomic<const Term *>[]> Slots;
  };

  /// One bump-pointer arena block. `Used` is bumped with fetch_add; an
  /// allocation only succeeds when its whole object fits, so on races the
  /// counter may overshoot Capacity harmlessly (the dtor clamps). Capacity
  /// is a multiple of sizeof(Term), so every in-range offset that was
  /// handed out holds a constructed node.
  struct ArenaChunk {
    explicit ArenaChunk(size_t Bytes);
    std::unique_ptr<unsigned char[]> Mem;
    size_t Capacity; ///< bytes, multiple of sizeof(Term)
    std::atomic<size_t> Used{0};
  };

  /// One intern shard: the current table generation, its predecessors
  /// (kept alive — lock-free readers may still hold them), the arena, and
  /// the migration gate. Padded to a cache line so shard metadata does not
  /// false-share under concurrent interning.
  struct alignas(64) Shard {
    std::atomic<Table *> Current{nullptr};
    std::atomic<ArenaChunk *> Chunk{nullptr};
    std::atomic<size_t> Count{0};      ///< published terms
    std::atomic<unsigned> Writers{0};  ///< in-flight bucket publishers
    std::mutex GrowMu;                 ///< table creation/migration
    std::mutex ArenaMu;                ///< chunk rollover
    std::vector<std::unique_ptr<Table>> Tables;      ///< under GrowMu
    std::vector<std::unique_ptr<ArenaChunk>> Chunks; ///< under ArenaMu
  };

  const Term *internMiss(Shard &Sh, uint64_t H, TermKind K, Sort S,
                         int64_t IntVal, std::string Name,
                         std::vector<const Term *> Ops);
  Term *allocateNode(Shard &Sh);
  void growTable(Shard &Sh, Table *Old);

  static constexpr unsigned NumShardsLog2 = 4;
  static constexpr unsigned NumShards = 1u << NumShardsLog2;
  Shard Shards[NumShards];

  /// Sequenced id publication: one global counter keeps serial id
  /// assignment byte-identical to the single-mutex design (see class
  /// comment). A relaxed fetch_add, not a serialization point.
  std::atomic<uint32_t> NextId{0};

  /// Guards VarsByName and FreshCounter. Variable registration is a tiny
  /// fraction of interning traffic; the name map is not sharded.
  mutable std::mutex VarsMu;
  std::unordered_map<std::string, const Term *> VarsByName;
  uint64_t FreshCounter = 0;

  const Term *True = nullptr;
  const Term *False = nullptr;
  const Term *Zero = nullptr;
  const Term *One = nullptr;
};

} // namespace logic
} // namespace expresso

#endif // EXPRESSO_LOGIC_TERM_H
