//===- logic/Linear.cpp - Linear integer forms ------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "logic/Linear.h"

#include <cassert>
#include <cstdlib>

using namespace expresso;
using namespace expresso::logic;

int64_t logic::gcd64(int64_t A, int64_t B) {
  A = std::llabs(A);
  B = std::llabs(B);
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

int64_t logic::lcm64(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  return std::llabs(A / gcd64(A, B) * B);
}

int64_t logic::floorDiv(int64_t A, int64_t B) {
  assert(B != 0);
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

int64_t logic::ceilDiv(int64_t A, int64_t B) {
  assert(B != 0);
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) == (B < 0)))
    ++Q;
  return Q;
}

int64_t logic::mathMod(int64_t A, int64_t B) {
  assert(B != 0);
  int64_t M = A % B;
  if (M < 0)
    M += std::llabs(B);
  return M;
}

//===----------------------------------------------------------------------===//
// LinearTerm
//===----------------------------------------------------------------------===//

void LinearTerm::addAtom(const Term *Atom, int64_t Coeff) {
  if (Coeff == 0)
    return;
  auto [It, Inserted] = Coeffs.emplace(Atom, Coeff);
  if (!Inserted) {
    It->second += Coeff;
    if (It->second == 0)
      Coeffs.erase(It);
  }
}

void LinearTerm::addLinear(const LinearTerm &O, int64_t Scale) {
  if (Scale == 0)
    return;
  for (const auto &[Atom, Coeff] : O.Coeffs)
    addAtom(Atom, Coeff * Scale);
  Constant += O.Constant * Scale;
}

void LinearTerm::scale(int64_t Factor) {
  if (Factor == 0) {
    Coeffs.clear();
    Constant = 0;
    return;
  }
  if (Factor == 1)
    return;
  for (auto &[Atom, Coeff] : Coeffs)
    Coeff *= Factor;
  Constant *= Factor;
}

int64_t LinearTerm::coeffGcd() const {
  int64_t G = 0;
  for (const auto &[Atom, Coeff] : Coeffs)
    G = gcd64(G, Coeff);
  return G;
}

LinearTerm LinearTerm::negated() const {
  LinearTerm R = *this;
  R.scale(-1);
  return R;
}

bool LinearTerm::sameAtoms(const LinearTerm &A, const LinearTerm &B) {
  return A.Coeffs == B.Coeffs;
}

bool LinearTerm::operator<(const LinearTerm &O) const {
  if (Constant != O.Constant)
    return Constant < O.Constant;
  auto It = Coeffs.begin(), OIt = O.Coeffs.begin();
  for (; It != Coeffs.end() && OIt != O.Coeffs.end(); ++It, ++OIt) {
    if (It->first->id() != OIt->first->id())
      return It->first->id() < OIt->first->id();
    if (It->second != OIt->second)
      return It->second < OIt->second;
  }
  return It == Coeffs.end() && OIt != O.Coeffs.end();
}

const Term *LinearTerm::toTerm(TermContext &C) const {
  std::vector<const Term *> Summands;
  Summands.reserve(Coeffs.size() + 1);
  for (const auto &[Atom, Coeff] : Coeffs)
    Summands.push_back(C.mulConst(Coeff, Atom));
  if (Constant != 0)
    Summands.push_back(C.intConst(Constant));
  return C.add(std::move(Summands));
}

//===----------------------------------------------------------------------===//
// Linearization
//===----------------------------------------------------------------------===//

namespace {

bool linearizeInto(const Term *T, int64_t Scale, LinearTerm &Out) {
  switch (T->kind()) {
  case TermKind::IntConst:
    Out.Constant += Scale * T->intValue();
    return true;
  case TermKind::Add:
    for (const Term *Op : T->operands())
      if (!linearizeInto(Op, Scale, Out))
        return false;
    return true;
  case TermKind::Mul:
    // Smart constructors guarantee Ops[0] is the constant coefficient.
    return linearizeInto(T->operand(1), Scale * T->operand(0)->intValue(), Out);
  case TermKind::Var:
  case TermKind::Select:
  case TermKind::Ite:
    if (T->sort() != Sort::Int)
      return false;
    Out.addAtom(T, Scale);
    return true;
  default:
    return false;
  }
}

} // namespace

std::optional<LinearTerm> logic::linearize(const Term *T) {
  if (T->sort() != Sort::Int)
    return std::nullopt;
  LinearTerm Out;
  if (!linearizeInto(T, 1, Out))
    return std::nullopt;
  return Out;
}

//===----------------------------------------------------------------------===//
// Atom normalization
//===----------------------------------------------------------------------===//

namespace {

/// Divides an Le-form (L <= 0) through by the gcd of its coefficients using
/// integer tightening, and canonicalizes Eq forms.
void tighten(LinAtom &A) {
  if (A.Kind == LinAtomKind::Le) {
    int64_t G = A.L.coeffGcd();
    if (G > 1) {
      for (auto &[Atom, Coeff] : A.L.Coeffs)
        Coeff /= G;
      A.L.Constant = ceilDiv(A.L.Constant, G);
    }
    return;
  }
  if (A.Kind == LinAtomKind::Eq) {
    int64_t G = A.L.coeffGcd();
    if (G > 1) {
      if (A.L.Constant % G != 0) {
        // No integer solutions: canonicalize to `1 <= 0` (false).
        A.Kind = LinAtomKind::Le;
        A.L = LinearTerm();
        A.L.Constant = 1;
        return;
      }
      for (auto &[Atom, Coeff] : A.L.Coeffs)
        Coeff /= G;
      A.L.Constant /= G;
    }
    // Sign-normalize so the lowest-id atom has a positive coefficient.
    if (!A.L.Coeffs.empty()) {
      auto MinIt = A.L.Coeffs.begin();
      for (auto It = A.L.Coeffs.begin(); It != A.L.Coeffs.end(); ++It)
        if (It->first->id() < MinIt->first->id())
          MinIt = It;
      if (MinIt->second < 0)
        A.L.scale(-1);
    }
    return;
  }
  // Dvd / NDvd: reduce coefficients and divisor modulo the divisor.
  int64_t D = A.Divisor;
  assert(D >= 1);
  for (auto It = A.L.Coeffs.begin(); It != A.L.Coeffs.end();) {
    It->second = mathMod(It->second, D);
    if (It->second == 0) {
      It = A.L.Coeffs.erase(It);
    } else {
      ++It;
    }
  }
  A.L.Constant = mathMod(A.L.Constant, D);
}

} // namespace

const Term *LinAtom::toTerm(TermContext &C) const {
  switch (Kind) {
  case LinAtomKind::Le: {
    // Render as `atoms <= -constant` for readability.
    LinearTerm AtomPart = L;
    int64_t Cst = AtomPart.Constant;
    AtomPart.Constant = 0;
    // Prefer positive coefficients on the left: if all coefficients are
    // negative, render as `-atoms >= constant`, i.e. constant <= atoms.
    bool AllNeg = !AtomPart.Coeffs.empty();
    for (const auto &[Atom, Coeff] : AtomPart.Coeffs)
      AllNeg &= Coeff < 0;
    if (AllNeg) {
      LinearTerm Pos = AtomPart.negated();
      return C.le(C.intConst(Cst), Pos.toTerm(C));
    }
    return C.le(AtomPart.toTerm(C), C.intConst(-Cst));
  }
  case LinAtomKind::Eq: {
    LinearTerm AtomPart = L;
    int64_t Cst = AtomPart.Constant;
    AtomPart.Constant = 0;
    return C.eq(AtomPart.toTerm(C), C.intConst(-Cst));
  }
  case LinAtomKind::Dvd:
    return C.divides(Divisor, L.toTerm(C));
  case LinAtomKind::NDvd:
    return C.not_(C.divides(Divisor, L.toTerm(C)));
  }
  assert(false && "unhandled atom kind");
  return nullptr;
}

std::optional<LinAtom> logic::normalizeLinAtom(const Term *T) {
  bool Negated = false;
  if (T->kind() == TermKind::Not) {
    Negated = true;
    T = T->operand(0);
  }

  LinAtom A;
  switch (T->kind()) {
  case TermKind::Le:
  case TermKind::Lt: {
    auto Lhs = linearize(T->operand(0));
    auto Rhs = linearize(T->operand(1));
    if (!Lhs || !Rhs)
      return std::nullopt;
    A.Kind = LinAtomKind::Le;
    if (!Negated) {
      // a <= b  =>  a - b <= 0 ;  a < b  =>  a - b + 1 <= 0
      A.L = *Lhs;
      A.L.addLinear(*Rhs, -1);
      if (T->kind() == TermKind::Lt)
        A.L.Constant += 1;
    } else {
      // not(a <= b) => b - a + 1 <= 0 ;  not(a < b) => b - a <= 0
      A.L = *Rhs;
      A.L.addLinear(*Lhs, -1);
      if (T->kind() == TermKind::Le)
        A.L.Constant += 1;
    }
    break;
  }
  case TermKind::Eq: {
    if (T->operand(0)->sort() != Sort::Int)
      return std::nullopt;
    if (Negated)
      return std::nullopt; // Disequality splits at NNF level, not here.
    auto Lhs = linearize(T->operand(0));
    auto Rhs = linearize(T->operand(1));
    if (!Lhs || !Rhs)
      return std::nullopt;
    A.Kind = LinAtomKind::Eq;
    A.L = *Lhs;
    A.L.addLinear(*Rhs, -1);
    break;
  }
  case TermKind::Divides: {
    auto Arg = linearize(T->operand(0));
    if (!Arg)
      return std::nullopt;
    A.Kind = Negated ? LinAtomKind::NDvd : LinAtomKind::Dvd;
    A.Divisor = T->intValue();
    A.L = *Arg;
    break;
  }
  default:
    return std::nullopt;
  }
  tighten(A);
  return A;
}
