//===- logic/Term.cpp - Hash-consed logical terms --------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "logic/Term.h"

#include "logic/Printer.h"

#include <algorithm>

using namespace expresso;
using namespace expresso::logic;

const char *logic::sortName(Sort S) {
  switch (S) {
  case Sort::Int:
    return "int";
  case Sort::Bool:
    return "bool";
  case Sort::IntArray:
    return "int[]";
  case Sort::BoolArray:
    return "bool[]";
  }
  return "?";
}

const char *logic::kindName(TermKind K) {
  switch (K) {
  case TermKind::IntConst:
    return "IntConst";
  case TermKind::BoolConst:
    return "BoolConst";
  case TermKind::Var:
    return "Var";
  case TermKind::Add:
    return "Add";
  case TermKind::Mul:
    return "Mul";
  case TermKind::Ite:
    return "Ite";
  case TermKind::Select:
    return "Select";
  case TermKind::Store:
    return "Store";
  case TermKind::Eq:
    return "Eq";
  case TermKind::Le:
    return "Le";
  case TermKind::Lt:
    return "Lt";
  case TermKind::Divides:
    return "Divides";
  case TermKind::Not:
    return "Not";
  case TermKind::And:
    return "And";
  case TermKind::Or:
    return "Or";
  }
  return "?";
}

std::string Term::str() const { return printTerm(this); }

size_t TermContext::KeyHash::operator()(const Key &K) const {
  size_t H = static_cast<size_t>(K.Kind) * 0x9e3779b97f4a7c15ULL;
  H ^= static_cast<size_t>(K.S) + 0x517cc1b727220a95ULL + (H << 6) + (H >> 2);
  H ^= std::hash<int64_t>()(K.IntVal) + (H << 6) + (H >> 2);
  H ^= std::hash<std::string>()(K.Name) + (H << 6) + (H >> 2);
  for (const Term *Op : K.Ops)
    H ^= std::hash<const void *>()(Op) + 0x9e3779b97f4a7c15ULL + (H << 6) +
         (H >> 2);
  return H;
}

TermContext::TermContext() {
  True = intern(TermKind::BoolConst, Sort::Bool, 1, "", {});
  False = intern(TermKind::BoolConst, Sort::Bool, 0, "", {});
  Zero = intern(TermKind::IntConst, Sort::Int, 0, "", {});
  One = intern(TermKind::IntConst, Sort::Int, 1, "", {});
}

const Term *TermContext::intern(TermKind K, Sort S, int64_t IntVal,
                                std::string Name,
                                std::vector<const Term *> Ops) {
  std::lock_guard<std::mutex> Lock(Mu);
  return internLocked(K, S, IntVal, std::move(Name), std::move(Ops));
}

const Term *TermContext::internLocked(TermKind K, Sort S, int64_t IntVal,
                                      std::string Name,
                                      std::vector<const Term *> Ops) {
  Key TheKey{K, S, IntVal, Name, Ops};
  auto It = Interned.find(TheKey);
  if (It != Interned.end())
    return It->second;
  auto Node = std::unique_ptr<Term>(
      new Term(K, S, NextId++, IntVal, std::move(Name), std::move(Ops)));
  // Structural hash over shape only: operands contribute their own
  // structural hashes, so the value is independent of pointer identity and
  // interning order (see Term::structuralHash).
  uint64_t H = 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(K) + 1);
  auto Mix = [&H](uint64_t V) {
    H ^= V + 0x9e3779b97f4a7c15ULL + (H << 12) + (H >> 7);
    H *= 0xff51afd7ed558ccdULL;
  };
  Mix(static_cast<uint64_t>(S));
  Mix(static_cast<uint64_t>(Node->IntVal));
  // FNV-1a over the name bytes: std::hash would be implementation-defined,
  // breaking the documented cross-process stability.
  uint64_t NameH = 0xcbf29ce484222325ULL;
  for (char Ch : Node->Name)
    NameH = (NameH ^ static_cast<unsigned char>(Ch)) * 0x100000001b3ULL;
  Mix(NameH);
  for (const Term *Op : Node->Ops)
    Mix(Op->structuralHash());
  Node->StructHash = H;
  const Term *Result = Node.get();
  Arena.push_back(std::move(Node));
  Interned.emplace(std::move(TheKey), Result);
  return Result;
}

const Term *TermContext::internRaw(TermKind K, Sort S, int64_t IntVal,
                                   std::string Name,
                                   std::vector<const Term *> Ops) {
  switch (K) {
  case TermKind::Var:
    return var(Name, S);
  case TermKind::IntConst:
    return intConst(IntVal);
  case TermKind::BoolConst:
    return boolConst(IntVal != 0);
  default:
    return intern(K, S, IntVal, std::move(Name), std::move(Ops));
  }
}

//===----------------------------------------------------------------------===//
// Leaves
//===----------------------------------------------------------------------===//

const Term *TermContext::intConst(int64_t V) {
  if (V == 0)
    return Zero;
  if (V == 1)
    return One;
  return intern(TermKind::IntConst, Sort::Int, V, "", {});
}

const Term *TermContext::boolConst(bool B) { return B ? True : False; }

const Term *TermContext::var(const std::string &Name, Sort S) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = VarsByName.find(Name);
  if (It != VarsByName.end()) {
    assert(It->second->sort() == S && "variable re-declared at another sort");
    return It->second;
  }
  const Term *V = internLocked(TermKind::Var, S, 0, Name, {});
  VarsByName.emplace(Name, V);
  return V;
}

const Term *TermContext::lookupVar(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = VarsByName.find(Name);
  return It == VarsByName.end() ? nullptr : It->second;
}

const Term *TermContext::freshVar(const std::string &Hint, Sort S) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (;;) {
    std::string Name = Hint + "!" + std::to_string(FreshCounter++);
    if (VarsByName.count(Name))
      continue;
    const Term *V = internLocked(TermKind::Var, S, 0, Name, {});
    VarsByName.emplace(Name, V);
    return V;
  }
}

//===----------------------------------------------------------------------===//
// Integer arithmetic
//===----------------------------------------------------------------------===//

const Term *TermContext::add(std::vector<const Term *> Ts) {
  std::vector<const Term *> Flat;
  int64_t ConstSum = 0;
  // Flatten nested sums and fold constants into one summand.
  std::vector<const Term *> Work(Ts.rbegin(), Ts.rend());
  while (!Work.empty()) {
    const Term *T = Work.back();
    Work.pop_back();
    assert(T->sort() == Sort::Int && "add operand must be integer");
    if (T->kind() == TermKind::Add) {
      for (auto It = T->operands().rbegin(); It != T->operands().rend(); ++It)
        Work.push_back(*It);
      continue;
    }
    if (T->isIntConst()) {
      ConstSum += T->intValue();
      continue;
    }
    Flat.push_back(T);
  }
  // Deterministic operand order for hash-consing of commutative sums.
  std::stable_sort(Flat.begin(), Flat.end(),
                   [](const Term *A, const Term *B) { return A->id() < B->id(); });
  if (ConstSum != 0)
    Flat.push_back(intConst(ConstSum));
  if (Flat.empty())
    return Zero;
  if (Flat.size() == 1)
    return Flat.front();
  return intern(TermKind::Add, Sort::Int, 0, "", std::move(Flat));
}

const Term *TermContext::sub(const Term *A, const Term *B) {
  return add({A, mulConst(-1, B)});
}

const Term *TermContext::neg(const Term *A) { return mulConst(-1, A); }

const Term *TermContext::mulConst(int64_t Coeff, const Term *T) {
  assert(T->sort() == Sort::Int && "mulConst operand must be integer");
  if (Coeff == 0)
    return Zero;
  if (Coeff == 1)
    return T;
  if (T->isIntConst())
    return intConst(Coeff * T->intValue());
  // Distribute over sums so sums stay flat: c*(a+b) = c*a + c*b.
  if (T->kind() == TermKind::Add) {
    std::vector<const Term *> Scaled;
    Scaled.reserve(T->numOperands());
    for (const Term *Op : T->operands())
      Scaled.push_back(mulConst(Coeff, Op));
    return add(std::move(Scaled));
  }
  // Collapse nested coefficients: c1*(c2*t) = (c1*c2)*t.
  if (T->kind() == TermKind::Mul)
    return mulConst(Coeff * T->operand(0)->intValue(), T->operand(1));
  return intern(TermKind::Mul, Sort::Int, 0, "", {intConst(Coeff), T});
}

const Term *TermContext::mul(const Term *A, const Term *B) {
  if (A->isIntConst())
    return mulConst(A->intValue(), B);
  if (B->isIntConst())
    return mulConst(B->intValue(), A);
  assert(false && "nonlinear multiplication is not supported");
  return nullptr;
}

const Term *TermContext::ite(const Term *Cond, const Term *Then,
                             const Term *Else) {
  assert(Cond->sort() == Sort::Bool && "ite condition must be boolean");
  assert(Then->sort() == Else->sort() && "ite branches must agree on sort");
  if (Cond->isTrue())
    return Then;
  if (Cond->isFalse())
    return Else;
  if (Then == Else)
    return Then;
  // Boolean ite lowers to propositional structure.
  if (Then->sort() == Sort::Bool)
    return or_(and_(Cond, Then), and_(not_(Cond), Else));
  return intern(TermKind::Ite, Then->sort(), 0, "", {Cond, Then, Else});
}

//===----------------------------------------------------------------------===//
// Arrays
//===----------------------------------------------------------------------===//

const Term *TermContext::select(const Term *Array, const Term *Index) {
  assert((Array->sort() == Sort::IntArray || Array->sort() == Sort::BoolArray) &&
         "select requires an array");
  assert(Index->sort() == Sort::Int && "array index must be integer");
  // Read-over-write: select(store(A,i,v), j) = ite(i=j, v, select(A,j)).
  if (Array->kind() == TermKind::Store) {
    const Term *A = Array->operand(0);
    const Term *I = Array->operand(1);
    const Term *V = Array->operand(2);
    if (I == Index)
      return V;
    if (I->isIntConst() && Index->isIntConst())
      return select(A, Index); // distinct constant indices
    if (V->sort() == Sort::Bool) {
      const Term *Hit = eq(I, Index);
      return or_(and_(Hit, V), and_(not_(Hit), select(A, Index)));
    }
    return ite(eq(I, Index), V, select(A, Index));
  }
  Sort Elem = elementSort(Array->sort());
  return intern(TermKind::Select, Elem, 0, "", {Array, Index});
}

const Term *TermContext::store(const Term *Array, const Term *Index,
                               const Term *Value) {
  assert((Array->sort() == Sort::IntArray || Array->sort() == Sort::BoolArray) &&
         "store requires an array");
  assert(Index->sort() == Sort::Int && "array index must be integer");
  assert(Value->sort() == elementSort(Array->sort()) &&
         "stored value must match element sort");
  // store(store(A,i,_), i, v) = store(A, i, v)
  if (Array->kind() == TermKind::Store && Array->operand(1) == Index)
    return store(Array->operand(0), Index, Value);
  return intern(TermKind::Store, Array->sort(), 0, "", {Array, Index, Value});
}

//===----------------------------------------------------------------------===//
// Atoms
//===----------------------------------------------------------------------===//

const Term *TermContext::eq(const Term *A, const Term *B) {
  assert(A->sort() == B->sort() && "equality operands must agree on sort");
  assert(A->sort() != Sort::IntArray && A->sort() != Sort::BoolArray &&
         "array equality must go through extensionality");
  if (A == B)
    return True;
  if (A->isIntConst() && B->isIntConst())
    return boolConst(A->intValue() == B->intValue());
  if (A->isBoolConst() && B->isBoolConst())
    return boolConst(A->boolValue() == B->boolValue());
  // Boolean equality with a constant side simplifies to a literal.
  if (A->sort() == Sort::Bool) {
    if (A->isTrue())
      return B;
    if (A->isFalse())
      return not_(B);
    if (B->isTrue())
      return A;
    if (B->isFalse())
      return not_(A);
  }
  if (A->id() > B->id())
    std::swap(A, B);
  return intern(TermKind::Eq, Sort::Bool, 0, "", {A, B});
}

const Term *TermContext::ne(const Term *A, const Term *B) {
  return not_(eq(A, B));
}

const Term *TermContext::le(const Term *A, const Term *B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int);
  if (A == B)
    return True;
  if (A->isIntConst() && B->isIntConst())
    return boolConst(A->intValue() <= B->intValue());
  return intern(TermKind::Le, Sort::Bool, 0, "", {A, B});
}

const Term *TermContext::lt(const Term *A, const Term *B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int);
  if (A == B)
    return False;
  if (A->isIntConst() && B->isIntConst())
    return boolConst(A->intValue() < B->intValue());
  return intern(TermKind::Lt, Sort::Bool, 0, "", {A, B});
}

const Term *TermContext::divides(int64_t Divisor, const Term *T) {
  assert(Divisor >= 1 && "divisor must be positive");
  assert(T->sort() == Sort::Int);
  if (Divisor == 1)
    return True;
  if (T->isIntConst())
    return boolConst(T->intValue() % Divisor == 0);
  return intern(TermKind::Divides, Sort::Bool, Divisor, "", {T});
}

//===----------------------------------------------------------------------===//
// Boolean structure
//===----------------------------------------------------------------------===//

const Term *TermContext::not_(const Term *A) {
  assert(A->sort() == Sort::Bool && "negation operand must be boolean");
  if (A->isTrue())
    return False;
  if (A->isFalse())
    return True;
  if (A->kind() == TermKind::Not)
    return A->operand(0);
  return intern(TermKind::Not, Sort::Bool, 0, "", {A});
}

const Term *TermContext::and_(std::vector<const Term *> Ts) {
  std::vector<const Term *> Flat;
  std::vector<const Term *> Work(Ts.rbegin(), Ts.rend());
  while (!Work.empty()) {
    const Term *T = Work.back();
    Work.pop_back();
    assert(T->sort() == Sort::Bool && "conjunct must be boolean");
    if (T->isFalse())
      return False;
    if (T->isTrue())
      continue;
    if (T->kind() == TermKind::And) {
      for (auto It = T->operands().rbegin(); It != T->operands().rend(); ++It)
        Work.push_back(*It);
      continue;
    }
    Flat.push_back(T);
  }
  std::stable_sort(Flat.begin(), Flat.end(),
                   [](const Term *A, const Term *B) { return A->id() < B->id(); });
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  // a and (not a) = false
  for (const Term *T : Flat)
    if (T->kind() == TermKind::Not &&
        std::binary_search(Flat.begin(), Flat.end(), T->operand(0),
                           [](const Term *A, const Term *B) {
                             return A->id() < B->id();
                           }))
      return False;
  if (Flat.empty())
    return True;
  if (Flat.size() == 1)
    return Flat.front();
  return intern(TermKind::And, Sort::Bool, 0, "", std::move(Flat));
}

const Term *TermContext::or_(std::vector<const Term *> Ts) {
  std::vector<const Term *> Flat;
  std::vector<const Term *> Work(Ts.rbegin(), Ts.rend());
  while (!Work.empty()) {
    const Term *T = Work.back();
    Work.pop_back();
    assert(T->sort() == Sort::Bool && "disjunct must be boolean");
    if (T->isTrue())
      return True;
    if (T->isFalse())
      continue;
    if (T->kind() == TermKind::Or) {
      for (auto It = T->operands().rbegin(); It != T->operands().rend(); ++It)
        Work.push_back(*It);
      continue;
    }
    Flat.push_back(T);
  }
  std::stable_sort(Flat.begin(), Flat.end(),
                   [](const Term *A, const Term *B) { return A->id() < B->id(); });
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  // a or (not a) = true
  for (const Term *T : Flat)
    if (T->kind() == TermKind::Not &&
        std::binary_search(Flat.begin(), Flat.end(), T->operand(0),
                           [](const Term *A, const Term *B) {
                             return A->id() < B->id();
                           }))
      return True;
  if (Flat.empty())
    return False;
  if (Flat.size() == 1)
    return Flat.front();
  return intern(TermKind::Or, Sort::Bool, 0, "", std::move(Flat));
}

const Term *TermContext::implies(const Term *A, const Term *B) {
  return or_(not_(A), B);
}

const Term *TermContext::iff(const Term *A, const Term *B) { return eq(A, B); }
