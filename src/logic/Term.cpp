//===- logic/Term.cpp - Hash-consed logical terms --------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Interning is the engine's hottest shared path: every VC built on a
// placement worker, every scratch-context transfer into a solver, and every
// persistent-store decode funnels through here. The original design guarded
// one hash map with one mutex, which serialized all of it. This file
// replaces that with:
//
//  * 16 shards selected by the term's structural hash (a pure function of
//    shape, computable before any allocation);
//  * per-shard open-addressed tables of atomic buckets — the hit path is a
//    lock-free probe, the miss path publishes with a bucket CAS;
//  * per-shard bump-pointer arenas for the nodes themselves — a miss costs
//    one atomic offset bump instead of a heap allocation;
//  * table growth as a sealed-generation migration: the grower seals the
//    old table, drains in-flight publishers (a Dekker-style Writers gate,
//    all seq_cst), rehashes into a double-size successor, and publishes it.
//    Old generations stay alive until the context dies, so lock-free
//    readers never chase freed memory; a stale read is harmless because
//    entries are immutable and a stale *miss* re-checks the current
//    generation on the insert path.
//
// Determinism contract (see Term.h): ids come from one relaxed global
// counter claimed at candidate construction, so serial runs reproduce the
// single-mutex id sequence exactly, and with it operand sort order, printed
// Σ, and canonical TermCodec bytes.
//
//===----------------------------------------------------------------------===//

#include "logic/Term.h"

#include "logic/Printer.h"

#include <algorithm>
#include <new>
#include <thread>

using namespace expresso;
using namespace expresso::logic;

const char *logic::sortName(Sort S) {
  switch (S) {
  case Sort::Int:
    return "int";
  case Sort::Bool:
    return "bool";
  case Sort::IntArray:
    return "int[]";
  case Sort::BoolArray:
    return "bool[]";
  }
  return "?";
}

const char *logic::kindName(TermKind K) {
  switch (K) {
  case TermKind::IntConst:
    return "IntConst";
  case TermKind::BoolConst:
    return "BoolConst";
  case TermKind::Var:
    return "Var";
  case TermKind::Add:
    return "Add";
  case TermKind::Mul:
    return "Mul";
  case TermKind::Ite:
    return "Ite";
  case TermKind::Select:
    return "Select";
  case TermKind::Store:
    return "Store";
  case TermKind::Eq:
    return "Eq";
  case TermKind::Le:
    return "Le";
  case TermKind::Lt:
    return "Lt";
  case TermKind::Divides:
    return "Divides";
  case TermKind::Not:
    return "Not";
  case TermKind::And:
    return "And";
  case TermKind::Or:
    return "Or";
  }
  return "?";
}

std::string Term::str() const { return printTerm(this); }

namespace {

/// Structural hash of a prospective node, identical to the value the
/// original interner stamped after construction: shape only — kind, sort,
/// payload, name bytes (FNV-1a, not std::hash, for cross-process
/// stability), operand structural hashes. Computable before allocating the
/// node, which is what lets it double as the shard selector and table
/// probe hash.
uint64_t structuralHashOf(TermKind K, Sort S, int64_t IntVal,
                          const std::string &Name,
                          const std::vector<const Term *> &Ops) {
  uint64_t H = 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(K) + 1);
  auto Mix = [&H](uint64_t V) {
    H ^= V + 0x9e3779b97f4a7c15ULL + (H << 12) + (H >> 7);
    H *= 0xff51afd7ed558ccdULL;
  };
  Mix(static_cast<uint64_t>(S));
  Mix(static_cast<uint64_t>(IntVal));
  uint64_t NameH = 0xcbf29ce484222325ULL;
  for (char Ch : Name)
    NameH = (NameH ^ static_cast<unsigned char>(Ch)) * 0x100000001b3ULL;
  Mix(NameH);
  for (const Term *Op : Ops)
    Mix(Op->structuralHash());
  return H;
}

/// Full structural key comparison — the tie-breaker behind hash-equal
/// buckets. Operand comparison is pointer-wise: operands are already
/// canonical within the context.
bool matches(const Term *E, TermKind K, Sort S, int64_t IntVal,
             const std::string &Name,
             const std::vector<const Term *> &Ops) {
  if (E->kind() != K || E->sort() != S)
    return false;
  switch (K) {
  case TermKind::IntConst:
  case TermKind::BoolConst:
  case TermKind::Divides:
    if (E->intValue() != IntVal)
      return false;
    break;
  case TermKind::Var:
    if (E->varName() != Name)
      return false;
    break;
  default:
    break;
  }
  return E->operands() == Ops;
}

constexpr size_t InitialTableSlots = 64;       // per shard, power of two
constexpr size_t InitialChunkTerms = 64;       // first arena block
constexpr size_t MaxChunkBytes = 1u << 20;     // arena blocks cap at 1 MiB

} // namespace

TermContext::ArenaChunk::ArenaChunk(size_t Bytes)
    : Mem(new unsigned char[Bytes - Bytes % sizeof(Term)]),
      Capacity(Bytes - Bytes % sizeof(Term)) {}

TermContext::TermContext() {
  True = intern(TermKind::BoolConst, Sort::Bool, 1, "", {});
  False = intern(TermKind::BoolConst, Sort::Bool, 0, "", {});
  Zero = intern(TermKind::IntConst, Sort::Int, 0, "", {});
  One = intern(TermKind::IntConst, Sort::Int, 1, "", {});
}

TermContext::~TermContext() {
  // Nodes are arena-resident; destroy them in place so their Name/Ops heap
  // storage is released. Every offset below min(Used, Capacity) was a
  // successful allocation holding a constructed node (Capacity is a
  // multiple of sizeof(Term), and a racing over-bump only pushes Used past
  // Capacity without handing out an in-range offset).
  for (Shard &Sh : Shards)
    for (auto &Ch : Sh.Chunks) {
      size_t End = std::min(Ch->Used.load(std::memory_order_relaxed),
                            Ch->Capacity);
      for (size_t Off = 0; Off + sizeof(Term) <= End; Off += sizeof(Term))
        reinterpret_cast<Term *>(Ch->Mem.get() + Off)->~Term();
    }
}

Term *TermContext::allocateNode(Shard &Sh) {
  for (;;) {
    ArenaChunk *Ch = Sh.Chunk.load(std::memory_order_acquire);
    if (Ch) {
      size_t Off = Ch->Used.fetch_add(sizeof(Term), std::memory_order_relaxed);
      if (Off + sizeof(Term) <= Ch->Capacity)
        return reinterpret_cast<Term *>(Ch->Mem.get() + Off);
    }
    // First allocation or chunk exhausted: roll over under the arena mutex.
    // (Distinct from GrowMu: a publisher registered in the Writers gate may
    // land here, and table migration must never wait on the same lock.)
    std::lock_guard<std::mutex> Lock(Sh.ArenaMu);
    if (Sh.Chunk.load(std::memory_order_acquire) == Ch) {
      size_t Bytes = Ch ? std::min(Ch->Capacity * 2, MaxChunkBytes)
                        : InitialChunkTerms * sizeof(Term);
      auto Next = std::make_unique<ArenaChunk>(Bytes);
      ArenaChunk *P = Next.get();
      Sh.Chunks.push_back(std::move(Next));
      Sh.Chunk.store(P, std::memory_order_release);
    }
  }
}

void TermContext::growTable(Shard &Sh, Table *Old) {
  std::lock_guard<std::mutex> Lock(Sh.GrowMu);
  if (Sh.Current.load(std::memory_order_acquire) != Old)
    return; // lost the race: another thread already migrated (or created)
  if (Old) {
    // Seal, then drain in-flight publishers. Publishers register in
    // Writers *before* re-checking Sealed (both seq_cst), so either they
    // see the seal and back off, or this wait observes their registration
    // and their CAS lands before the rehash scan below — no published
    // entry can be missed.
    Old->Sealed.store(true, std::memory_order_seq_cst);
    while (Sh.Writers.load(std::memory_order_seq_cst) != 0)
      std::this_thread::yield();
  }
  size_t NewCap = Old ? Old->Capacity * 2 : InitialTableSlots;
  auto NewT = std::make_unique<Table>(NewCap);
  if (Old) {
    const size_t Mask = NewCap - 1;
    size_t Moved = 0;
    for (size_t I = 0; I < Old->Capacity; ++I) {
      const Term *E = Old->Slots[I].load(std::memory_order_relaxed);
      if (!E)
        continue;
      size_t Idx = E->structuralHash() & Mask;
      while (NewT->Slots[Idx].load(std::memory_order_relaxed))
        Idx = (Idx + 1) & Mask;
      NewT->Slots[Idx].store(E, std::memory_order_relaxed);
      ++Moved;
    }
    NewT->Used.store(Moved, std::memory_order_relaxed);
  }
  Table *Published = NewT.get();
  Sh.Tables.push_back(std::move(NewT));
  // Release-publish after all slot stores: a reader that acquires the new
  // generation sees every migrated entry. The old generation stays in
  // Sh.Tables untouched — concurrent lock-free readers may still probe it,
  // and since entries are immutable their hits stay valid; their misses
  // re-check the current generation via the insert path.
  Sh.Current.store(Published, std::memory_order_release);
}

const Term *TermContext::intern(TermKind K, Sort S, int64_t IntVal,
                                std::string Name,
                                std::vector<const Term *> Ops) {
  uint64_t H = structuralHashOf(K, S, IntVal, Name, Ops);
  Shard &Sh = Shards[H >> (64 - NumShardsLog2)];
  // Lock-free hit path: one acquire load of the table, one probe. Empty
  // buckets terminate the probe (entries are never removed).
  if (Table *T = Sh.Current.load(std::memory_order_acquire)) {
    const size_t Mask = T->Capacity - 1;
    size_t Idx = H & Mask;
    // Bounded probe: concurrent writers can briefly push a generation past
    // its load-factor target, so cap the scan at one full wrap and let the
    // miss path (which can grow the table) sort it out.
    for (size_t Step = 0; Step <= Mask; ++Step, Idx = (Idx + 1) & Mask) {
      const Term *E = T->Slots[Idx].load(std::memory_order_acquire);
      if (!E)
        break;
      if (E->structuralHash() == H && matches(E, K, S, IntVal, Name, Ops))
        return E;
    }
  }
  return internMiss(Sh, H, K, S, IntVal, std::move(Name), std::move(Ops));
}

const Term *TermContext::internMiss(Shard &Sh, uint64_t H, TermKind K, Sort S,
                                    int64_t IntVal, std::string Name,
                                    std::vector<const Term *> Ops) {
  Term *Candidate = nullptr;
  for (;;) {
    Table *T = Sh.Current.load(std::memory_order_acquire);
    if (!T ||
        (T->Used.load(std::memory_order_relaxed) + 1) * 4 > T->Capacity * 3) {
      growTable(Sh, T); // first table, or load factor above 3/4
      continue;
    }
    // Register as an in-flight publisher, then re-check the seal (Dekker
    // pairing with growTable's seal-then-drain; both sides seq_cst).
    Sh.Writers.fetch_add(1, std::memory_order_seq_cst);
    if (T->Sealed.load(std::memory_order_seq_cst) ||
        Sh.Current.load(std::memory_order_acquire) != T) {
      Sh.Writers.fetch_sub(1, std::memory_order_seq_cst);
      { std::lock_guard<std::mutex> Wait(Sh.GrowMu); } // migration in flight
      continue;
    }
    // Once a candidate exists, Name/Ops have been moved into it; key
    // comparisons from then on read the candidate's own fields.
    const std::string &KeyName = Candidate ? Candidate->Name : Name;
    const std::vector<const Term *> &KeyOps = Candidate ? Candidate->Ops : Ops;
    const size_t Mask = T->Capacity - 1;
    size_t Idx = H & Mask;
    size_t Step = 0;
    for (;; Idx = (Idx + 1) & Mask, ++Step) {
      if (Step > Mask) {
        // Wrapped the whole generation without a usable bucket — writers
        // racing past the load-factor check filled it. Deregister and grow.
        Sh.Writers.fetch_sub(1, std::memory_order_seq_cst);
        growTable(Sh, T);
        break;
      }
      const Term *E = T->Slots[Idx].load(std::memory_order_acquire);
      if (E) {
        if (E->structuralHash() == H &&
            matches(E, K, S, IntVal, KeyName, KeyOps)) {
          // Someone published this structure first. A constructed candidate
          // stays in the arena (destroyed with the context); its claimed id
          // becomes a gap, which only happens under concurrency.
          Sh.Writers.fetch_sub(1, std::memory_order_seq_cst);
          return E;
        }
        continue;
      }
      if (!Candidate) {
        Candidate = allocateNode(Sh);
        new (Candidate)
            Term(K, S, NextId.fetch_add(1, std::memory_order_relaxed), H,
                 IntVal, std::move(Name), std::move(Ops));
      }
      const Term *Expected = nullptr;
      if (T->Slots[Idx].compare_exchange_strong(Expected, Candidate,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        T->Used.fetch_add(1, std::memory_order_relaxed);
        Sh.Count.fetch_add(1, std::memory_order_release);
        Sh.Writers.fetch_sub(1, std::memory_order_seq_cst);
        return Candidate;
      }
      // Lost the bucket; Expected now holds the winner. Fall through to
      // re-examine this slot on the next loop turn (the winner may be our
      // own key), by not advancing past it unexamined.
      if (Expected->structuralHash() == H &&
          matches(Expected, K, S, IntVal, KeyName, KeyOps)) {
        Sh.Writers.fetch_sub(1, std::memory_order_seq_cst);
        return Expected;
      }
    }
  }
}

const Term *TermContext::internRaw(TermKind K, Sort S, int64_t IntVal,
                                   std::string Name,
                                   std::vector<const Term *> Ops) {
  switch (K) {
  case TermKind::Var:
    return var(Name, S);
  case TermKind::IntConst:
    return intConst(IntVal);
  case TermKind::BoolConst:
    return boolConst(IntVal != 0);
  default:
    return intern(K, S, IntVal, std::move(Name), std::move(Ops));
  }
}

//===----------------------------------------------------------------------===//
// Leaves
//===----------------------------------------------------------------------===//

const Term *TermContext::intConst(int64_t V) {
  if (V == 0)
    return Zero;
  if (V == 1)
    return One;
  return intern(TermKind::IntConst, Sort::Int, V, "", {});
}

const Term *TermContext::boolConst(bool B) { return B ? True : False; }

const Term *TermContext::var(const std::string &Name, Sort S) {
  std::lock_guard<std::mutex> Lock(VarsMu);
  auto It = VarsByName.find(Name);
  if (It != VarsByName.end()) {
    assert(It->second->sort() == S && "variable re-declared at another sort");
    return It->second;
  }
  const Term *V = intern(TermKind::Var, S, 0, Name, {});
  VarsByName.emplace(Name, V);
  return V;
}

const Term *TermContext::lookupVar(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(VarsMu);
  auto It = VarsByName.find(Name);
  return It == VarsByName.end() ? nullptr : It->second;
}

const Term *TermContext::freshVar(const std::string &Hint, Sort S) {
  std::lock_guard<std::mutex> Lock(VarsMu);
  for (;;) {
    std::string Name = Hint + "!" + std::to_string(FreshCounter++);
    if (VarsByName.count(Name))
      continue;
    const Term *V = intern(TermKind::Var, S, 0, Name, {});
    VarsByName.emplace(Name, V);
    return V;
  }
}

//===----------------------------------------------------------------------===//
// Integer arithmetic
//===----------------------------------------------------------------------===//

const Term *TermContext::add(std::vector<const Term *> Ts) {
  std::vector<const Term *> Flat;
  int64_t ConstSum = 0;
  // Flatten nested sums and fold constants into one summand.
  std::vector<const Term *> Work(Ts.rbegin(), Ts.rend());
  while (!Work.empty()) {
    const Term *T = Work.back();
    Work.pop_back();
    assert(T->sort() == Sort::Int && "add operand must be integer");
    if (T->kind() == TermKind::Add) {
      for (auto It = T->operands().rbegin(); It != T->operands().rend(); ++It)
        Work.push_back(*It);
      continue;
    }
    if (T->isIntConst()) {
      ConstSum += T->intValue();
      continue;
    }
    Flat.push_back(T);
  }
  // Deterministic operand order for hash-consing of commutative sums.
  std::stable_sort(Flat.begin(), Flat.end(),
                   [](const Term *A, const Term *B) { return A->id() < B->id(); });
  if (ConstSum != 0)
    Flat.push_back(intConst(ConstSum));
  if (Flat.empty())
    return Zero;
  if (Flat.size() == 1)
    return Flat.front();
  return intern(TermKind::Add, Sort::Int, 0, "", std::move(Flat));
}

const Term *TermContext::sub(const Term *A, const Term *B) {
  return add({A, mulConst(-1, B)});
}

const Term *TermContext::neg(const Term *A) { return mulConst(-1, A); }

const Term *TermContext::mulConst(int64_t Coeff, const Term *T) {
  assert(T->sort() == Sort::Int && "mulConst operand must be integer");
  if (Coeff == 0)
    return Zero;
  if (Coeff == 1)
    return T;
  if (T->isIntConst())
    return intConst(Coeff * T->intValue());
  // Distribute over sums so sums stay flat: c*(a+b) = c*a + c*b.
  if (T->kind() == TermKind::Add) {
    std::vector<const Term *> Scaled;
    Scaled.reserve(T->numOperands());
    for (const Term *Op : T->operands())
      Scaled.push_back(mulConst(Coeff, Op));
    return add(std::move(Scaled));
  }
  // Collapse nested coefficients: c1*(c2*t) = (c1*c2)*t.
  if (T->kind() == TermKind::Mul)
    return mulConst(Coeff * T->operand(0)->intValue(), T->operand(1));
  return intern(TermKind::Mul, Sort::Int, 0, "", {intConst(Coeff), T});
}

const Term *TermContext::mul(const Term *A, const Term *B) {
  if (A->isIntConst())
    return mulConst(A->intValue(), B);
  if (B->isIntConst())
    return mulConst(B->intValue(), A);
  assert(false && "nonlinear multiplication is not supported");
  return nullptr;
}

const Term *TermContext::ite(const Term *Cond, const Term *Then,
                             const Term *Else) {
  assert(Cond->sort() == Sort::Bool && "ite condition must be boolean");
  assert(Then->sort() == Else->sort() && "ite branches must agree on sort");
  if (Cond->isTrue())
    return Then;
  if (Cond->isFalse())
    return Else;
  if (Then == Else)
    return Then;
  // Boolean ite lowers to propositional structure.
  if (Then->sort() == Sort::Bool)
    return or_(and_(Cond, Then), and_(not_(Cond), Else));
  return intern(TermKind::Ite, Then->sort(), 0, "", {Cond, Then, Else});
}

//===----------------------------------------------------------------------===//
// Arrays
//===----------------------------------------------------------------------===//

const Term *TermContext::select(const Term *Array, const Term *Index) {
  assert((Array->sort() == Sort::IntArray || Array->sort() == Sort::BoolArray) &&
         "select requires an array");
  assert(Index->sort() == Sort::Int && "array index must be integer");
  // Read-over-write: select(store(A,i,v), j) = ite(i=j, v, select(A,j)).
  if (Array->kind() == TermKind::Store) {
    const Term *A = Array->operand(0);
    const Term *I = Array->operand(1);
    const Term *V = Array->operand(2);
    if (I == Index)
      return V;
    if (I->isIntConst() && Index->isIntConst())
      return select(A, Index); // distinct constant indices
    if (V->sort() == Sort::Bool) {
      const Term *Hit = eq(I, Index);
      return or_(and_(Hit, V), and_(not_(Hit), select(A, Index)));
    }
    return ite(eq(I, Index), V, select(A, Index));
  }
  Sort Elem = elementSort(Array->sort());
  return intern(TermKind::Select, Elem, 0, "", {Array, Index});
}

const Term *TermContext::store(const Term *Array, const Term *Index,
                               const Term *Value) {
  assert((Array->sort() == Sort::IntArray || Array->sort() == Sort::BoolArray) &&
         "store requires an array");
  assert(Index->sort() == Sort::Int && "array index must be integer");
  assert(Value->sort() == elementSort(Array->sort()) &&
         "stored value must match element sort");
  // store(store(A,i,_), i, v) = store(A, i, v)
  if (Array->kind() == TermKind::Store && Array->operand(1) == Index)
    return store(Array->operand(0), Index, Value);
  return intern(TermKind::Store, Array->sort(), 0, "", {Array, Index, Value});
}

//===----------------------------------------------------------------------===//
// Atoms
//===----------------------------------------------------------------------===//

const Term *TermContext::eq(const Term *A, const Term *B) {
  assert(A->sort() == B->sort() && "equality operands must agree on sort");
  assert(A->sort() != Sort::IntArray && A->sort() != Sort::BoolArray &&
         "array equality must go through extensionality");
  if (A == B)
    return True;
  if (A->isIntConst() && B->isIntConst())
    return boolConst(A->intValue() == B->intValue());
  if (A->isBoolConst() && B->isBoolConst())
    return boolConst(A->boolValue() == B->boolValue());
  // Boolean equality with a constant side simplifies to a literal.
  if (A->sort() == Sort::Bool) {
    if (A->isTrue())
      return B;
    if (A->isFalse())
      return not_(B);
    if (B->isTrue())
      return A;
    if (B->isFalse())
      return not_(A);
  }
  if (A->id() > B->id())
    std::swap(A, B);
  return intern(TermKind::Eq, Sort::Bool, 0, "", {A, B});
}

const Term *TermContext::ne(const Term *A, const Term *B) {
  return not_(eq(A, B));
}

const Term *TermContext::le(const Term *A, const Term *B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int);
  if (A == B)
    return True;
  if (A->isIntConst() && B->isIntConst())
    return boolConst(A->intValue() <= B->intValue());
  return intern(TermKind::Le, Sort::Bool, 0, "", {A, B});
}

const Term *TermContext::lt(const Term *A, const Term *B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int);
  if (A == B)
    return False;
  if (A->isIntConst() && B->isIntConst())
    return boolConst(A->intValue() < B->intValue());
  return intern(TermKind::Lt, Sort::Bool, 0, "", {A, B});
}

const Term *TermContext::divides(int64_t Divisor, const Term *T) {
  assert(Divisor >= 1 && "divisor must be positive");
  assert(T->sort() == Sort::Int);
  if (Divisor == 1)
    return True;
  if (T->isIntConst())
    return boolConst(T->intValue() % Divisor == 0);
  return intern(TermKind::Divides, Sort::Bool, Divisor, "", {T});
}

//===----------------------------------------------------------------------===//
// Boolean structure
//===----------------------------------------------------------------------===//

const Term *TermContext::not_(const Term *A) {
  assert(A->sort() == Sort::Bool && "negation operand must be boolean");
  if (A->isTrue())
    return False;
  if (A->isFalse())
    return True;
  if (A->kind() == TermKind::Not)
    return A->operand(0);
  return intern(TermKind::Not, Sort::Bool, 0, "", {A});
}

const Term *TermContext::and_(std::vector<const Term *> Ts) {
  std::vector<const Term *> Flat;
  std::vector<const Term *> Work(Ts.rbegin(), Ts.rend());
  while (!Work.empty()) {
    const Term *T = Work.back();
    Work.pop_back();
    assert(T->sort() == Sort::Bool && "conjunct must be boolean");
    if (T->isFalse())
      return False;
    if (T->isTrue())
      continue;
    if (T->kind() == TermKind::And) {
      for (auto It = T->operands().rbegin(); It != T->operands().rend(); ++It)
        Work.push_back(*It);
      continue;
    }
    Flat.push_back(T);
  }
  std::stable_sort(Flat.begin(), Flat.end(),
                   [](const Term *A, const Term *B) { return A->id() < B->id(); });
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  // a and (not a) = false
  for (const Term *T : Flat)
    if (T->kind() == TermKind::Not &&
        std::binary_search(Flat.begin(), Flat.end(), T->operand(0),
                           [](const Term *A, const Term *B) {
                             return A->id() < B->id();
                           }))
      return False;
  if (Flat.empty())
    return True;
  if (Flat.size() == 1)
    return Flat.front();
  return intern(TermKind::And, Sort::Bool, 0, "", std::move(Flat));
}

const Term *TermContext::or_(std::vector<const Term *> Ts) {
  std::vector<const Term *> Flat;
  std::vector<const Term *> Work(Ts.rbegin(), Ts.rend());
  while (!Work.empty()) {
    const Term *T = Work.back();
    Work.pop_back();
    assert(T->sort() == Sort::Bool && "disjunct must be boolean");
    if (T->isTrue())
      return True;
    if (T->isFalse())
      continue;
    if (T->kind() == TermKind::Or) {
      for (auto It = T->operands().rbegin(); It != T->operands().rend(); ++It)
        Work.push_back(*It);
      continue;
    }
    Flat.push_back(T);
  }
  std::stable_sort(Flat.begin(), Flat.end(),
                   [](const Term *A, const Term *B) { return A->id() < B->id(); });
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  // a or (not a) = true
  for (const Term *T : Flat)
    if (T->kind() == TermKind::Not &&
        std::binary_search(Flat.begin(), Flat.end(), T->operand(0),
                           [](const Term *A, const Term *B) {
                             return A->id() < B->id();
                           }))
      return True;
  if (Flat.empty())
    return False;
  if (Flat.size() == 1)
    return Flat.front();
  return intern(TermKind::Or, Sort::Bool, 0, "", std::move(Flat));
}

const Term *TermContext::implies(const Term *A, const Term *B) {
  return or_(not_(A), B);
}

const Term *TermContext::iff(const Term *A, const Term *B) { return eq(A, B); }
