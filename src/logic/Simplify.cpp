//===- logic/Simplify.cpp - Semantic term simplification --------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "logic/Simplify.h"

#include "logic/Linear.h"
#include "logic/Term.h"

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

using namespace expresso;
using namespace expresso::logic;

namespace {

/// Deterministic key identifying the atom part of a linear form.
using CoeffKey = std::vector<std::pair<uint32_t, int64_t>>;

CoeffKey keyOf(const LinearTerm &L) {
  CoeffKey K;
  K.reserve(L.Coeffs.size());
  for (const auto &[Atom, Coeff] : L.Coeffs)
    K.emplace_back(Atom->id(), Coeff);
  // std::map iteration is ordered by pointer; re-sort by id for determinism.
  std::sort(K.begin(), K.end());
  return K;
}

CoeffKey negatedKey(const CoeffKey &K) {
  CoeffKey N = K;
  for (auto &[Id, Coeff] : N)
    Coeff = -Coeff;
  return N;
}

class Simplifier {
public:
  explicit Simplifier(TermContext &C) : C(C) {}

  const Term *run(const Term *T) {
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    const Term *R = visit(T);
    Memo.emplace(T, R);
    return R;
  }

private:
  const Term *visit(const Term *T) {
    switch (T->kind()) {
    case TermKind::And:
      return visitJunction(T, /*IsAnd=*/true);
    case TermKind::Or:
      return visitJunction(T, /*IsAnd=*/false);
    case TermKind::Not: {
      const Term *Op = run(T->operand(0));
      return canonicalizeAtom(C.not_(Op));
    }
    case TermKind::Le:
    case TermKind::Lt:
    case TermKind::Eq:
    case TermKind::Divides:
      return canonicalizeAtom(rebuildChildren(T));
    case TermKind::Ite: {
      const Term *Cond = run(T->operand(0));
      const Term *Then = run(T->operand(1));
      const Term *Else = run(T->operand(2));
      return C.ite(Cond, Then, Else);
    }
    default:
      return rebuildChildren(T);
    }
  }

  const Term *rebuildChildren(const Term *T) {
    if (T->numOperands() == 0)
      return T;
    std::vector<const Term *> Ops;
    Ops.reserve(T->numOperands());
    bool Changed = false;
    for (const Term *Op : T->operands()) {
      const Term *NewOp = run(Op);
      Changed |= NewOp != Op;
      Ops.push_back(NewOp);
    }
    if (!Changed)
      return T;
    switch (T->kind()) {
    case TermKind::Add:
      return C.add(std::move(Ops));
    case TermKind::Mul:
      return C.mul(Ops[0], Ops[1]);
    case TermKind::Ite:
      return C.ite(Ops[0], Ops[1], Ops[2]);
    case TermKind::Select:
      return C.select(Ops[0], Ops[1]);
    case TermKind::Store:
      return C.store(Ops[0], Ops[1], Ops[2]);
    case TermKind::Eq:
      return C.eq(Ops[0], Ops[1]);
    case TermKind::Le:
      return C.le(Ops[0], Ops[1]);
    case TermKind::Lt:
      return C.lt(Ops[0], Ops[1]);
    case TermKind::Divides:
      return C.divides(T->intValue(), Ops[0]);
    case TermKind::Not:
      return C.not_(Ops[0]);
    case TermKind::And:
      return C.and_(std::move(Ops));
    case TermKind::Or:
      return C.or_(std::move(Ops));
    default:
      return T;
    }
  }

  /// Rewrites an arithmetic atom (possibly under Not) into its canonical
  /// tightened form; leaves other booleans untouched.
  const Term *canonicalizeAtom(const Term *T) {
    if (T->sort() != Sort::Bool || T->isBoolConst())
      return T;
    auto Atom = normalizeLinAtom(T);
    if (!Atom)
      return T;
    if (Atom->L.isConstant()) {
      switch (Atom->Kind) {
      case LinAtomKind::Le:
        return C.boolConst(Atom->L.Constant <= 0);
      case LinAtomKind::Eq:
        return C.boolConst(Atom->L.Constant == 0);
      case LinAtomKind::Dvd:
        return C.boolConst(mathMod(Atom->L.Constant, Atom->Divisor) == 0);
      case LinAtomKind::NDvd:
        return C.boolConst(mathMod(Atom->L.Constant, Atom->Divisor) != 0);
      }
    }
    return Atom->toTerm(C);
  }

  /// Simplifies an And (IsAnd) or Or node with linear-atom pruning and
  /// absorption. Conservative: any non-linear member passes through.
  const Term *visitJunction(const Term *T, bool IsAnd) {
    std::vector<const Term *> Members;
    Members.reserve(T->numOperands());
    for (const Term *Op : T->operands())
      Members.push_back(run(Op));

    // Partition into linear Le atoms, linear Eq atoms, and opaque rest.
    // For Le in an And we keep, per atom part, the *largest* constant
    // (tightest bound); in an Or the smallest (weakest bound).
    std::map<CoeffKey, int64_t> LeBest;
    std::map<CoeffKey, LinearTerm> LeRepr;
    std::map<CoeffKey, int64_t> EqConst;
    std::map<CoeffKey, LinearTerm> EqRepr;
    std::vector<const Term *> Rest;

    for (const Term *M : Members) {
      auto Atom = normalizeLinAtom(M);
      if (!Atom || Atom->L.isConstant() ||
          (Atom->Kind != LinAtomKind::Le && Atom->Kind != LinAtomKind::Eq)) {
        Rest.push_back(M);
        continue;
      }
      if (Atom->Kind == LinAtomKind::Le) {
        LinearTerm AtomPart = Atom->L;
        int64_t Cst = AtomPart.Constant;
        AtomPart.Constant = 0;
        CoeffKey K = keyOf(AtomPart);
        auto [It, Inserted] = LeBest.emplace(K, Cst);
        if (!Inserted)
          It->second = IsAnd ? std::max(It->second, Cst)
                             : std::min(It->second, Cst);
        LeRepr.emplace(K, AtomPart);
        continue;
      }
      // Eq atom.
      LinearTerm AtomPart = Atom->L;
      int64_t Cst = AtomPart.Constant;
      AtomPart.Constant = 0;
      CoeffKey K = keyOf(AtomPart);
      auto [It, Inserted] = EqConst.emplace(K, Cst);
      if (!Inserted && It->second != Cst) {
        // x = a and x = b with a != b.
        if (IsAnd)
          return C.getFalse();
        // In an Or just keep both (rare); treat second as opaque.
        LinAtom Keep = *Atom;
        Rest.push_back(Keep.toTerm(C));
        continue;
      }
      EqRepr.emplace(K, AtomPart);
    }

    if (IsAnd) {
      // Contradiction / equality-merge between L <= a and -L <= b:
      //   value v of L satisfies v <= -a and v >= b' (where b' = bConst).
      for (auto It = LeBest.begin(); It != LeBest.end(); ++It) {
        CoeffKey Neg = negatedKey(It->first);
        auto NIt = LeBest.find(Neg);
        if (NIt == LeBest.end() || !(It->first < Neg))
          continue;
        int64_t Hi = -It->second; // v <= Hi
        int64_t Lo = NIt->second; // v >= Lo
        if (Lo > Hi)
          return C.getFalse();
        if (Lo == Hi) {
          // Merge into an equality; mark both Le entries dead via sentinel.
          LinearTerm AtomPart = LeRepr.at(It->first);
          LinearTerm EqForm = AtomPart;
          EqForm.Constant = -Hi; // L - Hi == 0 as AtomPart + (-Hi)
          LinAtom EqAtom;
          EqAtom.Kind = LinAtomKind::Eq;
          EqAtom.L = AtomPart;
          EqAtom.L.Constant = -Hi;
          Rest.push_back(run(EqAtom.toTerm(C)));
          It->second = INT64_MIN; // sentinel: drop
          NIt->second = INT64_MIN;
        }
      }
      // Eq vs Le on the same (or negated) atom part.
      for (const auto &[K, Cst] : EqConst) {
        auto LIt = LeBest.find(K);
        if (LIt != LeBest.end() && LIt->second != INT64_MIN) {
          // L == -Cst, require L + a <= 0 i.e. -Cst <= -a  i.e. a <= Cst.
          if (LIt->second > Cst)
            return C.getFalse();
          LIt->second = INT64_MIN; // implied by the equality
        }
        auto NIt = LeBest.find(negatedKey(K));
        if (NIt != LeBest.end() && NIt->second != INT64_MIN) {
          // -L + b <= 0 i.e. L >= b; with L == -Cst need b <= -Cst.
          if (NIt->second > -Cst)
            return C.getFalse();
          NIt->second = INT64_MIN;
        }
      }
    } else {
      // Tautology: L <= -a  or  L >= b covers all integers iff b <= -a + 1.
      for (auto It = LeBest.begin(); It != LeBest.end(); ++It) {
        CoeffKey Neg = negatedKey(It->first);
        auto NIt = LeBest.find(Neg);
        if (NIt == LeBest.end() || !(It->first < Neg))
          continue;
        int64_t Hi = -It->second;
        int64_t Lo = NIt->second;
        if (Lo <= Hi + 1)
          return C.getTrue();
      }
    }

    // Rebuild members: surviving Le bounds, equalities, then the rest.
    std::vector<const Term *> Out;
    for (const auto &[K, Cst] : LeBest) {
      if (Cst == INT64_MIN)
        continue;
      LinAtom A;
      A.Kind = LinAtomKind::Le;
      A.L = LeRepr.at(K);
      A.L.Constant = Cst;
      Out.push_back(A.toTerm(C));
    }
    for (const auto &[K, Cst] : EqConst) {
      LinAtom A;
      A.Kind = LinAtomKind::Eq;
      A.L = EqRepr.at(K);
      A.L.Constant = Cst;
      Out.push_back(A.toTerm(C));
    }
    Out.insert(Out.end(), Rest.begin(), Rest.end());

    const Term *Result = IsAnd ? C.and_(Out) : C.or_(Out);

    // Absorption: X and (X or B) = X ; X or (X and B) = X.
    if (Result->kind() == (IsAnd ? TermKind::And : TermKind::Or))
      Result = absorb(Result, IsAnd);
    return Result;
  }

  const Term *absorb(const Term *T, bool IsAnd) {
    const auto &Ops = T->operands();
    TermKind InnerKind = IsAnd ? TermKind::Or : TermKind::And;
    std::vector<const Term *> Kept;
    Kept.reserve(Ops.size());
    for (const Term *Candidate : Ops) {
      bool Absorbed = false;
      if (Candidate->kind() == InnerKind) {
        for (const Term *Other : Ops) {
          if (Other == Candidate || Other->kind() == InnerKind)
            continue;
          for (const Term *Inner : Candidate->operands()) {
            if (Inner == Other) {
              Absorbed = true;
              break;
            }
          }
          if (Absorbed)
            break;
        }
      }
      if (!Absorbed)
        Kept.push_back(Candidate);
    }
    if (Kept.size() == Ops.size())
      return T;
    return IsAnd ? C.and_(std::move(Kept)) : C.or_(std::move(Kept));
  }

  TermContext &C;
  std::map<const Term *, const Term *> Memo;
};

} // namespace

const Term *logic::simplify(TermContext &C, const Term *T) {
  // Iterate to a (cheap) fixpoint; two rounds catch most cascades.
  const Term *Cur = T;
  for (int I = 0; I < 3; ++I) {
    const Term *Next = Simplifier(C).run(Cur);
    if (Next == Cur)
      return Cur;
    Cur = Next;
  }
  return Cur;
}
