//===- logic/Simplify.h - Semantic term simplification ----------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bottom-up simplifier over terms. Beyond the smart-constructor
/// normalizations, it canonicalizes linear-arithmetic atoms (gcd tightening,
/// `x + 1 <= x + 3` folds to true), prunes implied/contradictory comparisons
/// inside conjunctions and disjunctions, merges bound pairs into equalities,
/// and applies absorption. Cooper QE and abduction depend on this pass to
/// keep eliminated formulas readable — it is why the inferred readers-writers
/// invariant prints as `readers >= 0` rather than a pile of residue.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_LOGIC_SIMPLIFY_H
#define EXPRESSO_LOGIC_SIMPLIFY_H

namespace expresso {
namespace logic {

class Term;
class TermContext;

/// Simplifies \p T; the result is logically equivalent to the input.
const Term *simplify(TermContext &C, const Term *T);

} // namespace logic
} // namespace expresso

#endif // EXPRESSO_LOGIC_SIMPLIFY_H
