//===- logic/Linear.h - Linear integer forms --------------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical linear forms over integer "atom" terms. A `LinearTerm` is
///   sum_i Coeff_i * Atom_i + Constant
/// where each Atom is an integer term that linearization treats as opaque
/// (a variable, an array read, or an integer ite). These forms are the
/// common currency of the simplifier, the MiniSmt LIA layer, and Cooper QE.
///
/// Normalized atoms come in four shapes (integers throughout):
///   Le:   L <= 0        Eq:  L == 0
///   Dvd:  D | L         NDvd: not (D | L)
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_LOGIC_LINEAR_H
#define EXPRESSO_LOGIC_LINEAR_H

#include "logic/Term.h"

#include <cstdint>
#include <map>
#include <optional>

namespace expresso {
namespace logic {

/// A linear combination of opaque integer atoms plus a constant.
struct LinearTerm {
  /// Atom -> coefficient; never stores zero coefficients. Ordered by term
  /// creation index, not pointer: iteration order reaches the LIA tableau's
  /// column order, so it must be reproducible across runs.
  std::map<const Term *, int64_t, TermIdLess> Coeffs;
  int64_t Constant = 0;

  bool isConstant() const { return Coeffs.empty(); }

  /// Coefficient of \p Atom (0 if absent).
  int64_t coeff(const Term *Atom) const {
    auto It = Coeffs.find(Atom);
    return It == Coeffs.end() ? 0 : It->second;
  }

  void addAtom(const Term *Atom, int64_t Coeff);
  void addLinear(const LinearTerm &O, int64_t Scale = 1);
  void scale(int64_t Factor);

  /// GCD of all atom coefficients (0 when constant).
  int64_t coeffGcd() const;

  /// Returns this form negated.
  LinearTerm negated() const;

  /// True when the two forms have identical atom parts (constants may
  /// differ).
  static bool sameAtoms(const LinearTerm &A, const LinearTerm &B);

  bool operator==(const LinearTerm &O) const = default;
  /// Deterministic ordering for use as a map key.
  bool operator<(const LinearTerm &O) const;

  /// Rebuilds a Term. The result is `Coeffs . Atoms + Constant`.
  const Term *toTerm(TermContext &C) const;
};

/// Linearizes an integer term. Non-linear subterms (select, ite) become
/// opaque atoms; returns nullopt only if \p T is not integer-sorted.
std::optional<LinearTerm> linearize(const Term *T);

/// Kinds of normalized linear atoms.
enum class LinAtomKind : uint8_t { Le, Eq, Dvd, NDvd };

/// A normalized linear atom (see file comment).
struct LinAtom {
  LinAtomKind Kind = LinAtomKind::Le;
  LinearTerm L;
  int64_t Divisor = 1; ///< Only for Dvd / NDvd.

  /// Rebuilds a boolean Term for this atom.
  const Term *toTerm(TermContext &C) const;
};

/// Normalizes a (possibly negated) comparison or divisibility term into a
/// LinAtom with integer tightening:
///   a <= b   => a - b <= 0, coefficients divided by their gcd with ceiling
///               division on the constant;
///   a == b   => a - b == 0 (or `false` as Le 1 <= 0 when gcd ∤ constant);
///   not(...) for Le/Lt/Eq is rewritten arithmetically; negated Dvd stays
///   NDvd.
/// Returns nullopt for terms that are not linear-arithmetic atoms (boolean
/// variables etc.).
std::optional<LinAtom> normalizeLinAtom(const Term *T);

/// 64-bit gcd on magnitudes; gcd(0, x) = |x|.
int64_t gcd64(int64_t A, int64_t B);
/// Least common multiple on magnitudes.
int64_t lcm64(int64_t A, int64_t B);
/// Floor division (rounds toward negative infinity).
int64_t floorDiv(int64_t A, int64_t B);
/// Ceiling division (rounds toward positive infinity).
int64_t ceilDiv(int64_t A, int64_t B);
/// Mathematical modulus; result always in [0, |B|).
int64_t mathMod(int64_t A, int64_t B);

} // namespace logic
} // namespace expresso

#endif // EXPRESSO_LOGIC_LINEAR_H
