//===- logic/Printer.h - Term pretty-printing -------------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two renderings of terms: a human-oriented infix printer (used in
/// diagnostics, generated-code comments, and EXPERIMENTS.md artifacts) and an
/// SMT-LIB2 printer (used for debugging solver interactions, mirroring the
/// paper's Appendix D, which shows invariants in SMT-LIB format).
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_LOGIC_PRINTER_H
#define EXPRESSO_LOGIC_PRINTER_H

#include <string>

namespace expresso {
namespace logic {

class Term;

/// Renders \p T as an infix expression, e.g. `readers >= 0 && !writerIn`.
std::string printTerm(const Term *T);

/// Renders \p T as an SMT-LIB2 s-expression, e.g. `(and (>= readers 0) ...)`.
std::string printSmtLib(const Term *T);

} // namespace logic
} // namespace expresso

#endif // EXPRESSO_LOGIC_PRINTER_H
