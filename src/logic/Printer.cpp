//===- logic/Printer.cpp - Term pretty-printing ----------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "logic/Printer.h"

#include "logic/Term.h"

#include <sstream>

using namespace expresso;
using namespace expresso::logic;

namespace {

/// Operator precedence for the infix printer; higher binds tighter.
enum Precedence {
  PrecOr = 1,
  PrecAnd = 2,
  PrecNot = 3,
  PrecCmp = 4,
  PrecAdd = 5,
  PrecMul = 6,
  PrecAtom = 7,
};

class InfixPrinter {
public:
  explicit InfixPrinter(std::ostringstream &OS) : OS(OS) {}

  void print(const Term *T, int Parent) {
    switch (T->kind()) {
    case TermKind::IntConst:
      if (T->intValue() < 0 && Parent >= PrecMul) {
        OS << "(" << T->intValue() << ")";
      } else {
        OS << T->intValue();
      }
      return;
    case TermKind::BoolConst:
      OS << (T->boolValue() ? "true" : "false");
      return;
    case TermKind::Var:
      OS << T->varName();
      return;
    case TermKind::Add:
      printNary(T, " + ", PrecAdd, Parent);
      return;
    case TermKind::Mul:
      open(PrecMul, Parent);
      print(T->operand(0), PrecMul);
      OS << " * ";
      print(T->operand(1), PrecMul + 1);
      close(PrecMul, Parent);
      return;
    case TermKind::Ite:
      OS << "ite(";
      print(T->operand(0), 0);
      OS << ", ";
      print(T->operand(1), 0);
      OS << ", ";
      print(T->operand(2), 0);
      OS << ")";
      return;
    case TermKind::Select:
      print(T->operand(0), PrecAtom);
      OS << "[";
      print(T->operand(1), 0);
      OS << "]";
      return;
    case TermKind::Store:
      OS << "store(";
      print(T->operand(0), 0);
      OS << ", ";
      print(T->operand(1), 0);
      OS << ", ";
      print(T->operand(2), 0);
      OS << ")";
      return;
    case TermKind::Eq:
      printBinary(T, " == ", PrecCmp, Parent);
      return;
    case TermKind::Le:
      printBinary(T, " <= ", PrecCmp, Parent);
      return;
    case TermKind::Lt:
      printBinary(T, " < ", PrecCmp, Parent);
      return;
    case TermKind::Divides:
      OS << T->intValue() << " divides ";
      print(T->operand(0), PrecCmp + 1);
      return;
    case TermKind::Not:
      open(PrecNot, Parent);
      OS << "!";
      print(T->operand(0), PrecNot);
      close(PrecNot, Parent);
      return;
    case TermKind::And:
      printNary(T, " && ", PrecAnd, Parent);
      return;
    case TermKind::Or:
      printNary(T, " || ", PrecOr, Parent);
      return;
    }
  }

private:
  void open(int Prec, int Parent) {
    if (Parent > Prec)
      OS << "(";
  }
  void close(int Prec, int Parent) {
    if (Parent > Prec)
      OS << ")";
  }
  void printBinary(const Term *T, const char *OpText, int Prec, int Parent) {
    open(Prec, Parent);
    print(T->operand(0), Prec + 1);
    OS << OpText;
    print(T->operand(1), Prec + 1);
    close(Prec, Parent);
  }
  void printNary(const Term *T, const char *OpText, int Prec, int Parent) {
    open(Prec, Parent);
    bool First = true;
    for (const Term *Op : T->operands()) {
      if (!First)
        OS << OpText;
      First = false;
      print(Op, Prec + 1);
    }
    close(Prec, Parent);
  }

  std::ostringstream &OS;
};

void printSexp(std::ostringstream &OS, const Term *T) {
  switch (T->kind()) {
  case TermKind::IntConst:
    if (T->intValue() < 0) {
      OS << "(- " << -T->intValue() << ")";
    } else {
      OS << T->intValue();
    }
    return;
  case TermKind::BoolConst:
    OS << (T->boolValue() ? "true" : "false");
    return;
  case TermKind::Var:
    OS << T->varName();
    return;
  default:
    break;
  }
  const char *Head = "?";
  switch (T->kind()) {
  case TermKind::Add:
    Head = "+";
    break;
  case TermKind::Mul:
    Head = "*";
    break;
  case TermKind::Ite:
    Head = "ite";
    break;
  case TermKind::Select:
    Head = "select";
    break;
  case TermKind::Store:
    Head = "store";
    break;
  case TermKind::Eq:
    Head = "=";
    break;
  case TermKind::Le:
    Head = "<=";
    break;
  case TermKind::Lt:
    Head = "<";
    break;
  case TermKind::Not:
    Head = "not";
    break;
  case TermKind::And:
    Head = "and";
    break;
  case TermKind::Or:
    Head = "or";
    break;
  case TermKind::Divides: {
    OS << "((_ divisible " << T->intValue() << ") ";
    printSexp(OS, T->operand(0));
    OS << ")";
    return;
  }
  default:
    break;
  }
  OS << "(" << Head;
  for (const Term *Op : T->operands()) {
    OS << " ";
    printSexp(OS, Op);
  }
  OS << ")";
}

} // namespace

std::string logic::printTerm(const Term *T) {
  std::ostringstream OS;
  InfixPrinter(OS).print(T, 0);
  return OS.str();
}

std::string logic::printSmtLib(const Term *T) {
  std::ostringstream OS;
  printSexp(OS, T);
  return OS.str();
}
