//===- logic/TermOps.h - Traversal, substitution, evaluation ----*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic operations over the term DAG: free-variable collection, parallel
/// substitution (the workhorse of weakest preconditions and the Section 4.2
/// thread-local renaming), concrete evaluation under an assignment (used by
/// the trace semantics, the runtime VM cross-checks, and property tests),
/// and negation-normal-form conversion (used by MiniSmt and Cooper QE).
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_LOGIC_TERMOPS_H
#define EXPRESSO_LOGIC_TERMOPS_H

#include "logic/Term.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace expresso {
namespace logic {

//===----------------------------------------------------------------------===//
// Free variables
//===----------------------------------------------------------------------===//

/// Collects the variables occurring in \p T, ordered by creation id
/// (deterministic across runs).
std::vector<const Term *> freeVars(const Term *T);

/// Returns true if variable \p Var occurs in \p T.
bool occurs(const Term *T, const Term *Var);

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

/// A parallel substitution from variables to replacement terms.
using Substitution = std::map<const Term *, const Term *, TermIdLess>;

/// Applies \p Subst to \p T simultaneously. Replacements must be
/// sort-compatible with the variables they replace.
const Term *substitute(TermContext &C, const Term *T, const Substitution &Subst);

/// Replaces a single variable.
const Term *substitute(TermContext &C, const Term *T, const Term *Var,
                       const Term *Replacement);

//===----------------------------------------------------------------------===//
// Concrete evaluation
//===----------------------------------------------------------------------===//

/// A concrete value of any sort. Arrays are total maps with a default.
struct Value {
  Sort S = Sort::Int;
  int64_t I = 0;                ///< Int payload, or Bool as 0/1.
  std::map<int64_t, int64_t> A; ///< Array payload: index -> element.
  int64_t ArrayDefault = 0;

  static Value ofInt(int64_t V) { return {Sort::Int, V, {}, 0}; }
  static Value ofBool(bool B) { return {Sort::Bool, B ? 1 : 0, {}, 0}; }
  static Value ofArray(Sort ArraySort, std::map<int64_t, int64_t> Elems,
                       int64_t Default = 0) {
    return {ArraySort, 0, std::move(Elems), Default};
  }

  bool asBool() const {
    assert(S == Sort::Bool);
    return I != 0;
  }
  int64_t asInt() const {
    assert(S == Sort::Int);
    return I;
  }
  int64_t arrayAt(int64_t Idx) const {
    auto It = A.find(Idx);
    return It == A.end() ? ArrayDefault : It->second;
  }

  bool operator==(const Value &O) const = default;
};

/// Maps variable names to concrete values.
using Assignment = std::map<std::string, Value>;

/// Evaluates \p T under \p Asg. Every variable in \p T must be bound.
Value evaluate(const Term *T, const Assignment &Asg);

/// Convenience: evaluates a boolean term.
bool evaluateBool(const Term *T, const Assignment &Asg);

//===----------------------------------------------------------------------===//
// Negation normal form
//===----------------------------------------------------------------------===//

/// Rewrites boolean equalities `a == b` (iff) into `(a && b) || (!a && !b)`
/// recursively, so downstream passes (NNF monotonization, Cooper QE) see
/// only and/or/not structure over atoms.
const Term *expandBoolEq(TermContext &C, const Term *T);

/// Converts a boolean term to negation normal form. Negations are pushed to
/// atoms and then *eliminated* on arithmetic atoms:
///   not (a <= b) => b + 1 <= a        not (a < b) => b <= a
///   not (a == b) => a < b or b < a    (integers)
/// Negations remain only on boolean variables, boolean selects, boolean
/// equalities, and divisibility atoms.
const Term *toNNF(TermContext &C, const Term *T);

/// Distributes \p T (assumed NNF) into disjunctive normal form; each inner
/// vector is one conjunct list. Exponential in the worst case; callers cap
/// input sizes.
std::vector<std::vector<const Term *>> toDNF(TermContext &C, const Term *T);

//===----------------------------------------------------------------------===//
// Cross-context transfer
//===----------------------------------------------------------------------===//

/// Rebuilds \p T node-for-node inside \p Dst, preserving structure exactly
/// (operand order included; no canonicalization re-runs). Structurally
/// equal inputs map to the same interned node in Dst regardless of their
/// source context. Used to hand queries to a solver's private scratch
/// context, so solver-side interning cannot perturb the analysis context's
/// creation-id sequence (which TermContext::and_/or_ sort operands by).
///
/// Safe to call from multiple threads against the same \p Dst: the rebuild
/// funnels through Dst's sharded lock-free interner, so concurrent
/// transfers of overlapping DAGs converge on identical node pointers. The
/// memo table is per-call (stack-local), never shared.
const Term *transferTerm(TermContext &Dst, const Term *T);

} // namespace logic
} // namespace expresso

#endif // EXPRESSO_LOGIC_TERMOPS_H
